package repro_test

// One benchmark per table/figure of the paper: each runs the harness
// experiment that regenerates it, at a reduced (Quick) scale so the
// whole set completes in minutes. The printed rows for the full-scale
// runs are recorded in EXPERIMENTS.md; use `go run ./cmd/zerodev run
// <id>` for those.

import (
	"context"
	"io"
	"runtime"
	"testing"

	"repro/internal/harness"
)

func benchOptions() harness.Options {
	return harness.Options{Scale: 32, Accesses: 5000, Seed: 1, Quick: true, Workers: 1}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := harness.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	o := benchOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// benchExperimentParallel measures the same experiment on the parallel
// engine with one worker per CPU; compare against the serial benchmark
// of the same figure for realized scaling.
func benchExperimentParallel(b *testing.B, id string) {
	b.Helper()
	e, err := harness.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	o := benchOptions()
	o.Workers = runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(context.Background(), o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B)        { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig17(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)       { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)       { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)       { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)       { benchExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B)       { benchExperiment(b, "fig22") }
func BenchmarkFig23(b *testing.B)       { benchExperiment(b, "fig23") }
func BenchmarkFig24(b *testing.B)       { benchExperiment(b, "fig24") }
func BenchmarkFig25(b *testing.B)       { benchExperiment(b, "fig25") }
func BenchmarkFig26(b *testing.B)       { benchExperiment(b, "fig26") }
func BenchmarkFig27(b *testing.B)       { benchExperiment(b, "fig27") }
func BenchmarkClaims(b *testing.B)      { benchExperiment(b, "claims") }
func BenchmarkEnergy(b *testing.B)      { benchExperiment(b, "energy") }
func BenchmarkMultiSocket(b *testing.B) { benchExperiment(b, "multisocket") }

// Parallel-engine counterparts of three representative figures, spanning
// the sweep, per-app, and socket-system paths.
func BenchmarkFig18Parallel(b *testing.B)       { benchExperimentParallel(b, "fig18") }
func BenchmarkFig19Parallel(b *testing.B)       { benchExperimentParallel(b, "fig19") }
func BenchmarkMultiSocketParallel(b *testing.B) { benchExperimentParallel(b, "multisocket") }
