package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/backend"
	"repro/internal/faults"
	"repro/internal/harness"
)

// cellBackends returns the distinct backend IDs of the selected cells,
// in cell order — the set an explicit -faults selection must be able to
// fire against.
func cellBackends(cells []faults.Campaign) []backend.ID {
	seen := make(map[backend.ID]bool)
	var out []backend.ID
	for _, c := range cells {
		id := c.Backend
		if id == "" {
			id = backend.ZeroDEV
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// auditCmd runs the fault-injection campaigns of internal/faults: every
// selected injector firing against every selected campaign cell, with
// the invariant auditor running every -audit-every scheduler steps.
func auditCmd(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	o := harness.DefaultOptions()
	o.Accesses = 20000
	fs.IntVar(&o.Scale, "scale", o.Scale, "capacity scale divisor (power of two; 1 = Table I)")
	fs.IntVar(&o.Accesses, "accesses", o.Accesses, "memory accesses per core")
	var seed uint64
	fs.Uint64Var(&seed, "seed", 1, "campaign seed (workloads and fault sequence)")
	fs.IntVar(&o.Workers, "workers", o.Workers, "parallel campaign cells (output is identical at any value)")
	domainWorkers := fs.Int("domain-workers", 1,
		"intra-run epoch-scheduler workers; audit requires 1 (fault injection observes every step through the serial scheduler's hook)")
	fs.IntVar(&o.Retries, "retries", o.Retries, "extra attempts for a panicking cell before it is recorded as failed")
	fs.StringVar(&o.CrashDir, "crash", o.CrashDir, "directory for panic replay bundles (\"\" disables)")
	fs.DurationVar(&o.JobTimeout, "job-timeout", 0, "per-cell watchdog: cancel a cell running longer than this, dump diagnostics, record TIMEOUT (0 = off)")
	ckptPath := fs.String("checkpoint", filepath.Join("results", "checkpoint", "audit.json"),
		"where completed cells are persisted for -resume (\"\" disables checkpointing)")
	resume := fs.String("resume", "", "resume from a checkpoint file: completed cells are served from it instead of re-running")
	quiet := fs.Bool("quiet", false, "suppress progress and timing lines on stderr")
	kinds := fs.String("faults", "all", "comma-separated injector kinds (see -list)")
	auditEvery := fs.Int("audit-every", 1000, "run the invariant auditor every N scheduler steps (0 = only at completion)")
	failFast := fs.Bool("fail-fast", false, "stop the campaign at the first failing cell")
	campaigns := fs.String("campaigns", "all", "comma-separated campaign cells (see -list)")
	fs.StringVar(&o.Backends, "backend", "all", "comma-separated protocol backends to audit (see -list)")
	rateScale := fs.Float64("rate-scale", 1, "multiply every injector's default rate")
	list := fs.Bool("list", false, "describe injectors and campaign cells, then exit")
	prof := addProfFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		faults.WriteList(os.Stdout)
		return 0
	}
	stopProf, err := prof.start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "audit:", err)
		return 2
	}
	defer stopProf()
	o.Seed = seed
	stderr := harness.NewSyncWriter(os.Stderr)
	if !*quiet {
		o.Progress = stderr
	}
	if err := o.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "audit:", err)
		return 2
	}
	if *auditEvery < 0 {
		fmt.Fprintf(os.Stderr, "audit: -audit-every must be non-negative, got %d\n", *auditEvery)
		return 2
	}
	if *domainWorkers > 1 {
		fmt.Fprintln(os.Stderr, "audit: -domain-workers must be 1: fault campaigns drive every step through the serial scheduler's hook (injectors and the invariant auditor observe globally ordered steps), which the epoch-barrier domain scheduler does not provide")
		return 2
	}
	if *rateScale < 0 {
		fmt.Fprintf(os.Stderr, "audit: -rate-scale must be non-negative, got %g\n", *rateScale)
		return 2
	}
	cfg := faults.DefaultConfig()
	cfg.AuditEvery = *auditEvery
	cfg.RateScale = *rateScale
	cfg.FailFast = *failFast
	if cfg.Enabled, err = faults.ParseKinds(*kinds); err != nil {
		fmt.Fprintln(os.Stderr, "audit:", err)
		return 2
	}
	cells, err := faults.SelectCampaigns(*campaigns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "audit:", err)
		return 2
	}
	cells = faults.FilterByBackend(cells, o.BackendIDs())
	if len(cells) == 0 {
		fmt.Fprintln(os.Stderr, "audit: the -campaigns/-backend selection leaves no cells to run")
		return 2
	}
	// An explicitly selected injector that cannot fire on any selected
	// backend would run an inert campaign and report it clean; refuse the
	// combination by name instead ("all" is intersected per cell).
	if *kinds != "all" {
		if err := faults.ValidateKinds(cfg.Enabled, cellBackends(cells)); err != nil {
			fmt.Fprintln(os.Stderr, "audit:", err)
			return 2
		}
	}
	var ids []string
	for _, c := range cells {
		ids = append(ids, c.Name)
	}
	key := harness.CheckpointKey{
		Kind: "audit", IDs: ids,
		Scale: o.Scale, Accesses: o.Accesses, Seed: o.Seed,
	}
	if *resume != "" {
		cs, err := harness.LoadCheckpoint(*resume, key)
		if err != nil {
			fmt.Fprintln(os.Stderr, "audit:", err)
			return 2
		}
		// Campaign cells submit in list order, one per cell, so the grid
		// is the cell list itself; a checkpoint with cells this build no
		// longer generates is rejected by name.
		var grid []harness.CellID
		for i, c := range cells {
			grid = append(grid, harness.CellID{Scope: "audit", Seq: i + 1, Unit: c.Name})
		}
		if err := cs.VerifyGrid(grid); err != nil {
			fmt.Fprintln(os.Stderr, "audit:", err)
			return 2
		}
		o.Checkpoint = cs
		fmt.Fprintf(stderr, "[resuming from %s: %d completed cells]\n", *resume, cs.Cells())
	} else if *ckptPath != "" {
		o.Checkpoint = harness.NewCheckpoint(key)
	}
	start := time.Now()
	cerr := faults.RunCampaigns(ctx, cfg, cells, o, os.Stdout)
	if o.Checkpoint != nil && *ckptPath != "" {
		if err := o.Checkpoint.Save(*ckptPath); err != nil {
			fmt.Fprintf(stderr, "audit: saving checkpoint: %v\n", err)
		}
	}
	if ctx.Err() != nil {
		if o.Checkpoint != nil && *ckptPath != "" {
			fmt.Fprintf(stderr, "audit: interrupted; completed cells saved to %s — resume with `zerodev audit -resume %s ...`\n", *ckptPath, *ckptPath)
		} else {
			fmt.Fprintln(stderr, "audit: interrupted")
		}
		return harness.ExitInterrupted
	}
	if cerr != nil {
		fmt.Fprintf(stderr, "audit: %v\n", cerr)
		return harness.ExitCode(cerr)
	}
	if !*quiet {
		fmt.Fprintf(stderr, "[audit finished in %v]\n", time.Since(start).Round(time.Millisecond))
	}
	return 0
}
