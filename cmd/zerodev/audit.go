package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/faults"
	"repro/internal/harness"
)

// auditCmd runs the fault-injection campaigns of internal/faults: every
// selected injector firing against every selected campaign cell, with
// the invariant auditor running every -audit-every scheduler steps.
func auditCmd(args []string) {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	o := harness.DefaultOptions()
	o.Accesses = 20000
	fs.IntVar(&o.Scale, "scale", o.Scale, "capacity scale divisor (power of two; 1 = Table I)")
	fs.IntVar(&o.Accesses, "accesses", o.Accesses, "memory accesses per core")
	var seed uint64
	fs.Uint64Var(&seed, "seed", 1, "campaign seed (workloads and fault sequence)")
	fs.IntVar(&o.Workers, "workers", o.Workers, "parallel campaign cells (output is identical at any value)")
	fs.IntVar(&o.Retries, "retries", o.Retries, "extra attempts for a panicking cell before it is recorded as failed")
	fs.StringVar(&o.CrashDir, "crash", o.CrashDir, "directory for panic replay bundles (\"\" disables)")
	quiet := fs.Bool("quiet", false, "suppress progress and timing lines on stderr")
	kinds := fs.String("faults", "all", "comma-separated injector kinds (see -list)")
	auditEvery := fs.Int("audit-every", 1000, "run the invariant auditor every N scheduler steps (0 = only at completion)")
	failFast := fs.Bool("fail-fast", false, "stop the campaign at the first failing cell")
	campaigns := fs.String("campaigns", "all", "comma-separated campaign cells (see -list)")
	rateScale := fs.Float64("rate-scale", 1, "multiply every injector's default rate")
	list := fs.Bool("list", false, "describe injectors and campaign cells, then exit")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *list {
		faults.WriteList(os.Stdout)
		return
	}
	o.Seed = seed
	if !*quiet {
		o.Progress = os.Stderr
	}
	if err := o.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "audit:", err)
		os.Exit(2)
	}
	if *auditEvery < 0 {
		fmt.Fprintf(os.Stderr, "audit: -audit-every must be non-negative, got %d\n", *auditEvery)
		os.Exit(2)
	}
	cfg := faults.DefaultConfig()
	cfg.AuditEvery = *auditEvery
	cfg.RateScale = *rateScale
	cfg.FailFast = *failFast
	var err error
	if cfg.Enabled, err = faults.ParseKinds(*kinds); err != nil {
		fmt.Fprintln(os.Stderr, "audit:", err)
		os.Exit(2)
	}
	cells, err := faults.SelectCampaigns(*campaigns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "audit:", err)
		os.Exit(2)
	}
	start := time.Now()
	if err := faults.RunCampaigns(cfg, cells, o, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "audit: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "[audit finished in %v]\n", time.Since(start).Round(time.Millisecond))
	}
}
