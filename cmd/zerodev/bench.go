package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/atomicio"
	"repro/internal/backend"
	"repro/internal/harness"
	"repro/internal/stats"
)

// BenchFileVersion tags the BENCH_*.json schema; bump it when fields
// change meaning. The conventional output name is BENCH_<v>.json.
const BenchFileVersion = 7

// Named comparison failures, so callers (and the regression-gate table
// test) can distinguish an unusable baseline from a real regression.
var (
	// ErrBaselineMissing: the -compare baseline file cannot be read.
	ErrBaselineMissing = errors.New("bench: baseline file missing")
	// ErrBaselineVersion: the baseline's schema version differs from
	// BenchFileVersion, so its entries are not comparable.
	ErrBaselineVersion = errors.New("bench: baseline schema version mismatch")
)

// benchEntry is one measured benchmark: an experiment at a worker
// count. NsPerOp/AllocsPerOp/BytesPerOp are from the fastest of the
// -count runs (minimum is the stable statistic on a noisy machine; the
// raw samples are kept so any other statistic can be recomputed).
type benchEntry struct {
	Experiment string `json:"experiment"`
	// Backend tags entries from the per-backend sweep (the figbackends
	// experiment restricted to one protocol backend); omitted for the
	// classic whole-experiment entries, so pre-backend baselines stay
	// comparable entry for entry.
	Backend string `json:"backend,omitempty"`
	Workers int    `json:"workers"`
	// DomainWorkers is the intra-run epoch-scheduler worker count
	// (harness.Options.DomainWorkers); omitted for serial stepping.
	DomainWorkers int     `json:"domain_workers,omitempty"`
	NsPerOp       int64   `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	SamplesNs     []int64 `json:"samples_ns"`
	// Parallelism is the realized speedup (summed sim time over wall
	// time) of the last run; present only for Workers > 1.
	Parallelism float64 `json:"parallelism,omitempty"`
}

// benchPreChange carries the pre-optimization receipts: the same
// benchmark measured on the commit before the hot-path overhaul, on the
// same machine and at the same settings, so the improvement claim in
// this file is checkable against raw samples rather than folklore. The
// block is copied forward verbatim whenever the output file is
// regenerated.
type benchPreChange struct {
	Commit           string  `json:"commit"`
	Description      string  `json:"description"`
	Method           string  `json:"method"`
	Fig18SamplesNs   []int64 `json:"fig18_samples_ns"`
	Fig18MedianNs    int64   `json:"fig18_median_ns"`
	Fig18AllocsPerOp int64   `json:"fig18_allocs_per_op"`
	Fig18BytesPerOp  int64   `json:"fig18_bytes_per_op"`
	// Multisocket receipts for the domain-scheduler PR: the serial
	// multisocket experiment measured on the commit before the epoch
	// scheduler landed, same machine and settings.
	MultisocketSamplesNs   []int64 `json:"multisocket_samples_ns,omitempty"`
	MultisocketMedianNs    int64   `json:"multisocket_median_ns,omitempty"`
	MultisocketAllocsPerOp int64   `json:"multisocket_allocs_per_op,omitempty"`
	MultisocketBytesPerOp  int64   `json:"multisocket_bytes_per_op,omitempty"`
}

type benchConfig struct {
	Scale    int    `json:"scale"`
	Accesses int    `json:"accesses"`
	Seed     uint64 `json:"seed"`
	Quick    bool   `json:"quick"`
}

type benchFile struct {
	Version    int             `json:"version"`
	Go         string          `json:"go"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Config     benchConfig     `json:"config"`
	PreChange  *benchPreChange `json:"pre_change,omitempty"`
	// Fig18ImprovementX = pre_change.fig18_median_ns / the serial Fig18
	// ns_per_op of this file, when both are present.
	Fig18ImprovementX float64      `json:"fig18_improvement_vs_pre_change,omitempty"`
	Notes             []string     `json:"notes,omitempty"`
	Results           []benchEntry `json:"results"`
}

// benchCmd measures the per-figure experiment benchmarks at Quick scale
// and writes a versioned BENCH JSON. With -compare it additionally
// gates against a committed baseline file, failing (exit 1) when the
// serial Fig18 ns/op regresses more than -max-regress.
func benchCmd(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	o := harness.DefaultOptions()
	o.Scale, o.Accesses, o.Quick, o.Workers = 32, 5000, true, 1
	fs.IntVar(&o.Scale, "scale", o.Scale, "capacity scale divisor (power of two)")
	fs.IntVar(&o.Accesses, "accesses", o.Accesses, "memory accesses per core")
	var seed uint64
	fs.Uint64Var(&seed, "seed", 1, "workload synthesis seed")
	ids := fs.String("experiments", "fig2,fig5,fig6,fig18,multisocket,figscale",
		"comma-separated experiments to benchmark serially, or `all`")
	parIDs := fs.String("parallel", "fig18",
		"comma-separated experiments to additionally benchmark on the parallel engine (\"\" disables)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker count for the -parallel runs")
	domIDs := fs.String("domain", "fig18,multisocket",
		"comma-separated experiments to additionally benchmark under the epoch-barrier domain scheduler (\"\" disables)")
	domWorkers := fs.String("domain-workers", "2,4",
		"comma-separated intra-run domain-worker counts for the -domain runs (\"\" disables)")
	backendsFlag := fs.String("backends", "all",
		"comma-separated protocol backends to benchmark individually (each a figbackends run restricted to one backend; \"\" disables)")
	count := fs.Int("count", 3, "runs per benchmark; ns/op is the fastest run")
	out := fs.String("o", fmt.Sprintf("BENCH_%d.json", BenchFileVersion),
		"output file; an existing file's pre_change block is carried forward")
	compare := fs.String("compare", "", "baseline BENCH JSON to regression-gate against")
	maxRegress := fs.Float64("max-regress", 0.20,
		"fail if serial Fig18 ns/op exceeds the -compare baseline by more than this fraction")
	prof := addProfFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProf, err := prof.start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	defer stopProf()
	o.Seed = seed
	if err := o.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	if *count < 1 {
		fmt.Fprintln(os.Stderr, "bench: -count must be at least 1")
		return 2
	}

	serial, err := benchIDs(*ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	parallel, err := benchIDs(*parIDs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	domain, err := benchIDs(*domIDs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}
	dwCounts, err := parseWorkerList(*domWorkers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 2
	}

	bf := benchFile{
		Version:    BenchFileVersion,
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     benchConfig{Scale: o.Scale, Accesses: o.Accesses, Seed: o.Seed, Quick: o.Quick},
		PreChange:  loadPreChange(*out),
	}
	for _, id := range serial {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "bench: interrupted")
			return harness.ExitInterrupted
		}
		ent, err := measureBest(ctx, id, o, 1, 1, *count)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		bf.Results = append(bf.Results, ent)
		fmt.Printf("%-14s workers=1        %12d ns/op  %9d B/op  %7d allocs/op\n",
			id, ent.NsPerOp, ent.BytesPerOp, ent.AllocsPerOp)
	}
	for _, id := range parallel {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "bench: interrupted")
			return harness.ExitInterrupted
		}
		ent, err := measureBest(ctx, id, o, *workers, 1, *count)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		bf.Results = append(bf.Results, ent)
		fmt.Printf("%-14s workers=%-2d       %12d ns/op  %9d B/op  %7d allocs/op  %.1fx realized\n",
			id, ent.Workers, ent.NsPerOp, ent.BytesPerOp, ent.AllocsPerOp, ent.Parallelism)
	}
	for _, dw := range dwCounts {
		for _, id := range domain {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "bench: interrupted")
				return harness.ExitInterrupted
			}
			ent, err := measureBest(ctx, id, o, 1, dw, *count)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				return 1
			}
			bf.Results = append(bf.Results, ent)
			fmt.Printf("%-14s domain-workers=%-2d %10d ns/op  %9d B/op  %7d allocs/op\n",
				id, dw, ent.NsPerOp, ent.BytesPerOp, ent.AllocsPerOp)
		}
	}
	if *backendsFlag != "" {
		bids, err := backend.ParseList(*backendsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: -backends:", err)
			return 2
		}
		for _, bid := range bids {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "bench: interrupted")
				return harness.ExitInterrupted
			}
			bo := o
			bo.Backends = string(bid)
			ent, err := measureBest(ctx, "figbackends", bo, 1, 1, *count)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				return 1
			}
			ent.Backend = string(bid)
			bf.Results = append(bf.Results, ent)
			fmt.Printf("%-14s backend=%-13s %10d ns/op  %9d B/op  %7d allocs/op\n",
				"figbackends", bid, ent.NsPerOp, ent.BytesPerOp, ent.AllocsPerOp)
		}
		if len(bids) > 0 {
			bf.Notes = append(bf.Notes,
				"backend entries are the figbackends sweep restricted to one protocol backend each, measured serially (workers=1); they compare protocol cost, not host parallelism")
		}
	}

	if len(domain) > 0 && len(dwCounts) > 0 && runtime.GOMAXPROCS(0) == 1 {
		bf.Notes = append(bf.Notes,
			"domain-worker entries were measured with GOMAXPROCS=1: they show the epoch scheduler's bookkeeping overhead, not a wall-clock speedup; byte-identical output is enforced by the harness serial-equivalence suite")
	}

	if e := bf.find("fig18", 1, 0); e != nil && bf.PreChange != nil && e.NsPerOp > 0 {
		bf.Fig18ImprovementX = float64(bf.PreChange.Fig18MedianNs) / float64(e.NsPerOp)
		fmt.Printf("fig18 serial vs pre-change median: %.2fx\n", bf.Fig18ImprovementX)
	}

	if *out != "" {
		b, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		if err := atomicio.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *compare != "" {
		if err := compareBench(bf, *compare, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		fmt.Printf("within %d%% of baseline %s\n", int(*maxRegress*100), *compare)
	}
	return 0
}

// benchIDs expands a comma-separated experiment list, validating every
// name against the harness registry. "all" expands to the full paper
// order; "" is empty.
func benchIDs(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	if s == "all" {
		var ids []string
		for _, e := range harness.List() {
			ids = append(ids, e.ID)
		}
		return ids, nil
	}
	ids := strings.Split(s, ",")
	for _, id := range ids {
		if _, err := harness.Get(id); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// parseWorkerList expands a comma-separated list of worker counts;
// "" is empty.
func parseWorkerList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// measureBest measures one experiment count times and keeps the
// fastest run (accumulating raw samples).
func measureBest(ctx context.Context, id string, o harness.Options, workers, dw, count int) (benchEntry, error) {
	ent, err := measure(ctx, id, o, workers, dw)
	if err != nil {
		return benchEntry{}, err
	}
	for i := 1; i < count; i++ {
		more, err := measure(ctx, id, o, workers, dw)
		if err != nil {
			return benchEntry{}, err
		}
		ent = fastest(ent, more)
	}
	return ent, nil
}

// measure runs one experiment under testing.Benchmark. workers == 1
// measures the serial path (the one the determinism goldens pin);
// workers > 1 measures the parallel engine and reports its realized
// parallelism. dw > 1 additionally steps each run under the
// epoch-barrier domain scheduler (harness.Options.DomainWorkers) —
// output stays byte-identical, only the stepping schedule changes.
func measure(ctx context.Context, id string, o harness.Options, workers, dw int) (benchEntry, error) {
	e, err := harness.Get(id)
	if err != nil {
		return benchEntry{}, err
	}
	o.Workers = workers
	o.DomainWorkers = dw
	if dw <= 1 {
		dw = 0 // serial stepping; keep the JSON field omitted
	}
	var par float64
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if workers == 1 {
				runErr = e.Run(o, io.Discard)
			} else {
				var tm stats.RunTiming
				tm, runErr = e.Execute(ctx, o, io.Discard)
				par = tm.Parallelism()
			}
			if runErr != nil {
				b.Fatal(runErr)
			}
		}
	})
	if runErr != nil {
		return benchEntry{}, fmt.Errorf("%s: %w", id, runErr)
	}
	return benchEntry{
		Experiment:    id,
		Workers:       workers,
		DomainWorkers: dw,
		NsPerOp:       r.NsPerOp(),
		AllocsPerOp:   r.AllocsPerOp(),
		BytesPerOp:    r.AllocedBytesPerOp(),
		SamplesNs:     []int64{r.NsPerOp()},
		Parallelism:   par,
	}, nil
}

// fastest merges two runs of the same benchmark, keeping the faster
// figures and accumulating the raw samples.
func fastest(a, b benchEntry) benchEntry {
	samples := append(a.SamplesNs, b.SamplesNs...)
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if b.NsPerOp < a.NsPerOp {
		b.SamplesNs = samples
		return b
	}
	a.SamplesNs = samples
	return a
}

func (f *benchFile) find(id string, workers, dw int) *benchEntry {
	return f.findBackend(id, "", workers, dw)
}

// findBackend locates one entry by its full identity, including the
// backend tag ("" matches the classic untagged entries, which is what
// keeps pre-backend baselines comparable).
func (f *benchFile) findBackend(id, backendID string, workers, dw int) *benchEntry {
	for i := range f.Results {
		e := &f.Results[i]
		if e.Experiment == id && e.Backend == backendID && e.Workers == workers && e.DomainWorkers == dw {
			return e
		}
	}
	return nil
}

// loadPreChange carries the pre_change receipts forward from an
// existing output file, so regenerating the benchmarks never silently
// drops the baseline the improvement claim is made against.
func loadPreChange(path string) *benchPreChange {
	if path == "" {
		return nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var old benchFile
	if err := json.Unmarshal(b, &old); err != nil {
		return nil
	}
	return old.PreChange
}

// compareBench gates the serial Fig18 measurement against a baseline
// file: a regression beyond maxRegress fails the run. Only Fig18 gates
// — it is the 128-core serial stress benchmark the overhaul targets —
// but every common entry is reported. A missing baseline fails with
// ErrBaselineMissing and a schema-version mismatch with
// ErrBaselineVersion, so CI distinguishes a broken gate setup from a
// real performance regression.
func compareBench(cur benchFile, baselinePath string, maxRegress float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBaselineMissing, baselinePath, err)
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	if base.Version != cur.Version {
		return fmt.Errorf("%w: baseline %s is version %d, this build writes version %d",
			ErrBaselineVersion, baselinePath, base.Version, cur.Version)
	}
	for _, b := range base.Results {
		if c := cur.findBackend(b.Experiment, b.Backend, b.Workers, b.DomainWorkers); c != nil && b.NsPerOp > 0 {
			label := fmt.Sprintf("workers=%d", b.Workers)
			if b.Backend != "" {
				label = "backend=" + b.Backend + " " + label
			}
			if b.DomainWorkers > 0 {
				label += fmt.Sprintf(" domain-workers=%d", b.DomainWorkers)
			}
			fmt.Printf("vs baseline: %-14s %-24s %+.1f%%\n", b.Experiment, label,
				100*(float64(c.NsPerOp)/float64(b.NsPerOp)-1))
		}
	}
	b := base.find("fig18", 1, 0)
	c := cur.find("fig18", 1, 0)
	if b == nil || c == nil {
		return fmt.Errorf("comparison needs a serial fig18 entry in both files")
	}
	limit := float64(b.NsPerOp) * (1 + maxRegress)
	if float64(c.NsPerOp) > limit {
		return fmt.Errorf("fig18 regressed: %d ns/op vs baseline %d (>%d%% over)",
			c.NsPerOp, b.NsPerOp, int(maxRegress*100))
	}
	return nil
}
