package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBaseline marshals a benchFile to a temp path for compareBench.
func writeBaseline(t *testing.T, bf benchFile) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	b, err := json.Marshal(bf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchWith(fig18Ns int64) benchFile {
	return benchFile{
		Version: BenchFileVersion,
		Results: []benchEntry{{Experiment: "fig18", Workers: 1, NsPerOp: fig18Ns}},
	}
}

// TestCompareBench pins the regression gate's failure modes: a missing
// baseline and a schema-version mismatch fail with their named errors
// (not a generic message a CI job could mistake for a regression), a
// within-limit measurement passes, and a real regression fails with
// neither named error.
func TestCompareBench(t *testing.T) {
	cur := benchWith(1_000_000)
	for _, tc := range []struct {
		name     string
		baseline func(t *testing.T) string
		wantErr  error  // errors.Is target; nil = expect success
		wantMsg  string // substring of a non-nil error, when wantErr is nil
	}{
		{
			name:     "baseline missing",
			baseline: func(t *testing.T) string { return filepath.Join(t.TempDir(), "nope.json") },
			wantErr:  ErrBaselineMissing,
		},
		{
			name: "baseline version mismatch",
			baseline: func(t *testing.T) string {
				bf := benchWith(1_000_000)
				bf.Version = BenchFileVersion - 1
				return writeBaseline(t, bf)
			},
			wantErr: ErrBaselineVersion,
		},
		{
			name:     "within limit",
			baseline: func(t *testing.T) string { return writeBaseline(t, benchWith(900_000)) },
		},
		{
			name:     "regression beyond limit",
			baseline: func(t *testing.T) string { return writeBaseline(t, benchWith(500_000)) },
			wantMsg:  "fig18 regressed",
		},
		{
			name: "baseline lacks serial fig18",
			baseline: func(t *testing.T) string {
				bf := benchWith(1_000_000)
				bf.Results[0].DomainWorkers = 2
				return writeBaseline(t, bf)
			},
			wantMsg: "serial fig18 entry",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := compareBench(cur, tc.baseline(t), 0.20)
			switch {
			case tc.wantErr != nil:
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want errors.Is(err, %v)", err, tc.wantErr)
				}
			case tc.wantMsg != "":
				if err == nil || !strings.Contains(err.Error(), tc.wantMsg) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantMsg)
				}
				if errors.Is(err, ErrBaselineMissing) || errors.Is(err, ErrBaselineVersion) {
					t.Fatalf("regression error %v must not match the baseline-setup errors", err)
				}
			default:
				if err != nil {
					t.Fatalf("err = %v, want nil", err)
				}
			}
		})
	}
}

// TestFindEntry pins that serial and domain-scheduler measurements of
// the same experiment are distinct rows in the comparison.
func TestFindEntry(t *testing.T) {
	bf := benchFile{Results: []benchEntry{
		{Experiment: "multisocket", Workers: 1, NsPerOp: 10},
		{Experiment: "multisocket", Workers: 1, DomainWorkers: 2, NsPerOp: 20},
	}}
	if e := bf.find("multisocket", 1, 0); e == nil || e.NsPerOp != 10 {
		t.Fatalf("serial entry = %+v, want ns_per_op 10", e)
	}
	if e := bf.find("multisocket", 1, 2); e == nil || e.NsPerOp != 20 {
		t.Fatalf("dw=2 entry = %+v, want ns_per_op 20", e)
	}
	if e := bf.find("multisocket", 2, 0); e != nil {
		t.Fatalf("workers=2 entry = %+v, want nil", e)
	}
}

// TestFindEntryBackendAxis pins that backend-tagged entries are
// distinct rows — and invisible to the untagged lookups the regression
// gate and pre-backend baselines use, which is what makes the
// per-backend additions non-breaking.
func TestFindEntryBackendAxis(t *testing.T) {
	bf := benchFile{Results: []benchEntry{
		{Experiment: "figbackends", Backend: "zerodev", Workers: 1, NsPerOp: 10},
		{Experiment: "figbackends", Backend: "dls", Workers: 1, NsPerOp: 20},
	}}
	if e := bf.findBackend("figbackends", "dls", 1, 0); e == nil || e.NsPerOp != 20 {
		t.Fatalf("dls entry = %+v, want ns_per_op 20", e)
	}
	if e := bf.find("figbackends", 1, 0); e != nil {
		t.Fatalf("untagged lookup matched a backend-tagged entry: %+v", e)
	}
	// A backend-tagged current file still satisfies an old untagged
	// baseline: the gate's fig18 lookup ignores the new rows.
	cur := benchWith(1_000_000)
	cur.Results = append(cur.Results, bf.Results...)
	if err := compareBench(cur, writeBaseline(t, benchWith(1_000_000)), 0.20); err != nil {
		t.Fatalf("backend-tagged entries broke comparison against an untagged baseline: %v", err)
	}
}
