package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/atomicio"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcheck"
)

// checkCmd runs the internal/mcheck exhaustive protocol model checker:
// every interleaving of the bounded op alphabet up to -depth, on a tiny
// instance of the real engine, with invariants checked at every newly
// reached state. A violation is minimized and written as a replayable
// counterexample trace; -replay re-runs such a file.
func checkCmd(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	cores := fs.Int("cores", 2, fmt.Sprintf("core count (2..%d)", mcheck.MaxCores))
	addrs := fs.Int("addrs", 2, fmt.Sprintf("distinct block addresses in the op alphabet (1..%d)", mcheck.MaxAddrs))
	depth := fs.Int("depth", 6, "explore every op sequence up to this length")
	policies := fs.String("policies", "all", "comma-separated DE policies (spillall,fpss,fuseall) or all; zerodev only")
	backends := fs.String("backends", "zerodev", "comma-separated protocol backends to check, or all; backends that do not claim zero-DEV get an extra differentiator pass that forces the assertion and must find a counterexample")
	dirEntries := fs.Int("dir", 0, "replacement-disabled sparse directory entries (0 = none: every entry housed in the LLC)")
	workers := fs.Int("workers", harness.DefaultOptions().Workers,
		"parallel frontier expansion workers (results are identical at any value)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-expansion watchdog: abort the search if a frontier expansion runs longer than this (0 = off)")
	broken := fs.Bool("broken", false, "check the deliberately broken protocol variant (live PutDE dropped); a counterexample is expected")
	out := fs.String("o", "", "counterexample trace file (default counterexample-<policy>.json)")
	replayPath := fs.String("replay", "", "replay a counterexample trace file and exit")
	list := fs.Bool("list", false, "describe the op alphabet and properties, then exit")
	quiet := fs.Bool("quiet", false, "suppress per-depth progress lines on stderr")
	prof := addProfFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		writeCheckList(os.Stdout, *cores, *addrs)
		return 0
	}
	stopProf, err := prof.start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "check:", err)
		return 2
	}
	defer stopProf()
	if *replayPath != "" {
		if err := replayCounterexample(*replayPath, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "check:", err)
			return 1
		}
		return 0
	}
	pols, err := mcheck.ParsePolicies(*policies)
	if err != nil {
		fmt.Fprintln(os.Stderr, "check:", err)
		return 2
	}
	ids, err := backend.ParseList(*backends)
	if err != nil {
		fmt.Fprintln(os.Stderr, "check: -backends:", err)
		return 2
	}
	jobs, err := checkJobs(ids, pols, *cores, *addrs, *depth, *dirEntries, *broken, *workers, *jobTimeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "check:", err)
		return 2
	}
	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}
	start := time.Now()
	violations := 0
	for _, jb := range jobs {
		err := runCheck(ctx, jb.cfg, *out, os.Stdout, progress)
		_, found := err.(*violationError)
		switch {
		case jb.expectViolation && found:
			fmt.Fprintf(os.Stdout, "  differentiator: %s produced the expected zero-DEV counterexample\n", jb.cfg.Label())
		case jb.expectViolation && err == nil:
			fmt.Fprintf(os.Stderr, "check: differentiator failed: %s explored clean under the forced zero-DEV assertion (a counterexample was expected)\n", jb.cfg.Label())
			violations++
		case found:
			violations++
		case err != nil:
			fmt.Fprintln(os.Stderr, "check:", err)
			return checkExit(err)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "[check finished in %v]\n", time.Since(start).Round(time.Millisecond))
	}
	if violations > 0 {
		return 1
	}
	return 0
}

// checkJob pairs a configuration with its expected outcome: the
// differentiator passes on backends that do not claim zero-DEV succeed
// only by finding a counterexample.
type checkJob struct {
	cfg             mcheck.Config
	expectViolation bool
}

// checkJobs expands the backend/policy selection into the run list.
// zerodev sweeps the DE-policy axis (and alone honors -broken); the
// other backends run once in their canonical organization, and the
// ones that do not claim zero-DEV add a differentiator pass with the
// property forced on over a deliberately conflict-heavy single-entry
// directory, so the checker proves — rather than assumes — that the
// baseline actually produces directory eviction victims.
func checkJobs(ids []backend.ID, pols []core.DEPolicy, cores, addrs, depth, dirEntries int, broken bool, workers int, jobTimeout time.Duration) ([]checkJob, error) {
	base := mcheck.Config{
		Cores: cores, Addrs: addrs, Depth: depth,
		Workers: workers, JobTimeout: jobTimeout,
	}
	var jobs []checkJob
	haveZeroDEV := false
	for _, id := range ids {
		if id == backend.ZeroDEV {
			haveZeroDEV = true
			for _, pol := range pols {
				cfg := base
				cfg.Policy, cfg.DirEntries, cfg.Broken = pol, dirEntries, broken
				jobs = append(jobs, checkJob{cfg: cfg})
			}
			continue
		}
		cfg := base
		cfg.Backend = id
		switch {
		case id == backend.DLS:
			cfg.DirEntries = 0 // directoryless by construction
		case dirEntries > 0:
			cfg.DirEntries = dirEntries
		default:
			cfg.DirEntries = 1
		}
		jobs = append(jobs, checkJob{cfg: cfg})
		if !backend.MustGet(id).ClaimsZeroDEV {
			diff := cfg
			diff.AssertZeroDEV = true
			// A single-entry directory guarantees an allocation conflict
			// as soon as two addresses are tracked, so the expected DEV is
			// reachable within any useful depth.
			diff.DirEntries = 1
			jobs = append(jobs, checkJob{cfg: diff, expectViolation: true})
		}
	}
	if broken && !haveZeroDEV {
		return nil, fmt.Errorf("-broken wraps the zerodev home agent; include zerodev in -backends")
	}
	return jobs, nil
}

// violationError marks a completed run that found a counterexample, as
// opposed to a run that could not be performed.
type violationError struct{ err string }

func (e *violationError) Error() string { return e.err }

// checkExit maps a non-violation check failure to its exit code
// (interrupted and watchdog-timeout searches get their documented
// codes; anything else is a usage/configuration error).
func checkExit(err error) int {
	if harness.IsCancelled(err) {
		return harness.ExitInterrupted
	}
	if harness.IsTimeout(err) {
		return harness.ExitTimeout
	}
	return 2
}

// runCheck explores one policy and renders the outcome to w. A found
// violation is minimized, written to tracePath (or its default), and
// returned as *violationError.
func runCheck(ctx context.Context, cfg mcheck.Config, tracePath string, w, progress io.Writer) error {
	res, err := mcheck.Explore(ctx, cfg, progress)
	if err != nil {
		return err
	}
	fmt.Fprint(w, formatResult(res))
	if res.Violation == nil {
		return nil
	}
	min := mcheck.Minimize(cfg, *res.Violation)
	if tracePath == "" {
		tracePath = fmt.Sprintf("counterexample-%s.json", cfg.Label())
	}
	// The counterexample is written atomically: a kill mid-write leaves
	// the previous trace (or nothing), never a torn file.
	f, err := atomicio.Create(tracePath)
	if err != nil {
		return err
	}
	if err := mcheck.NewTrace(cfg, min).Encode(f); err != nil {
		f.Discard()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprint(w, formatViolation(min))
	fmt.Fprintf(w, "  trace written to %s (replay with `zerodev check -replay %s`)\n", tracePath, tracePath)
	return &violationError{err: min.Err}
}

// formatResult renders one exploration summary line (stable output:
// golden-tested and byte-identical at any worker count).
func formatResult(res mcheck.Result) string {
	cfg := res.Config
	coverage := "bounded"
	if res.Exhausted {
		coverage = "exhaustive"
	}
	verdict := "no violations"
	if res.Violation != nil {
		verdict = "VIOLATION"
	}
	axis := "policy"
	if cfg.Backend != "" && cfg.Backend != backend.ZeroDEV {
		axis = "backend"
	}
	return fmt.Sprintf("%s=%-8s cores=%d addrs=%d depth=%d dir=%d: %d states explored (%d deduped, %s): %s\n",
		axis, cfg.Label(), cfg.Cores, cfg.Addrs, cfg.Depth, cfg.DirEntries,
		res.Explored, res.Deduped, coverage, verdict)
}

// formatViolation renders a minimized counterexample.
func formatViolation(v mcheck.Violation) string {
	s := fmt.Sprintf("  %s\n", v.Err)
	s += fmt.Sprintf("  counterexample (%d ops, minimized from %d): %s\n",
		len(v.Ops), v.MinimizedFrom, mcheck.FormatOps(v.Ops))
	return s
}

// replayCounterexample re-runs a trace file and reports the reproduced
// violation.
func replayCounterexample(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := mcheck.DecodeTrace(f)
	if err != nil {
		return err
	}
	v, err := mcheck.Replay(tr)
	if err != nil {
		return err
	}
	extra := ""
	if tr.Backend != "" {
		extra = fmt.Sprintf(" backend=%s", tr.Backend)
	}
	if tr.AssertZeroDEV {
		extra += " assert-zero-dev"
	}
	fmt.Fprintf(w, "replayed %d ops (policy=%s%s cores=%d addrs=%d dir=%d broken=%v): %s\n",
		len(tr.Ops), tr.Policy, extra, tr.Cores, tr.Addrs, tr.DirEntries, tr.Broken, mcheck.FormatOps(opsOf(v)))
	fmt.Fprintf(w, "reproduced violation at op %d: %s\n", len(v.Ops), v.Err)
	return nil
}

func opsOf(v mcheck.Violation) []mcheck.Op { return v.Ops }

// writeCheckList describes the checker's op alphabet and property set
// for the given shape; part of the CLI surface, golden-tested.
func writeCheckList(w io.Writer, cores, addrs int) {
	cfg := mcheck.Config{Cores: cores, Addrs: addrs, Depth: 1, Policy: core.SpillAll, Workers: 1}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(w, "invalid shape:", err)
		return
	}
	fmt.Fprintf(w, "op alphabet (%d cores, %d addrs):\n", cores, addrs)
	for _, op := range mcheck.Alphabet(cfg) {
		fmt.Fprintf(w, "  %s\n", op)
	}
	fmt.Fprint(w, `properties checked at every reached state:
  - core.CheckInvariants (directory/private-cache cross-validation, FPSS forms, LLC housing rules)
  - zero-DEV: no private-cache invalidation attributable to directory replacement
    (asserted on backends that claim it; -backends adds a differentiator pass on the
    others that forces the assertion and must find a minimized counterexample)
  - single-writer: at most one core holds a block in M/E
  - no entry is busy between transactions; no block tracked in two locations
  - corrupted-home recoverability: an overwritten memory block keeps a reachable copy
`)
}
