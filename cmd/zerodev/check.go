package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mcheck"
)

// checkCmd runs the internal/mcheck exhaustive protocol model checker:
// every interleaving of the bounded op alphabet up to -depth, on a tiny
// instance of the real engine, with invariants checked at every newly
// reached state. A violation is minimized and written as a replayable
// counterexample trace; -replay re-runs such a file.
func checkCmd(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	cores := fs.Int("cores", 2, fmt.Sprintf("core count (2..%d)", mcheck.MaxCores))
	addrs := fs.Int("addrs", 2, fmt.Sprintf("distinct block addresses in the op alphabet (1..%d)", mcheck.MaxAddrs))
	depth := fs.Int("depth", 6, "explore every op sequence up to this length")
	policies := fs.String("policies", "all", "comma-separated DE policies (spillall,fpss,fuseall) or all")
	dirEntries := fs.Int("dir", 0, "replacement-disabled sparse directory entries (0 = none: every entry housed in the LLC)")
	workers := fs.Int("workers", harness.DefaultOptions().Workers,
		"parallel frontier expansion workers (results are identical at any value)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-expansion watchdog: abort the search if a frontier expansion runs longer than this (0 = off)")
	broken := fs.Bool("broken", false, "check the deliberately broken protocol variant (live PutDE dropped); a counterexample is expected")
	out := fs.String("o", "", "counterexample trace file (default counterexample-<policy>.json)")
	replayPath := fs.String("replay", "", "replay a counterexample trace file and exit")
	list := fs.Bool("list", false, "describe the op alphabet and properties, then exit")
	quiet := fs.Bool("quiet", false, "suppress per-depth progress lines on stderr")
	prof := addProfFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		writeCheckList(os.Stdout, *cores, *addrs)
		return 0
	}
	stopProf, err := prof.start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "check:", err)
		return 2
	}
	defer stopProf()
	if *replayPath != "" {
		if err := replayCounterexample(*replayPath, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "check:", err)
			return 1
		}
		return 0
	}
	pols, err := mcheck.ParsePolicies(*policies)
	if err != nil {
		fmt.Fprintln(os.Stderr, "check:", err)
		return 2
	}
	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}
	start := time.Now()
	violations := 0
	for _, pol := range pols {
		cfg := mcheck.Config{
			Cores: *cores, Addrs: *addrs, Depth: *depth,
			Policy: pol, DirEntries: *dirEntries,
			Broken: *broken, Workers: *workers,
			JobTimeout: *jobTimeout,
		}
		if err := runCheck(ctx, cfg, *out, os.Stdout, progress); err != nil {
			if _, bad := err.(*violationError); bad {
				violations++
				continue
			}
			fmt.Fprintln(os.Stderr, "check:", err)
			return checkExit(err)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "[check finished in %v]\n", time.Since(start).Round(time.Millisecond))
	}
	if violations > 0 {
		return 1
	}
	return 0
}

// violationError marks a completed run that found a counterexample, as
// opposed to a run that could not be performed.
type violationError struct{ err string }

func (e *violationError) Error() string { return e.err }

// checkExit maps a non-violation check failure to its exit code
// (interrupted and watchdog-timeout searches get their documented
// codes; anything else is a usage/configuration error).
func checkExit(err error) int {
	if harness.IsCancelled(err) {
		return harness.ExitInterrupted
	}
	if harness.IsTimeout(err) {
		return harness.ExitTimeout
	}
	return 2
}

// runCheck explores one policy and renders the outcome to w. A found
// violation is minimized, written to tracePath (or its default), and
// returned as *violationError.
func runCheck(ctx context.Context, cfg mcheck.Config, tracePath string, w, progress io.Writer) error {
	res, err := mcheck.Explore(ctx, cfg, progress)
	if err != nil {
		return err
	}
	fmt.Fprint(w, formatResult(res))
	if res.Violation == nil {
		return nil
	}
	min := mcheck.Minimize(cfg, *res.Violation)
	if tracePath == "" {
		tracePath = fmt.Sprintf("counterexample-%s.json", mcheck.PolicyName(cfg.Policy))
	}
	// The counterexample is written atomically: a kill mid-write leaves
	// the previous trace (or nothing), never a torn file.
	f, err := atomicio.Create(tracePath)
	if err != nil {
		return err
	}
	if err := mcheck.NewTrace(cfg, min).Encode(f); err != nil {
		f.Discard()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprint(w, formatViolation(min))
	fmt.Fprintf(w, "  trace written to %s (replay with `zerodev check -replay %s`)\n", tracePath, tracePath)
	return &violationError{err: min.Err}
}

// formatResult renders one exploration summary line (stable output:
// golden-tested and byte-identical at any worker count).
func formatResult(res mcheck.Result) string {
	cfg := res.Config
	coverage := "bounded"
	if res.Exhausted {
		coverage = "exhaustive"
	}
	verdict := "no violations"
	if res.Violation != nil {
		verdict = "VIOLATION"
	}
	return fmt.Sprintf("policy=%-8s cores=%d addrs=%d depth=%d dir=%d: %d states explored (%d deduped, %s): %s\n",
		mcheck.PolicyName(cfg.Policy), cfg.Cores, cfg.Addrs, cfg.Depth, cfg.DirEntries,
		res.Explored, res.Deduped, coverage, verdict)
}

// formatViolation renders a minimized counterexample.
func formatViolation(v mcheck.Violation) string {
	s := fmt.Sprintf("  %s\n", v.Err)
	s += fmt.Sprintf("  counterexample (%d ops, minimized from %d): %s\n",
		len(v.Ops), v.MinimizedFrom, mcheck.FormatOps(v.Ops))
	return s
}

// replayCounterexample re-runs a trace file and reports the reproduced
// violation.
func replayCounterexample(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := mcheck.DecodeTrace(f)
	if err != nil {
		return err
	}
	v, err := mcheck.Replay(tr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replayed %d ops (policy=%s cores=%d addrs=%d dir=%d broken=%v): %s\n",
		len(tr.Ops), tr.Policy, tr.Cores, tr.Addrs, tr.DirEntries, tr.Broken, mcheck.FormatOps(opsOf(v)))
	fmt.Fprintf(w, "reproduced violation at op %d: %s\n", len(v.Ops), v.Err)
	return nil
}

func opsOf(v mcheck.Violation) []mcheck.Op { return v.Ops }

// writeCheckList describes the checker's op alphabet and property set
// for the given shape; part of the CLI surface, golden-tested.
func writeCheckList(w io.Writer, cores, addrs int) {
	cfg := mcheck.Config{Cores: cores, Addrs: addrs, Depth: 1, Policy: core.SpillAll, Workers: 1}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(w, "invalid shape:", err)
		return
	}
	fmt.Fprintf(w, "op alphabet (%d cores, %d addrs):\n", cores, addrs)
	for _, op := range mcheck.Alphabet(cfg) {
		fmt.Fprintf(w, "  %s\n", op)
	}
	fmt.Fprint(w, `properties checked at every reached state:
  - core.CheckInvariants (directory/private-cache cross-validation, FPSS forms, LLC housing rules)
  - zero-DEV: no private-cache invalidation attributable to directory replacement
  - single-writer: at most one core holds a block in M/E
  - no entry is busy between transactions; no block tracked in two locations
  - corrupted-home recoverability: an overwritten memory block keeps a reachable copy
`)
}
