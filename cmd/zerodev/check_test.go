package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mcheck"
)

// TestCheckListGolden pins the `zerodev check -list` output: the op
// alphabet and the property set are part of the CLI surface.
func TestCheckListGolden(t *testing.T) {
	var buf bytes.Buffer
	writeCheckList(&buf, 2, 2)
	golden(t, "check_list", buf.Bytes())
}

// TestCheckCounterexampleGolden pins the minimized counterexample the
// checker finds for the deliberately broken protocol variant (live
// PutDE dropped), and proves the written trace replays to the identical
// violation — the full find → minimize → write → replay loop.
func TestCheckCounterexampleGolden(t *testing.T) {
	cfg := mcheck.Config{
		Cores: 2, Addrs: 2, Depth: 6,
		Policy: core.SpillAll, Broken: true, Workers: 4,
	}
	path := filepath.Join(t.TempDir(), "cex.json")
	var buf bytes.Buffer
	err := runCheck(context.Background(), cfg, path, &buf, nil)
	var vErr *violationError
	if !errors.As(err, &vErr) {
		t.Fatalf("broken variant did not yield a counterexample: err=%v\n%s", err, buf.Bytes())
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	golden(t, "check_counterexample", data)

	var rep bytes.Buffer
	if err := replayCounterexample(path, &rep); err != nil {
		// replayCounterexample only succeeds when the replayed violation
		// is byte-identical to the recorded one.
		t.Fatalf("replay did not reproduce the recorded violation: %v", err)
	}
	if !strings.Contains(rep.String(), vErr.err) {
		t.Fatalf("replay report %q does not state the violation %q", rep.String(), vErr.err)
	}
}
