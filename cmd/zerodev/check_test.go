package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/mcheck"
)

// TestCheckListGolden pins the `zerodev check -list` output: the op
// alphabet and the property set are part of the CLI surface.
func TestCheckListGolden(t *testing.T) {
	var buf bytes.Buffer
	writeCheckList(&buf, 2, 2)
	golden(t, "check_list", buf.Bytes())
}

// TestCheckCounterexampleGolden pins the minimized counterexample the
// checker finds for the deliberately broken protocol variant (live
// PutDE dropped), and proves the written trace replays to the identical
// violation — the full find → minimize → write → replay loop.
func TestCheckCounterexampleGolden(t *testing.T) {
	cfg := mcheck.Config{
		Cores: 2, Addrs: 2, Depth: 6,
		Policy: core.SpillAll, Broken: true, Workers: 4,
	}
	path := filepath.Join(t.TempDir(), "cex.json")
	var buf bytes.Buffer
	err := runCheck(context.Background(), cfg, path, &buf, nil)
	var vErr *violationError
	if !errors.As(err, &vErr) {
		t.Fatalf("broken variant did not yield a counterexample: err=%v\n%s", err, buf.Bytes())
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	golden(t, "check_counterexample", data)

	var rep bytes.Buffer
	if err := replayCounterexample(path, &rep); err != nil {
		// replayCounterexample only succeeds when the replayed violation
		// is byte-identical to the recorded one.
		t.Fatalf("replay did not reproduce the recorded violation: %v", err)
	}
	if !strings.Contains(rep.String(), vErr.err) {
		t.Fatalf("replay report %q does not state the violation %q", rep.String(), vErr.err)
	}
}

// TestCheckDifferentiatorCounterexampleGolden pins the minimized
// counterexample the differentiator pass finds on the sparse-MESI
// baseline under the forced zero-DEV assertion — the artifact that
// demonstrates real directory eviction victims on the backend the paper
// argues against — and proves the trace replays to the same violation.
func TestCheckDifferentiatorCounterexampleGolden(t *testing.T) {
	cfg := mcheck.Config{
		Cores: 2, Addrs: 2, Depth: 4,
		Backend: backend.SparseMESI, DirEntries: 1,
		AssertZeroDEV: true, Workers: 4,
	}
	path := filepath.Join(t.TempDir(), "cex.json")
	var buf bytes.Buffer
	err := runCheck(context.Background(), cfg, path, &buf, nil)
	var vErr *violationError
	if !errors.As(err, &vErr) {
		t.Fatalf("sparsemesi did not yield a zero-DEV counterexample: err=%v\n%s", err, buf.Bytes())
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	golden(t, "check_counterexample_sparsemesi", data)

	var rep bytes.Buffer
	if err := replayCounterexample(path, &rep); err != nil {
		t.Fatalf("replay did not reproduce the recorded violation: %v", err)
	}
	if !strings.Contains(rep.String(), vErr.err) {
		t.Fatalf("replay report %q does not state the violation %q", rep.String(), vErr.err)
	}
}

// TestCheckJobs pins the backend → run-list expansion: zerodev sweeps
// the policy axis, dls stays directoryless, and the non-claiming
// backends gain a differentiator pass over a 1-entry directory.
func TestCheckJobs(t *testing.T) {
	all, _ := backend.ParseList("all")
	pols := []core.DEPolicy{core.SpillAll, core.FPSS}
	jobs, err := checkJobs(all, pols, 2, 2, 4, 0, false, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var labels []string
	for _, jb := range jobs {
		if err := jb.cfg.Validate(); err != nil {
			t.Errorf("expanded job %q invalid: %v", jb.cfg.Label(), err)
		}
		if jb.expectViolation != (jb.cfg.AssertZeroDEV && !jb.cfg.ClaimsZeroDEV()) {
			t.Errorf("job %q: expectViolation=%v inconsistent with its assertion", jb.cfg.Label(), jb.expectViolation)
		}
		labels = append(labels, jb.cfg.Label())
	}
	want := []string{"spillall", "fpss", "sparsemesi", "sparsemesi+assert", "dls", "phasepriority", "phasepriority+assert"}
	if len(labels) != len(want) {
		t.Fatalf("jobs = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("jobs = %v, want %v", labels, want)
		}
	}

	// -broken without zerodev in the selection is refused.
	if _, err := checkJobs([]backend.ID{backend.DLS}, pols, 2, 2, 4, 0, true, 1, 0); err == nil {
		t.Fatal("-broken accepted without the zerodev backend")
	}
}
