package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/llc"
	"repro/internal/stats"
	"repro/internal/workload"
)

// compareCmd runs one workload under several named configurations and
// prints the metrics side by side — the quickstart example generalized
// to arbitrary configuration lists.
//
//	zerodev compare -configs baseline:1,zerodev:0,zerodev:0.125 canneal
func compareCmd(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	scale := fs.Int("scale", 8, "capacity scale divisor")
	accesses := fs.Int("accesses", 60000, "memory accesses per core")
	seed := fs.Uint64("seed", 1, "workload seed")
	configs := fs.String("configs", "baseline:1,zerodev:0",
		"comma-separated kind:ratio list (kinds: baseline, zerodev, unbounded, secdir, mgd)")
	mode := fs.String("mode", "noninclusive", "noninclusive | epd | inclusive")
	workers := fs.Int("workers", harness.DefaultOptions().Workers,
		"parallel simulation workers (1 = serial; output is identical either way)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "compare: exactly one application name required")
		os.Exit(2)
	}
	if err := (harness.Options{Scale: *scale, Accesses: *accesses, Workers: *workers}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(2)
	}
	prof, err := workload.Get(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	pre := config.TableI(*scale)
	lm := map[string]llc.Mode{"noninclusive": llc.NonInclusive, "epd": llc.EPD, "inclusive": llc.Inclusive}[strings.ToLower(*mode)]

	// Parse every config before simulating so flag errors surface
	// immediately, then submit one independent job per configuration and
	// collect results in flag order — the printed table is identical for
	// any worker count.
	var names []string
	var specs []core.SystemSpec
	for _, spec := range strings.Split(*configs, ",") {
		kind, ratioStr, _ := strings.Cut(strings.TrimSpace(spec), ":")
		var ratio float64
		fmt.Sscanf(ratioStr, "%g", &ratio)
		var sysSpec core.SystemSpec
		switch strings.ToLower(kind) {
		case "baseline":
			sysSpec = pre.Baseline(ratio, lm)
		case "zerodev":
			sysSpec = pre.ZeroDEV(ratio, core.FPSS, llc.DataLRU, lm)
		case "unbounded":
			sysSpec = pre.Unbounded(lm)
		case "secdir":
			sysSpec = pre.SecDir(ratio, lm)
		case "mgd":
			sysSpec = pre.MgD(ratio, lm)
		default:
			fatal(fmt.Errorf("compare: unknown config kind %q", kind))
		}
		names = append(names, spec)
		specs = append(specs, sysSpec)
	}
	type cfgResult struct {
		run stats.Run
		err error
	}
	pool := harness.NewPool(ctx, *workers, nil, "compare")
	var futs []*harness.Future[cfgResult]
	for i := range specs {
		name, sysSpec := names[i], specs[i]
		futs = append(futs, harness.Submit(pool, func(jctx context.Context) cfgResult {
			streams := workload.Threads(prof, sysSpec.Cores, *accesses, *scale, *seed)
			if prof.Suite == "CPU2017" {
				streams = workload.Rate(prof, sysSpec.Cores, *accesses, *scale, *seed)
			}
			sys := core.NewSystem(sysSpec, streams)
			cycles, err := sys.RunCtx(jctx, harness.JobSteps(jctx))
			if err != nil {
				return cfgResult{err: err}
			}
			if err := sys.Engine.CheckInvariants(); err != nil {
				return cfgResult{err: err}
			}
			return cfgResult{run: stats.Collect(name, sys, cycles)}
		}))
	}
	var runs []stats.Run
	for _, fut := range futs {
		res := fut.Wait()
		if res.err != nil {
			fatal(res.err)
		}
		runs = append(runs, res.run)
	}

	t := stats.Table{
		Title:   fmt.Sprintf("%s (%d cores, %d accesses/core, scale %d)", prof.Name, pre.Cores, *accesses, *scale),
		Headers: append([]string{"metric"}, names...),
	}
	addRow := func(label string, get func(stats.Run) string) {
		cells := []string{label}
		for _, r := range runs {
			cells = append(cells, get(r))
		}
		t.AddRow(cells...)
	}
	base := runs[0]
	addRow("speedup vs first", func(r stats.Run) string {
		if prof.Suite == "CPU2017" {
			return fmt.Sprintf("%.3f", stats.WeightedSpeedup(base, r))
		}
		return fmt.Sprintf("%.3f", stats.Speedup(base, r))
	})
	addRow("cycles", func(r stats.Run) string { return fmt.Sprintf("%d", r.Cycles) })
	addRow("core cache misses", func(r stats.Run) string { return fmt.Sprintf("%d", r.CoreCacheMisses()) })
	addRow("MPKI", func(r stats.Run) string { return fmt.Sprintf("%.1f", r.MPKI()) })
	addRow("interconnect bytes", func(r stats.Run) string { return fmt.Sprintf("%d", r.Traffic.TotalBytes()) })
	addRow("DEVs", func(r stats.Run) string { return fmt.Sprintf("%d", r.Engine.DEVs) })
	addRow("DE spills/fuses", func(r stats.Run) string {
		return fmt.Sprintf("%d/%d", r.Engine.DESpills, r.Engine.DEFuses)
	})
	addRow("WB_DE", func(r stats.Run) string { return fmt.Sprintf("%d", r.Engine.DEEvictionsToMemory) })
	addRow("DRAM reads/writes", func(r stats.Run) string {
		return fmt.Sprintf("%d/%d", r.DRAM.Reads, r.DRAM.Writes)
	})
	t.Fprint(os.Stdout)
}
