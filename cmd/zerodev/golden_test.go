package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/backend"
	"repro/internal/faults"
	"repro/internal/harness"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares got against testdata/<name>.golden, rewriting the file
// under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/zerodev -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (run `go test ./cmd/zerodev -update` after intended changes)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestListGolden pins the `zerodev list` output: the experiment registry
// and its titles are part of the CLI surface.
func TestListGolden(t *testing.T) {
	var buf bytes.Buffer
	writeList(&buf)
	golden(t, "list", buf.Bytes())
}

// TestAuditListGolden pins the `zerodev audit -list` output: the
// injector kinds, their default rates, and the campaign cells are part
// of the CLI surface (and of the fault model documented in DESIGN.md).
func TestAuditListGolden(t *testing.T) {
	var buf bytes.Buffer
	faults.WriteList(&buf)
	golden(t, "audit_list", buf.Bytes())
}

// TestListBackendsGolden pins the `zerodev run -list-backends` output:
// backend names and their guarantee flags are the contract the
// -backend flags, mcheck, and the conformance suite key off.
func TestListBackendsGolden(t *testing.T) {
	var buf bytes.Buffer
	backend.WriteList(&buf)
	golden(t, "list_backends", buf.Bytes())
}

// TestRunExperimentGolden pins the full table output of one quick
// experiment at a fixed seed and scale, catching accidental changes to
// either the simulator's numbers or the report formatting. It runs
// through Execute with several workers, so it also re-checks that the
// CLI path's output is scheduling-independent.
func TestRunExperimentGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e, err := harness.Get("fig4")
	if err != nil {
		t.Fatal(err)
	}
	o := harness.Options{Scale: 32, Accesses: 4000, Seed: 1, Quick: true, Workers: 4}
	var buf bytes.Buffer
	if _, err := e.Execute(context.Background(), o, &buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "fig4_quick", buf.Bytes())
}
