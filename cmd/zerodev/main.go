// Command zerodev runs the ZeroDEV reproduction experiments: one per
// table/figure in the paper (see DESIGN.md for the index), or a single
// workload under a chosen configuration for exploration.
//
// Usage:
//
//	zerodev list
//	zerodev run [-scale N] [-accesses N] [-seed N] [-quick] [-workers N] [-backend B,..] [-list-backends] [-job-timeout D] [-resume FILE] <experiment>...
//	zerodev run all            # every experiment, paper order
//	zerodev single [-config baseline|zerodev] [-ratio R] [-policy P] <app>
//	zerodev audit [-faults K,..] [-campaigns C,..] [-backend B,..] [-audit-every N] [-fail-fast] [-job-timeout D] [-resume FILE]
//	zerodev check [-cores N] [-addrs N] [-depth N] [-policies P,..] [-backends B,..] [-workers N] [-job-timeout D] [-replay FILE] [-list]
//	zerodev bench [-experiments IDs] [-count N] [-o FILE] [-compare FILE]
//	zerodev serve [-addr A] [-state FILE] [-lease-ttl D] [-retry-budget N]
//	zerodev work [-connect URL] [-id NAME] [-poll D]
//
// serve runs the fault-tolerant campaign coordinator (submit campaigns
// with POST /v1/campaigns; inspect with GET /v1/jobs) and work runs a
// worker that leases cells from it; killed workers and coordinator
// restarts recover without losing completed work (see DESIGN.md §10).
//
// run, audit, check, and bench accept -cpuprofile/-memprofile FILE and
// -pprof-http ADDR for performance investigation.
//
// SIGINT/SIGTERM cancels in-flight simulations cooperatively, flushes
// completed cells to the checkpoint, and exits 130; -resume picks the
// run back up. Exit codes: 0 ok, 1 failure, 2 usage, 3 watchdog
// timeout, 130 interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/llc"
	"repro/internal/stats"
	"repro/internal/workload"
)

// main delegates to realMain so deferred cleanup — profile flushing,
// signal-handler teardown — runs before the process exits: os.Exit
// skips defers, so the subcommands return exit codes instead of calling
// it themselves.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	// One SIGINT/SIGTERM cancels the root context: in-flight simulations
	// abort within sim.CancelEvery steps, completed work is flushed to
	// the checkpoint, and the process exits with code 130. A second
	// signal kills the process immediately (stop() restores default
	// signal handling once the context is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	switch os.Args[1] {
	case "list":
		writeList(os.Stdout)
		return 0
	case "run":
		return runCmd(ctx, os.Args[2:])
	case "single":
		singleCmd(os.Args[2:])
		return 0
	case "audit":
		return auditCmd(ctx, os.Args[2:])
	case "trace":
		traceCmd(os.Args[2:])
		return 0
	case "compare":
		compareCmd(ctx, os.Args[2:])
		return 0
	case "check":
		return checkCmd(ctx, os.Args[2:])
	case "bench":
		return benchCmd(ctx, os.Args[2:])
	case "serve":
		return serveCmd(ctx, os.Args[2:])
	case "work":
		return workCmd(ctx, os.Args[2:])
	default:
		usage()
		return 2
	}
}

func writeList(w io.Writer) {
	for _, e := range harness.List() {
		fmt.Fprintf(w, "%-12s %s\n", e.ID, e.Title)
	}
	fmt.Fprintln(w)
	backend.WriteList(w)
}

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: zerodev list | run [flags] <experiment>...|all | single [flags] <app> | compare [flags] <app> | trace [flags] | audit [flags] | check [flags] | bench [flags] | serve [flags] | work [flags]")
}

func runCmd(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	o := harness.DefaultOptions()
	fs.IntVar(&o.Scale, "scale", o.Scale, "capacity scale divisor (power of two; 1 = Table I)")
	fs.IntVar(&o.Accesses, "accesses", o.Accesses, "memory accesses per core")
	var seed uint64
	fs.Uint64Var(&seed, "seed", 1, "workload synthesis seed")
	fs.BoolVar(&o.Quick, "quick", false, "trim application lists to a representative subset")
	fs.IntVar(&o.Workers, "workers", o.Workers, "parallel simulation workers (1 = serial; output is identical either way)")
	fs.IntVar(&o.DomainWorkers, "domain-workers", o.DomainWorkers,
		"intra-run epoch-scheduler workers per simulation (1 = serial stepping; output is byte-identical either way)")
	fs.DurationVar(&o.JobTimeout, "job-timeout", 0, "per-simulation watchdog: cancel a job running longer than this, dump diagnostics, record TIMEOUT (0 = off)")
	ckptPath := fs.String("checkpoint", filepath.Join("results", "checkpoint", "run.json"),
		"where completed cells are persisted for -resume (\"\" disables checkpointing)")
	resume := fs.String("resume", "", "resume from a checkpoint file: completed cells are served from it instead of re-running")
	quiet := fs.Bool("quiet", false, "suppress progress and timing lines on stderr")
	fs.StringVar(&o.Backends, "backend", "", "comma-separated protocol backends for the backend-axis experiments (\"\"/\"all\" = every backend; see -list-backends)")
	listBackends := fs.Bool("list-backends", false, "describe the protocol backends, then exit")
	prof := addProfFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listBackends {
		backend.WriteList(os.Stdout)
		return 0
	}
	stopProf, err := prof.start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		return 2
	}
	defer stopProf()
	o.Seed = seed
	stderr := harness.NewSyncWriter(os.Stderr)
	if !*quiet {
		o.Progress = stderr
	}
	if err := o.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		return 2
	}
	ids := fs.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "run: no experiments named; try `zerodev list`")
		return 2
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range harness.List() {
			ids = append(ids, e.ID)
		}
	}
	key := harness.CheckpointKey{
		Kind: "run", IDs: ids,
		Scale: o.Scale, Accesses: o.Accesses, Seed: o.Seed, Quick: o.Quick,
		Backends: o.Backends,
	}
	if *resume != "" {
		cs, err := harness.LoadCheckpoint(*resume, key)
		if err != nil {
			fmt.Fprintln(os.Stderr, "run:", err)
			return 2
		}
		// The fingerprint pins the run shape; the grid check additionally
		// pins the cell decomposition, so a checkpoint holding cells this
		// build's experiments no longer generate is rejected by name
		// instead of silently ignored.
		var grid []harness.CellID
		for _, id := range ids {
			e, err := harness.Get(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "run:", err)
				return 2
			}
			cells, err := e.Cells(o)
			if err != nil {
				fmt.Fprintln(os.Stderr, "run:", err)
				return 2
			}
			grid = append(grid, cells...)
		}
		if err := cs.VerifyGrid(grid); err != nil {
			fmt.Fprintln(os.Stderr, "run:", err)
			return 2
		}
		o.Checkpoint = cs
		fmt.Fprintf(stderr, "[resuming from %s: %d completed cells]\n", *resume, cs.Cells())
	} else if *ckptPath != "" {
		o.Checkpoint = harness.NewCheckpoint(key)
	}
	saveCheckpoint := func() {
		if o.Checkpoint == nil || *ckptPath == "" {
			return
		}
		if err := o.Checkpoint.Save(*ckptPath); err != nil {
			fmt.Fprintf(stderr, "run: saving checkpoint: %v\n", err)
		}
	}
	var errs []error
	var failed []string
	for _, id := range ids {
		e, err := harness.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		start := time.Now()
		tm, err := e.Execute(ctx, o, os.Stdout)
		saveCheckpoint()
		if err != nil {
			// Keep going: later experiments are independent, and the
			// failure (including any ERR cells) is already rendered.
			fmt.Fprintf(stderr, "%s: %v\n", id, err)
			errs = append(errs, err)
			failed = append(failed, id)
		}
		if !*quiet {
			tm.Fprint(stderr)
			fmt.Fprintf(stderr, "[%s finished in %v]\n", id, time.Since(start).Round(time.Millisecond))
		}
		// Wall-clock chatter stays on stderr: stdout carries only the
		// experiment tables, so an interrupted-then-resumed run's stdout
		// is byte-identical to an uninterrupted one (CI diffs it).
		fmt.Println()
		if ctx.Err() != nil {
			break
		}
	}
	joined := joinErrs(errs)
	if ctx.Err() != nil {
		if *ckptPath != "" && o.Checkpoint != nil {
			fmt.Fprintf(stderr, "run: interrupted; completed cells saved to %s — resume with `zerodev run -resume %s ...`\n", *ckptPath, *ckptPath)
		} else {
			fmt.Fprintln(stderr, "run: interrupted")
		}
		return harness.ExitInterrupted
	}
	if joined != nil {
		fmt.Fprintf(stderr, "run: %d of %d experiments failed: %s\n",
			len(failed), len(ids), strings.Join(failed, ", "))
		return harness.ExitCode(joined)
	}
	return 0
}

// joinErrs joins without allocating for the common empty case.
func joinErrs(errs []error) error {
	switch len(errs) {
	case 0:
		return nil
	case 1:
		return errs[0]
	}
	return errors.Join(errs...)
}

func singleCmd(args []string) {
	fs := flag.NewFlagSet("single", flag.ExitOnError)
	scale := fs.Int("scale", 8, "capacity scale divisor")
	accesses := fs.Int("accesses", 100000, "memory accesses per core")
	cfg := fs.String("config", "zerodev", "baseline | zerodev | unbounded")
	ratio := fs.Float64("ratio", 0, "sparse directory size as a fraction of aggregate L2 blocks (0 = none)")
	policy := fs.String("policy", "fpss", "spillall | fpss | fuseall")
	mode := fs.String("mode", "noninclusive", "noninclusive | epd | inclusive")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "single: exactly one application name required")
		os.Exit(2)
	}
	if err := (harness.Options{Scale: *scale, Accesses: *accesses, Workers: 1}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "single:", err)
		os.Exit(2)
	}
	prof, err := workload.Get(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pre := config.TableI(*scale)
	lm := map[string]llc.Mode{"noninclusive": llc.NonInclusive, "epd": llc.EPD, "inclusive": llc.Inclusive}[strings.ToLower(*mode)]
	pm := map[string]core.DEPolicy{"spillall": core.SpillAll, "fpss": core.FPSS, "fuseall": core.FuseAll}[strings.ToLower(*policy)]
	var spec core.SystemSpec
	switch strings.ToLower(*cfg) {
	case "baseline":
		r := *ratio
		if r == 0 {
			r = 1
		}
		spec = pre.Baseline(r, lm)
	case "unbounded":
		spec = pre.Unbounded(lm)
	default:
		spec = pre.ZeroDEV(*ratio, pm, llc.DataLRU, lm)
	}
	streams := workload.Threads(prof, spec.Cores, *accesses, *scale, 1)
	if prof.Suite == "CPU2017" {
		streams = workload.Rate(prof, spec.Cores, *accesses, *scale, 1)
	}
	sys := core.NewSystem(spec, streams)
	cycles := sys.Run()
	r := stats.Collect(prof.Name, sys, cycles)
	fmt.Printf("app=%s config=%s dir=%s cycles=%d\n", prof.Name, *cfg, sys.Engine.Directory().Name(), cycles)
	fmt.Printf("core cache misses=%d (%.2f MPKI)  traffic=%d bytes  DRAM r/w=%d/%d\n",
		r.CoreCacheMisses(), r.MPKI(), r.Traffic.TotalBytes(), r.DRAM.Reads, r.DRAM.Writes)
	st := r.Engine
	fmt.Printf("DEVs=%d demandInv=%d inclusionInv=%d forwards=%d\n", st.DEVs, st.DemandInvals, st.InclusionInvals, st.Forwards3Hop)
	fmt.Printf("DE: spills=%d fuses=%d spill2fuse=%d fuse2spill=%d evictedToMem=%d getDE=%d corruptedFetch=%d\n",
		st.DESpills, st.DEFuses, st.DESpillToFuse, st.DEFuseToSpill, st.DEEvictionsToMemory, st.GetDEFlows, st.CorruptedFetches)
	fmt.Printf("LLC lines: data=%d spilled=%d fused=%d\n", r.LLCData, r.LLCSpilled, r.LLCFused)
	if n := st.NReadLLCHit + st.NReadForward + st.NReadMemory; n > 0 {
		avg := func(lat, n uint64) float64 {
			if n == 0 {
				return 0
			}
			return float64(lat) / float64(n)
		}
		fmt.Printf("read latency: LLC hit %.1f cyc (%d), forward %.1f cyc (%d), memory %.1f cyc (%d)\n",
			avg(st.LatReadLLCHit, st.NReadLLCHit), st.NReadLLCHit,
			avg(st.LatReadForward, st.NReadForward), st.NReadForward,
			avg(st.LatReadMemory, st.NReadMemory), st.NReadMemory)
	}
	if err := sys.Engine.CheckInvariants(); err != nil {
		fmt.Fprintf(os.Stderr, "INVARIANT VIOLATION: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("invariants: ok")
}
