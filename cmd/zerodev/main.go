// Command zerodev runs the ZeroDEV reproduction experiments: one per
// table/figure in the paper (see DESIGN.md for the index), or a single
// workload under a chosen configuration for exploration.
//
// Usage:
//
//	zerodev list
//	zerodev run [-scale N] [-accesses N] [-seed N] [-quick] [-workers N] <experiment>...
//	zerodev run all            # every experiment, paper order
//	zerodev single [-config baseline|zerodev] [-ratio R] [-policy P] <app>
//	zerodev audit [-faults K,..] [-campaigns C,..] [-audit-every N] [-fail-fast]
//	zerodev check [-cores N] [-addrs N] [-depth N] [-policies P,..] [-workers N] [-replay FILE] [-list]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/llc"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		writeList(os.Stdout)
	case "run":
		runCmd(os.Args[2:])
	case "single":
		singleCmd(os.Args[2:])
	case "audit":
		auditCmd(os.Args[2:])
	case "trace":
		traceCmd(os.Args[2:])
	case "compare":
		compareCmd(os.Args[2:])
	case "check":
		checkCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func writeList(w io.Writer) {
	for _, e := range harness.List() {
		fmt.Fprintf(w, "%-12s %s\n", e.ID, e.Title)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: zerodev list | run [flags] <experiment>...|all | single [flags] <app> | compare [flags] <app> | trace [flags] | audit [flags] | check [flags]")
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	o := harness.DefaultOptions()
	fs.IntVar(&o.Scale, "scale", o.Scale, "capacity scale divisor (power of two; 1 = Table I)")
	fs.IntVar(&o.Accesses, "accesses", o.Accesses, "memory accesses per core")
	var seed uint64
	fs.Uint64Var(&seed, "seed", 1, "workload synthesis seed")
	fs.BoolVar(&o.Quick, "quick", false, "trim application lists to a representative subset")
	fs.IntVar(&o.Workers, "workers", o.Workers, "parallel simulation workers (1 = serial; output is identical either way)")
	quiet := fs.Bool("quiet", false, "suppress progress and timing lines on stderr")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	o.Seed = seed
	if !*quiet {
		o.Progress = os.Stderr
	}
	if err := o.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(2)
	}
	ids := fs.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "run: no experiments named; try `zerodev list`")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range harness.List() {
			ids = append(ids, e.ID)
		}
	}
	var failed []string
	for _, id := range ids {
		e, err := harness.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		tm, err := e.Execute(o, os.Stdout)
		if err != nil {
			// Keep going: later experiments are independent, and the
			// failure (including any ERR cells) is already rendered.
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = append(failed, id)
		}
		if !*quiet {
			tm.Fprint(os.Stderr)
		}
		fmt.Printf("[%s finished in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "run: %d of %d experiments failed: %s\n",
			len(failed), len(ids), strings.Join(failed, ", "))
		os.Exit(1)
	}
}

func singleCmd(args []string) {
	fs := flag.NewFlagSet("single", flag.ExitOnError)
	scale := fs.Int("scale", 8, "capacity scale divisor")
	accesses := fs.Int("accesses", 100000, "memory accesses per core")
	cfg := fs.String("config", "zerodev", "baseline | zerodev | unbounded")
	ratio := fs.Float64("ratio", 0, "sparse directory size as a fraction of aggregate L2 blocks (0 = none)")
	policy := fs.String("policy", "fpss", "spillall | fpss | fuseall")
	mode := fs.String("mode", "noninclusive", "noninclusive | epd | inclusive")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "single: exactly one application name required")
		os.Exit(2)
	}
	if err := (harness.Options{Scale: *scale, Accesses: *accesses, Workers: 1}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "single:", err)
		os.Exit(2)
	}
	prof, err := workload.Get(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pre := config.TableI(*scale)
	lm := map[string]llc.Mode{"noninclusive": llc.NonInclusive, "epd": llc.EPD, "inclusive": llc.Inclusive}[strings.ToLower(*mode)]
	pm := map[string]core.DEPolicy{"spillall": core.SpillAll, "fpss": core.FPSS, "fuseall": core.FuseAll}[strings.ToLower(*policy)]
	var spec core.SystemSpec
	switch strings.ToLower(*cfg) {
	case "baseline":
		r := *ratio
		if r == 0 {
			r = 1
		}
		spec = pre.Baseline(r, lm)
	case "unbounded":
		spec = pre.Unbounded(lm)
	default:
		spec = pre.ZeroDEV(*ratio, pm, llc.DataLRU, lm)
	}
	streams := workload.Threads(prof, spec.Cores, *accesses, *scale, 1)
	if prof.Suite == "CPU2017" {
		streams = workload.Rate(prof, spec.Cores, *accesses, *scale, 1)
	}
	sys := core.NewSystem(spec, streams)
	cycles := sys.Run()
	r := stats.Collect(prof.Name, sys, cycles)
	fmt.Printf("app=%s config=%s dir=%s cycles=%d\n", prof.Name, *cfg, sys.Engine.Directory().Name(), cycles)
	fmt.Printf("core cache misses=%d (%.2f MPKI)  traffic=%d bytes  DRAM r/w=%d/%d\n",
		r.CoreCacheMisses(), r.MPKI(), r.Traffic.TotalBytes(), r.DRAM.Reads, r.DRAM.Writes)
	st := r.Engine
	fmt.Printf("DEVs=%d demandInv=%d inclusionInv=%d forwards=%d\n", st.DEVs, st.DemandInvals, st.InclusionInvals, st.Forwards3Hop)
	fmt.Printf("DE: spills=%d fuses=%d spill2fuse=%d fuse2spill=%d evictedToMem=%d getDE=%d corruptedFetch=%d\n",
		st.DESpills, st.DEFuses, st.DESpillToFuse, st.DEFuseToSpill, st.DEEvictionsToMemory, st.GetDEFlows, st.CorruptedFetches)
	fmt.Printf("LLC lines: data=%d spilled=%d fused=%d\n", r.LLCData, r.LLCSpilled, r.LLCFused)
	if n := st.NReadLLCHit + st.NReadForward + st.NReadMemory; n > 0 {
		avg := func(lat, n uint64) float64 {
			if n == 0 {
				return 0
			}
			return float64(lat) / float64(n)
		}
		fmt.Printf("read latency: LLC hit %.1f cyc (%d), forward %.1f cyc (%d), memory %.1f cyc (%d)\n",
			avg(st.LatReadLLCHit, st.NReadLLCHit), st.NReadLLCHit,
			avg(st.LatReadForward, st.NReadForward), st.NReadForward,
			avg(st.LatReadMemory, st.NReadMemory), st.NReadMemory)
	}
	if err := sys.Engine.CheckInvariants(); err != nil {
		fmt.Fprintf(os.Stderr, "INVARIANT VIOLATION: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("invariants: ok")
}
