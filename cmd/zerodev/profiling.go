package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"runtime/pprof"
)

// profFlags is the shared profiling surface of the long-running
// subcommands (run, audit, check, bench). The subcommands return exit
// codes instead of calling os.Exit precisely so the deferred stop can
// flush these profiles on every path.
type profFlags struct {
	cpu  string
	mem  string
	addr string
}

// addProfFlags registers -cpuprofile, -memprofile, and -pprof-http on
// fs and returns the destination struct to start() after parsing.
func addProfFlags(fs *flag.FlagSet) *profFlags {
	p := &profFlags{}
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to this file (inspect with `go tool pprof`)")
	fs.StringVar(&p.mem, "memprofile", "", "write an allocation profile to this file at exit")
	fs.StringVar(&p.addr, "pprof-http", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live inspection")
	return p
}

// start begins the requested profiling. The returned stop function is
// always non-nil and must run before process exit: it stops the CPU
// profile and writes the allocation profile. The pprof HTTP server, if
// any, lives for the remainder of the process.
func (p *profFlags) start() (stop func(), err error) {
	stop = func() {}
	var cpuFile *os.File
	if p.cpu != "" {
		cpuFile, err = os.Create(p.cpu)
		if err != nil {
			return stop, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return stop, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	if p.addr != "" {
		ln := p.addr
		go func() {
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof-http: %v\n", err)
			}
		}()
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if p.mem != "" {
			f, err := os.Create(p.mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize recent frees so the profile reflects live data accurately
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
		}
	}, nil
}
