package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/harness"
	"repro/internal/serve"
)

// serveCmd runs the campaign coordinator: an HTTP/JSON service that
// decomposes submitted campaigns into cells, leases them to `zerodev
// work` workers, re-queues cells whose workers die, and assembles
// output byte-identical to a serial `zerodev run`. State persists
// atomically to -state, so killing and restarting the coordinator
// resumes every in-flight campaign.
func serveCmd(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	statePath := fs.String("state", filepath.Join("results", "serve", "state.json"),
		"durable coordinator state for crash recovery (\"\" disables persistence)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "lease duration; a cell unheartbeated this long re-queues")
	retryBudget := fs.Int("retry-budget", 3, "extra attempts before a cell degrades to ERR")
	backoff := fs.Duration("backoff", time.Second, "base re-queue backoff (doubles per attempt)")
	backoffMax := fs.Duration("backoff-max", time.Minute, "re-queue backoff ceiling")
	var seed uint64
	fs.Uint64Var(&seed, "seed", 1, "backoff jitter seed")
	sweepEvery := fs.Duration("sweep-every", time.Second, "lease expiry sweep cadence")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "serve: unexpected arguments", fs.Args())
		return 2
	}
	cfg := serve.DefaultConfig()
	cfg.LeaseTTL = *leaseTTL
	cfg.RetryBudget = *retryBudget
	cfg.BackoffBase = *backoff
	cfg.BackoffMax = *backoffMax
	cfg.Seed = seed
	cfg.StatePath = *statePath
	if cfg.StatePath != "" {
		if err := os.MkdirAll(filepath.Dir(cfg.StatePath), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			return 1
		}
	}
	coord, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
	coord.StartSweeper(ctx, *sweepEvery)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
	srv := &http.Server{Handler: coord.Handler()}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	fmt.Fprintf(os.Stderr, "serve: coordinator listening on %s (state %q, lease TTL %v, retry budget %d)\n",
		ln.Addr(), cfg.StatePath, cfg.LeaseTTL, cfg.RetryBudget)
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "serve: interrupted; state is durable — restart to resume")
		return harness.ExitInterrupted
	}
	return 0
}

// workCmd runs a worker against a coordinator: lease a cell, simulate
// it, heartbeat while computing, deliver the result, repeat. Workers
// hold no local state, so killing one mid-cell only costs that cell's
// lease TTL before the coordinator re-queues it.
func workCmd(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	connect := fs.String("connect", "http://127.0.0.1:8080", "coordinator URL")
	id := fs.String("id", "", "worker name in lease records (default host-pid)")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle poll interval when no work is ready")
	quiet := fs.Bool("quiet", false, "suppress per-cell progress lines on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "work: unexpected arguments", fs.Args())
		return 2
	}
	if *id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &serve.Worker{Base: *connect, ID: *id, Poll: *poll}
	if !*quiet {
		w.Log = harness.NewSyncWriter(os.Stderr)
	}
	fmt.Fprintf(os.Stderr, "work: worker %s polling %s\n", *id, *connect)
	_ = w.Run(ctx)
	if ctx.Err() != nil {
		return harness.ExitInterrupted
	}
	return 0
}
