package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/atomicio"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/llc"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// traceCmd records synthetic workloads to trace files, inspects them,
// and replays them through a configuration — the decoupled-workload
// path described in package trace.
func traceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	record := fs.String("record", "", "application to record (one file per thread)")
	dir := fs.String("dir", "traces", "trace directory")
	threads := fs.Int("threads", 8, "thread count to record")
	accesses := fs.Int("accesses", 100000, "accesses per thread")
	scale := fs.Int("scale", 8, "capacity scale divisor")
	seed := fs.Uint64("seed", 1, "workload seed")
	info := fs.String("info", "", "trace file to summarize")
	replay := fs.String("replay", "", "trace directory to replay (one file per core)")
	cfg := fs.String("config", "zerodev", "replay configuration: baseline | zerodev")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	// Same pre-flight validation run/single/audit perform: reject bad
	// scale/accesses combinations before any file or simulation work.
	if err := (harness.Options{Scale: *scale, Accesses: *accesses, Workers: 1}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(2)
	}
	if *threads < 1 {
		fmt.Fprintf(os.Stderr, "trace: -threads must be at least 1, got %d\n", *threads)
		os.Exit(2)
	}

	switch {
	case *record != "":
		prof, err := workload.Get(*record)
		if err != nil {
			fatal(err)
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		streams := workload.Threads(prof, *threads, *accesses, *scale, *seed)
		for i, s := range streams {
			path := filepath.Join(*dir, fmt.Sprintf("%s.t%02d.ztr", prof.Name, i))
			// Atomic write: a kill mid-record leaves the previous trace
			// (or nothing), never a truncated .ztr that replays short.
			f, err := atomicio.Create(path)
			if err != nil {
				fatal(err)
			}
			w, err := trace.NewWriter(f)
			if err != nil {
				f.Discard()
				fatal(err)
			}
			n, err := trace.Record(w, s, -1)
			if err != nil {
				f.Discard()
				fatal(err)
			}
			if err := w.Close(); err != nil {
				f.Discard()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("%s: %d accesses\n", path, n)
		}

	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		var loads, stores, ifetches, instrs uint64
		blocks := map[uint64]bool{}
		for {
			a, ok := r.Next()
			if !ok {
				break
			}
			instrs += uint64(a.Gap) + 1
			blocks[uint64(a.Addr)] = true
			switch a.Kind {
			case cpu.Load:
				loads++
			case cpu.Store:
				stores++
			case cpu.Ifetch:
				ifetches++
			}
		}
		if err := r.Err(); err != nil {
			fatal(err)
		}
		total := loads + stores + ifetches
		fmt.Printf("%s: %d accesses (%d loads, %d stores, %d ifetches), %d instructions, %d distinct blocks (%.1f KB footprint)\n",
			*info, total, loads, stores, ifetches, instrs, len(blocks), float64(len(blocks))*64/1024)

	case *replay != "":
		pre := config.TableI(*scale)
		var spec core.SystemSpec
		if *cfg == "baseline" {
			spec = pre.Baseline(1, llc.NonInclusive)
		} else {
			spec = pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
		}
		matches, err := filepath.Glob(filepath.Join(*replay, "*.ztr"))
		if err != nil || len(matches) == 0 {
			fatal(fmt.Errorf("no .ztr files under %s", *replay))
		}
		if len(matches) != spec.Cores {
			fatal(fmt.Errorf("need %d trace files (one per core), found %d", spec.Cores, len(matches)))
		}
		streams := make([]cpu.Stream, spec.Cores)
		for i, m := range matches {
			f, err := os.Open(m)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			r, err := trace.NewReader(f)
			if err != nil {
				fatal(err)
			}
			streams[i] = r
		}
		sys := core.NewSystem(spec, streams)
		cycles := sys.Run()
		run := stats.Collect("replay", sys, cycles)
		fmt.Printf("replayed %d cores from %s: cycles=%d misses=%d DEVs=%d traffic=%d bytes\n",
			spec.Cores, *replay, cycles, run.CoreCacheMisses(), run.Engine.DEVs, run.Traffic.TotalBytes())
		if err := sys.Engine.CheckInvariants(); err != nil {
			fatal(err)
		}
		fmt.Println("invariants: ok")

	default:
		fmt.Fprintln(os.Stderr, "trace: one of -record, -info, -replay required")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
