// Package repro is a from-scratch Go reproduction of "Zero Directory
// Eviction Victim: Unbounded Coherence Directory and Core Cache
// Isolation" (Mainak Chaudhuri, HPCA 2021): a deterministic multicore
// cache-hierarchy simulator implementing the baseline MESI
// home-directory protocol, the full ZeroDEV protocol, the SecDir and
// Multi-grain Directory comparison points, synthetic stand-ins for the
// paper's benchmark suites, and one runnable experiment per table and
// figure in the evaluation. See README.md for a tour and DESIGN.md for
// the system inventory.
package repro
