// Multisocket runs a four-socket ZeroDEV system with a deliberately
// small LLC so that directory entries overflow all the way into home
// memory, exercising the corrupted-block machinery of §III-D: WB_DE
// writebacks (Fig. 14), GET_DE core-eviction flows (Fig. 16), forwarded
// socket misses with DENF_NACK retries (Fig. 15), and last-copy
// retrieval. It prints the flow counts and verifies that no socket ever
// produced a directory eviction victim.
//
//	go run ./examples/multisocket
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/socket"
	"repro/internal/workload"
)

func main() {
	const (
		sockets  = 4
		scale    = 32 // small caches: heavy LLC pressure, frequent DE eviction
		accesses = 40_000
	)
	pre := config.TableI(scale)
	spec := pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
	// Shrink the LLC relative to the private caches so housed directory
	// entries genuinely overflow to home memory: the aggregate L2
	// capacity (and so the live-entry population) exceeds the LLC line
	// count several times over.
	spec.LLCBytes = 128 << 10
	spec.CPU.L2Bytes = 64 << 10
	prof := workload.MustGet("ocean_cp")

	p := socket.DefaultParams(sockets, 1024)
	streams := workload.Threads(prof, sockets*spec.Cores, accesses, scale, 11)
	sys, err := socket.New(p, spec, streams)
	if err != nil {
		panic(err)
	}
	cycles := sys.Run()
	if err := sys.CheckInvariants(); err != nil {
		panic(err)
	}

	fmt.Printf("4-socket ZeroDEV (no sparse directory), %s with %d threads\n", prof.Name, sockets*spec.Cores)
	fmt.Printf("parallel completion: %d cycles\n\n", cycles)
	fmt.Printf("%-8s %12s %12s %12s %12s %10s\n", "socket", "L2 misses", "DE spills", "DE fuses", "WB_DE", "GET_DE")
	for i, s := range sys.Sockets {
		st := s.Engine.Stats()
		var misses uint64
		for _, c := range s.Cores {
			misses += c.Stats().L2Misses
		}
		if st.DEVs != 0 {
			panic("directory eviction victim under ZeroDEV")
		}
		fmt.Printf("%-8d %12d %12d %12d %12d %10d\n",
			i, misses, st.DESpills, st.DEFuses, st.DEEvictionsToMemory, st.GetDEFlows)
	}
	ss := sys.Stats()
	fmt.Printf("\nsocket-level: misses=%d forwards=%d DENF_NACK=%d corrupted-merges=%d last-copy-restores=%d\n",
		ss.SocketMisses, ss.SocketForwards, ss.DENFNacks, ss.CorruptedMerges, ss.LastCopyRestores)
	dm := sys.DRAM().Stats()
	fmt.Printf("DRAM: reads=%d writes=%d (DE reads=%d, DE writes=%d)\n", dm.Reads, dm.Writes, dm.DEReads, dm.DEWrites)
	fmt.Println("\nzero-DEV guarantee held on every socket; all invariants verified")
}
