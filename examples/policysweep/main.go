// Policysweep explores the ZeroDEV design space on one workload: the
// three directory-entry caching policies (§III-C) crossed with the two
// extended LLC replacement policies (§III-D1), across sparse-directory
// sizes from 1× down to none, against the traditional baseline at the
// same sizes. It prints speedups normalized to the 1× baseline — the
// experiment to run first when porting the protocol to a new
// configuration.
//
//	go run ./examples/policysweep [app]
package main

import (
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const (
		scale    = 8
		accesses = 60_000
	)
	app := "freqmine"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	prof, err := workload.Get(app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pre := config.TableI(scale)

	run := func(spec core.SystemSpec) stats.Run {
		sys := core.NewSystem(spec, workload.Threads(prof, spec.Cores, accesses, scale, 3))
		cycles := sys.Run()
		return stats.Collect("", sys, cycles)
	}
	base := run(pre.Baseline(1, llc.NonInclusive))

	ratios := []float64{1, 1.0 / 8, 1.0 / 32, 0}
	ratioName := []string{"1x", "1/8x", "1/32x", "none"}

	t := stats.Table{
		Title:   fmt.Sprintf("%s: speedup vs baseline 1x across directory sizes", prof.Name),
		Headers: []string{"design", "1x", "1/8x", "1/32x", "none"},
	}
	baseRow := []string{"baseline (DEVs)"}
	for i, r := range ratios {
		if r == 0 {
			baseRow = append(baseRow, "n/a")
			continue
		}
		x := run(pre.Baseline(r, llc.NonInclusive))
		baseRow = append(baseRow, fmt.Sprintf("%.3f", stats.Speedup(base, x)))
		_ = i
	}
	t.AddRow(baseRow...)
	for _, pol := range []core.DEPolicy{core.SpillAll, core.FPSS, core.FuseAll} {
		for _, repl := range []llc.Repl{llc.SpLRU, llc.DataLRU} {
			row := []string{fmt.Sprintf("ZeroDEV %s+%s", pol, repl)}
			for _, r := range ratios {
				x := run(pre.ZeroDEV(r, pol, repl, llc.NonInclusive))
				if x.Engine.DEVs != 0 {
					panic("DEVs under ZeroDEV")
				}
				row = append(row, fmt.Sprintf("%.3f", stats.Speedup(base, x)))
			}
			t.AddRow(row...)
		}
	}
	_ = ratioName
	t.Fprint(os.Stdout)
	fmt.Println("every ZeroDEV cell ran with zero directory eviction victims")
}
