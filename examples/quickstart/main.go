// Quickstart: build an 8-core Table I socket, run one PARSEC-like
// workload under the traditional baseline (1× sparse directory) and
// under ZeroDEV with no sparse directory at all, and compare the
// metrics the paper reports. ZeroDEV's guarantee is visible directly:
// the directory-eviction-victim counter is exactly zero.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const (
		scale    = 8 // 1/8 of Table I capacities; footprints shrink to match
		accesses = 80_000
		seed     = 1
	)
	pre := config.TableI(scale)
	prof := workload.MustGet("canneal")

	run := func(name string, spec core.SystemSpec) stats.Run {
		sys := core.NewSystem(spec, workload.Threads(prof, spec.Cores, accesses, scale, seed))
		cycles := sys.Run()
		if err := sys.Engine.CheckInvariants(); err != nil {
			panic(err)
		}
		return stats.Collect(name, sys, cycles)
	}

	base := run("baseline-1x", pre.Baseline(1, llc.NonInclusive))
	zd := run("zerodev-nodir", pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive))

	fmt.Printf("workload: %s (%d threads, %d accesses/thread)\n\n", prof.Name, pre.Cores, accesses)
	fmt.Printf("%-28s %15s %15s\n", "", "baseline 1x dir", "ZeroDEV no dir")
	row := func(label string, b, z interface{}) { fmt.Printf("%-28s %15v %15v\n", label, b, z) }
	row("execution cycles", base.Cycles, zd.Cycles)
	row("core cache misses", base.CoreCacheMisses(), zd.CoreCacheMisses())
	row("interconnect bytes", base.Traffic.TotalBytes(), zd.Traffic.TotalBytes())
	row("directory eviction victims", base.Engine.DEVs, zd.Engine.DEVs)
	row("DE spills into LLC", base.Engine.DESpills, zd.Engine.DESpills)
	row("DE fusions with LLC lines", base.Engine.DEFuses, zd.Engine.DEFuses)
	row("DE evictions to memory", base.Engine.DEEvictionsToMemory, zd.Engine.DEEvictionsToMemory)
	fmt.Printf("\nZeroDEV speedup over baseline: %.3f (paper: within 1-2%% of 1x baseline)\n",
		stats.Speedup(base, zd))
	if zd.Engine.DEVs != 0 {
		panic("ZeroDEV produced directory eviction victims")
	}
	fmt.Println("zero-DEV guarantee verified: no private-cache block was ever " +
		"invalidated by a directory eviction")
}
