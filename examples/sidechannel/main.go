// Sidechannel demonstrates the isolation property that motivates
// ZeroDEV (§I-A2): in a traditional directory, an attacker can mount a
// Prime+Probe attack on sparse-directory sets — the victim's accesses
// evict directory entries, whose invalidations reach into the
// attacker's private cache and are observable as probe misses (Yan et
// al., IEEE S&P 2019). Under ZeroDEV no directory eviction ever
// invalidates a private cache line, so the probe sees nothing.
//
// The demo leaks one secret byte through eight directory sets in the
// baseline and recovers nothing under ZeroDEV.
//
//	go run ./examples/sidechannel
package main

import (
	"fmt"

	"repro/internal/coher"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/llc"
)

// script is a fully scripted reference stream.
type script struct {
	q []cpu.Access
}

func (s *script) Next() (cpu.Access, bool) {
	if len(s.q) == 0 {
		return cpu.Access{}, false
	}
	a := s.q[0]
	s.q = s.q[1:]
	return a, true
}

func load(addr coher.Addr) cpu.Access { return cpu.Access{Kind: cpu.Load, Addr: addr} }

const (
	scale     = 8
	secret    = byte(0b10110010)
	dirWays   = 8
	trialSets = 8 // one directory set per secret bit
)

func main() {
	pre := config.TableI(scale)
	dirSets := pre.DirEntries(1) / dirWays

	fmt.Printf("secret byte: %08b\n\n", secret)
	for _, cfg := range []struct {
		name string
		spec core.SystemSpec
	}{
		{"baseline 1x sparse directory", pre.Baseline(1, llc.NonInclusive)},
		{"SecDir (ISCA'19 defense)", pre.SecDir(1, llc.NonInclusive)},
		{"ZeroDEV (no directory)", pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)},
	} {
		recovered := attack(cfg.spec, dirSets)
		fmt.Printf("%-30s recovered: %08b", cfg.name, recovered)
		switch recovered {
		case secret:
			fmt.Println("   << secret fully leaked through directory evictions")
		case 0:
			fmt.Println("   << this direct cross-core attack is blocked")
		default:
			fmt.Println("   << partial leakage")
		}
	}
	fmt.Println("\nSecDir blocks the direct cross-core channel but can still generate DEVs")
	fmt.Println("through private-partition self-conflicts (paper §I-A2); ZeroDEV generates")
	fmt.Println("none, by construction, so no variant of the channel exists.")
}

// attack runs eight Prime+Probe trials, one per secret bit, and returns
// the byte the attacker reconstructs from probe misses.
func attack(spec core.SystemSpec, dirSets int) byte {
	attacker, victim := &script{}, &script{}
	idle := make([]cpu.Stream, spec.Cores)
	idle[0], idle[1] = attacker, victim
	for i := 2; i < spec.Cores; i++ {
		idle[i] = &script{}
	}
	sys := core.NewSystem(spec, idle)
	atk, vic := sys.Cores[0], sys.Cores[1]

	var recovered byte
	for bit := 0; bit < trialSets; bit++ {
		set := 37 + bit*13 // arbitrary distinct directory sets
		primeAddr := func(k int) coher.Addr {
			return coher.Addr((0x5000+k)*dirSets + set)
		}
		victimAddr := coher.Addr((0x9000)*dirSets + set)

		// Prime: fill the directory set with the attacker's entries.
		for k := 0; k < dirWays; k++ {
			attacker.q = append(attacker.q, load(primeAddr(k)))
			atk.Step()
		}
		// Victim: one secret-dependent access.
		if secret&(1<<bit) != 0 {
			victim.q = append(victim.q, load(victimAddr))
			vic.Step()
		}
		// Probe: re-touch the primed blocks and count misses.
		before := atk.Stats().L2Misses
		for k := 0; k < dirWays; k++ {
			attacker.q = append(attacker.q, load(primeAddr(k)))
			atk.Step()
		}
		if atk.Stats().L2Misses > before {
			recovered |= 1 << bit
		}
	}
	return recovered
}
