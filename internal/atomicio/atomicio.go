// Package atomicio provides crash-safe file writes. Every artifact the
// harness persists — result checkpoints, crash and watchdog bundles,
// counterexample traces, recorded workload traces — goes through this
// package so that a SIGKILL (or power loss) mid-write can never leave a
// torn, half-written file at the destination path: data lands in a
// temporary file in the destination directory, is fsynced, and is
// renamed into place (rename within one directory is atomic on POSIX
// filesystems). The containing directory is fsynced after the rename on
// a best-effort basis so the new name itself is durable.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data: the crash-safe
// counterpart of os.WriteFile. On error the destination is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	w, err := Create(path)
	if err != nil {
		return err
	}
	w.perm = perm
	if _, err := w.Write(data); err != nil {
		w.Discard()
		return err
	}
	return w.Close()
}

// Writer accumulates a file's content in a temporary sibling of the
// destination. Close commits it atomically; Discard abandons it leaving
// the destination untouched. A Writer must be finished exactly once,
// with either Close or Discard.
type Writer struct {
	f    *os.File
	path string // destination
	tmp  string // temporary name being written
	perm os.FileMode
}

// Create opens an atomic writer targeting path, creating the containing
// directory if needed. Nothing appears at path until Close succeeds.
func Create(path string) (*Writer, error) {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, path: path, tmp: f.Name(), perm: 0o644}, nil
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) { return w.f.Write(p) }

// Close flushes the temporary file to stable storage and renames it
// over the destination. On any error the temporary file is removed and
// the destination keeps its previous content (or absence).
func (w *Writer) Close() error {
	if err := w.f.Sync(); err != nil {
		w.Discard()
		return fmt.Errorf("atomicio: sync %s: %w", w.path, err)
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("atomicio: close %s: %w", w.path, err)
	}
	if err := os.Chmod(w.tmp, w.perm); err != nil {
		os.Remove(w.tmp)
		return err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("atomicio: commit %s: %w", w.path, err)
	}
	syncDir(filepath.Dir(w.path))
	return nil
}

// Discard abandons the write: the temporary file is removed and the
// destination is untouched. Safe to call after a failed Close.
func (w *Writer) Discard() {
	w.f.Close()
	os.Remove(w.tmp)
}

// syncDir makes the rename durable. Failures are ignored: some
// filesystems refuse to fsync directories, and the rename itself has
// already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
