package atomicio

import (
	"os"
	"path/filepath"
	"testing"
)

// TestWriteFileReplacesAtomically checks the basic contract: the
// destination holds exactly the new content, with the requested mode,
// and no temporary siblings survive.
func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new content"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new content" {
		t.Fatalf("content = %q", got)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o600 {
		t.Fatalf("mode = %v, want 0600", fi.Mode().Perm())
	}
	assertNoTempFiles(t, dir)
}

// TestCreateMakesDirectories checks Create builds missing parents, the
// hardening every bundle/checkpoint writer relies on.
func TestCreateMakesDirectories(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a", "b", "c.json")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

// TestDiscardLeavesDestinationUntouched checks the abort path: an
// aborted write neither clobbers the old content nor leaks a temp file
// (the torn-file scenario the package exists to prevent).
func TestDiscardLeavesDestinationUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keep.json")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("half-writ")); err != nil {
		t.Fatal(err)
	}
	w.Discard()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious" {
		t.Fatalf("content = %q after Discard", got)
	}
	assertNoTempFiles(t, dir)
}

// TestUncommittedWriterInvisible checks nothing appears at the
// destination before Close: readers never observe a partial file.
func TestUncommittedWriterInvisible(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pending.json")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("in flight")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination exists before Close (err=%v)", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) > 0 && e.Name()[0] == '.' {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
