// Package backend defines the pluggable coherence-protocol backend
// axis: the registry of directory/LLC-housing strategies the engine can
// run, with the metadata every layer above (config presets, the figure
// harness, the model checker, the CLI) keys off. The protocol logic
// itself lives in package core behind the core.Protocol interface —
// the FlexiCAS coh_policy separation: the policy object is distinct
// from the cache structures it programs — while this package owns the
// *axis*: stable names, claimed guarantees, parsing, and the single
// source of truth enumerations and goldens pin against.
//
// Backends:
//
//   - zerodev: the paper's proposal. Replacement-disabled sparse
//     directory plus directory-entry caching in the LLC (SpillAll /
//     FPSS / FuseAll) and invalidation-free DE eviction into home
//     memory. Guarantees zero directory eviction victims.
//   - sparsemesi: the classic bounded sparse-directory MESI baseline —
//     the foil the paper argues against. Directory conflicts evict live
//     entries and invalidate every tracked private copy (real DEVs).
//   - dls: a directoryless shared LLC (after arXiv 1206.4753): no
//     separate directory structure at all; tracking lives in the LLC
//     tags (always fused with the block's own line), which forces
//     inclusion. No DEVs by construction; the cost is inclusion
//     victims and mandatory LLC residency for every tracked block.
//   - phasepriority: phase-priority directory coherence (after arXiv
//     1305.3038): a bounded directory that NACKs allocation conflicts
//     and retries under a bounded budget before a priority escalation
//     at the phase boundary forces the victim out. DEVs still occur,
//     but only after the NACK/retry ladder has been charged.
package backend

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ID names a protocol backend. The zero value selects the default
// (zerodev) so existing specs and checkpoints keep their meaning.
type ID string

const (
	// ZeroDEV is the paper's proposal (default backend).
	ZeroDEV ID = "zerodev"
	// SparseMESI is the classic bounded sparse-directory MESI baseline.
	SparseMESI ID = "sparsemesi"
	// DLS is the directoryless shared-LLC backend.
	DLS ID = "dls"
	// PhasePriority is the NACK/retry phase-priority directory backend.
	PhasePriority ID = "phasepriority"
)

// Info is the registry metadata for one backend.
type Info struct {
	ID    ID
	Title string

	// ClaimsZeroDEV marks backends that guarantee zero directory
	// eviction victims. The model checker asserts the zero-DEV property
	// exactly on these backends — and requires a counterexample on the
	// others, so the differentiator is checked rather than assumed.
	ClaimsZeroDEV bool

	// HousesDEsInLLC marks backends whose directory entries may live in
	// LLC lines (spilled or fused). The invariant checker rejects
	// LLC-housed entries on the others.
	HousesDEsInLLC bool

	// UsesHomeSegments marks backends that write directory entries back
	// into home-memory block segments (the WB_DE / GET_DE flows), i.e.
	// backends for which home blocks can be "corrupted".
	UsesHomeSegments bool

	// HasPolicyAxis marks backends with a DE-caching policy sub-axis
	// (SpillAll / FPSS / FuseAll); only zerodev has one.
	HasPolicyAxis bool

	// Faults lists the fault-injector kind names (package faults) whose
	// seams this backend actually exercises. `zerodev audit` validates
	// the -faults selection against this set at flag-parse time so an
	// inapplicable kind is a named error, not an inert clean campaign.
	// Kind names are strings here (not faults.Kind) to keep the
	// dependency arrow pointing faults -> backend; a faults-package test
	// cross-validates every name against the kind table.
	Faults []string
}

// registry lists every backend in presentation order: the proposal
// first, then the baselines it is measured against.
var registry = []Info{
	{
		ID:               ZeroDEV,
		Title:            "ZeroDEV: replacement-disabled directory + DE caching in the LLC (paper proposal)",
		ClaimsZeroDEV:    true,
		HousesDEsInLLC:   true,
		UsesHomeSegments: true,
		HasPolicyAxis:    true,
		Faults: []string{
			"deflip", "wbde-drop", "wbde-dup", "denf-drop",
			"storm", "spurious", "evict-pressure",
		},
	},
	{
		ID:            SparseMESI,
		Title:         "Sparse-directory MESI baseline: bounded NRU directory with real DEVs",
		ClaimsZeroDEV: false,
		Faults:        []string{"denf-drop", "spurious", "dir-victim", "evict-pressure"},
	},
	{
		ID:             DLS,
		Title:          "DLS: directoryless shared LLC, in-tag tracking, forced inclusion (arXiv 1206.4753)",
		ClaimsZeroDEV:  true,
		HousesDEsInLLC: true,
		Faults:         []string{"denf-drop", "spurious", "incl-victim", "evict-pressure"},
	},
	{
		ID:            PhasePriority,
		Title:         "Phase-priority directory: NACK/retry ladder before prioritized eviction (arXiv 1305.3038)",
		ClaimsZeroDEV: false,
		Faults:        []string{"denf-drop", "spurious", "nack-storm", "evict-pressure"},
	},
}

// ErrUnknownBackend is the sentinel every name-resolution failure
// wraps, so callers can refuse-by-name the way checkpoint and grid
// mismatches are refused elsewhere in the repo.
var ErrUnknownBackend = errors.New("unknown protocol backend")

// All returns every registered backend in presentation order.
func All() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	return out
}

// Names returns the valid backend names in presentation order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, b := range registry {
		out = append(out, string(b.ID))
	}
	return out
}

// Get returns the metadata for id. The zero ID resolves to ZeroDEV.
func Get(id ID) (Info, bool) {
	if id == "" {
		id = ZeroDEV
	}
	for _, b := range registry {
		if b.ID == id {
			return b, true
		}
	}
	return Info{}, false
}

// MustGet is Get for IDs that are known to be registered (typically
// compile-time constants); it panics on an unknown ID.
func MustGet(id ID) Info {
	b, ok := Get(id)
	if !ok {
		panic(fmt.Sprintf("backend: unregistered backend %q", id))
	}
	return b
}

// Parse resolves one backend name (case-insensitive). The error wraps
// ErrUnknownBackend and names the valid set.
func Parse(name string) (ID, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if n == "" {
		return ZeroDEV, nil
	}
	for _, b := range registry {
		if string(b.ID) == n {
			return b.ID, nil
		}
	}
	return "", fmt.Errorf("%w %q (valid: %s)", ErrUnknownBackend, name, strings.Join(Names(), ", "))
}

// ParseList parses a comma-separated backend list; "all" (or "")
// selects every backend in presentation order. Duplicates are
// rejected by name so a sweep never silently runs a backend twice.
func ParseList(s string) ([]ID, error) {
	if s == "" || strings.EqualFold(strings.TrimSpace(s), "all") {
		out := make([]ID, 0, len(registry))
		for _, b := range registry {
			out = append(out, b.ID)
		}
		return out, nil
	}
	var out []ID
	seen := make(map[ID]bool)
	for _, part := range strings.Split(s, ",") {
		id, err := Parse(part)
		if err != nil {
			return nil, err
		}
		if seen[id] {
			return nil, fmt.Errorf("backend %q listed twice", id)
		}
		seen[id] = true
		out = append(out, id)
	}
	return out, nil
}

// SortedNames returns the valid names in lexical order, for error
// messages and listings that want a stable alphabetical rendering.
func SortedNames() []string {
	n := Names()
	sort.Strings(n)
	return n
}

// WriteList renders the registry for the CLI listings (`zerodev list`,
// `zerodev run -list-backends`, `zerodev audit -list`), pinned by
// golden tests: one line per backend with its guarantee flags.
func WriteList(w io.Writer) {
	fmt.Fprintln(w, "Protocol backends (-backend, comma-separated or \"all\"):")
	for _, b := range registry {
		var flags []string
		if b.ClaimsZeroDEV {
			flags = append(flags, "zero-DEV")
		} else {
			flags = append(flags, "real DEVs")
		}
		if b.HousesDEsInLLC {
			flags = append(flags, "DEs in LLC")
		}
		if b.UsesHomeSegments {
			flags = append(flags, "WB_DE to home")
		}
		if b.HasPolicyAxis {
			flags = append(flags, "policy axis")
		}
		fmt.Fprintf(w, "  %-14s %s\n", b.ID, b.Title)
		fmt.Fprintf(w, "  %-14s [%s]\n", "", strings.Join(flags, ", "))
		fmt.Fprintf(w, "  %-14s faults: %s\n", "", strings.Join(b.Faults, ", "))
	}
}
