package backend

import (
	"errors"
	"strings"
	"testing"
)

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("registry has %d backends, want 4", len(all))
	}
	if all[0].ID != ZeroDEV {
		t.Fatalf("presentation order must lead with the proposal, got %q", all[0].ID)
	}
	seen := map[ID]bool{}
	for _, b := range all {
		if b.ID == "" || b.Title == "" {
			t.Fatalf("backend %+v missing ID or title", b)
		}
		if seen[b.ID] {
			t.Fatalf("duplicate backend %q", b.ID)
		}
		seen[b.ID] = true
		if string(b.ID) != strings.ToLower(string(b.ID)) {
			t.Fatalf("backend name %q must be lowercase", b.ID)
		}
	}
	if !MustGet(ZeroDEV).ClaimsZeroDEV || MustGet(SparseMESI).ClaimsZeroDEV {
		t.Fatal("zero-DEV claims are wrong: zerodev must claim, sparsemesi must not")
	}
	if !MustGet(DLS).ClaimsZeroDEV || MustGet(PhasePriority).ClaimsZeroDEV {
		t.Fatal("zero-DEV claims are wrong: dls must claim, phasepriority must not")
	}
}

func TestGetZeroValueDefaultsToZeroDEV(t *testing.T) {
	b, ok := Get("")
	if !ok || b.ID != ZeroDEV {
		t.Fatalf("Get(\"\") = %v, %v; want zerodev", b.ID, ok)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want ID
		err  bool
	}{
		{"zerodev", ZeroDEV, false},
		{"SPARSEMESI", SparseMESI, false},
		{"  dls ", DLS, false},
		{"phasepriority", PhasePriority, false},
		{"", ZeroDEV, false},
		{"mesi", "", true},
		{"zero-dev", "", true},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.err {
			if err == nil {
				t.Errorf("Parse(%q): expected error", c.in)
			} else if !errors.Is(err, ErrUnknownBackend) {
				t.Errorf("Parse(%q) error %v does not wrap ErrUnknownBackend", c.in, err)
			} else if !strings.Contains(err.Error(), "zerodev, sparsemesi, dls, phasepriority") {
				t.Errorf("Parse(%q) error %q does not list the valid set", c.in, err)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("Parse(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
}

func TestParseList(t *testing.T) {
	for _, all := range []string{"", "all", "ALL"} {
		ids, err := ParseList(all)
		if err != nil || len(ids) != 4 {
			t.Fatalf("ParseList(%q) = %v, %v; want all four", all, ids, err)
		}
	}
	ids, err := ParseList("dls, zerodev")
	if err != nil || len(ids) != 2 || ids[0] != DLS || ids[1] != ZeroDEV {
		t.Fatalf("ParseList preserves request order: got %v, %v", ids, err)
	}
	if _, err := ParseList("zerodev,zerodev"); err == nil {
		t.Fatal("duplicate backends must be rejected")
	}
	if _, err := ParseList("zerodev,bogus"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("unknown member error %v does not wrap ErrUnknownBackend", err)
	}
}
