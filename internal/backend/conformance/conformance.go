// Package conformance is the cross-backend protocol conformance suite:
// a table of scripted coherence scenarios (2 cores × 2 addresses —
// sharing, invalidation, ping-pong writes, eviction of the last
// holder, directory conflicts, fault-seam pokes) that every registered
// backend must survive with the full mcheck property set re-checked
// after every op. The final canonical state fingerprint of each
// (backend, scenario) pair is pinned in a golden file, so a behavioral
// change in any backend's protocol logic — even one that violates no
// invariant — shows up as a fingerprint diff that must be regenerated
// deliberately (`go test ./internal/backend/conformance -update`).
//
// The suite deliberately reuses mcheck's instance, property, and
// fingerprint machinery (mcheck.ReplayChecked) rather than growing a
// second driver: a conformance scenario is exactly one scripted path
// through the state space the model checker explores exhaustively.
package conformance

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/mcheck"
)

// Scenario is one scripted conformance case over 2 cores × 2 addrs.
type Scenario struct {
	Name string
	Ops  []mcheck.Op
}

// Scenarios returns the suite in fixed order. Every script is valid on
// every backend: ops that a backend cannot perform (a WB_DE on a
// backend without home segments) are defined as disabled no-ops, and
// the per-scenario enabled-op count is part of the pinned result.
func Scenarios() []Scenario {
	r := func(core, addr uint8) mcheck.Op { return mcheck.Op{Kind: mcheck.OpRead, Core: core, Addr: addr} }
	w := func(core, addr uint8) mcheck.Op { return mcheck.Op{Kind: mcheck.OpWrite, Core: core, Addr: addr} }
	e := func(core, addr uint8) mcheck.Op { return mcheck.Op{Kind: mcheck.OpEvict, Core: core, Addr: addr} }
	wbde := func(addr uint8) mcheck.Op { return mcheck.Op{Kind: mcheck.OpWBDE, Addr: addr} }
	inval := func(addr uint8) mcheck.Op { return mcheck.Op{Kind: mcheck.OpInval, Addr: addr} }
	return []Scenario{
		{"read-share", []mcheck.Op{r(0, 0), r(1, 0)}},
		{"write-invalidate", []mcheck.Op{r(1, 0), w(0, 0)}},
		{"ping-pong", []mcheck.Op{w(0, 0), w(1, 0), w(0, 0)}},
		{"evict-last-holder", []mcheck.Op{r(0, 0), e(0, 0)}},
		{"dir-conflict", []mcheck.Op{r(0, 0), r(1, 1)}},
		// The first read fills the 1-entry directory, so the second
		// address's entry is housed in the LLC — the only place a forced
		// WB_DE (on backends with home segments) can strike.
		{"wbde-refetch", []mcheck.Op{r(0, 0), r(1, 1), wbde(1), r(0, 1)}},
		{"spurious-inval", []mcheck.Op{r(0, 0), inval(0), r(0, 0)}},
		{"capacity-churn", []mcheck.Op{w(0, 0), w(1, 1), r(0, 1), r(1, 0), e(0, 0), r(0, 0)}},
	}
}

// configFor returns the tiny conformance configuration for one
// backend: its canonical organization with a single-entry bounded
// directory where the backend has one, so the dir-conflict scenarios
// actually conflict.
func configFor(id backend.ID) mcheck.Config {
	cfg := mcheck.Config{Cores: 2, Addrs: 2, Depth: 1, Backend: id, Workers: 1}
	switch id {
	case backend.ZeroDEV:
		cfg.Policy = core.FPSS
		cfg.DirEntries = 1
	case backend.DLS:
		cfg.DirEntries = 0
	default:
		cfg.DirEntries = 1
	}
	return cfg
}

// Result is the pinned outcome of one (backend, scenario) pair.
type Result struct {
	Backend  backend.ID
	Scenario string
	// Enabled counts the ops the backend could actually perform.
	Enabled int
	// Fingerprint is the FNV-128a canonical state hash after the script.
	Fingerprint [16]byte
}

// Line renders the result the way the golden file pins it.
func (r Result) Line() string {
	return fmt.Sprintf("%-14s %-18s ops=%d fp=%x", r.Backend, r.Scenario, r.Enabled, r.Fingerprint)
}

// Run executes the full suite over every registered backend, checking
// the mcheck property set after every op of every scenario.
func Run() ([]Result, error) {
	var out []Result
	for _, info := range backend.All() {
		cfg := configFor(info.ID)
		for _, sc := range Scenarios() {
			enabled, fp, err := mcheck.ReplayChecked(cfg, sc.Ops)
			if err != nil {
				return nil, fmt.Errorf("conformance: %s/%s: %w", info.ID, sc.Name, err)
			}
			out = append(out, Result{Backend: info.ID, Scenario: sc.Name, Enabled: enabled, Fingerprint: fp})
		}
	}
	return out, nil
}
