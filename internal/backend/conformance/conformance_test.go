package conformance

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/backend"
)

var update = flag.Bool("update", false, "rewrite the conformance golden with current fingerprints")

// TestConformanceGolden runs the full suite — every scenario on every
// registered backend, properties checked after every op — and pins the
// final state fingerprints. A diff here means a backend's protocol
// behavior changed; regenerate with -update only for intended changes.
func TestConformanceGolden(t *testing.T) {
	results, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range results {
		buf.WriteString(r.Line())
		buf.WriteByte('\n')
	}
	path := filepath.Join("testdata", "conformance.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/backend/conformance -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("conformance fingerprints differ from %s (regenerate with -update after intended protocol changes)\n--- got ---\n%s--- want ---\n%s",
			path, buf.Bytes(), want)
	}
}

// TestSuiteCoversEveryBackend guards the suite against a backend being
// registered but silently skipped.
func TestSuiteCoversEveryBackend(t *testing.T) {
	results, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	perBackend := make(map[backend.ID]int)
	for _, r := range results {
		perBackend[r.Backend]++
	}
	n := len(Scenarios())
	for _, info := range backend.All() {
		if perBackend[info.ID] != n {
			t.Errorf("backend %s ran %d scenarios, want %d", info.ID, perBackend[info.ID], n)
		}
	}
}

// TestBackendsDiverge checks the suite has discriminating power: the
// backends must not all collapse to identical fingerprints on the
// scenario built to separate them (dir-conflict exercises each
// backend's conflict handling: housing, eviction, inclusion, NACK).
func TestBackendsDiverge(t *testing.T) {
	results, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	fps := make(map[string][]string)
	for _, r := range results {
		if r.Scenario == "dir-conflict" {
			k := string(r.Fingerprint[:])
			fps[k] = append(fps[k], string(r.Backend))
		}
	}
	if len(fps) < 2 {
		t.Fatalf("dir-conflict fingerprints do not separate any backends: %v", fps)
	}
}

// TestWBDEEnabledOnlyWithHomeSegments pins the disabled-op contract:
// the WB_DE poke is a real op exactly on backends that write directory
// entries to home memory, and a no-op everywhere else.
func TestWBDEEnabledOnlyWithHomeSegments(t *testing.T) {
	results, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Scenario != "wbde-refetch" {
			continue
		}
		want := 3 // the three reads; the wbde op only fires with home segments
		if backend.MustGet(r.Backend).UsesHomeSegments {
			want = 4
		}
		if r.Enabled != want {
			t.Errorf("%s: wbde-refetch enabled %d ops, want %d", r.Backend, r.Enabled, want)
		}
	}
}

// TestResultLineFormat keeps the golden format stable and greppable.
func TestResultLineFormat(t *testing.T) {
	r := Result{Backend: backend.DLS, Scenario: "x", Enabled: 2}
	if !strings.HasPrefix(r.Line(), "dls") || !strings.Contains(r.Line(), "ops=2 fp=") {
		t.Fatalf("unexpected line format: %q", r.Line())
	}
}
