package conformance

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/mcheck"
)

// WideCores sizes the wide-sharer conformance configuration: 130 cores
// puts sharers in the first inline CoreSet word (0..63), the second
// (64..127), and the external spill words (128+), so every scenario
// crosses both representation boundaries of the widened sharer set.
const WideCores = 130

// wideSharers is the scripted reader population: the last and first
// bit of each 64-bit word plus interior cores, chosen so the sharer
// bit-vector has set bits straddling every word boundary.
var wideSharers = []uint8{0, 1, 63, 64, 65, 127, 128, 129}

// WideScenarios returns the wide-sharer suite. Like the 2-core suite,
// every script is valid on every backend; the enabled-op count is part
// of the pinned result.
func WideScenarios() []Scenario {
	r := func(core, addr uint8) mcheck.Op { return mcheck.Op{Kind: mcheck.OpRead, Core: core, Addr: addr} }
	w := func(core, addr uint8) mcheck.Op { return mcheck.Op{Kind: mcheck.OpWrite, Core: core, Addr: addr} }
	e := func(core, addr uint8) mcheck.Op { return mcheck.Op{Kind: mcheck.OpEvict, Core: core, Addr: addr} }
	wbde := func(addr uint8) mcheck.Op { return mcheck.Op{Kind: mcheck.OpWBDE, Addr: addr} }

	share := make([]mcheck.Op, 0, len(wideSharers))
	for _, c := range wideSharers {
		share = append(share, r(c, 0))
	}
	withTail := func(tail ...mcheck.Op) []mcheck.Op {
		return append(append([]mcheck.Op(nil), share...), tail...)
	}
	drain := make([]mcheck.Op, 0, len(wideSharers))
	for i := len(wideSharers) - 1; i >= 0; i-- {
		drain = append(drain, e(wideSharers[i], 0))
	}
	return []Scenario{
		// Sharers across all three word regions, then a cross-boundary
		// writer invalidates every one of them.
		{"wide-share-invalidate", withTail(w(129, 0))},
		// The full population evicts in reverse; the last eviction is the
		// last-holder path with a sharer vector that once spanned words.
		{"wide-evict-drain", withTail(drain...)},
		// Dir conflict while the wide set is live, then a WB_DE forces the
		// housed wide entry through the home-segment encode/decode path.
		{"wide-wbde-refetch", withTail(r(1, 1), wbde(1), r(128, 1))},
		// Write ping-pong across the spill boundary: ownership migrates
		// 127 -> 128 -> 63 -> 129, exercising owner IDs on both sides.
		{"wide-ping-pong", []mcheck.Op{w(127, 0), w(128, 0), w(63, 0), w(129, 0)}},
	}
}

// configWideFor mirrors configFor at WideCores.
func configWideFor(id backend.ID) mcheck.Config {
	cfg := mcheck.Config{Cores: WideCores, Addrs: 2, Depth: 1, Backend: id, Workers: 1}
	switch id {
	case backend.ZeroDEV:
		cfg.Policy = core.FPSS
		cfg.DirEntries = 1
	case backend.DLS:
		cfg.DirEntries = 0
	default:
		cfg.DirEntries = 1
	}
	return cfg
}

// RunWide executes the wide-sharer suite over every registered backend
// with the mcheck property set re-checked after every op.
func RunWide() ([]Result, error) {
	var out []Result
	for _, info := range backend.All() {
		cfg := configWideFor(info.ID)
		for _, sc := range WideScenarios() {
			enabled, fp, err := mcheck.ReplayChecked(cfg, sc.Ops)
			if err != nil {
				return nil, fmt.Errorf("conformance: %s/%s: %w", info.ID, sc.Name, err)
			}
			out = append(out, Result{Backend: info.ID, Scenario: sc.Name, Enabled: enabled, Fingerprint: fp})
		}
	}
	return out, nil
}
