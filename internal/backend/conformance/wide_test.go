package conformance

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/backend"
)

// TestWideConformanceGolden pins the wide-sharer suite: 130-core
// scenarios whose sharer sets cross the 64- and 128-core word
// boundaries of the widened CoreSet, on every registered backend. A
// fingerprint diff here means width handling changed protocol behavior;
// regenerate with -update only for intended changes.
func TestWideConformanceGolden(t *testing.T) {
	results, err := RunWide()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range results {
		buf.WriteString(r.Line())
		buf.WriteByte('\n')
	}
	path := filepath.Join("testdata", "conformance_wide.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/backend/conformance -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("wide conformance fingerprints differ from %s (regenerate with -update after intended protocol changes)\n--- got ---\n%s--- want ---\n%s",
			path, buf.Bytes(), want)
	}
}

// TestWideSuiteCoversEveryBackend guards against a backend being
// registered but silently skipped from the wide suite.
func TestWideSuiteCoversEveryBackend(t *testing.T) {
	results, err := RunWide()
	if err != nil {
		t.Fatal(err)
	}
	perBackend := make(map[backend.ID]int)
	for _, r := range results {
		perBackend[r.Backend]++
	}
	n := len(WideScenarios())
	for _, info := range backend.All() {
		if perBackend[info.ID] != n {
			t.Errorf("backend %s ran %d wide scenarios, want %d", info.ID, perBackend[info.ID], n)
		}
	}
}

// TestWideShareEnablesEveryOp checks the wide-share script is fully
// enabled everywhere: reads and the cross-boundary write are legal on
// every backend, so the sharer set genuinely spans three words when the
// invalidation fires.
func TestWideShareEnablesEveryOp(t *testing.T) {
	results, err := RunWide()
	if err != nil {
		t.Fatal(err)
	}
	want := len(wideSharers) + 1
	for _, r := range results {
		if r.Scenario == "wide-share-invalidate" && r.Enabled != want {
			t.Errorf("%s: wide-share-invalidate enabled %d ops, want %d", r.Backend, r.Enabled, want)
		}
	}
}

// TestExploreStillBoundedToTinyCores pins that the replay relaxation
// did not widen exhaustive exploration: a wide config must still fail
// strict validation.
func TestExploreStillBoundedToTinyCores(t *testing.T) {
	cfg := configWideFor(backend.ZeroDEV)
	if err := cfg.Validate(); err == nil {
		t.Fatal("wide config passed strict Validate; exploration bound lost")
	}
	if err := cfg.ValidateReplay(); err != nil {
		t.Fatalf("wide config rejected for replay: %v", err)
	}
}
