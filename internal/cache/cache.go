// Package cache provides a generic set-associative array with LRU or
// 1-bit NRU replacement. It is the storage substrate for the private L1
// and L2 caches, the sparse directory variants, the socket-level
// directory cache, and (with custom victim filtering) the shared LLC.
package cache

import "fmt"

// Policy selects the replacement bookkeeping an Array maintains.
type Policy uint8

const (
	// LRU is true least-recently-used replacement (per-line use stamps).
	LRU Policy = iota
	// NRU is 1-bit not-recently-used replacement, as in the paper's
	// baseline sparse directory (Table I).
	NRU
)

// Geometry describes a set-associative organization.
type Geometry struct {
	Sets int
	Ways int
}

// Blocks returns the total line count.
func (g Geometry) Blocks() int { return g.Sets * g.Ways }

// GeometryFor derives a geometry from a capacity in bytes, associativity,
// and line size, validating that the set count is a positive power of two.
func GeometryFor(capacityBytes, ways, lineBytes int) (Geometry, error) {
	if capacityBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return Geometry{}, fmt.Errorf("cache: non-positive geometry parameter")
	}
	blocks := capacityBytes / lineBytes
	if blocks*lineBytes != capacityBytes {
		return Geometry{}, fmt.Errorf("cache: capacity %d not a multiple of line size %d", capacityBytes, lineBytes)
	}
	sets := blocks / ways
	if sets*ways != blocks {
		return Geometry{}, fmt.Errorf("cache: %d blocks not divisible by %d ways", blocks, ways)
	}
	if sets&(sets-1) != 0 || sets == 0 {
		return Geometry{}, fmt.Errorf("cache: set count %d is not a positive power of two", sets)
	}
	return Geometry{Sets: sets, Ways: ways}, nil
}

// MustGeometry is GeometryFor that panics on error; intended for
// configuration presets validated by tests.
func MustGeometry(capacityBytes, ways, lineBytes int) Geometry {
	g, err := GeometryFor(capacityBytes, ways, lineBytes)
	if err != nil {
		panic(err)
	}
	return g
}

// Array is a set-associative array whose lines carry a payload of type T.
// The zero value is not usable; construct with New.
type Array[T any] struct {
	geo    Geometry
	policy Policy
	tags   []uint64
	valid  []bool
	use    []uint64 // LRU stamps
	ref    []bool   // NRU reference bits
	data   []T
	tick   uint64
}

// New constructs an empty array.
func New[T any](geo Geometry, policy Policy) *Array[T] {
	n := geo.Blocks()
	return &Array[T]{
		geo:    geo,
		policy: policy,
		tags:   make([]uint64, n),
		valid:  make([]bool, n),
		use:    make([]uint64, n),
		ref:    make([]bool, n),
		data:   make([]T, n),
	}
}

// Geometry returns the array's organization.
func (a *Array[T]) Geometry() Geometry { return a.geo }

// SetIndex maps a block address to a set using the low-order index bits,
// the same index function the paper's LLC and spilled entries share.
func (a *Array[T]) SetIndex(blockAddr uint64) int {
	return int(blockAddr & uint64(a.geo.Sets-1))
}

// Tag returns the tag for a block address under this geometry.
func (a *Array[T]) Tag(blockAddr uint64) uint64 {
	return blockAddr / uint64(a.geo.Sets)
}

// AddrOf reconstructs the block address stored in (set, way).
func (a *Array[T]) AddrOf(set, way int) uint64 {
	return a.tags[a.idx(set, way)]*uint64(a.geo.Sets) + uint64(set)
}

func (a *Array[T]) idx(set, way int) int { return set*a.geo.Ways + way }

// Lookup finds the way holding blockAddr in its set. It does not update
// replacement state; callers decide when an access counts as a use.
func (a *Array[T]) Lookup(blockAddr uint64) (set, way int, ok bool) {
	set = a.SetIndex(blockAddr)
	tag := a.Tag(blockAddr)
	base := set * a.geo.Ways
	for w := 0; w < a.geo.Ways; w++ {
		if a.valid[base+w] && a.tags[base+w] == tag {
			return set, w, true
		}
	}
	return set, -1, false
}

// Contains reports whether blockAddr is present.
func (a *Array[T]) Contains(blockAddr uint64) bool {
	_, _, ok := a.Lookup(blockAddr)
	return ok
}

// Touch marks (set, way) most recently used (LRU) or referenced (NRU).
func (a *Array[T]) Touch(set, way int) {
	i := a.idx(set, way)
	switch a.policy {
	case LRU:
		a.tick++
		a.use[i] = a.tick
	case NRU:
		a.ref[i] = true
	}
}

// Demote marks (set, way) least recently used within its set, making it
// the preferred victim. ZeroDEV's directory-caching studies use this for
// replacement-priority experiments.
func (a *Array[T]) Demote(set, way int) {
	i := a.idx(set, way)
	switch a.policy {
	case LRU:
		a.use[i] = 0
	case NRU:
		a.ref[i] = false
	}
}

// FreeWay returns an invalid way in set, or ok=false when the set is full.
func (a *Array[T]) FreeWay(set int) (way int, ok bool) {
	base := set * a.geo.Ways
	for w := 0; w < a.geo.Ways; w++ {
		if !a.valid[base+w] {
			return w, true
		}
	}
	return -1, false
}

// Victim selects the replacement victim among the valid ways of set.
// The set must have at least one valid way.
func (a *Array[T]) Victim(set int) int {
	w, ok := a.VictimWhere(set, func(int, T) bool { return true })
	if !ok {
		panic("cache: Victim on set with no valid ways")
	}
	return w
}

// VictimWhere selects the replacement victim among valid ways satisfying
// eligible. Under LRU it is the eligible way with the oldest use stamp;
// under NRU it is the first eligible way with a clear reference bit,
// clearing all bits first when every eligible way is referenced.
func (a *Array[T]) VictimWhere(set int, eligible func(way int, payload T) bool) (way int, ok bool) {
	base := set * a.geo.Ways
	switch a.policy {
	case LRU:
		best, bestUse := -1, ^uint64(0)
		for w := 0; w < a.geo.Ways; w++ {
			i := base + w
			if a.valid[i] && eligible(w, a.data[i]) && a.use[i] < bestUse {
				best, bestUse = w, a.use[i]
			}
		}
		return best, best >= 0
	case NRU:
		any := false
		for pass := 0; pass < 2; pass++ {
			for w := 0; w < a.geo.Ways; w++ {
				i := base + w
				if !a.valid[i] || !eligible(w, a.data[i]) {
					continue
				}
				any = true
				if !a.ref[i] {
					return w, true
				}
			}
			if !any {
				return -1, false
			}
			// All eligible ways referenced: clear and rescan.
			for w := 0; w < a.geo.Ways; w++ {
				i := base + w
				if a.valid[i] && eligible(w, a.data[i]) {
					a.ref[i] = false
				}
			}
		}
		return -1, false
	}
	return -1, false
}

// Insert fills (set, way) with blockAddr and its payload and marks it
// most recently used. The way may be valid (overwrite) or invalid.
func (a *Array[T]) Insert(set, way int, blockAddr uint64, payload T) {
	i := a.idx(set, way)
	a.tags[i] = a.Tag(blockAddr)
	a.valid[i] = true
	a.data[i] = payload
	a.Touch(set, way)
}

// Invalidate frees (set, way), zeroing its payload.
func (a *Array[T]) Invalidate(set, way int) {
	i := a.idx(set, way)
	a.valid[i] = false
	var zero T
	a.data[i] = zero
	a.use[i] = 0
	a.ref[i] = false
}

// Valid reports whether (set, way) holds a line.
func (a *Array[T]) Valid(set, way int) bool {
	return a.valid[a.idx(set, way)]
}

// Payload returns a pointer to the payload at (set, way) for in-place
// mutation. The way must be valid.
func (a *Array[T]) Payload(set, way int) *T {
	i := a.idx(set, way)
	if !a.valid[i] {
		panic("cache: Payload of invalid way")
	}
	return &a.data[i]
}

// UseStamp exposes the LRU stamp of (set, way), used by the LLC's
// extended policies to reason about relative recency.
func (a *Array[T]) UseStamp(set, way int) uint64 {
	return a.use[a.idx(set, way)]
}

// ForEachValid calls fn for every valid line.
func (a *Array[T]) ForEachValid(fn func(set, way int, blockAddr uint64, payload *T)) {
	for set := 0; set < a.geo.Sets; set++ {
		base := set * a.geo.Ways
		for w := 0; w < a.geo.Ways; w++ {
			if a.valid[base+w] {
				fn(set, w, a.AddrOf(set, w), &a.data[base+w])
			}
		}
	}
}

// CountValid returns the number of valid lines.
func (a *Array[T]) CountValid() int {
	n := 0
	for _, v := range a.valid {
		if v {
			n++
		}
	}
	return n
}

// AppendState appends a canonical encoding of the array's
// protocol-visible state to buf: per set, per valid way in way order,
// the way index, tag, replacement metadata, and the payload via enc.
// LRU recency is encoded as the way's rank within its set (0 = oldest)
// rather than the absolute use stamp, so two arrays that victimize
// identically fingerprint identically no matter how many touches built
// their recency order. Used by the model checker to dedup revisited
// states; see DESIGN.md ("Model checking").
func (a *Array[T]) AppendState(buf []byte, enc func([]byte, *T) []byte) []byte {
	for set := 0; set < a.geo.Sets; set++ {
		base := set * a.geo.Ways
		for w := 0; w < a.geo.Ways; w++ {
			i := base + w
			if !a.valid[i] {
				continue
			}
			buf = append(buf, byte(w))
			buf = appendUint64(buf, a.tags[i])
			switch a.policy {
			case LRU:
				buf = append(buf, byte(a.recencyRank(set, w)))
			case NRU:
				if a.ref[i] {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
			}
			if enc != nil {
				buf = enc(buf, &a.data[i])
			}
		}
		buf = append(buf, 0xff) // set separator
	}
	return buf
}

// recencyRank counts the valid ways of set that the LRU policy would
// victimize before (set, way): strictly older stamps, or equal stamps
// at a lower way index (Victim breaks ties toward low ways). O(ways²)
// per set, fine at fingerprinting scale.
func (a *Array[T]) recencyRank(set, way int) int {
	base := set * a.geo.Ways
	self := a.use[base+way]
	rank := 0
	for w := 0; w < a.geo.Ways; w++ {
		if w == way || !a.valid[base+w] {
			continue
		}
		if u := a.use[base+w]; u < self || (u == self && w < way) {
			rank++
		}
	}
	return rank
}

func appendUint64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
