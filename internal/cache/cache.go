// Package cache provides a generic set-associative array with LRU or
// 1-bit NRU replacement. It is the storage substrate for the private L1
// and L2 caches, the sparse directory variants, the socket-level
// directory cache, and (with custom victim filtering) the shared LLC.
package cache

import (
	"fmt"
	"math/bits"
)

// Policy selects the replacement bookkeeping an Array maintains.
type Policy uint8

const (
	// LRU is true least-recently-used replacement (per-line use stamps).
	LRU Policy = iota
	// NRU is 1-bit not-recently-used replacement, as in the paper's
	// baseline sparse directory (Table I).
	NRU
)

// Geometry describes a set-associative organization.
type Geometry struct {
	Sets int
	Ways int
}

// Blocks returns the total line count.
func (g Geometry) Blocks() int { return g.Sets * g.Ways }

// GeometryFor derives a geometry from a capacity in bytes, associativity,
// and line size, validating that the set count is a positive power of two.
func GeometryFor(capacityBytes, ways, lineBytes int) (Geometry, error) {
	if capacityBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return Geometry{}, fmt.Errorf("cache: non-positive geometry parameter")
	}
	blocks := capacityBytes / lineBytes
	if blocks*lineBytes != capacityBytes {
		return Geometry{}, fmt.Errorf("cache: capacity %d not a multiple of line size %d", capacityBytes, lineBytes)
	}
	sets := blocks / ways
	if sets*ways != blocks {
		return Geometry{}, fmt.Errorf("cache: %d blocks not divisible by %d ways", blocks, ways)
	}
	if sets&(sets-1) != 0 || sets == 0 {
		return Geometry{}, fmt.Errorf("cache: set count %d is not a positive power of two", sets)
	}
	return Geometry{Sets: sets, Ways: ways}, nil
}

// MustGeometry is GeometryFor that panics on error; intended for
// configuration presets validated by tests.
func MustGeometry(capacityBytes, ways, lineBytes int) Geometry {
	g, err := GeometryFor(capacityBytes, ways, lineBytes)
	if err != nil {
		panic(err)
	}
	return g
}

// invalidTag marks an invalid way in the tag array. Tag matching is the
// hottest loop in the simulator, so invalid ways carry a sentinel tag no
// real block can produce (block addresses are bounded far below 2^64 by
// the workload address-space layout) and the match loops skip the valid
// check entirely.
const invalidTag = ^uint64(0)

// Array is a set-associative array whose lines carry a payload of type T.
// The zero value is not usable; construct with New.
type Array[T any] struct {
	geo      Geometry
	policy   Policy
	tagShift uint8 // log2(Sets); Tag is a shift, not a division
	tags     []uint64
	valid    []bool
	use      []uint64 // LRU stamps
	ref      []bool   // NRU reference bits
	demo     []bool   // LRU demotion marks (preferred victims)
	data     []T
	live     []int16 // valid-way count per set (O(1) full-set detection)
	tick     uint64
}

// New constructs an empty array. The set count must be a positive power
// of two: SetIndex has always masked with Sets-1, so this was an
// implicit requirement of every caller; it is now enforced.
func New[T any](geo Geometry, policy Policy) *Array[T] {
	if geo.Sets <= 0 || geo.Sets&(geo.Sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a positive power of two", geo.Sets))
	}
	n := geo.Blocks()
	a := &Array[T]{
		geo:      geo,
		policy:   policy,
		tagShift: uint8(bits.TrailingZeros64(uint64(geo.Sets))),
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
		use:      make([]uint64, n),
		ref:      make([]bool, n),
		demo:     make([]bool, n),
		data:     make([]T, n),
		live:     make([]int16, geo.Sets),
	}
	for i := range a.tags {
		a.tags[i] = invalidTag
	}
	return a
}

// Geometry returns the array's organization.
func (a *Array[T]) Geometry() Geometry { return a.geo }

// SetIndex maps a block address to a set using the low-order index bits,
// the same index function the paper's LLC and spilled entries share.
func (a *Array[T]) SetIndex(blockAddr uint64) int {
	return int(blockAddr & uint64(a.geo.Sets-1))
}

// Tag returns the tag for a block address under this geometry. Sets is
// a power of two (enforced by New), so this is a shift rather than a
// 64-bit division on the Lookup/Probe hot path.
func (a *Array[T]) Tag(blockAddr uint64) uint64 {
	return blockAddr >> a.tagShift
}

// AddrOf reconstructs the block address stored in (set, way).
func (a *Array[T]) AddrOf(set, way int) uint64 {
	return a.tags[a.idx(set, way)]<<a.tagShift | uint64(set)
}

// TagAt returns the stored tag of (set, way) without reconstructing the
// full block address; hot paths that already know the set use it to
// compare identity against a precomputed tag.
func (a *Array[T]) TagAt(set, way int) uint64 {
	return a.tags[a.idx(set, way)]
}

// FindWays2 returns the first two valid ways of set holding tag, -1 for
// absent. A block occupies at most two ways of an LLC set (its data
// line plus its spilled directory entry), so two slots cover every
// caller; the scan is a single pass over the set with no per-way calls,
// which is why the LLC probe path uses it instead of Lookup.
func (a *Array[T]) FindWays2(set int, tag uint64) (w0, w1 int) {
	w0, w1 = -1, -1
	base := set * a.geo.Ways
	tags := a.tags[base : base+a.geo.Ways]
	for w := range tags {
		if tags[w] == tag {
			if w0 < 0 {
				w0 = w
			} else {
				w1 = w
				return
			}
		}
	}
	return
}

// FindWay returns the first valid way of set holding tag, or -1. It is
// the scan Lookup performs when the caller already has the set and tag.
func (a *Array[T]) FindWay(set int, tag uint64) int {
	base := set * a.geo.Ways
	tags := a.tags[base : base+a.geo.Ways]
	for w := range tags {
		if tags[w] == tag {
			return w
		}
	}
	return -1
}

func (a *Array[T]) idx(set, way int) int { return set*a.geo.Ways + way }

// Lookup finds the way holding blockAddr in its set. It does not update
// replacement state; callers decide when an access counts as a use.
func (a *Array[T]) Lookup(blockAddr uint64) (set, way int, ok bool) {
	set = a.SetIndex(blockAddr)
	tag := a.Tag(blockAddr)
	base := set * a.geo.Ways
	tags := a.tags[base : base+a.geo.Ways]
	for w := range tags {
		if tags[w] == tag {
			return set, w, true
		}
	}
	return set, -1, false
}

// Contains reports whether blockAddr is present.
func (a *Array[T]) Contains(blockAddr uint64) bool {
	_, _, ok := a.Lookup(blockAddr)
	return ok
}

// Touch marks (set, way) most recently used (LRU) or referenced (NRU).
// A touch rescinds any earlier demotion.
func (a *Array[T]) Touch(set, way int) {
	i := a.idx(set, way)
	switch a.policy {
	case LRU:
		a.tick++
		a.use[i] = a.tick
		a.demo[i] = false
	case NRU:
		a.ref[i] = true
	}
}

// Demote marks (set, way) a preferred victim: demoted lines are
// victimized before any non-demoted line in the set. Under LRU the
// line's use stamp is kept, so multiple demoted lines in a set retain
// their relative recency and leave oldest-first instead of collapsing
// to a way-index tie. ZeroDEV's directory-caching studies use this for
// replacement-priority experiments.
func (a *Array[T]) Demote(set, way int) {
	i := a.idx(set, way)
	switch a.policy {
	case LRU:
		a.demo[i] = true
	case NRU:
		a.ref[i] = false
	}
}

// FreeWay returns an invalid way in set, or ok=false when the set is
// full. Full sets — the steady state of every cache in a running
// simulation — are answered in O(1) from the per-set live count.
func (a *Array[T]) FreeWay(set int) (way int, ok bool) {
	if int(a.live[set]) == a.geo.Ways {
		return -1, false
	}
	base := set * a.geo.Ways
	valid := a.valid[base : base+a.geo.Ways]
	for w := range valid {
		if !valid[w] {
			return w, true
		}
	}
	return -1, false
}

// Victim selects the replacement victim among the valid ways of set.
// The set must have at least one valid way. The LRU case is an open-coded
// scan (no eligibility callback) because the LLC allocates through here
// on every fill that misses a free way.
func (a *Array[T]) Victim(set int) int {
	if a.policy == LRU {
		base := set * a.geo.Ways
		n := a.geo.Ways
		valid := a.valid[base : base+n]
		use := a.use[base : base+n]
		demo := a.demo[base : base+n]
		best := -1
		bestUse := ^uint64(0)
		bestDemo := false
		for w := 0; w < n; w++ {
			if valid[w] && a.older(demo[w], use[w], bestDemo, bestUse) {
				best, bestUse, bestDemo = w, use[w], demo[w]
			}
		}
		if best < 0 {
			panic("cache: Victim on set with no valid ways")
		}
		return best
	}
	w, ok := a.VictimWhere(set, func(int, *T) bool { return true })
	if !ok {
		panic("cache: Victim on set with no valid ways")
	}
	return w
}

// older reports whether a line with (demoted, use) is victimized before
// one with (bestDemoted, bestUse): demoted lines first, then oldest use
// stamp. Strict comparison keeps the lowest-way tie-break of the
// callers' ascending scans.
func (a *Array[T]) older(demo bool, use uint64, bestDemo bool, bestUse uint64) bool {
	if demo != bestDemo {
		return demo
	}
	return use < bestUse
}

// VictimWhere selects the replacement victim among valid ways satisfying
// eligible. Under LRU it is the eligible way with the oldest use stamp,
// demoted lines before all others; under NRU it is the first eligible
// way with a clear reference bit, clearing all bits first when every
// eligible way is referenced. The payload pointer passed to eligible is
// valid only for the duration of the call.
func (a *Array[T]) VictimWhere(set int, eligible func(way int, payload *T) bool) (way int, ok bool) {
	base := set * a.geo.Ways
	switch a.policy {
	case LRU:
		n := a.geo.Ways
		valid := a.valid[base : base+n]
		use := a.use[base : base+n]
		demo := a.demo[base : base+n]
		best := -1
		bestUse := ^uint64(0)
		bestDemo := false
		for w := 0; w < n; w++ {
			if valid[w] && eligible(w, &a.data[base+w]) && a.older(demo[w], use[w], bestDemo, bestUse) {
				best, bestUse, bestDemo = w, use[w], demo[w]
			}
		}
		return best, best >= 0
	case NRU:
		any := false
		for pass := 0; pass < 2; pass++ {
			for w := 0; w < a.geo.Ways; w++ {
				i := base + w
				if !a.valid[i] || !eligible(w, &a.data[i]) {
					continue
				}
				any = true
				if !a.ref[i] {
					return w, true
				}
			}
			if !any {
				return -1, false
			}
			// All eligible ways referenced: clear and rescan.
			for w := 0; w < a.geo.Ways; w++ {
				i := base + w
				if a.valid[i] && eligible(w, &a.data[i]) {
					a.ref[i] = false
				}
			}
		}
		return -1, false
	}
	return -1, false
}

// Insert fills (set, way) with blockAddr and its payload and marks it
// most recently used. The way may be valid (overwrite) or invalid.
func (a *Array[T]) Insert(set, way int, blockAddr uint64, payload T) {
	i := a.idx(set, way)
	a.tags[i] = a.Tag(blockAddr)
	if !a.valid[i] {
		a.valid[i] = true
		a.live[set]++
	}
	a.data[i] = payload
	a.Touch(set, way)
}

// Invalidate frees (set, way), zeroing its payload.
func (a *Array[T]) Invalidate(set, way int) {
	i := a.idx(set, way)
	if a.valid[i] {
		a.valid[i] = false
		a.live[set]--
	}
	a.tags[i] = invalidTag
	var zero T
	a.data[i] = zero
	a.use[i] = 0
	a.ref[i] = false
	a.demo[i] = false
}

// Valid reports whether (set, way) holds a line.
func (a *Array[T]) Valid(set, way int) bool {
	return a.valid[a.idx(set, way)]
}

// Payload returns a pointer to the payload at (set, way) for in-place
// mutation. The way must be valid.
func (a *Array[T]) Payload(set, way int) *T {
	i := a.idx(set, way)
	if !a.valid[i] {
		panic("cache: Payload of invalid way")
	}
	return &a.data[i]
}

// UseStamp exposes the LRU stamp of (set, way), used by the LLC's
// extended policies to reason about relative recency.
func (a *Array[T]) UseStamp(set, way int) uint64 {
	return a.use[a.idx(set, way)]
}

// ForEachValid calls fn for every valid line.
func (a *Array[T]) ForEachValid(fn func(set, way int, blockAddr uint64, payload *T)) {
	for set := 0; set < a.geo.Sets; set++ {
		base := set * a.geo.Ways
		for w := 0; w < a.geo.Ways; w++ {
			if a.valid[base+w] {
				fn(set, w, a.AddrOf(set, w), &a.data[base+w])
			}
		}
	}
}

// CountValid returns the number of valid lines.
func (a *Array[T]) CountValid() int {
	n := 0
	for _, v := range a.valid {
		if v {
			n++
		}
	}
	return n
}

// AppendState appends a canonical encoding of the array's
// protocol-visible state to buf: per set, per valid way in way order,
// the way index, tag, replacement metadata, and the payload via enc.
// LRU recency is encoded as the way's rank within its set (0 = oldest)
// rather than the absolute use stamp, so two arrays that victimize
// identically fingerprint identically no matter how many touches built
// their recency order. Used by the model checker to dedup revisited
// states; see DESIGN.md ("Model checking").
func (a *Array[T]) AppendState(buf []byte, enc func([]byte, *T) []byte) []byte {
	for set := 0; set < a.geo.Sets; set++ {
		base := set * a.geo.Ways
		for w := 0; w < a.geo.Ways; w++ {
			i := base + w
			if !a.valid[i] {
				continue
			}
			buf = append(buf, byte(w))
			buf = appendUint64(buf, a.tags[i])
			switch a.policy {
			case LRU:
				rank := byte(a.recencyRank(set, w))
				if a.demo[i] {
					// The demotion mark outlives the current victim order (it
					// steers victim choice until the line is touched), so it is
					// protocol-visible state beyond the rank.
					rank |= 0x80
				}
				buf = append(buf, rank)
			case NRU:
				if a.ref[i] {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
			}
			if enc != nil {
				buf = enc(buf, &a.data[i])
			}
		}
		buf = append(buf, 0xff) // set separator
	}
	return buf
}

// recencyRank counts the valid ways of set that the LRU policy would
// victimize before (set, way): demoted before non-demoted, then
// strictly older stamps, then equal stamps at a lower way index (Victim
// breaks ties toward low ways). O(ways²) per set, fine at
// fingerprinting scale.
func (a *Array[T]) recencyRank(set, way int) int {
	base := set * a.geo.Ways
	self := a.use[base+way]
	selfDemo := a.demo[base+way]
	rank := 0
	for w := 0; w < a.geo.Ways; w++ {
		i := base + w
		if w == way || !a.valid[i] {
			continue
		}
		if a.demo[i] != selfDemo {
			if a.demo[i] {
				rank++
			}
			continue
		}
		if u := a.use[i]; u < self || (u == self && w < way) {
			rank++
		}
	}
	return rank
}

func appendUint64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
