package cache

import (
	"testing"
	"testing/quick"
)

func TestGeometryFor(t *testing.T) {
	g, err := GeometryFor(32<<10, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if g.Sets != 64 || g.Ways != 8 || g.Blocks() != 512 {
		t.Fatalf("geometry = %+v", g)
	}
	bad := [][3]int{
		{0, 8, 64},       // zero capacity
		{100, 8, 64},     // not a multiple of line size
		{3 << 10, 8, 64}, // 48 blocks not divisible by 8... (it is: 6 sets, not pow2)
		{-1, 8, 64},
	}
	for _, b := range bad {
		if _, err := GeometryFor(b[0], b[1], b[2]); err == nil {
			t.Fatalf("GeometryFor(%v) accepted", b)
		}
	}
}

func TestLRUOrder(t *testing.T) {
	a := New[int](Geometry{Sets: 1, Ways: 4}, LRU)
	for i := 0; i < 4; i++ {
		way, free := a.FreeWay(0)
		if !free {
			t.Fatal("expected a free way")
		}
		a.Insert(0, way, uint64(i), i)
	}
	if _, free := a.FreeWay(0); free {
		t.Fatal("set should be full")
	}
	// Touch block 0 so block 1 becomes LRU.
	_, w0, ok := a.Lookup(0)
	if !ok {
		t.Fatal("block 0 missing")
	}
	a.Touch(0, w0)
	v := a.Victim(0)
	if a.AddrOf(0, v) != 1 {
		t.Fatalf("victim = block %d, want 1", a.AddrOf(0, v))
	}
	// Demote block 3 to make it the victim.
	_, w3, _ := a.Lookup(3)
	a.Demote(0, w3)
	if v := a.Victim(0); a.AddrOf(0, v) != 3 {
		t.Fatalf("victim after demote = block %d, want 3", a.AddrOf(0, v))
	}
}

// TestDemoteKeepsRelativeRecency is the regression test for the bug
// where Demote zeroed the use stamp: with several demoted lines in a
// set, Victim ties always broke toward the lowest way, destroying the
// lines' relative age. Demoted lines must leave oldest-first, and a
// later Touch must rescind the demotion.
func TestDemoteKeepsRelativeRecency(t *testing.T) {
	a := New[int](Geometry{Sets: 1, Ways: 4}, LRU)
	for i := 0; i < 4; i++ {
		a.Insert(0, i, uint64(i), i)
	}
	// Insertion order 0,1,2,3 (oldest first). Demote 3, then 1, then 2 —
	// demotion order must NOT matter, only the lines' own recency.
	for _, blk := range []uint64{3, 1, 2} {
		_, w, ok := a.Lookup(blk)
		if !ok {
			t.Fatalf("block %d missing", blk)
		}
		a.Demote(0, w)
	}
	// Victim order among the demoted: 1, then 2, then 3 (oldest stamps
	// first), and only then the never-demoted block 0.
	for _, want := range []uint64{1, 2, 3, 0} {
		w := a.Victim(0)
		if got := a.AddrOf(0, w); got != want {
			t.Fatalf("victim = block %d, want %d", got, want)
		}
		a.Invalidate(0, w)
	}

	// Touch rescinds a demotion: the line rejoins the normal order.
	b := New[int](Geometry{Sets: 1, Ways: 2}, LRU)
	b.Insert(0, 0, 0, 0)
	b.Insert(0, 1, 1, 1)
	b.Demote(0, 1)
	b.Touch(0, 1)
	if w := b.Victim(0); b.AddrOf(0, w) != 0 {
		t.Fatalf("touched-after-demote line victimized; victim = block %d, want 0", b.AddrOf(0, w))
	}
}

func TestNRUVictim(t *testing.T) {
	a := New[struct{}](Geometry{Sets: 1, Ways: 4}, NRU)
	for i := 0; i < 4; i++ {
		a.Insert(0, i, uint64(i), struct{}{})
	}
	// All referenced: the first pass clears bits and the scan restarts,
	// so way 0 is chosen.
	if v := a.Victim(0); v != 0 {
		t.Fatalf("victim = way %d, want 0", v)
	}
	// Reference ways 0 and 1; way 2 should now be the victim.
	a.Touch(0, 0)
	a.Touch(0, 1)
	if v := a.Victim(0); v != 2 {
		t.Fatalf("victim = way %d, want 2", v)
	}
}

func TestVictimWhere(t *testing.T) {
	a := New[string](Geometry{Sets: 1, Ways: 4}, LRU)
	kinds := []string{"data", "de", "data", "de"}
	for i, k := range kinds {
		a.Insert(0, i, uint64(i), k)
	}
	w, ok := a.VictimWhere(0, func(_ int, k *string) bool { return *k == "data" })
	if !ok || a.AddrOf(0, w) != 0 {
		t.Fatalf("filtered victim = %v/%v, want block 0", w, ok)
	}
	if _, ok := a.VictimWhere(0, func(_ int, k *string) bool { return *k == "none" }); ok {
		t.Fatal("no eligible way should report ok=false")
	}
}

func TestInvalidate(t *testing.T) {
	a := New[int](Geometry{Sets: 2, Ways: 2}, LRU)
	a.Insert(0, 0, 4, 42) // addr 4 maps to set 0
	if !a.Contains(4) {
		t.Fatal("lookup after insert failed")
	}
	set, way, _ := a.Lookup(4)
	a.Invalidate(set, way)
	if a.Contains(4) || a.CountValid() != 0 {
		t.Fatal("invalidate failed")
	}
}

func TestAddrOfRoundTrip(t *testing.T) {
	f := func(addr uint64) bool {
		a := New[struct{}](Geometry{Sets: 64, Ways: 4}, LRU)
		addr %= 1 << 40
		set := a.SetIndex(addr)
		a.Insert(set, 1, addr, struct{}{})
		return a.AddrOf(set, 1) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the array agrees with a reference map under random
// insert/lookup/invalidate sequences (victims evicted on conflict).
func TestArrayMatchesReference(t *testing.T) {
	f := func(ops []uint16) bool {
		a := New[uint16](Geometry{Sets: 8, Ways: 2}, LRU)
		ref := map[uint64]uint16{}
		for _, op := range ops {
			addr := uint64(op % 64)
			switch op % 3 {
			case 0: // insert
				set, way, ok := a.Lookup(addr)
				if !ok {
					var free bool
					way, free = a.FreeWay(set)
					if !free {
						way = a.Victim(set)
						delete(ref, a.AddrOf(set, way))
					}
				}
				a.Insert(set, way, addr, op)
				ref[addr] = op
			case 1: // lookup
				set, way, ok := a.Lookup(addr)
				want, inRef := ref[addr]
				if ok != inRef {
					return false
				}
				if ok && *a.Payload(set, way) != want {
					return false
				}
			case 2: // invalidate
				if set, way, ok := a.Lookup(addr); ok {
					a.Invalidate(set, way)
					delete(ref, addr)
				}
			}
		}
		return a.CountValid() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPayloadPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Payload of an invalid way must panic")
		}
	}()
	a := New[int](Geometry{Sets: 1, Ways: 1}, LRU)
	a.Payload(0, 0)
}
