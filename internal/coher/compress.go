package coher

import "fmt"

// This file implements the compressed directory-entry representations
// the paper sketches for scaling past the full-map socket bound
// (§III-D: "a hybrid of limited-pointer and coarse-vector formats can
// dynamically choose between precise and imprecise representations
// depending on the sharer count"). The hybrid picks, per entry and
// within a fixed bit budget:
//
//   - a full map when the budget covers every core (always precise);
//   - limited pointers when the holder count fits (precise);
//   - a coarse vector otherwise (imprecise: each bit stands for a group
//     of cores, so decoding yields a superset and imprecise entries
//     cost extra invalidations).

// SharerFormat identifies the representation chosen by the hybrid.
type SharerFormat uint8

const (
	// FormatFullMap is the exact bit-vector.
	FormatFullMap SharerFormat = iota
	// FormatLimitedPtr stores up to P core IDs exactly.
	FormatLimitedPtr
	// FormatCoarse stores a bit per group of cores (imprecise).
	FormatCoarse
)

// String implements fmt.Stringer.
func (f SharerFormat) String() string {
	switch f {
	case FormatFullMap:
		return "full-map"
	case FormatLimitedPtr:
		return "limited-pointer"
	case FormatCoarse:
		return "coarse-vector"
	}
	return "SharerFormat(?)"
}

// Compressed is a directory entry's holder set packed into a fixed bit
// budget.
type Compressed struct {
	Format  SharerFormat
	Budget  int // holder-representation bits
	Cores   int
	State   DirState
	payload CoreSet // full map / coarse bits, reused as storage
	ptrs    []CoreID
}

// Compress packs entry e's holder set into budget bits for an N-core
// socket. The budget must accommodate at least one pointer.
func Compress(e Entry, cores, budget int) (Compressed, error) {
	if !e.Live() {
		return Compressed{}, fmt.Errorf("coher: compressing a dead entry")
	}
	if cores <= 0 || cores > MaxRepresentableCores {
		return Compressed{}, fmt.Errorf("coher: bad core count %d", cores)
	}
	ptrBits := ceilLog2(cores)
	if ptrBits == 0 {
		ptrBits = 1
	}
	if budget < ptrBits {
		return Compressed{}, fmt.Errorf("coher: budget %d below one pointer (%d bits)", budget, ptrBits)
	}
	c := Compressed{Budget: budget, Cores: cores, State: e.State}
	holders := e.Holders()

	if cores <= budget {
		c.Format = FormatFullMap
		c.payload = holders
		return c, nil
	}
	if p := budget / ptrBits; holders.Count() <= p {
		c.Format = FormatLimitedPtr
		c.ptrs = holders.Members()
		return c, nil
	}
	c.Format = FormatCoarse
	g := groupSize(cores, budget)
	holders.ForEach(func(id CoreID) {
		c.payload.Add(CoreID(int(id) / g))
	})
	return c, nil
}

// groupSize is the cores-per-bit granularity of the coarse vector.
func groupSize(cores, budget int) int {
	g := (cores + budget - 1) / budget
	if g < 1 {
		g = 1
	}
	return g
}

// Precise reports whether decoding loses no information.
func (c Compressed) Precise() bool { return c.Format != FormatCoarse }

// Holders decodes the representation back to a holder set. For the
// coarse format the result is a superset of the original holders (the
// over-approximation the protocol pays for with extra invalidations).
func (c Compressed) Holders() CoreSet {
	switch c.Format {
	case FormatFullMap:
		return c.payload
	case FormatLimitedPtr:
		var s CoreSet
		for _, p := range c.ptrs {
			s.Add(p)
		}
		return s
	default:
		var s CoreSet
		g := groupSize(c.Cores, c.Budget)
		c.payload.ForEach(func(group CoreID) {
			for i := 0; i < g; i++ {
				core := int(group)*g + i
				if core < c.Cores {
					s.Add(CoreID(core))
				}
			}
		})
		return s
	}
}

// OverInvalidation returns how many extra cores would be invalidated if
// this representation were used for an exact holder set of the given
// entry (0 for precise formats).
func OverInvalidation(e Entry, c Compressed) int {
	exact := e.Holders().Count()
	return c.Holders().Count() - exact
}

// StorageBitsCompressed returns the total segment size of a compressed
// entry: 2 format bits + 1 state bit + the holder budget. Used when
// sizing home-memory partitions beyond the full-map socket bound.
func StorageBitsCompressed(budget int) int { return budget + 3 }

// MaxSocketsCompressed returns how many per-socket segments of the
// given budget fit a 64-byte memory block alongside the socket-level
// partition of an M-socket system: the largest M with
// 512 >= M*(budget+3) + (M+2).
func MaxSocketsCompressed(budget int) int {
	return (BlockBits - 2) / (StorageBitsCompressed(budget) + 1)
}
