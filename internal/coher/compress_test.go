package coher

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompressFormatSelection(t *testing.T) {
	// 8 cores, budget 8: full map always fits.
	e := Entry{State: DirShared}
	e.Sharers.Add(1)
	e.Sharers.Add(7)
	c, err := Compress(e, 8, 8)
	if err != nil || c.Format != FormatFullMap || !c.Precise() {
		t.Fatalf("c=%+v err=%v", c, err)
	}
	// 128 cores, budget 21 (= 3 pointers of 7 bits): 2 holders fit.
	c, err = Compress(e, 128, 21)
	if err != nil || c.Format != FormatLimitedPtr || !c.Precise() {
		t.Fatalf("c=%+v err=%v", c, err)
	}
	// 128 cores, budget 21, 5 holders: overflow to coarse.
	var big Entry
	big.State = DirShared
	for i := 0; i < 5; i++ {
		big.Sharers.Add(CoreID(i * 20))
	}
	c, err = Compress(big, 128, 21)
	if err != nil || c.Format != FormatCoarse || c.Precise() {
		t.Fatalf("c=%+v err=%v", c, err)
	}
}

func TestCompressRejects(t *testing.T) {
	if _, err := Compress(Entry{}, 8, 8); err == nil {
		t.Fatal("dead entry accepted")
	}
	if _, err := Compress(Entry{State: DirOwned}, 128, 3); err == nil {
		t.Fatal("budget below one pointer accepted")
	}
}

// Property: decoding always yields a superset of the original holders,
// and is exact when the format claims precision.
func TestCompressSupersetProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := func(nHolders uint8, budgetSel uint8) bool {
		cores := 128
		budget := []int{16, 21, 32, 64, 127}[int(budgetSel)%5]
		var e Entry
		e.State = DirShared
		n := int(nHolders)%cores + 1
		for i := 0; i < n; i++ {
			e.Sharers.Add(CoreID(r.Intn(cores)))
		}
		c, err := Compress(e, cores, budget)
		if err != nil {
			return false
		}
		dec := c.Holders()
		// Superset check.
		super := true
		e.Sharers.ForEach(func(id CoreID) {
			if !dec.Contains(id) {
				super = false
			}
		})
		if !super {
			return false
		}
		if c.Precise() && !dec.Equal(e.Sharers) {
			return false
		}
		// Over-invalidation bounded by (groupSize-1) per holder group.
		if OverInvalidation(e, c) < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOwnedCompressionIsPrecise(t *testing.T) {
	// A single owner always fits one pointer.
	e := Entry{State: DirOwned, Owner: 93}
	c, err := Compress(e, 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Precise() || !c.Holders().Contains(93) || c.Holders().Count() != 1 {
		t.Fatalf("owned compression imprecise: %+v", c)
	}
}

func TestMaxSocketsCompressed(t *testing.T) {
	// Full map for 128 cores allows only 3 sockets; a 32-bit compressed
	// segment (35 bits + DirEvict share) allows many more.
	full := MaxSocketsWithSocketPartition(128)
	comp := MaxSocketsCompressed(32)
	if comp <= full {
		t.Fatalf("compression must raise the socket bound: %d vs %d", comp, full)
	}
	if comp != (512-2)/(32+3+1) {
		t.Fatalf("bound formula: %d", comp)
	}
}
