package coher

import (
	"math/bits"
	"strings"
)

// CoreSet is a width-parameterized sharer bit-vector. Cores 0..127 live
// in two inline words, so every configuration the paper evaluates
// (≤128 cores per socket) is tracked with zero heap allocation and the
// exact representation the original fixed-width set used. Members ≥128
// spill into ext, an immutable extension array of 64-bit words.
//
// ext is copy-on-write: mutators never write into an existing ext
// array, they build a fresh one. Entry values are copied freely
// throughout the engine (`next := ent; next.Sharers.Add(c)`), and the
// COW discipline makes those copies behave like independent values even
// though the slice header is shared at copy time.
//
// The representation is canonical: ext is nil when no member ≥128
// exists and never carries trailing zero words, so Equal can compare
// structurally.
//
// The zero value is the empty set.
type CoreSet struct {
	w   [2]uint64
	ext []uint64 // words 2+; immutable once published; no trailing zeros
}

// inlineWords is how many 64-bit words live inline; core 128 is the
// first ext-resident member.
const inlineWords = 2

// Add inserts core c.
func (s *CoreSet) Add(c CoreID) {
	wi := int(c >> 6)
	if wi < inlineWords {
		s.w[wi] |= 1 << (c & 63)
		return
	}
	ei := wi - inlineWords
	if ei < len(s.ext) && s.ext[ei]&(1<<(c&63)) != 0 {
		return
	}
	n := len(s.ext)
	if ei+1 > n {
		n = ei + 1
	}
	ext := make([]uint64, n)
	copy(ext, s.ext)
	ext[ei] |= 1 << (c & 63)
	s.ext = ext
}

// Remove deletes core c; removing an absent core is a no-op.
func (s *CoreSet) Remove(c CoreID) {
	wi := int(c >> 6)
	if wi < inlineWords {
		s.w[wi] &^= 1 << (c & 63)
		return
	}
	ei := wi - inlineWords
	if ei >= len(s.ext) || s.ext[ei]&(1<<(c&63)) == 0 {
		return
	}
	ext := make([]uint64, len(s.ext))
	copy(ext, s.ext)
	ext[ei] &^= 1 << (c & 63)
	for len(ext) > 0 && ext[len(ext)-1] == 0 {
		ext = ext[:len(ext)-1]
	}
	if len(ext) == 0 {
		ext = nil
	}
	s.ext = ext
}

// Contains reports whether core c is in the set.
func (s CoreSet) Contains(c CoreID) bool {
	wi := int(c >> 6)
	if wi < inlineWords {
		return s.w[wi]&(1<<(c&63)) != 0
	}
	ei := wi - inlineWords
	return ei < len(s.ext) && s.ext[ei]&(1<<(c&63)) != 0
}

// Count returns the number of cores in the set.
func (s CoreSet) Count() int {
	n := bits.OnesCount64(s.w[0]) + bits.OnesCount64(s.w[1])
	for _, w := range s.ext {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s CoreSet) Empty() bool {
	return s.w[0] == 0 && s.w[1] == 0 && len(s.ext) == 0
}

// First returns the lowest-numbered member. It panics on an empty set;
// callers must check Empty first.
func (s CoreSet) First() CoreID {
	if s.w[0] != 0 {
		return CoreID(bits.TrailingZeros64(s.w[0]))
	}
	if s.w[1] != 0 {
		return CoreID(64 + bits.TrailingZeros64(s.w[1]))
	}
	for ei, w := range s.ext {
		if w != 0 {
			return CoreID((inlineWords+ei)*64 + bits.TrailingZeros64(w))
		}
	}
	panic("coher: First on empty CoreSet")
}

// ForEach calls fn for each member in ascending order.
func (s CoreSet) ForEach(fn func(CoreID)) {
	for wi, w := range s.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(CoreID(wi*64 + b))
			w &^= 1 << b
		}
	}
	for ei, w := range s.ext {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(CoreID((inlineWords+ei)*64 + b))
			w &^= 1 << b
		}
	}
}

// Members returns the members in ascending order.
func (s CoreSet) Members() []CoreID {
	out := make([]CoreID, 0, s.Count())
	s.ForEach(func(c CoreID) { out = append(out, c) })
	return out
}

// Clear empties the set.
func (s *CoreSet) Clear() {
	s.w[0], s.w[1] = 0, 0
	s.ext = nil
}

// Equal reports whether two sets have identical membership. The
// canonical ext representation (nil when empty, no trailing zero words)
// makes structural comparison exact.
func (s CoreSet) Equal(o CoreSet) bool {
	if s.w != o.w || len(s.ext) != len(o.ext) {
		return false
	}
	for i, w := range s.ext {
		if o.ext[i] != w {
			return false
		}
	}
	return true
}

// Superset reports whether every member of o is also in s.
func (s CoreSet) Superset(o CoreSet) bool {
	if o.w[0]&^s.w[0] != 0 || o.w[1]&^s.w[1] != 0 {
		return false
	}
	for i, w := range o.ext {
		var sw uint64
		if i < len(s.ext) {
			sw = s.ext[i]
		}
		if w&^sw != 0 {
			return false
		}
	}
	return true
}

// Words exposes the low 128 bits of the representation (low word
// first), used by the bit-exact line encodings for ≤128-core sockets.
func (s CoreSet) Words() (lo, hi uint64) {
	return s.w[0], s.w[1]
}

// SetWords overwrites the representation with a ≤128-core bit-vector,
// dropping any extension words.
func (s *CoreSet) SetWords(lo, hi uint64) {
	s.w[0], s.w[1] = lo, hi
	s.ext = nil
}

// WordCount returns the number of 64-bit words needed to hold the set's
// highest member (at least the two inline words).
func (s CoreSet) WordCount() int {
	return inlineWords + len(s.ext)
}

// Word returns the i-th 64-bit word of the representation (word 0 holds
// cores 0..63). Indices past WordCount-1 read as zero.
func (s CoreSet) Word(i int) uint64 {
	if i < inlineWords {
		return s.w[i]
	}
	if ei := i - inlineWords; ei < len(s.ext) {
		return s.ext[ei]
	}
	return 0
}

// ExtWords exposes the extension words (cores 128+, low word first) for
// the fingerprint and line encoders. Callers must treat the returned
// slice as read-only; it aliases the set's immutable storage.
func (s CoreSet) ExtWords() []uint64 {
	return s.ext
}

// SetFromWords overwrites the representation from a word slice (word 0
// holds cores 0..63), canonicalizing trailing zero words. The slice is
// copied; the caller keeps ownership.
func (s *CoreSet) SetFromWords(words []uint64) {
	s.w[0], s.w[1] = 0, 0
	s.ext = nil
	if len(words) > 0 {
		s.w[0] = words[0]
	}
	if len(words) > 1 {
		s.w[1] = words[1]
	}
	rest := words[min2int(len(words), inlineWords):]
	for len(rest) > 0 && rest[len(rest)-1] == 0 {
		rest = rest[:len(rest)-1]
	}
	if len(rest) > 0 {
		ext := make([]uint64, len(rest))
		copy(ext, rest)
		s.ext = ext
	}
}

func min2int(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// String renders the set as {c0,c3,...} for debugging.
func (s CoreSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(c CoreID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmtUint(&b, uint64(c))
	})
	b.WriteByte('}')
	return b.String()
}

func fmtUint(b *strings.Builder, v uint64) {
	if v >= 10 {
		fmtUint(b, v/10)
	}
	b.WriteByte(byte('0' + v%10))
}
