package coher

import (
	"math/bits"
	"strings"
)

// CoreSet is a full-map sharer bit-vector over up to MaxCores cores.
// The zero value is the empty set.
type CoreSet struct {
	w [2]uint64
}

// Add inserts core c.
func (s *CoreSet) Add(c CoreID) {
	s.w[c>>6] |= 1 << (c & 63)
}

// Remove deletes core c; removing an absent core is a no-op.
func (s *CoreSet) Remove(c CoreID) {
	s.w[c>>6] &^= 1 << (c & 63)
}

// Contains reports whether core c is in the set.
func (s CoreSet) Contains(c CoreID) bool {
	return s.w[c>>6]&(1<<(c&63)) != 0
}

// Count returns the number of cores in the set.
func (s CoreSet) Count() int {
	return bits.OnesCount64(s.w[0]) + bits.OnesCount64(s.w[1])
}

// Empty reports whether the set has no members.
func (s CoreSet) Empty() bool {
	return s.w[0] == 0 && s.w[1] == 0
}

// First returns the lowest-numbered member. It panics on an empty set;
// callers must check Empty first.
func (s CoreSet) First() CoreID {
	if s.w[0] != 0 {
		return CoreID(bits.TrailingZeros64(s.w[0]))
	}
	if s.w[1] != 0 {
		return CoreID(64 + bits.TrailingZeros64(s.w[1]))
	}
	panic("coher: First on empty CoreSet")
}

// ForEach calls fn for each member in ascending order.
func (s CoreSet) ForEach(fn func(CoreID)) {
	for wi, w := range s.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(CoreID(wi*64 + b))
			w &^= 1 << b
		}
	}
}

// Members returns the members in ascending order.
func (s CoreSet) Members() []CoreID {
	out := make([]CoreID, 0, s.Count())
	s.ForEach(func(c CoreID) { out = append(out, c) })
	return out
}

// Clear empties the set.
func (s *CoreSet) Clear() {
	s.w[0], s.w[1] = 0, 0
}

// Equal reports whether two sets have identical membership.
func (s CoreSet) Equal(o CoreSet) bool {
	return s.w == o.w
}

// Words exposes the raw 128-bit representation (low word first), used by
// the bit-exact line encodings.
func (s CoreSet) Words() (lo, hi uint64) {
	return s.w[0], s.w[1]
}

// SetWords overwrites the raw representation.
func (s *CoreSet) SetWords(lo, hi uint64) {
	s.w[0], s.w[1] = lo, hi
}

// String renders the set as {c0,c3,...} for debugging.
func (s CoreSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(c CoreID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmtUint(&b, uint64(c))
	})
	b.WriteByte('}')
	return b.String()
}

func fmtUint(b *strings.Builder, v uint64) {
	if v >= 10 {
		fmtUint(b, v/10)
	}
	b.WriteByte(byte('0' + v%10))
}
