package coher

import (
	"testing"
	"testing/quick"
)

func TestCoreSetBasics(t *testing.T) {
	var s CoreSet
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("zero value must be empty")
	}
	s.Add(0)
	s.Add(127)
	s.Add(64)
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
	if !s.Contains(0) || !s.Contains(64) || !s.Contains(127) || s.Contains(1) {
		t.Fatal("membership wrong")
	}
	if s.First() != 0 {
		t.Fatalf("First = %d, want 0", s.First())
	}
	s.Remove(0)
	if s.First() != 64 {
		t.Fatalf("First = %d, want 64", s.First())
	}
	got := s.Members()
	if len(got) != 2 || got[0] != 64 || got[1] != 127 {
		t.Fatalf("Members = %v", got)
	}
	if s.String() != "{64,127}" {
		t.Fatalf("String = %q", s.String())
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear failed")
	}
}

func TestCoreSetRemoveAbsent(t *testing.T) {
	var s CoreSet
	s.Remove(5) // must not panic or add
	if !s.Empty() {
		t.Fatal("removing an absent member changed the set")
	}
}

func TestCoreSetFirstPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("First on empty set must panic")
		}
	}()
	var s CoreSet
	s.First()
}

// Property: adding a list of members and removing a sublist leaves
// exactly the set difference, independent of order.
func TestCoreSetProperty(t *testing.T) {
	f := func(adds, removes []uint8) bool {
		var s CoreSet
		ref := map[CoreID]bool{}
		for _, a := range adds {
			c := CoreID(a % classicCores)
			s.Add(c)
			ref[c] = true
		}
		for _, r := range removes {
			c := CoreID(r % classicCores)
			s.Remove(c)
			delete(ref, c)
		}
		if s.Count() != len(ref) {
			return false
		}
		for c := range ref {
			if !s.Contains(c) {
				return false
			}
		}
		ok := true
		s.ForEach(func(c CoreID) {
			if !ref[c] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Words/SetWords round-trip.
func TestCoreSetWordsRoundTrip(t *testing.T) {
	f := func(lo, hi uint64) bool {
		var s, s2 CoreSet
		s.SetWords(lo, hi)
		a, b := s.Words()
		s2.SetWords(a, b)
		return s.Equal(s2) && a == lo && b == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSocketSet(t *testing.T) {
	var v SocketSet
	v.Add(3)
	v.Add(0)
	if v.Count() != 2 || !v.Contains(3) || v.Contains(1) {
		t.Fatal("SocketSet membership wrong")
	}
	if v.First() != 0 {
		t.Fatalf("First = %d", v.First())
	}
	var seen []int
	v.ForEach(func(s int) { seen = append(seen, s) })
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 3 {
		t.Fatalf("ForEach order: %v", seen)
	}
	v.Remove(0)
	v.Remove(3)
	if !v.Empty() {
		t.Fatal("not empty after removals")
	}
}
