package coher

import (
	"sort"
	"testing"
	"testing/quick"
)

// wideBoundaries are the core IDs the widened CoreSet must get right:
// the last bit of each inline word (63, 127), the first bit past each
// (64, 128 — the first ID forcing the external spill), and the top of a
// 1024-core frontier system.
var wideBoundaries = []CoreID{0, 1, 62, 63, 64, 65, 126, 127, 128, 129, 191, 192, 255, 256, 511, 512, 1022, 1023}

// refSet mirrors CoreSet operations in a plain map.
type refSet map[CoreID]bool

func (r refSet) members() []CoreID {
	out := make([]CoreID, 0, len(r))
	for c := range r {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func checkAgainstRef(t *testing.T, s CoreSet, ref refSet) {
	t.Helper()
	if s.Count() != len(ref) {
		t.Fatalf("Count = %d, ref %d (set %v)", s.Count(), len(ref), s)
	}
	want := ref.members()
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("Members = %v, ref %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Members[%d] = %d, ref %d", i, got[i], want[i])
		}
	}
	if len(want) > 0 && s.First() != want[0] {
		t.Fatalf("First = %d, ref %d", s.First(), want[0])
	}
	for _, c := range wideBoundaries {
		if s.Contains(c) != ref[c] {
			t.Fatalf("Contains(%d) = %v, ref %v", c, s.Contains(c), ref[c])
		}
	}
	// Word round-trip must reproduce the set exactly at any width: the
	// full representation is the two inline words followed by ExtWords.
	lo, hi := s.Words()
	words := append([]uint64{lo, hi}, s.ExtWords()...)
	var back CoreSet
	back.SetFromWords(words)
	if !back.Equal(s) {
		t.Fatalf("word round-trip %v != %v", back, s)
	}
	if got := s.WordCount(); got != 2+len(s.ExtWords()) {
		t.Fatalf("WordCount = %d, ext %d", got, len(s.ExtWords()))
	}
	for i := 0; i < len(words); i++ {
		if s.Word(i) != words[i] {
			t.Fatalf("Word(%d) = %#x, want %#x", i, s.Word(i), words[i])
		}
	}
}

func TestCoreSetWideBoundaries(t *testing.T) {
	// Table: every boundary ID alone, then cumulative, then removed in
	// reverse, comparing against the map reference at each step.
	for _, c := range wideBoundaries {
		var s CoreSet
		s.Add(c)
		checkAgainstRef(t, s, refSet{c: true})
	}
	var s CoreSet
	ref := refSet{}
	for _, c := range wideBoundaries {
		s.Add(c)
		s.Add(c) // idempotent
		ref[c] = true
		checkAgainstRef(t, s, ref)
	}
	for i := len(wideBoundaries) - 1; i >= 0; i-- {
		c := wideBoundaries[i]
		s.Remove(c)
		delete(ref, c)
		checkAgainstRef(t, s, ref)
	}
	if !s.Empty() {
		t.Fatalf("set not empty after removing all: %v", s)
	}
}

func TestCoreSetWideSupersetAcrossWords(t *testing.T) {
	// Superset must hold per word even when one side has spilled to the
	// external representation and the other has not.
	var wide, narrow CoreSet
	for _, c := range []CoreID{3, 63, 64, 127, 128, 700, 1023} {
		wide.Add(c)
	}
	narrow.Add(63)
	narrow.Add(64)
	if !wide.Superset(narrow) || narrow.Superset(wide) {
		t.Fatal("superset across the spill boundary wrong")
	}
	narrow.Add(999) // not in wide
	if wide.Superset(narrow) {
		t.Fatal("missing member 999 not detected")
	}
	// A set that shrinks back under 128 must compare equal to one that
	// never spilled.
	var shrunk, inline CoreSet
	shrunk.Add(10)
	shrunk.Add(1000)
	shrunk.Remove(1000)
	inline.Add(10)
	if !shrunk.Equal(inline) || !inline.Superset(shrunk) || !shrunk.Superset(inline) {
		t.Fatal("shrunk set not canonical: spilled tail must not affect equality")
	}
}

// Property: the widened set agrees with the map reference for arbitrary
// add/remove sequences over the full 1024-core ID range, exercising the
// inline->external spill and the copy-on-write sharing of ext words.
func TestCoreSetWideProperty(t *testing.T) {
	f := func(adds, removes []uint16) bool {
		var s CoreSet
		ref := refSet{}
		for _, a := range adds {
			c := CoreID(a % 1024)
			s.Add(c)
			ref[c] = true
		}
		snapshot := s // COW alias: must be unaffected by later mutation
		snapCount := s.Count()
		for _, r := range removes {
			c := CoreID(r % 1024)
			s.Remove(c)
			delete(ref, c)
		}
		if s.Count() != len(ref) || snapshot.Count() != snapCount {
			return false
		}
		for c := range ref {
			if !s.Contains(c) {
				return false
			}
		}
		ok := true
		s.ForEach(func(c CoreID) {
			if !ref[c] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func FuzzCoreSetWide(f *testing.F) {
	f.Add([]byte{63, 64, 127}, []byte{64})
	f.Add([]byte{0, 255, 128}, []byte{0, 255})
	f.Add([]byte{}, []byte{1})
	f.Fuzz(func(t *testing.T, adds, removes []byte) {
		var s CoreSet
		ref := refSet{}
		// Stretch byte input across the wide range: pairs of bytes make
		// IDs up to 1023.
		id := func(i int, b byte) CoreID { return CoreID((int(b)*8 + i) % 1024) }
		for i, b := range adds {
			c := id(i, b)
			s.Add(c)
			ref[c] = true
		}
		for i, b := range removes {
			c := id(i, b)
			s.Remove(c)
			delete(ref, c)
		}
		checkAgainstRef(t, s, ref)
	})
}
