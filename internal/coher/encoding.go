package coher

import (
	"errors"
	"fmt"
)

// ErrPayloadOverflow reports that a directory entry's full-map
// representation no longer fits the 511-bit payload of a 64-byte line —
// the overflow regime the scale-frontier presets probe. The protocol's
// response is structural: entries that cannot fuse stay on the spill
// path, and home-memory segments switch to the compressed formats in
// compress.go.
var ErrPayloadOverflow = errors.New("coher: directory entry exceeds the 511-bit line payload")

// This file implements the bit-exact 64-byte line formats of the ZeroDEV
// proposal:
//
//   - Fig. 9:  spilled and fused entries under FusePrivateSpillShared.
//   - Fig. 11: spilled and fused entries under FuseAll (separate formats
//     for blocks in coherence state M/E and S).
//   - §III-D:  the home-memory block partitioned into per-socket segments
//     of N+1 bits each, plus the optional socket-level partition.
//
// The functional simulator keeps typed structs for speed; these encoders
// exist to demonstrate (and property-test) that the formats the protocol
// relies on actually fit, bit for bit, in a 64-byte block.

// Line is a raw 64-byte LLC line or memory block.
type Line [BlockBytes]byte

// bit helpers ---------------------------------------------------------------

func setBit(l *Line, pos int, v bool) {
	if v {
		l[pos>>3] |= 1 << (pos & 7)
	} else {
		l[pos>>3] &^= 1 << (pos & 7)
	}
}

func getBit(l *Line, pos int) bool {
	return l[pos>>3]&(1<<(pos&7)) != 0
}

func setBits(l *Line, pos, width int, v uint64) {
	for i := 0; i < width; i++ {
		setBit(l, pos+i, v&(1<<i) != 0)
	}
}

func getBits(l *Line, pos, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		if getBit(l, pos+i) {
			v |= 1 << i
		}
	}
	return v
}

// setCoreBits writes the low `cores` bits of sharer set s at pos,
// word-wise. For cores <= 128 the bit placement is identical to the old
// fixed lo/hi writes.
func setCoreBits(l *Line, pos int, s CoreSet, cores int) {
	for wi := 0; wi*64 < cores; wi++ {
		width := cores - wi*64
		if width > 64 {
			width = 64
		}
		setBits(l, pos+wi*64, width, s.Word(wi))
	}
}

// getCoreBits reads a `cores`-bit sharer vector at pos.
func getCoreBits(l *Line, pos, cores int) CoreSet {
	words := make([]uint64, (cores+63)/64)
	for wi := range words {
		width := cores - wi*64
		if width > 64 {
			width = 64
		}
		words[wi] = getBits(l, pos+wi*64, width)
	}
	var s CoreSet
	s.SetFromWords(words)
	return s
}

// Spilled format ------------------------------------------------------------

// Spilled-entry layout (both policies, Figs. 9a/11a): bit 0 is the
// fused/spilled selector (1 = spilled); the remaining 511 bits hold the
// directory entry. Our entry serialization inside those bits:
//
//	bits 1-2   directory state (0=I, 1=S, 2=M/E)
//	bit  3     busy
//	bits 8-15  owner core ID
//	bits 16-143 full-map sharer vector (128 bits)
const (
	spillStateOff   = 1
	spillBusyOff    = 3
	spillOwnerOff   = 8
	spillSharersOff = 16
)

// EncodeSpilled packs a directory entry into a spilled LLC line.
func EncodeSpilled(e Entry) Line {
	var l Line
	setBit(&l, 0, true) // spilled
	setBits(&l, spillStateOff, 2, uint64(e.State))
	setBit(&l, spillBusyOff, e.Busy)
	setBits(&l, spillOwnerOff, 8, uint64(e.Owner))
	lo, hi := e.Sharers.Words()
	setBits(&l, spillSharersOff, 64, lo)
	setBits(&l, spillSharersOff+64, 64, hi)
	return l
}

// DecodeSpilled unpacks a spilled LLC line. It returns an error when the
// line's selector bit marks it as fused.
func DecodeSpilled(l Line) (Entry, error) {
	if !getBit(&l, 0) {
		return Entry{}, fmt.Errorf("coher: line is fused, not spilled")
	}
	var e Entry
	e.State = DirState(getBits(&l, spillStateOff, 2))
	e.Busy = getBit(&l, spillBusyOff)
	e.Owner = CoreID(getBits(&l, spillOwnerOff, 8))
	lo := getBits(&l, spillSharersOff, 64)
	hi := getBits(&l, spillSharersOff+64, 64)
	e.Sharers.SetWords(lo, hi)
	return e, nil
}

// Wide spilled format ---------------------------------------------------------
//
// Past 128 cores the Fig. 9a layout no longer holds the full map; the
// wide layout widens the owner field to 16 bits and starts the sharer
// vector at bit 24:
//
//	bit  0      fused/spilled selector (1 = spilled)
//	bits 1-2    directory state
//	bit  3      busy
//	bits 8-23   owner core ID (16 bits)
//	bits 24..   full-map sharer vector (N bits)
//
// which fits a 64-byte line iff 24 + N <= 512, i.e. N <= 488. Beyond
// that a single line cannot spill a full-map entry at all and
// EncodeSpilledN reports ErrPayloadOverflow — the point where the
// in-memory compressed formats take over.
const (
	wideSpillOwnerOff   = 8
	wideSpillSharersOff = 24
)

// MaxSpillCores is the largest core count whose full-map entry still
// fits the wide spilled line format.
const MaxSpillCores = BlockBits - wideSpillSharersOff

// FitsSpilled reports whether a full-map spilled entry for an N-core
// socket fits one 64-byte line.
func FitsSpilled(cores int) bool {
	if cores <= 128 {
		return true
	}
	return cores <= MaxSpillCores
}

// EncodeSpilledN packs a directory entry into a spilled LLC line for an
// N-core socket. For cores <= 128 the layout (and therefore the line)
// is byte-identical to EncodeSpilled; wider sockets use the wide
// layout, and sockets past MaxSpillCores get ErrPayloadOverflow.
func EncodeSpilledN(e Entry, cores int) (Line, error) {
	if cores <= 128 {
		return EncodeSpilled(e), nil
	}
	if !FitsSpilled(cores) {
		return Line{}, fmt.Errorf("%w: spilled full map for %d cores needs %d bits",
			ErrPayloadOverflow, cores, wideSpillSharersOff+cores)
	}
	var l Line
	setBit(&l, 0, true) // spilled
	setBits(&l, spillStateOff, 2, uint64(e.State))
	setBit(&l, spillBusyOff, e.Busy)
	setBits(&l, wideSpillOwnerOff, 16, uint64(e.Owner))
	setCoreBits(&l, wideSpillSharersOff, e.Sharers, cores)
	return l, nil
}

// DecodeSpilledN unpacks a spilled LLC line produced by EncodeSpilledN
// for an N-core socket.
func DecodeSpilledN(l Line, cores int) (Entry, error) {
	if cores <= 128 {
		return DecodeSpilled(l)
	}
	if !FitsSpilled(cores) {
		return Entry{}, fmt.Errorf("%w: spilled full map for %d cores needs %d bits",
			ErrPayloadOverflow, cores, wideSpillSharersOff+cores)
	}
	if !getBit(&l, 0) {
		return Entry{}, fmt.Errorf("coher: line is fused, not spilled")
	}
	var e Entry
	e.State = DirState(getBits(&l, spillStateOff, 2))
	e.Busy = getBit(&l, spillBusyOff)
	e.Owner = CoreID(getBits(&l, wideSpillOwnerOff, 16))
	e.Sharers = getCoreBits(&l, wideSpillSharersOff, cores)
	return e, nil
}

// FPSS fused format (Fig. 9b) -------------------------------------------------

// FusedFPSS is the decoded content of an FPSS fused line: the LLC block's
// dirty bit, the directory busy bit, and the owner, with the rest of the
// line still holding the (partially corrupted) block data. FPSS only ever
// fuses entries for blocks in M/E state, so no sharer vector is needed.
type FusedFPSS struct {
	BlockDirty bool
	Busy       bool
	Owner      CoreID
}

// CorruptedBitsFPSS returns how many low bits of the block the FPSS fused
// format corrupts for an N-core socket: 3 + ceil(log2 N) (paper §III-C2).
func CorruptedBitsFPSS(cores int) int {
	return 3 + ceilLog2(cores)
}

// EncodeFusedFPSS overwrites the low bits of block with the FPSS fused
// header for an N-core socket and returns the result.
func EncodeFusedFPSS(block Line, f FusedFPSS, cores int) Line {
	setBit(&block, 0, false) // fused
	setBit(&block, 1, f.BlockDirty)
	setBit(&block, 2, f.Busy)
	setBits(&block, 3, ceilLog2(cores), uint64(f.Owner))
	return block
}

// DecodeFusedFPSS extracts the FPSS fused header. It returns an error when
// the selector bit marks the line as spilled.
func DecodeFusedFPSS(l Line, cores int) (FusedFPSS, error) {
	if getBit(&l, 0) {
		return FusedFPSS{}, fmt.Errorf("coher: line is spilled, not fused")
	}
	return FusedFPSS{
		BlockDirty: getBit(&l, 1),
		Busy:       getBit(&l, 2),
		Owner:      CoreID(getBits(&l, 3, ceilLog2(cores))),
	}, nil
}

// ReconstructFPSS restores a fused line to a plain data block given the
// low bits returned by the evicting E-state core or by the owner's busy
// clear message (3 + ceil(log2 N) bits).
func ReconstructFPSS(l Line, lowBits uint64, cores int) Line {
	setBits(&l, 0, CorruptedBitsFPSS(cores), lowBits)
	return l
}

// LowBitsFPSS extracts the bits a core must ship alongside a PutE notice
// or busy-clear message so the home LLC can reconstruct the fused block.
func LowBitsFPSS(original Line, cores int) uint64 {
	return getBits(&original, 0, CorruptedBitsFPSS(cores))
}

// FuseAll fused format (Fig. 11b/c) -------------------------------------------

// FusedFuseAll is the decoded content of a FuseAll fused line. Depending
// on the directory state it carries either the owner (M/E, Fig. 11b) or
// the full sharer vector (S, Fig. 11c).
type FusedFuseAll struct {
	BlockDirty bool
	Busy       bool
	State      DirState // DirOwned or DirShared
	Owner      CoreID
	Sharers    CoreSet
}

// Same reports field-wise equality (CoreSet makes the struct
// non-comparable with ==).
func (f FusedFuseAll) Same(o FusedFuseAll) bool {
	return f.BlockDirty == o.BlockDirty && f.Busy == o.Busy && f.State == o.State &&
		f.Owner == o.Owner && f.Sharers.Equal(o.Sharers)
}

// CorruptedBitsFuseAll returns how many low bits the FuseAll fused format
// corrupts: 4 + ceil(log2 N) for M/E lines, 4 + N for S lines
// (paper §III-C3).
func CorruptedBitsFuseAll(state DirState, cores int) int {
	if state == DirOwned {
		return 4 + ceilLog2(cores)
	}
	return 4 + cores
}

// FitsFusedFuseAll reports whether the FuseAll fused header for the
// given state still fits a 64-byte line. The S-state header carries the
// full N-bit sharer vector, so past 508 cores a shared entry cannot
// fuse and must stay spilled — the overflow regime the ROADMAP predicts
// dominates at the scale frontier. The engine's fuse decision consults
// this predicate.
func FitsFusedFuseAll(state DirState, cores int) bool {
	return CorruptedBitsFuseAll(state, cores) <= BlockBits
}

// EncodeFusedFuseAll overwrites the low bits of block with the FuseAll
// fused header and returns the result.
func EncodeFusedFuseAll(block Line, f FusedFuseAll, cores int) (Line, error) {
	if f.State != DirOwned && f.State != DirShared {
		return block, fmt.Errorf("coher: FuseAll fused line needs M/E or S state, got %v", f.State)
	}
	if !FitsFusedFuseAll(f.State, cores) {
		return block, fmt.Errorf("%w: FuseAll %v header for %d cores needs %d bits",
			ErrPayloadOverflow, f.State, cores, CorruptedBitsFuseAll(f.State, cores))
	}
	setBit(&block, 0, false) // fused
	setBit(&block, 1, f.BlockDirty)
	setBit(&block, 2, f.Busy)
	setBit(&block, 3, f.State == DirShared) // 0 = M/E, 1 = S
	if f.State == DirOwned {
		setBits(&block, 4, ceilLog2(cores), uint64(f.Owner))
	} else {
		setCoreBits(&block, 4, f.Sharers, cores)
	}
	return block, nil
}

// DecodeFusedFuseAll extracts the FuseAll fused header.
func DecodeFusedFuseAll(l Line, cores int) (FusedFuseAll, error) {
	if getBit(&l, 0) {
		return FusedFuseAll{}, fmt.Errorf("coher: line is spilled, not fused")
	}
	f := FusedFuseAll{
		BlockDirty: getBit(&l, 1),
		Busy:       getBit(&l, 2),
	}
	if getBit(&l, 3) {
		if !FitsFusedFuseAll(DirShared, cores) {
			return FusedFuseAll{}, fmt.Errorf("%w: FuseAll S header for %d cores needs %d bits",
				ErrPayloadOverflow, cores, CorruptedBitsFuseAll(DirShared, cores))
		}
		f.State = DirShared
		f.Sharers = getCoreBits(&l, 4, cores)
	} else {
		f.State = DirOwned
		f.Owner = CoreID(getBits(&l, 4, ceilLog2(cores)))
	}
	return f, nil
}

// Home-memory segment layout (§III-D) ----------------------------------------

// A corrupted home-memory block is partitioned into fixed per-socket
// segments of N+1 bits: one state bit (1 = M/E, 0 = S) followed by the
// N-bit holder vector (owner one-hot in M/E state, sharer vector in S).

// SegmentOffset returns the bit offset of socket s's segment for a socket
// with N cores.
func SegmentOffset(socket, cores int) int {
	return socket * StorageBits(cores)
}

// EncodeSegment writes entry e into socket s's segment of block l.
// The entry must be in a stable state; a socket never writes back a busy
// entry (the LLC holds it in a buffer until it stabilizes, paper Fig. 14).
func EncodeSegment(l Line, socket, cores int, e Entry) (Line, error) {
	if e.Busy {
		return l, fmt.Errorf("coher: cannot write back a busy directory entry")
	}
	if e.State != DirOwned && e.State != DirShared {
		return l, fmt.Errorf("coher: segment needs a live entry, got %v", e.State)
	}
	if socket >= MaxSocketsFullMap(cores) {
		return l, fmt.Errorf("coher: socket %d exceeds full-map capacity %d for %d cores",
			socket, MaxSocketsFullMap(cores), cores)
	}
	off := SegmentOffset(socket, cores)
	setBit(&l, off, e.State == DirOwned)
	var holders CoreSet
	if e.State == DirOwned {
		holders.Add(e.Owner)
	} else {
		holders = e.Sharers
	}
	setCoreBits(&l, off+1, holders, cores)
	return l, nil
}

// DecodeSegment reads socket s's segment back out of block l.
func DecodeSegment(l Line, socket, cores int) (Entry, error) {
	if socket >= MaxSocketsFullMap(cores) {
		return Entry{}, fmt.Errorf("coher: socket %d exceeds full-map capacity %d for %d cores",
			socket, MaxSocketsFullMap(cores), cores)
	}
	off := SegmentOffset(socket, cores)
	owned := getBit(&l, off)
	holders := getCoreBits(&l, off+1, cores)
	var e Entry
	if owned {
		if holders.Count() != 1 {
			return Entry{}, fmt.Errorf("coher: owned segment must have exactly one holder, got %d", holders.Count())
		}
		e.State = DirOwned
		e.Owner = holders.First()
	} else {
		if holders.Empty() {
			return Entry{State: DirInvalid}, nil
		}
		e.State = DirShared
		e.Sharers = holders
	}
	return e, nil
}
