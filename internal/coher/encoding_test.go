package coher

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randEntry produces a random live, stable directory entry.
func randEntry(r *rand.Rand, cores int) Entry {
	var e Entry
	if r.Intn(2) == 0 {
		e.State = DirOwned
		e.Owner = CoreID(r.Intn(cores))
	} else {
		e.State = DirShared
		n := 1 + r.Intn(cores)
		for i := 0; i < n; i++ {
			e.Sharers.Add(CoreID(r.Intn(cores)))
		}
	}
	return e
}

// Entry implements quick.Generator via this wrapper for spill tests.
type spillEntry Entry

func (spillEntry) Generate(r *rand.Rand, _ int) reflect.Value {
	e := randEntry(r, classicCores)
	e.Busy = r.Intn(4) == 0
	return reflect.ValueOf(spillEntry(e))
}

func TestSpilledRoundTripProperty(t *testing.T) {
	f := func(se spillEntry) bool {
		e := Entry(se)
		got, err := DecodeSpilled(EncodeSpilled(e))
		return err == nil && got.State == e.State && got.Busy == e.Busy &&
			(e.State != DirOwned || got.Owner == e.Owner) &&
			(e.State != DirShared || got.Sharers.Equal(e.Sharers))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSpilledRejectsFused(t *testing.T) {
	var l Line // bit 0 clear = fused
	if _, err := DecodeSpilled(l); err == nil {
		t.Fatal("expected error decoding a fused line as spilled")
	}
}

func TestFusedFPSSRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, cores := range []int{2, 8, 64, 128} {
		for i := 0; i < 200; i++ {
			var block Line
			r.Read(block[:])
			f := FusedFPSS{
				BlockDirty: r.Intn(2) == 0,
				Busy:       r.Intn(2) == 0,
				Owner:      CoreID(r.Intn(cores)),
			}
			enc := EncodeFusedFPSS(block, f, cores)
			got, err := DecodeFusedFPSS(enc, cores)
			if err != nil {
				t.Fatal(err)
			}
			if got != f {
				t.Fatalf("cores=%d: got %+v want %+v", cores, got, f)
			}
			// Only the corrupted low bits may differ from the original.
			low := LowBitsFPSS(block, cores)
			rec := ReconstructFPSS(enc, low, cores)
			if rec != block {
				t.Fatalf("cores=%d: reconstruction failed", cores)
			}
		}
	}
}

func TestFusedFPSSCorruptedBits(t *testing.T) {
	if got := CorruptedBitsFPSS(8); got != 6 {
		t.Fatalf("8 cores: %d corrupted bits, want 3+log2(8)=6", got)
	}
	if got := CorruptedBitsFPSS(128); got != 10 {
		t.Fatalf("128 cores: %d corrupted bits, want 10", got)
	}
}

func TestFusedFuseAllRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, cores := range []int{8, 128} {
		for i := 0; i < 200; i++ {
			var block Line
			r.Read(block[:])
			f := FusedFuseAll{
				BlockDirty: r.Intn(2) == 0,
				Busy:       r.Intn(2) == 0,
			}
			if r.Intn(2) == 0 {
				f.State = DirOwned
				f.Owner = CoreID(r.Intn(cores))
			} else {
				f.State = DirShared
				for j := 0; j < 1+r.Intn(4); j++ {
					f.Sharers.Add(CoreID(r.Intn(cores)))
				}
			}
			enc, err := EncodeFusedFuseAll(block, f, cores)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeFusedFuseAll(enc, cores)
			if err != nil {
				t.Fatal(err)
			}
			if got.State != f.State || got.BlockDirty != f.BlockDirty || got.Busy != f.Busy {
				t.Fatalf("header mismatch: got %+v want %+v", got, f)
			}
			if f.State == DirOwned && got.Owner != f.Owner {
				t.Fatalf("owner mismatch")
			}
			if f.State == DirShared && !got.Sharers.Equal(f.Sharers) {
				t.Fatalf("sharers mismatch")
			}
		}
	}
}

func TestFusedFuseAllRejectsInvalidState(t *testing.T) {
	var block Line
	if _, err := EncodeFusedFuseAll(block, FusedFuseAll{State: DirInvalid}, 8); err == nil {
		t.Fatal("expected error for invalid state")
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, cores := range []int{8, 64, 128} {
		max := MaxSocketsFullMap(cores)
		for i := 0; i < 100; i++ {
			var l Line
			socket := r.Intn(max)
			e := randEntry(r, cores)
			l2, err := EncodeSegment(l, socket, cores, e)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeSegment(l2, socket, cores)
			if err != nil {
				t.Fatal(err)
			}
			if got.State != e.State {
				t.Fatalf("state mismatch: %v vs %v", got.State, e.State)
			}
			if e.State == DirOwned && got.Owner != e.Owner {
				t.Fatal("owner mismatch")
			}
			if e.State == DirShared && !got.Sharers.Equal(e.Sharers) {
				t.Fatal("sharers mismatch")
			}
		}
	}
}

func TestSegmentsDoNotOverlap(t *testing.T) {
	const cores = 8
	var l Line
	var err error
	entries := make([]Entry, 4)
	for s := 0; s < 4; s++ {
		e := Entry{State: DirShared}
		e.Sharers.Add(CoreID(s))
		e.Sharers.Add(CoreID(7 - s))
		entries[s] = e
		l, err = EncodeSegment(l, s, cores, e)
		if err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 4; s++ {
		got, err := DecodeSegment(l, s, cores)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Sharers.Equal(entries[s].Sharers) {
			t.Fatalf("segment %d corrupted by neighbours: %v", s, got)
		}
	}
}

func TestSegmentRejects(t *testing.T) {
	var l Line
	if _, err := EncodeSegment(l, 0, 8, Entry{State: DirOwned, Busy: true}); err == nil {
		t.Fatal("busy entries must be rejected")
	}
	if _, err := EncodeSegment(l, 0, 8, Entry{}); err == nil {
		t.Fatal("dead entries must be rejected")
	}
	if _, err := EncodeSegment(l, MaxSocketsFullMap(8), 8, Entry{State: DirOwned}); err == nil {
		t.Fatal("out-of-range sockets must be rejected")
	}
}

func TestCapacityBounds(t *testing.T) {
	// §III-D: ⌊512/(N+1)⌋ sockets with full-map segments.
	if got := MaxSocketsFullMap(8); got != 56 {
		t.Fatalf("MaxSocketsFullMap(8) = %d, want 56", got)
	}
	if got := MaxSocketsFullMap(128); got != 3 {
		t.Fatalf("MaxSocketsFullMap(128) = %d, want 3", got)
	}
	// §III-D5: M ≤ ⌊510/(N+2)⌋ with the socket-level partition.
	if got := MaxSocketsWithSocketPartition(8); got != 51 {
		t.Fatalf("MaxSocketsWithSocketPartition(8) = %d, want 51", got)
	}
	if got := StorageBits(8); got != 9 {
		t.Fatalf("StorageBits(8) = %d", got)
	}
	if got := StorageBitsSocket(4); got != 6 {
		t.Fatalf("StorageBitsSocket(4) = %d", got)
	}
}

func TestMessageBytes(t *testing.T) {
	if MsgGetS.Bytes(8) != 8 {
		t.Fatalf("control message size: %d", MsgGetS.Bytes(8))
	}
	if MsgData.Bytes(8) != 72 {
		t.Fatalf("data message size: %d", MsgData.Bytes(8))
	}
	// PutE carries 3+log2(8)=6 extra bits → 1 byte.
	if MsgPutE.Bytes(8) != 9 {
		t.Fatalf("PutE size: %d", MsgPutE.Bytes(8))
	}
	// LastSharerAck retrieves 4+N bits: 4+128=132 bits → 17 bytes.
	if MsgLastSharerAck.Bytes(128) != 8+17 {
		t.Fatalf("LastSharerAck size: %d", MsgLastSharerAck.Bytes(128))
	}
	for mt := MsgType(0); int(mt) < NumMsgTypes; mt++ {
		if mt.Bytes(8) < 8 {
			t.Fatalf("%v smaller than a control header", mt)
		}
		if mt.String() == "Msg(?)" {
			t.Fatalf("message %d has no name", mt)
		}
	}
}

func TestEntryHelpers(t *testing.T) {
	e := Entry{State: DirOwned, Owner: 5}
	if !e.Live() || e.Holders().Count() != 1 || !e.Holders().Contains(5) {
		t.Fatal("owned entry helpers wrong")
	}
	if freed := e.RemoveHolder(5); !freed || e.Live() {
		t.Fatal("removing the owner must free the entry")
	}
	var s Entry
	s.State = DirShared
	s.Sharers.Add(1)
	s.Sharers.Add(2)
	if freed := s.RemoveHolder(1); freed {
		t.Fatal("removing one of two sharers must not free")
	}
	if freed := s.RemoveHolder(2); !freed {
		t.Fatal("removing the last sharer must free")
	}
}
