package coher

import "fmt"

// Entry is a sparse-directory entry: the stable coherence state and the
// location(s) of a block that is privately cached by at least one core.
type Entry struct {
	// State is the stable directory state. DirInvalid means the entry is
	// free (no private copies remain).
	State DirState
	// Owner is meaningful only in DirOwned state: the single core holding
	// the block in M or E.
	Owner CoreID
	// Sharers is meaningful only in DirShared state: the read-only copy
	// holders.
	Sharers CoreSet
	// Busy marks a transient/pending transaction (e.g. a forwarded request
	// awaiting the owner's "busy clear" message).
	Busy bool
	// Imprecise marks a DirShared entry whose Sharers is a superset of
	// the true holders — the result of decoding a coarse-compressed
	// home-memory segment (wide sockets where a full map no longer fits
	// the segment budget). The engine reconciles imprecise entries
	// against actual core states before acting on them; at ≤128 cores
	// the flag is never set.
	Imprecise bool
}

// Same reports field-wise equality, including fields the current state
// makes meaningless. CoreSet's extension storage makes Entry
// non-comparable with ==; Same is the literal replacement. Use
// state-projected comparisons (AppendCanonical) when stale fields must
// not matter.
func (e Entry) Same(o Entry) bool {
	return e.State == o.State && e.Owner == o.Owner && e.Busy == o.Busy &&
		e.Imprecise == o.Imprecise && e.Sharers.Equal(o.Sharers)
}

// Live reports whether the entry tracks at least one private copy.
func (e Entry) Live() bool {
	return e.State != DirInvalid
}

// Holders returns the set of cores holding a private copy, regardless of
// state.
func (e Entry) Holders() CoreSet {
	switch e.State {
	case DirOwned:
		var s CoreSet
		s.Add(e.Owner)
		return s
	case DirShared:
		return e.Sharers
	}
	return CoreSet{}
}

// RemoveHolder drops core c from the entry, transitioning to DirInvalid
// when the last holder leaves. It reports whether the entry became free.
func (e *Entry) RemoveHolder(c CoreID) (freed bool) {
	switch e.State {
	case DirOwned:
		if e.Owner == c {
			e.State = DirInvalid
			return true
		}
	case DirShared:
		e.Sharers.Remove(c)
		if e.Sharers.Empty() {
			e.State = DirInvalid
			return true
		}
	}
	return false
}

// String renders the entry for debugging.
func (e Entry) String() string {
	switch e.State {
	case DirOwned:
		return fmt.Sprintf("M/E owner=%d busy=%v", e.Owner, e.Busy)
	case DirShared:
		return fmt.Sprintf("S sharers=%v busy=%v", e.Sharers, e.Busy)
	}
	return "I"
}

// StorageBits returns the number of bits a stable full-map entry occupies
// when housed in a home-memory segment: N sharer bits plus one state bit
// distinguishing M/E from S (paper §III-D: "a valid intra-socket sparse
// directory entry in a stable state would require N+1 bits").
func StorageBits(cores int) int {
	return cores + 1
}

// MaxSocketsFullMap returns the number of per-socket directory-entry
// segments a 64-byte memory block can hold for the given per-socket core
// count: ⌊512/(N+1)⌋ (paper §III-D).
func MaxSocketsFullMap(coresPerSocket int) int {
	return BlockBits / StorageBits(coresPerSocket)
}

// MaxSocketsWithSocketPartition returns the socket-count bound when the
// memory block additionally reserves a partition for an evicted
// socket-level directory entry: the largest M with 512 >= M(N+1)+(M+2),
// i.e. M = ⌊510/(N+2)⌋ (paper §III-D5, solution 2).
func MaxSocketsWithSocketPartition(coresPerSocket int) int {
	return (BlockBits - 2) / (StorageBits(coresPerSocket) + 1)
}

// AppendCanonical appends a canonical byte encoding of the entry's
// protocol-visible state to buf, for state fingerprinting. Fields that
// are meaningless in the current state are projected away — a DirOwned
// entry may carry stale Sharers bits from an earlier shared epoch (and
// vice versa), and two such entries must fingerprint identically
// because the protocol can never observe the difference.
//
// Wide state uses the tag byte's spare bits, so every fingerprint taken
// at ≤128 cores is byte-identical to the fixed-width encoding: 0x40
// marks a second owner byte (owner ≥ 256), 0x20 marks extension sharer
// words (a sharer ≥ 128), 0x10 marks an imprecise sharer set. All three
// are zero in any configuration the paper evaluates.
func (e Entry) AppendCanonical(buf []byte) []byte {
	tag := byte(e.State)
	if e.Busy {
		tag |= 0x80
	}
	var ext []uint64
	switch e.State {
	case DirOwned:
		if e.Owner >= 256 {
			tag |= 0x40
		}
	case DirShared:
		ext = e.Sharers.ExtWords()
		if len(ext) > 0 {
			tag |= 0x20
		}
		if e.Imprecise {
			tag |= 0x10
		}
	}
	buf = append(buf, tag)
	switch e.State {
	case DirOwned:
		buf = append(buf, byte(e.Owner))
		if e.Owner >= 256 {
			buf = append(buf, byte(e.Owner>>8))
		}
	case DirShared:
		lo, hi := e.Sharers.Words()
		for _, w := range [2]uint64{lo, hi} {
			buf = append(buf,
				byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
				byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
		}
		if len(ext) > 0 {
			buf = append(buf, byte(len(ext)))
			for _, w := range ext {
				buf = append(buf,
					byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
					byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
			}
		}
	}
	return buf
}
