package coher_test

import (
	"fmt"

	"repro/internal/coher"
)

// A directory entry for a block shared by three cores round-trips
// through the spilled LLC-line format of the paper's Fig. 9a.
func ExampleEncodeSpilled() {
	var e coher.Entry
	e.State = coher.DirShared
	e.Sharers.Add(0)
	e.Sharers.Add(3)
	e.Sharers.Add(7)

	line := coher.EncodeSpilled(e)
	back, err := coher.DecodeSpilled(line)
	if err != nil {
		panic(err)
	}
	fmt.Println(back.State, back.Sharers)
	// Output: S {0,3,7}
}

// FPSS fuses an M/E block's directory entry into the block's own LLC
// line, corrupting only 3+log2(N) low bits (Fig. 9b); the owner's
// eviction notice carries those bits back so the line is reconstructed
// exactly.
func ExampleEncodeFusedFPSS() {
	const cores = 8
	var block coher.Line
	copy(block[:], "the cached data of the block...")

	fused := coher.EncodeFusedFPSS(block, coher.FusedFPSS{Owner: 5, BlockDirty: true}, cores)
	hdr, _ := coher.DecodeFusedFPSS(fused, cores)
	restored := coher.ReconstructFPSS(fused, coher.LowBitsFPSS(block, cores), cores)

	fmt.Println(hdr.Owner, hdr.BlockDirty, restored == block)
	// Output: 5 true true
}

// The hybrid compressed format (§III-D) keeps entries precise while the
// holder count fits limited pointers, and falls back to a coarse vector
// whose decode is a superset of the true holders.
func ExampleCompress() {
	const cores, budget = 128, 21 // budget = three 7-bit pointers

	var small coher.Entry
	small.State = coher.DirShared
	small.Sharers.Add(9)
	small.Sharers.Add(90)
	c1, _ := coher.Compress(small, cores, budget)

	var big coher.Entry
	big.State = coher.DirShared
	for i := coher.CoreID(0); i < 40; i++ {
		big.Sharers.Add(i * 3)
	}
	c2, _ := coher.Compress(big, cores, budget)

	fmt.Println(c1.Format, c1.Precise())
	fmt.Println(c2.Format, c2.Precise(), c2.Holders().Count() >= 40)
	// Output:
	// limited-pointer true
	// coarse-vector false true
}
