package coher

import (
	"bytes"
	"testing"
)

// Round-trip fuzzing of the bit-exact line formats in encoding.go: any
// representable directory entry must survive encode/decode unchanged,
// and fused encodings must reconstruct the original block exactly from
// the shipped low bits.

// classicCores is the widest socket the fixed Fig. 9/11 layouts cover;
// wider sockets use the width-parameterized wide formats.
const classicCores = 128

// fuzzCores maps an arbitrary byte onto a legal socket core count.
func fuzzCores(b uint8) int {
	return 2 + int(b)%(classicCores-1) // 2..128
}

// fuzzSet builds a CoreSet restricted to the first `cores` cores.
func fuzzSet(lo, hi uint64, cores int) CoreSet {
	var s CoreSet
	if cores < 64 {
		lo &= 1<<cores - 1
		hi = 0
	} else {
		hi &= 1<<(cores-64) - 1
	}
	s.SetWords(lo, hi)
	return s
}

func FuzzSpilledRoundTrip(f *testing.F) {
	f.Add(uint8(DirOwned), true, uint8(5), uint64(0), uint64(0))
	f.Add(uint8(DirShared), false, uint8(0), uint64(0xdeadbeef), uint64(1))
	f.Add(uint8(DirInvalid), false, uint8(255), ^uint64(0), ^uint64(0))
	// The stale entry from the model checker's canonical broken-variant
	// counterexample: S sharers={0,1} (testdata/fuzz seed-6 matches).
	f.Add(uint8(DirShared), false, uint8(0), uint64(3), uint64(0))
	// Sparse-MESI directory victims, the entries the baseline backend
	// invalidates on a conflict: an M/E entry owned by core 1 and a
	// widely-shared entry with four tracked sharers (testdata/fuzz
	// seeds 7 and 8 match).
	f.Add(uint8(DirOwned), false, uint8(1), uint64(0), uint64(0))
	f.Add(uint8(DirShared), false, uint8(0), uint64(15), uint64(0))
	f.Fuzz(func(t *testing.T, state uint8, busy bool, owner uint8, lo, hi uint64) {
		e := Entry{
			State: DirState(state % 3),
			Busy:  busy,
			Owner: CoreID(owner),
		}
		e.Sharers.SetWords(lo, hi)
		l := EncodeSpilled(e)
		got, err := DecodeSpilled(l)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !got.Same(e) {
			t.Fatalf("round trip: encoded %+v, decoded %+v", e, got)
		}
		// A spilled line must never decode as fused.
		if _, err := DecodeFusedFPSS(l, 8); err == nil {
			t.Fatal("spilled line accepted by the fused decoder")
		}
	})
}

func FuzzFusedFPSSRoundTrip(f *testing.F) {
	f.Add([]byte("block"), true, false, uint8(3), uint8(8))
	f.Add([]byte{0xff, 0xee}, false, true, uint8(127), uint8(255))
	f.Fuzz(func(t *testing.T, blockBytes []byte, dirty, busy bool, owner, coreByte uint8) {
		cores := fuzzCores(coreByte)
		var block Line
		copy(block[:], blockBytes)
		fu := FusedFPSS{
			BlockDirty: dirty,
			Busy:       busy,
			Owner:      CoreID(int(owner) % cores),
		}
		enc := EncodeFusedFPSS(block, fu, cores)
		got, err := DecodeFusedFPSS(enc, cores)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		// Owners up to 2^ceil(log2 cores)-1 fit the field; owner < cores
		// always does.
		if got != fu {
			t.Fatalf("round trip: encoded %+v, decoded %+v", fu, got)
		}
		// The corrupted low bits must be recoverable from the original.
		rec := ReconstructFPSS(enc, LowBitsFPSS(block, cores), cores)
		if !bytes.Equal(rec[:], block[:]) {
			t.Fatalf("reconstruction lost block bits: cores=%d", cores)
		}
	})
}

func FuzzFusedFuseAllRoundTrip(f *testing.F) {
	f.Add([]byte("data"), true, false, true, uint8(2), uint64(5), uint64(0), uint8(16))
	f.Add([]byte{1}, false, true, false, uint8(0), uint64(0), uint64(0), uint8(128))
	// The DLS backend's in-tag tracking is always this fused form: a
	// clean shared line carrying its own sharer set in the tag, 8-core
	// socket (testdata/fuzz seed-6 matches).
	f.Add([]byte("dls"), false, false, true, uint8(0), uint64(3), uint64(0), uint8(6))
	f.Fuzz(func(t *testing.T, blockBytes []byte, dirty, busy, shared bool, owner uint8, lo, hi uint64, coreByte uint8) {
		cores := fuzzCores(coreByte)
		var block Line
		copy(block[:], blockBytes)
		fu := FusedFuseAll{
			BlockDirty: dirty,
			Busy:       busy,
		}
		if shared {
			fu.State = DirShared
			fu.Sharers = fuzzSet(lo, hi, cores)
		} else {
			fu.State = DirOwned
			fu.Owner = CoreID(int(owner) % cores)
		}
		enc, err := EncodeFusedFuseAll(block, fu, cores)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeFusedFuseAll(enc, cores)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !got.Same(fu) {
			t.Fatalf("round trip: encoded %+v, decoded %+v", fu, got)
		}
	})
}

func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte("mem"), uint8(0), uint8(8), true, uint8(1), uint64(0), uint64(0))
	f.Add([]byte{}, uint8(3), uint8(128), false, uint8(0), uint64(7), uint64(0))
	f.Fuzz(func(t *testing.T, blockBytes []byte, socketByte, coreByte uint8, owned bool, owner uint8, lo, hi uint64) {
		cores := fuzzCores(coreByte)
		socket := int(socketByte) % MaxSocketsFullMap(cores)
		var block Line
		copy(block[:], blockBytes)
		e := Entry{}
		if owned {
			e.State = DirOwned
			e.Owner = CoreID(int(owner) % cores)
		} else {
			e.State = DirShared
			e.Sharers = fuzzSet(lo, hi, cores)
			if e.Sharers.Empty() {
				return // empty sharer set decodes as DirInvalid by design
			}
		}
		enc, err := EncodeSegment(block, socket, cores, e)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeSegment(enc, socket, cores)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !got.Same(e) {
			t.Fatalf("round trip: encoded %+v, decoded %+v", e, got)
		}
	})
}
