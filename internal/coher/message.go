package coher

// MsgType enumerates every coherence message class exchanged on the
// on-chip interconnect or between sockets. The simulator charges each
// message its size in bytes when accounting interconnect traffic, which
// is what the paper's "total bytes communicated" metric measures.
type MsgType uint8

const (
	// MsgGetS is a read request from a core to the home LLC bank.
	MsgGetS MsgType = iota
	// MsgGetX is a read-exclusive (write-allocate) request.
	MsgGetX
	// MsgUpg is an upgrade request from S to M; no data response needed.
	MsgUpg
	// MsgPutS is a clean eviction notice for a block held in S. Carries no
	// data (paper §III-A).
	MsgPutS
	// MsgPutE is a clean eviction notice for a block held in E. Under
	// ZeroDEV FPSS/FuseAll it additionally carries the low bits needed to
	// reconstruct a fused LLC block (paper §III-C2).
	MsgPutE
	// MsgPutM is a dirty writeback carrying the full block.
	MsgPutM
	// MsgData is a data response (home to requester, or owner to requester
	// on the three-hop path).
	MsgData
	// MsgDataless is a dataless response (e.g. upgrade acknowledgement
	// carrying the expected invalidation-ack count).
	MsgDataless
	// MsgInv is an invalidation request from home to a sharer.
	MsgInv
	// MsgInvAck is the sharer's invalidation acknowledgement.
	MsgInvAck
	// MsgFwd is a request forwarded by home to the owner or to an elected
	// sharer.
	MsgFwd
	// MsgBusyClear is the owner's "busy clear" notification to the home
	// directory slice after serving a forwarded request (paper §III-A).
	// Under ZeroDEV it carries the low bits for fused-block reconstruction.
	MsgBusyClear
	// MsgWBDE is a directory-entry writeback from an LLC to the home
	// socket when a fused or spilled entry is evicted (paper Fig. 14).
	MsgWBDE
	// MsgGetDE is a directory-entry read request issued when a core-cache
	// eviction cannot find its sparse directory entry within the socket
	// (paper Fig. 16).
	MsgGetDE
	// MsgDENFNack is the "directory entry not found" negative
	// acknowledgement from a forwarded socket back to home (paper Fig. 15).
	MsgDENFNack
	// MsgSocketFwd is an inter-socket forwarded request; when re-sent after
	// a DENF_NACK it carries the extracted directory entry.
	MsgSocketFwd
	// MsgSocketEvict is the notice a socket sends to home when it evicts
	// its last copy of a block (keeps the socket-level directory precise).
	MsgSocketEvict
	// MsgLastSharerAck is FuseAll's special acknowledgement retrieving the
	// low 4+N bits from the last sharer so the fused LLC block can be
	// reconstructed (paper §III-C3).
	MsgLastSharerAck

	numMsgTypes = int(MsgLastSharerAck) + 1
)

// NumMsgTypes is the number of distinct message classes, exported for
// traffic-accounting arrays.
const NumMsgTypes = numMsgTypes

// ctrlBytes is the size of an address-carrying control message: 8 bytes
// of header/routing plus the block address.
const ctrlBytes = 8

// dataBytes is a control message plus a full 64-byte cache block.
const dataBytes = ctrlBytes + BlockBytes

// Bytes returns the interconnect cost of one message of this type in a
// system with the given per-socket core count. Low-bit payloads (PutE
// reconstruction bits, busy-clear bits, last-sharer retrieval) round up
// to whole bytes; the paper calls their overhead negligible and so does
// this model, but it still accounts them.
func (t MsgType) Bytes(cores int) int {
	switch t {
	case MsgPutM, MsgData, MsgWBDE:
		return dataBytes
	case MsgPutE, MsgBusyClear:
		// 3 + ceil(log2 N) extra bits, rounded up to bytes.
		return ctrlBytes + (3+ceilLog2(cores)+7)/8
	case MsgLastSharerAck:
		// Retrieves 4 + N bits from the evicting sharer.
		return ctrlBytes + (4+cores+7)/8
	case MsgSocketFwd:
		// May carry an extracted directory entry (N+1 bits).
		return ctrlBytes + (StorageBits(cores)+7)/8
	default:
		return ctrlBytes
	}
}

// String implements fmt.Stringer.
func (t MsgType) String() string {
	names := [...]string{
		"GetS", "GetX", "Upg", "PutS", "PutE", "PutM", "Data", "Dataless",
		"Inv", "InvAck", "Fwd", "BusyClear", "WB_DE", "GET_DE", "DENF_NACK",
		"SocketFwd", "SocketEvict", "LastSharerAck",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return "Msg(?)"
}

func ceilLog2(n int) int {
	b := 0
	for (1 << b) < n {
		b++
	}
	return b
}
