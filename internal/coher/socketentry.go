package coher

import "math/bits"

// SocketSet is a sharer bit-vector over sockets. Socket counts are small
// (the paper evaluates four; the full-map segment scheme bounds them at
// ⌊512/(N+1)⌋), so a single word suffices.
type SocketSet uint64

// Add inserts socket s.
func (v *SocketSet) Add(s int) { *v |= 1 << s }

// Remove deletes socket s.
func (v *SocketSet) Remove(s int) { *v &^= 1 << s }

// Contains reports membership.
func (v SocketSet) Contains(s int) bool { return v&(1<<s) != 0 }

// Count returns the number of member sockets.
func (v SocketSet) Count() int { return bits.OnesCount64(uint64(v)) }

// Empty reports whether the set has no members.
func (v SocketSet) Empty() bool { return v == 0 }

// First returns the lowest member; panics on empty.
func (v SocketSet) First() int {
	if v == 0 {
		panic("coher: First on empty SocketSet")
	}
	return bits.TrailingZeros64(uint64(v))
}

// ForEach visits members in ascending order.
func (v SocketSet) ForEach(fn func(int)) {
	w := uint64(v)
	for w != 0 {
		b := bits.TrailingZeros64(w)
		fn(b)
		w &^= 1 << b
	}
}

// SocketState is the state of a socket-level directory entry. The paper
// encodes three stable states in two bits and uses the fourth encoding
// for Corrupted (home memory block holds directory entries, not data).
type SocketState uint8

const (
	// SockInvalid: no socket caches the block.
	SockInvalid SocketState = iota
	// SockShared: one or more sockets hold the block read-only.
	SockShared
	// SockOwned: one socket owns the block (M/E).
	SockOwned
	// SockCorrupted: the home memory copy has been overwritten by one or
	// more evicted intra-socket directory entries; the sharer vector still
	// records which sockets hold copies.
	SockCorrupted
)

// String implements fmt.Stringer.
func (s SocketState) String() string {
	switch s {
	case SockInvalid:
		return "I"
	case SockShared:
		return "S"
	case SockOwned:
		return "M/E"
	case SockCorrupted:
		return "Corrupted"
	}
	return "SocketState(?)"
}

// SocketEntry is a socket-level directory entry for inter-socket
// coherence.
type SocketEntry struct {
	State   SocketState
	Owner   int
	Sharers SocketSet
}

// Holders returns the sockets holding a copy regardless of state. In the
// Corrupted state the sharer vector is authoritative (the state before
// corruption is folded into it).
func (e SocketEntry) Holders() SocketSet {
	switch e.State {
	case SockOwned:
		var v SocketSet
		v.Add(e.Owner)
		return v
	case SockShared, SockCorrupted:
		return e.Sharers
	}
	return 0
}

// Live reports whether any socket holds a copy.
func (e SocketEntry) Live() bool { return e.State != SockInvalid }

// StorageBitsSocket is the home-memory partition size for an evicted
// socket-level entry in an M-socket system: M sharer bits plus two state
// bits (paper §III-D5, solution 2).
func StorageBitsSocket(sockets int) int { return sockets + 2 }
