// Package coher defines the vocabulary of the coherence protocol: MESI
// private-cache states, directory states, sharer sets, directory entries,
// the message taxonomy with interconnect byte costs, and the bit-exact
// 64-byte encodings of spilled and fused directory entries used by the
// ZeroDEV protocol (paper Figs. 9 and 11).
package coher

import "fmt"

// MaxRepresentableCores is the hard ceiling imposed by the CoreID
// width. The sharer representation itself (CoreSet) is
// width-parameterized and grows with the configured core count; the
// paper evaluates up to 128 cores per socket, and the scale-frontier
// presets push to 1024.
const MaxRepresentableCores = 1 << 16

// BlockBytes is the cache block size used throughout the system.
const BlockBytes = 64

// BlockBits is the number of bits in a cache block.
const BlockBits = BlockBytes * 8

// CoreID identifies a core within a socket.
type CoreID uint16

// PrivState is the MESI state of a block in a private (L1/L2) cache.
type PrivState uint8

const (
	// PrivInvalid means the block is not present.
	PrivInvalid PrivState = iota
	// PrivShared means a read-only copy, possibly one of many.
	PrivShared
	// PrivExclusive means the only copy, clean.
	PrivExclusive
	// PrivModified means the only copy, dirty.
	PrivModified
)

// String implements fmt.Stringer.
func (s PrivState) String() string {
	switch s {
	case PrivInvalid:
		return "I"
	case PrivShared:
		return "S"
	case PrivExclusive:
		return "E"
	case PrivModified:
		return "M"
	}
	return fmt.Sprintf("PrivState(%d)", uint8(s))
}

// DirState is the stable coherence state recorded by a directory entry.
// As in the paper's baseline, the directory cannot distinguish M from E,
// so both map to DirOwned.
type DirState uint8

const (
	// DirInvalid means no private copies exist and the entry is free.
	DirInvalid DirState = iota
	// DirShared means one or more cores hold read-only copies.
	DirShared
	// DirOwned means exactly one core holds the block in M or E.
	DirOwned
)

// String implements fmt.Stringer.
func (s DirState) String() string {
	switch s {
	case DirInvalid:
		return "I"
	case DirShared:
		return "S"
	case DirOwned:
		return "M/E"
	}
	return fmt.Sprintf("DirState(%d)", uint8(s))
}

// Addr is a physical block address (byte address >> 6). The simulator
// works at block granularity everywhere; byte offsets never matter.
type Addr uint64
