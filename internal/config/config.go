// Package config provides the simulated-system presets of the paper's
// Table I (the 8-core socket and the 128-core server socket) and spec
// builders for every directory/LLC organization the evaluation sweeps:
// baseline sparse directories at arbitrary R× sizing, unbounded
// directories, ZeroDEV with each caching policy, SecDir, and MgD.
//
// Every preset takes a power-of-two Scale factor that shrinks all cache
// capacities (and, via workload.scaleDown, the synthetic footprints) so
// the full figure set regenerates quickly; Scale=1 reproduces Table I
// sizes exactly.
package config

import (
	"errors"
	"fmt"

	"repro/internal/backend"
	"repro/internal/coher"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/directory"
	"repro/internal/dram"
	"repro/internal/llc"
	"repro/internal/mem"
	"repro/internal/noc"
)

// ErrTooManyCores is returned by Validate when a preset's core count
// exceeds what the width-parameterized sharer sets can represent.
var ErrTooManyCores = errors.New("config: core count exceeds the representable width")

// Preset is a socket's physical organization.
type Preset struct {
	Name  string
	Cores int
	Scale int

	LLCBytes, LLCWays, LLCBanks int
	CPU                         cpu.Params
	DRAMChannels                int
	DirWays                     int
}

// TableI returns the paper's 8-core socket (Table I) at the given scale.
func TableI(scale int) Preset {
	mustPow2(scale)
	c := cpu.DefaultParams()
	c.L1Bytes = 32 << 10 / scale
	c.L2Bytes = 256 << 10 / scale
	return Preset{
		Name:  "TableI-8core",
		Cores: 8, Scale: scale,
		LLCBytes: 8 << 20 / scale, LLCWays: 16, LLCBanks: 8,
		CPU:          c,
		DRAMChannels: 2,
		DirWays:      8,
	}
}

// Server128 returns the 128-core single-socket server configuration
// (§IV): 32 MB 16-way LLC, 128 KB per-core L2, eight DRAM channels.
func Server128(scale int) Preset {
	mustPow2(scale)
	c := cpu.DefaultParams()
	c.L1Bytes = 32 << 10 / scale
	c.L2Bytes = 128 << 10 / scale
	return Preset{
		Name:  "Server-128core",
		Cores: 128, Scale: scale,
		LLCBytes: 32 << 20 / scale, LLCWays: 16, LLCBanks: 16,
		CPU:          c,
		DRAMChannels: 8,
		DirWays:      8,
	}
}

// Server256, Server512, and Server1024 are the wide single-socket
// configurations of the scale frontier: per-core resources match
// Server128 (128 KB L2, 256 KB of LLC per core, 16 banks), with the
// core count — and therefore the sharer-set width — grown past the
// two-word inline representation.
func Server256(scale int) Preset  { return wideServer(256, scale) }
func Server512(scale int) Preset  { return wideServer(512, scale) }
func Server1024(scale int) Preset { return wideServer(1024, scale) }

// wideServer builds an N-core socket with Server128's per-core ratios.
// N must be a power of two so the LLC geometry stays indexable.
func wideServer(cores, scale int) Preset {
	mustPow2(scale)
	mustPow2(cores)
	c := cpu.DefaultParams()
	c.L1Bytes = 32 << 10 / scale
	c.L2Bytes = 128 << 10 / scale
	llcBytes := 32 << 20 / scale * cores / 128
	if llcBytes < 1<<20/scale {
		llcBytes = 1 << 20 / scale
	}
	return Preset{
		Name:  fmt.Sprintf("Server-%dcore", cores),
		Cores: cores, Scale: scale,
		LLCBytes: llcBytes, LLCWays: 16, LLCBanks: 16,
		CPU:          c,
		DRAMChannels: 8,
		DirWays:      8,
	}
}

// Validate rejects a preset whose core count no structure in the system
// can represent, with a named error so CLI layers can build refusal
// tables instead of panicking deep inside CoreSet operations.
func (p Preset) Validate() error {
	if p.Cores <= 0 {
		return fmt.Errorf("config: preset %q has %d cores", p.Name, p.Cores)
	}
	if p.Cores > coher.MaxRepresentableCores {
		return fmt.Errorf("%w: preset %q wants %d cores, the sharer-set width caps at %d",
			ErrTooManyCores, p.Name, p.Cores, coher.MaxRepresentableCores)
	}
	return nil
}

// Org is a multi-socket organization of the scale frontier: identical
// sockets described by Preset, glued by the socket-level directory,
// with homes distributed hierarchically across HomeGroups groups.
type Org struct {
	Name       string
	Preset     Preset
	Sockets    int
	HomeGroups int
}

// TotalCores is the system-wide core count.
func (g Org) TotalCores() int { return g.Sockets * g.Preset.Cores }

// Validate rejects organizations the home-memory segment formats cannot
// represent (wrapping mem.ErrUnrepresentable) or whose preset fails its
// own validation.
func (g Org) Validate() error {
	if err := g.Preset.Validate(); err != nil {
		return err
	}
	if g.Sockets <= 0 {
		return fmt.Errorf("config: organization %q has %d sockets", g.Name, g.Sockets)
	}
	if g.HomeGroups > 1 && g.Sockets%g.HomeGroups != 0 {
		return fmt.Errorf("config: organization %q: %d home groups do not divide %d sockets",
			g.Name, g.HomeGroups, g.Sockets)
	}
	if _, err := mem.New(g.Sockets, g.Preset.Cores); err != nil {
		return fmt.Errorf("config: organization %q: %w", g.Name, err)
	}
	return nil
}

// MultiSocket builds a scale-frontier organization: totalCores split
// evenly over sockets (each a wideServer-ratio preset), homes grouped
// four sockets to a board once the system has at least eight sockets.
func MultiSocket(totalCores, sockets, scale int) (Org, error) {
	if sockets <= 0 || totalCores <= 0 || totalCores%sockets != 0 {
		return Org{}, fmt.Errorf("config: cannot split %d cores over %d sockets", totalCores, sockets)
	}
	groups := 1
	if sockets >= 8 {
		groups = sockets / 4
	}
	g := Org{
		Name:       fmt.Sprintf("%dc-%ds", totalCores, sockets),
		Preset:     wideServer(totalCores/sockets, scale),
		Sockets:    sockets,
		HomeGroups: groups,
	}
	if err := g.Validate(); err != nil {
		return Org{}, err
	}
	return g, nil
}

// ScaleLadder returns the organizations the figscale experiment sweeps,
// from the classic multi-socket shape up to the 1024-core frontier.
// The 4×256 rung exercises wide per-socket sharer sets (beyond the
// two-word inline representation) and compressed home segments; the
// 16×64 rung is the paper-style 16-socket organization.
func ScaleLadder(scale int) []Org {
	mk := func(cores, sockets int) Org {
		g, err := MultiSocket(cores, sockets, scale)
		if err != nil {
			panic(err)
		}
		return g
	}
	return []Org{
		mk(64, 4),
		mk(128, 4),
		mk(256, 8),
		mk(512, 8),
		mk(1024, 16),
		mk(1024, 4), // 4 × 256-core wide sockets
	}
}

func mustPow2(s int) {
	if s <= 0 || s&(s-1) != 0 {
		panic(fmt.Sprintf("config: scale %d is not a positive power of two", s))
	}
}

// AggregateL2Blocks is the total block count of the private last-level
// core caches — the denominator of the paper's R× directory sizing.
func (p Preset) AggregateL2Blocks() int {
	return p.Cores * p.CPU.L2Bytes / coher.BlockBytes
}

// DirEntries returns the entry count of an R× directory, rounded to a
// power-of-two set count at the preset's directory associativity.
func (p Preset) DirEntries(ratio float64) int {
	e := int(float64(p.AggregateL2Blocks()) * ratio)
	sets := e / p.DirWays
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two (sparse directories are indexed).
	pw := 1
	for pw*2 <= sets {
		pw *= 2
	}
	return pw * p.DirWays
}

// base assembles the spec fields shared by every organization.
func (p Preset) base(mode llc.Mode, repl llc.Repl) core.SystemSpec {
	return core.SystemSpec{
		Cores:    p.Cores,
		CPU:      p.CPU,
		LLCBytes: p.LLCBytes, LLCWays: p.LLCWays, LLCBanks: p.LLCBanks,
		Mode: mode, Repl: repl,
		DRAM:   dram.DDR3_2133(p.DRAMChannels),
		NoC:    noc.DefaultParams(),
		Uncore: core.DefaultParams(p.Cores),
	}
}

// Baseline returns the traditional design: an R×-sized NRU sparse
// directory whose evictions generate DEVs.
func (p Preset) Baseline(ratio float64, mode llc.Mode) core.SystemSpec {
	s := p.base(mode, llc.LRU)
	entries := p.DirEntries(ratio)
	ways := p.DirWays
	s.Dir = func() directory.Directory { return directory.MustTraditional(entries, ways) }
	return s
}

// Unbounded returns the unlimited-capacity directory used by the
// motivation studies (Figs. 2, 3, 5), with overflow tracking against
// the preset's 1x organization for the Fig. 5 projection.
func (p Preset) Unbounded(mode llc.Mode) core.SystemSpec {
	s := p.base(mode, llc.LRU)
	sets := p.DirEntries(1) / p.DirWays
	ways := p.DirWays
	s.Dir = func() directory.Directory {
		u := directory.NewUnbounded()
		u.SetShadow(sets, ways)
		return u
	}
	return s
}

// ZeroDEV returns the proposal: a replacement-disabled sparse directory
// of the given ratio (0 = no directory at all), a DE caching policy, and
// an extended LLC replacement policy.
func (p Preset) ZeroDEV(ratio float64, pol core.DEPolicy, repl llc.Repl, mode llc.Mode) core.SystemSpec {
	s := p.base(mode, repl)
	s.ZeroDEV = true
	s.Policy = pol
	if ratio <= 0 {
		s.Dir = func() directory.Directory { return directory.NoDir{} }
		return s
	}
	entries := p.DirEntries(ratio)
	ways := p.DirWays
	s.Dir = func() directory.Directory { return directory.MustReplacementDisabled(entries, ways) }
	return s
}

// ZeroDEVReplEnabled returns the §III-C4 ablation: ZeroDEV on top of a
// replacement-ENABLED (NRU) sparse directory. Directory victims are
// rehoused in the LLC rather than invalidated, so the zero-DEV
// guarantee still holds, but an entry can disturb both structures
// during its lifetime — the design the paper argues is strictly worse.
func (p Preset) ZeroDEVReplEnabled(ratio float64, pol core.DEPolicy, repl llc.Repl, mode llc.Mode) core.SystemSpec {
	s := p.base(mode, repl)
	s.ZeroDEV = true
	s.Policy = pol
	entries := p.DirEntries(ratio)
	ways := p.DirWays
	s.Dir = func() directory.Directory { return directory.MustTraditional(entries, ways) }
	return s
}

// SparseMESI returns the classic sparse-directory MESI baseline under
// its protocol-backend name: the same organization as Baseline, tagged
// so the backend axis (mcheck, conformance, comparative figures)
// addresses it explicitly.
func (p Preset) SparseMESI(ratio float64, mode llc.Mode) core.SystemSpec {
	s := p.Baseline(ratio, mode)
	s.Backend = backend.SparseMESI
	return s
}

// DLS returns the directoryless-shared-LLC backend (arXiv 1206.4753):
// no directory structure at all; tracking rides the LLC tags, which
// forces an inclusive LLC under plain LRU.
func (p Preset) DLS() core.SystemSpec {
	s := p.base(llc.Inclusive, llc.LRU)
	s.Backend = backend.DLS
	s.Dir = func() directory.Directory { return directory.NoDir{} }
	return s
}

// PhasePriority returns the phase-priority directory backend (arXiv
// 1305.3038): a bounded replacement-disabled sparse directory of the
// given ratio whose allocation conflicts are NACKed and retried before
// a prioritized eviction forces the victim out.
func (p Preset) PhasePriority(ratio float64, mode llc.Mode) core.SystemSpec {
	if ratio <= 0 {
		panic("config: the phase-priority backend needs a bounded directory (ratio > 0)")
	}
	s := p.base(mode, llc.LRU)
	s.Backend = backend.PhasePriority
	entries := p.DirEntries(ratio)
	ways := p.DirWays
	s.Dir = func() directory.Directory { return directory.MustReplacementDisabled(entries, ways) }
	return s
}

// ForBackend returns the comparative-lab spec for one protocol backend:
// every bounded directory sized at the same R× ratio, each backend in
// its canonical organization (zerodev: FPSS + dataLRU non-inclusive;
// sparsemesi / phasepriority: NRU resp. replacement-disabled at R×,
// non-inclusive; dls: directoryless inclusive). This is the spec family
// the cross-backend figures sweep.
func (p Preset) ForBackend(id backend.ID, ratio float64) (core.SystemSpec, error) {
	if err := p.Validate(); err != nil {
		return core.SystemSpec{}, err
	}
	switch id {
	case backend.ZeroDEV, "":
		return p.ZeroDEV(ratio, core.FPSS, llc.DataLRU, llc.NonInclusive), nil
	case backend.SparseMESI:
		return p.SparseMESI(ratio, llc.NonInclusive), nil
	case backend.DLS:
		return p.DLS(), nil
	case backend.PhasePriority:
		return p.PhasePriority(ratio, llc.NonInclusive), nil
	}
	return core.SystemSpec{}, fmt.Errorf("config: %w %q", backend.ErrUnknownBackend, id)
}

// SecDir returns the iso-storage SecDir comparison point (Fig. 27): the
// baseline R× slice is split into a 5/8-associativity shared partition
// and per-core private partitions of 7 ways with 1/16 the sets, per the
// paper's 8-core configuration, scaled with ratio.
func (p Preset) SecDir(ratio float64, mode llc.Mode) core.SystemSpec {
	s := p.base(mode, llc.LRU)
	baseSets := p.DirEntries(ratio) / p.DirWays
	sharedWays := p.DirWays * 5 / 8
	if sharedWays < 1 {
		sharedWays = 1
	}
	privSets := baseSets / 16
	if privSets < 1 {
		privSets = 1
	}
	cores := p.Cores
	s.Dir = func() directory.Directory {
		return directory.MustSecDir(cores, baseSets, sharedWays, privSets, p.DirWays-1)
	}
	return s
}

// MgD returns the Multi-grain Directory comparison point (Fig. 26) with
// the given entry budget ratio.
func (p Preset) MgD(ratio float64, mode llc.Mode) core.SystemSpec {
	s := p.base(mode, llc.LRU)
	entries := p.DirEntries(ratio)
	ways := p.DirWays
	s.Dir = func() directory.Directory { return directory.MustMgD(entries, ways) }
	return s
}
