// Package config provides the simulated-system presets of the paper's
// Table I (the 8-core socket and the 128-core server socket) and spec
// builders for every directory/LLC organization the evaluation sweeps:
// baseline sparse directories at arbitrary R× sizing, unbounded
// directories, ZeroDEV with each caching policy, SecDir, and MgD.
//
// Every preset takes a power-of-two Scale factor that shrinks all cache
// capacities (and, via workload.scaleDown, the synthetic footprints) so
// the full figure set regenerates quickly; Scale=1 reproduces Table I
// sizes exactly.
package config

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/coher"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/directory"
	"repro/internal/dram"
	"repro/internal/llc"
	"repro/internal/noc"
)

// Preset is a socket's physical organization.
type Preset struct {
	Name  string
	Cores int
	Scale int

	LLCBytes, LLCWays, LLCBanks int
	CPU                         cpu.Params
	DRAMChannels                int
	DirWays                     int
}

// TableI returns the paper's 8-core socket (Table I) at the given scale.
func TableI(scale int) Preset {
	mustPow2(scale)
	c := cpu.DefaultParams()
	c.L1Bytes = 32 << 10 / scale
	c.L2Bytes = 256 << 10 / scale
	return Preset{
		Name:  "TableI-8core",
		Cores: 8, Scale: scale,
		LLCBytes: 8 << 20 / scale, LLCWays: 16, LLCBanks: 8,
		CPU:          c,
		DRAMChannels: 2,
		DirWays:      8,
	}
}

// Server128 returns the 128-core single-socket server configuration
// (§IV): 32 MB 16-way LLC, 128 KB per-core L2, eight DRAM channels.
func Server128(scale int) Preset {
	mustPow2(scale)
	c := cpu.DefaultParams()
	c.L1Bytes = 32 << 10 / scale
	c.L2Bytes = 128 << 10 / scale
	return Preset{
		Name:  "Server-128core",
		Cores: 128, Scale: scale,
		LLCBytes: 32 << 20 / scale, LLCWays: 16, LLCBanks: 16,
		CPU:          c,
		DRAMChannels: 8,
		DirWays:      8,
	}
}

func mustPow2(s int) {
	if s <= 0 || s&(s-1) != 0 {
		panic(fmt.Sprintf("config: scale %d is not a positive power of two", s))
	}
}

// AggregateL2Blocks is the total block count of the private last-level
// core caches — the denominator of the paper's R× directory sizing.
func (p Preset) AggregateL2Blocks() int {
	return p.Cores * p.CPU.L2Bytes / coher.BlockBytes
}

// DirEntries returns the entry count of an R× directory, rounded to a
// power-of-two set count at the preset's directory associativity.
func (p Preset) DirEntries(ratio float64) int {
	e := int(float64(p.AggregateL2Blocks()) * ratio)
	sets := e / p.DirWays
	if sets < 1 {
		sets = 1
	}
	// Round down to a power of two (sparse directories are indexed).
	pw := 1
	for pw*2 <= sets {
		pw *= 2
	}
	return pw * p.DirWays
}

// base assembles the spec fields shared by every organization.
func (p Preset) base(mode llc.Mode, repl llc.Repl) core.SystemSpec {
	return core.SystemSpec{
		Cores:    p.Cores,
		CPU:      p.CPU,
		LLCBytes: p.LLCBytes, LLCWays: p.LLCWays, LLCBanks: p.LLCBanks,
		Mode: mode, Repl: repl,
		DRAM:   dram.DDR3_2133(p.DRAMChannels),
		NoC:    noc.DefaultParams(),
		Uncore: core.DefaultParams(p.Cores),
	}
}

// Baseline returns the traditional design: an R×-sized NRU sparse
// directory whose evictions generate DEVs.
func (p Preset) Baseline(ratio float64, mode llc.Mode) core.SystemSpec {
	s := p.base(mode, llc.LRU)
	entries := p.DirEntries(ratio)
	ways := p.DirWays
	s.Dir = func() directory.Directory { return directory.MustTraditional(entries, ways) }
	return s
}

// Unbounded returns the unlimited-capacity directory used by the
// motivation studies (Figs. 2, 3, 5), with overflow tracking against
// the preset's 1x organization for the Fig. 5 projection.
func (p Preset) Unbounded(mode llc.Mode) core.SystemSpec {
	s := p.base(mode, llc.LRU)
	sets := p.DirEntries(1) / p.DirWays
	ways := p.DirWays
	s.Dir = func() directory.Directory {
		u := directory.NewUnbounded()
		u.SetShadow(sets, ways)
		return u
	}
	return s
}

// ZeroDEV returns the proposal: a replacement-disabled sparse directory
// of the given ratio (0 = no directory at all), a DE caching policy, and
// an extended LLC replacement policy.
func (p Preset) ZeroDEV(ratio float64, pol core.DEPolicy, repl llc.Repl, mode llc.Mode) core.SystemSpec {
	s := p.base(mode, repl)
	s.ZeroDEV = true
	s.Policy = pol
	if ratio <= 0 {
		s.Dir = func() directory.Directory { return directory.NoDir{} }
		return s
	}
	entries := p.DirEntries(ratio)
	ways := p.DirWays
	s.Dir = func() directory.Directory { return directory.MustReplacementDisabled(entries, ways) }
	return s
}

// ZeroDEVReplEnabled returns the §III-C4 ablation: ZeroDEV on top of a
// replacement-ENABLED (NRU) sparse directory. Directory victims are
// rehoused in the LLC rather than invalidated, so the zero-DEV
// guarantee still holds, but an entry can disturb both structures
// during its lifetime — the design the paper argues is strictly worse.
func (p Preset) ZeroDEVReplEnabled(ratio float64, pol core.DEPolicy, repl llc.Repl, mode llc.Mode) core.SystemSpec {
	s := p.base(mode, repl)
	s.ZeroDEV = true
	s.Policy = pol
	entries := p.DirEntries(ratio)
	ways := p.DirWays
	s.Dir = func() directory.Directory { return directory.MustTraditional(entries, ways) }
	return s
}

// SparseMESI returns the classic sparse-directory MESI baseline under
// its protocol-backend name: the same organization as Baseline, tagged
// so the backend axis (mcheck, conformance, comparative figures)
// addresses it explicitly.
func (p Preset) SparseMESI(ratio float64, mode llc.Mode) core.SystemSpec {
	s := p.Baseline(ratio, mode)
	s.Backend = backend.SparseMESI
	return s
}

// DLS returns the directoryless-shared-LLC backend (arXiv 1206.4753):
// no directory structure at all; tracking rides the LLC tags, which
// forces an inclusive LLC under plain LRU.
func (p Preset) DLS() core.SystemSpec {
	s := p.base(llc.Inclusive, llc.LRU)
	s.Backend = backend.DLS
	s.Dir = func() directory.Directory { return directory.NoDir{} }
	return s
}

// PhasePriority returns the phase-priority directory backend (arXiv
// 1305.3038): a bounded replacement-disabled sparse directory of the
// given ratio whose allocation conflicts are NACKed and retried before
// a prioritized eviction forces the victim out.
func (p Preset) PhasePriority(ratio float64, mode llc.Mode) core.SystemSpec {
	if ratio <= 0 {
		panic("config: the phase-priority backend needs a bounded directory (ratio > 0)")
	}
	s := p.base(mode, llc.LRU)
	s.Backend = backend.PhasePriority
	entries := p.DirEntries(ratio)
	ways := p.DirWays
	s.Dir = func() directory.Directory { return directory.MustReplacementDisabled(entries, ways) }
	return s
}

// ForBackend returns the comparative-lab spec for one protocol backend:
// every bounded directory sized at the same R× ratio, each backend in
// its canonical organization (zerodev: FPSS + dataLRU non-inclusive;
// sparsemesi / phasepriority: NRU resp. replacement-disabled at R×,
// non-inclusive; dls: directoryless inclusive). This is the spec family
// the cross-backend figures sweep.
func (p Preset) ForBackend(id backend.ID, ratio float64) (core.SystemSpec, error) {
	switch id {
	case backend.ZeroDEV, "":
		return p.ZeroDEV(ratio, core.FPSS, llc.DataLRU, llc.NonInclusive), nil
	case backend.SparseMESI:
		return p.SparseMESI(ratio, llc.NonInclusive), nil
	case backend.DLS:
		return p.DLS(), nil
	case backend.PhasePriority:
		return p.PhasePriority(ratio, llc.NonInclusive), nil
	}
	return core.SystemSpec{}, fmt.Errorf("config: %w %q", backend.ErrUnknownBackend, id)
}

// SecDir returns the iso-storage SecDir comparison point (Fig. 27): the
// baseline R× slice is split into a 5/8-associativity shared partition
// and per-core private partitions of 7 ways with 1/16 the sets, per the
// paper's 8-core configuration, scaled with ratio.
func (p Preset) SecDir(ratio float64, mode llc.Mode) core.SystemSpec {
	s := p.base(mode, llc.LRU)
	baseSets := p.DirEntries(ratio) / p.DirWays
	sharedWays := p.DirWays * 5 / 8
	if sharedWays < 1 {
		sharedWays = 1
	}
	privSets := baseSets / 16
	if privSets < 1 {
		privSets = 1
	}
	cores := p.Cores
	s.Dir = func() directory.Directory {
		return directory.MustSecDir(cores, baseSets, sharedWays, privSets, p.DirWays-1)
	}
	return s
}

// MgD returns the Multi-grain Directory comparison point (Fig. 26) with
// the given entry budget ratio.
func (p Preset) MgD(ratio float64, mode llc.Mode) core.SystemSpec {
	s := p.base(mode, llc.LRU)
	entries := p.DirEntries(ratio)
	ways := p.DirWays
	s.Dir = func() directory.Directory { return directory.MustMgD(entries, ways) }
	return s
}
