package config

import (
	"testing"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/llc"
)

// TestTableIPreset pins the preset to the paper's Table I at scale 1.
func TestTableIPreset(t *testing.T) {
	p := TableI(1)
	if p.Cores != 8 {
		t.Fatalf("cores = %d", p.Cores)
	}
	if p.LLCBytes != 8<<20 || p.LLCWays != 16 || p.LLCBanks != 8 {
		t.Fatalf("LLC = %d/%d/%d", p.LLCBytes, p.LLCWays, p.LLCBanks)
	}
	if p.CPU.L2Bytes != 256<<10 || p.CPU.L1Bytes != 32<<10 {
		t.Fatalf("private caches = %d/%d", p.CPU.L2Bytes, p.CPU.L1Bytes)
	}
	if p.DRAMChannels != 2 || p.DirWays != 8 {
		t.Fatalf("dram=%d dirways=%d", p.DRAMChannels, p.DirWays)
	}
	// 1x sizing: one directory entry per aggregate private L2 block.
	if got := p.AggregateL2Blocks(); got != 32768 {
		t.Fatalf("aggregate L2 blocks = %d", got)
	}
	if got := p.DirEntries(1); got != 32768 {
		t.Fatalf("1x entries = %d", got)
	}
	if got := p.DirEntries(1.0 / 8); got != 4096 {
		t.Fatalf("1/8x entries = %d", got)
	}
	// The paper's observation (§III-B): a 1x directory holds entries for
	// 25% of the LLC blocks (4:1 LLC:aggregate-L2 capacity ratio).
	if p.DirEntries(1)*4 != p.LLCBytes/64 {
		t.Fatalf("1x directory is not 25%% of LLC blocks")
	}
}

func TestServer128Preset(t *testing.T) {
	p := Server128(1)
	if p.Cores != 128 || p.LLCBytes != 32<<20 || p.CPU.L2Bytes != 128<<10 || p.DRAMChannels != 8 {
		t.Fatalf("preset = %+v", p)
	}
}

func TestSpecBuilders(t *testing.T) {
	p := TableI(8)
	specs := map[string]core.SystemSpec{
		"baseline":  p.Baseline(1, llc.NonInclusive),
		"unbounded": p.Unbounded(llc.NonInclusive),
		"zerodev":   p.ZeroDEV(1.0/8, core.FPSS, llc.DataLRU, llc.NonInclusive),
		"nodir":     p.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive),
		"secdir":    p.SecDir(1, llc.NonInclusive),
		"mgd":       p.MgD(1.0/8, llc.NonInclusive),
	}
	for name, s := range specs {
		d := s.Dir()
		if d == nil {
			t.Fatalf("%s: nil directory", name)
		}
		if name == "nodir" {
			if _, ok := d.(directory.NoDir); !ok {
				t.Fatalf("nodir built %T", d)
			}
		}
		if s.Cores != 8 || s.LLCBytes != 1<<20 {
			t.Fatalf("%s: spec fields wrong: %+v", name, s)
		}
	}
	if !specs["zerodev"].ZeroDEV || specs["baseline"].ZeroDEV {
		t.Fatal("ZeroDEV flag wrong")
	}
}

func TestScaleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two scale must panic")
		}
	}()
	TableI(3)
}
