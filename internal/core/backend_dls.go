package core

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/coher"
	"repro/internal/llc"
	"repro/internal/sim"
)

// dlsProtocol is the directoryless-shared-LLC backend (arXiv
// 1206.4753): there is no directory structure at all — tracking state
// rides in the LLC tags of the block's own line, modeled as a fused
// line whose data part stays fully usable (the entry lives tag-side,
// not in the data bits). The consequences fall out of the existing
// machinery: tracking a block forces it LLC-resident (a line fill on
// directory-entry creation when the block is absent), the LLC is
// necessarily inclusive, and evicting a tracked line is an inclusion
// eviction — forced invalidations, never a WB_DE. Zero DEVs by
// construction; the costs are the residency tax and inclusion victims.
type dlsProtocol struct {
	e *Engine
}

func (d *dlsProtocol) Backend() backend.ID { return backend.DLS }

func (d *dlsProtocol) StoreDE(t sim.Cycle, addr coher.Addr, ent coher.Entry, v llc.View, haveView bool) (llc.View, bool) {
	e := d.e
	if !haveView {
		v = e.llc.Probe(addr)
	}
	if v.HasDE() {
		// In-tag update on the block's own line.
		e.llc.Payload(v, v.DEWay).Entry = ent
		return v, true
	}
	if !v.HasData() {
		// A tracked block must be LLC-resident: fill the line before
		// attaching tracking state — the DLS residency tax.
		e.stats.DLSLineFills++
		if ev, ok := e.llc.InsertData(addr, false); ok {
			e.handleEvicted(t, ev)
		}
		v = e.llc.Probe(addr)
		if !v.HasData() {
			panic(fmt.Sprintf("core: DLS line fill for %#x failed under protection", uint64(addr)))
		}
	}
	e.llc.Fuse(v, ent)
	e.stats.DEFuses++
	v.DEWay, v.Fused = v.DataWay, true
	return v, true
}

func (d *dlsProtocol) EvictNoDE(t sim.Cycle, c coher.CoreID, addr coher.Addr, state coher.PrivState) {
	// Inclusion guarantees every privately cached block has a tracked
	// LLC line; an eviction notice without one is a protocol bug.
	panic(fmt.Sprintf("core: DLS lost the in-tag tracking for %#x", uint64(addr)))
}

func (d *dlsProtocol) LastHolderGone(sim.Cycle, coher.Addr, coher.PrivState, llc.View) {
	// Unfusing a DLS line needs no low-bit retrieval: the data part was
	// never displaced by the (tag-side) entry.
}

func (d *dlsProtocol) Admit(sim.Cycle, coher.Addr) sim.Cycle { return 0 }

func (d *dlsProtocol) CheckHoused(addr coher.Addr, fused bool, ent coher.Entry) error {
	if !fused {
		return fmt.Errorf("DLS spilled a directory entry for %#x (tracking must ride the block's own line)", uint64(addr))
	}
	return nil
}
