package core

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/coher"
	"repro/internal/directory"
	"repro/internal/llc"
	"repro/internal/sim"
)

// ConflictDirectory is the directory extension the phase-priority
// backend programs against: it must expose allocation-conflict
// detection (SetFull) and prioritized victim eviction (EvictVictim) on
// top of the base Directory contract. directory.Traditional implements
// it.
type ConflictDirectory interface {
	directory.Directory
	// SetFull reports whether allocating addr would conflict: addr is
	// absent and its set has no free way.
	SetFull(addr coher.Addr) bool
	// EvictVictim forcibly evicts the replacement victim of addr's set
	// and returns it; ok is false when the set has a free way or addr is
	// already present (no eviction needed).
	EvictVictim(addr coher.Addr) (directory.Victim, bool)
}

// ppRetryBudget is the modeled NACK/retry ladder depth: the number of
// retries a conflicting allocation issues (each costing one queue
// round, Params.QueueCycles) before the phase boundary escalates its
// priority and the directory victimizes a live entry for it.
const ppRetryBudget = 2

// phasePriorityProtocol is the phase-priority directory backend (arXiv
// 1305.3038): a bounded replacement-disabled directory whose
// allocation conflicts are NACKed and retried under a bounded budget.
// When the budget is spent, the phase boundary raises the requester's
// priority and the directory evicts the replacement victim — so DEVs
// still occur, but only at escalation, after the retry latency has
// been charged to the conflicting request rather than silently to the
// victim.
type phasePriorityProtocol struct {
	e   *Engine
	dir ConflictDirectory
	// scratch backs the single-victim slice handed to processDEVs on
	// escalation, keeping the conflict path allocation-free.
	scratch [1]directory.Victim
}

func (p *phasePriorityProtocol) Backend() backend.ID { return backend.PhasePriority }

func (p *phasePriorityProtocol) StoreDE(t sim.Cycle, addr coher.Addr, ent coher.Entry, v llc.View, haveView bool) (llc.View, bool) {
	e := p.e
	victims, housed := p.dir.Store(addr, ent)
	if housed {
		e.processDEVs(t, victims)
		return v, haveView
	}
	// Retry budget exhausted (charged by Admit at request entry): the
	// phase boundary escalates this request's priority and the
	// directory victimizes a live entry — the only point where this
	// backend produces DEVs.
	e.stats.PhaseEscalations++
	w, ok := p.dir.EvictVictim(addr)
	if !ok {
		panic(fmt.Sprintf("core: phase-priority escalation for %#x found no victim", uint64(addr)))
	}
	p.scratch[0] = w
	e.processDEVs(t, p.scratch[:1])
	if _, housed := p.dir.Store(addr, ent); !housed {
		panic(fmt.Sprintf("core: phase-priority directory refused %#x after escalation", uint64(addr)))
	}
	return v, haveView
}

func (p *phasePriorityProtocol) EvictNoDE(t sim.Cycle, c coher.CoreID, addr coher.Addr, state coher.PrivState) {
	panic(fmt.Sprintf("core: phase-priority lost the directory entry for %#x", uint64(addr)))
}

func (p *phasePriorityProtocol) LastHolderGone(sim.Cycle, coher.Addr, coher.PrivState, llc.View) {}

// Admit charges the NACK/retry ladder when the upcoming allocation
// conflicts. The engine consults it only when no entry exists on the
// socket, so hits and in-place updates pay nothing.
func (p *phasePriorityProtocol) Admit(t sim.Cycle, addr coher.Addr) sim.Cycle {
	if !p.dir.SetFull(addr) {
		return 0
	}
	e := p.e
	e.stats.DirNACKs++
	e.stats.DirRetries += ppRetryBudget
	return ppRetryBudget * e.p.QueueCycles
}

func (p *phasePriorityProtocol) CheckHoused(addr coher.Addr, fused bool, ent coher.Entry) error {
	return fmt.Errorf("phase-priority housed a directory entry in the LLC for %#x", uint64(addr))
}
