package core_test

import (
	"bytes"
	"testing"

	"repro/internal/backend"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/workload"
)

// The legacy ZeroDEV/Baseline spec bits and the explicit backend tags
// must assemble indistinguishable engines: same stats, same canonical
// state bytes.
func TestBackendTagsAliasLegacySpecs(t *testing.T) {
	pre := config.TableI(testScale)
	prof := workload.MustGet("canneal")

	legacy := runChecked(t, pre.Baseline(1.0/8, llc.NonInclusive), prof, true)
	tagged := runChecked(t, pre.SparseMESI(1.0/8, llc.NonInclusive), prof, true)
	if *legacy.Engine.Stats() != *tagged.Engine.Stats() {
		t.Fatalf("sparsemesi tag diverged from the legacy baseline spec:\n%+v\nvs\n%+v",
			*legacy.Engine.Stats(), *tagged.Engine.Stats())
	}
	if !bytes.Equal(legacy.AppendState(nil), tagged.AppendState(nil)) {
		t.Fatal("sparsemesi tag produced different canonical state than the legacy baseline spec")
	}

	zspec := pre.ZeroDEV(1.0/8, core.FPSS, llc.DataLRU, llc.NonInclusive)
	zlegacy := runChecked(t, zspec, prof, true)
	zspec.Backend = backend.ZeroDEV
	ztagged := runChecked(t, zspec, prof, true)
	if *zlegacy.Engine.Stats() != *ztagged.Engine.Stats() {
		t.Fatal("explicit zerodev tag diverged from the legacy ZeroDEV spec")
	}
	if !bytes.Equal(zlegacy.AppendState(nil), ztagged.AppendState(nil)) {
		t.Fatal("explicit zerodev tag produced different canonical state")
	}
}

func TestDLSBackend(t *testing.T) {
	pre := config.TableI(testScale)
	sys := runChecked(t, pre.DLS(), workload.MustGet("freqmine"), true)
	st := sys.Engine.Stats()
	if st.DEVs != 0 {
		t.Fatalf("%d DEVs under DLS; directoryless tracking cannot victimize entries", st.DEVs)
	}
	if st.DEFuses == 0 {
		t.Fatal("DLS tracked no blocks in the LLC tags")
	}
	if st.DESpills != 0 {
		t.Fatalf("DLS spilled %d entries; tracking must ride the block's own line", st.DESpills)
	}
	if st.InclusionInvals == 0 {
		t.Fatal("expected inclusion victims: the DLS cost model is forced inclusion")
	}
	if st.DEEvictionsToMemory != 0 {
		t.Fatalf("DLS wrote %d entries to home memory; it has no WB_DE flow", st.DEEvictionsToMemory)
	}
	// Every fill forced by tracking shows up in the residency-tax counter.
	t.Logf("DLS residency fills: %d, inclusion invals: %d", st.DLSLineFills, st.InclusionInvals)
}

func TestPhasePriorityBackend(t *testing.T) {
	pre := config.TableI(testScale)
	sys := runChecked(t, pre.PhasePriority(1.0/32, llc.NonInclusive), workload.MustGet("canneal"), true)
	st := sys.Engine.Stats()
	if st.DirNACKs == 0 {
		t.Fatal("a 1/32x phase-priority directory under canneal produced no NACKs")
	}
	if st.DirRetries == 0 {
		t.Fatal("NACKed allocations charged no retries")
	}
	if st.PhaseEscalations == 0 {
		t.Fatal("no conflict escalated; the retry ladder must end in a prioritized eviction")
	}
	if st.DEVs == 0 {
		t.Fatal("escalations produced no DEVs; phase-priority trades latency for DEVs, not away")
	}
	// Escalations are the backend's only DEV source: every DEV batch
	// traces to exactly one escalated victim entry.
	if st.DEVs < st.PhaseEscalations {
		t.Fatalf("%d DEVs from %d escalations; each escalation victimizes at least one copy",
			st.DEVs, st.PhaseEscalations)
	}
}

// Sizing the phase-priority directory up must reduce conflicts: the
// NACK/escalation ladder is a function of set pressure, so a 4x
// structure sees strictly fewer escalations than a 1/32x one (single
// stray set conflicts can survive any finite sizing, so the contract
// is monotonicity, not silence).
func TestPhasePrioritySizingReducesConflicts(t *testing.T) {
	pre := config.TableI(testScale)
	prof := workload.MustGet("canneal")
	small := runChecked(t, pre.PhasePriority(1.0/32, llc.NonInclusive), prof, true).Engine.Stats()
	large := runChecked(t, pre.PhasePriority(4.0, llc.NonInclusive), prof, true).Engine.Stats()
	if large.PhaseEscalations >= small.PhaseEscalations {
		t.Fatalf("4x directory escalated %d times vs %d at 1/32x; sizing must relieve conflicts",
			large.PhaseEscalations, small.PhaseEscalations)
	}
	if large.DEVs >= small.DEVs {
		t.Fatalf("4x directory produced %d DEVs vs %d at 1/32x", large.DEVs, small.DEVs)
	}
}
