package core
