package core_test

import (
	"testing"

	"repro/internal/coher"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
)

// TestCorruptedBlockLifecycle drives the §III-D machinery end to end
// with a deliberately tiny LLC (one set, four ways) so every step is
// forced deterministically: housed entries overflow to home memory
// (WB_DE), a later miss extracts the entry from the corrupted block,
// eviction notices that cannot find their entry run GET_DE, and the
// system-wide last copy restores memory.
func TestCorruptedBlockLifecycle(t *testing.T) {
	pre := config.TableI(microScale)
	spec := pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
	spec.LLCSets = 1
	spec.LLCWays = 4
	spec.LLCBanks = 1
	sys, sc := microSystem(spec)
	mem := sys.Home.Mem()
	l2Sets := pre.CPU.L2Bytes / 64 / pre.CPU.L2Ways

	// Core 0 touches five blocks in distinct L2 sets; all five map to
	// the single LLC set, so the fifth fill must displace a fused entry
	// into home memory.
	blocks := make([]coher.Addr, 5)
	for i := range blocks {
		blocks[i] = coher.Addr(0x9000 + i)
		sc[0].load(blocks[i])
		sys.Cores[0].Step()
	}
	st := sys.Engine.Stats()
	if st.DEVs != 0 {
		t.Fatalf("DEVs under ZeroDEV: %d", st.DEVs)
	}
	if st.DEEvictionsToMemory == 0 {
		t.Fatal("overflowing the LLC set must trigger WB_DE")
	}
	if mem.CorruptedCount() == 0 {
		t.Fatal("WB_DE must corrupt home memory")
	}
	if sys.Home.DRAM().Stats().DEWrites == 0 {
		t.Fatal("WB_DE must reach DRAM")
	}

	// Find a corrupted block still cached by core 0 and have core 1 read
	// it: the socket miss extracts the entry from the corrupted block.
	var victim coher.Addr
	found := false
	for _, b := range blocks {
		if mem.Corrupted(b) {
			if _, ok := sys.Cores[0].HasBlock(b); ok {
				victim, found = b, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no corrupted block remains cached by core 0")
	}
	sc[1].load(victim)
	sys.Cores[1].Step()
	st = sys.Engine.Stats()
	if st.CorruptedFetches == 0 {
		t.Fatal("reading a corrupted block must extract the directory entry")
	}
	if s0, _ := sys.Cores[0].HasBlock(victim); s0 != coher.PrivShared {
		t.Fatalf("holder not downgraded after extraction: %v", s0)
	}

	// Conflict-evict everything from both cores' private caches. Any
	// eviction whose entry sits in home memory runs GET_DE; the
	// system-wide last copy of a corrupted block is retrieved (§III-D4).
	for c := 0; c < 2; c++ {
		for i := 1; i <= pre.CPU.L2Ways+1; i++ {
			for _, b := range blocks {
				sc[c].load(b + coher.Addr(0x100000+i*l2Sets))
				sys.Cores[c].Step()
			}
		}
	}
	st = sys.Engine.Stats()
	if st.GetDEFlows == 0 && st.LastCopyRetrievals == 0 {
		t.Fatalf("expected GET_DE or last-copy retrieval flows; stats: %+v", st)
	}
	if st.DEVs != 0 {
		t.Fatalf("DEVs appeared late: %d", st.DEVs)
	}

	if err := sys.Engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
