// Package core implements the paper's contribution: the uncore
// coherence protocol engine for one socket, in both its baseline form
// (traditional MESI home directory whose evictions produce directory
// eviction victims) and the ZeroDEV form (replacement-disabled sparse
// directory, directory-entry caching in the LLC under the SpillAll /
// FusePrivateSpillShared / FuseAll policies, and invalidation-free
// directory-entry eviction into home memory).
//
// The engine is synchronous: each request executes its full protocol
// transaction atomically at a point in simulated time, mutating global
// state and returning the completion time. Cores are interleaved by the
// min-clock scheduler in package sim, so transactions from different
// cores serialize in timestamp order. A consequence is that directory
// entries are never left in a transient (busy) state between
// transactions; the busy machinery of the real protocol is represented
// in the line formats and message taxonomy but needs no retry logic
// here. DESIGN.md discusses this approximation.
package core

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/coher"
	"repro/internal/directory"
	"repro/internal/llc"
	"repro/internal/noc"
	"repro/internal/sim"
)

// DEPolicy selects how ZeroDEV houses directory entries in the LLC
// (§III-C).
type DEPolicy uint8

const (
	// SpillAll spills every entry into a full LLC line.
	SpillAll DEPolicy = iota
	// FPSS fuses entries of M/E blocks with the block's own LLC line and
	// spills entries of S blocks (FusePrivateSpillShared).
	FPSS
	// FuseAll fuses regardless of coherence state whenever the block is
	// LLC-resident, spilling otherwise.
	FuseAll
)

// String implements fmt.Stringer.
func (p DEPolicy) String() string {
	switch p {
	case SpillAll:
		return "SpillAll"
	case FPSS:
		return "FPSS"
	case FuseAll:
		return "FuseAll"
	}
	return "DEPolicy(?)"
}

// Params configure a protocol engine.
type Params struct {
	// Cores is the per-socket core count.
	Cores int
	// Backend selects the coherence-protocol backend. The zero value
	// derives the backend from the legacy ZeroDEV bit (zerodev when
	// set, sparsemesi otherwise), so pre-backend specs keep their
	// meaning.
	Backend backend.ID
	// ZeroDEV enables the ZeroDEV protocol; otherwise the baseline
	// protocol runs and directory evictions produce DEVs. Consulted
	// only when Backend is empty.
	ZeroDEV bool
	// Policy is the directory-entry caching policy (ZeroDEV only).
	Policy DEPolicy
	// TagCycles and DataCycles are the LLC array lookup latencies
	// (Table I: 3-cycle tag, 4-cycle data).
	TagCycles, DataCycles sim.Cycle
	// QueueCycles approximates the waiting time at the interface queues
	// up and down the hierarchy that the paper's simulator models
	// explicitly ("the round-trip latency for LLC lookup includes ...
	// the waiting time at several interface queues", §IV). Charged once
	// per request at the home bank.
	QueueCycles sim.Cycle
	// OwnerLookupCycles approximates the private-hierarchy lookup time a
	// forwarded request spends at the owner/sharer core.
	OwnerLookupCycles sim.Cycle
	// Socket is this socket's identity in a multi-socket system.
	Socket int
}

// DefaultParams returns the Table I uncore timing.
func DefaultParams(cores int) Params {
	return Params{
		Cores:             cores,
		TagCycles:         3,
		DataCycles:        4,
		OwnerLookupCycles: 10,
		QueueCycles:       14,
	}
}

// CorePort is the view the engine has of a core's private hierarchy for
// externally initiated coherence actions. *cpu.Core implements it.
type CorePort interface {
	HasBlock(addr coher.Addr) (coher.PrivState, bool)
	Invalidate(addr coher.Addr) coher.PrivState
	Downgrade(addr coher.Addr) coher.PrivState
}

// Engine is the per-socket uncore: sparse directory, LLC, interconnect
// and the coherence state machine gluing them to the home agent.
type Engine struct {
	p      Params
	cores  []CorePort
	dir    directory.Directory
	llc    *llc.LLC
	mesh   *noc.Mesh
	home   Home
	stats  Stats
	faults FaultPort
	// faultHooks is the optional protocol-aware fault surface, consulted
	// at the Admit / EvictNoDE / LastHolderGone protocol-dispatch
	// boundaries. Nil outside fault campaigns; every consultation is
	// guarded so ordinary runs stay byte-identical.
	faultHooks FaultHooks

	// proto is the backend's protocol object; the flags below cache its
	// registry metadata so the request hot paths stay branch-cheap
	// (no interface calls for the common decisions).
	proto Protocol
	// housesInLLC: directory entries may live in LLC lines.
	housesInLLC bool
	// usesHomeSegments: entries can be written back into home-memory
	// block segments (WB_DE/GET_DE), i.e. home blocks can be corrupted.
	usesHomeSegments bool
	// spillAllPenalty: reads pay the SpillAll co-resident-entry
	// data-array penalty (zerodev + SpillAll only).
	spillAllPenalty bool
	// fusedDataUsable: a fused line's data part serves requests without
	// reconstruction (DLS in-tag tracking; false for zerodev, whose
	// fused entries overwrite the block's low bits).
	fusedDataUsable bool
	// deInDataArray: LLC-housed entries are read out of the data array,
	// costing DataCycles on upgrade paths (zerodev; false for DLS
	// tag-side tracking).
	deInDataArray bool
	// hasAdmit: the backend's Admit hook is live (phase-priority).
	hasAdmit bool
	// claimsZeroDEV: the backend guarantees zero directory eviction
	// victims; fault injectors must not force one (ForceDirectoryVictim
	// refuses, so a misconfigured campaign cannot fake a violation).
	claimsZeroDEV bool
}

// New wires an engine. cores may be attached later with AttachCores when
// construction order requires it (cpu.Core needs the engine as its
// Uncore and vice versa).
func New(p Params, dir directory.Directory, l *llc.LLC, mesh *noc.Mesh, home Home) *Engine {
	if p.Cores <= 0 || p.Cores > coher.MaxRepresentableCores {
		panic(fmt.Sprintf("core: unsupported core count %d", p.Cores))
	}
	if p.Backend == "" {
		if p.ZeroDEV {
			p.Backend = backend.ZeroDEV
		} else {
			p.Backend = backend.SparseMESI
		}
	}
	info, ok := backend.Get(p.Backend)
	if !ok {
		panic(fmt.Sprintf("core: unknown protocol backend %q", p.Backend))
	}
	e := &Engine{p: p, dir: dir, llc: l, mesh: mesh, home: home}
	e.proto = newProtocol(e, info.ID)
	e.housesInLLC = info.HousesDEsInLLC
	e.usesHomeSegments = info.UsesHomeSegments
	e.spillAllPenalty = info.ID == backend.ZeroDEV && p.Policy == SpillAll
	e.fusedDataUsable = info.ID == backend.DLS
	e.deInDataArray = info.ID == backend.ZeroDEV
	e.hasAdmit = info.ID == backend.PhasePriority
	e.claimsZeroDEV = info.ClaimsZeroDEV
	return e
}

// Protocol exposes the backend's protocol object for instrumentation
// and conformance tests.
func (e *Engine) Protocol() Protocol { return e.proto }

// AttachCores registers the core ports; index is the CoreID.
func (e *Engine) AttachCores(cores []CorePort) {
	if len(cores) != e.p.Cores {
		panic("core: AttachCores count mismatch")
	}
	e.cores = cores
}

// Stats returns the engine's counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// LLC exposes the cache for instrumentation and invariant checks.
func (e *Engine) LLC() *llc.LLC { return e.llc }

// Directory exposes the sparse directory for instrumentation.
func (e *Engine) Directory() directory.Directory { return e.dir }

// Mesh exposes the interconnect for traffic reporting.
func (e *Engine) Mesh() *noc.Mesh { return e.mesh }

// Params exposes the configuration.
func (e *Engine) Params() Params { return e.p }

// --- directory entry location ----------------------------------------------

type deLoc uint8

const (
	locNone deLoc = iota
	locDir
	locLLC
)

// reconcileImprecise resolves an imprecise directory entry — a coarse-
// compressed home-memory segment decoded to a superset of the true
// holders (wide sockets only) — against the actual private-cache
// states, before the engine acts on it. Without this step the protocol
// would send invalidations to cores that never held the block and trip
// the untracked-copy invariants. A superset that reconciles to nothing
// returns a dead entry; callers on the eviction path must tolerate
// that. Precise entries (every configuration the paper evaluates) pass
// through untouched.
func (e *Engine) reconcileImprecise(addr coher.Addr, ent coher.Entry) coher.Entry {
	if !ent.Imprecise {
		return ent
	}
	ent.Imprecise = false
	if ent.State != coher.DirShared {
		return ent
	}
	e.stats.ImpreciseReconciles++
	var actual coher.CoreSet
	ent.Sharers.ForEach(func(c coher.CoreID) {
		if _, ok := e.cores[c].HasBlock(addr); ok {
			actual.Add(c)
		} else {
			e.stats.ImpreciseDrops++
		}
	})
	if actual.Empty() {
		return coher.Entry{}
	}
	ent.Sharers = actual
	return ent
}

// findDE locates the directory entry for addr within the socket: the
// sparse directory and, for backends that house entries in the LLC, the
// spilled or fused line in the pre-computed view.
func (e *Engine) findDE(addr coher.Addr, v llc.View) (coher.Entry, deLoc) {
	if ent, ok := e.dir.Lookup(addr); ok {
		return ent, locDir
	}
	if e.housesInLLC && v.HasDE() {
		return e.llc.Payload(v, v.DEWay).Entry, locLLC
	}
	return coher.Entry{}, locNone
}

// usableData reports whether v's data part can serve a request
// directly: a plain data line always can; a fused line only when the
// backend keeps the data intact alongside tag-side tracking (DLS).
func (e *Engine) usableData(v llc.View) bool {
	return v.HasData() && (!v.Fused || e.fusedDataUsable)
}

// record charges one interconnect message.
func (e *Engine) record(mt coher.MsgType) {
	e.mesh.Record(mt, e.p.Cores)
}

func (e *Engine) bankOf(addr coher.Addr) int { return e.llc.BankOf(addr) }

func max2(a, b sim.Cycle) sim.Cycle {
	if a > b {
		return a
	}
	return b
}
