package core

import (
	"fmt"

	"repro/internal/coher"
	"repro/internal/llc"
	"repro/internal/sim"
)

// Evict handles an eviction notice from core c for a block leaving its
// private hierarchy in the given state: PutS and PutE carry no data
// (PutE carries reconstruction low bits under ZeroDEV), PutM carries the
// full block. All evictions are notified to keep the directory precise
// (§III-A). The core does not block on evictions.
func (e *Engine) Evict(t sim.Cycle, c coher.CoreID, addr coher.Addr, state coher.PrivState) {
	e.stats.Evictions++
	e.llc.Protect(addr)
	defer e.llc.Unprotect()
	switch state {
	case coher.PrivShared:
		e.record(coher.MsgPutS)
	case coher.PrivExclusive:
		e.record(coher.MsgPutE)
	case coher.PrivModified:
		e.record(coher.MsgPutM)
	default:
		panic(fmt.Sprintf("core: eviction notice in state %v", state))
	}

	v := e.llc.Probe(addr)
	v = e.maybeCorruptDE(t, addr, v)
	ent, loc := e.findDE(addr, v)
	if loc == locNone {
		if e.faultHooks != nil {
			e.faultHooks.EvictNoDEFault(t, c, addr, state)
		}
		e.evictNoDE(t, c, addr, state)
		return
	}
	switch ent.State {
	case coher.DirOwned:
		if ent.Owner != c {
			panic(fmt.Sprintf("core: eviction by %d of %#x owned by %d", c, uint64(addr), ent.Owner))
		}
	case coher.DirShared:
		if !ent.Sharers.Contains(c) {
			panic(fmt.Sprintf("core: eviction by non-sharer %d of %#x", c, uint64(addr)))
		}
		if state != coher.PrivShared {
			panic(fmt.Sprintf("core: %v eviction of a shared-state block %#x", state, uint64(addr)))
		}
	}

	freed := ent.RemoveHolder(c)
	if (state == coher.PrivModified || state == coher.PrivExclusive) && !freed {
		panic("core: M/E eviction left other holders")
	}

	if !freed {
		e.storeDETouch(t, addr, ent, v)
		return
	}

	// The last private copy left the socket's cores.
	if e.faultHooks != nil {
		e.faultHooks.LastHolderGoneFault(t, addr, state)
	}
	e.proto.LastHolderGone(t, addr, state, v)
	blockInLLC := e.freeDE(t, addr, state == coher.PrivModified, v)
	switch {
	case state == coher.PrivModified:
		// The dirty writeback allocates (or updates) the LLC line.
		e.fillLLCData(t, addr, true)
		blockInLLC = true
	case state == coher.PrivExclusive && e.llc.Mode() == llc.EPD:
		// EPD allocates the block in the LLC on owner eviction (§III-E).
		e.fillLLCData(t, addr, false)
		blockInLLC = true
	}
	if !blockInLLC {
		e.socketEvictNotice(t, addr)
	}
}

// evictNoDE handles an eviction notice whose directory entry is not on
// the socket. Only backends that can lose the entry to home memory
// (zerodev's corrupted-block housing, Fig. 16) have a real flow here;
// the rest treat it as a protocol bug.
func (e *Engine) evictNoDE(t sim.Cycle, c coher.CoreID, addr coher.Addr, state coher.PrivState) {
	e.proto.EvictNoDE(t, c, addr, state)
}

// socketEvictNotice informs home that this socket no longer holds the
// block anywhere; when home reports the memory copy corrupted and this
// was the system-wide last copy, the block travels back with the notice
// to restore memory (§III-D4).
func (e *Engine) socketEvictNotice(t sim.Cycle, addr coher.Addr) {
	e.stats.SocketEvictNotices++
	e.record(coher.MsgSocketEvict)
	if e.home.SocketEvict(t, e.p.Socket, addr) {
		e.stats.LastCopyRetrievals++
		e.record(coher.MsgPutM) // the full block travels to home
		e.home.WriteBack(t, e.p.Socket, addr)
	}
}

// maybeSocketEvict sends the socket-level eviction notice when the
// socket no longer holds the block anywhere: no directory entry
// (on-chip or in a home-memory segment), no LLC line. Keeping the
// socket-level directory precise this way is what lets forwarded
// requests trust it (§III-D).
func (e *Engine) maybeSocketEvict(t sim.Cycle, addr coher.Addr) {
	if _, ok := e.dir.Lookup(addr); ok {
		return // holders exist in the socket
	}
	if v := e.llc.Probe(addr); v.HasData() || v.HasDE() {
		return
	}
	if _, live := e.home.Segment(e.p.Socket, addr); live {
		return // holders exist; their entry lives in home memory
	}
	e.socketEvictNotice(t, addr)
}
