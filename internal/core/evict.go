package core

import (
	"fmt"

	"repro/internal/coher"
	"repro/internal/llc"
	"repro/internal/sim"
)

// Evict handles an eviction notice from core c for a block leaving its
// private hierarchy in the given state: PutS and PutE carry no data
// (PutE carries reconstruction low bits under ZeroDEV), PutM carries the
// full block. All evictions are notified to keep the directory precise
// (§III-A). The core does not block on evictions.
func (e *Engine) Evict(t sim.Cycle, c coher.CoreID, addr coher.Addr, state coher.PrivState) {
	e.stats.Evictions++
	e.llc.Protect(addr)
	defer e.llc.Unprotect()
	switch state {
	case coher.PrivShared:
		e.record(coher.MsgPutS)
	case coher.PrivExclusive:
		e.record(coher.MsgPutE)
	case coher.PrivModified:
		e.record(coher.MsgPutM)
	default:
		panic(fmt.Sprintf("core: eviction notice in state %v", state))
	}

	v := e.llc.Probe(addr)
	v = e.maybeCorruptDE(t, addr, v)
	ent, loc := e.findDE(addr, v)
	if loc == locNone {
		e.evictNoDE(t, c, addr, state)
		return
	}
	switch ent.State {
	case coher.DirOwned:
		if ent.Owner != c {
			panic(fmt.Sprintf("core: eviction by %d of %#x owned by %d", c, uint64(addr), ent.Owner))
		}
	case coher.DirShared:
		if !ent.Sharers.Contains(c) {
			panic(fmt.Sprintf("core: eviction by non-sharer %d of %#x", c, uint64(addr)))
		}
		if state != coher.PrivShared {
			panic(fmt.Sprintf("core: %v eviction of a shared-state block %#x", state, uint64(addr)))
		}
	}

	freed := ent.RemoveHolder(c)
	if (state == coher.PrivModified || state == coher.PrivExclusive) && !freed {
		panic("core: M/E eviction left other holders")
	}

	if !freed {
		e.storeDETouch(t, addr, ent, v)
		return
	}

	// The last private copy left the socket's cores.
	if v.Fused && e.p.Policy == FuseAll && state == coher.PrivShared {
		// FuseAll: the home retrieves the low 4+N bits from the last
		// sharer's eviction buffer to reconstruct the fused block
		// (§III-C3).
		e.stats.LastSharerRetrievals++
		e.record(coher.MsgLastSharerAck)
	}
	blockInLLC := e.freeDE(t, addr, state == coher.PrivModified, v)
	switch {
	case state == coher.PrivModified:
		// The dirty writeback allocates (or updates) the LLC line.
		e.fillLLCData(t, addr, true)
		blockInLLC = true
	case state == coher.PrivExclusive && e.llc.Mode() == llc.EPD:
		// EPD allocates the block in the LLC on owner eviction (§III-E).
		e.fillLLCData(t, addr, false)
		blockInLLC = true
	}
	if !blockInLLC {
		e.socketEvictNotice(t, addr)
	}
}

// evictNoDE handles an eviction notice whose directory entry is not on
// the socket (ZeroDEV: it lives in the corrupted home block). Fig. 16.
func (e *Engine) evictNoDE(t sim.Cycle, c coher.CoreID, addr coher.Addr, state coher.PrivState) {
	if !e.p.ZeroDEV {
		panic(fmt.Sprintf("core: baseline lost the directory entry for %#x", uint64(addr)))
	}
	if state == coher.PrivModified {
		// Full cache block: the evicting core is the system-wide owner;
		// execute the baseline writeback-to-home flow, restoring the
		// corrupted memory copy. If the socket now holds nothing, the
		// socket-level directory learns about it too.
		e.home.WriteBack(t, e.p.Socket, addr)
		if !e.llc.Probe(addr).HasData() {
			e.socketEvictNotice(t, addr)
		}
		return
	}
	// GET_DE: fetch the corrupted block, extract this socket's entry,
	// drop the evicting core, and write the updated entry back.
	e.stats.GetDEFlows++
	e.record(coher.MsgGetDE)
	de, _, ok := e.home.GetDE(t, e.p.Socket, addr)
	if !ok {
		panic(fmt.Sprintf("core: eviction notice for untracked block %#x", uint64(addr)))
	}
	freed := de.RemoveHolder(c)
	if !freed {
		e.home.PutDE(t, e.p.Socket, addr, de)
		return
	}
	e.home.PutDE(t, e.p.Socket, addr, coher.Entry{})
	if e.llc.Probe(addr).HasData() {
		// The socket still holds the block in its LLC.
		return
	}
	e.socketEvictNotice(t, addr)
}

// socketEvictNotice informs home that this socket no longer holds the
// block anywhere; when home reports the memory copy corrupted and this
// was the system-wide last copy, the block travels back with the notice
// to restore memory (§III-D4).
func (e *Engine) socketEvictNotice(t sim.Cycle, addr coher.Addr) {
	e.stats.SocketEvictNotices++
	e.record(coher.MsgSocketEvict)
	if e.home.SocketEvict(t, e.p.Socket, addr) {
		e.stats.LastCopyRetrievals++
		e.record(coher.MsgPutM) // the full block travels to home
		e.home.WriteBack(t, e.p.Socket, addr)
	}
}

// maybeSocketEvict sends the socket-level eviction notice when the
// socket no longer holds the block anywhere: no directory entry
// (on-chip or in a home-memory segment), no LLC line. Keeping the
// socket-level directory precise this way is what lets forwarded
// requests trust it (§III-D).
func (e *Engine) maybeSocketEvict(t sim.Cycle, addr coher.Addr) {
	if _, ok := e.dir.Lookup(addr); ok {
		return // holders exist in the socket
	}
	if v := e.llc.Probe(addr); v.HasData() || v.HasDE() {
		return
	}
	if _, live := e.home.Segment(e.p.Socket, addr); live {
		return // holders exist; their entry lives in home memory
	}
	e.socketEvictNotice(t, addr)
}
