package core

import (
	"repro/internal/coher"
	"repro/internal/directory"
	"repro/internal/llc"
	"repro/internal/sim"
)

// This file is the engine side of the fault-injection seams used by
// internal/faults. Faults never teleport state: every perturbation is
// expressed through an existing protocol flow (WB_DE quarantine of a
// suspect entry, a forced DE eviction, a socket-style invalidation), so
// a correct engine must survive all of them by exercising the paper's
// recovery machinery — corrupted-block fetch, GET_DE, DENF_NACK retry
// and last-copy retrieval. DESIGN.md ("Fault model") gives the full
// fault → recovery-flow map.

// FaultPort is consulted by the engine at LLC read time, once per
// top-level request that observes a housed directory entry. A true
// return means the stored encoding suffered an uncorrectable bit flip:
// the engine retires the entry to home memory (quarantine via the WB_DE
// flow) and re-reads the LLC, after which the usual no-DE recovery
// paths serve the request. internal/faults implements it.
type FaultPort interface {
	CorruptHousedDE(addr coher.Addr, ent coher.Entry, fused bool) bool
}

// SetFaultPort installs (or, with nil, removes) the fault injector.
func (e *Engine) SetFaultPort(f FaultPort) { e.faults = f }

// FaultHooks is the protocol-aware fault surface: the engine consults it
// at the three core.Protocol dispatch boundaries, so injectors can
// perturb or observe exactly where a backend's own logic runs. All three
// hooks are protocol-legal by construction:
//
//   - AdmitFault wraps the backend's admission charge (phase-priority's
//     NACK/retry ladder) and returns the charge to apply — a NACK storm
//     stretches it, a dropped-retry-budget perturbation collapses it.
//     Latency-only: coherence state is untouched.
//   - EvictNoDEFault observes an eviction notice arriving with no
//     on-socket directory entry (zerodev's home-housed flow).
//   - LastHolderGoneFault observes the last private copy leaving the
//     socket, just before the backend's own LastHolderGone runs.
//
// Nil outside fault campaigns; with no hooks installed every path is
// byte-identical to an ordinary run.
type FaultHooks interface {
	AdmitFault(t sim.Cycle, addr coher.Addr, charge sim.Cycle) sim.Cycle
	EvictNoDEFault(t sim.Cycle, c coher.CoreID, addr coher.Addr, state coher.PrivState)
	LastHolderGoneFault(t sim.Cycle, addr coher.Addr, state coher.PrivState)
}

// SetFaultHooks installs (or, with nil, removes) the protocol-aware
// fault surface.
func (e *Engine) SetFaultHooks(h FaultHooks) { e.faultHooks = h }

// maybeCorruptDE gives the fault port a chance to corrupt the housed
// directory entry the current request is about to consume. It runs only
// at top-level request entry — never inside a recovery redispatch — so
// the engine observes the corruption exactly as it would observe a
// flipped line read from the LLC array: the entry is gone from the
// socket and its last-known value lives in the block's home segment.
// Returns the view to use (re-probed when the line changed).
func (e *Engine) maybeCorruptDE(t sim.Cycle, addr coher.Addr, v llc.View) llc.View {
	// Quarantine retires the flipped entry into the block's home-memory
	// segment, so only backends with WB_DE housing participate.
	if e.faults == nil || !e.usesHomeSegments || !v.HasDE() {
		return v
	}
	ent := e.llc.Payload(v, v.DEWay).Entry
	if !e.faults.CorruptHousedDE(addr, ent, v.Fused) {
		return v
	}
	e.stats.FaultQuarantinedDEs++
	e.retireDE(t, addr, v)
	return e.llc.Probe(addr)
}

// retireDE quarantines an LLC-housed directory entry into the block's
// home-memory segment via the ordinary WB_DE flow (Fig. 14), then drops
// the LLC housing. For a fused line the block's low bits are
// unreconstructible without a busy-clear retrieval, so the data part is
// dropped too; a live entry always tracks at least one private copy, so
// no data is lost and the §III-D4 last-copy retrieval restores memory
// when that copy eventually leaves.
func (e *Engine) retireDE(t sim.Cycle, addr coher.Addr, v llc.View) {
	ent := e.llc.Payload(v, v.DEWay).Entry
	e.record(coher.MsgWBDE)
	e.home.WBDE(t, e.p.Socket, addr, ent)
	fused := v.Fused
	e.llc.DropDE(v)
	if fused {
		if v2 := e.llc.Probe(addr); v2.HasData() {
			e.llc.InvalidateData(v2)
		}
	}
}

// ForceDEWriteback evicts the LLC-housed directory entry for addr into
// home memory as if the replacement policy had victimized its line (a
// DE-eviction storm forces many of these in a burst). Reports whether
// an entry was actually housed in the LLC.
func (e *Engine) ForceDEWriteback(t sim.Cycle, addr coher.Addr) bool {
	if !e.usesHomeSegments {
		return false
	}
	v := e.llc.Probe(addr)
	if !v.HasDE() {
		return false
	}
	e.stats.FaultForcedWBDEs++
	e.retireDE(t, addr, v)
	return true
}

// InjectInvalidation spuriously invalidates every copy of addr on this
// socket, mirroring what the home agent does when another socket
// acquires the block exclusively. The invalidation is consistent — the
// directory entry (on-chip or in a home segment) is freed along with
// the copies and dirty data is written back when the home block can
// accept it — so the protocol state
// stays legal; the fault pressure is the lost locality and the
// recovery flows later requests must take. Reports whether the socket
// held anything to invalidate.
func (e *Engine) InjectInvalidation(t sim.Cycle, addr coher.Addr) bool {
	e.llc.Protect(addr)
	defer e.llc.Unprotect()
	var dirty bool
	if _, loc := e.findDE(addr, e.llc.Probe(addr)); loc != locNone {
		dirty = e.InvalidateSocketCopies(t, addr)
	} else if seg, live := e.home.Segment(e.p.Socket, addr); live {
		dirty = e.InvalidateSocketCopiesWithDE(t, addr, seg)
		e.home.PutDE(t, e.p.Socket, addr, coher.Entry{})
	} else {
		return false
	}
	e.stats.FaultInvalidations++
	if dirty && !e.home.Corrupted(addr) {
		// Same rule as ordinary dirty evictions: while the home block is
		// corrupted a full-block writeback would destroy other sockets'
		// segments (mem.Restore clears them all), so the dirty data
		// perishes with the injected invalidation instead.
		e.home.WriteBack(t, e.p.Socket, addr)
	}
	e.maybeSocketEvict(t, addr)
	return true
}

// ForceDirectoryVictim evicts addr's live sparse-directory entry as if
// the replacement policy had victimized it, routing the invalidations
// through the ordinary DEV flow (processDEVs): every tracked private
// copy is invalidated and dirty data is retrieved into the LLC. Refused
// on zero-DEV backends — their whole claim is that this event cannot
// happen, so the injector must not be able to fabricate it — and when
// no entry for addr is in the directory. Reports whether a victim was
// forced.
func (e *Engine) ForceDirectoryVictim(t sim.Cycle, addr coher.Addr) bool {
	if e.claimsZeroDEV {
		return false
	}
	ent, ok := e.dir.Lookup(addr)
	if !ok || !ent.Live() {
		return false
	}
	e.llc.Protect(addr)
	defer e.llc.Unprotect()
	e.stats.FaultForcedDEVs++
	e.dir.Free(addr)
	e.processDEVs(t, []directory.Victim{{Addr: addr, Entry: ent}})
	return true
}

// ScrambleDirectoryNRU perturbs the directory's replacement state for
// addr (an extra NRU touch), so subsequent organic victim selection
// diverges from the unperturbed run while every coherence invariant
// holds. Reports whether addr had an entry to touch.
func (e *Engine) ScrambleDirectoryNRU(addr coher.Addr) bool {
	if _, ok := e.dir.Lookup(addr); !ok {
		return false
	}
	e.dir.Touch(addr)
	return true
}

// ForceInclusionEviction victimizes addr's fused LLC line as if the
// replacement policy had chosen it, driving the §III-F inclusion
// eviction: every tracked private copy is forcibly invalidated and
// dirty data written back. Only meaningful on inclusive LLCs with
// in-tag (fused) tracking — DLS — where coherence state rides the data
// line and an LLC victim therefore takes the sharers down with it.
// Reports whether a line was evicted.
func (e *Engine) ForceInclusionEviction(t sim.Cycle, addr coher.Addr) bool {
	if e.llc.Mode() != llc.Inclusive {
		return false
	}
	e.llc.Protect(addr)
	defer e.llc.Unprotect()
	v := e.llc.Probe(addr)
	if !v.Fused {
		return false
	}
	p := e.llc.Payload(v, v.DEWay)
	ev := llc.Evicted{Addr: addr, Kind: llc.KindFused, Dirty: p.Dirty, Entry: p.Entry}
	e.llc.DropDE(v)
	if v2 := e.llc.Probe(addr); v2.HasData() {
		e.llc.InvalidateData(v2)
	}
	e.stats.FaultInclusionEvs++
	e.handleEvicted(t, ev)
	return true
}

// ForceLLCEviction applies eviction pressure to addr: whatever the LLC
// holds for the block — a spilled or fused directory entry, a data
// line, or both — is victimized exactly as replacement would victimize
// it, and each displaced line is disposed of through handleEvicted (so
// zerodev answers with WB_DE to home memory, inclusive backends with an
// inclusion eviction, and plain data lines with an ordinary writeback).
// Reports whether anything was evicted.
func (e *Engine) ForceLLCEviction(t sim.Cycle, addr coher.Addr) bool {
	e.llc.Protect(addr)
	defer e.llc.Unprotect()
	v := e.llc.Probe(addr)
	if !v.HasData() && !v.HasDE() {
		return false
	}
	e.stats.FaultForcedEvs++
	if v.HasDE() {
		p := e.llc.Payload(v, v.DEWay)
		kind := llc.KindSpilled
		if v.Fused {
			kind = llc.KindFused
		}
		ev := llc.Evicted{Addr: addr, Kind: kind, Dirty: v.Fused && p.Dirty, Entry: p.Entry}
		fused := v.Fused
		e.llc.DropDE(v)
		if fused {
			// A fused line's data part is unreconstructible without the
			// busy-clear low bits (zerodev) or rides out with the entry
			// (inclusive in-tag tracking); either way it leaves with it.
			if v2 := e.llc.Probe(addr); v2.HasData() {
				e.llc.InvalidateData(v2)
			}
		}
		e.handleEvicted(t, ev)
		v = e.llc.Probe(addr)
	}
	if v.HasData() {
		p := e.llc.Payload(v, v.DataWay)
		ev := llc.Evicted{Addr: addr, Kind: llc.KindData, Dirty: p.Dirty}
		e.llc.InvalidateData(v)
		e.handleEvicted(t, ev)
	}
	return true
}
