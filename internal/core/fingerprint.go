package core

import (
	"fmt"

	"repro/internal/directory"
)

// This file composes the per-layer canonical state encodings into one
// system fingerprint for the model checker (internal/mcheck). The
// encoding covers exactly the protocol-visible state: private-cache
// contents and replacement metadata, the sparse directory, LLC lines
// with housed entries, and home-memory corruption metadata. Clocks,
// statistics, DRAM/NoC timing state, and anything else that can only
// change *when* a transition happens — never *which* transitions are
// enabled — is excluded, so two states with equal fingerprints have
// identical reachable futures under the checker's op alphabet.

// stateAppender is the optional CorePort extension used for
// fingerprinting; *cpu.Core implements it.
type stateAppender interface {
	AppendState(buf []byte) []byte
}

// AppendState appends the engine-side protocol state (cores, sparse
// directory, LLC) to buf. It panics when a core or the directory does
// not support fingerprinting — the checker constructs its own systems,
// so a miss is a wiring bug, not a runtime condition.
func (e *Engine) AppendState(buf []byte) []byte {
	for i, cp := range e.cores {
		sa, ok := cp.(stateAppender)
		if !ok {
			panic(fmt.Sprintf("core: core %d does not support state fingerprinting", i))
		}
		buf = sa.AppendState(buf)
		buf = append(buf, 0xfe) // layer separator
	}
	st, ok := e.dir.(directory.Stater)
	if !ok {
		panic(fmt.Sprintf("core: directory %s does not support state fingerprinting", e.dir.Name()))
	}
	buf = st.AppendState(buf)
	buf = append(buf, 0xfe)
	return e.llc.AppendState(buf)
}

// AppendState appends the full system fingerprint: the engine state
// plus the home-memory corruption metadata (segments, data-lost and
// dir-evict bits), which the recovery flows read back.
func (s *System) AppendState(buf []byte) []byte {
	buf = s.Engine.AppendState(buf)
	buf = append(buf, 0xfe)
	return s.Home.Mem().AppendState(buf)
}
