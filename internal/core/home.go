package core

import (
	"fmt"

	"repro/internal/coher"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
)

// FetchResult is the outcome of a socket-miss fetch from home.
type FetchResult struct {
	// Done is when the data (or corrupted block) arrives at the
	// requesting socket's LLC bank.
	Done sim.Cycle
	// DE is non-nil when home returned a corrupted block and the
	// requesting socket extracted its own intra-socket directory entry
	// from it (paper Fig. 15, step 3 / §III-D2 fallback). The protocol
	// then proceeds as a directory hit with an LLC data miss.
	DE *coher.Entry
	// ServedBySocket is true when another socket supplied the data
	// (multi-socket three-hop path); the home memory was not read.
	ServedBySocket bool
	// SharedGrant is true when other sockets retain copies, so the
	// requesting socket may only grant S to its core (an E grant would
	// permit a silent E→M upgrade invisible to the other sockets).
	SharedGrant bool
}

// Home is the memory-side agent of a socket's protocol engine: it hides
// whether the system is single-socket (LocalHome: the socket directory
// is degenerate and every flow ends at DRAM) or multi-socket (package
// socket implements the full inter-socket protocol of Figs. 14-16).
type Home interface {
	// FetchBlock serves a socket miss (case iv of §III-D2). exclusive
	// requests socket-level ownership.
	FetchBlock(t sim.Cycle, socket int, addr coher.Addr, exclusive bool) FetchResult

	// WriteBack delivers a full-block writeback to home memory,
	// restoring a corrupted block if any.
	WriteBack(t sim.Cycle, socket int, addr coher.Addr)

	// WBDE executes the directory-entry writeback flow of Fig. 14.
	WBDE(t sim.Cycle, socket int, addr coher.Addr, e coher.Entry)

	// GetDE executes steps 3-4 of Fig. 16: fetch the corrupted home
	// block and extract this socket's directory entry. ok is false when
	// home holds no entry for the socket (a protocol invariant
	// violation, surfaced for tests).
	GetDE(t sim.Cycle, socket int, addr coher.Addr) (e coher.Entry, done sim.Cycle, ok bool)

	// PutDE writes the updated directory entry back (step 6 of Fig. 16).
	// A dead entry clears the socket's segment.
	PutDE(t sim.Cycle, socket int, addr coher.Addr, e coher.Entry)

	// SocketEvict notifies home that the socket evicted its last copy of
	// addr (and the block is not LLC-resident there). retrieveBlock is
	// true when home needs the block back from the evicting core because
	// the home memory copy is corrupted and this was the system-wide
	// last copy (§III-D4).
	SocketEvict(t sim.Cycle, socket int, addr coher.Addr) (retrieveBlock bool)

	// Corrupted reports whether the home memory copy of addr is
	// currently invalid. The engine consults this in the rare
	// sub-case (iiib) fallback.
	Corrupted(addr coher.Addr) bool

	// Segment peeks at the live directory entry home memory holds for
	// the given socket, if any (i.e., the socket still has private
	// holders whose tracking lives off-chip). The engine uses it when
	// deciding whether a clean LLC line of a corrupted block may be
	// silently dropped, and the invariant checker cross-validates it
	// against ground truth.
	Segment(socket int, addr coher.Addr) (coher.Entry, bool)

	// AcquireExclusive makes the socket the sole holder at the socket
	// level before a core takes the block to M (intra-socket upgrade or
	// write to a socket-shared block): other sockets' copies are
	// invalidated. It returns when the socket-level acknowledgement
	// arrives.
	AcquireExclusive(t sim.Cycle, socket int, addr coher.Addr) sim.Cycle

	// SharedElsewhere reports whether any other socket currently holds a
	// copy, deciding E vs S grants for uncore hits.
	SharedElsewhere(socket int, addr coher.Addr) bool
}

// LocalHome is the single-socket home agent: socket-level coherence is
// degenerate (socket 0 either holds the block or nobody does), and all
// flows terminate at the DRAM model and the home-memory metadata.
type LocalHome struct {
	mem  *mem.Memory
	dram *dram.DRAM
}

// NewLocalHome wires a single-socket home agent.
func NewLocalHome(m *mem.Memory, d *dram.DRAM) *LocalHome {
	return &LocalHome{mem: m, dram: d}
}

// Mem exposes the home-memory metadata for invariant checks.
func (h *LocalHome) Mem() *mem.Memory { return h.mem }

// DRAM exposes the memory timing model for stats.
func (h *LocalHome) DRAM() *dram.DRAM { return h.dram }

// FetchBlock implements Home.
func (h *LocalHome) FetchBlock(t sim.Cycle, socket int, addr coher.Addr, exclusive bool) FetchResult {
	if !h.mem.Corrupted(addr) {
		return FetchResult{Done: h.dram.Read(t, uint64(addr), dram.KindData)}
	}
	// Corrupted home block on a socket miss: in a single-socket system
	// the requesting socket is necessarily the holder, so it extracts
	// its own directory entry from the returned block (one extra cycle,
	// Fig. 15 step 3) and the entry is re-housed on chip.
	e, ok := h.mem.ReadSegment(addr, socket)
	if !ok {
		panic(fmt.Sprintf("core: corrupted block %#x with no segment for socket %d on a socket miss",
			uint64(addr), socket))
	}
	done := h.dram.Read(t, uint64(addr), dram.KindDE) + 1
	h.mem.ClearSegment(addr, socket)
	return FetchResult{Done: done, DE: &e}
}

// WriteBack implements Home.
func (h *LocalHome) WriteBack(t sim.Cycle, socket int, addr coher.Addr) {
	h.dram.Write(t, uint64(addr), dram.KindData)
	h.mem.Restore(addr)
}

// WBDE implements Home.
func (h *LocalHome) WBDE(t sim.Cycle, socket int, addr coher.Addr, e coher.Entry) {
	// Single socket: the block's segment layout has only our slot, so the
	// prepared 64-byte block is written directly (no read-modify-write).
	h.dram.Write(t, uint64(addr), dram.KindDE)
	if err := h.mem.WriteSegment(addr, socket, e); err != nil {
		panic("core: " + err.Error())
	}
}

// GetDE implements Home.
func (h *LocalHome) GetDE(t sim.Cycle, socket int, addr coher.Addr) (coher.Entry, sim.Cycle, bool) {
	e, ok := h.mem.ReadSegment(addr, socket)
	if !ok {
		return coher.Entry{}, t, false
	}
	done := h.dram.Read(t, uint64(addr), dram.KindDE) + 1
	return e, done, true
}

// PutDE implements Home.
func (h *LocalHome) PutDE(t sim.Cycle, socket int, addr coher.Addr, e coher.Entry) {
	h.dram.Write(t, uint64(addr), dram.KindDE)
	if e.Live() {
		if err := h.mem.WriteSegment(addr, socket, e); err != nil {
			panic("core: " + err.Error())
		}
		return
	}
	h.mem.ClearSegment(addr, socket)
}

// SocketEvict implements Home.
func (h *LocalHome) SocketEvict(t sim.Cycle, socket int, addr coher.Addr) bool {
	// Single socket: if the memory copy is corrupted, the evicting core
	// holds the system-wide last copy and must send it back (§III-D4).
	return h.mem.Corrupted(addr)
}

// Corrupted implements Home.
func (h *LocalHome) Corrupted(addr coher.Addr) bool { return h.mem.Corrupted(addr) }

// Segment implements Home.
func (h *LocalHome) Segment(socket int, addr coher.Addr) (coher.Entry, bool) {
	return h.mem.ReadSegment(addr, socket)
}

// AcquireExclusive implements Home: a single socket is always exclusive.
func (h *LocalHome) AcquireExclusive(t sim.Cycle, socket int, addr coher.Addr) sim.Cycle {
	return t
}

// SharedElsewhere implements Home: no other sockets exist.
func (h *LocalHome) SharedElsewhere(int, coher.Addr) bool { return false }
