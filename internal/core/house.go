package core

import (
	"fmt"

	"repro/internal/coher"
	"repro/internal/directory"
	"repro/internal/llc"
	"repro/internal/sim"
)

// This file contains the directory-entry housing machinery: where an
// entry lives (sparse directory, LLC, or home memory), how it moves
// between spilled and fused forms as the block's coherence state
// changes (the FPSS invariants of §III-C2), what happens when the LLC
// evicts a line (data writeback vs the WB_DE flow of §III-D), and how
// the baseline turns directory victims into DEVs.

// storeDE writes the live entry for addr wherever it currently lives,
// creating housing when it lives nowhere on the socket. It maintains the
// policy invariants on spilled/fused form.
func (e *Engine) storeDE(t sim.Cycle, addr coher.Addr, ent coher.Entry) {
	e.storeDEView(t, addr, ent, llc.View{DataWay: -1, DEWay: -1}, false)
}

// storeDETouch performs the storeDE-then-touchLLC sequence the request
// flows end with, reusing the caller's view v of addr so the pair costs
// at most one LLC probe. v must be current: Protect(addr) held (so no
// allocation can displace addr's lines) and no fill or DE-housing
// change for addr since v was probed.
func (e *Engine) storeDETouch(t sim.Cycle, addr coher.Addr, ent coher.Entry, v llc.View) {
	nv, known := e.storeDEView(t, addr, ent, v, true)
	if !known {
		nv = e.llc.Probe(addr)
	}
	if nv.HasData() || nv.HasDE() {
		e.llc.Touch(nv)
	}
}

// storeDEView is storeDE taking the caller's current view of addr
// (haveView), saving the probe on the LLC-housing paths. It returns
// addr's view after housing; known is false when the final view would
// require a fresh probe (a spilled line landed at a way this function
// cannot cheaply know, or no view was supplied). Where the entry may
// live — and what a housing conflict costs — is the backend's call, so
// the body dispatches to the protocol object.
func (e *Engine) storeDEView(t sim.Cycle, addr coher.Addr, ent coher.Entry, v llc.View, haveView bool) (after llc.View, known bool) {
	if !ent.Live() {
		panic("core: storeDE with a dead entry; use freeDE")
	}
	return e.proto.StoreDE(t, addr, ent, v, haveView)
}

// updateLLCDE rewrites an LLC-housed entry, converting between spilled
// and fused forms when the coherence state transition demands it
// (zerodev protocol only). It returns addr's view after the rewrite;
// known is false when the new housing landed at a way only a fresh
// probe can find.
func (e *Engine) updateLLCDE(t sim.Cycle, addr coher.Addr, ent coher.Entry, v llc.View) (after llc.View, known bool) {
	switch e.p.Policy {
	case FPSS:
		if v.Fused && ent.State == coher.DirShared {
			// M/E → S: the owner's busy-clear message carried the low bits,
			// so the block is reconstructed and the entry spills (§III-C2).
			e.llc.Unfuse(v)
			e.stats.DEFuseToSpill++
			if ev, ok := e.llc.InsertSpilled(addr, ent); ok {
				e.handleEvicted(t, ev)
			}
			return llc.View{}, false
		}
		if !v.Fused && ent.State == coher.DirOwned && v.HasData() && e.llc.Mode() != llc.EPD {
			// S → M/E: fuse with the block, freeing the spilled line
			// (§III-C2 invariant maintenance). Dropping the spilled DE
			// leaves the data way of v untouched, so the view stays valid
			// for the fuse.
			e.llc.DropDE(v)
			e.llc.Fuse(v, ent)
			e.stats.DESpillToFuse++
			v.DEWay, v.Fused = v.DataWay, true
			return v, true
		}
		// Block absent (or EPD, where M/E blocks leave the LLC): the
		// entry stays in spilled form.
		e.llc.Payload(v, v.DEWay).Entry = ent
	case FuseAll:
		if v.Fused && !coher.FitsFusedFuseAll(ent.State, e.p.Cores) {
			// Wide sockets: the S-state fused header (4+N bits) no longer
			// fits the line; the entry reverts to spilled form, exactly
			// like the FPSS M/E → S conversion. Never taken at ≤508 cores.
			e.llc.Unfuse(v)
			e.stats.DEFuseToSpill++
			if ev, ok := e.llc.InsertSpilled(addr, ent); ok {
				e.handleEvicted(t, ev)
			}
			return llc.View{}, false
		}
		if v.Fused && ent.State == coher.DirOwned && e.llc.Mode() == llc.EPD {
			// EPD deallocates M/E blocks from the LLC; the fused line's
			// block part is dead, so the line degenerates to a spill.
			p := e.llc.Payload(v, v.DEWay)
			p.Kind = llc.KindSpilled
			p.Dirty = false
			p.Entry = ent
			v.DataWay, v.Fused = -1, false
			return v, true
		}
		e.llc.Payload(v, v.DEWay).Entry = ent
	default: // SpillAll
		e.llc.Payload(v, v.DEWay).Entry = ent
	}
	return v, true
}

// houseInLLC places a new entry in the LLC according to the caching
// policy (§III-C1..3).
func (e *Engine) houseInLLC(t sim.Cycle, addr coher.Addr, ent coher.Entry) {
	e.houseInLLCView(t, addr, ent, e.llc.Probe(addr))
}

// houseInLLCView is houseInLLC with the caller's current view of addr.
// Returns the post-housing view like updateLLCDE.
func (e *Engine) houseInLLCView(t sim.Cycle, addr coher.Addr, ent coher.Entry, v llc.View) (after llc.View, known bool) {
	if v.HasDE() {
		return e.updateLLCDE(t, addr, ent, v)
	}
	fuse := false
	switch e.p.Policy {
	case FPSS:
		fuse = ent.State == coher.DirOwned && v.HasData() && !v.Fused
	case FuseAll:
		// Past 508 cores the S-state fused header overflows the line
		// payload, so wide shared entries stay on the spill path — the
		// overflow regime the scale figures measure.
		fuse = v.HasData() && !v.Fused && coher.FitsFusedFuseAll(ent.State, e.p.Cores)
	}
	if fuse {
		e.llc.Fuse(v, ent)
		e.stats.DEFuses++
		v.DEWay, v.Fused = v.DataWay, true
		return v, true
	}
	e.stats.DESpills++
	if ev, ok := e.llc.InsertSpilled(addr, ent); ok {
		e.handleEvicted(t, ev)
	}
	return llc.View{}, false
}

// freeDE removes the entry for addr from wherever it lives on the
// socket. forceDirty is meaningful when the entry was fused: it forces
// the reconstructed block part's dirty bit (PutM deliveries carry fresh
// dirty data). v must be the caller's current view of addr. It reports
// whether the block remains LLC-resident.
func (e *Engine) freeDE(t sim.Cycle, addr coher.Addr, forceDirty bool, v llc.View) (blockInLLC bool) {
	if _, ok := e.dir.Lookup(addr); ok {
		e.dir.Free(addr)
		return v.HasData()
	}
	if !v.HasDE() {
		return v.HasData()
	}
	e.stats.DEFreedInLLC++
	if v.Fused {
		// The line reverts to a plain data block; the low bits came with
		// the eviction notice (PutE) or the full block did (PutM), or —
		// for FuseAll S-state lines — via the last-sharer retrieval
		// acknowledgement handled by the caller.
		dirty := e.llc.Payload(v, v.DEWay).Dirty || forceDirty
		e.llc.Unfuse(v)
		e.llc.Payload(v, v.DataWay).Dirty = dirty
		return true
	}
	// Dropping a spilled DE only invalidates the DE way; whether the
	// block's data line is resident is unchanged from the probe above.
	e.llc.DropDE(v)
	return v.HasData()
}

// handleEvicted disposes of a line displaced from the LLC.
func (e *Engine) handleEvicted(t sim.Cycle, ev llc.Evicted) {
	switch ev.Kind {
	case llc.KindData:
		if e.llc.Mode() == llc.Inclusive {
			e.backInvalidate(t, ev)
			return
		}
		if ev.Dirty && !e.home.Corrupted(ev.Addr) {
			e.home.WriteBack(t, e.p.Socket, ev.Addr)
		}
		// While the home block is corrupted its data lives only in the
		// caches: writing the line back would destroy the directory
		// entries housed in the block, so the line is dropped and memory
		// is restored later by the last-copy retrieval of §III-D4. Any
		// drop may remove the socket's last copy, so the home
		// socket-level directory must learn about it.
		e.maybeSocketEvict(t, ev.Addr)
	case llc.KindSpilled, llc.KindFused:
		if !ev.Entry.Live() {
			panic("core: dead directory entry housed in LLC")
		}
		if e.llc.Mode() == llc.Inclusive {
			// §III-F: an inclusive LLC victimizes blocks together with
			// their housed entries; the eviction is an inclusion eviction
			// (forced invalidations), never a WB_DE to memory.
			dirty := ev.Kind == llc.KindFused && ev.Dirty
			ev.Entry.Holders().ForEach(func(h coher.CoreID) {
				prev := e.cores[h].Invalidate(ev.Addr)
				if prev == coher.PrivInvalid {
					panic("core: inclusion victim not present in tracked core")
				}
				e.stats.InclusionInvals++
				e.record(coher.MsgInv)
				e.record(coher.MsgInvAck)
				if prev == coher.PrivModified {
					e.record(coher.MsgPutM)
					dirty = true
				}
			})
			if dirty {
				e.home.WriteBack(t, e.p.Socket, ev.Addr)
			}
			e.maybeSocketEvict(t, ev.Addr)
			return
		}
		// The ZeroDEV mechanism of §III-D: a live directory entry leaves
		// the LLC by overwriting the block's home memory copy. No
		// invalidation is ever sent to a private cache.
		e.stats.DEEvictionsToMemory++
		e.record(coher.MsgWBDE)
		e.home.WBDE(t, e.p.Socket, ev.Addr, ev.Entry)
	}
}

// backInvalidate enforces inclusion: a data block leaving an inclusive
// LLC invalidates its private copies and frees its directory entry.
// These forced invalidations are inclusion victims, not DEVs.
func (e *Engine) backInvalidate(t sim.Cycle, ev llc.Evicted) {
	v := e.llc.Probe(ev.Addr) // the data line is already gone; a spilled DE may remain
	ent, loc := e.findDE(ev.Addr, v)
	dirty := ev.Dirty
	if loc != locNone {
		ent.Holders().ForEach(func(h coher.CoreID) {
			prev := e.cores[h].Invalidate(ev.Addr)
			if prev == coher.PrivInvalid {
				panic("core: inclusion victim not present in tracked core")
			}
			e.stats.InclusionInvals++
			e.record(coher.MsgInv)
			e.record(coher.MsgInvAck)
			if prev == coher.PrivModified {
				e.record(coher.MsgPutM)
				dirty = true
			}
		})
		switch loc {
		case locDir:
			e.dir.Free(ev.Addr)
		case locLLC:
			// v is the probe that located the DE; the invalidations above
			// touch only private caches, so it is still current.
			e.llc.DropDE(v)
			e.stats.DEFreedInLLC++
		}
	}
	if dirty && !e.home.Corrupted(ev.Addr) {
		e.home.WriteBack(t, e.p.Socket, ev.Addr)
	}
	e.maybeSocketEvict(t, ev.Addr)
}

// processDEVs performs the invalidations a baseline directory eviction
// demands: every private copy the victim entry tracked becomes a DEV.
// Dirty copies are retrieved into the LLC (§I-A1's freqmine discussion).
func (e *Engine) processDEVs(t sim.Cycle, victims []directory.Victim) {
	for _, v := range victims {
		if !v.Entry.Live() {
			continue
		}
		dirty := false
		v.Entry.Holders().ForEach(func(h coher.CoreID) {
			prev := e.cores[h].Invalidate(v.Addr)
			if prev == coher.PrivInvalid {
				panic(fmt.Sprintf("core: DEV holder %d does not cache %#x", h, uint64(v.Addr)))
			}
			e.stats.DEVs++
			e.record(coher.MsgInv)
			e.record(coher.MsgInvAck)
			if prev == coher.PrivModified {
				dirty = true
			}
		})
		if dirty {
			e.stats.DEVDirtyRetrievals++
			e.record(coher.MsgPutM)
			e.fillLLCData(t, v.Addr, true)
		} else {
			e.maybeSocketEvict(t, v.Addr)
		}
	}
}

// fillLLCData delivers block data to the LLC: updates a resident line's
// dirty bit or allocates a new line, handling the displaced victim.
func (e *Engine) fillLLCData(t sim.Cycle, addr coher.Addr, dirty bool) {
	v := e.llc.Probe(addr)
	if v.HasData() {
		p := e.llc.Payload(v, v.DataWay)
		p.Dirty = p.Dirty || dirty
		e.llc.Touch(v)
		return
	}
	if ev, ok := e.llc.InsertData(addr, dirty); ok {
		e.handleEvicted(t, ev)
	}
}

// touchLLC applies the access-time replacement update for addr (the
// B-then-spilled-EB order of spLRU).
func (e *Engine) touchLLC(addr coher.Addr) {
	if v := e.llc.Probe(addr); v.HasData() || v.HasDE() {
		e.llc.Touch(v)
	}
}
