package core_test

import (
	"testing"

	"repro/internal/coher"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	testScale    = 16
	testAccesses = 15000
)

func runChecked(t *testing.T, spec core.SystemSpec, prof workload.Profile, threads bool) *core.System {
	t.Helper()
	var streams = workload.Threads(prof, spec.Cores, testAccesses, testScale, 42)
	if !threads {
		streams = workload.Rate(prof, spec.Cores, testAccesses, testScale, 42)
	}
	sys := core.NewSystem(spec, streams)
	// Step manually so invariants can be checked mid-run.
	agents := make([]sim.Clocked, len(sys.Cores))
	for i, c := range sys.Cores {
		agents[i] = c
	}
	steps := 0
	for {
		min := sim.MaxCycle
		var pick sim.Clocked
		for _, a := range agents {
			if !a.Done() && a.Now() < min {
				min = a.Now()
				pick = a
			}
		}
		if pick == nil {
			break
		}
		pick.Step()
		steps++
		if steps%25000 == 0 {
			if err := sys.Engine.CheckInvariants(); err != nil {
				t.Fatalf("invariant violated after %d steps: %v", steps, err)
			}
		}
	}
	if err := sys.Engine.CheckInvariants(); err != nil {
		t.Fatalf("final invariant check: %v", err)
	}
	return sys
}

func TestBaselineSmallDirectoryProducesDEVs(t *testing.T) {
	pre := config.TableI(testScale)
	sys := runChecked(t, pre.Baseline(1.0/32, llc.NonInclusive), workload.MustGet("canneal"), true)
	if sys.Engine.Stats().DEVs == 0 {
		t.Fatalf("expected DEVs under a 1/32x directory, got none")
	}
}

func TestZeroDEVNeverProducesDEVs(t *testing.T) {
	pre := config.TableI(testScale)
	for _, pol := range []core.DEPolicy{core.SpillAll, core.FPSS, core.FuseAll} {
		for _, repl := range []llc.Repl{llc.SpLRU, llc.DataLRU} {
			for _, ratio := range []float64{0, 1.0 / 8} {
				name := pol.String() + "/" + repl.String()
				sys := runChecked(t, pre.ZeroDEV(ratio, pol, repl, llc.NonInclusive),
					workload.MustGet("freqmine"), true)
				st := sys.Engine.Stats()
				if st.DEVs != 0 {
					t.Errorf("%s ratio=%v: %d DEVs under ZeroDEV", name, ratio, st.DEVs)
				}
				if ratio == 0 && st.DESpills+st.DEFuses == 0 {
					t.Errorf("%s NoDir: no entries were housed in the LLC", name)
				}
			}
		}
	}
}

func TestZeroDEVInclusiveNeverEvictsDEs(t *testing.T) {
	pre := config.TableI(testScale)
	sys := runChecked(t, pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.Inclusive),
		workload.MustGet("ocean_cp"), true)
	st := sys.Engine.Stats()
	if st.DEVs != 0 {
		t.Fatalf("%d DEVs under inclusive ZeroDEV", st.DEVs)
	}
	if st.DEEvictionsToMemory != 0 {
		t.Fatalf("inclusive ZeroDEV evicted %d entries from the LLC; the dataLRU "+
			"policy should free entries via inclusion victims first (§III-F)", st.DEEvictionsToMemory)
	}
	if st.InclusionInvals == 0 {
		t.Fatalf("expected some inclusion victims under an inclusive LLC")
	}
}

func TestZeroDEVEPD(t *testing.T) {
	pre := config.TableI(testScale)
	sys := runChecked(t, pre.ZeroDEV(0.5, core.FPSS, llc.DataLRU, llc.EPD),
		workload.MustGet("fluidanimate"), true)
	st := sys.Engine.Stats()
	if st.DEVs != 0 {
		t.Fatalf("%d DEVs under EPD ZeroDEV", st.DEVs)
	}
	// EPD keeps M/E blocks out of the LLC, so fusion is impossible and
	// every housed entry must be a spill (§III-E).
	if st.DEFuses != 0 || st.DESpillToFuse != 0 {
		t.Fatalf("EPD fused %d entries; fusion requires LLC-resident blocks", st.DEFuses+st.DESpillToFuse)
	}
}

func TestBaselineOneXHasFewDEVsAndUnboundedNone(t *testing.T) {
	pre := config.TableI(testScale)
	prof := workload.MustGet("blackscholes")
	one := runChecked(t, pre.Baseline(1.0, llc.NonInclusive), prof, true)
	unb := runChecked(t, pre.Unbounded(llc.NonInclusive), prof, true)
	if unb.Engine.Stats().DEVs != 0 {
		t.Fatalf("unbounded directory produced DEVs")
	}
	small := runChecked(t, pre.Baseline(1.0/8, llc.NonInclusive), prof, true)
	if small.Engine.Stats().DEVs < one.Engine.Stats().DEVs {
		t.Fatalf("1/8x directory produced fewer DEVs (%d) than 1x (%d)",
			small.Engine.Stats().DEVs, one.Engine.Stats().DEVs)
	}
}

func TestSecDirAndMgDRun(t *testing.T) {
	pre := config.TableI(testScale)
	prof := workload.MustGet("dedup")
	sec := runChecked(t, pre.SecDir(1.0/8, llc.NonInclusive), prof, true)
	if sec.Engine.Stats().Reads == 0 {
		t.Fatal("SecDir system served no reads")
	}
	mgd := runChecked(t, pre.MgD(1.0/8, llc.NonInclusive), prof, true)
	if mgd.Engine.Stats().Reads == 0 {
		t.Fatal("MgD system served no reads")
	}
}

func TestCorruptedBlockFlows(t *testing.T) {
	// A tiny LLC with no sparse directory forces DE evictions to memory,
	// exercising WB_DE, GET_DE, corrupted fetches, and last-copy
	// retrieval.
	pre := config.TableI(64)
	spec := pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
	sys := runChecked(t, spec, workload.MustGet("canneal"), true)
	st := sys.Engine.Stats()
	if st.DEEvictionsToMemory == 0 {
		t.Skip("workload did not pressure the LLC enough to evict entries; enlarge footprints")
	}
	if st.DEVs != 0 {
		t.Fatalf("%d DEVs despite ZeroDEV", st.DEVs)
	}
	dr := sys.Home.DRAM().Stats()
	if dr.DEWrites == 0 {
		t.Fatalf("WB_DE flows did not reach DRAM")
	}
	if st.GetDEFlows == 0 && st.CorruptedFetches == 0 {
		t.Logf("note: no corrupted-block accesses occurred (possible with protective replacement)")
	}
	// The WB_DE flow must have corrupted home memory at some point; any
	// blocks still corrupted at the end must have live holders.
	sys.Home.Mem().ForEachCorrupted(func(addr coher.Addr, _ *mem.BlockMeta) {
		found := false
		for _, c := range sys.Cores {
			if _, ok := c.HasBlock(addr); ok {
				found = true
			}
		}
		if !found && !sys.Engine.LLC().Probe(addr).HasData() {
			t.Errorf("corrupted block %#x has no remaining copies", uint64(addr))
		}
	})
}
