package core

import (
	"fmt"

	"repro/internal/coher"
)

// BlockLister is the optional CorePort extension the invariant checker
// uses to enumerate a core's resident blocks. *cpu.Core implements it.
type BlockLister interface {
	ForEachBlock(fn func(addr coher.Addr, state coher.PrivState))
}

type truth struct {
	owner    coher.CoreID
	hasOwner bool
	sharers  coher.CoreSet
	mixed    bool
}

// CheckInvariants cross-validates the coherence state against ground
// truth assembled from the private caches:
//
//   - at most one core owns a block, and an owner excludes sharers;
//   - every privately cached block has exactly one live directory entry
//     (sparse directory, LLC, or home-memory segment) whose state and
//     holder set match the private caches exactly;
//   - every live entry tracks at least one private copy;
//   - backend housing-form rules hold (FPSS: fused entries track M/E
//     blocks and a co-resident spilled entry tracks an S block; DLS:
//     housing is always fused);
//   - backends that do not house entries in the LLC never do.
//
// It is O(private blocks + directory entries) and intended for tests.
func (e *Engine) CheckInvariants() error {
	tr := make(map[coher.Addr]*truth)
	for i, cp := range e.cores {
		bl, ok := cp.(BlockLister)
		if !ok {
			return fmt.Errorf("core %d does not support block listing", i)
		}
		id := coher.CoreID(i)
		var err error
		bl.ForEachBlock(func(addr coher.Addr, st coher.PrivState) {
			t := tr[addr]
			if t == nil {
				t = &truth{}
				tr[addr] = t
			}
			switch st {
			case coher.PrivModified, coher.PrivExclusive:
				if t.hasOwner || !t.sharers.Empty() {
					t.mixed = true
				}
				t.hasOwner = true
				t.owner = id
			case coher.PrivShared:
				if t.hasOwner {
					t.mixed = true
				}
				t.sharers.Add(id)
			default:
				err = fmt.Errorf("block %#x cached in state %v at core %d", uint64(addr), st, id)
			}
		})
		if err != nil {
			return err
		}
	}

	for addr, t := range tr {
		if t.mixed {
			return fmt.Errorf("block %#x has an owner alongside other copies", uint64(addr))
		}
		ent, where, err := e.LocateEntry(addr)
		if err != nil {
			return err
		}
		if where == "" {
			return fmt.Errorf("block %#x is privately cached but has no directory entry", uint64(addr))
		}
		if t.hasOwner {
			if ent.State != coher.DirOwned || ent.Owner != t.owner {
				return fmt.Errorf("block %#x owned by core %d but %s entry is %v", uint64(addr), t.owner, where, ent)
			}
		} else {
			// An imprecise home-memory entry (coarse-compressed segment,
			// wide sockets only) legitimately tracks a superset of the
			// true sharers; everything else must match exactly.
			if ent.Imprecise && where == LocHomeMemory {
				if ent.State != coher.DirShared || !ent.Sharers.Superset(t.sharers) {
					return fmt.Errorf("block %#x shared by %v but imprecise %s entry %v is not a superset", uint64(addr), t.sharers, where, ent)
				}
			} else if ent.State != coher.DirShared || !ent.Sharers.Equal(t.sharers) {
				return fmt.Errorf("block %#x shared by %v but %s entry is %v", uint64(addr), t.sharers, where, ent)
			}
		}
	}

	// Every live on-socket entry must track real copies.
	var err error
	checkEntry := func(addr coher.Addr, ent coher.Entry, where string) {
		if err != nil {
			return
		}
		if !ent.Live() {
			err = fmt.Errorf("dead entry for %#x housed in %s", uint64(addr), where)
			return
		}
		if tr[addr] == nil {
			err = fmt.Errorf("%s entry for %#x tracks no privately cached block", where, uint64(addr))
		}
	}
	live, _ := e.dir.Occupancy()
	_ = live
	e.llc.ForEachDE(func(addr coher.Addr, fused bool, ent coher.Entry) {
		if !e.housesInLLC && err == nil {
			err = fmt.Errorf("baseline housed a directory entry in the LLC for %#x", uint64(addr))
			return
		}
		checkEntry(addr, ent, "LLC")
		if err != nil {
			return
		}
		// Backend-specific housing-form rules (FPSS spill/fuse
		// invariants, DLS fused-only housing).
		err = e.proto.CheckHoused(addr, fused, ent)
	})
	if err != nil {
		return err
	}
	return nil
}

// Entry locations reported by LocateEntry. A block's live entry must be
// in exactly one of them; "" means the block is untracked.
const (
	LocDirectory  = "directory"
	LocLLCSpilled = "LLC-spilled"
	LocLLCFused   = "LLC-fused"
	LocHomeMemory = "home-memory"
)

// LocateEntry finds the single live entry for addr across the sparse
// directory, the LLC (distinguishing spilled from fused housing), and
// this socket's home-memory segment. where is one of the Loc*
// constants, or "" when no location holds a live entry. A block tracked
// in more than one location is a protocol bug; the error names both
// locations uniformly as "block %#x tracked in both <first> and
// <second>".
func (e *Engine) LocateEntry(addr coher.Addr) (found coher.Entry, where string, err error) {
	claim := func(ent coher.Entry, loc string) error {
		if where != "" {
			return fmt.Errorf("block %#x tracked in both %s and %s", uint64(addr), where, loc)
		}
		found, where = ent, loc
		return nil
	}
	if ent, ok := e.dir.Lookup(addr); ok && ent.Live() {
		if err := claim(ent, LocDirectory); err != nil {
			return found, where, err
		}
	}
	if v := e.llc.Probe(addr); v.HasDE() {
		loc := LocLLCSpilled
		if v.Fused {
			loc = LocLLCFused
		}
		if err := claim(e.llc.Payload(v, v.DEWay).Entry, loc); err != nil {
			return found, where, err
		}
	}
	if ent, ok := e.home.Segment(e.p.Socket, addr); ok {
		if err := claim(ent, LocHomeMemory); err != nil {
			return found, where, err
		}
	}
	return found, where, nil
}
