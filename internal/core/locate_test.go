package core_test

import (
	"strings"
	"testing"

	"repro/internal/coher"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/llc"
)

// Table tests for core.LocateEntry: every location a live entry can
// legally occupy, plus the illegal multi-location states its error path
// reports. The legal states are reached through real protocol flows;
// the illegal ones are staged by poking a second copy of the entry into
// another structure, which is exactly what a housing bug would produce.
func TestLocateEntry(t *testing.T) {
	const X = coher.Addr(0x40)

	type result struct {
		where string
		state coher.DirState
		err   string // substring of the expected error; "" = no error
	}
	cases := []struct {
		name  string
		spec  core.SystemSpec
		setup func(t *testing.T, sys *core.System, sc []*script)
		want  result
	}{
		{
			name: "untracked",
			spec: tinySpec(func() directory.Directory { return directory.NoDir{} },
				true, core.SpillAll, llc.DataLRU, llc.NonInclusive),
			setup: func(t *testing.T, sys *core.System, sc []*script) {},
			want:  result{where: ""},
		},
		{
			name: "directory",
			spec: tinySpec(func() directory.Directory { return directory.MustReplacementDisabled(2, 2) },
				true, core.SpillAll, llc.DataLRU, llc.NonInclusive),
			setup: func(t *testing.T, sys *core.System, sc []*script) {
				storeFrom(sys, sc, 0, X)
			},
			want: result{where: core.LocDirectory, state: coher.DirOwned},
		},
		{
			name: "llc-spilled",
			spec: tinySpec(func() directory.Directory { return directory.NoDir{} },
				true, core.SpillAll, llc.DataLRU, llc.NonInclusive),
			setup: func(t *testing.T, sys *core.System, sc []*script) {
				storeFrom(sys, sc, 0, X)
			},
			want: result{where: core.LocLLCSpilled, state: coher.DirOwned},
		},
		{
			name: "llc-fused",
			spec: tinySpec(func() directory.Directory { return directory.NoDir{} },
				true, core.FuseAll, llc.DataLRU, llc.NonInclusive),
			setup: func(t *testing.T, sys *core.System, sc []*script) {
				storeFrom(sys, sc, 0, X)
			},
			want: result{where: core.LocLLCFused, state: coher.DirOwned},
		},
		{
			name: "home-memory",
			spec: tinySpec(func() directory.Directory { return directory.NoDir{} },
				true, core.SpillAll, llc.DataLRU, llc.NonInclusive),
			setup: func(t *testing.T, sys *core.System, sc []*script) {
				storeFrom(sys, sc, 0, X)
				if !sys.Engine.ForceDEWriteback(0, X) {
					t.Fatal("ForceDEWriteback found no housed entry")
				}
			},
			want: result{where: core.LocHomeMemory, state: coher.DirOwned},
		},
		{
			name: "dup-directory-and-llc-spilled",
			spec: tinySpec(func() directory.Directory { return directory.MustReplacementDisabled(2, 2) },
				true, core.SpillAll, llc.DataLRU, llc.NonInclusive),
			setup: func(t *testing.T, sys *core.System, sc []*script) {
				storeFrom(sys, sc, 0, X)
				sys.Engine.LLC().InsertSpilled(X, coher.Entry{State: coher.DirOwned, Owner: 0})
			},
			want: result{err: "tracked in both directory and LLC-spilled"},
		},
		{
			name: "dup-directory-and-home-memory",
			spec: tinySpec(func() directory.Directory { return directory.MustReplacementDisabled(2, 2) },
				true, core.SpillAll, llc.DataLRU, llc.NonInclusive),
			setup: func(t *testing.T, sys *core.System, sc []*script) {
				storeFrom(sys, sc, 0, X)
				if err := sys.Home.Mem().WriteSegment(X, 0, coher.Entry{State: coher.DirOwned, Owner: 0}); err != nil {
					t.Fatal(err)
				}
			},
			want: result{err: "tracked in both directory and home-memory"},
		},
		{
			name: "dup-llc-fused-and-home-memory",
			spec: tinySpec(func() directory.Directory { return directory.NoDir{} },
				true, core.FuseAll, llc.DataLRU, llc.NonInclusive),
			setup: func(t *testing.T, sys *core.System, sc []*script) {
				storeFrom(sys, sc, 0, X)
				if err := sys.Home.Mem().WriteSegment(X, 0, coher.Entry{State: coher.DirOwned, Owner: 0}); err != nil {
					t.Fatal(err)
				}
			},
			want: result{err: "tracked in both LLC-fused and home-memory"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, sc := microSystem(tc.spec)
			tc.setup(t, sys, sc)
			ent, where, err := sys.Engine.LocateEntry(X)
			if tc.want.err != "" {
				if err == nil || !strings.Contains(err.Error(), tc.want.err) {
					t.Fatalf("err = %v, want substring %q", err, tc.want.err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if where != tc.want.where {
				t.Fatalf("where = %q, want %q", where, tc.want.where)
			}
			if where != "" && ent.State != tc.want.state {
				t.Fatalf("entry state = %v, want %v", ent.State, tc.want.state)
			}
		})
	}
}

// storeFrom drives one store access through a scripted core, giving it
// the block in M and creating a live directory entry.
func storeFrom(sys *core.System, sc []*script, c int, addr coher.Addr) {
	sc[c].store(addr)
	sys.Cores[c].Step()
}
