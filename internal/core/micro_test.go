package core_test

import (
	"testing"

	"repro/internal/coher"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/llc"
	"repro/internal/workload"
)

// Scripted micro-scenarios pinning individual protocol paths: each test
// drives specific cores through specific accesses and checks the
// resulting states and counters.

type script struct{ q []cpu.Access }

func (s *script) Next() (cpu.Access, bool) {
	if len(s.q) == 0 {
		return cpu.Access{}, false
	}
	a := s.q[0]
	s.q = s.q[1:]
	return a, true
}

func (s *script) load(addr coher.Addr)  { s.q = append(s.q, cpu.Access{Kind: cpu.Load, Addr: addr}) }
func (s *script) store(addr coher.Addr) { s.q = append(s.q, cpu.Access{Kind: cpu.Store, Addr: addr}) }

// microSystem builds a system whose cores run scripted streams.
func microSystem(spec core.SystemSpec) (*core.System, []*script) {
	scripts := make([]*script, spec.Cores)
	streams := make([]cpu.Stream, spec.Cores)
	for i := range scripts {
		scripts[i] = &script{}
		streams[i] = scripts[i]
	}
	return core.NewSystem(spec, streams), scripts
}

const microScale = 16

func TestThreeHopReadFromOwner(t *testing.T) {
	pre := config.TableI(microScale)
	sys, sc := microSystem(pre.Baseline(1, llc.NonInclusive))
	const X = coher.Addr(0x1000)

	sc[0].store(X)
	sys.Cores[0].Step()
	if st, _ := sys.Cores[0].HasBlock(X); st != coher.PrivModified {
		t.Fatalf("core 0 state = %v", st)
	}

	sc[1].load(X)
	sys.Cores[1].Step()
	st := sys.Engine.Stats()
	if st.Forwards3Hop != 1 {
		t.Fatalf("forwards = %d, want 1", st.Forwards3Hop)
	}
	if s0, _ := sys.Cores[0].HasBlock(X); s0 != coher.PrivShared {
		t.Fatalf("owner not downgraded: %v", s0)
	}
	if s1, _ := sys.Cores[1].HasBlock(X); s1 != coher.PrivShared {
		t.Fatalf("requester state: %v", s1)
	}
	// The M->S downgrade wrote the dirty block into the LLC.
	v := sys.Engine.LLC().Probe(X)
	if !v.HasData() {
		t.Fatal("downgrade did not deposit the block in the LLC")
	}
	if err := sys.Engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteInvalidatesAllSharers(t *testing.T) {
	pre := config.TableI(microScale)
	sys, sc := microSystem(pre.Baseline(1, llc.NonInclusive))
	const X = coher.Addr(0x2000)

	for c := 0; c < 3; c++ {
		sc[c].load(X)
		sys.Cores[c].Step()
	}
	before := sys.Engine.Stats().DemandInvals
	sc[3].store(X)
	sys.Cores[3].Step()
	st := sys.Engine.Stats()
	if st.DemandInvals-before != 3 {
		t.Fatalf("demand invalidations = %d, want 3", st.DemandInvals-before)
	}
	for c := 0; c < 3; c++ {
		if _, ok := sys.Cores[c].HasBlock(X); ok {
			t.Fatalf("core %d still holds the block", c)
		}
	}
	if s3, _ := sys.Cores[3].HasBlock(X); s3 != coher.PrivModified {
		t.Fatalf("writer state = %v", s3)
	}
	if err := sys.Engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeKeepsRequesterCopy(t *testing.T) {
	pre := config.TableI(microScale)
	sys, sc := microSystem(pre.Baseline(1, llc.NonInclusive))
	const X = coher.Addr(0x3000)

	sc[0].load(X)
	sys.Cores[0].Step()
	sc[1].load(X)
	sys.Cores[1].Step() // X now shared {0,1}... core 0 granted E, so this forwards
	sc[1].store(X)
	sys.Cores[1].Step() // S->M upgrade, invalidating core 0
	st := sys.Engine.Stats()
	if st.Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", st.Upgrades)
	}
	if _, ok := sys.Cores[0].HasBlock(X); ok {
		t.Fatal("other sharer survived the upgrade")
	}
	if s1, _ := sys.Cores[1].HasBlock(X); s1 != coher.PrivModified {
		t.Fatalf("upgrader state = %v", s1)
	}
}

// TestFPSSTransitions walks one block through the fused->spilled->fused
// life cycle of §III-C2 under ZeroDEV with no sparse directory.
func TestFPSSTransitions(t *testing.T) {
	pre := config.TableI(microScale)
	sys, sc := microSystem(pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive))
	const X = coher.Addr(0x4000)
	l := sys.Engine.LLC()

	// First touch: E grant, entry fused with the freshly filled line.
	sc[0].load(X)
	sys.Cores[0].Step()
	v := l.Probe(X)
	if !v.Fused {
		t.Fatalf("entry not fused after E grant: %+v", v)
	}
	if e := l.Payload(v, v.DEWay).Entry; e.State != coher.DirOwned || e.Owner != 0 {
		t.Fatalf("fused entry = %v", e)
	}

	// Second core reads: M/E -> S transition spills the entry.
	sc[1].load(X)
	sys.Cores[1].Step()
	v = l.Probe(X)
	if v.Fused || !v.HasDE() || !v.HasData() {
		t.Fatalf("entry not spilled after sharing: %+v", v)
	}
	if e := l.Payload(v, v.DEWay).Entry; e.State != coher.DirShared || e.Sharers.Count() != 2 {
		t.Fatalf("spilled entry = %v", e)
	}

	// Upgrade: S -> M fuses again, freeing the spilled line.
	sc[1].store(X)
	sys.Cores[1].Step()
	v = l.Probe(X)
	if !v.Fused {
		t.Fatalf("entry not re-fused after upgrade: %+v", v)
	}
	st := sys.Engine.Stats()
	if st.DEFuseToSpill != 1 || st.DESpillToFuse != 1 {
		t.Fatalf("transition counters: fuse->spill=%d spill->fuse=%d", st.DEFuseToSpill, st.DESpillToFuse)
	}
	if err := sys.Engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEvictionFreesFusedEntry checks that the last holder's eviction
// notice reconstructs a fused line back into a plain data block.
func TestEvictionFreesFusedEntry(t *testing.T) {
	pre := config.TableI(microScale)
	sys, sc := microSystem(pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive))
	l := sys.Engine.LLC()
	const X = coher.Addr(0x5000)

	sc[0].load(X)
	sys.Cores[0].Step()
	if !l.Probe(X).Fused {
		t.Fatal("setup: entry not fused")
	}
	// Conflict-evict X from core 0's private L2 (same L2 set: stride by
	// L2 sets).
	l2Sets := pre.CPU.L2Bytes / 64 / pre.CPU.L2Ways
	for i := 1; i <= pre.CPU.L2Ways; i++ {
		sc[0].load(X + coher.Addr(i*l2Sets))
		sys.Cores[0].Step()
	}
	if _, ok := sys.Cores[0].HasBlock(X); ok {
		t.Fatal("setup: X still cached")
	}
	v := l.Probe(X)
	if v.Fused || v.HasDE() {
		t.Fatalf("entry must be freed after the PutE notice: %+v", v)
	}
	if !v.HasData() {
		t.Fatal("fused line must revert to a data block (reconstructed from PutE low bits)")
	}
	if err := sys.Engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSpillAllPenaltyCounted(t *testing.T) {
	pre := config.TableI(microScale)
	sys, sc := microSystem(pre.ZeroDEV(0, core.SpillAll, llc.DataLRU, llc.NonInclusive))
	const X = coher.Addr(0x6000)

	sc[0].load(X)
	sys.Cores[0].Step()
	sc[1].load(X)
	sys.Cores[1].Step() // forward; X becomes shared, entry spilled
	sc[2].load(X)
	sys.Cores[2].Step() // read served by LLC with a spilled entry: penalty
	if got := sys.Engine.Stats().SpillAllExtraDataReads; got == 0 {
		t.Fatal("SpillAll critical-path penalty not recorded")
	}
}

func TestFuseAllSharedReadForwards(t *testing.T) {
	pre := config.TableI(microScale)
	sys, sc := microSystem(pre.ZeroDEV(0, core.FuseAll, llc.DataLRU, llc.NonInclusive))
	const X = coher.Addr(0x7000)

	sc[0].load(X)
	sys.Cores[0].Step()
	sc[1].load(X)
	sys.Cores[1].Step() // downgrade to S; FuseAll keeps the entry fused (Fig. 11c)
	v := sys.Engine.LLC().Probe(X)
	if !v.Fused {
		t.Fatalf("FuseAll must keep shared entries fused: %+v", v)
	}
	before := sys.Engine.Stats().Forwards3Hop
	sc[2].load(X)
	sys.Cores[2].Step() // the fused block part is corrupted: read forwards to a sharer
	if got := sys.Engine.Stats().Forwards3Hop - before; got != 1 {
		t.Fatalf("FuseAll shared read must forward (got %d extra forwards)", got)
	}
}

// TestWorkloadDrivenDeterminism pins end-to-end determinism: identical
// configurations and seeds produce identical cycle counts and stats.
func TestWorkloadDrivenDeterminism(t *testing.T) {
	pre := config.TableI(32)
	run := func() (uint64, uint64) {
		spec := pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
		sys := core.NewSystem(spec, workload.Threads(workload.MustGet("dedup"), spec.Cores, 5000, 32, 9))
		cyc := sys.Run()
		return uint64(cyc), sys.TotalL2Misses()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", c1, m1, c2, m2)
	}
}
