package core_test

import (
	"fmt"
	"testing"

	"repro/internal/coher"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/directory"
	"repro/internal/dram"
	"repro/internal/llc"
	"repro/internal/noc"
	"repro/internal/sim"
)

// Model checking (lite): on a deliberately tiny system — single-set
// private caches and a single-set four-way LLC, so every operation can
// trigger evictions, spills, WB_DEs, and corrupted-block recoveries —
// exhaustively enumerate every sequence of (core, address, op) steps up
// to a fixed depth and check the full invariant set after every single
// step. The engine is deterministic, so the op sequence fully
// determines the reachable state; this covers every protocol
// interleaving the synchronous model can express at this depth.

// tinySpec builds the smallest legal system: 2-way single-set L1/L2,
// one LLC bank with one 4-way set.
func tinySpec(dir func() directory.Directory, zerodev bool, pol core.DEPolicy, repl llc.Repl, mode llc.Mode) core.SystemSpec {
	return core.SystemSpec{
		Cores: 2,
		CPU: cpu.Params{
			L1Bytes: 2 * 64, L1Ways: 2,
			L2Bytes: 2 * 64, L2Ways: 2,
			IssueWidth:  4,
			L1HitCycles: 1, L2HitCycles: 10,
			LoadMLP: 2, StoreMLP: 4,
		},
		LLCBytes: 4 * 64, LLCWays: 4, LLCBanks: 1,
		Mode: mode, Repl: repl,
		Dir:     dir,
		ZeroDEV: zerodev,
		Policy:  pol,
		DRAM:    dram.DDR3_2133(1),
		NoC:     noc.DefaultParams(),
		Uncore:  core.DefaultParams(2),
	}
}

type modelOp struct {
	core  int
	store bool
	addr  coher.Addr
}

// runModelSequence replays one op sequence, checking invariants after
// every step; it returns an error describing the failing prefix.
func runModelSequence(spec core.SystemSpec, ops []modelOp) error {
	sys, scripts := microSystem(spec)
	for i, op := range ops {
		if op.store {
			scripts[op.core].store(op.addr)
		} else {
			scripts[op.core].load(op.addr)
		}
		sys.Cores[op.core].Step()
		if err := sys.Engine.CheckInvariants(); err != nil {
			return fmt.Errorf("step %d (%+v): %w", i, ops[:i+1], err)
		}
		if spec.ZeroDEV && sys.Engine.Stats().DEVs != 0 {
			return fmt.Errorf("step %d (%+v): DEVs under ZeroDEV", i, ops[:i+1])
		}
	}
	return nil
}

func modelConfigs() map[string]core.SystemSpec {
	return map[string]core.SystemSpec{
		"baseline-tinydir": tinySpec(func() directory.Directory {
			return directory.MustTraditional(2, 2) // one 2-way set: constant conflicts
		}, false, 0, llc.LRU, llc.NonInclusive),
		"zerodev-fpss-nodir": tinySpec(func() directory.Directory {
			return directory.NoDir{}
		}, true, core.FPSS, llc.DataLRU, llc.NonInclusive),
		"zerodev-fuseall-lru": tinySpec(func() directory.Directory {
			return directory.NoDir{}
		}, true, core.FuseAll, llc.LRU, llc.NonInclusive),
		"zerodev-spillall-incl": tinySpec(func() directory.Directory {
			return directory.NoDir{}
		}, true, core.SpillAll, llc.DataLRU, llc.Inclusive),
	}
}

// TestModelExhaustive enumerates all 8^depth sequences over the alphabet
// {core0,core1} x {A,B} x {load,store} with addresses chosen to collide
// in every structure.
func TestModelExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// A and B map to the same (single) L2 set and the same LLC set; C
	// extends pressure past the LLC ways in the random test below.
	addrs := []coher.Addr{0x40, 0x42}
	var alphabet []modelOp
	for c := 0; c < 2; c++ {
		for _, a := range addrs {
			alphabet = append(alphabet, modelOp{c, false, a}, modelOp{c, true, a})
		}
	}
	const depth = 5
	for name, spec := range modelConfigs() {
		t.Run(name, func(t *testing.T) {
			n := len(alphabet)
			total := 1
			for i := 0; i < depth; i++ {
				total *= n
			}
			for seq := 0; seq < total; seq++ {
				ops := make([]modelOp, depth)
				v := seq
				for i := range ops {
					ops[i] = alphabet[v%n]
					v /= n
				}
				if err := runModelSequence(spec, ops); err != nil {
					t.Fatal(err)
				}
			}
			t.Logf("checked %d sequences of depth %d", total, depth)
		})
	}
}

// TestModelRandomDeep samples long random sequences over a wider
// address alphabet (enough distinct blocks to overflow the tiny LLC and
// force DE evictions to memory under ZeroDEV).
func TestModelRandomDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rng := sim.NewRNG(0xC0FFEE)
	addrs := []coher.Addr{0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47}
	const depth, trials = 24, 300
	for name, spec := range modelConfigs() {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				ops := make([]modelOp, depth)
				for i := range ops {
					ops[i] = modelOp{
						core:  rng.Intn(2),
						store: rng.Bool(0.4),
						addr:  addrs[rng.Intn(len(addrs))],
					}
				}
				if err := runModelSequence(spec, ops); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
