package core

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/coher"
	"repro/internal/llc"
	"repro/internal/sim"
)

// Protocol is the pluggable coherence-backend seam: the
// directory/LLC-housing strategy factored out of the request flows, in
// the coh_policy style — the policy object is distinct from the cache
// structures (directory, LLC) it programs. Read/Write/Upgrade/Evict
// stay backend-independent; everything that differs between ZeroDEV and
// its competitors funnels through these five hooks. Implementations
// hold the engine and are constructed by the backend.ID carried in
// Params; they are not safe for concurrent use.
type Protocol interface {
	// Backend identifies the implementation in the backend registry.
	Backend() backend.ID

	// StoreDE writes the live entry for addr wherever this backend
	// houses it, creating housing when it lives nowhere on the socket
	// (the storeDEView contract: v is the caller's current view of addr
	// when haveView, Protect(addr) held; after/known describe addr's
	// post-housing view).
	StoreDE(t sim.Cycle, addr coher.Addr, ent coher.Entry, v llc.View, haveView bool) (after llc.View, known bool)

	// EvictNoDE handles a core eviction notice for a block with no
	// directory entry on the socket. Only backends that can lose the
	// entry to home memory (WB_DE) have a real flow here; the rest
	// treat it as a protocol bug.
	EvictNoDE(t sim.Cycle, c coher.CoreID, addr coher.Addr, state coher.PrivState)

	// LastHolderGone runs when the socket's last private copy leaves,
	// immediately before the entry is freed (the FuseAll last-sharer
	// low-bit retrieval hooks here).
	LastHolderGone(t sim.Cycle, addr coher.Addr, state coher.PrivState, v llc.View)

	// Admit is the allocation-admission hook, consulted at request
	// entry when no entry exists on the socket (an allocation is
	// coming). It returns extra latency charged to the request — the
	// phase-priority NACK/retry ladder; zero for every other backend.
	// Engines only consult it when the backend registers interest, so
	// the common backends pay nothing on the hot path.
	Admit(t sim.Cycle, addr coher.Addr) sim.Cycle

	// CheckHoused validates one LLC-housed entry against the backend's
	// housing invariants (FPSS form rules, DLS fused-only housing).
	// Backends that never house entries in the LLC report any housed
	// entry as a violation.
	CheckHoused(addr coher.Addr, fused bool, ent coher.Entry) error
}

// newProtocol builds the protocol object for the engine's backend.
// Structural requirements (directory flavor, LLC mode) are validated
// here so a mis-assembled spec fails at construction, not mid-run.
func newProtocol(e *Engine, id backend.ID) Protocol {
	switch id {
	case backend.ZeroDEV:
		return &zerodevProtocol{e: e}
	case backend.SparseMESI:
		return &sparseMESIProtocol{e: e}
	case backend.DLS:
		if e.llc.Mode() != llc.Inclusive {
			panic("core: the DLS backend requires an inclusive LLC (in-tag tracking forces inclusion)")
		}
		if _, cap := e.dir.Occupancy(); cap != 0 {
			panic("core: the DLS backend is directoryless; assemble it with directory.NoDir")
		}
		return &dlsProtocol{e: e}
	case backend.PhasePriority:
		cd, ok := e.dir.(ConflictDirectory)
		if !ok {
			panic("core: the phase-priority backend needs a directory with SetFull/EvictVictim (directory.Traditional)")
		}
		return &phasePriorityProtocol{e: e, dir: cd}
	}
	panic(fmt.Sprintf("core: no protocol implementation for backend %q", id))
}

// --- zerodev ----------------------------------------------------------------

// zerodevProtocol is the paper's proposal: entries live in the
// replacement-disabled sparse directory when it has room and are housed
// in the LLC otherwise (spilled or fused per the DEPolicy), leaving the
// socket only via the WB_DE flow into home memory.
type zerodevProtocol struct {
	e *Engine
}

func (z *zerodevProtocol) Backend() backend.ID { return backend.ZeroDEV }

func (z *zerodevProtocol) StoreDE(t sim.Cycle, addr coher.Addr, ent coher.Entry, v llc.View, haveView bool) (llc.View, bool) {
	e := z.e
	if _, ok := e.dir.Lookup(addr); ok {
		// In-place update. Traditional directories never evict here, but
		// SecDir (private-partition conflicts while reconciling holders)
		// and MgD (grain conversions) can. Victims are other addresses, so
		// v stays current (addr's lines are protected).
		victims, housed := e.dir.Store(addr, ent)
		if !housed {
			panic("core: in-place directory update refused")
		}
		for _, w := range victims {
			if w.Entry.Live() {
				e.stats.DEDisplacedToLLC++
				e.houseInLLC(t, w.Addr, w.Entry)
			}
		}
		return v, haveView
	}
	if !haveView {
		v = e.llc.Probe(addr)
	}
	if v.HasDE() {
		return e.updateLLCDE(t, addr, ent, v)
	}
	// New housing: the sparse directory first.
	victims, housed := e.dir.Store(addr, ent)
	if housed {
		// §III-C4 ablation: with a replacement-enabled sparse
		// directory under ZeroDEV, a displaced entry moves to the LLC
		// instead of generating DEVs — but it has now disturbed both
		// structures, which is why the paper prefers the
		// replacement-disabled design.
		for _, w := range victims {
			if w.Entry.Live() {
				e.stats.DEDisplacedToLLC++
				e.houseInLLC(t, w.Addr, w.Entry)
			}
		}
		return v, true
	}
	return e.houseInLLCView(t, addr, ent, v)
}

// EvictNoDE: the entry lives in the corrupted home block. Fig. 16.
func (z *zerodevProtocol) EvictNoDE(t sim.Cycle, c coher.CoreID, addr coher.Addr, state coher.PrivState) {
	e := z.e
	if state == coher.PrivModified {
		// Full cache block: the evicting core is the system-wide owner;
		// execute the baseline writeback-to-home flow, restoring the
		// corrupted memory copy. If the socket now holds nothing, the
		// socket-level directory learns about it too.
		e.home.WriteBack(t, e.p.Socket, addr)
		if !e.llc.Probe(addr).HasData() {
			e.socketEvictNotice(t, addr)
		}
		return
	}
	// GET_DE: fetch the corrupted block, extract this socket's entry,
	// drop the evicting core, and write the updated entry back.
	e.stats.GetDEFlows++
	e.record(coher.MsgGetDE)
	de, _, ok := e.home.GetDE(t, e.p.Socket, addr)
	if !ok {
		panic(fmt.Sprintf("core: eviction notice for untracked block %#x", uint64(addr)))
	}
	// Wide sockets: the segment may decode imprecisely. The evicting
	// core has already dropped its copy, so reconciliation may return a
	// dead entry — that IS the last-holder-gone case.
	de = e.reconcileImprecise(addr, de)
	freed := !de.Live() || de.RemoveHolder(c)
	if !freed {
		e.home.PutDE(t, e.p.Socket, addr, de)
		return
	}
	e.home.PutDE(t, e.p.Socket, addr, coher.Entry{})
	if e.llc.Probe(addr).HasData() {
		// The socket still holds the block in its LLC.
		return
	}
	e.socketEvictNotice(t, addr)
}

func (z *zerodevProtocol) LastHolderGone(t sim.Cycle, addr coher.Addr, state coher.PrivState, v llc.View) {
	e := z.e
	if v.Fused && e.p.Policy == FuseAll && state == coher.PrivShared {
		// FuseAll: the home retrieves the low 4+N bits from the last
		// sharer's eviction buffer to reconstruct the fused block
		// (§III-C3).
		e.stats.LastSharerRetrievals++
		e.record(coher.MsgLastSharerAck)
	}
}

func (z *zerodevProtocol) Admit(sim.Cycle, coher.Addr) sim.Cycle { return 0 }

func (z *zerodevProtocol) CheckHoused(addr coher.Addr, fused bool, ent coher.Entry) error {
	e := z.e
	if e.p.Policy != FPSS {
		return nil
	}
	if fused && ent.State != coher.DirOwned {
		return fmt.Errorf("FPSS fused entry for %#x in state %v", uint64(addr), ent.State)
	}
	if !fused && ent.State == coher.DirOwned {
		if v := e.llc.Probe(addr); v.HasData() && !v.Fused && e.llc.Mode() != llc.EPD {
			return fmt.Errorf("FPSS spilled M/E entry for %#x with co-resident block", uint64(addr))
		}
	}
	return nil
}

// --- sparsemesi -------------------------------------------------------------

// sparseMESIProtocol is the classic bounded sparse-directory baseline:
// every entry lives in the NRU directory, and a conflict evicts a live
// entry whose tracked copies become DEVs.
type sparseMESIProtocol struct {
	e *Engine
}

func (s *sparseMESIProtocol) Backend() backend.ID { return backend.SparseMESI }

func (s *sparseMESIProtocol) StoreDE(t sim.Cycle, addr coher.Addr, ent coher.Entry, v llc.View, haveView bool) (llc.View, bool) {
	e := s.e
	if _, ok := e.dir.Lookup(addr); ok {
		victims, housed := e.dir.Store(addr, ent)
		if !housed {
			panic("core: in-place directory update refused")
		}
		e.processDEVs(t, victims)
		return v, haveView
	}
	victims, housed := e.dir.Store(addr, ent)
	if !housed {
		panic("core: baseline directory refused an allocation")
	}
	e.processDEVs(t, victims)
	return v, haveView
}

func (s *sparseMESIProtocol) EvictNoDE(t sim.Cycle, c coher.CoreID, addr coher.Addr, state coher.PrivState) {
	panic(fmt.Sprintf("core: baseline lost the directory entry for %#x", uint64(addr)))
}

func (s *sparseMESIProtocol) LastHolderGone(sim.Cycle, coher.Addr, coher.PrivState, llc.View) {}

func (s *sparseMESIProtocol) Admit(sim.Cycle, coher.Addr) sim.Cycle { return 0 }

func (s *sparseMESIProtocol) CheckHoused(addr coher.Addr, fused bool, ent coher.Entry) error {
	return fmt.Errorf("sparse-MESI housed a directory entry in the LLC for %#x", uint64(addr))
}
