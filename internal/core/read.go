package core

import (
	"fmt"

	"repro/internal/coher"
	"repro/internal/llc"
	"repro/internal/sim"
)

// Read handles a GetS from core c: a data read or (code=true) an
// instruction fetch. It returns the completion time and the private
// state granted (S, or E when no other copies exist; code blocks are
// always granted S to accelerate code sharing, §III-A).
func (e *Engine) Read(t sim.Cycle, c coher.CoreID, addr coher.Addr, code bool) (done sim.Cycle, granted coher.PrivState) {
	e.stats.Reads++
	e.llc.Protect(addr)
	defer e.llc.Unprotect()
	e.record(coher.MsgGetS)
	bank := e.bankOf(addr)
	t1 := t + e.mesh.CoreToBank(c, bank) + e.p.QueueCycles + e.p.TagCycles
	v := e.llc.Probe(addr)
	v = e.maybeCorruptDE(t1, addr, v)
	ent, loc := e.findDE(addr, v)
	if e.hasAdmit && loc == locNone {
		charge := e.proto.Admit(t1, addr)
		if e.faultHooks != nil {
			if perturbed := e.faultHooks.AdmitFault(t1, addr, charge); perturbed != charge {
				e.stats.FaultNACKStorms++
				charge = perturbed
			}
		}
		t1 += charge
	}

	fwdBefore, memBefore := e.stats.Forwards3Hop, e.stats.LLCMisses
	switch {
	case loc != locNone && ent.State == coher.DirOwned:
		done, granted = e.readFromOwner(t1, c, addr, ent)
	case loc != locNone && ent.State == coher.DirShared:
		done, granted = e.readShared(t1, c, addr, ent, loc, v)
	default:
		done, granted = e.readNoDE(t1, c, addr, code, v)
	}
	// Classify the serving path for the latency breakdown: forwarded
	// (three-hop) beats memory beats LLC hit when several fired along a
	// corrupted-recovery chain.
	lat := uint64(done - t)
	switch {
	case e.stats.Forwards3Hop > fwdBefore:
		e.stats.LatReadForward += lat
		e.stats.NReadForward++
	case e.stats.LLCMisses > memBefore:
		e.stats.LatReadMemory += lat
		e.stats.NReadMemory++
	default:
		e.stats.LatReadLLCHit += lat
		e.stats.NReadLLCHit++
	}
	return done, granted
}

// readFromOwner serves a read whose block is owned by another core: the
// request is forwarded and the owner responds directly to the requester
// (three-hop path, §III-A).
func (e *Engine) readFromOwner(t1 sim.Cycle, c coher.CoreID, addr coher.Addr, ent coher.Entry) (sim.Cycle, coher.PrivState) {
	owner := ent.Owner
	if owner == c {
		panic(fmt.Sprintf("core: core %d read-missed a block it owns (%#x)", c, uint64(addr)))
	}
	bank := e.bankOf(addr)
	e.record(coher.MsgFwd)
	e.stats.Forwards3Hop++
	t2 := t1 + e.mesh.BankToCore(bank, owner) + e.p.OwnerLookupCycles
	prev := e.cores[owner].Downgrade(addr)
	if prev != coher.PrivModified && prev != coher.PrivExclusive {
		panic(fmt.Sprintf("core: directory owner %d holds %#x in %v", owner, uint64(addr), prev))
	}
	e.record(coher.MsgData)      // owner → requester
	e.record(coher.MsgBusyClear) // owner → home (carries low bits under ZeroDEV)
	done := t2 + e.mesh.CoreToCore(owner, c)

	// Data movement accompanying the downgrade: a modified owner writes
	// the block back to the home LLC; an exclusive owner's data is clean,
	// but EPD allocates the now-shared block in the LLC to accelerate
	// future sharing (§III-E).
	if prev == coher.PrivModified {
		e.record(coher.MsgPutM)
		e.fillLLCData(t1, addr, true)
	} else if e.llc.Mode() == llc.EPD {
		e.fillLLCData(t1, addr, false)
	}

	var next coher.Entry
	next.State = coher.DirShared
	next.Sharers.Add(owner)
	next.Sharers.Add(c)
	e.storeDE(t1, addr, next)
	e.touchLLC(addr)
	return done, coher.PrivShared
}

// readShared serves a read of a block in the shared state: from the LLC
// when a usable data line exists, otherwise forwarded to an elected
// sharer.
func (e *Engine) readShared(t1 sim.Cycle, c coher.CoreID, addr coher.Addr, ent coher.Entry, loc deLoc, v llc.View) (sim.Cycle, coher.PrivState) {
	bank := e.bankOf(addr)
	next := ent
	next.Sharers.Add(c)

	if e.usableData(v) {
		// The LLC can serve the read. Under SpillAll a co-resident spilled
		// entry is read out of the data array first, lengthening the
		// critical path by one data-array access; FPSS reads the block
		// first and updates the entry off the critical path (§III-C2).
		lat := e.p.DataCycles
		if loc == locLLC && e.spillAllPenalty {
			lat += e.p.DataCycles
			e.stats.SpillAllExtraDataReads++
		}
		e.stats.LLCDataHits++
		e.record(coher.MsgData)
		done := t1 + lat + e.mesh.BankToCore(bank, c)
		e.storeDETouch(t1, addr, next, v)
		return done, coher.PrivShared
	}

	// No usable LLC data: either the block is absent (directory hit, LLC
	// miss) or it is a FuseAll fused line whose block part is corrupted
	// (§III-C3). Forward to an elected sharer.
	e.stats.LLCMisses++
	f := ent.Sharers.First()
	if f == c {
		panic("core: requester already recorded as a sharer on a miss")
	}
	e.record(coher.MsgFwd)
	e.record(coher.MsgData)
	e.stats.Forwards3Hop++
	done := t1 + e.mesh.BankToCore(bank, f) + e.p.OwnerLookupCycles + e.mesh.CoreToCore(f, c)
	e.storeDETouch(t1, addr, next, v)
	return done, coher.PrivShared
}

// readNoDE serves a read with no directory entry on the socket: an
// uncore hit on the LLC block (case iii of §III-D2), a socket miss
// (case iv), or the rare corrupted fallbacks.
func (e *Engine) readNoDE(t1 sim.Cycle, c coher.CoreID, addr coher.Addr, code bool, v llc.View) (sim.Cycle, coher.PrivState) {
	bank := e.bankOf(addr)

	if e.usableData(v) {
		// Case iii. The LLC replacement extensions guarantee no holders
		// exist in the socket (sub-case iiia); under a policy without that
		// guarantee the home block may be corrupted with our segment live
		// (sub-case iiib), detected through the socket directory.
		if e.usesHomeSegments && e.home.Corrupted(addr) {
			if de, d0, ok := e.home.GetDE(t1, e.p.Socket, addr); ok {
				e.home.PutDE(t1, e.p.Socket, addr, coher.Entry{}) // segment consumed
				e.stats.CorruptedFetches++
				e.storeDE(d0, addr, e.reconcileImprecise(addr, de))
				return e.redispatchRead(d0, c, addr, code)
			}
		}
		e.stats.LLCDataHits++
		e.record(coher.MsgData)
		done := t1 + e.p.DataCycles + e.mesh.BankToCore(bank, c)
		granted := coher.PrivExclusive
		if code || e.home.SharedElsewhere(e.p.Socket, addr) {
			granted = coher.PrivShared
		}
		if granted == coher.PrivExclusive && e.llc.Mode() == llc.EPD {
			// The block becomes temporarily private: EPD deallocates it.
			e.llc.InvalidateData(v)
			v.DataWay = -1
		}
		e.storeDETouch(t1, addr, e.freshEntry(c, granted), v)
		return done, granted
	}

	// Case iv: socket miss.
	e.stats.LLCMisses++
	res := e.home.FetchBlock(t1, e.p.Socket, addr, false)
	if res.DE != nil {
		// The home block was corrupted and carried our directory entry;
		// re-house it and finish as a directory hit with an LLC data miss.
		e.stats.CorruptedFetches++
		e.stats.CorruptedReadMisses++
		e.storeDE(res.Done, addr, e.reconcileImprecise(addr, *res.DE))
		return e.redispatchRead(res.Done, c, addr, code)
	}
	granted := coher.PrivExclusive
	if code || res.SharedGrant {
		granted = coher.PrivShared
	}
	// Demand fills from memory allocate in the LLC (§III-A), except under
	// EPD where blocks granted in E stay exclusive to the private caches.
	if e.llc.Mode() != llc.EPD || granted == coher.PrivShared {
		e.fillLLCData(t1, addr, false)
	}
	e.record(coher.MsgData)
	done := res.Done + e.mesh.BankToCore(bank, c)
	e.storeDE(t1, addr, e.freshEntry(c, granted))
	e.touchLLC(addr)
	return done, granted
}

// redispatchRead re-runs the directory-hit paths after a directory entry
// was recovered from a corrupted home block.
func (e *Engine) redispatchRead(t sim.Cycle, c coher.CoreID, addr coher.Addr, code bool) (sim.Cycle, coher.PrivState) {
	v := e.llc.Probe(addr)
	ent, loc := e.findDE(addr, v)
	switch {
	case loc != locNone && ent.State == coher.DirOwned:
		return e.readFromOwner(t, c, addr, ent)
	case loc != locNone && ent.State == coher.DirShared:
		return e.readShared(t, c, addr, ent, loc, v)
	default:
		panic("core: recovered directory entry vanished")
	}
}

// freshEntry builds the directory entry for a block newly granted to c.
func (e *Engine) freshEntry(c coher.CoreID, granted coher.PrivState) coher.Entry {
	var ent coher.Entry
	if granted == coher.PrivShared {
		ent.State = coher.DirShared
		ent.Sharers.Add(c)
	} else {
		ent.State = coher.DirOwned
		ent.Owner = c
	}
	return ent
}
