package core

import (
	"repro/internal/coher"
	"repro/internal/llc"
	"repro/internal/sim"
)

// This file implements the socket-facing operations a multi-socket home
// agent invokes on a remote socket's engine: serving forwarded requests
// (Fig. 15 steps 5-7) and invalidating a socket's copies on exclusive
// requests from elsewhere.

// ServeForwarded handles an inter-socket forwarded request arriving at
// this socket (socket F in Fig. 15). withDE supplies the directory
// entry extracted from home memory on the DENF_NACK retry path; when
// nil the socket must locate the entry itself. exclusive distinguishes
// GetX-style forwards (invalidate everything here) from GetS-style
// (downgrade to shared).
//
// found=false reproduces the DENF_NACK case: the socket has neither the
// directory entry nor (in this synchronous model) an eviction-buffer
// copy. dirty reports whether the block's latest value was modified
// here.
func (e *Engine) ServeForwarded(t sim.Cycle, addr coher.Addr, exclusive bool, withDE *coher.Entry) (found, dirty bool) {
	v := e.llc.Probe(addr)
	ent, loc := e.findDE(addr, v)
	if loc == locNone && withDE == nil {
		if _, live := e.home.Segment(e.p.Socket, addr); live {
			// Step 7: the entry lives in the corrupted home block; NACK
			// so home re-sends the request with the entry (steps 8-11).
			e.record(coher.MsgDENFNack)
			return false, false
		}
		// No core copies exist here; the socket's LLC may still hold the
		// block and can serve the request directly.
		if v.HasData() && !v.Fused {
			if exclusive {
				d := e.llc.Payload(v, v.DataWay).Dirty
				e.llc.InvalidateData(v)
				return true, d
			}
			return true, false
		}
		e.record(coher.MsgDENFNack)
		return false, false
	}
	if loc == locNone {
		ent = e.reconcileImprecise(addr, *withDE)
	}
	if exclusive {
		return true, e.invalidateLocal(t, addr, ent, true, loc, v)
	}
	// GetS-style: downgrade the local owner (if any) so the block
	// becomes shared system-wide; sharers and LLC lines stay.
	if ent.State == coher.DirOwned {
		prev := e.cores[ent.Owner].Downgrade(addr)
		dirty = prev == coher.PrivModified
		var next coher.Entry
		next.State = coher.DirShared
		next.Sharers.Add(ent.Owner)
		if dirty {
			e.fillLLCData(t, addr, true)
		}
		e.storeDE(t, addr, next)
		return true, dirty
	}
	if loc == locNone {
		// The entry arrived from home memory (DENF_NACK retry); the
		// socket concludes the request and re-houses the entry on chip,
		// and home clears the consumed segment.
		e.storeDE(t, addr, ent)
	}
	return true, false
}

// InvalidateSocketCopies removes every copy of addr from this socket —
// private caches, LLC data lines, and the housed directory entry —
// serving an exclusive request from another socket. It reports whether
// a modified copy existed (the requester receives the dirty data).
// Invalidations counted here are demand invalidations, not DEVs.
func (e *Engine) InvalidateSocketCopies(t sim.Cycle, addr coher.Addr) (dirty bool) {
	v := e.llc.Probe(addr)
	ent, loc := e.findDE(addr, v)
	return e.invalidateLocal(t, addr, ent, loc != locNone, loc, v)
}

// InvalidateSocketCopiesWithDE is InvalidateSocketCopies for the case
// where the socket's directory entry was extracted from home memory
// (the copies exist but their tracking lives off-chip).
func (e *Engine) InvalidateSocketCopiesWithDE(t sim.Cycle, addr coher.Addr, ent coher.Entry) (dirty bool) {
	v := e.llc.Probe(addr)
	_, loc := e.findDE(addr, v)
	ent = e.reconcileImprecise(addr, ent)
	return e.invalidateLocal(t, addr, ent, true, loc, v)
}

func (e *Engine) invalidateLocal(t sim.Cycle, addr coher.Addr, ent coher.Entry, known bool, loc deLoc, v llc.View) (dirty bool) {
	if known && ent.Live() {
		ent.Holders().ForEach(func(h coher.CoreID) {
			prev := e.cores[h].Invalidate(addr)
			if prev == coher.PrivInvalid {
				panic("core: socket invalidation of an untracked copy")
			}
			e.stats.DemandInvals++
			e.record(coher.MsgInv)
			e.record(coher.MsgInvAck)
			if prev == coher.PrivModified {
				dirty = true
			}
		})
	}
	switch loc {
	case locDir:
		e.dir.Free(addr)
	case locLLC:
		e.llc.DropDE(e.llc.Probe(addr))
		e.stats.DEFreedInLLC++
	}
	if v2 := e.llc.Probe(addr); v2.HasData() && !v2.Fused {
		if e.llc.Payload(v2, v2.DataWay).Dirty {
			dirty = true
		}
		e.llc.InvalidateData(v2)
	}
	return dirty
}

// HasAnyCopy reports whether the socket holds the block anywhere
// (private caches via directory state, or the LLC), used by invariant
// checks in the socket layer.
func (e *Engine) HasAnyCopy(addr coher.Addr) bool {
	v := e.llc.Probe(addr)
	if v.HasData() || v.HasDE() {
		return true
	}
	_, ok := e.dir.Lookup(addr)
	return ok
}
