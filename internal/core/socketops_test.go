package core_test

import (
	"testing"

	"repro/internal/coher"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
)

// Micro-tests for the socket-facing operations (Fig. 15 steps 5-7)
// exercised here through a single-socket system whose engine doubles as
// the forwarded-to socket F.

func TestServeForwardedDowngradesOwner(t *testing.T) {
	pre := config.TableI(microScale)
	sys, sc := microSystem(pre.Baseline(1, llc.NonInclusive))
	const X = coher.Addr(0xA000)

	sc[0].store(X)
	sys.Cores[0].Step()

	found, dirty := sys.Engine.ServeForwarded(1000, X, false, nil)
	if !found || !dirty {
		t.Fatalf("found=%v dirty=%v, want true/true (owner held M)", found, dirty)
	}
	if s0, _ := sys.Cores[0].HasBlock(X); s0 != coher.PrivShared {
		t.Fatalf("owner state after GetS forward = %v", s0)
	}
	// The downgrade deposited the dirty block in the LLC.
	if v := sys.Engine.LLC().Probe(X); !v.HasData() {
		t.Fatal("dirty downgrade must fill the LLC")
	}
	if err := sys.Engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestServeForwardedExclusiveWipesSocket(t *testing.T) {
	pre := config.TableI(microScale)
	sys, sc := microSystem(pre.Baseline(1, llc.NonInclusive))
	const X = coher.Addr(0xB000)

	sc[0].load(X)
	sys.Cores[0].Step()
	sc[1].load(X)
	sys.Cores[1].Step() // shared between cores 0 and 1

	found, _ := sys.Engine.ServeForwarded(2000, X, true, nil)
	if !found {
		t.Fatal("forward not served")
	}
	for c := 0; c < 2; c++ {
		if _, ok := sys.Cores[c].HasBlock(X); ok {
			t.Fatalf("core %d still holds the block after exclusive forward", c)
		}
	}
	if sys.Engine.HasAnyCopy(X) {
		t.Fatal("socket still holds a copy after exclusive forward")
	}
}

func TestServeForwardedLLCOnly(t *testing.T) {
	// The socket's cores hold nothing but the LLC has the block: the
	// forward is served from the LLC (the remote-LLC-hit path).
	pre := config.TableI(microScale)
	sys, sc := microSystem(pre.Baseline(1, llc.NonInclusive))
	const X = coher.Addr(0xC000)
	l2Sets := pre.CPU.L2Bytes / 64 / pre.CPU.L2Ways

	sc[0].store(X)
	sys.Cores[0].Step()
	// Conflict-evict X from core 0: the PutM leaves the dirty block in
	// the LLC with no directory entry.
	for i := 1; i <= pre.CPU.L2Ways; i++ {
		sc[0].load(X + coher.Addr(i*l2Sets))
		sys.Cores[0].Step()
	}
	if _, ok := sys.Cores[0].HasBlock(X); ok {
		t.Fatal("setup: X still in core 0")
	}
	found, _ := sys.Engine.ServeForwarded(5000, X, false, nil)
	if !found {
		t.Fatal("LLC-resident block must serve the forward")
	}
	// Exclusive variant invalidates the LLC line and reports its dirty
	// data.
	found, dirty := sys.Engine.ServeForwarded(6000, X, true, nil)
	if !found || !dirty {
		t.Fatalf("exclusive LLC-only serve: found=%v dirty=%v", found, dirty)
	}
	if sys.Engine.HasAnyCopy(X) {
		t.Fatal("LLC line must be gone after the exclusive serve")
	}
}

func TestServeForwardedNACKsWhenEmpty(t *testing.T) {
	pre := config.TableI(microScale)
	sys, _ := microSystem(pre.Baseline(1, llc.NonInclusive))
	found, _ := sys.Engine.ServeForwarded(100, 0xD000, false, nil)
	if found {
		t.Fatal("empty socket must DENF_NACK")
	}
}

func TestServeForwardedWithProvidedEntry(t *testing.T) {
	// The DENF_NACK retry: the entry arrives from home memory; the
	// socket concludes the request and re-houses the entry.
	pre := config.TableI(microScale)
	spec := pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
	sys, sc := microSystem(spec)
	const X = coher.Addr(0xE000)

	sc[0].store(X)
	sys.Cores[0].Step()
	// Strip the on-chip housing, simulating a WB_DE that home later
	// extracts: drop the fused entry directly.
	v := sys.Engine.LLC().Probe(X)
	if !v.Fused {
		t.Fatal("setup: entry not fused")
	}
	sys.Engine.LLC().DropDE(v)

	ent := coher.Entry{State: coher.DirOwned, Owner: 0}
	found, dirty := sys.Engine.ServeForwarded(3000, X, false, &ent)
	if !found || !dirty {
		t.Fatalf("retry with entry: found=%v dirty=%v", found, dirty)
	}
	// The updated (now shared) entry was re-housed on chip.
	if v2 := sys.Engine.LLC().Probe(X); !v2.HasDE() {
		t.Fatal("entry not re-housed after the retry")
	}
	if err := sys.Engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestImpreciseEntryReconciled(t *testing.T) {
	// Wide sockets can hand the engine a coarse-decoded home segment: a
	// DirShared superset marked Imprecise. Every home-DE ingress must
	// reconcile it against actual core state before acting — otherwise
	// invalidating a phantom sharer panics.
	pre := config.TableI(microScale)
	spec := pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
	sys, sc := microSystem(spec)
	const X = coher.Addr(0xF000)
	for c := 0; c < 3; c++ {
		sc[c].load(X)
		sys.Cores[c].Step()
	}
	v := sys.Engine.LLC().Probe(X)
	if !v.HasDE() {
		t.Fatal("setup: no housed entry")
	}
	sys.Engine.LLC().DropDE(v)

	// Superset {0..7} of the true sharers {0,1,2}.
	var ent coher.Entry
	ent.State = coher.DirShared
	for c := coher.CoreID(0); c < 8; c++ {
		ent.Sharers.Add(c)
	}
	ent.Imprecise = true
	sys.Engine.InvalidateSocketCopiesWithDE(1000, X, ent)
	st := sys.Engine.Stats()
	if st.ImpreciseReconciles != 1 {
		t.Fatalf("reconciles = %d, want 1", st.ImpreciseReconciles)
	}
	if st.ImpreciseDrops != 5 {
		t.Fatalf("dropped phantoms = %d, want 5", st.ImpreciseDrops)
	}
	if st.DemandInvals != 3 {
		t.Fatalf("demand invals = %d, want 3 (true sharers only)", st.DemandInvals)
	}
	for c := 0; c < 3; c++ {
		if _, ok := sys.Cores[c].HasBlock(X); ok {
			t.Fatalf("core %d still holds the block", c)
		}
	}
	if err := sys.Engine.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
