package core

// Stats aggregates the engine's protocol-level counters. Together with
// the per-core cpu.Stats, the interconnect traffic, and the DRAM
// counters, they form the metrics every experiment in the paper reports.
type Stats struct {
	// Request mix at the home banks.
	Reads, Writes, Upgrades, Evictions uint64

	// LLC behaviour for demand requests.
	LLCDataHits, LLCMisses uint64

	// Forwards3Hop counts requests served core-to-core (three-hop
	// critical path).
	Forwards3Hop uint64

	// Read-latency breakdown: cumulative cycles and event counts per
	// serving class, measured from the request's issue at the core to
	// data arrival. Directly quantifies the critical-path axis of the
	// paper's Fig. 12 design space.
	LatReadLLCHit, NReadLLCHit   uint64
	LatReadForward, NReadForward uint64
	LatReadMemory, NReadMemory   uint64

	// DemandInvals counts sharer invalidations caused by writes (GetX /
	// upgrades) — ordinary coherence, present in every design.
	DemandInvals uint64

	// DEVs counts directory eviction victims: private copies invalidated
	// because a directory entry was evicted. ZeroDEV's guarantee is that
	// this counter stays exactly zero.
	DEVs uint64

	// DEVDirtyRetrievals counts DEV invalidations that retrieved dirty
	// data from an owner into the LLC.
	DEVDirtyRetrievals uint64

	// InclusionInvals counts forced invalidations from inclusive-LLC
	// evictions (the residual 5% the paper reports for ZeroDEVIncl).
	InclusionInvals uint64

	// ZeroDEV directory-entry caching activity.
	// DEDisplacedToLLC counts entries moved from a replacement-enabled
	// sparse directory into the LLC (§III-C4 ablation; zero in the
	// standard replacement-disabled design).
	DEDisplacedToLLC       uint64
	DESpills, DEFuses      uint64
	DESpillToFuse          uint64 // S→M/E transitions converting a spill into a fuse
	DEFuseToSpill          uint64 // M/E→S transitions converting a fuse into a spill
	DEEvictionsToMemory    uint64 // WB_DE flows (LLC evicted a live entry)
	DEFreedInLLC           uint64 // entries that died while housed in the LLC
	GetDEFlows             uint64 // core evictions that needed GET_DE
	CorruptedFetches       uint64 // socket misses that extracted a DE from a corrupted block
	CorruptedReadMisses    uint64 // LLC read misses that touched corrupted home blocks
	SocketEvictNotices     uint64
	LastCopyRetrievals     uint64 // §III-D4: corrupted block restored from the evicting core
	LastSharerRetrievals   uint64 // FuseAll low-bit retrieval from the last sharer
	SpillAllExtraDataReads uint64 // SpillAll critical-path penalty events

	// Wide-socket home-segment compression activity (zero at ≤128
	// cores, where every segment stores a precise full map).
	// ImpreciseReconciles counts imprecise (coarse-compressed) entries
	// reconciled against actual core states on arrival from home
	// memory; ImpreciseDrops counts the superset members the
	// reconciliation removed — each one an invalidation of an
	// untracked copy the coarse format would otherwise have cost.
	ImpreciseReconciles uint64
	ImpreciseDrops      uint64

	// Alternative-backend activity (zero under zerodev and the sparse
	// baseline).
	// DLSLineFills counts LLC line fills forced by DLS's in-tag
	// tracking: creating an entry for a block not LLC-resident must
	// first bring the line in (the residency tax).
	DLSLineFills uint64
	// DirNACKs / DirRetries count phase-priority admission conflicts
	// and the retries they charge; PhaseEscalations counts conflicts
	// that exhausted the retry budget and forced a directory victim
	// (the backend's only DEV source).
	DirNACKs, DirRetries uint64
	PhaseEscalations     uint64

	// Fault-injection activity (internal/faults campaigns; zero in
	// ordinary experiments).
	FaultQuarantinedDEs uint64 // housed entries retired to home memory after a flip
	FaultForcedWBDEs    uint64 // DE-eviction-storm writebacks
	FaultInvalidations  uint64 // spurious whole-block invalidations
	FaultForcedDEVs     uint64 // directory-victim injections (real-DEV backends)
	FaultInclusionEvs   uint64 // forced inclusion evictions (inclusive LLCs)
	FaultForcedEvs      uint64 // eviction-pressure LLC victimizations
	FaultNACKStorms     uint64 // admission-latency perturbations (phase-priority)
}

// Add merges o into s.
func (s *Stats) Add(o *Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Upgrades += o.Upgrades
	s.Evictions += o.Evictions
	s.LLCDataHits += o.LLCDataHits
	s.LatReadLLCHit += o.LatReadLLCHit
	s.NReadLLCHit += o.NReadLLCHit
	s.LatReadForward += o.LatReadForward
	s.NReadForward += o.NReadForward
	s.LatReadMemory += o.LatReadMemory
	s.NReadMemory += o.NReadMemory
	s.LLCMisses += o.LLCMisses
	s.Forwards3Hop += o.Forwards3Hop
	s.DemandInvals += o.DemandInvals
	s.DEVs += o.DEVs
	s.DEVDirtyRetrievals += o.DEVDirtyRetrievals
	s.InclusionInvals += o.InclusionInvals
	s.DEDisplacedToLLC += o.DEDisplacedToLLC
	s.DESpills += o.DESpills
	s.DEFuses += o.DEFuses
	s.DESpillToFuse += o.DESpillToFuse
	s.DEFuseToSpill += o.DEFuseToSpill
	s.DEEvictionsToMemory += o.DEEvictionsToMemory
	s.DEFreedInLLC += o.DEFreedInLLC
	s.GetDEFlows += o.GetDEFlows
	s.CorruptedFetches += o.CorruptedFetches
	s.CorruptedReadMisses += o.CorruptedReadMisses
	s.SocketEvictNotices += o.SocketEvictNotices
	s.LastCopyRetrievals += o.LastCopyRetrievals
	s.LastSharerRetrievals += o.LastSharerRetrievals
	s.SpillAllExtraDataReads += o.SpillAllExtraDataReads
	s.ImpreciseReconciles += o.ImpreciseReconciles
	s.ImpreciseDrops += o.ImpreciseDrops
	s.DLSLineFills += o.DLSLineFills
	s.DirNACKs += o.DirNACKs
	s.DirRetries += o.DirRetries
	s.PhaseEscalations += o.PhaseEscalations
	s.FaultQuarantinedDEs += o.FaultQuarantinedDEs
	s.FaultForcedWBDEs += o.FaultForcedWBDEs
	s.FaultInvalidations += o.FaultInvalidations
	s.FaultForcedDEVs += o.FaultForcedDEVs
	s.FaultInclusionEvs += o.FaultInclusionEvs
	s.FaultForcedEvs += o.FaultForcedEvs
	s.FaultNACKStorms += o.FaultNACKStorms
}
