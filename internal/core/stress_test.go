package core_test

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestProtocolStress sweeps a randomized cross product of ZeroDEV
// configurations, workloads, and seeds at punishing scales (caches far
// smaller than footprints, so every corner flow fires) and checks the
// full invariant set plus the zero-DEV guarantee on each.
func TestProtocolStress(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rng := sim.NewRNG(0xDEADBEEF)
	policies := []core.DEPolicy{core.SpillAll, core.FPSS, core.FuseAll}
	repls := []llc.Repl{llc.LRU, llc.SpLRU, llc.DataLRU}
	modes := []llc.Mode{llc.NonInclusive, llc.EPD, llc.Inclusive}
	ratios := []float64{0, 1.0 / 32, 1.0 / 8, 1}
	apps := []string{"canneal", "freqmine", "streamcluster", "ocean_cp", "mcf", "TPC-C"}
	scales := []int{32, 64}

	const trials = 36
	for i := 0; i < trials; i++ {
		pol := policies[rng.Intn(len(policies))]
		repl := repls[rng.Intn(len(repls))]
		mode := modes[rng.Intn(len(modes))]
		ratio := ratios[rng.Intn(len(ratios))]
		app := apps[rng.Intn(len(apps))]
		scale := scales[rng.Intn(len(scales))]
		seed := rng.Uint64()
		name := fmt.Sprintf("%s/%s/%s/r=%v/%s/s=%d", pol, repl, mode, ratio, app, scale)

		t.Run(name, func(t *testing.T) {
			pre := config.TableI(scale)
			spec := pre.ZeroDEV(ratio, pol, repl, mode)
			prof := workload.MustGet(app)
			streams := workload.Threads(prof, spec.Cores, 6000, scale, seed)
			if prof.Suite == "CPU2017" {
				streams = workload.Rate(prof, spec.Cores, 6000, scale, seed)
			}
			sys := core.NewSystem(spec, streams)
			sys.Run()
			if err := sys.Engine.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			st := sys.Engine.Stats()
			if st.DEVs != 0 {
				t.Fatalf("%d DEVs under ZeroDEV", st.DEVs)
			}
			if mode == llc.Inclusive && repl == llc.DataLRU && st.DEEvictionsToMemory != 0 {
				t.Fatalf("inclusive+dataLRU must never evict entries to memory (Sec III-F), got %d",
					st.DEEvictionsToMemory)
			}
		})
	}
}

// TestBaselineStress does the same for the baseline and the comparison
// directories: no ZeroDEV guarantee, but full coherence invariants.
func TestBaselineStress(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rng := sim.NewRNG(0xFEEDFACE)
	apps := []string{"canneal", "dedup", "radix", "xalancbmk"}
	for i := 0; i < 12; i++ {
		app := apps[rng.Intn(len(apps))]
		ratio := []float64{1.0 / 32, 1.0 / 8, 1}[rng.Intn(3)]
		kind := rng.Intn(4)
		seed := rng.Uint64()
		pre := config.TableI(32)
		var spec core.SystemSpec
		var name string
		switch kind {
		case 0:
			spec, name = pre.Baseline(ratio, llc.NonInclusive), "baseline"
		case 1:
			spec, name = pre.Baseline(ratio, llc.Inclusive), "baseline-incl"
		case 2:
			spec, name = pre.SecDir(ratio, llc.NonInclusive), "secdir"
		default:
			spec, name = pre.MgD(ratio, llc.NonInclusive), "mgd"
		}
		t.Run(fmt.Sprintf("%s/r=%v/%s", name, ratio, app), func(t *testing.T) {
			prof := workload.MustGet(app)
			streams := workload.Threads(prof, spec.Cores, 6000, 32, seed)
			if prof.Suite == "CPU2017" {
				streams = workload.Rate(prof, spec.Cores, 6000, 32, seed)
			}
			sys := core.NewSystem(spec, streams)
			sys.Run()
			if err := sys.Engine.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
		})
	}
}
