package core

import (
	"context"
	"sync/atomic"

	"repro/internal/backend"
	"repro/internal/coher"
	"repro/internal/cpu"
	"repro/internal/directory"
	"repro/internal/dram"
	"repro/internal/llc"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
)

// SystemSpec assembles a complete single-socket CMP.
type SystemSpec struct {
	Cores int
	CPU   cpu.Params

	LLCBytes, LLCWays, LLCBanks int
	// LLCSets, when non-zero, overrides the capacity-derived per-bank set
	// count so associativity can be reduced at a fixed set count (the
	// Fig. 6 study).
	LLCSets int
	Mode    llc.Mode
	Repl    llc.Repl

	// Dir builds the sparse directory; the spec takes a constructor so
	// sweeps can instantiate a fresh directory per run.
	Dir func() directory.Directory

	// Backend selects the coherence-protocol backend; empty derives it
	// from the legacy ZeroDEV bit (see Params.Backend).
	Backend backend.ID
	ZeroDEV bool
	Policy  DEPolicy

	DRAM   dram.Params
	NoC    noc.Params
	Uncore Params

	// WrapHome, when non-nil, decorates the home agent the engine talks
	// to (fault campaigns interpose message drop/duplication here).
	// System.Home always exposes the undecorated LocalHome.
	WrapHome func(Home) Home
}

// System is a runnable single-socket CMP: cores wired to a protocol
// engine wired to a local home agent.
type System struct {
	Spec   SystemSpec
	Engine *Engine
	Cores  []*cpu.Core
	Home   *LocalHome
}

// NewSystem wires a system; streams supplies one reference stream per
// core.
func NewSystem(spec SystemSpec, streams []cpu.Stream) *System {
	if len(streams) != spec.Cores {
		panic("core: stream count must equal core count")
	}
	var l *llc.LLC
	if spec.LLCSets > 0 {
		var err error
		l, err = llc.NewGeometry(spec.LLCSets, spec.LLCWays, spec.LLCBanks, spec.Mode, spec.Repl)
		if err != nil {
			panic(err)
		}
	} else {
		l = llc.MustNew(spec.LLCBytes, spec.LLCWays, spec.LLCBanks, spec.Mode, spec.Repl)
	}
	mesh := noc.MustNew(spec.NoC, spec.Cores, spec.LLCBanks)
	home := NewLocalHome(mem.MustNew(1, spec.Cores), dram.MustNew(spec.DRAM))
	up := spec.Uncore
	up.Cores = spec.Cores
	up.Backend = spec.Backend
	up.ZeroDEV = spec.ZeroDEV
	up.Policy = spec.Policy
	var h Home = home
	if spec.WrapHome != nil {
		h = spec.WrapHome(home)
	}
	eng := New(up, spec.Dir(), l, mesh, h)

	sys := &System{Spec: spec, Engine: eng, Home: home}
	ports := make([]CorePort, spec.Cores)
	for i := 0; i < spec.Cores; i++ {
		c := cpu.New(coher.CoreID(i), spec.CPU, streams[i], eng)
		sys.Cores = append(sys.Cores, c)
		ports[i] = c
	}
	eng.AttachCores(ports)
	return sys
}

// Run drives all cores to completion under min-clock interleaving and
// returns the parallel completion time.
func (s *System) Run() sim.Cycle {
	c, _ := s.RunCtx(nil, nil)
	return c
}

// RunCtx is Run with cooperative cancellation: the simulation checks
// ctx every sim.CancelEvery scheduler steps and aborts with its error,
// so a cancelled (or watchdog-timed-out) unit stops within a bounded
// number of steps instead of running to completion. steps, when
// non-nil, receives the running step count for hang diagnostics. Both
// may be nil, which is exactly Run.
func (s *System) RunCtx(ctx context.Context, steps *atomic.Uint64) (sim.Cycle, error) {
	agents := make([]sim.Clocked, len(s.Cores))
	for i, c := range s.Cores {
		agents[i] = c
	}
	return sim.Drive(agents, sim.ContextHook(ctx, steps, nil))
}

// RunCtxDomains is RunCtx under the epoch-barrier domain scheduler
// (sim.DriveDomains): cores are partitioned into up to `workers`
// contiguous domains and stepped in parallel below the private-step
// horizon. Output is byte-identical to RunCtx; workers <= 1 simply
// delegates to RunCtx. Contiguous partitioning preserves the serial
// (clock, core index) tie-break: among domains whose frontiers share a
// cycle, the lowest-numbered domain holds the globally least index.
func (s *System) RunCtxDomains(ctx context.Context, steps *atomic.Uint64, workers int) (sim.Cycle, error) {
	if workers <= 1 {
		return s.RunCtx(ctx, steps)
	}
	n := len(s.Cores)
	d := workers
	if d > n {
		d = n
	}
	domains := make([][]sim.LocalAgent, d)
	for i := range domains {
		lo, hi := i*n/d, (i+1)*n/d
		domains[i] = make([]sim.LocalAgent, 0, hi-lo)
		for _, c := range s.Cores[lo:hi] {
			domains[i] = append(domains[i], c)
		}
	}
	return sim.DriveDomains(ctx, domains, workers, steps, noc.NewCrossQueue(d))
}

// CoreStats snapshots every core's counters.
func (s *System) CoreStats() []cpu.Stats {
	out := make([]cpu.Stats, len(s.Cores))
	for i, c := range s.Cores {
		out[i] = c.Stats()
	}
	return out
}

// TotalL2Misses sums the paper's "core cache misses" across cores.
func (s *System) TotalL2Misses() uint64 {
	var n uint64
	for _, c := range s.Cores {
		n += c.Stats().L2Misses
	}
	return n
}
