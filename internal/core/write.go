package core

import (
	"fmt"

	"repro/internal/coher"
	"repro/internal/llc"
	"repro/internal/sim"
)

// Write handles a GetX from core c: a store miss requesting the block
// in M state. Invalidation acknowledgements flow to the requester; the
// completion time is the later of the data arrival and the last ack.
func (e *Engine) Write(t sim.Cycle, c coher.CoreID, addr coher.Addr) sim.Cycle {
	e.stats.Writes++
	e.llc.Protect(addr)
	defer e.llc.Unprotect()
	e.record(coher.MsgGetX)
	bank := e.bankOf(addr)
	t1 := t + e.mesh.CoreToBank(c, bank) + e.p.QueueCycles + e.p.TagCycles
	v := e.llc.Probe(addr)
	v = e.maybeCorruptDE(t1, addr, v)
	ent, loc := e.findDE(addr, v)
	if e.hasAdmit && loc == locNone {
		charge := e.proto.Admit(t1, addr)
		if e.faultHooks != nil {
			if perturbed := e.faultHooks.AdmitFault(t1, addr, charge); perturbed != charge {
				e.stats.FaultNACKStorms++
				charge = perturbed
			}
		}
		t1 += charge
	}

	switch {
	case loc != locNone && ent.State == coher.DirOwned:
		return e.writeFromOwner(t1, c, addr, ent, v)
	case loc != locNone && ent.State == coher.DirShared:
		return e.writeShared(t1, c, addr, ent, v)
	default:
		return e.writeNoDE(t1, c, addr, v)
	}
}

// writeFromOwner transfers ownership: the request is forwarded to the
// owner, which invalidates its copy and responds directly (three-hop).
func (e *Engine) writeFromOwner(t1 sim.Cycle, c coher.CoreID, addr coher.Addr, ent coher.Entry, v llc.View) sim.Cycle {
	owner := ent.Owner
	if owner == c {
		panic(fmt.Sprintf("core: core %d write-missed a block it owns (%#x)", c, uint64(addr)))
	}
	bank := e.bankOf(addr)
	e.record(coher.MsgFwd)
	e.stats.Forwards3Hop++
	t2 := t1 + e.mesh.BankToCore(bank, owner) + e.p.OwnerLookupCycles
	prev := e.cores[owner].Invalidate(addr)
	if prev != coher.PrivModified && prev != coher.PrivExclusive {
		panic(fmt.Sprintf("core: directory owner %d holds %#x in %v", owner, uint64(addr), prev))
	}
	e.stats.DemandInvals++
	e.record(coher.MsgData)      // owner → requester
	e.record(coher.MsgBusyClear) // owner → home
	done := t2 + e.mesh.CoreToCore(owner, c)

	e.storeDETouch(t1, addr, coher.Entry{State: coher.DirOwned, Owner: c}, v)
	return done
}

// writeShared invalidates all sharers and supplies the data, from the
// LLC when possible, otherwise from an elected sharer with the
// invalidation folded into the forward (§III-C3).
func (e *Engine) writeShared(t1 sim.Cycle, c coher.CoreID, addr coher.Addr, ent coher.Entry, v llc.View) sim.Cycle {
	if ent.Sharers.Contains(c) {
		panic("core: GetX from a core already sharing the block (should be an upgrade)")
	}
	bank := e.bankOf(addr)
	usableLLC := e.usableData(v)
	var elected coher.CoreID
	if !usableLLC {
		elected = ent.Sharers.First()
	}

	ackDone := t1
	ent.Sharers.ForEach(func(s coher.CoreID) {
		prev := e.cores[s].Invalidate(addr)
		if prev != coher.PrivShared {
			panic(fmt.Sprintf("core: sharer %d holds %#x in %v", s, uint64(addr), prev))
		}
		e.stats.DemandInvals++
		e.record(coher.MsgInv)
		e.record(coher.MsgInvAck)
		arr := t1 + e.mesh.BankToCore(bank, s) + 1 + e.mesh.CoreToCore(s, c)
		ackDone = max2(ackDone, arr)
	})

	var dataDone sim.Cycle
	if usableLLC {
		e.stats.LLCDataHits++
		e.record(coher.MsgData)
		dataDone = t1 + e.p.DataCycles + e.mesh.BankToCore(bank, c)
	} else {
		// Forward combined with the invalidation to the elected sharer:
		// the critical path matches the baseline (§III-C3).
		e.stats.LLCMisses++
		e.stats.Forwards3Hop++
		e.record(coher.MsgFwd)
		e.record(coher.MsgData)
		dataDone = t1 + e.mesh.BankToCore(bank, elected) + e.p.OwnerLookupCycles + e.mesh.CoreToCore(elected, c)
	}

	if e.llc.Mode() == llc.EPD {
		// The block becomes temporarily private: deallocate the data line.
		if v.HasData() && !v.Fused {
			e.llc.InvalidateData(v)
			v.DataWay = -1
		}
	}
	// Other sockets sharing the block must be invalidated before the
	// core takes it to M.
	acq := e.home.AcquireExclusive(t1, e.p.Socket, addr)
	e.storeDETouch(t1, addr, coher.Entry{State: coher.DirOwned, Owner: c}, v)
	return max2(max2(dataDone, ackDone), acq)
}

// writeNoDE serves a GetX with no directory entry on the socket.
func (e *Engine) writeNoDE(t1 sim.Cycle, c coher.CoreID, addr coher.Addr, v llc.View) sim.Cycle {
	bank := e.bankOf(addr)
	if e.usableData(v) {
		if e.usesHomeSegments && e.home.Corrupted(addr) {
			if de, d0, ok := e.home.GetDE(t1, e.p.Socket, addr); ok {
				e.home.PutDE(t1, e.p.Socket, addr, coher.Entry{})
				e.stats.CorruptedFetches++
				e.storeDE(d0, addr, e.reconcileImprecise(addr, de))
				return e.redispatchWrite(d0, c, addr)
			}
		}
		e.stats.LLCDataHits++
		e.record(coher.MsgData)
		done := t1 + e.p.DataCycles + e.mesh.BankToCore(bank, c)
		if e.llc.Mode() == llc.EPD {
			e.llc.InvalidateData(v)
			v.DataWay = -1
		}
		done = max2(done, e.home.AcquireExclusive(t1, e.p.Socket, addr))
		e.storeDETouch(t1, addr, coher.Entry{State: coher.DirOwned, Owner: c}, v)
		return done
	}
	e.stats.LLCMisses++
	res := e.home.FetchBlock(t1, e.p.Socket, addr, true)
	if res.DE != nil {
		e.stats.CorruptedFetches++
		e.storeDE(res.Done, addr, e.reconcileImprecise(addr, *res.DE))
		return e.redispatchWrite(res.Done, c, addr)
	}
	if e.llc.Mode() != llc.EPD {
		e.fillLLCData(t1, addr, false)
	}
	e.record(coher.MsgData)
	done := res.Done + e.mesh.BankToCore(bank, c)
	e.storeDE(t1, addr, coher.Entry{State: coher.DirOwned, Owner: c})
	e.touchLLC(addr)
	return done
}

func (e *Engine) redispatchWrite(t sim.Cycle, c coher.CoreID, addr coher.Addr) sim.Cycle {
	v := e.llc.Probe(addr)
	ent, loc := e.findDE(addr, v)
	switch {
	case loc != locNone && ent.State == coher.DirOwned:
		return e.writeFromOwner(t, c, addr, ent, v)
	case loc != locNone && ent.State == coher.DirShared:
		return e.writeShared(t, c, addr, ent, v)
	default:
		panic("core: recovered directory entry vanished")
	}
}

// Upgrade handles an S→M upgrade: the requester already holds the block
// in S; other sharers are invalidated and a dataless response carries
// the expected ack count.
func (e *Engine) Upgrade(t sim.Cycle, c coher.CoreID, addr coher.Addr) sim.Cycle {
	e.stats.Upgrades++
	e.llc.Protect(addr)
	defer e.llc.Unprotect()
	e.record(coher.MsgUpg)
	bank := e.bankOf(addr)
	t1 := t + e.mesh.CoreToBank(c, bank) + e.p.QueueCycles + e.p.TagCycles
	v := e.llc.Probe(addr)
	v = e.maybeCorruptDE(t1, addr, v)
	ent, loc := e.findDE(addr, v)

	if loc == locNone {
		// ZeroDEV: the entry may live in home memory (corrupted block).
		if e.usesHomeSegments && e.home.Corrupted(addr) {
			if de, d0, ok := e.home.GetDE(t1, e.p.Socket, addr); ok {
				e.home.PutDE(t1, e.p.Socket, addr, coher.Entry{})
				e.stats.CorruptedFetches++
				e.storeDE(d0, addr, e.reconcileImprecise(addr, de))
				v = e.llc.Probe(addr)
				ent, loc = e.findDE(addr, v)
				t1 = d0
			}
		}
		if loc == locNone {
			panic(fmt.Sprintf("core: upgrade for %#x with no directory entry", uint64(addr)))
		}
	}
	if ent.State != coher.DirShared || !ent.Sharers.Contains(c) {
		panic(fmt.Sprintf("core: upgrade for %#x in state %v without requester sharing", uint64(addr), ent.State))
	}

	// For upgrades only the entry is read out; when it is housed in the
	// LLC data array that costs one data-array access (§III-C2). DLS
	// entries live tag-side, already covered by the tag lookup.
	deLat := sim.Cycle(0)
	if loc == locLLC && e.deInDataArray {
		deLat = e.p.DataCycles
	}

	ackDone := t1
	ent.Sharers.ForEach(func(s coher.CoreID) {
		if s == c {
			return
		}
		prev := e.cores[s].Invalidate(addr)
		if prev != coher.PrivShared {
			panic(fmt.Sprintf("core: sharer %d holds %#x in %v", s, uint64(addr), prev))
		}
		e.stats.DemandInvals++
		e.record(coher.MsgInv)
		e.record(coher.MsgInvAck)
		arr := t1 + e.mesh.BankToCore(bank, s) + 1 + e.mesh.CoreToCore(s, c)
		ackDone = max2(ackDone, arr)
	})
	e.record(coher.MsgDataless)
	done := max2(t1+deLat+e.mesh.BankToCore(bank, c), ackDone)
	done = max2(done, e.home.AcquireExclusive(t1, e.p.Socket, addr))

	if e.llc.Mode() == llc.EPD {
		if v.HasData() && !v.Fused {
			e.llc.InvalidateData(v)
			v.DataWay = -1
		}
	}
	e.storeDETouch(t1, addr, coher.Entry{State: coher.DirOwned, Owner: c}, v)
	return done
}
