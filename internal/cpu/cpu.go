// Package cpu models a processor core and its private cache hierarchy:
// split L1 instruction/data caches backed by a unified private L2 that
// is inclusive of both L1s. The core consumes a memory-access stream and
// maintains a local clock; L2 misses and evictions are delegated to the
// uncore protocol engine. Timing is a deliberate approximation of the
// paper's out-of-order cores: a 4-wide issue front end plus a
// memory-level-parallelism divisor on load-miss stalls (DESIGN.md,
// "Scheduling model").
package cpu

import (
	"repro/internal/cache"
	"repro/internal/coher"
	"repro/internal/sim"
	"repro/internal/stream"
)

// OpKind is the class of one memory operation.
type OpKind uint8

const (
	// Load is a data read.
	Load OpKind = iota
	// Store is a data write.
	Store
	// Ifetch is an instruction fetch (code blocks are always cached in
	// S state, §III-A).
	Ifetch
)

// Access is one element of a core's reference stream: Gap non-memory
// instructions followed by one memory operation.
type Access struct {
	Gap  uint32
	Kind OpKind
	Addr coher.Addr
}

// Stream supplies a core's reference stream.
type Stream interface {
	// Next returns the next access; ok is false at end of stream.
	Next() (a Access, ok bool)
}

// Uncore is the protocol engine interface a core calls into on L2 misses
// and evictions.
type Uncore interface {
	// Read handles a GetS for a data or code block; it returns the
	// completion time and the private state granted (S or E).
	Read(t sim.Cycle, c coher.CoreID, addr coher.Addr, code bool) (done sim.Cycle, granted coher.PrivState)
	// Write handles a GetX; the block is granted in M.
	Write(t sim.Cycle, c coher.CoreID, addr coher.Addr) (done sim.Cycle)
	// Upgrade handles an S→M upgrade request.
	Upgrade(t sim.Cycle, c coher.CoreID, addr coher.Addr) (done sim.Cycle)
	// Evict delivers an eviction notice for a block leaving the private
	// hierarchy in the given state (PutS/PutE/PutM).
	Evict(t sim.Cycle, c coher.CoreID, addr coher.Addr, state coher.PrivState)
}

// Params configure a core.
type Params struct {
	L1Bytes, L1Ways int
	L2Bytes, L2Ways int
	// IssueWidth is the non-memory instruction throughput per cycle.
	IssueWidth int
	// L1HitCycles and L2HitCycles are access latencies charged to the
	// local clock on hits at each level.
	L1HitCycles, L2HitCycles sim.Cycle
	// LoadMLP divides load-miss stall time, approximating the overlap an
	// out-of-order window extracts. StoreMLP does the same for stores
	// (retired through a store buffer, hence larger).
	LoadMLP, StoreMLP float64
	// PrefetchDegree enables a stream prefetcher: on an L2 miss that
	// continues a detected sequential stream, the next PrefetchDegree
	// blocks are fetched into the L2 off the critical path. 0 disables
	// (the paper's configuration).
	PrefetchDegree int
	// StatInterval, when positive, streams per-interval IPC: every
	// StatInterval retired instructions the core folds that interval's
	// IPC into a bounded decimating series readable via IntervalIPC.
	// Intervals are keyed to the core's own retirement count and local
	// clock, so the series is identical under any scheduler or worker
	// count. 0 disables with zero overhead.
	StatInterval int
}

// DefaultParams returns Table I private-hierarchy parameters: 32 KB
// 8-way L1s, 256 KB 8-way L2, with the timing approximation described
// in DESIGN.md.
func DefaultParams() Params {
	return Params{
		L1Bytes: 32 << 10, L1Ways: 8,
		L2Bytes: 256 << 10, L2Ways: 8,
		IssueWidth:  4,
		L1HitCycles: 1, L2HitCycles: 10,
		LoadMLP: 2.0, StoreMLP: 4.0,
	}
}

type l2Line struct {
	state        coher.PrivState
	inL1I, inL1D bool
}

// Stats aggregates per-core activity.
type Stats struct {
	Loads, Stores, Ifetches uint64
	L1DMisses, L1IMisses    uint64
	L2Misses                uint64 // the paper's "core cache misses"
	Prefetches              uint64
	Upgrades                uint64
	Retired                 uint64
	Cycles                  sim.Cycle
	// InvalidationsReceived counts blocks removed by external
	// invalidations (demand, DEV, or inclusion), the probe an attacker
	// observes in the side-channel example.
	InvalidationsReceived uint64
}

// Core is one processor with private caches. It implements sim.Clocked.
type Core struct {
	id     coher.CoreID
	p      Params
	l1i    *cache.Array[struct{}]
	l1d    *cache.Array[struct{}]
	l2     *cache.Array[l2Line]
	stream Stream
	uncore Uncore

	clock    sim.Cycle
	done     bool
	gapFrac  uint32
	stallRem float64
	lastMiss [8]coher.Addr // recent L2-miss addresses for stream detection
	missPtr  int
	stats    Stats

	// Interval-IPC streaming state (StatInterval > 0 only). Excluded
	// from AppendState like the rest of the stats.
	ivRetired uint64
	ivStart   sim.Cycle
	ivSeries  stream.Series

	// Lookahead scan state for the domain scheduler (sim.LocalAgent).
	// All zero for serial runs, where LocalBound is never called and
	// Step consumes the stream directly. peek holds accesses pulled from
	// the stream ahead of execution (in order; Step consumes from it
	// first), gapCum[i] is the gap sum of peek[:i] for O(1) bound
	// arithmetic, scanStop is the peek index of the first access
	// classified as possibly-shared (-1 = none found yet), scanEOS
	// records that the stream is exhausted, and scanDirty marks the
	// cached classifications stale after any private-cache mutation that
	// did not come from a private-hit step (uncore transactions,
	// external invalidations and downgrades).
	peek      []Access
	peekHead  int
	gapCum    []uint64
	scanStop  int
	scanEOS   bool
	scanDirty bool

	// LocalBound memo: valid while the clock, gap carry, and peek cursor
	// are unchanged and nothing set scanDirty. A hit can only be stale
	// in the conservative direction (the true bound is monotone
	// non-decreasing between dirtying events), so reuse is always sound.
	boundCache sim.Cycle
	boundClock sim.Cycle
	boundFrac  uint32
	boundHead  int
	boundValid bool
}

// New constructs a core. The uncore may be set later with Attach when
// construction order requires it.
func New(id coher.CoreID, p Params, stream Stream, uncore Uncore) *Core {
	return &Core{
		id:       id,
		p:        p,
		l1i:      cache.New[struct{}](cache.MustGeometry(p.L1Bytes, p.L1Ways, coher.BlockBytes), cache.LRU),
		l1d:      cache.New[struct{}](cache.MustGeometry(p.L1Bytes, p.L1Ways, coher.BlockBytes), cache.LRU),
		l2:       cache.New[l2Line](cache.MustGeometry(p.L2Bytes, p.L2Ways, coher.BlockBytes), cache.LRU),
		stream:   stream,
		uncore:   uncore,
		scanStop: -1,
	}
}

// Attach wires the uncore after construction.
func (c *Core) Attach(u Uncore) { c.uncore = u }

// ID returns the core's identity.
func (c *Core) ID() coher.CoreID { return c.id }

// Stats returns a snapshot of the core's counters with Cycles filled in.
func (c *Core) Stats() Stats {
	s := c.stats
	s.Cycles = c.clock
	return s
}

// IntervalIPC returns the per-interval IPC series streamed while
// Params.StatInterval > 0 (empty otherwise). The returned value shares
// point storage with the core; treat it as read-only.
func (c *Core) IntervalIPC() stream.Series { return c.ivSeries }

// Now implements sim.Clocked; after the stream drains it keeps
// reporting the final local time.
func (c *Core) Now() sim.Cycle { return c.clock }

// Done implements sim.Clocked.
func (c *Core) Done() bool { return c.done }

// Step implements sim.Clocked: consume one access from the stream.
func (c *Core) Step() {
	a, ok := c.nextAccess()
	if !ok {
		c.done = true
		return
	}
	// Non-memory instructions retire IssueWidth per cycle; fractional
	// cycles carry over.
	c.gapFrac += a.Gap
	c.clock += sim.Cycle(c.gapFrac / uint32(c.p.IssueWidth))
	c.gapFrac %= uint32(c.p.IssueWidth)
	c.stats.Retired += uint64(a.Gap) + 1

	switch a.Kind {
	case Load:
		c.stats.Loads++
		c.load(a.Addr)
	case Store:
		c.stats.Stores++
		c.store(a.Addr)
	case Ifetch:
		c.stats.Ifetches++
		c.ifetch(a.Addr)
	}

	if c.p.StatInterval > 0 {
		c.ivRetired += uint64(a.Gap) + 1
		if c.ivRetired >= uint64(c.p.StatInterval) {
			dc := c.clock - c.ivStart
			if dc < 1 {
				dc = 1
			}
			c.ivSeries.Observe(float64(c.ivRetired) / float64(dc))
			c.ivRetired = 0
			c.ivStart = c.clock
		}
	}
}

// stall charges raw stall cycles to the clock after dividing by the
// overlap factor, accumulating the fractional remainder.
func (c *Core) stall(raw sim.Cycle, mlp float64) {
	c.stallRem += float64(raw) / mlp
	whole := sim.Cycle(c.stallRem)
	c.stallRem -= float64(whole)
	c.clock += whole
}

func (c *Core) load(addr coher.Addr) {
	if set, way, ok := c.l1d.Lookup(uint64(addr)); ok {
		c.l1d.Touch(set, way)
		c.touchL2(addr)
		c.clock += c.p.L1HitCycles
		return
	}
	c.stats.L1DMisses++
	if set, way, ok := c.l2.Lookup(uint64(addr)); ok {
		c.l2.Touch(set, way)
		c.fillL1(c.l1d, addr, false)
		c.l2.Payload(set, way).inL1D = true
		c.clock += c.p.L2HitCycles
		return
	}
	c.stats.L2Misses++
	c.scanDirty = true
	done, granted := c.uncore.Read(c.clock, c.id, addr, false)
	c.stall(done-c.clock, c.p.LoadMLP)
	c.install(addr, granted, false)
	c.maybePrefetch(addr)
}

func (c *Core) store(addr coher.Addr) {
	if set, way, ok := c.l2.Lookup(uint64(addr)); ok {
		line := c.l2.Payload(set, way)
		c.l2.Touch(set, way)
		switch line.state {
		case coher.PrivModified:
			// Fast path.
		case coher.PrivExclusive:
			line.state = coher.PrivModified // silent E→M
		case coher.PrivShared:
			c.stats.Upgrades++
			c.scanDirty = true
			done := c.uncore.Upgrade(c.clock, c.id, addr)
			// Re-check: an inclusion eviction during the upgrade can
			// invalidate this core's own line, so the cached (set, way) is
			// only trusted if the block is still resident.
			if s2, w2, ok2 := c.l2.Lookup(uint64(addr)); ok2 {
				set, way = s2, w2
				c.l2.Payload(set, way).state = coher.PrivModified
			} else {
				ok = false
			}
			c.stall(done-c.clock, c.p.StoreMLP)
		}
		if s1, w1, ok1 := c.l1d.Lookup(uint64(addr)); ok1 {
			c.l1d.Touch(s1, w1)
			c.clock += c.p.L1HitCycles
		} else {
			c.stats.L1DMisses++
			c.fillL1(c.l1d, addr, false)
			if ok {
				c.l2.Payload(set, way).inL1D = true
			}
			c.clock += c.p.L2HitCycles
		}
		return
	}
	c.stats.L1DMisses++
	c.stats.L2Misses++
	c.scanDirty = true
	done := c.uncore.Write(c.clock, c.id, addr)
	c.stall(done-c.clock, c.p.StoreMLP)
	c.install(addr, coher.PrivModified, false)
}

func (c *Core) ifetch(addr coher.Addr) {
	if set, way, ok := c.l1i.Lookup(uint64(addr)); ok {
		c.l1i.Touch(set, way)
		c.touchL2(addr)
		return // fetch latency hidden on L1I hits
	}
	c.stats.L1IMisses++
	if set, way, ok := c.l2.Lookup(uint64(addr)); ok {
		c.l2.Touch(set, way)
		c.fillL1(c.l1i, addr, true)
		c.l2.Payload(set, way).inL1I = true
		c.clock += c.p.L2HitCycles
		return
	}
	c.stats.L2Misses++
	c.scanDirty = true
	done, granted := c.uncore.Read(c.clock, c.id, addr, true)
	c.stall(done-c.clock, c.p.LoadMLP)
	c.install(addr, granted, true)
}

func (c *Core) touchL2(addr coher.Addr) {
	if set, way, ok := c.l2.Lookup(uint64(addr)); ok {
		c.l2.Touch(set, way)
	}
}

// install fills a freshly granted block into L2 and the appropriate L1.
func (c *Core) install(addr coher.Addr, state coher.PrivState, code bool) {
	set := c.l2.SetIndex(uint64(addr))
	way, free := c.l2.FreeWay(set)
	if !free {
		way = c.l2.Victim(set)
		c.evictL2(set, way)
	}
	line := l2Line{state: state}
	if code {
		line.inL1I = true
	} else {
		line.inL1D = true
	}
	c.l2.Insert(set, way, uint64(addr), line)
	if code {
		c.fillL1(c.l1i, addr, true)
	} else {
		c.fillL1(c.l1d, addr, false)
	}
}

// fillL1 inserts addr into an L1; a displaced L1 line only clears its
// presence bit in L2 (L2 is inclusive of the L1s, so no notice leaves
// the core).
func (c *Core) fillL1(arr *cache.Array[struct{}], addr coher.Addr, code bool) {
	set := arr.SetIndex(uint64(addr))
	way, free := arr.FreeWay(set)
	if !free {
		way = arr.Victim(set)
		victim := coher.Addr(arr.AddrOf(set, way))
		if s2, w2, ok := c.l2.Lookup(uint64(victim)); ok {
			if code {
				c.l2.Payload(s2, w2).inL1I = false
			} else {
				c.l2.Payload(s2, w2).inL1D = false
			}
		}
		arr.Invalidate(set, way)
	}
	arr.Insert(set, way, uint64(addr), struct{}{})
}

// evictL2 removes the line at (set, way) from L2 (and its L1 copies) and
// notifies the uncore.
func (c *Core) evictL2(set, way int) {
	addr := coher.Addr(c.l2.AddrOf(set, way))
	line := *c.l2.Payload(set, way)
	c.dropL1(addr, line)
	c.l2.Invalidate(set, way)
	c.scanDirty = true
	c.uncore.Evict(c.clock, c.id, addr, line.state)
}

func (c *Core) dropL1(addr coher.Addr, line l2Line) {
	if line.inL1I {
		if s, w, ok := c.l1i.Lookup(uint64(addr)); ok {
			c.l1i.Invalidate(s, w)
		}
	}
	if line.inL1D {
		if s, w, ok := c.l1d.Lookup(uint64(addr)); ok {
			c.l1d.Invalidate(s, w)
		}
	}
}

// maybePrefetch detects a sequential miss stream and pulls the next
// blocks into the L2 off the critical path (no stall charged; the
// coherence actions are real, so prefetched blocks are tracked like any
// other).
func (c *Core) maybePrefetch(addr coher.Addr) {
	if c.p.PrefetchDegree <= 0 {
		return
	}
	streaming := false
	for _, m := range c.lastMiss {
		if m != 0 && m+1 == addr {
			streaming = true
			break
		}
	}
	c.lastMiss[c.missPtr] = addr
	c.missPtr = (c.missPtr + 1) % len(c.lastMiss)
	if !streaming {
		return
	}
	for d := 1; d <= c.p.PrefetchDegree; d++ {
		next := addr + coher.Addr(d)
		if _, _, ok := c.l2.Lookup(uint64(next)); ok {
			continue
		}
		c.stats.Prefetches++
		_, granted := c.uncore.Read(c.clock, c.id, next, false)
		c.installPrefetch(next, granted)
	}
}

// installPrefetch fills a prefetched block into the L2 only (no L1
// pollution).
func (c *Core) installPrefetch(addr coher.Addr, state coher.PrivState) {
	set := c.l2.SetIndex(uint64(addr))
	way, free := c.l2.FreeWay(set)
	if !free {
		way = c.l2.Victim(set)
		c.evictL2(set, way)
	}
	c.l2.Insert(set, way, uint64(addr), l2Line{state: state})
}

// --- protocol-engine-facing port (external coherence actions) ---------

// HasBlock reports whether the core currently caches addr and in which
// state.
func (c *Core) HasBlock(addr coher.Addr) (coher.PrivState, bool) {
	if set, way, ok := c.l2.Lookup(uint64(addr)); ok {
		return c.l2.Payload(set, way).state, true
	}
	return coher.PrivInvalid, false
}

// Invalidate removes addr from the private hierarchy (external
// invalidation: demand, DEV, or inclusion victim) and returns the state
// the block had. No eviction notice is generated; the engine initiated
// the action and updates the directory itself.
func (c *Core) Invalidate(addr coher.Addr) coher.PrivState {
	set, way, ok := c.l2.Lookup(uint64(addr))
	if !ok {
		return coher.PrivInvalid
	}
	line := *c.l2.Payload(set, way)
	c.dropL1(addr, line)
	c.l2.Invalidate(set, way)
	c.stats.InvalidationsReceived++
	c.scanDirty = true
	return line.state
}

// Downgrade moves addr from M/E to S (serving a forwarded GetS) and
// returns the prior state so the engine can account a dirty transfer.
func (c *Core) Downgrade(addr coher.Addr) coher.PrivState {
	set, way, ok := c.l2.Lookup(uint64(addr))
	if !ok {
		return coher.PrivInvalid
	}
	line := c.l2.Payload(set, way)
	prev := line.state
	if prev == coher.PrivModified || prev == coher.PrivExclusive {
		line.state = coher.PrivShared
		c.scanDirty = true // store-hit classification for addr changed
	}
	return prev
}

// PrivateBlocks returns the number of valid L2 lines, used by occupancy
// instrumentation and invariant checks.
func (c *Core) PrivateBlocks() int { return c.l2.CountValid() }

// ForEachBlock visits every L2-resident block, for invariant checks.
func (c *Core) ForEachBlock(fn func(addr coher.Addr, state coher.PrivState)) {
	c.l2.ForEachValid(func(_, _ int, a uint64, line *l2Line) {
		fn(coher.Addr(a), line.state)
	})
}

// EvictBlock voluntarily evicts addr from the private hierarchy through
// the ordinary capacity-eviction path (eviction notice to the uncore,
// unlike Invalidate). It is the model checker's "evict" op: it lets the
// bounded explorer reach PutS/PutM states without filling the L2.
// Reports whether the block was resident.
func (c *Core) EvictBlock(addr coher.Addr) bool {
	set, way, ok := c.l2.Lookup(uint64(addr))
	if !ok {
		return false
	}
	c.evictL2(set, way)
	return true
}

// --- domain-scheduler lookahead (sim.LocalAgent) ---------------------

// maxScanAhead caps how many accesses LocalBound buffers ahead of
// execution, bounding scan memory for streams with very long private
// runs. A capped scan yields a smaller (still sound) bound.
const maxScanAhead = 4096

// nextAccess returns the next access for Step: buffered lookahead
// first, then the stream. The stream is never touched again after it
// reports end (streams need not be idempotent past exhaustion).
func (c *Core) nextAccess() (Access, bool) {
	if c.peekHead < len(c.peek) {
		a := c.peek[c.peekHead]
		if c.peekHead == c.scanStop {
			// Consuming the scanned stopper: the cached classification
			// prefix is spent, whatever the step turns out to do.
			c.scanDirty = true
		}
		c.peekHead++
		if c.peekHead == len(c.peek) {
			c.peek = c.peek[:0]
			c.gapCum = c.gapCum[:0]
			c.peekHead = 0
			c.scanStop = -1
		}
		return a, true
	}
	if c.scanEOS {
		return Access{}, false
	}
	return c.stream.Next()
}

// classifyPrivate reports whether executing a against the current L2
// snapshot touches only core-private state. Loads and ifetches are
// private iff they hit in L2 (any state); stores additionally need M or
// E (a store hit in S issues an Upgrade transaction). Any L2 miss
// reaches the uncore. The L1s never matter: an L1 miss that hits L2 is
// serviced entirely inside the core. Lookup does not update replacement
// state, so classification is observation-free.
func (c *Core) classifyPrivate(a Access) bool {
	set, way, ok := c.l2.Lookup(uint64(a.Addr))
	if !ok {
		return false
	}
	if a.Kind == Store {
		st := c.l2.Payload(set, way).state
		return st == coher.PrivModified || st == coher.PrivExclusive
	}
	return true
}

// LocalBound implements sim.LocalAgent: a conservative lower bound on
// the local time at which the core's next uncore-reaching step can be
// scheduled. It scans ahead in the stream (buffering peeked accesses
// for Step to consume later) and classifies each against the current L2
// snapshot. The classification stays exact for the whole private run:
// private-hit steps never change which blocks the L2 holds or their
// classification-relevant states (the only transition, the silent E→M
// on a store hit in E, maps private to private), so the single
// snapshot remains valid until something that can change it runs —
// this core's own uncore transactions and evictions, or external
// invalidations and downgrades — each of which sets scanDirty and
// forces a re-classification here.
//
// The bound itself is the gap-carry arithmetic of Step run in advance:
// consuming k private accesses advances the clock by at least
// floor((gapFrac + sum of their gaps) / IssueWidth) cycles (hit
// latencies only add), and the stopper is scheduled before its own gap
// is consumed, so its gap is excluded.
func (c *Core) LocalBound() sim.Cycle {
	if c.done {
		return sim.MaxCycle
	}
	if c.boundValid && !c.scanDirty && c.clock == c.boundClock &&
		c.gapFrac == c.boundFrac && c.peekHead == c.boundHead {
		return c.boundCache
	}
	if c.scanDirty {
		c.scanDirty = false
		c.scanStop = -1
		for i := c.peekHead; i < len(c.peek); i++ {
			if !c.classifyPrivate(c.peek[i]) {
				c.scanStop = i
				break
			}
		}
	}
	if c.scanStop < 0 {
		// Everything buffered is private; extend the scan up to the cap.
		for !c.scanEOS && len(c.peek)-c.peekHead < maxScanAhead {
			a, ok := c.stream.Next()
			if !ok {
				c.scanEOS = true
				break
			}
			if len(c.gapCum) == 0 {
				c.gapCum = append(c.gapCum, 0)
			}
			c.gapCum = append(c.gapCum, c.gapCum[len(c.gapCum)-1]+uint64(a.Gap))
			c.peek = append(c.peek, a)
			if !c.classifyPrivate(a) {
				c.scanStop = len(c.peek) - 1
				break
			}
		}
	}
	iw := uint64(c.p.IssueWidth)
	var bound sim.Cycle
	switch {
	case c.scanStop >= 0:
		sum := c.gapCum[c.scanStop] - c.gapCum[c.peekHead]
		bound = c.clock + sim.Cycle((uint64(c.gapFrac)+sum)/iw)
	case c.scanEOS:
		// Every remaining access is private and the end-of-stream step
		// only sets done: no future step reaches shared state.
		bound = sim.MaxCycle
	default:
		// Scan cap hit with everything private: the first possibly-shared
		// step lies beyond the whole buffered run.
		sum := c.gapCum[len(c.peek)] - c.gapCum[c.peekHead]
		bound = c.clock + sim.Cycle((uint64(c.gapFrac)+sum)/iw)
	}
	c.boundCache, c.boundClock, c.boundFrac, c.boundHead = bound, c.clock, c.gapFrac, c.peekHead
	c.boundValid = true
	return bound
}

// AppendState appends the core's protocol-visible cache state (L1I,
// L1D, L2 contents with coherence states and replacement metadata) to
// buf for model-checker fingerprinting. The clock, stall remainders,
// and stats are excluded (they affect timing, never which coherence
// actions are reachable), as is the recent-miss history — the checker
// runs with PrefetchDegree 0, where that history is dead state.
func (c *Core) AppendState(buf []byte) []byte {
	buf = c.l1i.AppendState(buf, nil)
	buf = c.l1d.AppendState(buf, nil)
	return c.l2.AppendState(buf, func(b []byte, l *l2Line) []byte {
		tag := byte(l.state)
		if l.inL1I {
			tag |= 0x10
		}
		if l.inL1D {
			tag |= 0x20
		}
		return append(b, tag)
	})
}
