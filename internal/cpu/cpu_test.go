package cpu

import (
	"testing"

	"repro/internal/coher"
	"repro/internal/sim"
)

// fakeUncore grants everything immediately and records events.
type fakeUncore struct {
	reads, writes, upgrades int
	evicts                  []evictEvent
	grant                   coher.PrivState
	lat                     sim.Cycle
}

type evictEvent struct {
	addr  coher.Addr
	state coher.PrivState
}

func (f *fakeUncore) Read(t sim.Cycle, c coher.CoreID, addr coher.Addr, code bool) (sim.Cycle, coher.PrivState) {
	f.reads++
	g := f.grant
	if code {
		g = coher.PrivShared
	}
	return t + f.lat, g
}
func (f *fakeUncore) Write(t sim.Cycle, c coher.CoreID, addr coher.Addr) sim.Cycle {
	f.writes++
	return t + f.lat
}
func (f *fakeUncore) Upgrade(t sim.Cycle, c coher.CoreID, addr coher.Addr) sim.Cycle {
	f.upgrades++
	return t + f.lat
}
func (f *fakeUncore) Evict(t sim.Cycle, c coher.CoreID, addr coher.Addr, state coher.PrivState) {
	f.evicts = append(f.evicts, evictEvent{addr, state})
}

type sliceStream struct{ q []Access }

func (s *sliceStream) Next() (Access, bool) {
	if len(s.q) == 0 {
		return Access{}, false
	}
	a := s.q[0]
	s.q = s.q[1:]
	return a, true
}

func tinyParams() Params {
	p := DefaultParams()
	p.L1Bytes = 1 << 10 // 16 blocks, 8-way: 2 sets
	p.L2Bytes = 2 << 10 // 32 blocks, 8-way: 4 sets
	return p
}

func newCore(accs []Access) (*Core, *fakeUncore) {
	u := &fakeUncore{grant: coher.PrivExclusive, lat: 100}
	c := New(0, tinyParams(), &sliceStream{q: accs}, u)
	return c, u
}

func drain(c *Core) {
	for !c.Done() {
		c.Step()
	}
}

func TestLoadMissThenHit(t *testing.T) {
	c, u := newCore([]Access{
		{Kind: Load, Addr: 10},
		{Kind: Load, Addr: 10},
	})
	drain(c)
	st := c.Stats()
	if u.reads != 1 {
		t.Fatalf("uncore reads = %d, want 1 (second load hits L1)", u.reads)
	}
	if st.L2Misses != 1 || st.L1DMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSilentEToM(t *testing.T) {
	c, u := newCore([]Access{
		{Kind: Load, Addr: 10},  // E grant
		{Kind: Store, Addr: 10}, // silent E→M
	})
	drain(c)
	if u.upgrades != 0 || u.writes != 0 {
		t.Fatal("E→M must be silent")
	}
	if st, ok := c.HasBlock(10); !ok || st != coher.PrivModified {
		t.Fatalf("state = %v ok=%v, want M", st, ok)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	c, u := newCore(nil)
	u.grant = coher.PrivShared
	c.stream = &sliceStream{q: []Access{
		{Kind: Load, Addr: 10},
		{Kind: Store, Addr: 10},
	}}
	drain(c)
	if u.upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", u.upgrades)
	}
	if st, _ := c.HasBlock(10); st != coher.PrivModified {
		t.Fatalf("state = %v, want M", st)
	}
}

func TestStoreMissIssuesGetX(t *testing.T) {
	c, u := newCore([]Access{{Kind: Store, Addr: 20}})
	drain(c)
	if u.writes != 1 {
		t.Fatalf("writes = %d", u.writes)
	}
	if st, _ := c.HasBlock(20); st != coher.PrivModified {
		t.Fatalf("state = %v", st)
	}
}

func TestEvictionNotices(t *testing.T) {
	// Fill one L2 set (8 ways, 4 sets: addresses congruent mod 4) plus
	// one more to force an eviction.
	var accs []Access
	for i := 0; i < 9; i++ {
		accs = append(accs, Access{Kind: Load, Addr: coher.Addr(i * 4)})
	}
	c, u := newCore(accs)
	drain(c)
	if len(u.evicts) != 1 {
		t.Fatalf("evicts = %v, want exactly one", u.evicts)
	}
	if u.evicts[0].state != coher.PrivExclusive {
		t.Fatalf("clean E eviction expected, got %v", u.evicts[0].state)
	}
	// The evicted block is gone from L1 too (inclusion).
	if _, ok := c.HasBlock(u.evicts[0].addr); ok {
		t.Fatal("evicted block still present")
	}
}

func TestDirtyEvictionIsPutM(t *testing.T) {
	var accs []Access
	accs = append(accs, Access{Kind: Store, Addr: 0})
	for i := 1; i < 9; i++ {
		accs = append(accs, Access{Kind: Load, Addr: coher.Addr(i * 4)})
	}
	c, u := newCore(accs)
	drain(c)
	if len(u.evicts) != 1 || u.evicts[0].state != coher.PrivModified {
		t.Fatalf("evicts = %v, want one PutM", u.evicts)
	}
	_ = c
}

func TestInvalidateAndDowngrade(t *testing.T) {
	c, _ := newCore([]Access{{Kind: Store, Addr: 10}})
	drain(c)
	if prev := c.Downgrade(10); prev != coher.PrivModified {
		t.Fatalf("downgrade returned %v", prev)
	}
	if st, _ := c.HasBlock(10); st != coher.PrivShared {
		t.Fatalf("state after downgrade = %v", st)
	}
	if prev := c.Invalidate(10); prev != coher.PrivShared {
		t.Fatalf("invalidate returned %v", prev)
	}
	if _, ok := c.HasBlock(10); ok {
		t.Fatal("block present after invalidate")
	}
	if c.Stats().InvalidationsReceived != 1 {
		t.Fatal("invalidation not counted")
	}
	if prev := c.Invalidate(10); prev != coher.PrivInvalid {
		t.Fatal("double invalidate must report Invalid")
	}
}

func TestIfetchGrantsShared(t *testing.T) {
	c, _ := newCore([]Access{{Kind: Ifetch, Addr: 30}})
	drain(c)
	if st, _ := c.HasBlock(30); st != coher.PrivShared {
		t.Fatalf("code block state = %v, want S", st)
	}
}

func TestGapAdvancesClock(t *testing.T) {
	c, _ := newCore([]Access{
		{Gap: 40, Kind: Load, Addr: 10},
		{Gap: 40, Kind: Load, Addr: 10},
	})
	drain(c)
	// 80 gap instructions at width 4 = 20 cycles, plus miss latency
	// (100/2 MLP) and the L1 hit.
	if c.Now() < 20 {
		t.Fatalf("clock = %d, too small", c.Now())
	}
	if got := c.Stats().Retired; got != 82 {
		t.Fatalf("retired = %d, want 82", got)
	}
}

func TestMLPDividesStall(t *testing.T) {
	mk := func(mlp float64) sim.Cycle {
		u := &fakeUncore{grant: coher.PrivExclusive, lat: 1000}
		p := tinyParams()
		p.LoadMLP = mlp
		c := New(0, p, &sliceStream{q: []Access{{Kind: Load, Addr: 8}}}, u)
		drain(c)
		return c.Now()
	}
	if a, b := mk(1), mk(4); b >= a {
		t.Fatalf("MLP 4 (%d cycles) must be faster than MLP 1 (%d)", b, a)
	}
}

func TestStreamPrefetcher(t *testing.T) {
	run := func(degree int) (misses, prefetches uint64) {
		u := &fakeUncore{grant: coher.PrivExclusive, lat: 100}
		p := tinyParams()
		p.PrefetchDegree = degree
		var accs []Access
		for i := 0; i < 24; i++ {
			accs = append(accs, Access{Kind: Load, Addr: coher.Addr(0x100 + i)})
		}
		c := New(0, p, &sliceStream{q: accs}, u)
		drain(c)
		st := c.Stats()
		return st.L2Misses, st.Prefetches
	}
	m0, p0 := run(0)
	m2, p2 := run(2)
	if p0 != 0 {
		t.Fatalf("prefetches with degree 0: %d", p0)
	}
	if p2 == 0 {
		t.Fatal("stream prefetcher never fired on a sequential walk")
	}
	if m2 >= m0 {
		t.Fatalf("prefetching did not reduce demand misses: %d vs %d", m2, m0)
	}
}

func TestStatIntervalStreamsIPC(t *testing.T) {
	accs := make([]Access, 200)
	for i := range accs {
		accs[i] = Access{Kind: Load, Addr: coher.Addr(i * 64), Gap: 7}
	}
	u := &fakeUncore{grant: coher.PrivExclusive, lat: 100}
	p := tinyParams()
	p.StatInterval = 100
	c := New(0, p, &sliceStream{q: accs}, u)
	drain(c)
	ser := c.IntervalIPC()
	if ser.Count() == 0 {
		t.Fatal("StatInterval > 0 produced no interval samples")
	}
	flat := ser.Flatten()
	if flat.Mean <= 0 || flat.Mean > float64(p.IssueWidth) {
		t.Fatalf("interval IPC mean = %v, want in (0, %d]", flat.Mean, p.IssueWidth)
	}
	// Disabled by default: zero overhead, empty series.
	c2 := New(0, tinyParams(), &sliceStream{q: append([]Access(nil), accs...)}, u)
	drain(c2)
	if c2.IntervalIPC().Count() != 0 {
		t.Fatal("StatInterval = 0 must not sample")
	}
}
