// Package directory implements the sparse-directory organizations the
// paper studies: the traditional NRU-managed baseline at arbitrary R×
// sizing, the replacement-disabled directory ZeroDEV uses, an unbounded
// directory for the motivation studies, the SecDir partitioned directory
// (Yan et al., ISCA 2019), and the Multi-grain Directory (Zebchuk et
// al., MICRO 2013) used as comparison points in Figs. 26 and 27.
package directory

import (
	"sort"

	"repro/internal/coher"
)

// Victim is a live entry forcibly evicted from a directory. The protocol
// engine must invalidate every private copy the entry was tracking;
// those invalidated copies are the directory eviction victims (DEVs).
type Victim struct {
	Addr  coher.Addr
	Entry coher.Entry
}

// Directory is the interface the protocol engine programs against.
// Implementations are not safe for concurrent use.
type Directory interface {
	// Lookup returns the entry tracking addr, if present.
	Lookup(addr coher.Addr) (coher.Entry, bool)

	// Store writes the entry for addr, allocating space when absent and
	// updating in place when present. Storing a dead entry
	// (State == DirInvalid) is equivalent to Free.
	//
	// victims lists live entries evicted to make room (traditional
	// directories and SecDir/MgD internal conflicts). housed is false
	// when the directory refuses the allocation without evicting anyone
	// (replacement-disabled set full, or the NoDir organization); the
	// caller must house the entry elsewhere — under ZeroDEV, in the LLC.
	//
	// The victims slice may alias storage owned by the directory and is
	// valid only until the next Store call on the same directory; callers
	// must finish processing (or copy) it before storing again.
	Store(addr coher.Addr, e coher.Entry) (victims []Victim, housed bool)

	// Free invalidates the entry for addr, if present.
	Free(addr coher.Addr)

	// Touch updates replacement state on a hit.
	Touch(addr coher.Addr)

	// Occupancy reports live entries and total capacity; capacity < 0
	// means unbounded.
	Occupancy() (live, capacity int)

	// Name identifies the organization in reports.
	Name() string
}

// NoDir is the empty directory: every allocation is refused. ZeroDEV
// "without a sparse directory" runs on top of it.
type NoDir struct{}

// Lookup never finds an entry.
func (NoDir) Lookup(coher.Addr) (coher.Entry, bool) { return coher.Entry{}, false }

// Store always refuses to house the entry.
func (NoDir) Store(coher.Addr, coher.Entry) ([]Victim, bool) { return nil, false }

// Free is a no-op.
func (NoDir) Free(coher.Addr) {}

// Touch is a no-op.
func (NoDir) Touch(coher.Addr) {}

// Occupancy reports a zero-capacity structure.
func (NoDir) Occupancy() (int, int) { return 0, 0 }

// Name implements Directory.
func (NoDir) Name() string { return "NoDir" }

// Unbounded is an infinite-capacity directory used by the motivation
// studies (Figs. 2, 3, 5): it never evicts, so it never produces DEVs.
// An optional shadow geometry measures how many live entries would
// *overflow* a finite set-associative organization at any instant — the
// population a ZeroDEV design would have to house in the LLC, which is
// what Fig. 5 projects.
type Unbounded struct {
	m    map[coher.Addr]coher.Entry
	peak int

	shadowSets, shadowWays int
	shadowCount            []uint32
	overflow               int
	peakOverflow           int
}

// NewUnbounded constructs an empty unbounded directory.
func NewUnbounded() *Unbounded {
	return &Unbounded{m: make(map[coher.Addr]coher.Entry)}
}

// SetShadow enables overflow tracking against a hypothetical
// sets×ways organization (the baseline 1× geometry in Fig. 5).
func (u *Unbounded) SetShadow(sets, ways int) {
	u.shadowSets, u.shadowWays = sets, ways
	u.shadowCount = make([]uint32, sets)
}

func (u *Unbounded) shadowAdd(addr coher.Addr) {
	if u.shadowSets == 0 {
		return
	}
	s := int(uint64(addr) & uint64(u.shadowSets-1))
	u.shadowCount[s]++
	if int(u.shadowCount[s]) > u.shadowWays {
		u.overflow++
		if u.overflow > u.peakOverflow {
			u.peakOverflow = u.overflow
		}
	}
}

func (u *Unbounded) shadowRemove(addr coher.Addr) {
	if u.shadowSets == 0 {
		return
	}
	s := int(uint64(addr) & uint64(u.shadowSets-1))
	if int(u.shadowCount[s]) > u.shadowWays {
		u.overflow--
	}
	u.shadowCount[s]--
}

// PeakOverflow reports the high-water mark of entries that would not
// fit the shadow organization — Fig. 5's "additional directory entries".
func (u *Unbounded) PeakOverflow() int { return u.peakOverflow }

// Lookup implements Directory.
func (u *Unbounded) Lookup(addr coher.Addr) (coher.Entry, bool) {
	e, ok := u.m[addr]
	return e, ok
}

// Store implements Directory; it always succeeds without victims.
func (u *Unbounded) Store(addr coher.Addr, e coher.Entry) ([]Victim, bool) {
	if !e.Live() {
		u.Free(addr)
		return nil, true
	}
	if _, present := u.m[addr]; !present {
		u.shadowAdd(addr)
	}
	u.m[addr] = e
	if len(u.m) > u.peak {
		u.peak = len(u.m)
	}
	return nil, true
}

// Free implements Directory.
func (u *Unbounded) Free(addr coher.Addr) {
	if _, present := u.m[addr]; present {
		u.shadowRemove(addr)
		delete(u.m, addr)
	}
}

// Touch implements Directory.
func (u *Unbounded) Touch(coher.Addr) {}

// Occupancy implements Directory.
func (u *Unbounded) Occupancy() (int, int) { return len(u.m), -1 }

// Peak returns the high-water mark of live entries, which Fig. 5 uses to
// project the LLC occupancy of spilled entries.
func (u *Unbounded) Peak() int { return u.peak }

// Name implements Directory.
func (u *Unbounded) Name() string { return "Unbounded" }

// Stater is the optional Directory extension the model checker uses to
// fingerprint an organization's protocol-visible state. Implementations
// must be canonical: two directories from which the engine can reach
// exactly the same behaviors must append identical bytes. Traditional,
// Unbounded, and NoDir implement it.
type Stater interface {
	AppendState(buf []byte) []byte
}

// AppendState implements Stater; NoDir has no state.
func (NoDir) AppendState(buf []byte) []byte { return buf }

// AppendState implements Stater: entries in ascending address order
// (the map has no deterministic order of its own). Shadow-overflow
// instrumentation is measurement-only and excluded.
func (u *Unbounded) AppendState(buf []byte) []byte {
	addrs := make([]coher.Addr, 0, len(u.m))
	for a := range u.m {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		buf = append(buf,
			byte(a), byte(a>>8), byte(a>>16), byte(a>>24),
			byte(a>>32), byte(a>>40), byte(a>>48), byte(a>>56))
		buf = u.m[a].AppendCanonical(buf)
	}
	return buf
}
