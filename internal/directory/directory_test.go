package directory

import (
	"testing"
	"testing/quick"

	"repro/internal/coher"
)

func owned(c coher.CoreID) coher.Entry {
	return coher.Entry{State: coher.DirOwned, Owner: c}
}

func shared(cs ...coher.CoreID) coher.Entry {
	e := coher.Entry{State: coher.DirShared}
	for _, c := range cs {
		e.Sharers.Add(c)
	}
	return e
}

func TestTraditionalEvicts(t *testing.T) {
	d := MustTraditional(8, 8) // one set of eight ways
	for i := 0; i < 8; i++ {
		victims, housed := d.Store(coher.Addr(i), owned(coher.CoreID(i)))
		if !housed || len(victims) != 0 {
			t.Fatalf("insert %d: victims=%v housed=%v", i, victims, housed)
		}
	}
	victims, housed := d.Store(100, owned(0))
	if !housed || len(victims) != 1 {
		t.Fatalf("ninth insert: victims=%v housed=%v", victims, housed)
	}
	if !victims[0].Entry.Live() {
		t.Fatal("victim entry must be live")
	}
	live, capn := d.Occupancy()
	if live != 8 || capn != 8 {
		t.Fatalf("occupancy = %d/%d", live, capn)
	}
}

func TestTraditionalUpdateInPlace(t *testing.T) {
	d := MustTraditional(16, 8)
	d.Store(5, owned(1))
	victims, housed := d.Store(5, shared(1, 2))
	if !housed || len(victims) != 0 {
		t.Fatal("in-place update must not evict")
	}
	e, ok := d.Lookup(5)
	if !ok || e.State != coher.DirShared || !e.Sharers.Contains(2) {
		t.Fatalf("lookup after update = %+v", e)
	}
	// Storing a dead entry frees.
	d.Store(5, coher.Entry{})
	if _, ok := d.Lookup(5); ok {
		t.Fatal("dead store must free")
	}
}

func TestReplacementDisabledRefuses(t *testing.T) {
	d := MustReplacementDisabled(8, 8)
	for i := 0; i < 8; i++ {
		if _, housed := d.Store(coher.Addr(i), owned(0)); !housed {
			t.Fatalf("insert %d refused with free ways", i)
		}
	}
	victims, housed := d.Store(100, owned(0))
	if housed || len(victims) != 0 {
		t.Fatal("full replacement-disabled set must refuse without victims")
	}
	// Freeing one way re-enables allocation.
	d.Free(3)
	if _, housed := d.Store(100, owned(0)); !housed {
		t.Fatal("allocation after free refused")
	}
}

func TestNoDir(t *testing.T) {
	var d NoDir
	if _, housed := d.Store(1, owned(0)); housed {
		t.Fatal("NoDir must refuse everything")
	}
	if _, ok := d.Lookup(1); ok {
		t.Fatal("NoDir lookup must miss")
	}
	live, capn := d.Occupancy()
	if live != 0 || capn != 0 {
		t.Fatal("NoDir occupancy must be zero")
	}
}

func TestUnboundedPeak(t *testing.T) {
	u := NewUnbounded()
	for i := 0; i < 100; i++ {
		u.Store(coher.Addr(i), owned(0))
	}
	for i := 0; i < 50; i++ {
		u.Free(coher.Addr(i))
	}
	live, capn := u.Occupancy()
	if live != 50 || capn != -1 {
		t.Fatalf("occupancy = %d/%d", live, capn)
	}
	if u.Peak() != 100 {
		t.Fatalf("peak = %d, want 100", u.Peak())
	}
}

func TestSecDirMigrationAndDEVs(t *testing.T) {
	// Tiny SecDir: shared 1 set x 2 ways, private 1 set x 1 way per core.
	s := MustSecDir(4, 1, 2, 1, 1)
	// Two entries fill the shared partition.
	s.Store(1, shared(0, 1))
	s.Store(2, owned(2))
	// Third allocation migrates the NRU victim into private partitions
	// (not a DEV by itself).
	victims, housed := s.Store(3, owned(3))
	if !housed {
		t.Fatal("allocation refused")
	}
	if len(victims) != 0 {
		t.Fatalf("migration produced victims: %v", victims)
	}
	// The migrated entry is still visible, assembled from private
	// partitions.
	e1, ok := s.Lookup(1)
	if !ok || e1.State != coher.DirShared || !e1.Sharers.Contains(0) || !e1.Sharers.Contains(1) {
		t.Fatalf("migrated entry = %+v ok=%v", e1, ok)
	}
	// A second migration targeting the same cores' single-way private
	// partitions must evict the first private entries: DEVs.
	s.Store(4, shared(0, 1))
	s.Store(5, owned(3))
	victims, _ = s.Store(6, owned(2))
	total := 0
	for _, v := range victims {
		total += v.Entry.Holders().Count()
	}
	if total == 0 {
		t.Fatal("private-partition conflicts must produce DEVs")
	}
}

func TestMgDRegionTracking(t *testing.T) {
	m := MustMgD(64, 8)
	// Blocks 0..15 in region 0, owned by core 1: one region entry.
	for i := 0; i < 16; i++ {
		victims, housed := m.Store(coher.Addr(i), owned(1))
		if !housed || len(victims) != 0 {
			t.Fatalf("private store %d: %v/%v", i, victims, housed)
		}
	}
	e, ok := m.Lookup(3)
	if !ok || e.State != coher.DirOwned || e.Owner != 1 {
		t.Fatalf("region lookup = %+v ok=%v", e, ok)
	}
	// Sharing block 3 demotes it to a block entry.
	m.Store(3, shared(1, 2))
	e, ok = m.Lookup(3)
	if !ok || e.State != coher.DirShared {
		t.Fatalf("after sharing: %+v", e)
	}
	// The rest of the region is still tracked.
	if _, ok := m.Lookup(7); !ok {
		t.Fatal("region tracking lost after one block was shared")
	}
	// Freeing clears the bit without touching neighbours.
	m.Free(7)
	if _, ok := m.Lookup(7); ok {
		t.Fatal("free failed")
	}
	if _, ok := m.Lookup(8); !ok {
		t.Fatal("free clobbered a neighbour")
	}
}

func TestMgDRegionEvictionExpandsVictims(t *testing.T) {
	m := MustMgD(16, 8) // one region set of 8 ways
	// Fill 8 region entries with 16 blocks each.
	for r := 0; r < 8; r++ {
		for b := 0; b < 16; b++ {
			m.Store(coher.Addr(r*RegionBlocks+b), owned(coher.CoreID(r%4)))
		}
	}
	victims, housed := m.Store(coher.Addr(100*RegionBlocks), owned(0))
	if !housed {
		t.Fatal("refused")
	}
	if len(victims) != 16 {
		t.Fatalf("region eviction produced %d victims, want 16", len(victims))
	}
}

// Property: Traditional directory agrees with a reference map as long
// as no evictions occur (all addresses within one set's capacity).
func TestTraditionalMatchesReference(t *testing.T) {
	f := func(ops []uint8) bool {
		d := MustTraditional(64, 8)
		ref := map[coher.Addr]coher.Entry{}
		for _, op := range ops {
			addr := coher.Addr(op % 8 * 8) // 8 addrs in distinct sets
			switch op % 3 {
			case 0:
				e := owned(coher.CoreID(op % 4))
				d.Store(addr, e)
				ref[addr] = e
			case 1:
				e, ok := d.Lookup(addr)
				re, rok := ref[addr]
				if ok != rok {
					return false
				}
				if ok && (e.State != re.State || e.Owner != re.Owner) {
					return false
				}
			case 2:
				d.Free(addr)
				delete(ref, addr)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnboundedShadowOverflow(t *testing.T) {
	u := NewUnbounded()
	u.SetShadow(2, 2) // 2 sets x 2 ways = 4-entry shadow
	// Addresses 0,2,4,6 map to shadow set 0; the third and fourth
	// overflow it.
	for i := 0; i < 4; i++ {
		u.Store(coher.Addr(i*2), owned(0))
	}
	if got := u.PeakOverflow(); got != 2 {
		t.Fatalf("peak overflow = %d, want 2", got)
	}
	// Freeing shrinks current overflow but not the peak.
	u.Free(0)
	u.Free(2)
	u.Store(coher.Addr(8), owned(0)) // back to 3 entries in set 0: +1 overflow
	if got := u.PeakOverflow(); got != 2 {
		t.Fatalf("peak overflow after churn = %d, want 2", got)
	}
	// Re-storing an existing address must not double count.
	u.Store(coher.Addr(8), shared(0, 1))
	if got := u.PeakOverflow(); got != 2 {
		t.Fatalf("peak overflow after update = %d, want 2", got)
	}
}
