package directory

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/coher"
)

// RegionBlocks is the multi-grain region size in blocks: 1 KB regions of
// 64-byte blocks, as in the MgD configuration the paper compares against.
const RegionBlocks = 16

// MgD models the Multi-grain Directory (Zebchuk et al., MICRO 2013), the
// paper's space-efficiency comparison point (Fig. 26). Blocks cached
// privately by a single core are tracked at region granularity: one
// region entry records the owner core and a presence bitmap over the
// region's 16 blocks. Shared or multi-holder blocks fall back to
// conventional block entries. Evicting a region entry invalidates every
// present block of the region in the owner's caches — up to 16 DEVs from
// one directory eviction, which is why MgD degrades faster than ZeroDEV
// as the directory shrinks.
//
// Modeling note: the original design stores both grains in one dual-grain
// array; we split the entry budget evenly between a region array and a
// block array, which preserves the reach-per-entry economics the
// comparison depends on.
type MgD struct {
	regions *cache.Array[regionEntry]
	blocks  *cache.Array[coher.Entry]
	name    string
}

type regionEntry struct {
	owner  coher.CoreID
	bitmap uint16
}

// NewMgD builds a multi-grain directory with the given total entry
// budget split evenly between region and block entries.
func NewMgD(entries, ways int) (*MgD, error) {
	if entries <= 0 || ways <= 0 {
		return nil, fmt.Errorf("directory: bad MgD geometry")
	}
	half := entries / 2
	sets := half / ways
	if sets == 0 {
		sets = 1
	}
	// Round set counts down to a power of two.
	sets = 1 << (bits.Len(uint(sets)) - 1)
	return &MgD{
		regions: cache.New[regionEntry](cache.Geometry{Sets: sets, Ways: ways}, cache.NRU),
		blocks:  cache.New[coher.Entry](cache.Geometry{Sets: sets, Ways: ways}, cache.NRU),
		name:    fmt.Sprintf("MgD(%d region + %d block entries)", sets*ways, sets*ways),
	}, nil
}

// MustMgD panics on construction error.
func MustMgD(entries, ways int) *MgD {
	m, err := NewMgD(entries, ways)
	if err != nil {
		panic(err)
	}
	return m
}

func regionOf(addr coher.Addr) uint64    { return uint64(addr) / RegionBlocks }
func blockInRegion(addr coher.Addr) uint { return uint(uint64(addr) % RegionBlocks) }

// Lookup implements Directory.
func (m *MgD) Lookup(addr coher.Addr) (coher.Entry, bool) {
	if set, way, ok := m.blocks.Lookup(uint64(addr)); ok {
		return *m.blocks.Payload(set, way), true
	}
	if set, way, ok := m.regions.Lookup(regionOf(addr)); ok {
		r := *m.regions.Payload(set, way)
		if r.bitmap&(1<<blockInRegion(addr)) != 0 {
			return coher.Entry{State: coher.DirOwned, Owner: r.owner}, true
		}
	}
	return coher.Entry{}, false
}

// Store implements Directory.
func (m *MgD) Store(addr coher.Addr, e coher.Entry) ([]Victim, bool) {
	if !e.Live() {
		m.Free(addr)
		return nil, true
	}
	// Already tracked at block grain: update in place.
	if set, way, ok := m.blocks.Lookup(uint64(addr)); ok {
		*m.blocks.Payload(set, way) = e
		m.blocks.Touch(set, way)
		return nil, true
	}
	private := e.State == coher.DirOwned && !e.Busy
	if private {
		if victims, done := m.storeRegion(addr, e.Owner); done {
			return victims, true
		}
	}
	// Shared, busy, or region path unavailable: use a block entry. Any
	// stale region-grain tracking for this block must be dropped first.
	m.clearRegionBit(addr)
	return m.storeBlock(addr, e), true
}

// storeRegion tries to track addr through a region entry owned by owner.
func (m *MgD) storeRegion(addr coher.Addr, owner coher.CoreID) ([]Victim, bool) {
	reg := regionOf(addr)
	if set, way, ok := m.regions.Lookup(reg); ok {
		r := m.regions.Payload(set, way)
		if r.owner == owner {
			r.bitmap |= 1 << blockInRegion(addr)
			m.regions.Touch(set, way)
			return nil, true
		}
		// Region privately tracked by another core: this block must be a
		// block entry (ownership is migrating).
		return nil, false
	}
	// Allocate a fresh region entry, possibly evicting one: every present
	// block of the victim region becomes a DEV for its owner.
	var victims []Victim
	set := m.regions.SetIndex(reg)
	way, free := m.regions.FreeWay(set)
	if !free {
		way = m.regions.Victim(set)
		victims = m.expandRegion(set, way)
		m.regions.Invalidate(set, way)
	}
	m.regions.Insert(set, way, reg, regionEntry{owner: owner, bitmap: 1 << blockInRegion(addr)})
	return victims, true
}

// expandRegion converts a region entry into its per-block victims.
func (m *MgD) expandRegion(set, way int) []Victim {
	r := *m.regions.Payload(set, way)
	base := coher.Addr(m.regions.AddrOf(set, way) * RegionBlocks)
	var victims []Victim
	for b := uint(0); b < RegionBlocks; b++ {
		if r.bitmap&(1<<b) != 0 {
			victims = append(victims, Victim{
				Addr:  base + coher.Addr(b),
				Entry: coher.Entry{State: coher.DirOwned, Owner: r.owner},
			})
		}
	}
	return victims
}

func (m *MgD) storeBlock(addr coher.Addr, e coher.Entry) []Victim {
	var victims []Victim
	set := m.blocks.SetIndex(uint64(addr))
	way, free := m.blocks.FreeWay(set)
	if !free {
		way = m.blocks.Victim(set)
		victims = append(victims, Victim{
			Addr:  coher.Addr(m.blocks.AddrOf(set, way)),
			Entry: *m.blocks.Payload(set, way),
		})
	}
	m.blocks.Insert(set, way, uint64(addr), e)
	return victims
}

func (m *MgD) clearRegionBit(addr coher.Addr) {
	if set, way, ok := m.regions.Lookup(regionOf(addr)); ok {
		r := m.regions.Payload(set, way)
		r.bitmap &^= 1 << blockInRegion(addr)
		if r.bitmap == 0 {
			m.regions.Invalidate(set, way)
		}
	}
}

// Free implements Directory.
func (m *MgD) Free(addr coher.Addr) {
	if set, way, ok := m.blocks.Lookup(uint64(addr)); ok {
		m.blocks.Invalidate(set, way)
		return
	}
	m.clearRegionBit(addr)
}

// Touch implements Directory.
func (m *MgD) Touch(addr coher.Addr) {
	if set, way, ok := m.blocks.Lookup(uint64(addr)); ok {
		m.blocks.Touch(set, way)
		return
	}
	if set, way, ok := m.regions.Lookup(regionOf(addr)); ok {
		m.regions.Touch(set, way)
	}
}

// Occupancy implements Directory. Live counts tracked blocks (a region
// entry contributes its popcount); capacity counts array slots.
func (m *MgD) Occupancy() (int, int) {
	live := m.blocks.CountValid()
	m.regions.ForEachValid(func(_, _ int, _ uint64, r *regionEntry) {
		live += bits.OnesCount16(r.bitmap)
	})
	return live, m.blocks.Geometry().Blocks() + m.regions.Geometry().Blocks()
}

// Name implements Directory.
func (m *MgD) Name() string { return m.name }
