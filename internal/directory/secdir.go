package directory

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coher"
)

// SecDir models the Secure Directory of Yan et al. (ISCA 2019), the
// paper's security-oriented comparison point (Fig. 27). The directory is
// split into one shared partition and one private partition per core. A
// new entry starts in the shared partition; when evicted from there it
// migrates into the private partitions of the cores caching the block
// (not a DEV). An eviction from a core's private partition, caused by
// self-conflicts, invalidates that core's copy — which is the residual
// DEV source the ZeroDEV paper points out.
type SecDir struct {
	cores  int
	shared *cache.Array[coher.Entry]
	priv   []*cache.Array[privEntry]
	name   string
}

// privEntry is a private-partition entry: core C caches this block; the
// owned bit records whether C is the owner (M/E) rather than a sharer.
// Private entries need no sharer list, which is where SecDir's storage
// saving comes from.
type privEntry struct {
	owned bool
}

// NewSecDir constructs a SecDir with the given partition geometries.
// The paper's iso-storage 1× configuration for an 8-core socket is
// shared 512×5 and per-core private 32×7 per directory slice.
func NewSecDir(cores, sharedSets, sharedWays, privSets, privWays int) (*SecDir, error) {
	if cores <= 0 || sharedSets <= 0 || sharedWays <= 0 || privSets <= 0 || privWays <= 0 {
		return nil, fmt.Errorf("directory: bad SecDir geometry")
	}
	if sharedSets&(sharedSets-1) != 0 || privSets&(privSets-1) != 0 {
		return nil, fmt.Errorf("directory: SecDir set counts must be powers of two")
	}
	s := &SecDir{
		cores:  cores,
		shared: cache.New[coher.Entry](cache.Geometry{Sets: sharedSets, Ways: sharedWays}, cache.NRU),
		name: fmt.Sprintf("SecDir(shared %d×%d, %d×priv %d×%d)",
			sharedSets, sharedWays, cores, privSets, privWays),
	}
	for i := 0; i < cores; i++ {
		s.priv = append(s.priv, cache.New[privEntry](cache.Geometry{Sets: privSets, Ways: privWays}, cache.NRU))
	}
	return s, nil
}

// MustSecDir panics on construction error.
func MustSecDir(cores, sharedSets, sharedWays, privSets, privWays int) *SecDir {
	s, err := NewSecDir(cores, sharedSets, sharedWays, privSets, privWays)
	if err != nil {
		panic(err)
	}
	return s
}

// Lookup implements Directory: the shared partition and all private
// partitions are probed (in hardware, in parallel) and a distributed
// entry is assembled from the private partitions.
func (s *SecDir) Lookup(addr coher.Addr) (coher.Entry, bool) {
	if set, way, ok := s.shared.Lookup(uint64(addr)); ok {
		return *s.shared.Payload(set, way), true
	}
	return s.assemble(addr)
}

func (s *SecDir) assemble(addr coher.Addr) (coher.Entry, bool) {
	var e coher.Entry
	found := false
	for c := 0; c < s.cores; c++ {
		set, way, ok := s.priv[c].Lookup(uint64(addr))
		if !ok {
			continue
		}
		found = true
		p := *s.priv[c].Payload(set, way)
		if p.owned {
			e.State = coher.DirOwned
			e.Owner = coher.CoreID(c)
		} else {
			if e.State != coher.DirOwned {
				e.State = coher.DirShared
			}
			e.Sharers.Add(coher.CoreID(c))
		}
	}
	return e, found
}

// Store implements Directory.
func (s *SecDir) Store(addr coher.Addr, e coher.Entry) ([]Victim, bool) {
	if !e.Live() {
		s.Free(addr)
		return nil, true
	}
	// In the shared partition already: update in place.
	if set, way, ok := s.shared.Lookup(uint64(addr)); ok {
		*s.shared.Payload(set, way) = e
		s.shared.Touch(set, way)
		return nil, true
	}
	// Distributed across private partitions: reconcile membership.
	if _, ok := s.assemble(addr); ok {
		return s.reconcile(addr, e), true
	}
	// Absent everywhere: allocate in the shared partition.
	var victims []Victim
	set := s.shared.SetIndex(uint64(addr))
	way, free := s.shared.FreeWay(set)
	if !free {
		way = s.shared.Victim(set)
		migrating := *s.shared.Payload(set, way)
		migAddr := coher.Addr(s.shared.AddrOf(set, way))
		s.shared.Invalidate(set, way)
		// Migration to private partitions; private-partition conflicts
		// are the DEVs SecDir cannot avoid.
		victims = append(victims, s.migrate(migAddr, migrating)...)
	}
	s.shared.Insert(set, way, uint64(addr), e)
	return victims, true
}

// migrate moves a shared-partition entry into the private partitions of
// its holder cores.
func (s *SecDir) migrate(addr coher.Addr, e coher.Entry) []Victim {
	var victims []Victim
	owner := e.State == coher.DirOwned
	e.Holders().ForEach(func(c coher.CoreID) {
		victims = append(victims, s.insertPriv(int(c), addr, privEntry{owned: owner})...)
	})
	return victims
}

// insertPriv installs a private entry for core c, evicting a conflicting
// private entry (a DEV for that core) when the set is full.
func (s *SecDir) insertPriv(c int, addr coher.Addr, p privEntry) []Victim {
	arr := s.priv[c]
	if set, way, ok := arr.Lookup(uint64(addr)); ok {
		*arr.Payload(set, way) = p
		arr.Touch(set, way)
		return nil
	}
	var victims []Victim
	set := arr.SetIndex(uint64(addr))
	way, free := arr.FreeWay(set)
	if !free {
		way = arr.Victim(set)
		vp := *arr.Payload(set, way)
		vAddr := coher.Addr(arr.AddrOf(set, way))
		ve := coher.Entry{}
		if vp.owned {
			ve.State = coher.DirOwned
			ve.Owner = coher.CoreID(c)
		} else {
			ve.State = coher.DirShared
			ve.Sharers.Add(coher.CoreID(c))
		}
		victims = append(victims, Victim{Addr: vAddr, Entry: ve})
		arr.Invalidate(set, way)
	}
	arr.Insert(set, way, uint64(addr), p)
	return victims
}

// reconcile updates a distributed entry to match e: holders gain private
// entries, ex-holders lose them.
func (s *SecDir) reconcile(addr coher.Addr, e coher.Entry) []Victim {
	var victims []Victim
	want := e.Holders()
	owner := e.State == coher.DirOwned
	for c := 0; c < s.cores; c++ {
		has := s.priv[c].Contains(uint64(addr))
		if want.Contains(coher.CoreID(c)) {
			victims = append(victims, s.insertPriv(c, addr, privEntry{owned: owner && e.Owner == coher.CoreID(c)})...)
		} else if has {
			set, way, _ := s.priv[c].Lookup(uint64(addr))
			s.priv[c].Invalidate(set, way)
		}
	}
	return victims
}

// Free implements Directory.
func (s *SecDir) Free(addr coher.Addr) {
	if set, way, ok := s.shared.Lookup(uint64(addr)); ok {
		s.shared.Invalidate(set, way)
	}
	for c := 0; c < s.cores; c++ {
		if set, way, ok := s.priv[c].Lookup(uint64(addr)); ok {
			s.priv[c].Invalidate(set, way)
		}
	}
}

// Touch implements Directory.
func (s *SecDir) Touch(addr coher.Addr) {
	if set, way, ok := s.shared.Lookup(uint64(addr)); ok {
		s.shared.Touch(set, way)
		return
	}
	for c := 0; c < s.cores; c++ {
		if set, way, ok := s.priv[c].Lookup(uint64(addr)); ok {
			s.priv[c].Touch(set, way)
		}
	}
}

// Occupancy implements Directory. Capacity counts shared entries plus
// all private entries; a distributed entry occupies one private slot per
// holder.
func (s *SecDir) Occupancy() (int, int) {
	live := s.shared.CountValid()
	capn := s.shared.Geometry().Blocks()
	for c := 0; c < s.cores; c++ {
		live += s.priv[c].CountValid()
		capn += s.priv[c].Geometry().Blocks()
	}
	return live, capn
}

// Name implements Directory.
func (s *SecDir) Name() string { return s.name }
