package directory

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coher"
)

// SecDir models the Secure Directory of Yan et al. (ISCA 2019), the
// paper's security-oriented comparison point (Fig. 27). The directory is
// split into one shared partition and one private partition per core. A
// new entry starts in the shared partition; when evicted from there it
// migrates into the private partitions of the cores caching the block
// (not a DEV). An eviction from a core's private partition, caused by
// self-conflicts, invalidates that core's copy — which is the residual
// DEV source the ZeroDEV paper points out.
type SecDir struct {
	cores  int
	shared *cache.Array[coher.Entry]
	priv   []*cache.Array[privEntry]
	// memb indexes which cores hold a private-partition entry for each
	// address, so distributed lookups probe only the partitions that can
	// hit (word-wise set iteration) instead of scanning all N partitions
	// — the hardware probes them in parallel, but an O(cores) software
	// scan per lookup is what kept SecDir off the scale frontier.
	memb map[coher.Addr]coher.CoreSet
	name string
}

// privEntry is a private-partition entry: core C caches this block; the
// owned bit records whether C is the owner (M/E) rather than a sharer.
// Private entries need no sharer list, which is where SecDir's storage
// saving comes from.
type privEntry struct {
	owned bool
}

// NewSecDir constructs a SecDir with the given partition geometries.
// The paper's iso-storage 1× configuration for an 8-core socket is
// shared 512×5 and per-core private 32×7 per directory slice.
func NewSecDir(cores, sharedSets, sharedWays, privSets, privWays int) (*SecDir, error) {
	if cores <= 0 || sharedSets <= 0 || sharedWays <= 0 || privSets <= 0 || privWays <= 0 {
		return nil, fmt.Errorf("directory: bad SecDir geometry")
	}
	if sharedSets&(sharedSets-1) != 0 || privSets&(privSets-1) != 0 {
		return nil, fmt.Errorf("directory: SecDir set counts must be powers of two")
	}
	s := &SecDir{
		cores:  cores,
		shared: cache.New[coher.Entry](cache.Geometry{Sets: sharedSets, Ways: sharedWays}, cache.NRU),
		memb:   make(map[coher.Addr]coher.CoreSet),
		name: fmt.Sprintf("SecDir(shared %d×%d, %d×priv %d×%d)",
			sharedSets, sharedWays, cores, privSets, privWays),
	}
	for i := 0; i < cores; i++ {
		s.priv = append(s.priv, cache.New[privEntry](cache.Geometry{Sets: privSets, Ways: privWays}, cache.NRU))
	}
	return s, nil
}

// MustSecDir panics on construction error.
func MustSecDir(cores, sharedSets, sharedWays, privSets, privWays int) *SecDir {
	s, err := NewSecDir(cores, sharedSets, sharedWays, privSets, privWays)
	if err != nil {
		panic(err)
	}
	return s
}

// noteMember records that core c now holds a private entry for addr.
func (s *SecDir) noteMember(addr coher.Addr, c coher.CoreID) {
	set := s.memb[addr]
	set.Add(c)
	s.memb[addr] = set
}

// dropMember records that core c no longer holds a private entry for
// addr, retiring the index entry when the last member leaves.
func (s *SecDir) dropMember(addr coher.Addr, c coher.CoreID) {
	set, ok := s.memb[addr]
	if !ok {
		return
	}
	set.Remove(c)
	if set.Empty() {
		delete(s.memb, addr)
	} else {
		s.memb[addr] = set
	}
}

// Lookup implements Directory: the shared partition and all private
// partitions are probed (in hardware, in parallel) and a distributed
// entry is assembled from the private partitions.
func (s *SecDir) Lookup(addr coher.Addr) (coher.Entry, bool) {
	if set, way, ok := s.shared.Lookup(uint64(addr)); ok {
		return *s.shared.Payload(set, way), true
	}
	return s.assemble(addr)
}

func (s *SecDir) assemble(addr coher.Addr) (coher.Entry, bool) {
	var e coher.Entry
	found := false
	s.memb[addr].ForEach(func(c coher.CoreID) {
		set, way, ok := s.priv[c].Lookup(uint64(addr))
		if !ok {
			panic(fmt.Sprintf("directory: SecDir membership index lists core %d for %#x without a private entry", c, uint64(addr)))
		}
		found = true
		p := *s.priv[c].Payload(set, way)
		if p.owned {
			e.State = coher.DirOwned
			e.Owner = c
		} else {
			if e.State != coher.DirOwned {
				e.State = coher.DirShared
			}
			e.Sharers.Add(c)
		}
	})
	return e, found
}

// Store implements Directory.
func (s *SecDir) Store(addr coher.Addr, e coher.Entry) ([]Victim, bool) {
	if !e.Live() {
		s.Free(addr)
		return nil, true
	}
	// In the shared partition already: update in place.
	if set, way, ok := s.shared.Lookup(uint64(addr)); ok {
		*s.shared.Payload(set, way) = e
		s.shared.Touch(set, way)
		return nil, true
	}
	// Distributed across private partitions: reconcile membership.
	if _, ok := s.memb[addr]; ok {
		return s.reconcile(addr, e), true
	}
	// Absent everywhere: allocate in the shared partition.
	var victims []Victim
	set := s.shared.SetIndex(uint64(addr))
	way, free := s.shared.FreeWay(set)
	if !free {
		way = s.shared.Victim(set)
		migrating := *s.shared.Payload(set, way)
		migAddr := coher.Addr(s.shared.AddrOf(set, way))
		s.shared.Invalidate(set, way)
		// Migration to private partitions; private-partition conflicts
		// are the DEVs SecDir cannot avoid.
		victims = append(victims, s.migrate(migAddr, migrating)...)
	}
	s.shared.Insert(set, way, uint64(addr), e)
	return victims, true
}

// migrate moves a shared-partition entry into the private partitions of
// its holder cores.
func (s *SecDir) migrate(addr coher.Addr, e coher.Entry) []Victim {
	var victims []Victim
	owner := e.State == coher.DirOwned
	e.Holders().ForEach(func(c coher.CoreID) {
		victims = append(victims, s.insertPriv(c, addr, privEntry{owned: owner})...)
	})
	return victims
}

// insertPriv installs a private entry for core c, evicting a conflicting
// private entry (a DEV for that core) when the set is full.
func (s *SecDir) insertPriv(c coher.CoreID, addr coher.Addr, p privEntry) []Victim {
	arr := s.priv[c]
	if set, way, ok := arr.Lookup(uint64(addr)); ok {
		*arr.Payload(set, way) = p
		arr.Touch(set, way)
		return nil
	}
	var victims []Victim
	set := arr.SetIndex(uint64(addr))
	way, free := arr.FreeWay(set)
	if !free {
		way = arr.Victim(set)
		vp := *arr.Payload(set, way)
		vAddr := coher.Addr(arr.AddrOf(set, way))
		ve := coher.Entry{}
		if vp.owned {
			ve.State = coher.DirOwned
			ve.Owner = c
		} else {
			ve.State = coher.DirShared
			ve.Sharers.Add(c)
		}
		victims = append(victims, Victim{Addr: vAddr, Entry: ve})
		arr.Invalidate(set, way)
		s.dropMember(vAddr, c)
	}
	arr.Insert(set, way, uint64(addr), p)
	s.noteMember(addr, c)
	return victims
}

// reconcile updates a distributed entry to match e: holders gain private
// entries, ex-holders lose them. Both the wanted and the current
// membership are bit-sets, so the sweep visits their union in ascending
// core order — the same order (and therefore the same victim sequence)
// as the old full 0..N scan, without touching uninvolved cores.
func (s *SecDir) reconcile(addr coher.Addr, e coher.Entry) []Victim {
	var victims []Victim
	want := e.Holders()
	owner := e.State == coher.DirOwned
	sweep := s.memb[addr]
	want.ForEach(func(c coher.CoreID) { sweep.Add(c) })
	sweep.ForEach(func(c coher.CoreID) {
		if want.Contains(c) {
			victims = append(victims, s.insertPriv(c, addr, privEntry{owned: owner && e.Owner == c})...)
		} else if set, way, ok := s.priv[c].Lookup(uint64(addr)); ok {
			s.priv[c].Invalidate(set, way)
			s.dropMember(addr, c)
		}
	})
	return victims
}

// Free implements Directory.
func (s *SecDir) Free(addr coher.Addr) {
	if set, way, ok := s.shared.Lookup(uint64(addr)); ok {
		s.shared.Invalidate(set, way)
	}
	s.memb[addr].ForEach(func(c coher.CoreID) {
		if set, way, ok := s.priv[c].Lookup(uint64(addr)); ok {
			s.priv[c].Invalidate(set, way)
		}
	})
	delete(s.memb, addr)
}

// Touch implements Directory.
func (s *SecDir) Touch(addr coher.Addr) {
	if set, way, ok := s.shared.Lookup(uint64(addr)); ok {
		s.shared.Touch(set, way)
		return
	}
	s.memb[addr].ForEach(func(c coher.CoreID) {
		if set, way, ok := s.priv[c].Lookup(uint64(addr)); ok {
			s.priv[c].Touch(set, way)
		}
	})
}

// Occupancy implements Directory. Capacity counts shared entries plus
// all private entries; a distributed entry occupies one private slot per
// holder.
func (s *SecDir) Occupancy() (int, int) {
	live := s.shared.CountValid()
	capn := s.shared.Geometry().Blocks()
	for c := 0; c < s.cores; c++ {
		live += s.priv[c].CountValid()
		capn += s.priv[c].Geometry().Blocks()
	}
	return live, capn
}

// Name implements Directory.
func (s *SecDir) Name() string { return s.name }
