package directory

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coher"
)

// Traditional is the baseline sparse directory: a tagged set-associative
// cache of directory entries managed with 1-bit NRU (Table I). With
// replacement disabled it becomes the simpler structure ZeroDEV uses
// (§III-C4): a new entry takes an invalid way or is refused, so an entry
// disturbs at most one location during its lifetime.
type Traditional struct {
	arr         *cache.Array[coher.Entry]
	replDisable bool
	name        string
	// scratch backs the single-victim slice Store returns, so the
	// baseline's hottest eviction path performs no heap allocation. Per
	// the Directory contract, the slice is valid only until the next
	// Store on this directory.
	scratch [1]Victim
	// live/peak track occupancy incrementally (measurement-only, like
	// Unbounded's shadow tracking; excluded from AppendState).
	live, peak int
}

// NewTraditional builds a sparse directory with the given entry count
// and associativity, using NRU replacement as in the paper's baseline.
func NewTraditional(entries, ways int) (*Traditional, error) {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		return nil, fmt.Errorf("directory: bad geometry entries=%d ways=%d", entries, ways)
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("directory: set count %d not a power of two", sets)
	}
	return &Traditional{
		arr:  cache.New[coher.Entry](cache.Geometry{Sets: sets, Ways: ways}, cache.NRU),
		name: fmt.Sprintf("Sparse(%d×%d,NRU)", sets, ways),
	}, nil
}

// NewReplacementDisabled builds the replacement-disabled sparse
// directory of the ZeroDEV design.
func NewReplacementDisabled(entries, ways int) (*Traditional, error) {
	d, err := NewTraditional(entries, ways)
	if err != nil {
		return nil, err
	}
	d.replDisable = true
	d.name = fmt.Sprintf("SparseNoRepl(%d×%d)", entries/ways, ways)
	return d, nil
}

// MustTraditional panics on construction error.
func MustTraditional(entries, ways int) *Traditional {
	d, err := NewTraditional(entries, ways)
	if err != nil {
		panic(err)
	}
	return d
}

// MustReplacementDisabled panics on construction error.
func MustReplacementDisabled(entries, ways int) *Traditional {
	d, err := NewReplacementDisabled(entries, ways)
	if err != nil {
		panic(err)
	}
	return d
}

// Lookup implements Directory.
func (d *Traditional) Lookup(addr coher.Addr) (coher.Entry, bool) {
	_, way, ok := d.arr.Lookup(uint64(addr))
	if !ok {
		return coher.Entry{}, false
	}
	set := d.arr.SetIndex(uint64(addr))
	return *d.arr.Payload(set, way), true
}

// Store implements Directory.
func (d *Traditional) Store(addr coher.Addr, e coher.Entry) ([]Victim, bool) {
	set, way, ok := d.arr.Lookup(uint64(addr))
	if !e.Live() {
		if ok {
			d.arr.Invalidate(set, way)
			d.live--
		}
		return nil, true
	}
	if ok {
		*d.arr.Payload(set, way) = e
		d.arr.Touch(set, way)
		return nil, true
	}
	if w, free := d.arr.FreeWay(set); free {
		d.arr.Insert(set, w, uint64(addr), e)
		d.allocated()
		return nil, true
	}
	if d.replDisable {
		return nil, false
	}
	w := d.arr.Victim(set)
	d.scratch[0] = Victim{
		Addr:  coher.Addr(d.arr.AddrOf(set, w)),
		Entry: *d.arr.Payload(set, w),
	}
	// Replacement: one live entry out, one in — occupancy unchanged.
	d.arr.Insert(set, w, uint64(addr), e)
	return d.scratch[:], true
}

func (d *Traditional) allocated() {
	d.live++
	if d.live > d.peak {
		d.peak = d.live
	}
}

// Free implements Directory.
func (d *Traditional) Free(addr coher.Addr) {
	if set, way, ok := d.arr.Lookup(uint64(addr)); ok {
		d.arr.Invalidate(set, way)
		d.live--
	}
}

// Peak reports the high-water mark of live entries — the directory
// occupancy surface the backend comparison figures report.
func (d *Traditional) Peak() int { return d.peak }

// SetFull reports whether allocating addr would conflict: addr is
// absent from the directory and its set has no free way. The
// phase-priority backend consults it at admission time to decide
// whether a request pays the NACK/retry ladder.
func (d *Traditional) SetFull(addr coher.Addr) bool {
	if _, _, ok := d.arr.Lookup(uint64(addr)); ok {
		return false
	}
	set := d.arr.SetIndex(uint64(addr))
	_, free := d.arr.FreeWay(set)
	return !free
}

// EvictVictim forcibly evicts the replacement victim of addr's set and
// returns it — the phase-priority escalation path, which victimizes a
// live entry after the NACK budget is spent even on a
// replacement-disabled directory. ok is false when the set has a free
// way or already tracks addr (no eviction needed). The returned victim
// aliases the Store scratch slot and is valid until the next Store.
func (d *Traditional) EvictVictim(addr coher.Addr) (Victim, bool) {
	if _, _, ok := d.arr.Lookup(uint64(addr)); ok {
		return Victim{}, false
	}
	set := d.arr.SetIndex(uint64(addr))
	if _, free := d.arr.FreeWay(set); free {
		return Victim{}, false
	}
	w := d.arr.Victim(set)
	v := Victim{
		Addr:  coher.Addr(d.arr.AddrOf(set, w)),
		Entry: *d.arr.Payload(set, w),
	}
	d.arr.Invalidate(set, w)
	d.live--
	return v, true
}

// Touch implements Directory.
func (d *Traditional) Touch(addr coher.Addr) {
	if set, way, ok := d.arr.Lookup(uint64(addr)); ok {
		d.arr.Touch(set, way)
	}
}

// Occupancy implements Directory.
func (d *Traditional) Occupancy() (int, int) {
	return d.arr.CountValid(), d.arr.Geometry().Blocks()
}

// Name implements Directory.
func (d *Traditional) Name() string { return d.name }

// AppendState implements Stater: the underlying array's tags, NRU
// reference bits, and canonical entry encodings. Reference bits matter
// for the NRU baseline (they steer future victim choices); for the
// replacement-disabled variant they are inert but still deterministic.
func (d *Traditional) AppendState(buf []byte) []byte {
	return d.arr.AppendState(buf, func(b []byte, e *coher.Entry) []byte {
		return e.AppendCanonical(b)
	})
}
