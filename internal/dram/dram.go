// Package dram models main-memory timing in the spirit of DRAMSim2 as
// used by the paper: per-channel, per-rank, per-bank state with an
// open-page row buffer, expressed in CPU cycles. It is not a full DDR
// command scheduler; it captures the three effects the evaluation
// depends on: row-hit vs row-miss latency, bank busy time (write
// pressure from WB_DE), and total DRAM read/write traffic.
package dram

import (
	"fmt"

	"repro/internal/sim"
)

// Params are the timing parameters of a memory system, in CPU cycles.
type Params struct {
	Channels      int
	RanksPerChan  int
	BanksPerRank  int
	RowBufBytes   int
	TRCD          sim.Cycle // activate to column command
	TCAS          sim.Cycle // column command to data
	TRP           sim.Cycle // precharge
	BurstCycles   sim.Cycle // data transfer occupancy per access
	ChannelOverlp bool      // reserved for future use
}

// DDR3_2133 returns the paper's Table I memory system (two single-channel
// DDR3-2133 controllers, two ranks, eight banks, 1 KB row buffer,
// 14-14-14-35) converted to 4 GHz CPU cycles (bus at 1066 MHz, ratio
// ~3.75). channels overrides the channel count for the 128-core
// configuration, which uses eight controllers.
func DDR3_2133(channels int) Params {
	return Params{
		Channels:     channels,
		RanksPerChan: 2,
		BanksPerRank: 8,
		RowBufBytes:  1024,
		TRCD:         52, // 14 bus cycles
		TCAS:         52,
		TRP:          52,
		BurstCycles:  15, // BL=8 on a 64-bit channel
	}
}

// Stats aggregates DRAM activity for a run.
type Stats struct {
	Reads   uint64
	Writes  uint64
	RowHits uint64
	RowMiss uint64
	// DEWrites counts writes caused by directory-entry writebacks
	// (WB_DE), reported against the paper's "<0.5% of DRAM writes arise
	// from directory entry eviction" claim.
	DEWrites uint64
	// DEReads counts reads of corrupted blocks for DE extraction.
	DEReads uint64
}

type bank struct {
	openRow   int64
	busyUntil sim.Cycle
}

// DRAM is a multi-channel memory system. It is not safe for concurrent
// use; the simulator is single-threaded by design.
type DRAM struct {
	p     Params
	banks []bank // channel-major
	stats Stats
}

// New constructs a DRAM system; all row buffers start closed.
func New(p Params) (*DRAM, error) {
	if p.Channels <= 0 || p.RanksPerChan <= 0 || p.BanksPerRank <= 0 {
		return nil, fmt.Errorf("dram: non-positive geometry")
	}
	n := p.Channels * p.RanksPerChan * p.BanksPerRank
	banks := make([]bank, n)
	for i := range banks {
		banks[i].openRow = -1
	}
	return &DRAM{p: p, banks: banks}, nil
}

// MustNew is New that panics on error, for validated presets.
func MustNew(p Params) *DRAM {
	d, err := New(p)
	if err != nil {
		panic(err)
	}
	return d
}

// Stats returns a snapshot of accumulated counters.
func (d *DRAM) Stats() Stats { return d.stats }

// bankOf maps a block address to its bank, interleaving consecutive
// blocks across channels first (maximizing channel parallelism), then
// banks, with the row formed from the remaining bits.
func (d *DRAM) bankOf(blockAddr uint64) (idx int, row int64) {
	ch := int(blockAddr % uint64(d.p.Channels))
	rest := blockAddr / uint64(d.p.Channels)
	nb := d.p.RanksPerChan * d.p.BanksPerRank
	b := int(rest % uint64(nb))
	blocksPerRow := uint64(d.p.RowBufBytes / 64)
	row = int64(rest / uint64(nb) / blocksPerRow)
	return ch*nb + b, row
}

// AccessKind distinguishes demand traffic from directory-entry traffic
// for the paper's instrumentation claims.
type AccessKind uint8

const (
	// KindData is ordinary demand or writeback traffic.
	KindData AccessKind = iota
	// KindDE is directory-entry traffic: WB_DE writes and corrupted-block
	// reads for DE extraction.
	KindDE
)

// Read performs a block read issued at time t and returns its completion
// time.
func (d *DRAM) Read(t sim.Cycle, blockAddr uint64, kind AccessKind) sim.Cycle {
	d.stats.Reads++
	if kind == KindDE {
		d.stats.DEReads++
	}
	return d.access(t, blockAddr)
}

// Write performs a block write issued at time t and returns the time the
// bank is committed; the caller normally does not wait on writes, but
// the bank occupancy delays later reads to the same bank.
func (d *DRAM) Write(t sim.Cycle, blockAddr uint64, kind AccessKind) sim.Cycle {
	d.stats.Writes++
	if kind == KindDE {
		d.stats.DEWrites++
	}
	return d.access(t, blockAddr)
}

func (d *DRAM) access(t sim.Cycle, blockAddr uint64) sim.Cycle {
	bi, row := d.bankOf(blockAddr)
	b := &d.banks[bi]
	start := t
	if b.busyUntil > start {
		start = b.busyUntil
	}
	var lat sim.Cycle
	if b.openRow == row {
		d.stats.RowHits++
		lat = d.p.TCAS
	} else {
		d.stats.RowMiss++
		if b.openRow >= 0 {
			lat = d.p.TRP + d.p.TRCD + d.p.TCAS
		} else {
			lat = d.p.TRCD + d.p.TCAS
		}
		b.openRow = row
	}
	done := start + lat + d.p.BurstCycles
	b.busyUntil = start + lat + d.p.BurstCycles
	return done
}
