package dram

import "testing"

func small() Params {
	return Params{
		Channels: 1, RanksPerChan: 1, BanksPerRank: 2,
		RowBufBytes: 1024,
		TRCD:        10, TCAS: 10, TRP: 10, BurstCycles: 4,
	}
}

func TestRowHitVsMiss(t *testing.T) {
	d := MustNew(small())
	// First access: closed row → TRCD+TCAS+Burst.
	done := d.Read(0, 0, KindData)
	if done != 24 {
		t.Fatalf("first access done=%d, want 24", done)
	}
	// Same bank, same row (even blocks map to bank 0; the 1 KB row holds
	// 16 of them): row hit → TCAS+Burst.
	done2 := d.Read(done, 2, KindData)
	if done2 != done+14 {
		t.Fatalf("row hit done=%d, want %d", done2, done+14)
	}
	// Different row, same bank: precharge+activate+cas.
	far := uint64(32) // bank 0, row 1 (2 banks x 16 blocks per row)
	done3 := d.Read(done2, far, KindData)
	if done3 != done2+34 {
		t.Fatalf("row miss done=%d, want %d", done3, done2+34)
	}
	st := d.Stats()
	if st.Reads != 3 || st.RowHits != 1 || st.RowMiss != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBankBusySerializes(t *testing.T) {
	d := MustNew(small())
	first := d.Read(0, 0, KindData)
	// Issued at t=0 again to the same bank (block 2): waits for the bank.
	second := d.Read(0, 2, KindData)
	if second <= first {
		t.Fatalf("second access (%d) must be delayed past the first (%d)", second, first)
	}
	// A different bank is free in parallel.
	d2 := MustNew(small())
	d2.Read(0, 0, KindData)
	par := d2.Read(0, 1, KindData) // block 1 maps to bank 1
	if par != 24 {
		t.Fatalf("parallel bank access done=%d, want 24", par)
	}
}

func TestKindAccounting(t *testing.T) {
	d := MustNew(small())
	d.Write(0, 0, KindDE)
	d.Write(0, 1, KindData)
	d.Read(0, 2, KindDE)
	st := d.Stats()
	if st.DEWrites != 1 || st.DEReads != 1 || st.Writes != 2 || st.Reads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(Params{}); err == nil {
		t.Fatal("zero geometry accepted")
	}
}

func TestDDR3Preset(t *testing.T) {
	p := DDR3_2133(2)
	if p.Channels != 2 || p.BanksPerRank != 8 || p.RowBufBytes != 1024 {
		t.Fatalf("preset = %+v", p)
	}
	d := MustNew(p)
	if d.Read(0, 0, KindData) == 0 {
		t.Fatal("zero latency")
	}
}
