// Package energy provides an analytic SRAM energy model in the spirit
// of CACTI, used for the paper's single aggregate energy claim: ZeroDEV
// without a sparse directory saves ~9% of the combined sparse-directory
// + LLC energy, trading the directory's leakage and per-access dynamic
// energy for extra LLC reads/writes to housed entries.
//
// The model is deliberately simple: leakage power scales linearly with
// capacity, and dynamic energy per access scales with the square root
// of the capacity of the accessed structure (wordline/bitline length
// growth), with a fixed overhead per access. Constants are normalized
// (arbitrary energy units); only ratios are meaningful, which is all
// the reproduced claim needs.
package energy

import "math"

// Coefficients of the analytic model (normalized units, fitted so the
// dynamic and leakage components of an 8 MB LLC are comparable over a
// typical run, as CACTI reports for LSTP SRAM at this capacity).
const (
	// leakPerBitCycle is leakage energy per bit per cycle.
	leakPerBitCycle = 1e-7
	// dynBase is the fixed dynamic energy per access.
	dynBase = 0.2
	// dynPerSqrtBit scales dynamic energy with array size.
	dynPerSqrtBit = 3e-3
	// HighAssocFactor penalizes the sparse directory's parallel
	// CAM-style search (all ways' tags compared and sharer vectors read
	// on every lookup, replicated per slice) relative to the LLC's
	// serial tag-then-data access.
	HighAssocFactor = 4.0
	// PartialAccessFactor charges reads/updates of a directory entry
	// housed in an LLC line as a fraction of a full data-array access
	// (the entry occupies at most 131 of the 512 bits).
	PartialAccessFactor = 0.3
)

// Structure describes one SRAM array.
type Structure struct {
	Bits      float64
	Banks     float64 // dynamic energy scales with the accessed bank
	AssocMult float64 // 1 for the LLC, HighAssocFactor for directories
}

// LeakageEnergy returns leakage over a cycle span.
func (s Structure) LeakageEnergy(cycles uint64) float64 {
	return leakPerBitCycle * s.Bits * float64(cycles)
}

// DynamicEnergy returns dynamic energy for n accesses.
func (s Structure) DynamicEnergy(n uint64) float64 {
	banks := s.Banks
	if banks < 1 {
		banks = 1
	}
	per := (dynBase + dynPerSqrtBit*math.Sqrt(s.Bits/banks)) * s.AssocMult
	return per * float64(n)
}

// Breakdown is the energy split of the coherence-tracking subsystem.
type Breakdown struct {
	DirLeakage, DirDynamic float64
	LLCLeakage, LLCDynamic float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.DirLeakage + b.DirDynamic + b.LLCLeakage + b.LLCDynamic
}

// DirBitsPerEntry returns the storage of one sparse-directory entry for
// an N-core socket: tag (~26 bits at Table I sizing) + N-bit sharer
// vector + 2 state bits + 1 NRU bit.
func DirBitsPerEntry(cores int) int { return 26 + cores + 3 }

// Estimate computes the breakdown for one run.
//
//	dirEntries   sparse directory capacity (0 for NoDir)
//	llcBytes     LLC capacity (banked eight ways, Table I)
//	cycles       run length
//	dirAccesses  directory slice lookups/updates
//	llcAccesses  LLC data-array accesses (demand + housed-entry traffic)
func Estimate(cores, dirEntries, llcBytes int, cycles, dirAccesses, llcAccesses uint64) Breakdown {
	var b Breakdown
	if dirEntries > 0 {
		dir := Structure{
			Bits:      float64(dirEntries * DirBitsPerEntry(cores)),
			Banks:     8, // one slice per LLC bank
			AssocMult: HighAssocFactor,
		}
		b.DirLeakage = dir.LeakageEnergy(cycles)
		b.DirDynamic = dir.DynamicEnergy(dirAccesses)
	}
	// LLC bits: data plus ~11% tag/state overhead.
	l := Structure{Bits: float64(llcBytes) * 8 * 1.11, Banks: 8, AssocMult: 1}
	b.LLCLeakage = l.LeakageEnergy(cycles)
	b.LLCDynamic = l.DynamicEnergy(llcAccesses)
	return b
}
