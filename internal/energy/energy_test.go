package energy

import "testing"

func TestLeakageScalesWithCapacityAndTime(t *testing.T) {
	a := Structure{Bits: 1000, Banks: 1, AssocMult: 1}
	b := Structure{Bits: 2000, Banks: 1, AssocMult: 1}
	if b.LeakageEnergy(100) != 2*a.LeakageEnergy(100) {
		t.Fatal("leakage must scale linearly with bits")
	}
	if a.LeakageEnergy(200) != 2*a.LeakageEnergy(100) {
		t.Fatal("leakage must scale linearly with cycles")
	}
}

func TestDynamicScaling(t *testing.T) {
	small := Structure{Bits: 1 << 10, Banks: 1, AssocMult: 1}
	big := Structure{Bits: 1 << 20, Banks: 1, AssocMult: 1}
	if big.DynamicEnergy(10) <= small.DynamicEnergy(10) {
		t.Fatal("larger arrays must cost more per access")
	}
	banked := Structure{Bits: 1 << 20, Banks: 8, AssocMult: 1}
	if banked.DynamicEnergy(10) >= big.DynamicEnergy(10) {
		t.Fatal("banking must reduce per-access energy")
	}
	assoc := Structure{Bits: 1 << 20, Banks: 8, AssocMult: HighAssocFactor}
	if assoc.DynamicEnergy(10) <= banked.DynamicEnergy(10) {
		t.Fatal("associative search must cost more")
	}
}

func TestEstimateBreakdown(t *testing.T) {
	b := Estimate(8, 32768, 8<<20, 1_000_000, 500_000, 400_000)
	if b.DirLeakage <= 0 || b.DirDynamic <= 0 || b.LLCLeakage <= 0 || b.LLCDynamic <= 0 {
		t.Fatalf("breakdown has zero components: %+v", b)
	}
	if b.Total() != b.DirLeakage+b.DirDynamic+b.LLCLeakage+b.LLCDynamic {
		t.Fatal("Total mismatch")
	}
	// NoDir: the directory components vanish.
	nb := Estimate(8, 0, 8<<20, 1_000_000, 0, 400_000)
	if nb.DirLeakage != 0 || nb.DirDynamic != 0 {
		t.Fatal("NoDir must have zero directory energy")
	}
	// The directory is a small but non-trivial share of the baseline —
	// the ~9% saving claim needs roughly this band.
	share := (b.DirLeakage + b.DirDynamic) / b.Total()
	if share < 0.02 || share > 0.4 {
		t.Fatalf("directory share = %.3f, outside plausible band", share)
	}
}

func TestDirBitsPerEntry(t *testing.T) {
	if DirBitsPerEntry(8) != 37 {
		t.Fatalf("8-core entry = %d bits", DirBitsPerEntry(8))
	}
	if DirBitsPerEntry(128) != 157 {
		t.Fatalf("128-core entry = %d bits", DirBitsPerEntry(128))
	}
}
