package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/backend"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/llc"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Campaign is one cell of the audit sweep: a protocol backend (with its
// DE-caching policy, for zerodev) crossed with a socket count, run
// against one multithreaded application.
type Campaign struct {
	Name string
	// Backend selects the protocol backend; the zero value is zerodev,
	// whose cells additionally sweep the DE-caching policy axis.
	Backend backend.ID
	Policy  core.DEPolicy
	Sockets int
	App     string
}

// label renders the cell's policy column: the DE-caching policy for
// zerodev cells, "-" for backends without a policy axis.
func (c Campaign) label() string {
	if c.Backend != "" && c.Backend != backend.ZeroDEV {
		return "-"
	}
	return c.Policy.String()
}

// backendName renders the cell's backend column.
func (c Campaign) backendName() string {
	if c.Backend == "" {
		return string(backend.ZeroDEV)
	}
	return string(c.Backend)
}

// Campaigns lists the default sweep: every ZeroDEV DE-caching policy in
// both single- and four-socket organizations, plus one single-socket
// cell per alternative protocol backend. Each cell runs the requested
// kinds intersected with its backend's applicable set (RunCell), so a
// seam a backend does not have is skipped rather than rolled inertly.
func Campaigns() []Campaign {
	return []Campaign{
		{Name: "spillall-1s", Policy: core.SpillAll, Sockets: 1, App: "canneal"},
		{Name: "fpss-1s", Policy: core.FPSS, Sockets: 1, App: "freqmine"},
		{Name: "fuseall-1s", Policy: core.FuseAll, Sockets: 1, App: "vips"},
		{Name: "spillall-4s", Policy: core.SpillAll, Sockets: 4, App: "lu_ncb"},
		{Name: "fpss-4s", Policy: core.FPSS, Sockets: 4, App: "canneal"},
		{Name: "fuseall-4s", Policy: core.FuseAll, Sockets: 4, App: "ocean_cp"},
		{Name: "sparsemesi-1s", Backend: backend.SparseMESI, Sockets: 1, App: "canneal"},
		{Name: "dls-1s", Backend: backend.DLS, Sockets: 1, App: "vips"},
		{Name: "phasepriority-1s", Backend: backend.PhasePriority, Sockets: 1, App: "freqmine"},
	}
}

// SoakCampaigns lists the chaos-soak grid: every backend crossed with
// single- and four-socket organizations, each cell running its full
// applicable fault mix with online invariant audits. Selected with
// `-campaigns soak`; the CI backend-fault-matrix tier runs it short
// under -race.
func SoakCampaigns() []Campaign {
	apps := []string{"canneal", "freqmine", "vips", "ocean_cp"}
	var out []Campaign
	i := 0
	for _, id := range []backend.ID{backend.ZeroDEV, backend.SparseMESI, backend.DLS, backend.PhasePriority} {
		for _, skts := range []int{1, 4} {
			c := Campaign{
				Name:    fmt.Sprintf("soak-%s-%ds", id, skts),
				Backend: id,
				Sockets: skts,
				App:     apps[i%len(apps)],
			}
			if id == backend.ZeroDEV {
				c.Policy = core.FPSS
			}
			out = append(out, c)
			i++
		}
	}
	return out
}

// FilterByBackend keeps the cells whose backend is in sel.
func FilterByBackend(cells []Campaign, sel []backend.ID) []Campaign {
	want := make(map[backend.ID]bool, len(sel))
	for _, id := range sel {
		want[id] = true
	}
	var out []Campaign
	for _, c := range cells {
		id := c.Backend
		if id == "" {
			id = backend.ZeroDEV
		}
		if want[id] {
			out = append(out, c)
		}
	}
	return out
}

// SelectCampaigns filters the known cells by a comma-separated name
// list: "all" keeps the default grid, "soak" expands to the chaos-soak
// grid, and individual names resolve across both.
func SelectCampaigns(s string) ([]Campaign, error) {
	all := append(Campaigns(), SoakCampaigns()...)
	var out []Campaign
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		switch f {
		case "":
			continue
		case "all":
			out = append(out, Campaigns()...)
			continue
		case "soak":
			out = append(out, SoakCampaigns()...)
			continue
		}
		found := false
		for _, c := range all {
			if c.Name == f {
				out = append(out, c)
				found = true
				break
			}
		}
		if !found {
			var names []string
			for _, c := range all {
				names = append(names, c.Name)
			}
			return nil, fmt.Errorf("faults: unknown campaign %q (known: %s, \"all\", or \"soak\")",
				f, strings.Join(names, ", "))
		}
	}
	return out, nil
}

// Violation captures the first invariant failure of a cell with enough
// context to replay and localize it.
type Violation struct {
	Cell string
	Step uint64
	Now  sim.Cycle
	Err  string
	Seed uint64

	LogTail []Event
	Summary string
}

// Diagnostic renders the violation as a multi-line report.
func (v *Violation) Diagnostic() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INVARIANT VIOLATION in cell %q\n", v.Cell)
	fmt.Fprintf(&b, "  at step %d (cycle %d), replay seed %d\n", v.Step, uint64(v.Now), v.Seed)
	fmt.Fprintf(&b, "  %s\n", v.Err)
	fmt.Fprintf(&b, "  engine state: %s\n", v.Summary)
	fmt.Fprintf(&b, "  fault log tail (%d most recent):\n", len(v.LogTail))
	for _, e := range v.LogTail {
		fmt.Fprintf(&b, "    %s\n", e)
	}
	return b.String()
}

// CellResult is one campaign cell's outcome.
type CellResult struct {
	Campaign Campaign
	Steps    uint64
	Cycles   uint64
	Audits   uint64

	Counts                                  [NumKinds]uint64
	FlipsDetected, FlipsMasked, FlipsSilent uint64
	BrokenPutDEs                            uint64
	BrokenInjections                        uint64
	FirstBreakStep                          uint64

	Engine core.Stats
	Socket socket.Stats

	Violation *Violation
}

// engineSummary compresses the recovery-relevant engine counters for
// the violation diagnostic.
func engineSummary(st core.Stats) string {
	return fmt.Sprintf(
		"quarantines=%d forcedWBDE=%d spuriousInval=%d forcedDEV=%d inclEv=%d forcedEv=%d nackPerturb=%d getDE=%d corruptedFetch=%d lastCopy=%d wbDE=%d",
		st.FaultQuarantinedDEs, st.FaultForcedWBDEs, st.FaultInvalidations,
		st.FaultForcedDEVs, st.FaultInclusionEvs, st.FaultForcedEvs, st.FaultNACKStorms,
		st.GetDEFlows, st.CorruptedFetches, st.LastCopyRetrievals, st.DEEvictionsToMemory)
}

// RunCell executes one campaign cell: it builds the system with the
// injector wired into every seam, drives it with perturbation and
// auditing between scheduler steps, and runs one final audit at
// completion. idx distinguishes the cell's RNG stream within the
// campaign seed. The returned error reflects construction failures and
// cancellation (ctx aborts the drive within sim.CancelEvery steps); an
// invariant violation is reported in CellResult.Violation.
func RunCell(ctx context.Context, cfg Config, c Campaign, o harness.Options, idx uint64) (CellResult, error) {
	// Restrict the requested mix to the kinds this cell's backend can
	// actually fire, so "all" stays meaningful per cell and no injector
	// rolls inertly against a seam the backend does not have.
	id := c.Backend
	if id == "" {
		id = backend.ZeroDEV
	}
	cfg.Enabled = Intersect(cfg.Enabled, id)
	in := NewInjector(cfg, sim.NewRNG(o.Seed).Fork(0xFA+idx))
	pre := config.TableI(o.Scale)
	var spec core.SystemSpec
	if b := c.Backend; b == "" || b == backend.ZeroDEV {
		spec = pre.ZeroDEV(1.0/8, c.Policy, llc.DataLRU, llc.NonInclusive)
	} else {
		var err error
		spec, err = pre.ForBackend(b, 1.0/8)
		if err != nil {
			return CellResult{Campaign: c}, err
		}
	}
	prof := workload.MustGet(c.App)

	var (
		tg     targets
		agents []sim.Clocked
		check  func() error
		stSock func() socket.Stats
	)
	if c.Sockets <= 1 {
		spec.WrapHome = func(h core.Home) core.Home { return &chaosHome{Home: h, in: in} }
		sys := core.NewSystem(spec, workload.Threads(prof, spec.Cores, o.Accesses, o.Scale, o.Seed))
		sys.Engine.SetFaultPort(in)
		sys.Engine.SetFaultHooks(in)
		tg.engines = []*core.Engine{sys.Engine}
		tg.cores = [][]*cpu.Core{sys.Cores}
		for _, cc := range sys.Cores {
			agents = append(agents, cc)
		}
		check = sys.Engine.CheckInvariants
		stSock = func() socket.Stats { return socket.Stats{} }
	} else {
		p := socket.DefaultParams(c.Sockets, 65536/o.Scale*8)
		p.WrapHome = func(_ int, h core.Home) core.Home { return &chaosHome{Home: h, in: in} }
		p.Faults = in
		streams := workload.Threads(prof, c.Sockets*spec.Cores, o.Accesses, o.Scale, o.Seed)
		sys, err := socket.New(p, spec, streams)
		if err != nil {
			return CellResult{Campaign: c}, err
		}
		for _, s := range sys.Sockets {
			s.Engine.SetFaultPort(in)
			s.Engine.SetFaultHooks(in)
			tg.engines = append(tg.engines, s.Engine)
			tg.cores = append(tg.cores, s.Cores)
			for _, cc := range s.Cores {
				agents = append(agents, cc)
			}
		}
		check = sys.CheckInvariants
		stSock = sys.Stats
	}

	in.tg = &tg
	res := CellResult{Campaign: c}
	crashAt := uint64(0)
	if cfg.CrashCell == c.Name {
		crashAt = uint64(o.Accesses) // roughly 1/len(agents) through the run
	}
	audit := func(now sim.Cycle) error {
		res.Audits++
		err := check()
		if err != nil && res.Violation == nil {
			res.Violation = &Violation{
				Cell:    c.Name,
				Step:    in.step,
				Now:     now,
				Err:     err.Error(),
				Seed:    o.Seed,
				LogTail: in.LogTail(),
			}
		}
		return err
	}
	hook := func(step uint64, now sim.Cycle) error {
		in.perturb(now, &tg)
		if crashAt != 0 && step == crashAt {
			panic(fmt.Sprintf("faults: deliberate crash injected in cell %q at step %d", c.Name, step))
		}
		if cfg.AuditEvery > 0 && step%uint64(cfg.AuditEvery) == 0 {
			return audit(now)
		}
		return nil
	}
	last, err := sim.Drive(agents, sim.ContextHook(ctx, harness.JobSteps(ctx), hook))
	if err == nil {
		audit(last)
	} else if ctx != nil && ctx.Err() != nil {
		// A cancelled (or watchdog-timed-out) cell is interrupted, not
		// violated: propagate the abort so the table renders CANCELLED /
		// TIMEOUT and the cell is never checkpointed as complete.
		return CellResult{Campaign: c}, err
	}

	res.Steps = in.step
	res.Cycles = uint64(last)
	res.Counts = in.Counts()
	res.FlipsDetected, res.FlipsMasked, res.FlipsSilent = in.FlipsDetected, in.FlipsMasked, in.FlipsSilent
	res.BrokenPutDEs, res.FirstBreakStep = in.BrokenPutDEs, in.FirstBreakStep
	res.BrokenInjections = in.BrokenInjections
	for _, eng := range tg.engines {
		res.Engine.Add(eng.Stats())
	}
	res.Socket = stSock()
	if res.Violation != nil {
		res.Violation.Summary = engineSummary(res.Engine)
	}
	return res, nil
}

// RunCampaigns sweeps the cells on the options' worker pool, renders the
// result table to w, prints the first violation's diagnostic, and
// returns the joined failures (nil when every cell completed with zero
// violations). Output is assembled in submission order, so it is
// byte-identical for every worker count. ctx cancellation aborts
// in-flight cells; when o.Checkpoint is armed, completed cells are
// recorded under the "audit" scope and resumed cells skip execution.
func RunCampaigns(ctx context.Context, cfg Config, cells []Campaign, o harness.Options, w io.Writer) error {
	t := stats.Table{
		Title: "Fault-injection audit: invariant checks under injected protocol faults",
		Headers: []string{"cell", "backend", "policy", "skts", "app", "steps", "audits",
			"flips d/m/s", "wbde -/+", "nack-", "storm", "spur", "nk/iv/dv/ep", "getde/corr/last", "verdict"},
	}
	p := harness.NewPool(ctx, o.Workers, o.Progress, "audit")
	p.EnableRecovery(harness.ReplayMeta{
		Experiment: "audit",
		Scale:      o.Scale,
		Accesses:   o.Accesses,
		Seed:       o.Seed,
		Workers:    o.Workers,
		Backends:   o.Backends,
	}, o.CrashDir, o.Retries)
	p.EnableWatchdog(o.JobTimeout)
	if o.Checkpoint != nil {
		p.EnableCheckpoint(o.Checkpoint, "audit")
	}

	run := func(c Campaign, idx int) *harness.Future[CellResult] {
		return harness.SubmitJob(p, c.Name, func(jctx context.Context) (CellResult, error) {
			return RunCell(jctx, cfg, c, o, uint64(idx))
		})
	}
	var futs []*harness.Future[CellResult]
	if !cfg.FailFast {
		for i, c := range cells {
			futs = append(futs, run(c, i))
		}
	}

	var errs []error
	violations, crashed := 0, 0
	var first *Violation
	for i, c := range cells {
		var (
			r   CellResult
			err error
		)
		if cfg.FailFast {
			// Submit-and-wait serializes the cells so no later cell
			// starts once one has failed.
			r, err = run(c, i).Result()
		} else {
			r, err = futs[i].Result()
		}
		if err != nil {
			crashed++
			errs = append(errs, err)
			cell := harness.CellText(err)
			t.AddRow(c.Name, c.backendName(), c.label(), fmt.Sprint(c.Sockets), c.App,
				cell, cell, cell, cell, cell, cell, cell, cell, cell, cell)
			if cfg.FailFast {
				break
			}
			continue
		}
		verdict := "OK"
		if r.Violation != nil {
			violations++
			verdict = "VIOLATION"
			if first == nil {
				first = r.Violation
			}
			errs = append(errs, fmt.Errorf("faults: cell %s: invariant violation at step %d: %s",
				c.Name, r.Violation.Step, r.Violation.Err))
		}
		cnt := r.Counts
		t.AddRow(c.Name, c.backendName(), c.label(), fmt.Sprint(c.Sockets), c.App,
			fmt.Sprint(r.Steps), fmt.Sprint(r.Audits),
			fmt.Sprintf("%d/%d/%d", r.FlipsDetected, r.FlipsMasked, r.FlipsSilent),
			fmt.Sprintf("%d/%d", cnt[WBDEDrop], cnt[WBDEDup]),
			fmt.Sprint(cnt[DENFDrop]),
			fmt.Sprint(cnt[EvictStorm]),
			fmt.Sprint(cnt[SpuriousInval]),
			fmt.Sprintf("%d/%d/%d/%d", cnt[NACKStorm], cnt[InclVictim], cnt[DirVictim], cnt[EvictPressure]),
			fmt.Sprintf("%d/%d/%d", r.Engine.GetDEFlows, r.Engine.CorruptedFetches, r.Engine.LastCopyRetrievals),
			verdict)
		if r.Violation != nil && cfg.FailFast {
			break
		}
	}
	t.Fprint(w)
	if first != nil {
		fmt.Fprintln(w)
		fmt.Fprint(w, first.Diagnostic())
	}
	fmt.Fprintf(w, "\n[audit: %d cells, %d violations, %d crashed]\n", len(cells), violations, crashed)
	if ferr := p.FailureSummary(); ferr != nil {
		errs = append(errs, ferr)
	}
	return errors.Join(errs...)
}

// WriteList describes the injectors and campaign cells (the `zerodev
// audit -list` output, pinned by a golden test).
func WriteList(w io.Writer) {
	fmt.Fprintln(w, "Fault injectors (-faults, comma-separated or \"all\"):")
	for _, k := range AllKinds() {
		fmt.Fprintf(w, "  %-10s rate %-5.2g %s\n", k, k.Rate(), kindDescs[k])
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Campaign cells (-campaigns, comma-separated or \"all\"; -backend filters):")
	for _, c := range Campaigns() {
		fmt.Fprintf(w, "  %-21s %-13s %-9s x%d socket(s), %s\n",
			c.Name, c.backendName(), c.label(), c.Sockets, c.App)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Chaos-soak cells (-campaigns soak; every backend x fault mix x sockets):")
	for _, c := range SoakCampaigns() {
		fmt.Fprintf(w, "  %-21s %-13s %-9s x%d socket(s), %s\n",
			c.Name, c.backendName(), c.label(), c.Sockets, c.App)
	}
	fmt.Fprintln(w)
	backend.WriteList(w)
}

var kindDescs = [NumKinds]string{
	DEFlip:        "flip one bit of a housed DE encoding at LLC read time",
	WBDEDrop:      "lose a WB_DE message (delivered late by retransmission)",
	WBDEDup:       "deliver a WB_DE message twice (idempotent merge)",
	DENFDrop:      "lose a DENF_NACK (forward retransmitted)",
	EvictStorm:    "force a burst of DE evictions to home memory",
	SpuriousInval: "invalidate every copy of a random private block",
	NACKStorm:     "stretch or collapse a conflicted phase-priority admission",
	InclVictim:    "force inclusion evictions of in-tag tracked LLC lines",
	DirVictim:     "force a sparse-directory victim through the DEV flow",
	EvictPressure: "victimize LLC lines through the backend's displacement flow",
}
