// Package faults implements deterministic, seed-driven fault-injection
// campaigns against the ZeroDEV protocol seams, paired with an online
// invariant auditor.
//
// Injection sites are chosen so the paper's recovery machinery must fire
// for the simulation to survive:
//
//   - bit-flips in spilled/fused DE encodings at LLC read time, which
//     force quarantine (WB_DE of the pre-flip entry to home memory) and
//     later re-fetch through the corrupted-block / GET_DE flows
//     (Figs. 15-16);
//   - dropped or duplicated WB_DE messages, absorbed by retransmission
//     and the home agent's idempotent corrupted-merge;
//   - dropped DENF_NACK responses, absorbed by forward retransmission;
//   - forced DE-eviction storms, stressing the segment-fallback path;
//   - spurious whole-block invalidations, stressing last-copy retrieval
//     (§III-D4).
//
// Every stochastic decision draws from one sim.RNG per campaign cell, so
// a fixed seed replays the identical fault sequence at any worker count.
package faults

import (
	"fmt"
	"strings"

	"repro/internal/coher"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// Kind enumerates the fault injectors.
type Kind int

const (
	// DEFlip flips one random bit of a housed directory entry's 64-byte
	// encoding when a request touches it, at LLC read time.
	DEFlip Kind = iota
	// WBDEDrop loses a WB_DE message; the sender retransmits after a
	// timeout, so home memory sees the entry late.
	WBDEDrop
	// WBDEDup delivers a WB_DE message twice; the home-memory segment
	// write must be idempotent.
	WBDEDup
	// DENFDrop loses a DENF_NACK response to a cross-socket forward; the
	// requester's home agent retransmits the forward.
	DENFDrop
	// EvictStorm force-evicts a burst of housed directory entries to home
	// memory, so later requests must take the segment-fallback and GET_DE
	// paths.
	EvictStorm
	// SpuriousInval invalidates every copy of a random privately-held
	// block, exercising the socket-eviction notice and last-copy flows.
	SpuriousInval

	NumKinds int = iota
)

var kindNames = [NumKinds]string{
	"deflip", "wbde-drop", "wbde-dup", "denf-drop", "storm", "spurious",
}

// defaultRates are per-opportunity injection probabilities: deflip per
// housed-DE touch, wbde-* per WB_DE message, denf-drop per NACK, storm
// and spurious per scheduler step.
var defaultRates = [NumKinds]float64{0.02, 0.25, 0.25, 0.5, 0.01, 0.02}

func (k Kind) String() string {
	if k < 0 || int(k) >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Rate returns the kind's default per-opportunity probability.
func (k Kind) Rate() float64 { return defaultRates[k] }

// AllKinds lists every injector kind.
func AllKinds() []Kind {
	ks := make([]Kind, NumKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// ParseKinds parses a comma-separated injector list ("all" enables
// every kind) into an enable mask.
func ParseKinds(s string) ([NumKinds]bool, error) {
	var mask [NumKinds]bool
	if strings.TrimSpace(s) == "all" {
		for i := range mask {
			mask[i] = true
		}
		return mask, nil
	}
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		found := false
		for i, n := range kindNames {
			if f == n {
				mask[i] = true
				found = true
				break
			}
		}
		if !found {
			return mask, fmt.Errorf("faults: unknown injector %q (known: %s, or \"all\")",
				f, strings.Join(kindNames[:], ", "))
		}
	}
	return mask, nil
}

// Config controls one campaign's fault mix and auditing cadence.
type Config struct {
	// Enabled masks the injector kinds.
	Enabled [NumKinds]bool
	// AuditEvery runs core.CheckInvariants every N scheduler steps
	// (plus once at completion). Zero audits only at completion.
	AuditEvery int
	// StormSize is how many housed entries one EvictStorm retires.
	StormSize int
	// RateScale multiplies every injector's default rate.
	RateScale float64
	// FailFast stops the campaign at the first failing cell.
	FailFast bool
	// CrashCell, when it names a campaign cell, panics that cell
	// mid-run — the harness's crash-resilience test hook.
	CrashCell string
	// BreakRecovery deliberately breaks one recovery path (live PutDE
	// messages are silently dropped) so tests can prove the auditor
	// catches a buggy protocol within one audit interval.
	BreakRecovery bool
}

// DefaultConfig enables every injector at default rates.
func DefaultConfig() Config {
	cfg := Config{AuditEvery: 1000, StormSize: 8, RateScale: 1}
	for i := range cfg.Enabled {
		cfg.Enabled[i] = true
	}
	return cfg
}

// Event is one log entry in the injector's bounded fault log.
type Event struct {
	Step uint64
	Kind Kind
	Addr coher.Addr
	Note string
}

func (e Event) String() string {
	return fmt.Sprintf("step %6d  %-9s  %#010x  %s", e.Step, e.Kind, uint64(e.Addr), e.Note)
}

// logCap bounds the fault log; only the tail is kept for diagnostics.
const logCap = 12

// targets names the engines and cores an injector may perturb between
// scheduler steps.
type targets struct {
	engines []*core.Engine
	cores   [][]*cpu.Core // per engine
}

// Injector drives every fault kind for one campaign cell. It implements
// core.FaultPort (DE bit-flips) and socket.ForwardFaults (NACK drops);
// chaosHome routes WB_DE/PutDE messages through it; perturb injects the
// step-granular kinds. All methods run on the cell's single simulation
// goroutine, so no locking is needed.
type Injector struct {
	rng *sim.RNG
	cfg Config

	step   uint64
	counts [NumKinds]uint64

	// Bit-flip outcome classification.
	FlipsDetected uint64 // decode failed: format violation caught on read
	FlipsMasked   uint64 // flip hit an unused bit: entry unchanged
	FlipsSilent   uint64 // entry silently changed; caught by ECC, quarantined

	// BreakRecovery bookkeeping.
	BrokenPutDEs   uint64
	FirstBreakStep uint64

	log   []Event
	addrs []coher.Addr // scratch for perturb target collection
}

// NewInjector builds an injector drawing from rng.
func NewInjector(cfg Config, rng *sim.RNG) *Injector {
	return &Injector{rng: rng, cfg: cfg}
}

// Counts returns per-kind injection counts (flips count only when they
// altered state; masked flips are excluded).
func (in *Injector) Counts() [NumKinds]uint64 { return in.counts }

// LogTail returns the retained tail of the fault log.
func (in *Injector) LogTail() []Event { return append([]Event(nil), in.log...) }

// Step returns the number of scheduler steps observed so far.
func (in *Injector) Step() uint64 { return in.step }

func (in *Injector) roll(k Kind) bool {
	if !in.cfg.Enabled[k] {
		return false
	}
	return in.rng.Bool(defaultRates[k] * in.cfg.RateScale)
}

func (in *Injector) note(k Kind, addr coher.Addr, note string) {
	if len(in.log) == logCap {
		copy(in.log, in.log[1:])
		in.log = in.log[:logCap-1]
	}
	in.log = append(in.log, Event{Step: in.step, Kind: k, Addr: addr, Note: note})
}

// CorruptHousedDE implements core.FaultPort: it flips one random bit of
// the entry's spilled encoding (the shared entry serialization of
// Figs. 9a/11a) and classifies the outcome. Returning true tells the
// engine ECC caught a changed entry, which quarantines it to home
// memory; detected format violations take the same path, since the
// reader cannot trust the line.
func (in *Injector) CorruptHousedDE(addr coher.Addr, ent coher.Entry, fused bool) bool {
	if !in.roll(DEFlip) {
		return false
	}
	line := coher.EncodeSpilled(ent)
	bit := in.rng.Intn(len(line) * 8)
	line[bit/8] ^= 1 << (bit % 8)
	form := "spilled"
	if fused {
		form = "fused"
	}
	dec, err := coher.DecodeSpilled(line)
	switch {
	case err != nil:
		in.FlipsDetected++
		in.note(DEFlip, addr, fmt.Sprintf("%s DE bit %d: format violation detected, quarantined", form, bit))
	case dec == ent:
		in.FlipsMasked++
		in.note(DEFlip, addr, fmt.Sprintf("%s DE bit %d: masked (unused bit)", form, bit))
		return false
	default:
		in.FlipsSilent++
		in.note(DEFlip, addr, fmt.Sprintf("%s DE bit %d: silent change caught by ECC, quarantined", form, bit))
	}
	in.counts[DEFlip]++
	return true
}

// DropDENFNack implements socket.ForwardFaults: it decides whether the
// NACK from socket f for addr is lost in the interconnect.
func (in *Injector) DropDENFNack(f int, addr coher.Addr) bool {
	if !in.roll(DENFDrop) {
		return false
	}
	in.counts[DENFDrop]++
	in.note(DENFDrop, addr, fmt.Sprintf("DENF_NACK from socket %d lost; forward retransmitted", f))
	return true
}

// perturb runs once per scheduler step, between transactions, and fires
// the step-granular injectors against tg.
func (in *Injector) perturb(now sim.Cycle, tg *targets) {
	in.step++
	if in.roll(EvictStorm) {
		eng := tg.engines[in.rng.Intn(len(tg.engines))]
		in.addrs = in.addrs[:0]
		eng.LLC().ForEachDE(func(a coher.Addr, _ bool, _ coher.Entry) {
			in.addrs = append(in.addrs, a)
		})
		if len(in.addrs) > 0 {
			forced := 0
			for i := 0; i < in.cfg.StormSize; i++ {
				a := in.addrs[in.rng.Intn(len(in.addrs))]
				if eng.ForceDEWriteback(now, a) {
					forced++
				}
			}
			in.counts[EvictStorm]++
			in.note(EvictStorm, in.addrs[0], fmt.Sprintf("eviction storm forced %d WB_DE", forced))
		}
	}
	if in.roll(SpuriousInval) {
		ei := in.rng.Intn(len(tg.engines))
		cores := tg.cores[ei]
		c := cores[in.rng.Intn(len(cores))]
		in.addrs = in.addrs[:0]
		c.ForEachBlock(func(a coher.Addr, _ coher.PrivState) {
			in.addrs = append(in.addrs, a)
		})
		if len(in.addrs) > 0 {
			a := in.addrs[in.rng.Intn(len(in.addrs))]
			if tg.engines[ei].InjectInvalidation(now, a) {
				in.counts[SpuriousInval]++
				in.note(SpuriousInval, a, "spurious invalidation of all copies")
			}
		}
	}
}

// retryCycles models the retransmission timeout for lost or duplicated
// home-memory messages.
const retryCycles = 200

// chaosHome decorates a core.Home, interposing the injector on the
// WB_DE and PutDE message flows. The synchronous engine model lets a
// dropped message be expressed as its retransmitted (delayed) delivery
// and a duplicated one as two deliveries — the home's segment write is
// idempotent, which is exactly the property under test.
type chaosHome struct {
	core.Home
	in *Injector
}

func (h *chaosHome) WBDE(t sim.Cycle, socket int, addr coher.Addr, e coher.Entry) {
	switch {
	case h.in.roll(WBDEDrop):
		h.in.counts[WBDEDrop]++
		h.in.note(WBDEDrop, addr, "WB_DE lost; retransmitted after timeout")
		h.Home.WBDE(t+retryCycles, socket, addr, e)
	case h.in.roll(WBDEDup):
		h.in.counts[WBDEDup]++
		h.in.note(WBDEDup, addr, "WB_DE duplicated; second delivery merged idempotently")
		h.Home.WBDE(t, socket, addr, e)
		h.Home.WBDE(t+retryCycles, socket, addr, e)
	default:
		h.Home.WBDE(t, socket, addr, e)
	}
}

// PutDE is where BreakRecovery bites: live recovered entries are
// silently discarded instead of written to their segment, leaving home
// memory claiming holders that no longer exist. The online auditor must
// flag this within one audit interval.
func (h *chaosHome) PutDE(t sim.Cycle, socket int, addr coher.Addr, e coher.Entry) {
	if h.in.cfg.BreakRecovery && e.Live() {
		h.in.BrokenPutDEs++
		if h.in.FirstBreakStep == 0 {
			h.in.FirstBreakStep = h.in.step + 1 // the step currently executing
		}
		h.in.note(SpuriousInval, addr, "BROKEN RECOVERY: live PutDE dropped")
		return
	}
	h.Home.PutDE(t, socket, addr, e)
}

// BrokenRecoveryHome decorates a home agent with the BreakRecovery
// defect and nothing else: live PutDE messages (recovered entries being
// written back to their home segment) are silently dropped, while every
// stochastic injector stays disabled. The model checker uses it as a
// known-bad protocol variant that must produce a counterexample —
// validating that the explorer's invariants can actually fail.
func BrokenRecoveryHome(h core.Home) core.Home {
	in := NewInjector(Config{BreakRecovery: true}, sim.NewRNG(0))
	return &chaosHome{Home: h, in: in}
}
