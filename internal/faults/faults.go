// Package faults implements deterministic, seed-driven fault-injection
// campaigns against the ZeroDEV protocol seams, paired with an online
// invariant auditor.
//
// Injection sites are chosen so the paper's recovery machinery must fire
// for the simulation to survive:
//
//   - bit-flips in spilled/fused DE encodings at LLC read time, which
//     force quarantine (WB_DE of the pre-flip entry to home memory) and
//     later re-fetch through the corrupted-block / GET_DE flows
//     (Figs. 15-16);
//   - dropped or duplicated WB_DE messages, absorbed by retransmission
//     and the home agent's idempotent corrupted-merge;
//   - dropped DENF_NACK responses, absorbed by forward retransmission;
//   - forced DE-eviction storms, stressing the segment-fallback path;
//   - spurious whole-block invalidations, stressing last-copy retrieval
//     (§III-D4).
//
// Since the protocol backend became an axis (internal/backend), the
// fault model is backend-aware: each alternative protocol gets
// injectors aimed at the seams its own paper says are load-bearing:
//
//   - NACK storms and dropped-retry-budget perturbations at the
//     phase-priority admission ladder (arXiv 1305.3038), via the
//     core.FaultHooks Admit boundary;
//   - forced inclusion-victim storms and in-tag sharer corruption for
//     DLS, whose coherence state rides the LLC tags (arXiv 1206.4753);
//   - sparse-directory victim-entry injection and NRU-state scrambling
//     for the bounded MESI baseline;
//   - a cross-backend eviction-pressure storm that victimizes LLC lines
//     through each backend's own displacement flow.
//
// backend.Info.Faults declares which kinds can fire on which backend;
// Applicable derives the mask and ValidateKinds turns an impossible
// selection into a named error instead of an inert clean campaign.
//
// Every stochastic decision draws from one sim.RNG per campaign cell, so
// a fixed seed replays the identical fault sequence at any worker count.
package faults

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/backend"
	"repro/internal/coher"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// Kind enumerates the fault injectors.
type Kind int

const (
	// DEFlip flips one random bit of a housed directory entry's 64-byte
	// encoding when a request touches it, at LLC read time.
	DEFlip Kind = iota
	// WBDEDrop loses a WB_DE message; the sender retransmits after a
	// timeout, so home memory sees the entry late.
	WBDEDrop
	// WBDEDup delivers a WB_DE message twice; the home-memory segment
	// write must be idempotent.
	WBDEDup
	// DENFDrop loses a DENF_NACK response to a cross-socket forward; the
	// requester's home agent retransmits the forward.
	DENFDrop
	// EvictStorm force-evicts a burst of housed directory entries to home
	// memory, so later requests must take the segment-fallback and GET_DE
	// paths.
	EvictStorm
	// SpuriousInval invalidates every copy of a random privately-held
	// block, exercising the socket-eviction notice and last-copy flows.
	SpuriousInval
	// NACKStorm perturbs a conflicted phase-priority admission at the
	// core.FaultHooks Admit boundary: either the requester is NACKed for
	// extra retry rounds beyond the protocol's budget (a storm), or the
	// retry messages are lost and the ladder's latency charge collapses
	// (a dropped retry budget). Latency-only; coherence state is
	// untouched.
	NACKStorm
	// InclVictim force-evicts fused (in-tag tracked) LLC lines on an
	// inclusive backend, driving the §III-F inclusion-eviction flow:
	// every tracked holder is invalidated with the line. An ECC-caught
	// in-tag sharer corruption takes the same conservative recovery.
	InclVictim
	// DirVictim force-evicts a live sparse-directory entry on a
	// real-DEV backend through the ordinary DEV flow, and scrambles the
	// directory's NRU state so organic victim selection diverges.
	DirVictim
	// EvictPressure victimizes whatever the LLC holds for a block —
	// spilled/fused entries and data lines — through the backend's own
	// displacement flow (WB_DE on zerodev, inclusion eviction on DLS,
	// plain writeback for data), composing with every other kind.
	EvictPressure

	NumKinds int = iota
)

var kindNames = [NumKinds]string{
	"deflip", "wbde-drop", "wbde-dup", "denf-drop", "storm", "spurious",
	"nack-storm", "incl-victim", "dir-victim", "evict-pressure",
}

// defaultRates are per-opportunity injection probabilities: deflip per
// housed-DE touch, wbde-* per WB_DE message, denf-drop per NACK,
// nack-storm per conflicted admission, and the rest per scheduler step.
var defaultRates = [NumKinds]float64{
	0.02, 0.25, 0.25, 0.5, 0.01, 0.02,
	0.2, 0.02, 0.02, 0.02,
}

func (k Kind) String() string {
	if k < 0 || int(k) >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Rate returns the kind's default per-opportunity probability.
func (k Kind) Rate() float64 { return defaultRates[k] }

// AllKinds lists every injector kind.
func AllKinds() []Kind {
	ks := make([]Kind, NumKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// ParseKinds parses a comma-separated injector list ("all" enables
// every kind) into an enable mask.
func ParseKinds(s string) ([NumKinds]bool, error) {
	var mask [NumKinds]bool
	if strings.TrimSpace(s) == "all" {
		for i := range mask {
			mask[i] = true
		}
		return mask, nil
	}
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		found := false
		for i, n := range kindNames {
			if f == n {
				mask[i] = true
				found = true
				break
			}
		}
		if !found {
			return mask, fmt.Errorf("faults: unknown injector %q (known: %s, or \"all\")",
				f, strings.Join(kindNames[:], ", "))
		}
	}
	return mask, nil
}

// ErrInapplicableKind is the sentinel wrapped when a selected injector
// kind cannot fire on any selected backend, so `zerodev audit` refuses
// the combination by name instead of running an inert clean campaign.
var ErrInapplicableKind = errors.New("faults: injector not applicable to selected backend(s)")

// Applicable returns the kind mask backend id's seams can actually
// fire, derived from the registry's declared fault-kind names. Unknown
// names in the registry are a programming error caught by test.
func Applicable(id backend.ID) [NumKinds]bool {
	var mask [NumKinds]bool
	for _, n := range backend.MustGet(id).Faults {
		for i, kn := range kindNames {
			if n == kn {
				mask[i] = true
				break
			}
		}
	}
	return mask
}

// ApplicableNames returns the declared kind names for id, for error
// messages and listings.
func ApplicableNames(id backend.ID) []string {
	return append([]string(nil), backend.MustGet(id).Faults...)
}

// ValidateKinds rejects enabled kinds that no backend in ids can fire.
// The returned error wraps ErrInapplicableKind and names the offending
// kinds plus each backend's applicable set. Call it only for explicit
// -faults selections; "all" is intersected per cell instead.
func ValidateKinds(enabled [NumKinds]bool, ids []backend.ID) error {
	var union [NumKinds]bool
	for _, id := range ids {
		m := Applicable(id)
		for i := range union {
			union[i] = union[i] || m[i]
		}
	}
	var dead []string
	for i, on := range enabled {
		if on && !union[i] {
			dead = append(dead, kindNames[i])
		}
	}
	if len(dead) == 0 {
		return nil
	}
	var per []string
	for _, id := range ids {
		per = append(per, fmt.Sprintf("%s: %s", id, strings.Join(ApplicableNames(id), ", ")))
	}
	return fmt.Errorf("%w: %s cannot fire (applicable — %s)",
		ErrInapplicableKind, strings.Join(dead, ", "), strings.Join(per, "; "))
}

// Intersect returns enabled restricted to the kinds applicable to id —
// the per-cell mask a campaign actually runs with.
func Intersect(enabled [NumKinds]bool, id backend.ID) [NumKinds]bool {
	m := Applicable(id)
	for i := range m {
		m[i] = m[i] && enabled[i]
	}
	return m
}

// Config controls one campaign's fault mix and auditing cadence.
type Config struct {
	// Enabled masks the injector kinds.
	Enabled [NumKinds]bool
	// AuditEvery runs core.CheckInvariants every N scheduler steps
	// (plus once at completion). Zero audits only at completion.
	AuditEvery int
	// StormSize is how many housed entries one EvictStorm retires.
	StormSize int
	// RateScale multiplies every injector's default rate.
	RateScale float64
	// FailFast stops the campaign at the first failing cell.
	FailFast bool
	// CrashCell, when it names a campaign cell, panics that cell
	// mid-run — the harness's crash-resilience test hook.
	CrashCell string
	// BreakRecovery deliberately breaks one recovery path (live PutDE
	// messages are silently dropped) so tests can prove the auditor
	// catches a buggy protocol within one audit interval.
	BreakRecovery bool
	// BreakKind names one of the backend-aware injector kinds
	// ("nack-storm", "incl-victim", "dir-victim", "evict-pressure")
	// whose known-bad variant is armed: instead of routing the
	// perturbation through the protocol's recovery flow, the injector
	// deliberately corrupts state the way a buggy recovery would
	// (orphaned directory entries, in-place in-tag corruption, dropped
	// WB_DE on displacement). Self-tests run it with AuditEvery=1 to
	// prove the online auditor catches each defect within one interval;
	// it is not reachable from the CLI.
	BreakKind string
}

// EffectiveRate returns the injection probability actually used for k:
// the default per-opportunity rate times RateScale, clamped to [0, 1].
// The documented boundary contract: RateScale 0 disables every kind;
// a scale large enough to push a rate past 1 saturates at certainty
// (fires at every opportunity) rather than erroring; negative scales
// are rejected at flag-parse time and clamp to 0 here.
func (c Config) EffectiveRate(k Kind) float64 {
	r := defaultRates[k] * c.RateScale
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// DefaultConfig enables every injector at default rates.
func DefaultConfig() Config {
	cfg := Config{AuditEvery: 1000, StormSize: 8, RateScale: 1}
	for i := range cfg.Enabled {
		cfg.Enabled[i] = true
	}
	return cfg
}

// Event is one log entry in the injector's bounded fault log.
type Event struct {
	Step uint64
	Kind Kind
	Addr coher.Addr
	Note string
}

func (e Event) String() string {
	return fmt.Sprintf("step %6d  %-9s  %#010x  %s", e.Step, e.Kind, uint64(e.Addr), e.Note)
}

// logCap bounds the fault log; only the tail is kept for diagnostics.
const logCap = 12

// targets names the engines and cores an injector may perturb between
// scheduler steps.
type targets struct {
	engines []*core.Engine
	cores   [][]*cpu.Core // per engine
}

// Injector drives every fault kind for one campaign cell. It implements
// core.FaultPort (DE bit-flips), core.FaultHooks (protocol-dispatch
// seams: admission perturbation and eviction-boundary observation) and
// socket.ForwardFaults (NACK drops); chaosHome routes WB_DE/PutDE
// messages through it; perturb injects the step-granular kinds. All
// methods run on the cell's single simulation goroutine, so no locking
// is needed.
type Injector struct {
	rng *sim.RNG
	cfg Config

	step   uint64
	counts [NumKinds]uint64

	// Bit-flip outcome classification.
	FlipsDetected uint64 // decode failed: format violation caught on read
	FlipsMasked   uint64 // flip hit an unused bit: entry unchanged
	FlipsSilent   uint64 // entry silently changed; caught by ECC, quarantined

	// BreakRecovery / BreakKind bookkeeping.
	BrokenPutDEs     uint64
	BrokenInjections uint64
	FirstBreakStep   uint64

	// Seam-coverage observation counters (core.FaultHooks).
	SeamAdmits, SeamEvictNoDE, SeamLastHolderGone uint64

	log   []Event
	addrs []coher.Addr // scratch for perturb target collection
	tg    *targets     // set by RunCell; lets hook-driven breaks reach the engines
}

// NewInjector builds an injector drawing from rng.
func NewInjector(cfg Config, rng *sim.RNG) *Injector {
	return &Injector{rng: rng, cfg: cfg}
}

// Counts returns per-kind injection counts (flips count only when they
// altered state; masked flips are excluded).
func (in *Injector) Counts() [NumKinds]uint64 { return in.counts }

// LogTail returns the retained tail of the fault log.
func (in *Injector) LogTail() []Event { return append([]Event(nil), in.log...) }

// Step returns the number of scheduler steps observed so far.
func (in *Injector) Step() uint64 { return in.step }

func (in *Injector) roll(k Kind) bool {
	if !in.cfg.Enabled[k] {
		return false
	}
	return in.rng.Bool(in.cfg.EffectiveRate(k))
}

// breaking reports whether k's known-bad variant is armed.
func (in *Injector) breaking(k Kind) bool {
	return in.cfg.BreakKind == kindNames[k]
}

// markBroken records a deliberate state corruption for the self-tests.
func (in *Injector) markBroken(k Kind, addr coher.Addr, what string) {
	in.BrokenInjections++
	if in.FirstBreakStep == 0 {
		in.FirstBreakStep = in.step
	}
	in.note(k, addr, "BROKEN RECOVERY: "+what)
}

func (in *Injector) note(k Kind, addr coher.Addr, note string) {
	if len(in.log) == logCap {
		copy(in.log, in.log[1:])
		in.log = in.log[:logCap-1]
	}
	in.log = append(in.log, Event{Step: in.step, Kind: k, Addr: addr, Note: note})
}

// CorruptHousedDE implements core.FaultPort: it flips one random bit of
// the entry's spilled encoding (the shared entry serialization of
// Figs. 9a/11a) and classifies the outcome. Returning true tells the
// engine ECC caught a changed entry, which quarantines it to home
// memory; detected format violations take the same path, since the
// reader cannot trust the line.
func (in *Injector) CorruptHousedDE(addr coher.Addr, ent coher.Entry, fused bool) bool {
	if !in.roll(DEFlip) {
		return false
	}
	line := coher.EncodeSpilled(ent)
	bit := in.rng.Intn(len(line) * 8)
	line[bit/8] ^= 1 << (bit % 8)
	form := "spilled"
	if fused {
		form = "fused"
	}
	dec, err := coher.DecodeSpilled(line)
	switch {
	case err != nil:
		in.FlipsDetected++
		in.note(DEFlip, addr, fmt.Sprintf("%s DE bit %d: format violation detected, quarantined", form, bit))
	case dec.Same(ent):
		in.FlipsMasked++
		in.note(DEFlip, addr, fmt.Sprintf("%s DE bit %d: masked (unused bit)", form, bit))
		return false
	default:
		in.FlipsSilent++
		in.note(DEFlip, addr, fmt.Sprintf("%s DE bit %d: silent change caught by ECC, quarantined", form, bit))
	}
	in.counts[DEFlip]++
	return true
}

// DropDENFNack implements socket.ForwardFaults: it decides whether the
// NACK from socket f for addr is lost in the interconnect.
func (in *Injector) DropDENFNack(f int, addr coher.Addr) bool {
	if !in.roll(DENFDrop) {
		return false
	}
	in.counts[DENFDrop]++
	in.note(DENFDrop, addr, fmt.Sprintf("DENF_NACK from socket %d lost; forward retransmitted", f))
	return true
}

// AdmitFault implements core.FaultHooks. The engine consults it after
// the backend's Admit hook priced the request's admission; charge > 0
// means the admission conflicted (phase-priority's NACK/retry ladder
// fired), which is the NACKStorm opportunity: half the injections
// stretch the ladder with extra NACK rounds, half drop the retry budget
// so the escalation's charge is never paid. Both are latency-only —
// coherence state is untouched — so a correct protocol must absorb
// either without an invariant wobble.
func (in *Injector) AdmitFault(t sim.Cycle, addr coher.Addr, charge sim.Cycle) sim.Cycle {
	if charge <= 0 {
		return charge
	}
	in.SeamAdmits++
	if in.breaking(NACKStorm) {
		// Known-bad variant: escalation-without-invalidation. The broken
		// home "resolves" the conflict by discarding a live tracked entry
		// outright, leaving its holders orphaned in their private caches.
		if in.tg != nil && len(in.tg.engines) > 0 {
			eng := in.tg.engines[0]
			if a, ok := firstTrackedAddr(eng, in.tg.cores[0]); ok {
				eng.Directory().Free(a)
				in.markBroken(NACKStorm, a, "conflicted admission freed a live entry without invalidations")
			}
		}
		return charge
	}
	if !in.roll(NACKStorm) {
		return charge
	}
	in.counts[NACKStorm]++
	if in.rng.Bool(0.5) {
		rounds := sim.Cycle(1 + in.rng.Intn(4))
		in.note(NACKStorm, addr, fmt.Sprintf("NACK storm: +%d extra retry rounds", rounds))
		return charge * (1 + rounds)
	}
	in.note(NACKStorm, addr, "retry budget dropped: admission charge collapsed")
	return 0
}

// EvictNoDEFault implements core.FaultHooks: it observes an eviction
// notice arriving with no on-socket directory entry (the home-housed
// flow), counting seam coverage for the campaign report.
func (in *Injector) EvictNoDEFault(t sim.Cycle, c coher.CoreID, addr coher.Addr, state coher.PrivState) {
	in.SeamEvictNoDE++
}

// LastHolderGoneFault implements core.FaultHooks: it observes the last
// private copy leaving the socket just before the backend's own
// LastHolderGone dispatch.
func (in *Injector) LastHolderGoneFault(t sim.Cycle, addr coher.Addr, state coher.PrivState) {
	in.SeamLastHolderGone++
}

// firstTrackedAddr finds a privately-cached block whose entry is in the
// sparse directory, scanning cores in index order for determinism.
func firstTrackedAddr(eng *core.Engine, cores []*cpu.Core) (coher.Addr, bool) {
	var found coher.Addr
	ok := false
	for _, c := range cores {
		if ok {
			break
		}
		c.ForEachBlock(func(a coher.Addr, _ coher.PrivState) {
			if !ok {
				if _, live := eng.Directory().Lookup(a); live {
					found, ok = a, true
				}
			}
		})
	}
	return found, ok
}

// perturb runs once per scheduler step, between transactions, and fires
// the step-granular injectors against tg.
func (in *Injector) perturb(now sim.Cycle, tg *targets) {
	in.step++
	if in.roll(EvictStorm) {
		eng := tg.engines[in.rng.Intn(len(tg.engines))]
		in.addrs = in.addrs[:0]
		eng.LLC().ForEachDE(func(a coher.Addr, _ bool, _ coher.Entry) {
			in.addrs = append(in.addrs, a)
		})
		if len(in.addrs) > 0 {
			forced := 0
			for i := 0; i < in.cfg.StormSize; i++ {
				a := in.addrs[in.rng.Intn(len(in.addrs))]
				if eng.ForceDEWriteback(now, a) {
					forced++
				}
			}
			// A storm that forced nothing (a backend with no WB_DE flow)
			// did not inject a fault and must not count as one.
			if forced > 0 {
				in.counts[EvictStorm]++
				in.note(EvictStorm, in.addrs[0], fmt.Sprintf("eviction storm forced %d WB_DE", forced))
			}
		}
	}
	if in.roll(SpuriousInval) {
		ei := in.rng.Intn(len(tg.engines))
		cores := tg.cores[ei]
		c := cores[in.rng.Intn(len(cores))]
		in.addrs = in.addrs[:0]
		c.ForEachBlock(func(a coher.Addr, _ coher.PrivState) {
			in.addrs = append(in.addrs, a)
		})
		if len(in.addrs) > 0 {
			a := in.addrs[in.rng.Intn(len(in.addrs))]
			if tg.engines[ei].InjectInvalidation(now, a) {
				in.counts[SpuriousInval]++
				in.note(SpuriousInval, a, "spurious invalidation of all copies")
			}
		}
	}
	if in.roll(InclVictim) {
		eng := tg.engines[in.rng.Intn(len(tg.engines))]
		in.addrs = in.addrs[:0]
		eng.LLC().ForEachDE(func(a coher.Addr, fused bool, _ coher.Entry) {
			if fused {
				in.addrs = append(in.addrs, a)
			}
		})
		if len(in.addrs) > 0 {
			if in.breaking(InclVictim) {
				a := in.addrs[in.rng.Intn(len(in.addrs))]
				// Known-bad variant: the "ECC recovery" rewrites the in-tag
				// entry with a corrupted holder set instead of conservatively
				// evicting the line.
				if in.corruptInTagEntry(eng, a) {
					in.markBroken(InclVictim, a, "in-tag entry rewritten with corrupted holder set")
				}
			} else if in.rng.Bool(0.5) {
				// In-tag sharer corruption caught by ECC: the line's tracking
				// can no longer be trusted, so the conservative recovery is an
				// inclusion eviction of that single line.
				a := in.addrs[in.rng.Intn(len(in.addrs))]
				if eng.ForceInclusionEviction(now, a) {
					in.counts[InclVictim]++
					in.note(InclVictim, a, "in-tag corruption caught by ECC; line inclusion-evicted")
				}
			} else {
				forced := 0
				var first coher.Addr
				for i := 0; i < in.cfg.StormSize; i++ {
					a := in.addrs[in.rng.Intn(len(in.addrs))]
					if eng.ForceInclusionEviction(now, a) {
						if forced == 0 {
							first = a
						}
						forced++
					}
				}
				if forced > 0 {
					in.counts[InclVictim]++
					in.note(InclVictim, first, fmt.Sprintf("inclusion-victim storm evicted %d tracked lines", forced))
				}
			}
		}
	}
	if in.roll(DirVictim) {
		ei := in.rng.Intn(len(tg.engines))
		eng := tg.engines[ei]
		if a, ok := firstTrackedAddr(eng, tg.cores[ei]); ok {
			switch {
			case in.breaking(DirVictim):
				// Known-bad variant: the victim's entry is freed without the
				// DEV invalidations, orphaning every tracked private copy.
				eng.Directory().Free(a)
				in.markBroken(DirVictim, a, "victim entry freed without DEV invalidations")
			case in.rng.Bool(0.25):
				// NRU-state scramble: replacement metadata only, so organic
				// victim selection diverges while coherence state holds.
				if eng.ScrambleDirectoryNRU(a) {
					in.counts[DirVictim]++
					in.note(DirVictim, a, "directory NRU state scrambled")
				}
			default:
				if eng.ForceDirectoryVictim(now, a) {
					in.counts[DirVictim]++
					in.note(DirVictim, a, "directory victim forced through the DEV flow")
				}
			}
		}
	}
	if in.roll(EvictPressure) {
		eng := tg.engines[in.rng.Intn(len(tg.engines))]
		in.addrs = in.addrs[:0]
		eng.LLC().ForEachDE(func(a coher.Addr, _ bool, _ coher.Entry) {
			in.addrs = append(in.addrs, a)
		})
		eng.LLC().ForEachData(func(a coher.Addr, _ bool) {
			in.addrs = append(in.addrs, a)
		})
		if len(in.addrs) > 0 {
			if in.breaking(EvictPressure) {
				// Known-bad variant: displacement drops a housed live entry on
				// the floor — no WB_DE, no invalidations.
				a := in.addrs[in.rng.Intn(len(in.addrs))]
				if in.dropHousedDE(eng, a) {
					in.markBroken(EvictPressure, a, "housed entry dropped on displacement without WB_DE")
				}
				return
			}
			forced := 0
			var first coher.Addr
			for i := 0; i < in.cfg.StormSize; i++ {
				a := in.addrs[in.rng.Intn(len(in.addrs))]
				if eng.ForceLLCEviction(now, a) {
					if forced == 0 {
						first = a
					}
					forced++
				}
			}
			if forced > 0 {
				in.counts[EvictPressure]++
				in.note(EvictPressure, first, fmt.Sprintf("eviction pressure victimized %d LLC lines", forced))
			}
		}
	}
}

// corruptInTagEntry rewrites the fused (in-tag) entry for addr with a
// deterministically wrong holder set: an owned entry's owner rotates to
// the next core, a shared entry gains the first non-member core (or
// loses its first member when every core already shares). Used only by
// the InclVictim known-bad variant.
func (in *Injector) corruptInTagEntry(eng *core.Engine, addr coher.Addr) bool {
	v := eng.LLC().Probe(addr)
	if !v.Fused {
		return false
	}
	p := eng.LLC().Payload(v, v.DEWay)
	ent := p.Entry
	cores := eng.Params().Cores
	switch ent.State {
	case coher.DirOwned:
		ent.Owner = coher.CoreID((int(ent.Owner) + 1) % cores)
	case coher.DirShared:
		added := false
		for c := 0; c < cores; c++ {
			if !ent.Sharers.Contains(coher.CoreID(c)) {
				ent.Sharers.Add(coher.CoreID(c))
				added = true
				break
			}
		}
		if !added {
			ent.Sharers.Remove(ent.Sharers.First())
		}
	default:
		return false
	}
	p.Entry = ent
	return true
}

// dropHousedDE silently discards addr's LLC-housed entry — the
// EvictPressure known-bad variant's buggy displacement. Reports whether
// an entry was dropped.
func (in *Injector) dropHousedDE(eng *core.Engine, addr coher.Addr) bool {
	v := eng.LLC().Probe(addr)
	if !v.HasDE() {
		return false
	}
	fused := v.Fused
	eng.LLC().DropDE(v)
	if fused {
		if v2 := eng.LLC().Probe(addr); v2.HasData() {
			eng.LLC().InvalidateData(v2)
		}
	}
	return true
}

// retryCycles models the retransmission timeout for lost or duplicated
// home-memory messages.
const retryCycles = 200

// chaosHome decorates a core.Home, interposing the injector on the
// WB_DE and PutDE message flows. The synchronous engine model lets a
// dropped message be expressed as its retransmitted (delayed) delivery
// and a duplicated one as two deliveries — the home's segment write is
// idempotent, which is exactly the property under test.
type chaosHome struct {
	core.Home
	in *Injector
}

func (h *chaosHome) WBDE(t sim.Cycle, socket int, addr coher.Addr, e coher.Entry) {
	switch {
	case h.in.roll(WBDEDrop):
		h.in.counts[WBDEDrop]++
		h.in.note(WBDEDrop, addr, "WB_DE lost; retransmitted after timeout")
		h.Home.WBDE(t+retryCycles, socket, addr, e)
	case h.in.roll(WBDEDup):
		h.in.counts[WBDEDup]++
		h.in.note(WBDEDup, addr, "WB_DE duplicated; second delivery merged idempotently")
		h.Home.WBDE(t, socket, addr, e)
		h.Home.WBDE(t+retryCycles, socket, addr, e)
	default:
		h.Home.WBDE(t, socket, addr, e)
	}
}

// PutDE is where BreakRecovery bites: live recovered entries are
// silently discarded instead of written to their segment, leaving home
// memory claiming holders that no longer exist. The online auditor must
// flag this within one audit interval.
func (h *chaosHome) PutDE(t sim.Cycle, socket int, addr coher.Addr, e coher.Entry) {
	if h.in.cfg.BreakRecovery && e.Live() {
		h.in.BrokenPutDEs++
		if h.in.FirstBreakStep == 0 {
			h.in.FirstBreakStep = h.in.step + 1 // the step currently executing
		}
		h.in.note(SpuriousInval, addr, "BROKEN RECOVERY: live PutDE dropped")
		return
	}
	h.Home.PutDE(t, socket, addr, e)
}

// BrokenRecoveryHome decorates a home agent with the BreakRecovery
// defect and nothing else: live PutDE messages (recovered entries being
// written back to their home segment) are silently dropped, while every
// stochastic injector stays disabled. The model checker uses it as a
// known-bad protocol variant that must produce a counterexample —
// validating that the explorer's invariants can actually fail.
func BrokenRecoveryHome(h core.Home) core.Home {
	in := NewInjector(Config{BreakRecovery: true}, sim.NewRNG(0))
	return &chaosHome{Home: h, in: in}
}
