package faults

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

// tinyOptions shrinks the campaigns to unit-test cost while keeping
// every injector and recovery flow active.
func tinyOptions() harness.Options {
	return harness.Options{Scale: 32, Accesses: 1500, Seed: 1, Workers: 1}
}

// TestCellSurvivesFullFaultMix is the tentpole acceptance check in
// miniature: a cell with every injector enabled completes with zero
// invariant violations, and the fault pressure demonstrably forced the
// paper's recovery flows to fire (quarantines, GET_DE, corrupted-block
// fetches) rather than never exercising them.
func TestCellSurvivesFullFaultMix(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AuditEvery = 250
	for _, cell := range []Campaign{Campaigns()[0], Campaigns()[4]} { // spillall-1s, fpss-4s
		res, err := RunCell(context.Background(), cfg, cell, tinyOptions(), 0)
		if err != nil {
			t.Fatalf("%s: %v", cell.Name, err)
		}
		if res.Violation != nil {
			t.Fatalf("%s: unexpected violation:\n%s", cell.Name, res.Violation.Diagnostic())
		}
		if res.Audits == 0 {
			t.Fatalf("%s: auditor never ran", cell.Name)
		}
		cnt := res.Counts
		if cnt[DEFlip] == 0 || cnt[WBDEDrop] == 0 || cnt[WBDEDup] == 0 ||
			cnt[EvictStorm] == 0 || cnt[SpuriousInval] == 0 {
			t.Fatalf("%s: some injectors never fired: %v", cell.Name, cnt)
		}
		st := res.Engine
		if st.FaultQuarantinedDEs == 0 || st.GetDEFlows == 0 || st.CorruptedFetches == 0 {
			t.Fatalf("%s: recovery flows did not fire: quarantines=%d getDE=%d corrupted=%d",
				cell.Name, st.FaultQuarantinedDEs, st.GetDEFlows, st.CorruptedFetches)
		}
		if cell.Sockets > 1 && cnt[DENFDrop] == 0 {
			t.Fatalf("%s: multi-socket cell never dropped a NACK", cell.Name)
		}
	}
}

// TestCampaignOutputDeterministic proves the byte-determinism
// guarantee: the full campaign report is identical for a fixed seed at
// any worker count.
func TestCampaignOutputDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AuditEvery = 300
	cells := []Campaign{Campaigns()[0], Campaigns()[5]} // spillall-1s, fuseall-4s
	o := tinyOptions()
	o.Accesses = 800
	var serial, parallel bytes.Buffer
	o.Workers = 1
	if err := RunCampaigns(context.Background(), cfg, cells, o, &serial); err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	if err := RunCampaigns(context.Background(), cfg, cells, o, &parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("output differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

// TestBrokenRecoveryCaughtWithinOneInterval is the auditor self-test:
// with the corrupted-entry recovery path deliberately broken (live
// PutDE messages silently dropped), the online auditor must flag the
// resulting stale home-memory entry within one audit interval of the
// first break.
func TestBrokenRecoveryCaughtWithinOneInterval(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BreakRecovery = true
	cfg.AuditEvery = 1
	cfg.RateScale = 2
	res, err := RunCell(context.Background(), cfg, Campaigns()[0], tinyOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BrokenPutDEs == 0 {
		t.Fatal("the broken recovery path never triggered; the self-test exercised nothing")
	}
	if res.Violation == nil {
		t.Fatalf("auditor missed the broken recovery path (%d live PutDEs dropped, first at step %d)",
			res.BrokenPutDEs, res.FirstBreakStep)
	}
	v := res.Violation
	if v.Step < res.FirstBreakStep || v.Step-res.FirstBreakStep > uint64(cfg.AuditEvery) {
		t.Fatalf("violation at step %d, first break at step %d: not within one audit interval (%d)",
			v.Step, res.FirstBreakStep, cfg.AuditEvery)
	}
	diag := v.Diagnostic()
	for _, want := range []string{"INVARIANT VIOLATION", "replay seed 1", "fault log tail", "engine state"} {
		if !strings.Contains(diag, want) {
			t.Fatalf("diagnostic missing %q:\n%s", want, diag)
		}
	}
}

// TestCrashCellYieldsBundleAndErr pins the crash-resilience contract
// end to end: a cell that panics mid-campaign is retried, renders as
// ERR, writes a replay bundle under the crash directory, and fails the
// campaign — without disturbing its sibling cell.
func TestCrashCellYieldsBundleAndErr(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AuditEvery = 300
	cfg.CrashCell = "spillall-1s"
	cells := []Campaign{Campaigns()[0], Campaigns()[1]} // crash + healthy sibling
	o := tinyOptions()
	o.Accesses = 800
	o.CrashDir = t.TempDir()
	o.Retries = 1
	var buf bytes.Buffer
	err := RunCampaigns(context.Background(), cfg, cells, o, &buf)
	if err == nil {
		t.Fatal("campaign with a crashed cell returned nil error")
	}
	if !strings.Contains(err.Error(), "deliberate crash") {
		t.Fatalf("error does not surface the panic: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "ERR") {
		t.Fatalf("crashed cell not rendered as ERR:\n%s", out)
	}
	if !strings.Contains(out, "1 crashed") {
		t.Fatalf("summary line does not count the crash:\n%s", out)
	}
	if !strings.Contains(out, "fpss-1s") || !strings.Contains(out, "OK") {
		t.Fatalf("healthy sibling cell missing from report:\n%s", out)
	}
	bundles, err2 := filepath.Glob(filepath.Join(o.CrashDir, "audit_spillall-1s_j*.json"))
	if err2 != nil || len(bundles) == 0 {
		t.Fatalf("no replay bundle written under %s (glob err %v)", o.CrashDir, err2)
	}
	raw, err2 := os.ReadFile(bundles[len(bundles)-1])
	if err2 != nil {
		t.Fatal(err2)
	}
	var bundle struct {
		Experiment string `json:"experiment"`
		Unit       string `json:"unit"`
		Seed       uint64 `json:"seed"`
		Panic      string `json:"panic"`
		Stack      string `json:"stack"`
	}
	if err2 := json.Unmarshal(raw, &bundle); err2 != nil {
		t.Fatalf("bundle is not valid JSON: %v", err2)
	}
	if bundle.Experiment != "audit" || bundle.Unit != "spillall-1s" || bundle.Seed != 1 ||
		!strings.Contains(bundle.Panic, "deliberate crash") || bundle.Stack == "" {
		t.Fatalf("bundle missing replay fields: %+v", bundle)
	}
}

// TestParseKindsAndCampaigns covers the CLI-facing selectors.
func TestParseKindsAndCampaigns(t *testing.T) {
	mask, err := ParseKinds("deflip, storm")
	if err != nil {
		t.Fatal(err)
	}
	if !mask[DEFlip] || !mask[EvictStorm] || mask[WBDEDrop] || mask[DENFDrop] {
		t.Fatalf("bad mask: %v", mask)
	}
	if _, err := ParseKinds("nope"); err == nil || !strings.Contains(err.Error(), "unknown injector") {
		t.Fatalf("bad kind accepted: %v", err)
	}
	all, err := ParseKinds("all")
	if err != nil {
		t.Fatal(err)
	}
	for k, on := range all {
		if !on {
			t.Fatalf("kind %v not enabled by \"all\"", Kind(k))
		}
	}
	cs, err := SelectCampaigns("fpss-4s,spillall-1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Name != "fpss-4s" || cs[1].Name != "spillall-1s" {
		t.Fatalf("bad selection: %+v", cs)
	}
	if _, err := SelectCampaigns("bogus"); err == nil || !strings.Contains(err.Error(), "unknown campaign") {
		t.Fatalf("bad campaign accepted: %v", err)
	}
}
