package faults

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/backend"
)

// soakCell finds the named chaos-soak cell.
func soakCell(t *testing.T, name string) Campaign {
	t.Helper()
	for _, c := range SoakCampaigns() {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("soak cell %q not in grid", name)
	return Campaign{}
}

// onlyKind enables exactly one injector at an elevated rate with
// per-step auditing, the configuration every backend-aware self-test
// uses.
func onlyKind(k Kind, scale float64) Config {
	cfg := DefaultConfig()
	cfg.Enabled = [NumKinds]bool{}
	cfg.Enabled[k] = true
	cfg.RateScale = scale
	cfg.AuditEvery = 250
	return cfg
}

// TestBackendFaultDeclarationsValid cross-validates the registry: every
// kind name a backend declares must be a real injector kind, every
// backend must declare the cross-backend kinds (denf-drop rides the
// socket layer, evict-pressure the LLC), and each backend-specific kind
// must be declared exactly where its seam exists.
func TestBackendFaultDeclarationsValid(t *testing.T) {
	known := make(map[string]bool, NumKinds)
	for _, k := range AllKinds() {
		known[k.String()] = true
	}
	for _, b := range backend.All() {
		if len(b.Faults) == 0 {
			t.Fatalf("%s declares no applicable fault kinds", b.ID)
		}
		for _, n := range b.Faults {
			if !known[n] {
				t.Fatalf("%s declares unknown fault kind %q", b.ID, n)
			}
		}
		m := Applicable(b.ID)
		if !m[DENFDrop] || !m[EvictPressure] {
			t.Fatalf("%s must declare the cross-backend kinds, got %v", b.ID, b.Faults)
		}
	}
	for id, k := range map[backend.ID]Kind{
		backend.PhasePriority: NACKStorm,
		backend.DLS:           InclVictim,
		backend.SparseMESI:    DirVictim,
	} {
		for _, b := range backend.All() {
			if got := Applicable(b.ID)[k]; got != (b.ID == id) {
				t.Fatalf("kind %v applicable to %s = %v, want %v", k, b.ID, got, b.ID == id)
			}
		}
	}
}

// TestValidateKinds pins the named-error contract for inapplicable
// -faults × -backend selections.
func TestValidateKinds(t *testing.T) {
	var storm [NumKinds]bool
	storm[EvictStorm] = true
	err := ValidateKinds(storm, []backend.ID{backend.DLS})
	if !errors.Is(err, ErrInapplicableKind) {
		t.Fatalf("storm on dls accepted: %v", err)
	}
	for _, want := range []string{"storm", "dls", "incl-victim"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("refusal %q missing %q", err, want)
		}
	}
	// Applicable on at least one selected backend is accepted.
	if err := ValidateKinds(storm, []backend.ID{backend.DLS, backend.ZeroDEV}); err != nil {
		t.Fatalf("storm rejected with zerodev selected: %v", err)
	}
	var nk [NumKinds]bool
	nk[NACKStorm] = true
	if err := ValidateKinds(nk, []backend.ID{backend.PhasePriority}); err != nil {
		t.Fatalf("nack-storm rejected on phasepriority: %v", err)
	}
	if err := ValidateKinds(nk, []backend.ID{backend.ZeroDEV}); !errors.Is(err, ErrInapplicableKind) {
		t.Fatalf("nack-storm on zerodev accepted: %v", err)
	}
}

// TestRateScaleBoundaries is the documented -rate-scale contract as a
// table: scale 0 disables every kind, scales past 1/rate saturate at
// certainty, negative scales clamp to 0 (the CLI rejects them earlier).
func TestRateScaleBoundaries(t *testing.T) {
	cases := []struct {
		name  string
		scale float64
		kind  Kind
		want  float64
	}{
		{"zero-disables", 0, DEFlip, 0},
		{"zero-disables-stormy", 0, EvictStorm, 0},
		{"identity", 1, WBDEDrop, 0.25},
		{"scaled", 2, WBDEDrop, 0.5},
		{"clamped-to-one", 1000, DEFlip, 1},
		{"clamped-exact", 4, DENFDrop, 1},
		{"negative-clamps-to-zero", -3, SpuriousInval, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{RateScale: tc.scale}
			if got := cfg.EffectiveRate(tc.kind); got != tc.want {
				t.Fatalf("EffectiveRate(%v) at scale %g = %g, want %g", tc.kind, tc.scale, got, tc.want)
			}
		})
	}
	// An injector at scale 0 with everything enabled must never fire.
	cfg := DefaultConfig()
	cfg.RateScale = 0
	cfg.AuditEvery = 500
	res, err := RunCell(context.Background(), cfg, Campaigns()[0], tinyOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for k, n := range res.Counts {
		if n != 0 {
			t.Fatalf("kind %v fired %d times at rate-scale 0", Kind(k), n)
		}
	}
	if res.Violation != nil {
		t.Fatalf("unfaulted cell violated invariants:\n%s", res.Violation.Diagnostic())
	}
}

// TestBackendInjectorsFireAndStayClean drives each new backend-specific
// injector alone against its target backend and requires both halves of
// the robustness claim: the injector demonstrably fired through the
// engine's recovery flow, and the online auditor saw zero violations.
func TestBackendInjectorsFireAndStayClean(t *testing.T) {
	cases := []struct {
		cell  string
		kind  Kind
		scale float64
		// firedStat reads the engine-side evidence that the perturbation
		// went through a protocol flow rather than teleporting state.
		check func(t *testing.T, res CellResult)
	}{
		{"soak-phasepriority-1s", NACKStorm, 5, func(t *testing.T, res CellResult) {
			if res.Engine.FaultNACKStorms == 0 {
				t.Fatalf("no admission charge was perturbed: %+v", res.Engine)
			}
		}},
		{"soak-dls-1s", InclVictim, 10, func(t *testing.T, res CellResult) {
			if res.Engine.FaultInclusionEvs == 0 {
				t.Fatalf("no inclusion eviction was forced: %+v", res.Engine)
			}
			if res.Engine.InclusionInvals == 0 {
				t.Fatal("forced inclusion evictions invalidated no holders")
			}
		}},
		{"soak-sparsemesi-1s", DirVictim, 10, func(t *testing.T, res CellResult) {
			if res.Engine.FaultForcedDEVs == 0 {
				t.Fatalf("no directory victim was forced: %+v", res.Engine)
			}
			if res.Engine.DEVs == 0 {
				t.Fatal("forced victims produced no DEV invalidations")
			}
		}},
		{"soak-zerodev-1s", EvictPressure, 10, func(t *testing.T, res CellResult) {
			if res.Engine.FaultForcedEvs == 0 {
				t.Fatalf("no LLC line was victimized: %+v", res.Engine)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			cfg := onlyKind(tc.kind, tc.scale)
			res, err := RunCell(context.Background(), cfg, soakCell(t, tc.cell), tinyOptions(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Counts[tc.kind] == 0 {
				t.Fatalf("injector %v never fired on %s: counts=%v", tc.kind, tc.cell, res.Counts)
			}
			if res.Violation != nil {
				t.Fatalf("correct recovery violated invariants:\n%s", res.Violation.Diagnostic())
			}
			if res.Audits == 0 {
				t.Fatal("auditor never ran")
			}
			tc.check(t, res)
		})
	}
}

// TestBrokenVariantsCaughtWithinOneInterval is the auditor self-test
// for every backend-aware injector: its known-bad variant (a recovery
// path deliberately replaced with the corresponding buggy behaviour)
// must be flagged by the online auditor within one audit interval of
// the first break, on the injector's target backend.
func TestBrokenVariantsCaughtWithinOneInterval(t *testing.T) {
	cases := []struct {
		kind Kind
		cell string
	}{
		{NACKStorm, "soak-phasepriority-1s"},
		{InclVictim, "soak-dls-1s"},
		{DirVictim, "soak-sparsemesi-1s"},
		{EvictPressure, "soak-zerodev-1s"},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			cfg := onlyKind(tc.kind, 50) // saturate the per-step roll
			cfg.AuditEvery = 1
			cfg.BreakKind = tc.kind.String()
			res, err := RunCell(context.Background(), cfg, soakCell(t, tc.cell), tinyOptions(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.BrokenInjections == 0 {
				t.Fatalf("known-bad %v never triggered; the self-test exercised nothing", tc.kind)
			}
			if res.Violation == nil {
				t.Fatalf("auditor missed broken %v (%d injections, first at step %d)",
					tc.kind, res.BrokenInjections, res.FirstBreakStep)
			}
			v := res.Violation
			if v.Step < res.FirstBreakStep || v.Step-res.FirstBreakStep > uint64(cfg.AuditEvery) {
				t.Fatalf("violation at step %d, first break at step %d: not within one audit interval (%d)",
					v.Step, res.FirstBreakStep, cfg.AuditEvery)
			}
			if !strings.Contains(v.Diagnostic(), "BROKEN RECOVERY") {
				t.Fatalf("diagnostic does not show the broken injection:\n%s", v.Diagnostic())
			}
		})
	}
}

// TestSoakGridClean runs the full chaos-soak grid in miniature: every
// backend × its applicable fault mix × 1/4 sockets completes with zero
// invariant violations, and each backend-specific injector fired
// somewhere in the grid.
func TestSoakGridClean(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AuditEvery = 250
	o := tinyOptions()
	o.Accesses = 800
	var total [NumKinds]uint64
	for i, c := range SoakCampaigns() {
		res, err := RunCell(context.Background(), cfg, c, o, uint64(i))
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if res.Violation != nil {
			t.Fatalf("%s: violation:\n%s", c.Name, res.Violation.Diagnostic())
		}
		if res.Audits == 0 {
			t.Fatalf("%s: auditor never ran", c.Name)
		}
		for k, n := range res.Counts {
			total[k] += n
		}
	}
	for _, k := range []Kind{NACKStorm, InclVictim, DirVictim, EvictPressure} {
		if total[k] == 0 {
			t.Fatalf("kind %v never fired anywhere in the soak grid: %v", k, total)
		}
	}
}
