package faults

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// This file extends the fault model from the protocol layer to the
// campaign-service layer (internal/serve): seed-driven injectors for
// the failure modes a distributed coordinator/worker fleet exhibits.
// The same discipline applies as for the protocol injectors — every
// stochastic decision draws from one seeded RNG, so a fixed seed
// replays the identical chaos scenario — and the service must absorb
// every injection with exactly-once cell accounting (the chaos harness
// in internal/serve asserts it over hundreds of seeded scenarios).

// ServiceKind enumerates the service-layer chaos injectors.
type ServiceKind int

const (
	// DupGrant makes the coordinator grant a second, concurrent lease on
	// a cell that is already leased, so two workers race to deliver the
	// same result (the second delivery must be deduplicated).
	DupGrant ServiceKind = iota
	// WorkerStall makes a worker sit on its lease without heartbeating
	// until the lease expires, forcing the expiry → backoff → re-queue
	// path (and possibly a late, stale delivery afterwards).
	WorkerStall
	// StaleHeartbeat makes a worker renew a lease that has already
	// expired or been superseded; the coordinator must refuse the
	// renewal rather than resurrect the lease.
	StaleHeartbeat
	// DoubleDelivery makes a worker send its completed result twice; the
	// second delivery must be recorded as a duplicate, never double
	// counted.
	DoubleDelivery

	NumServiceKinds int = iota
)

var serviceKindNames = [NumServiceKinds]string{
	"dup-grant", "worker-stall", "stale-heartbeat", "double-delivery",
}

// ServiceKindDescs describes each injector for listings and docs.
var ServiceKindDescs = [NumServiceKinds]string{
	DupGrant:       "grant a second concurrent lease on an already-leased cell",
	WorkerStall:    "hold a lease without heartbeating until it expires",
	StaleHeartbeat: "renew a lease after it expired or was superseded",
	DoubleDelivery: "deliver a completed cell result twice",
}

func (k ServiceKind) String() string {
	if k < 0 || int(k) >= NumServiceKinds {
		return fmt.Sprintf("ServiceKind(%d)", int(k))
	}
	return serviceKindNames[k]
}

// defaultServiceRates are per-opportunity injection probabilities:
// dup-grant per lease request, worker-stall per held lease per turn,
// stale-heartbeat per dead lease per turn, double-delivery per
// completed cell.
var defaultServiceRates = [NumServiceKinds]float64{0.10, 0.15, 0.25, 0.25}

// ServiceChaos decides, per opportunity, whether to inject each
// service-layer fault. It is safe for concurrent use (the coordinator
// consults it from HTTP handler goroutines) and counts every injection
// per kind for scenario accounting.
type ServiceChaos struct {
	mu     sync.Mutex
	rng    *sim.RNG
	rates  [NumServiceKinds]float64
	counts [NumServiceKinds]uint64
}

// NewServiceChaos returns an injector drawing from the given seed at
// the default rates. A nil *ServiceChaos is valid and injects nothing,
// so production code consults it unconditionally.
func NewServiceChaos(seed uint64) *ServiceChaos {
	return &ServiceChaos{rng: sim.NewRNG(seed).Fork(0x5E), rates: defaultServiceRates}
}

// SetRate overrides one injector's per-opportunity probability.
func (c *ServiceChaos) SetRate(k ServiceKind, p float64) { c.rates[k] = p }

// Hit reports whether to inject kind k at this opportunity, counting
// the injection when it fires. Nil receivers never inject.
func (c *ServiceChaos) Hit(k ServiceKind) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.rng.Bool(c.rates[k]) {
		return false
	}
	c.counts[k]++
	return true
}

// Injected returns how many times kind k fired.
func (c *ServiceChaos) Injected(k ServiceKind) uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[k]
}

// TotalInjected sums injections across every kind.
func (c *ServiceChaos) TotalInjected() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for _, v := range c.counts {
		n += v
	}
	return n
}
