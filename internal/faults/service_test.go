package faults

import "testing"

// TestServiceChaosDeterminism: two injectors built from the same seed
// make identical decisions (the chaos harness's reproducibility rests
// on this), different seeds diverge, and a nil injector never fires.
func TestServiceChaosDeterminism(t *testing.T) {
	a, b := NewServiceChaos(7), NewServiceChaos(7)
	kinds := []ServiceKind{DupGrant, WorkerStall, StaleHeartbeat, DoubleDelivery}
	for i := 0; i < 2000; i++ {
		k := kinds[i%len(kinds)]
		if a.Hit(k) != b.Hit(k) {
			t.Fatalf("same-seed injectors diverged at draw %d", i)
		}
	}
	if a.TotalInjected() == 0 {
		t.Fatal("2000 draws at default rates injected nothing")
	}
	if a.TotalInjected() != b.TotalInjected() {
		t.Fatalf("same-seed totals differ: %d vs %d", a.TotalInjected(), b.TotalInjected())
	}

	d, e := NewServiceChaos(1), NewServiceChaos(2)
	same := true
	for i := 0; i < 500 && same; i++ {
		same = d.Hit(DupGrant) == e.Hit(DupGrant)
	}
	if same {
		t.Fatal("different seeds produced identical decision streams")
	}

	var nilChaos *ServiceChaos
	for i := 0; i < 100; i++ {
		if nilChaos.Hit(DupGrant) {
			t.Fatal("nil injector fired")
		}
	}
	if nilChaos.TotalInjected() != 0 || nilChaos.Injected(WorkerStall) != 0 {
		t.Fatal("nil injector counted injections")
	}
}

// TestServiceChaosRates: a zeroed rate never fires, a rate of 1 always
// fires, and counts track firings per kind.
func TestServiceChaosRates(t *testing.T) {
	c := NewServiceChaos(3)
	c.SetRate(DupGrant, 0)
	c.SetRate(WorkerStall, 1)
	for i := 0; i < 200; i++ {
		if c.Hit(DupGrant) {
			t.Fatal("rate-0 injector fired")
		}
		if !c.Hit(WorkerStall) {
			t.Fatal("rate-1 injector did not fire")
		}
	}
	if c.Injected(DupGrant) != 0 || c.Injected(WorkerStall) != 200 {
		t.Fatalf("counts = %d/%d, want 0/200", c.Injected(DupGrant), c.Injected(WorkerStall))
	}
}
