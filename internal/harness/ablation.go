package harness

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/coher"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/socket"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Ablations of the design choices DESIGN.md calls out, plus the
// compressed-format extension study (§III-D) and the derived Fig. 12
// design-space summary.

func init() {
	register("fig12", "Fig 12: design space of directory-entry caching (derived)", fig12)
	register("ablation-repl", "Ablation (Sec III-C4): replacement-disabled vs replacement-enabled sparse directory under ZeroDEV", ablationRepl)
	register("ablation-llcrepl", "Ablation (Sec III-D1): plain LRU vs spLRU vs dataLRU under ZeroDEV", ablationLLCRepl)
	register("ablation-backing", "Ablation (Sec III-D5): socket-directory backing schemes on 4 sockets", ablationBacking)
	register("compress", "Extension (Sec III-D): hybrid limited-pointer/coarse-vector entry compression", compressExp)
	register("ablation-prefetch", "Ablation: stream prefetching under baseline and ZeroDEV", ablationPrefetch)
}

// fig12 places the three caching policies on the paper's qualitative
// design-space chart by measuring both axes: LLC space overhead
// (fraction of lines holding spilled entries — fused entries are free)
// and the read-critical-path overhead (extra data-array reads for
// SpillAll, extra three-hop forwards for FuseAll).
func fig12(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	t := stats.Table{
		Title:   "Fig 12 (derived): LLC space overhead vs read critical-path overhead per policy",
		Headers: []string{"policy", "spilled lines %", "fused lines %", "extra reads/1k", "fwd reads/1k", "avg read lat"},
	}
	p := o.runner()
	policies := []core.DEPolicy{core.SpillAll, core.FPSS, core.FuseAll}
	futs := make([][]*Future[stats.Run], len(policies))
	for pi, pol := range policies {
		pol := pol
		for _, suite := range mtSuites {
			for _, u := range groupUnits(o, suite) {
				u := u
				futs[pi] = append(futs[pi], SubmitJob(p, u.name+"/"+pol.String(), func(ctx context.Context) (stats.Run, error) {
					return runStreams(ctx, o, pre.ZeroDEV(0, pol, llc.DataLRU, llc.NonInclusive), u.make(pre.Cores), pol.String())
				}))
			}
		}
	}
	var errs []error
	for pi, pol := range policies {
		var spill, fuse, blocks, extra, fwd, reads float64
		var latSum, latN uint64
		var perr error
		for _, fut := range futs[pi] {
			x, err := fut.Result()
			if err != nil {
				if perr == nil {
					perr = err
				}
				continue
			}
			spill += float64(x.LLCSpilled)
			fuse += float64(x.LLCFused)
			blocks += float64(pre.LLCBytes / 64)
			extra += float64(x.Engine.SpillAllExtraDataReads)
			fwd += float64(x.Engine.Forwards3Hop)
			reads += float64(x.Engine.Reads)
			latSum += x.Engine.LatReadLLCHit + x.Engine.LatReadForward + x.Engine.LatReadMemory
			latN += x.Engine.NReadLLCHit + x.Engine.NReadForward + x.Engine.NReadMemory
		}
		if perr != nil {
			errs = append(errs, perr)
			cell := CellText(perr)
			t.AddRow(pol.String(), cell, cell, cell, cell, cell)
			continue
		}
		t.AddRow(pol.String(),
			fmt.Sprintf("%.1f%%", 100*spill/blocks),
			fmt.Sprintf("%.1f%%", 100*fuse/blocks),
			fmt.Sprintf("%.1f", 1000*extra/reads),
			fmt.Sprintf("%.1f", 1000*fwd/reads),
			fmt.Sprintf("%.1f cyc", float64(latSum)/float64(latN)))
	}
	t.Fprint(w)
	fmt.Fprintln(w, "Paper Fig 12: SpillAll = max space + lookup-latency overhead;")
	fmt.Fprintln(w, "FPSS = modest space, no read overhead; FuseAll = minimal space, +1 hop on shared reads.")
	fmt.Fprintln(w)
	return errors.Join(errs...)
}

func ablationRepl(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	cfgs := []namedSpec{
		{"repl-disabled", zdev(pre, 1.0/8, llc.NonInclusive)},
		{"repl-enabled", pre.ZeroDEVReplEnabled(1.0/8, core.FPSS, llc.DataLRU, llc.NonInclusive)},
	}
	t := stats.Table{
		Title:   "Ablation III-C4: ZeroDEV with 1/8x directory, replacement disabled vs enabled; speedup vs baseline 1x",
		Headers: []string{"suite", "disabled", "enabled", "displaced entries (enabled)"},
	}
	var errs []error
	for _, suite := range allSuites {
		r := sweepGroup(o, suite, pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
		errs = append(errs, r.failed())
		var displaced, devs uint64
		for _, run := range r.runs[1] {
			displaced += run.Engine.DEDisplacedToLLC
			devs += run.Engine.DEVs
		}
		if devs != 0 {
			return fmt.Errorf("replacement-enabled ZeroDEV produced %d DEVs", devs)
		}
		t.AddRow(suite, r.geoCell(0), r.geoCell(1), fmt.Sprintf("%d", displaced))
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

func ablationLLCRepl(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	cfgs := []namedSpec{
		{"LRU", pre.ZeroDEV(0, core.FPSS, llc.LRU, llc.NonInclusive)},
		{"spLRU", pre.ZeroDEV(0, core.FPSS, llc.SpLRU, llc.NonInclusive)},
		{"dataLRU", pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)},
	}
	t := stats.Table{
		Title:   "Ablation III-D1: LLC replacement under ZeroDEV(NoDir); speedup vs baseline 1x [WB_DE count]",
		Headers: []string{"suite", "LRU", "spLRU", "dataLRU"},
	}
	var errs []error
	for _, suite := range allSuites {
		r := sweepGroup(o, suite, pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
		errs = append(errs, r.failed())
		row := []string{suite}
		for ci := range cfgs {
			if r.err(ci) != nil {
				row = append(row, "ERR")
				continue
			}
			var wbde uint64
			for _, run := range r.runs[ci] {
				wbde += run.Engine.DEEvictionsToMemory
			}
			row = append(row, fmt.Sprintf("%.3f [%d]", r.geo(ci), wbde))
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

func ablationBacking(o Options, w io.Writer) error {
	const sockets = 4
	pre := config.TableI(o.Scale)
	so := o
	so.Accesses = o.Accesses / 2
	t := stats.Table{
		Title:   "Ablation III-D5: socket-directory backing on 4 sockets (ZeroDEV NoDir); cycles relative to MemoryBackup",
		Headers: []string{"suite", "MemoryBackup", "DirEvictBit", "dir-cache misses (MB/DEB)", "DirEvict hits"},
	}
	p := so.runner()
	// backedRun's fields are exported so the cell JSON round-trips
	// through checkpoint/resume.
	type backedRun struct {
		Cycles uint64       `json:"cycles"`
		St     socket.Stats `json:"stats"`
	}
	type backedPair struct {
		mb, deb *Future[backedRun]
	}
	futs := make([][]backedPair, len(mtSuites))
	for si, suite := range mtSuites {
		for _, prof := range suiteApps(so, suite) {
			prof := prof
			submit := func(name string, b socket.Backing) *Future[backedRun] {
				return SubmitJob(p, prof.Name+"/"+name, func(ctx context.Context) (backedRun, error) {
					c, st, err := runSocketBacked(ctx, so, sockets, pre, prof, b)
					return backedRun{c, st}, err
				})
			}
			futs[si] = append(futs[si], backedPair{submit("mb", socket.MemoryBackup), submit("deb", socket.DirEvictBit)})
		}
	}
	var errs []error
	for si, suite := range mtSuites {
		var rel []float64
		var missMB, missDEB, hits uint64
		rowErr := false
		for _, pair := range futs[si] {
			mb, e1 := pair.mb.Result()
			deb, e2 := pair.deb.Result()
			for _, e := range []error{e1, e2} {
				if e != nil {
					errs = append(errs, e)
					rowErr = true
				}
			}
			if rowErr {
				continue
			}
			rel = append(rel, float64(mb.Cycles)/float64(deb.Cycles))
			missMB += mb.St.DirCacheMisses
			missDEB += deb.St.DirCacheMisses
			hits += deb.St.DirEvictBitHits
		}
		if rowErr {
			cell := CellText(errs[len(errs)-1])
			t.AddRow(suite, cell, cell, cell, cell)
			continue
		}
		t.AddRow(suite, "1.000", f3(stats.GeoMean(rel)),
			fmt.Sprintf("%d/%d", missMB, missDEB), fmt.Sprintf("%d", hits))
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

func runSocketBacked(ctx context.Context, o Options, sockets int, pre config.Preset, prof workload.Profile, backing socket.Backing) (uint64, socket.Stats, error) {
	p := socket.DefaultParams(sockets, 65536/o.Scale*8)
	p.Backing = backing
	spec := zdev(pre, 0, llc.NonInclusive)
	streams := workload.Threads(prof, sockets*spec.Cores, o.Accesses, o.Scale, o.Seed)
	sys, err := socket.New(p, spec, streams)
	if err != nil {
		return 0, socket.Stats{}, err
	}
	c, err := sys.RunCtx(ctx, JobSteps(ctx))
	if err != nil {
		return 0, socket.Stats{}, err
	}
	return uint64(c), sys.Stats(), nil
}

// ablationPrefetch checks that the zero-DEV guarantee and the relative
// results are robust to a stream prefetcher (degree 2), which inflates
// directory churn with prefetched E-state blocks.
func ablationPrefetch(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	pfPre := pre
	pfPre.CPU.PrefetchDegree = 2
	cfgs := []namedSpec{
		{"base+pf", pfPre.Baseline(1, llc.NonInclusive)},
		{"zdev", zdev(pre, 0, llc.NonInclusive)},
		{"zdev+pf", zdev(pfPre, 0, llc.NonInclusive)},
	}
	t := stats.Table{
		Title:   "Ablation: stream prefetching (degree 2); speedup vs baseline 1x without prefetching",
		Headers: []string{"suite", "base+pf", "ZDev(NoDir)", "ZDev(NoDir)+pf", "prefetches"},
	}
	var errs []error
	for _, suite := range allSuites {
		r := sweepGroup(o, suite, pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
		errs = append(errs, r.failed())
		var pf, devs uint64
		for _, run := range r.runs[2] {
			devs += run.Engine.DEVs
			for _, c := range run.Core {
				pf += c.Prefetches
			}
		}
		if devs != 0 {
			return fmt.Errorf("prefetching broke the zero-DEV guarantee: %d", devs)
		}
		t.AddRow(suite, r.geoCell(0), r.geoCell(1), r.geoCell(2), fmt.Sprintf("%d", pf))
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

// compressExp evaluates the hybrid compressed entry formats over the
// live directory-entry population of a 128-core ZeroDEV run: what
// fraction of entries stay precise at each bit budget, and how many
// extra invalidations the coarse entries would cost.
func compressExp(o Options, w io.Writer) error {
	pre := config.Server128(o.Scale)
	so := o
	so.Accesses = o.Accesses / 4
	if so.Accesses < 5000 {
		so.Accesses = 5000
	}
	budgets := []int{16, 32, 64}
	t := stats.Table{
		Title:   "Compression (Sec III-D): hybrid format over live entries, 128-core ZeroDEV(NoDir)",
		Headers: []string{"budget bits", "precise %", "avg over-invalidation", "max sockets @64B block"},
	}
	// acc's fields are exported so the cell JSON round-trips through
	// checkpoint/resume.
	type acc struct {
		Total, Precise int
		Over           int
	}
	p := so.runner()
	var futs []*Future[[]acc]
	for _, prof := range suiteApps(so, "SERVER") {
		prof := prof
		futs = append(futs, SubmitJob(p, prof.Name+"/compress", func(ctx context.Context) ([]acc, error) {
			part := make([]acc, len(budgets))
			spec := zdev(pre, 0, llc.NonInclusive)
			sys := core.NewSystem(spec, workload.Threads(prof, spec.Cores, so.Accesses, so.Scale, so.Seed))
			if _, err := sys.RunCtx(ctx, JobSteps(ctx)); err != nil {
				return nil, err
			}
			sys.Engine.LLC().ForEachDE(func(addr coher.Addr, fused bool, e coher.Entry) {
				for bi, b := range budgets {
					c, err := coher.Compress(e, pre.Cores, b)
					if err != nil {
						continue
					}
					part[bi].Total++
					if c.Precise() {
						part[bi].Precise++
					} else {
						part[bi].Over += coher.OverInvalidation(e, c)
					}
				}
			})
			return part, nil
		}))
	}
	sums := make([]acc, len(budgets))
	var errs []error
	for _, fut := range futs {
		parts, err := fut.Result()
		if err != nil {
			errs = append(errs, err)
			continue
		}
		for bi, part := range parts {
			sums[bi].Total += part.Total
			sums[bi].Precise += part.Precise
			sums[bi].Over += part.Over
		}
	}
	for bi, b := range budgets {
		s := sums[bi]
		if s.Total == 0 {
			continue
		}
		imprecise := s.Total - s.Precise
		avgOver := 0.0
		if imprecise > 0 {
			avgOver = float64(s.Over) / float64(imprecise)
		}
		t.AddRow(fmt.Sprintf("%d", b),
			fmt.Sprintf("%.1f%%", 100*float64(s.Precise)/float64(s.Total)),
			fmt.Sprintf("%.1f cores", avgOver),
			fmt.Sprintf("%d (full map: %d)", coher.MaxSocketsCompressed(b), coher.MaxSocketsWithSocketPartition(pre.Cores)))
	}
	t.Fprint(w)
	return errors.Join(errs...)
}
