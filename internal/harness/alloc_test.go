package harness

import (
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/workload"
)

// allocsForAccesses measures total heap allocations for building and
// running a small system with the given per-core stream length under
// the given domain-worker count.
func allocsForAccesses(t *testing.T, accesses, dw int) float64 {
	t.Helper()
	const scale = 32
	pre := config.TableI(scale)
	spec := pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
	prof := workload.MustGet("canneal")
	return testing.AllocsPerRun(3, func() {
		sys := core.NewSystem(spec, workload.Threads(prof, spec.Cores, accesses, scale, 1))
		if _, err := sys.RunCtxDomains(context.Background(), nil, dw); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStepPathAllocationFloor is the allocation-regression guard for
// the per-step path: the marginal allocation cost of extra accesses —
// the difference between a 2N-access run and an N-access run, which
// cancels out all construction-time allocation — must stay near zero
// per access, for both the serial scheduler and the epoch-barrier
// domain scheduler. PR 5 drove the steady-state step path to
// effectively allocation-free (the ~53k allocs/op fig18 floor is
// construction); a change that allocates per step shows up here as
// roughly cores × extra-accesses allocations and fails loudly.
func TestStepPathAllocationFloor(t *testing.T) {
	const n = 4000
	for _, tc := range []struct {
		name string
		dw   int
	}{{"serial", 1}, {"domain-workers=4", 4}} {
		t.Run(tc.name, func(t *testing.T) {
			base := allocsForAccesses(t, n, tc.dw)
			double := allocsForAccesses(t, 2*n, tc.dw)
			marginal := (double - base) / float64(n*8) // 8 cores
			t.Logf("allocs: %d accesses %.0f, %d accesses %.0f, marginal/access %.4f",
				n, base, 2*n, double, marginal)
			// Threshold: well below one allocation per access, with
			// headroom for amortized buffer growth (peek/gapCum, exchange
			// heap, DRAM/LLC bookkeeping) and measurement noise.
			if marginal > 0.25 {
				t.Fatalf("per-step path allocates %.4f allocations/access (marginal over %d extra accesses x 8 cores); the step path must stay effectively allocation-free",
					marginal, n)
			}
		})
	}
}
