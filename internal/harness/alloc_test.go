package harness

import (
	"context"
	"testing"

	"repro/internal/backend"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/workload"
)

// allocsForAccesses measures total heap allocations for building and
// running a small system with the given per-core stream length under
// the given domain-worker count.
func allocsForAccesses(t *testing.T, accesses, dw int) float64 {
	t.Helper()
	const scale = 32
	pre := config.TableI(scale)
	spec := pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
	return allocsForSpec(t, spec, accesses, dw)
}

// allocsForSpec is allocsForAccesses over an arbitrary system spec.
func allocsForSpec(t *testing.T, spec core.SystemSpec, accesses, dw int) float64 {
	t.Helper()
	const scale = 32
	prof := workload.MustGet("canneal")
	return testing.AllocsPerRun(3, func() {
		sys := core.NewSystem(spec, workload.Threads(prof, spec.Cores, accesses, scale, 1))
		if _, err := sys.RunCtxDomains(context.Background(), nil, dw); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStepPathAllocationFloor is the allocation-regression guard for
// the per-step path: the marginal allocation cost of extra accesses —
// the difference between a 2N-access run and an N-access run, which
// cancels out all construction-time allocation — must stay near zero
// per access, for both the serial scheduler and the epoch-barrier
// domain scheduler. PR 5 drove the steady-state step path to
// effectively allocation-free (the ~53k allocs/op fig18 floor is
// construction); a change that allocates per step shows up here as
// roughly cores × extra-accesses allocations and fails loudly.
func TestStepPathAllocationFloor(t *testing.T) {
	const n = 4000
	for _, tc := range []struct {
		name string
		dw   int
	}{{"serial", 1}, {"domain-workers=4", 4}} {
		t.Run(tc.name, func(t *testing.T) {
			base := allocsForAccesses(t, n, tc.dw)
			double := allocsForAccesses(t, 2*n, tc.dw)
			marginal := (double - base) / float64(n*8) // 8 cores
			t.Logf("allocs: %d accesses %.0f, %d accesses %.0f, marginal/access %.4f",
				n, base, 2*n, double, marginal)
			// Threshold: well below one allocation per access, with
			// headroom for amortized buffer growth (peek/gapCum, exchange
			// heap, DRAM/LLC bookkeeping) and measurement noise.
			if marginal > 0.25 {
				t.Fatalf("per-step path allocates %.4f allocations/access (marginal over %d extra accesses x 8 cores); the step path must stay effectively allocation-free",
					marginal, n)
			}
		})
	}
}

// TestStepPathAllocationFloorBackends extends the allocation guard
// across the protocol-backend axis: every backend's steady-state step
// path — including the sparse-MESI DEV invalidations, the DLS
// inclusion flows, and the phase-priority NACK/retry ladder — must stay
// effectively allocation-free under the same marginal-cost bound.
func TestStepPathAllocationFloorBackends(t *testing.T) {
	const n = 4000
	pre := config.TableI(32)
	for _, id := range []backend.ID{backend.SparseMESI, backend.DLS, backend.PhasePriority} {
		t.Run(string(id), func(t *testing.T) {
			spec, err := pre.ForBackend(id, 1.0/8)
			if err != nil {
				t.Fatal(err)
			}
			base := allocsForSpec(t, spec, n, 1)
			double := allocsForSpec(t, spec, 2*n, 1)
			marginal := (double - base) / float64(n*8) // 8 cores
			t.Logf("allocs: %d accesses %.0f, %d accesses %.0f, marginal/access %.4f",
				n, base, 2*n, double, marginal)
			if marginal > 0.25 {
				t.Fatalf("%s per-step path allocates %.4f allocations/access; the step path must stay effectively allocation-free", id, marginal)
			}
		})
	}
}
