package harness

import (
	"context"
	"fmt"
	"io"
)

// This file is the cell decomposition surface the campaign service
// (internal/serve) builds on. An experiment's execution decomposes into
// cells — the independent (unit, config) simulation jobs it submits to
// its pool — and the decomposition is a pure function of the Options:
// experiments submit every job up front from option-derived sweeps and
// only then wait on results, so the grid enumerated here (without
// running anything) is exactly the grid a real run executes. That makes
// three operations safe:
//
//   - Cells enumerates the grid so a coordinator can shard it;
//   - ExecuteSelected runs an arbitrary subset on a worker, recording
//     results in the checkpoint cell format;
//   - RenderFromCheckpoint replays the experiment's full output from
//     recorded cells without executing a single simulation, which is
//     how sharded results reassemble into output byte-identical to a
//     serial `zerodev run`.
//
// Deterministic cell identity (scope, seq, unit) plus deterministic
// cell content (every cell value is a pure function of Options and the
// unit) means results computed by any process are interchangeable.

// CellID identifies one schedulable cell of an experiment: the
// experiment (Scope), the pool submission number (Seq — deterministic,
// because submission order is program order), and the unit label as a
// cross-check against grid drift between builds.
type CellID struct {
	Scope string `json:"scope"`
	Seq   int    `json:"seq"`
	Unit  string `json:"unit"`
}

// Key returns the checkpoint cell key ("<scope>#<seq>") this cell's
// result is stored under.
func (c CellID) Key() string { return cellKey(c.Scope, c.Seq) }

// String renders the cell for error messages and listings.
func (c CellID) String() string { return fmt.Sprintf("%s#%d (%s)", c.Scope, c.Seq, c.Unit) }

// Cells enumerates the experiment's cell grid for the given options
// without executing any simulation: every submitted job is recorded and
// resolved with a zero value, and the (discarded) output is rendered
// from those zeros. Worker count, progress, and checkpoint options are
// ignored — the grid depends only on the result-shaping options (scale,
// accesses, seed, quick).
func (e Experiment) Cells(o Options) ([]CellID, error) {
	var grid []CellID
	p := NewPool(context.Background(), 1, nil, e.ID)
	p.EnableEnumerate(func(seq int, unit string) {
		grid = append(grid, CellID{Scope: e.ID, Seq: seq, Unit: unit})
	})
	o.Workers = 1
	o.DomainWorkers = 1
	o.Progress = nil
	o.Checkpoint = nil
	o.pool = p
	if err := e.Run(o, io.Discard); err != nil {
		return nil, fmt.Errorf("harness: enumerating %s cells: %w", e.ID, err)
	}
	return grid, nil
}

// ExecuteSelected runs only the cells sel reports true for, recording
// their results into cs (in the same cell format Execute's checkpoint
// path uses, so cs.Export ships them and RenderFromCheckpoint serves
// them). Unselected cells resolve as zero-value skips without
// executing; output is discarded — a worker computes values, it does
// not render tables. The returned error reflects only the selected
// cells (panics recovered, cancellation propagated).
func (e Experiment) ExecuteSelected(ctx context.Context, o Options, sel func(CellID) bool, cs *CheckpointState) error {
	p := NewPool(ctx, o.Workers, o.Progress, e.ID)
	p.EnableRecovery(ReplayMeta{
		Experiment: e.ID,
		Scale:      o.Scale,
		Accesses:   o.Accesses,
		Seed:       o.Seed,
		Quick:      o.Quick,
		Workers:    o.Workers,
		Backends:   o.Backends,
	}, o.CrashDir, o.Retries)
	p.EnableWatchdog(o.JobTimeout)
	p.EnableCheckpoint(cs, e.ID)
	p.EnableGate(func(seq int, unit string) (bool, error) {
		return sel(CellID{Scope: e.ID, Seq: seq, Unit: unit}), nil
	})
	o.pool = p
	err := e.Run(o, io.Discard)
	if err == nil {
		err = p.FailureSummary()
	}
	return err
}

// RenderFromCheckpoint renders the experiment's full output from
// recorded cells, executing nothing: every completed cell is served
// from cs, and a cell listed in stub (keyed by CellID.Key) resolves to
// a failure carrying its recorded message, so degraded campaigns render
// ERR cells exactly where a serial run would. A cell that is in neither
// cs nor stub resolves as a missing-result failure rather than
// silently executing on the rendering process. The returned error is
// nil only when every cell was served from cs.
func (e Experiment) RenderFromCheckpoint(o Options, cs *CheckpointState, stub map[string]string, w io.Writer) error {
	p := NewPool(context.Background(), 1, nil, e.ID)
	p.EnableCheckpoint(cs, e.ID)
	p.EnableGate(func(seq int, unit string) (bool, error) {
		id := CellID{Scope: e.ID, Seq: seq, Unit: unit}
		if msg, ok := stub[id.Key()]; ok {
			return false, fmt.Errorf("%s", msg)
		}
		return false, fmt.Errorf("cell %s has no recorded result", id)
	})
	o.Workers = 1
	o.Progress = nil
	o.pool = p
	err := e.Run(o, w)
	if err == nil {
		err = p.FailureSummary()
	}
	return err
}
