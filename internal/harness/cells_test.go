package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestCellsEnumerateEveryExperiment: the cell grid enumerates for every
// registered experiment without executing a simulation, and the keys
// are unique with 1-based contiguous-enough sequence numbers. This is
// the campaign service's planning surface: if any experiment's
// decomposition stops being derivable without execution, sharding
// breaks, and this test names the experiment.
func TestCellsEnumerateEveryExperiment(t *testing.T) {
	o := tinyOptions()
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			grid, err := e.Cells(o)
			if err != nil {
				t.Fatalf("Cells: %v", err)
			}
			if len(grid) == 0 {
				t.Fatal("empty cell grid")
			}
			seen := make(map[string]bool, len(grid))
			for _, c := range grid {
				if c.Scope != e.ID {
					t.Fatalf("cell %s carries scope %q, want %q", c, c.Scope, e.ID)
				}
				if c.Seq < 1 {
					t.Fatalf("cell %s has non-positive seq", c)
				}
				if c.Unit == "" {
					t.Fatalf("cell %s#%d has an empty unit label", c.Scope, c.Seq)
				}
				if seen[c.Key()] {
					t.Fatalf("duplicate cell key %s", c.Key())
				}
				seen[c.Key()] = true
			}
		})
	}
}

// TestCellsEnumerationMatchesExecution: the enumerated grid is exactly
// the set of cells a real run records — same keys, same unit labels.
// This is the contract that makes a coordinator's plan and a worker's
// execution interchangeable across processes.
func TestCellsEnumerationMatchesExecution(t *testing.T) {
	e, err := Get("fig4")
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Accesses = 1000
	grid, err := e.Cells(o)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCheckpoint(testKey())
	ro := o
	ro.Checkpoint = cs
	if _, err := e.Execute(context.Background(), ro, &bytes.Buffer{}); err != nil {
		t.Fatalf("reference execution: %v", err)
	}
	recorded := cs.Export()
	if len(recorded) != len(grid) {
		t.Fatalf("execution recorded %d cells, enumeration planned %d", len(recorded), len(grid))
	}
	for _, c := range grid {
		raw, ok := recorded[c.Key()]
		if !ok {
			t.Fatalf("planned cell %s was never recorded", c)
		}
		var rec struct {
			Unit string `json:"unit"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatalf("cell %s record does not decode: %v", c, err)
		}
		if rec.Unit != c.Unit {
			t.Fatalf("cell %s recorded unit %q, plan says %q", c.Key(), rec.Unit, c.Unit)
		}
	}
}

// TestShardedExecutionReassemblesByteIdentical is the harness half of
// the campaign service's equivalence proof: split one experiment's grid
// across two executors, merge their exported cells into a fresh
// checkpoint, render from it — the output must equal a plain serial run
// byte for byte, with zero simulation at render time.
func TestShardedExecutionReassemblesByteIdentical(t *testing.T) {
	e, err := Get("fig4")
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Accesses = 1000
	o.Workers = 1

	var want bytes.Buffer
	if _, err := e.Execute(context.Background(), o, &want); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	grid, err := e.Cells(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) < 2 {
		t.Fatalf("fig4 grid has %d cells; sharding needs at least 2", len(grid))
	}
	merged := NewCheckpoint(testKey())
	for shard := 0; shard < 2; shard++ {
		shard := shard
		cs := NewCheckpoint(testKey())
		sel := func(c CellID) bool { return c.Seq%2 == shard }
		if err := e.ExecuteSelected(context.Background(), o, sel, cs); err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		exported := cs.Export()
		for _, c := range grid {
			_, has := exported[c.Key()]
			if want := sel(c); has != want {
				t.Fatalf("shard %d: cell %s presence = %v, want %v", shard, c, has, want)
			}
		}
		merged.Merge(exported)
	}
	if merged.Cells() != len(grid) {
		t.Fatalf("merged checkpoint holds %d cells, want %d", merged.Cells(), len(grid))
	}

	var got bytes.Buffer
	if err := e.RenderFromCheckpoint(o, merged, nil, &got); err != nil {
		t.Fatalf("render from merged shards: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("sharded reassembly differs from serial run\n--- want ---\n%s\n--- got ---\n%s",
			want.String(), got.String())
	}
}

// TestRenderFromCheckpointStubsFailures: a cell carried in the stub map
// renders as an ERR cell with the stub's message surfacing in the
// failure summary, and a cell in neither checkpoint nor stub is a
// missing-result failure — render never silently simulates.
func TestRenderFromCheckpointStubsFailures(t *testing.T) {
	e, err := Get("fig4")
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Accesses = 1000
	o.Workers = 1
	grid, err := e.Cells(o)
	if err != nil {
		t.Fatal(err)
	}
	victim := grid[len(grid)/2]
	cs := NewCheckpoint(testKey())
	if err := e.ExecuteSelected(context.Background(), o, func(c CellID) bool { return c != victim }, cs); err != nil {
		t.Fatal(err)
	}

	t.Run("stubbed", func(t *testing.T) {
		var out bytes.Buffer
		stub := map[string]string{victim.Key(): "cell degraded after 4 attempt(s): lease expired"}
		err := e.RenderFromCheckpoint(o, cs, stub, &out)
		if err == nil {
			t.Fatal("render with a stubbed failure returned nil error")
		}
		if !strings.Contains(err.Error(), "lease expired") {
			t.Fatalf("failure summary does not carry the stub message: %v", err)
		}
		if !strings.Contains(out.String(), "ERR") {
			t.Fatalf("output does not render the degraded cell as ERR:\n%s", out.String())
		}
	})
	t.Run("missing", func(t *testing.T) {
		var out bytes.Buffer
		err := e.RenderFromCheckpoint(o, cs, nil, &out)
		if err == nil || !strings.Contains(err.Error(), "has no recorded result") {
			t.Fatalf("missing cell err = %v, want a missing-result failure", err)
		}
	})
}
