package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/atomicio"
)

// CheckpointVersion stamps checkpoint files; bump on incompatible
// format changes so a stale checkpoint is refused with a clear error
// instead of silently misdecoded.
const CheckpointVersion = 1

// CheckpointKey fingerprints everything that shapes cell results, so a
// checkpoint is only ever replayed against the run that produced it.
// Workers is deliberately excluded: output is byte-identical at any
// worker count (the engine's core invariant), so a run interrupted at
// -workers 8 may resume at -workers 1 and vice versa.
type CheckpointKey struct {
	// Kind is the command family ("run", "audit"): their cell spaces are
	// disjoint, and a run checkpoint must never satisfy an audit.
	Kind string `json:"kind"`
	// IDs are the experiment (or campaign) IDs in execution order.
	IDs      []string `json:"ids"`
	Scale    int      `json:"scale"`
	Accesses int      `json:"accesses"`
	Seed     uint64   `json:"seed"`
	Quick    bool     `json:"quick,omitempty"`
	// Backends is the raw backend selection (Options.Backends). It
	// shapes the backend-axis cell grids; omitempty keeps fingerprints
	// of runs that never set it identical to pre-backend checkpoints.
	Backends string `json:"backends,omitempty"`
}

// Fingerprint hashes the key with FNV-64a over its canonical JSON.
func (k CheckpointKey) Fingerprint() uint64 {
	b, err := json.Marshal(k)
	if err != nil {
		// CheckpointKey is all plain data; Marshal cannot fail.
		panic(err)
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// checkpointFile is the on-disk format: the versioned header binds the
// cells to a specific run shape, and Sum guards against torn or edited
// files (the atomic writer makes tearing unlikely, but a checkpoint
// that fails its own content hash must never seed a resume).
type checkpointFile struct {
	Version     int                        `json:"version"`
	Key         CheckpointKey              `json:"key"`
	Fingerprint uint64                     `json:"fingerprint"`
	Cells       map[string]json.RawMessage `json:"cells"`
	Sum         uint64                     `json:"sum"`
}

// contentSum hashes the cells in sorted key order with FNV-64a. Each
// value is compacted first so the sum is a function of the JSON
// content, not of the indentation Save's pretty-printer (or a decode
// round-trip) happens to leave in the raw bytes.
func contentSum(cells map[string]json.RawMessage) uint64 {
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	var compact bytes.Buffer
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
		compact.Reset()
		if err := json.Compact(&compact, cells[k]); err == nil {
			h.Write(compact.Bytes())
		} else {
			h.Write(cells[k])
		}
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// CheckpointState is the in-memory checkpoint a run builds up and an
// interrupted run resumes from. Cells are keyed "<scope>#<seq>" where
// scope is the experiment/campaign ID and seq is the pool submission
// number — deterministic because submission order is program order. The
// unit label rides along as a cross-check against submission-order
// drift between builds.
type CheckpointState struct {
	key CheckpointKey

	mu    sync.Mutex
	cells map[string]json.RawMessage
	units map[string]string
}

// cellRecord wraps a stored cell with its unit label.
type cellRecord struct {
	Unit  string          `json:"unit,omitempty"`
	Value json.RawMessage `json:"value"`
}

// NewCheckpoint returns an empty checkpoint for the given run shape.
func NewCheckpoint(key CheckpointKey) *CheckpointState {
	return &CheckpointState{
		key:   key,
		cells: make(map[string]json.RawMessage),
		units: make(map[string]string),
	}
}

// Key returns the run shape this checkpoint binds to.
func (cs *CheckpointState) Key() CheckpointKey { return cs.key }

// Cells reports how many completed cells the checkpoint holds.
func (cs *CheckpointState) Cells() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.cells)
}

func cellKey(scope string, seq int) string {
	return fmt.Sprintf("%s#%d", scope, seq)
}

// store records a completed cell. Marshal failures are swallowed: a
// value that cannot round-trip is simply not checkpointed (the run
// still completes; only resume granularity suffers).
func (cs *CheckpointState) store(scope string, seq int, unit string, v any) {
	val, err := json.Marshal(v)
	if err != nil {
		return
	}
	raw, err := json.Marshal(cellRecord{Unit: unit, Value: val})
	if err != nil {
		return
	}
	cs.mu.Lock()
	cs.cells[cellKey(scope, seq)] = raw
	cs.units[cellKey(scope, seq)] = unit
	cs.mu.Unlock()
}

// lookup serves a cell from the checkpoint: true means out holds the
// recorded value. A unit-label mismatch is treated as a miss (the
// submission order drifted; re-running is always safe).
func (cs *CheckpointState) lookup(scope string, seq int, unit string, out any) bool {
	cs.mu.Lock()
	raw, ok := cs.cells[cellKey(scope, seq)]
	cs.mu.Unlock()
	if !ok {
		return false
	}
	var rec cellRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return false
	}
	if rec.Unit != unit {
		return false
	}
	if err := json.Unmarshal(rec.Value, out); err != nil {
		return false
	}
	return true
}

// Export returns a copy of the raw completed cells, keyed
// "<scope>#<seq>". Each value is a self-contained cell record (unit
// label plus result JSON) that Merge on any other CheckpointState
// accepts verbatim — this is the transport format the campaign service
// uses to ship a worker's computed cells back to the coordinator.
func (cs *CheckpointState) Export() map[string]json.RawMessage {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make(map[string]json.RawMessage, len(cs.cells))
	for k, v := range cs.cells {
		out[k] = v
	}
	return out
}

// Merge adds raw cell records (as produced by Export) to the
// checkpoint, overwriting any existing entries with the same key.
// Records that do not decode are skipped: a malformed cell must surface
// as a miss (and re-run), never as a wrong answer.
func (cs *CheckpointState) Merge(cells map[string]json.RawMessage) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for k, raw := range cells {
		var rec cellRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			continue
		}
		cs.cells[k] = raw
		cs.units[k] = rec.Unit
	}
}

// VerifyGrid checks every stored cell against the current run's cell
// grid and refuses — naming each offending cell — a checkpoint holding
// cells the grid no longer generates, or cells whose recorded unit
// label drifted from the grid's. Silently ignoring such cells would
// mask a real mismatch between the checkpoint and the code about to
// resume from it (a renamed unit, a reordered sweep, a hand-merged
// file), so the resume path rejects them by name instead.
func (cs *CheckpointState) VerifyGrid(grid []CellID) error {
	expected := make(map[string]string, len(grid))
	for _, c := range grid {
		expected[c.Key()] = c.Unit
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var bad []string
	for key := range cs.cells {
		unit, ok := expected[key]
		switch {
		case !ok:
			bad = append(bad, fmt.Sprintf("%s (unit %q)", key, cs.units[key]))
		case cs.units[key] != unit:
			bad = append(bad, fmt.Sprintf("%s (unit %q, grid has %q)", key, cs.units[key], unit))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	const show = 8
	listed := bad
	suffix := ""
	if len(bad) > show {
		listed = bad[:show]
		suffix = fmt.Sprintf(", and %d more", len(bad)-show)
	}
	return fmt.Errorf("harness: checkpoint holds %d cell(s) the current run does not generate: %s%s (the cell grid changed; re-run without -resume)",
		len(bad), strings.Join(listed, ", "), suffix)
}

// Save atomically persists the checkpoint to path: a crash or kill
// during Save leaves either the previous checkpoint or the new one,
// never a torn file.
func (cs *CheckpointState) Save(path string) error {
	cs.mu.Lock()
	cells := make(map[string]json.RawMessage, len(cs.cells))
	for k, v := range cs.cells {
		cells[k] = v
	}
	cs.mu.Unlock()
	f := checkpointFile{
		Version:     CheckpointVersion,
		Key:         cs.key,
		Fingerprint: cs.key.Fingerprint(),
		Cells:       cells,
		Sum:         contentSum(cells),
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: encoding checkpoint: %w", err)
	}
	return atomicio.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadCheckpoint reads and validates a checkpoint for the given run
// shape. It refuses — with errors naming the exact mismatch — files of
// a different version, files whose fingerprint does not match key
// (different experiments, scale, accesses, seed, or quick mode), and
// files whose content hash fails (torn or hand-edited).
func LoadCheckpoint(path string, key CheckpointKey) (*CheckpointState, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: reading checkpoint: %w", err)
	}
	// Version first, loosely: a future-version file should say
	// "version 2" rather than fail on a field this build doesn't know.
	var head struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(buf, &head); err != nil {
		return nil, fmt.Errorf("harness: %s is not a checkpoint: %w", path, err)
	}
	if head.Version != CheckpointVersion {
		return nil, fmt.Errorf("harness: checkpoint %s has version %d, this build reads %d", path, head.Version, CheckpointVersion)
	}
	var f checkpointFile
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("harness: decoding checkpoint %s: %w", path, err)
	}
	want := key.Fingerprint()
	if f.Fingerprint != want {
		return nil, fmt.Errorf("harness: checkpoint %s was written by a different run (fingerprint %016x, this invocation %016x): it covers kind=%q ids=%v scale=%d accesses=%d seed=%d quick=%v",
			path, f.Fingerprint, want, f.Key.Kind, f.Key.IDs, f.Key.Scale, f.Key.Accesses, f.Key.Seed, f.Key.Quick)
	}
	if got := contentSum(f.Cells); got != f.Sum {
		return nil, fmt.Errorf("harness: checkpoint %s failed its content hash (stored %016x, computed %016x): file is torn or was edited", path, f.Sum, got)
	}
	cs := NewCheckpoint(key)
	cs.cells = f.Cells
	if cs.cells == nil {
		cs.cells = make(map[string]json.RawMessage)
	}
	for k, raw := range cs.cells {
		var rec cellRecord
		if err := json.Unmarshal(raw, &rec); err == nil {
			cs.units[k] = rec.Unit
		}
	}
	return cs, nil
}
