package harness

import (
	"bytes"
	"context"
	"testing"
)

// TestParallelOutputByteIdentical is the determinism regression test for
// the parallel engine: for representative experiments spanning the
// single-socket sweep path (fig2), the multi-config sweep path (fig18),
// and the socket-system path (multisocket), the output of a run with 8
// workers must equal the serial run byte for byte. Equality is checked
// between live runs (golden-equality), not against checked-in files, so
// the test stays valid as the simulator's numbers evolve.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("slow; the short race tier covers the pool on a smaller sweep")
	}
	o := tinyOptions()
	for _, id := range []string{"fig2", "fig18", "multisocket"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			serial, parallel := o, o
			serial.Workers = 1
			parallel.Workers = 8
			var bufS, bufP bytes.Buffer
			if _, err := e.Execute(context.Background(), serial, &bufS); err != nil {
				t.Fatalf("serial run: %v", err)
			}
			tm, err := e.Execute(context.Background(), parallel, &bufP)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if tm.Workers != 8 {
				t.Fatalf("timing reports %d workers, want 8", tm.Workers)
			}
			if tm.Jobs == 0 {
				t.Fatal("timing reports zero jobs")
			}
			if !bytes.Equal(bufS.Bytes(), bufP.Bytes()) {
				t.Errorf("parallel output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
					bufS.String(), bufP.String())
			}
		})
	}
}

// TestSeedChangesOutput guards the other side of determinism: the output
// is a function of the options, so a different seed must actually change
// it (otherwise byte-equality above would be vacuous).
func TestSeedChangesOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e, err := Get("fig2")
	if err != nil {
		t.Fatal(err)
	}
	o1 := tinyOptions()
	o2 := tinyOptions()
	o2.Seed = 7
	var b1, b2 bytes.Buffer
	if err := e.Run(o1, &b1); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(o2, &b2); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("fig2 output identical across different seeds")
	}
}
