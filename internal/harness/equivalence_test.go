package harness

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/socket"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file is the serial-equivalence suite for the epoch-barrier
// domain scheduler: every configuration is run to completion under the
// serial scheduler (domain-workers 1) and under the domain scheduler at
// higher worker counts, and both the full stats dump and the
// protocol-state fingerprint (core/socket AppendState) must be
// byte-identical. TestDriveDomainsMatchesDrive (internal/sim) proves
// the scheduler abstractly; this suite proves the real agents'
// LocalBound implementations never let a misclassified step into a
// parallel epoch. Run it under -race (CI does) and it is also the
// data-race proof for the production parallel path.

// equivRun executes one configuration at the given socket count,
// DE policy, workload seed, and domain-worker count, returning the full
// stats dump and the final protocol-state fingerprint.
func equivRun(t *testing.T, sockets int, pol core.DEPolicy, seed uint64, dw int) (string, []byte) {
	t.Helper()
	const scale, accesses = 32, 2500
	pre := config.TableI(scale)
	spec := pre.ZeroDEV(0, pol, llc.DataLRU, llc.NonInclusive)
	prof := workload.MustGet("canneal")
	if sockets == 1 {
		sys := core.NewSystem(spec, workload.Threads(prof, spec.Cores, accesses, scale, seed))
		cycles, err := sys.RunCtxDomains(context.Background(), nil, dw)
		if err != nil {
			t.Fatal(err)
		}
		dump := fmt.Sprintf("%+v\ncores=%+v", stats.Collect("equiv", sys, cycles), sys.CoreStats())
		return dump, sys.AppendState(nil)
	}
	streams := workload.Threads(prof, sockets*spec.Cores, accesses, scale, seed)
	sys, err := socket.New(socket.DefaultParams(sockets, 512), spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := sys.RunCtxDomains(context.Background(), nil, dw)
	if err != nil {
		t.Fatal(err)
	}
	dump := fmt.Sprintf("cycles=%d\nsocket=%+v\n", cycles, sys.Stats())
	for s, sock := range sys.Sockets {
		dump += fmt.Sprintf("s%d=%+v\n", s, sock.Engine.Stats())
		for c, cc := range sock.Cores {
			dump += fmt.Sprintf("s%dc%d=%+v\n", s, c, cc.Stats())
		}
	}
	return dump, sys.AppendState(nil)
}

// TestSerialEquivalence sweeps seeds × DE policies × socket counts ×
// domain-worker counts and requires byte-identical stats and state
// fingerprints against the serial run of the same configuration.
func TestSerialEquivalence(t *testing.T) {
	seeds := []uint64{1, 9, 1234}
	if testing.Short() {
		seeds = seeds[:1]
	}
	policies := []struct {
		name string
		pol  core.DEPolicy
	}{{"SpillAll", core.SpillAll}, {"FPSS", core.FPSS}, {"FuseAll", core.FuseAll}}
	for _, sockets := range []int{1, 2, 4} {
		for _, p := range policies {
			for _, seed := range seeds {
				name := fmt.Sprintf("sockets=%d/%s/seed=%d", sockets, p.name, seed)
				t.Run(name, func(t *testing.T) {
					wantDump, wantFP := equivRun(t, sockets, p.pol, seed, 1)
					workerCounts := []int{2, 4}
					if sockets > 4 {
						workerCounts = append(workerCounts, sockets)
					}
					for _, dw := range workerCounts {
						gotDump, gotFP := equivRun(t, sockets, p.pol, seed, dw)
						if gotDump != wantDump {
							t.Fatalf("domain-workers %d: stats diverge from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
								dw, wantDump, gotDump)
						}
						if !bytes.Equal(gotFP, wantFP) {
							t.Fatalf("domain-workers %d: state fingerprint diverges from serial (serial %d bytes, parallel %d bytes)",
								dw, len(wantFP), len(gotFP))
						}
					}
				})
			}
		}
	}
}

// TestDomainWorkersFigureOutput extends the figure-level determinism
// test across the intra-run axis: representative experiments must print
// byte-identical output with domain workers enabled, composing with the
// cross-cell pool (Workers) the existing test covers.
func TestDomainWorkersFigureOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("slow; TestSerialEquivalence covers the scheduler in short mode")
	}
	o := tinyOptions()
	for _, id := range []string{"fig2", "fig5", "fig6", "fig18", "multisocket"} {
		t.Run(id, func(t *testing.T) {
			e, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			serial := o
			serial.Workers, serial.DomainWorkers = 1, 1
			var want bytes.Buffer
			if _, err := e.Execute(context.Background(), serial, &want); err != nil {
				t.Fatalf("serial run: %v", err)
			}
			for _, dw := range []int{2, 4} {
				par := o
				par.Workers, par.DomainWorkers = 2, dw
				var got bytes.Buffer
				if _, err := e.Execute(context.Background(), par, &got); err != nil {
					t.Fatalf("domain-workers %d: %v", dw, err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Errorf("domain-workers %d output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
						dw, want.String(), got.String())
				}
			}
		})
	}
}
