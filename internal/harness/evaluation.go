package harness

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/stats"
)

// Figures 17-27: the ZeroDEV evaluation.

func init() {
	register("fig17", "Fig 17: SpillAll vs FPSS vs FuseAll (ZeroDEV, no directory)", fig17)
	register("fig18", "Fig 18: spLRU vs dataLRU at 8 MB and 4 MB LLC", fig18)
	register("fig19", "Fig 19: ZeroDEV on PARSEC (1x, 1/8x, NoDir)", figPerApp("fig19", []string{"PARSEC"}))
	register("fig20", "Fig 20: ZeroDEV on SPLASH2X, SPEC OMP, FFTW", figPerApp("fig20", []string{"SPLASH2X", "SPECOMP", "FFTW"}))
	register("fig21", "Fig 21: ZeroDEV on SPEC CPU2017 rate", figPerApp("fig21", []string{"CPU2017"}))
	register("fig22", "Fig 22: sensitivity to LLC capacity (4 MB, 16 MB)", fig22)
	register("fig23", "Fig 23: heterogeneous multiprogrammed workloads", fig23)
	register("fig24", "Fig 24: server workloads on the 128-core socket", fig24)
	register("fig25", "Fig 25: EPD and inclusive LLCs", fig25)
	register("fig26", "Fig 26: comparison with Multi-grain Directory", fig26)
	register("fig27", "Fig 27: comparison with SecDir", fig27)
	register("claims", "Sec III-D3 claims: DE traffic and corrupted-block access rates", claims)
}

// zdev builds the standard ZeroDEV spec: FPSS + dataLRU (the policies
// the paper selects in Figs. 17-18).
func zdev(pre config.Preset, ratio float64, mode llc.Mode) core.SystemSpec {
	return pre.ZeroDEV(ratio, core.FPSS, llc.DataLRU, mode)
}

func fig17(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	cfgs := []namedSpec{
		{"SpillAll", pre.ZeroDEV(0, core.SpillAll, llc.DataLRU, llc.NonInclusive)},
		{"FPSS", pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)},
		{"FuseAll", pre.ZeroDEV(0, core.FuseAll, llc.DataLRU, llc.NonInclusive)},
	}
	t := stats.Table{
		Title:   "Fig 17: ZeroDEV policy comparison (no sparse directory, dataLRU); speedup vs baseline 1x [min in brackets]",
		Headers: []string{"suite", "SpillAll", "FPSS", "FuseAll"},
	}
	var errs []error
	for _, suite := range allSuites {
		r := sweepGroup(o, suite, pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
		errs = append(errs, r.failed())
		row := []string{suite}
		for ci := range cfgs {
			if err := r.err(ci); err != nil {
				row = append(row, CellText(err))
			} else {
				row = append(row, fmt.Sprintf("%.3f [%.2f]", r.geo(ci), r.min(ci)))
			}
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

func fig18(o Options, w io.Writer) error {
	pre8 := config.TableI(o.Scale)
	pre4 := pre8
	pre4.LLCBytes /= 2
	cfgs := []namedSpec{
		{"sp8MB", pre8.ZeroDEV(0, core.FPSS, llc.SpLRU, llc.NonInclusive)},
		{"data8MB", pre8.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)},
		{"Base4MB", pre4.Baseline(1, llc.NonInclusive)},
		{"sp4MB", pre4.ZeroDEV(0, core.FPSS, llc.SpLRU, llc.NonInclusive)},
		{"data4MB", pre4.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)},
	}
	t := stats.Table{
		Title:   "Fig 18: spLRU vs dataLRU (ZeroDEV, no directory); speedup vs baseline 8 MB 1x",
		Headers: []string{"suite", "sp8MB", "data8MB", "Base4MB", "sp4MB", "data4MB"},
	}
	var errs []error
	for _, suite := range allSuites {
		r := sweepGroup(o, suite, pre8.Baseline(1, llc.NonInclusive), pre8.Cores, cfgs)
		errs = append(errs, r.failed())
		row := []string{suite}
		for ci := range cfgs {
			row = append(row, r.geoCell(ci))
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

// figPerApp builds Figs. 19-21: per-application ZeroDEV speedups for
// three directory configurations.
func figPerApp(id string, suites []string) func(Options, io.Writer) error {
	return func(o Options, w io.Writer) error {
		pre := config.TableI(o.Scale)
		cfgs := []namedSpec{
			{"1x", zdev(pre, 1, llc.NonInclusive)},
			{"1/8x", zdev(pre, 1.0/8, llc.NonInclusive)},
			{"NoDir", zdev(pre, 0, llc.NonInclusive)},
		}
		t := stats.Table{
			Title:   id + ": ZeroDEV (FPSS, dataLRU) speedup vs baseline 1x",
			Headers: []string{"app", "1x", "1/8x", "NoDir"},
		}
		var all [3][]float64
		var cfgErr [3]bool
		var errs []error
		for _, suite := range suites {
			r := sweepGroup(o, suite, pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
			errs = append(errs, r.failed())
			for ui, u := range r.units {
				row := []string{u.name}
				for ci := range cfgs {
					if err := r.errs[ci][ui]; err != nil {
						row = append(row, CellText(err))
						cfgErr[ci] = true
					} else {
						row = append(row, f3(r.speedups[ci][ui]))
					}
				}
				t.AddRow(row...)
			}
			for ci := range cfgs {
				all[ci] = append(all[ci], r.speedups[ci]...)
			}
		}
		gm := []string{"GEOMEAN"}
		for ci := range cfgs {
			if cfgErr[ci] {
				gm = append(gm, "ERR")
			} else {
				gm = append(gm, f3(stats.GeoMean(all[ci])))
			}
		}
		t.AddRow(gm...)
		t.Fprint(w)
		return errors.Join(errs...)
	}
}

func fig22(o Options, w io.Writer) error {
	pre8 := config.TableI(o.Scale)
	pre4, pre16 := pre8, pre8
	pre4.LLCBytes /= 2
	pre16.LLCBytes *= 2
	cfgs := []namedSpec{
		{"Base4MB", pre4.Baseline(1, llc.NonInclusive)},
		{"ZeroDEV4MB", zdev(pre4, 1.0/4, llc.NonInclusive)},
		{"Base16MB", pre16.Baseline(1, llc.NonInclusive)},
		{"ZeroDEV16MB", zdev(pre16, 0, llc.NonInclusive)},
	}
	t := stats.Table{
		Title:   "Fig 22: LLC capacity sensitivity; speedup vs baseline 8 MB 1x",
		Headers: []string{"suite", "Base4MB", "ZeroDEV4MB(1/4x)", "Base16MB", "ZeroDEV16MB(NoDir)"},
	}
	var errs []error
	for _, suite := range allSuites {
		r := sweepGroup(o, suite, pre8.Baseline(1, llc.NonInclusive), pre8.Cores, cfgs)
		errs = append(errs, r.failed())
		row := []string{suite}
		for ci := range cfgs {
			row = append(row, r.geoCell(ci))
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

func fig23(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	cfgs := []namedSpec{
		{"1x", zdev(pre, 1, llc.NonInclusive)},
		{"1/8x", zdev(pre, 1.0/8, llc.NonInclusive)},
		{"NoDir", zdev(pre, 0, llc.NonInclusive)},
	}
	t := stats.Table{
		Title:   "Fig 23: heterogeneous 8-way mixes; normalized weighted speedup vs baseline 1x",
		Headers: []string{"mix", "1x", "1/8x", "NoDir"},
	}
	r := sweepGroup(o, "CPU-HET", pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
	for ui, u := range r.units {
		row := []string{u.name}
		for ci := range cfgs {
			if err := r.errs[ci][ui]; err != nil {
				row = append(row, CellText(err))
			} else {
				row = append(row, f3(r.speedups[ci][ui]))
			}
		}
		t.AddRow(row...)
	}
	t.AddRow("GEOMEAN", r.geoCell(0), r.geoCell(1), r.geoCell(2))
	t.Fprint(w)
	return r.failed()
}

func fig24(o Options, w io.Writer) error {
	pre := config.Server128(o.Scale)
	so := o
	so.Accesses = o.Accesses / 4 // 128 cores: keep total work comparable
	if so.Accesses < 5000 {
		so.Accesses = 5000
	}
	t := stats.Table{
		Title:   "Fig 24: server workloads, 128-core socket, 32 MB LLC; speedup vs baseline 1x",
		Headers: []string{"app", "1x", "1/8x", "NoDir"},
	}
	p := so.runner()
	profs := suiteApps(so, "SERVER")
	futs := make([][4]*Future[stats.Run], len(profs))
	for i, prof := range profs {
		prof := prof
		for j, cfg := range []struct {
			spec  core.SystemSpec
			label string
		}{
			{pre.Baseline(1, llc.NonInclusive), "base"},
			{zdev(pre, 1, llc.NonInclusive), "1x"},
			{zdev(pre, 1.0/8, llc.NonInclusive), "1/8x"},
			{zdev(pre, 0, llc.NonInclusive), "nodir"},
		} {
			cfg := cfg
			futs[i][j] = SubmitJob(p, prof.Name+"/"+cfg.label, func(ctx context.Context) (stats.Run, error) {
				return runThreads(ctx, so, cfg.spec, prof, cfg.label)
			})
		}
	}
	var g1, g8, gn []float64
	var errs []error
	for i, prof := range profs {
		var runs [4]stats.Run
		var perr error
		for j := range futs[i] {
			r, err := futs[i][j].Result()
			if err != nil && perr == nil {
				perr = err
			}
			runs[j] = r
		}
		if perr != nil {
			errs = append(errs, perr)
			cell := CellText(perr)
			t.AddRow(prof.Name, cell, cell, cell)
			continue
		}
		s1 := stats.Speedup(runs[0], runs[1])
		s8 := stats.Speedup(runs[0], runs[2])
		sn := stats.Speedup(runs[0], runs[3])
		t.AddF(prof.Name, s1, s8, sn)
		g1, g8, gn = append(g1, s1), append(g8, s8), append(gn, sn)
	}
	t.AddF("GEOMEAN", stats.GeoMean(g1), stats.GeoMean(g8), stats.GeoMean(gn))
	t.Fprint(w)
	return errors.Join(errs...)
}

// fig25Groups lists the x-axis groups of Figs. 25-27.
var fig25Groups = []string{"PARSEC", "SPLASH2X", "SPECOMP", "FFTW", "CPU-RATE", "CPU-HET"}

func fig25(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	cfgs := []namedSpec{
		{"BaseEPD-1x", pre.Baseline(1, llc.EPD)},
		{"BaseEPD-1/2x", pre.Baseline(1.0/2, llc.EPD)},
		{"BaseEPD-1/8x", pre.Baseline(1.0/8, llc.EPD)},
		{"ZDevEPD-NoDir", zdev(pre, 0, llc.EPD)},
		{"ZDevEPD-1/2x", zdev(pre, 1.0/2, llc.EPD)},
		{"ZDevEPD-1x", zdev(pre, 1, llc.EPD)},
		{"BaseIncl-1x", pre.Baseline(1, llc.Inclusive)},
		{"ZDevIncl-NoDir", zdev(pre, 0, llc.Inclusive)},
	}
	t := stats.Table{
		Title:   "Fig 25: EPD and inclusive LLCs; speedup vs baseline non-inclusive 1x",
		Headers: append([]string{"suite"}, specNames(cfgs)...),
	}
	var forcedBase, forcedZdev float64
	var errs []error
	for _, g := range fig25Groups {
		r := sweepGroup(o, g, pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
		errs = append(errs, r.failed())
		row := []string{g}
		for ci := range cfgs {
			row = append(row, r.geoCell(ci))
			for _, run := range r.runs[ci] {
				switch cfgs[ci].name {
				case "BaseIncl-1x":
					forcedBase += float64(run.Engine.InclusionInvals + run.Engine.DEVs)
				case "ZDevIncl-NoDir":
					forcedZdev += float64(run.Engine.InclusionInvals + run.Engine.DEVs)
				}
			}
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	if forcedBase > 0 {
		fmt.Fprintf(w, "Forced invalidations eliminated by ZeroDEVIncl vs BaseIncl: %.1f%% (paper: 95%%)\n\n",
			100*(1-forcedZdev/forcedBase))
	}
	return errors.Join(errs...)
}

func fig26(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	cfgs := []namedSpec{
		{"MgD-1/8x", pre.MgD(1.0/8, llc.NonInclusive)},
		{"MgD-1/16x", pre.MgD(1.0/16, llc.NonInclusive)},
		{"MgD-1/32x", pre.MgD(1.0/32, llc.NonInclusive)},
		{"ZDev-1x", zdev(pre, 1, llc.NonInclusive)},
		{"ZDev-1/8x", zdev(pre, 1.0/8, llc.NonInclusive)},
		{"ZDev-NoDir", zdev(pre, 0, llc.NonInclusive)},
	}
	t := stats.Table{
		Title:   "Fig 26: Multi-grain Directory vs ZeroDEV; speedup vs baseline 1x",
		Headers: append([]string{"suite"}, specNames(cfgs)...),
	}
	var errs []error
	for _, g := range fig25Groups {
		r := sweepGroup(o, g, pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
		errs = append(errs, r.failed())
		row := []string{g}
		for ci := range cfgs {
			row = append(row, r.geoCell(ci))
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

func fig27(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	cfgs := []namedSpec{
		{"SecDir-1x", pre.SecDir(1, llc.NonInclusive)},
		{"Base-1/8x", pre.Baseline(1.0/8, llc.NonInclusive)},
		{"SecDir-1/8x", pre.SecDir(1.0/8, llc.NonInclusive)},
		{"ZDev-1x", zdev(pre, 1, llc.NonInclusive)},
		{"ZDev-1/8x", zdev(pre, 1.0/8, llc.NonInclusive)},
		{"ZDev-NoDir", zdev(pre, 0, llc.NonInclusive)},
	}
	t := stats.Table{
		Title:   "Fig 27: SecDir vs ZeroDEV; speedup vs baseline 1x [min in brackets]",
		Headers: append([]string{"suite"}, specNames(cfgs)...),
	}
	var errs []error
	for _, g := range fig25Groups {
		r := sweepGroup(o, g, pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
		errs = append(errs, r.failed())
		row := []string{g}
		for ci := range cfgs {
			if err := r.err(ci); err != nil {
				row = append(row, CellText(err))
			} else {
				row = append(row, fmt.Sprintf("%.3f [%.2f]", r.geo(ci), r.min(ci)))
			}
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

// claims checks the §III-D3 instrumentation claims for ZeroDEV without
// a sparse directory.
func claims(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	t := stats.Table{
		Title:   "Sec III-D3 claims under ZeroDEV(NoDir): DE share of DRAM writes (<0.5%), corrupted LLC read misses (<0.05%)",
		Headers: []string{"suite", "DE writes %", "corrupted read misses %", "WB_DE", "GET_DE"},
	}
	p := o.runner()
	futs := make([][]*Future[stats.Run], len(allSuites))
	for si, suite := range allSuites {
		for _, u := range groupUnits(o, suite) {
			u := u
			futs[si] = append(futs[si], SubmitJob(p, u.name+"/nodir", func(ctx context.Context) (stats.Run, error) {
				return runStreams(ctx, o, zdev(pre, 0, llc.NonInclusive), u.make(pre.Cores), "nodir")
			}))
		}
	}
	var errs []error
	for si, suite := range allSuites {
		var wbde, getde, dw, crm, reads uint64
		var serr error
		for _, fut := range futs[si] {
			x, err := fut.Result()
			if err != nil {
				if serr == nil {
					serr = err
				}
				continue
			}
			wbde += x.Engine.DEEvictionsToMemory
			getde += x.Engine.GetDEFlows
			dw += x.DRAM.Writes
			crm += x.Engine.CorruptedReadMisses
			reads += x.Engine.Reads
		}
		if serr != nil {
			errs = append(errs, serr)
			cell := CellText(serr)
			t.AddRow(suite, cell, cell, "", "")
			continue
		}
		dePct, crmPct := 0.0, 0.0
		if dw > 0 {
			dePct = 100 * float64(wbde) / float64(dw)
		}
		if reads > 0 {
			crmPct = 100 * float64(crm) / float64(reads)
		}
		t.AddRow(suite, fmt.Sprintf("%.3f%%", dePct), fmt.Sprintf("%.4f%%", crmPct),
			fmt.Sprintf("%d", wbde), fmt.Sprintf("%d", getde))
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

func unitSpeedup(u unit, base, x stats.Run) float64 {
	if u.mt {
		return stats.Speedup(base, x)
	}
	return stats.WeightedSpeedup(base, x)
}

func specNames(cfgs []namedSpec) []string {
	var out []string
	for _, c := range cfgs {
		out = append(out, c.name)
	}
	return out
}
