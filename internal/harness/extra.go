package harness

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/llc"
	"repro/internal/socket"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Energy estimate (§V "Energy Expense") and the four-socket evaluation
// (§V "Multi-socket Evaluation").

func init() {
	register("energy", "Sec V: directory+LLC energy, ZeroDEV(NoDir) vs baseline 1x", energyExp)
	register("multisocket", "Sec V: four-socket evaluation, ZeroDEV(NoDir) vs baseline 1x", multisocketExp)
}

func energyExp(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	t := stats.Table{
		Title:   "Energy: dir+LLC energy of ZeroDEV(NoDir) relative to baseline 1x (paper: ~9% saving)",
		Headers: []string{"suite", "baseline", "zerodev", "saving"},
	}
	dirEntries := pre.DirEntries(1)
	p := o.runner()
	type runPair struct {
		base, zd *Future[stats.Run]
	}
	futs := make([][]runPair, len(allSuites))
	for si, suite := range allSuites {
		for _, u := range groupUnits(o, suite) {
			u := u
			futs[si] = append(futs[si], runPair{
				SubmitJob(p, u.name+"/base", func(ctx context.Context) (stats.Run, error) {
					return runStreams(ctx, o, pre.Baseline(1, llc.NonInclusive), u.make(pre.Cores), "base")
				}),
				SubmitJob(p, u.name+"/zdev", func(ctx context.Context) (stats.Run, error) {
					return runStreams(ctx, o, zdev(pre, 0, llc.NonInclusive), u.make(pre.Cores), "zdev")
				}),
			})
		}
	}
	var totB, totZ float64
	var errs []error
	for si, suite := range allSuites {
		var eb, ez float64
		var serr error
		for _, pair := range futs[si] {
			base, berr := pair.base.Result()
			zd, zerr := pair.zd.Result()
			if berr != nil || zerr != nil {
				if serr == nil {
					serr = errors.Join(berr, zerr)
				}
				continue
			}
			eb += energy.Estimate(pre.Cores, dirEntries, pre.LLCBytes,
				uint64(base.Cycles), dirAccesses(base), llcAccesses(base)).Total()
			ez += energy.Estimate(pre.Cores, 0, pre.LLCBytes,
				uint64(zd.Cycles), 0, llcAccesses(zd)).Total()
		}
		if serr != nil {
			errs = append(errs, serr)
			cell := CellText(serr)
			t.AddRow(suite, cell, cell, cell)
			continue
		}
		t.AddRow(suite, "1.000", f3(ez/eb), fmt.Sprintf("%.1f%%", 100*(1-ez/eb)))
		totB += eb
		totZ += ez
	}
	t.AddRow("OVERALL", "1.000", f3(totZ/totB), fmt.Sprintf("%.1f%%", 100*(1-totZ/totB)))
	t.Fprint(w)
	return errors.Join(errs...)
}

// dirAccesses approximates sparse-directory slice activity: every
// uncore request and eviction notice looks it up; updates ride along.
func dirAccesses(r stats.Run) uint64 {
	return r.Engine.Reads + r.Engine.Writes + r.Engine.Upgrades + r.Engine.Evictions
}

// llcAccesses approximates LLC data-array activity: served hits, fills,
// and writebacks, plus — for ZeroDEV — reads and updates of housed
// directory entries, charged as partial accesses (the entry occupies a
// fraction of the line).
func llcAccesses(r stats.Run) uint64 {
	base := r.Engine.LLCDataHits + r.Engine.LLCMisses + r.Engine.Evictions/2
	if r.Engine.DESpills+r.Engine.DEFuses == 0 {
		return base
	}
	// With entries housed in the LLC, every coherence event reads or
	// rewrites one of them.
	deUpdates := r.Engine.Reads + r.Engine.Writes + r.Engine.Upgrades + r.Engine.Evictions
	return base + uint64(float64(deUpdates)*energy.PartialAccessFactor)
}

func multisocketExp(o Options, w io.Writer) error {
	const sockets = 4
	pre := config.TableI(o.Scale)
	so := o
	so.Accesses = o.Accesses / 2
	t := stats.Table{
		Title:   "Multi-socket (4 x 8 cores): ZeroDEV speedup vs baseline 1x per suite (paper: within ~1.6%)",
		Headers: []string{"suite", "ZDev-NoDir", "ZDev-1/8x", "fwd/NACK/merges (NoDir)"},
	}
	p := so.runner()
	// socketRun's fields are exported so the cell JSON round-trips
	// through checkpoint/resume.
	type socketRun struct {
		Cycles uint64       `json:"cycles"`
		St     socket.Stats `json:"stats"`
	}
	futs := make([][][3]*Future[socketRun], len(mtSuites))
	for si, suite := range mtSuites {
		for _, prof := range suiteApps(so, suite) {
			prof := prof
			submit := func(name string, spec core.SystemSpec) *Future[socketRun] {
				return SubmitJob(p, prof.Name+"/"+name, func(ctx context.Context) (socketRun, error) {
					c, st, err := runSocketSys(ctx, so, sockets, spec, prof)
					return socketRun{c, st}, err
				})
			}
			futs[si] = append(futs[si], [3]*Future[socketRun]{
				submit("base", pre.Baseline(1, llc.NonInclusive)),
				submit("nodir", zdev(pre, 0, llc.NonInclusive)),
				submit("1-8x", zdev(pre, 1.0/8, llc.NonInclusive)),
			})
		}
	}
	var errs []error
	for si, suite := range mtSuites {
		var sn, s8 []float64
		var fwds, nacks, merges uint64
		rowErr := false
		for _, trio := range futs[si] {
			base, e0 := trio[0].Result()
			zn, e1 := trio[1].Result()
			z8, e2 := trio[2].Result()
			for _, e := range []error{e0, e1, e2} {
				if e != nil {
					errs = append(errs, e)
					rowErr = true
				}
			}
			if rowErr {
				continue
			}
			sn = append(sn, float64(base.Cycles)/float64(zn.Cycles))
			s8 = append(s8, float64(base.Cycles)/float64(z8.Cycles))
			fwds += zn.St.SocketForwards
			nacks += zn.St.DENFNacks
			merges += zn.St.CorruptedMerges
		}
		if rowErr {
			cell := CellText(errs[len(errs)-1])
			t.AddRow(suite, cell, cell, cell)
			continue
		}
		t.AddRow(suite, f3(stats.GeoMean(sn)), f3(stats.GeoMean(s8)),
			fmt.Sprintf("%d/%d/%d", fwds, nacks, merges))
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

// runSocketSys runs a multithreaded profile across all sockets' cores
// and returns the parallel completion time. Construction errors are
// propagated so one bad unit cannot abort its siblings.
func runSocketSys(ctx context.Context, o Options, sockets int, spec core.SystemSpec, prof workload.Profile) (cycles uint64, st socket.Stats, err error) {
	p := socket.DefaultParams(sockets, 65536/o.Scale*8)
	streams := workload.Threads(prof, sockets*spec.Cores, o.Accesses, o.Scale, o.Seed)
	sys, err := socket.New(p, spec, streams)
	if err != nil {
		return 0, socket.Stats{}, err
	}
	c, err := sys.RunCtxDomains(ctx, JobSteps(ctx), o.DomainWorkers)
	if err != nil {
		return 0, socket.Stats{}, err
	}
	return uint64(c), sys.Stats(), nil
}
