// Package harness defines one runnable experiment per table and figure
// in the paper's evaluation. Each experiment builds the system
// configurations it sweeps, runs the workloads, and prints the same
// rows/series the paper reports, normalized the same way. EXPERIMENTS.md
// records the measured output against the paper's numbers.
package harness

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options control experiment scale. The defaults regenerate every
// figure in minutes on a laptop; Scale=1 with more accesses approaches
// Table I fidelity at proportional cost.
type Options struct {
	// Scale divides all cache capacities and workload footprints
	// (power of two).
	Scale int
	// Accesses is the per-core reference-stream length.
	Accesses int
	// Seed drives workload synthesis.
	Seed uint64
	// Quick trims application lists to a representative subset per
	// suite; used by the benchmark targets.
	Quick bool
	// Workers bounds how many simulations run concurrently. Values <= 1
	// run every simulation inline on the calling goroutine (the exact
	// serial path); any value produces byte-identical experiment output
	// because results are assembled in submission order.
	Workers int
	// DomainWorkers enables intra-run parallelism: values > 1 step each
	// simulation with the epoch-barrier domain scheduler
	// (sim.DriveDomains) using up to this many goroutines per run, on
	// top of the across-cell parallelism Workers provides. 1 (the
	// default) uses the serial scheduler. Any value produces
	// byte-identical experiment output; the serial-equivalence suite in
	// determinism_test.go enforces this.
	DomainWorkers int
	// Progress, when non-nil, receives rate-limited "done/total jobs"
	// lines while an experiment runs (the CLI points it at stderr).
	Progress io.Writer

	// CrashDir is where replay bundles for panicking jobs are written
	// ("" disables bundles; panics are still recovered into errors).
	CrashDir string
	// Retries is how many extra times a panicking job is re-run before
	// its failure is recorded. Returned errors are never retried.
	Retries int

	// Backends selects the protocol backends the backend-axis
	// experiments (figbackends) sweep, as a comma-separated list of
	// backend names; "" or "all" selects every registered backend. It is
	// result-shaping: the cell grid of a backend-axis experiment is a
	// function of it, so it participates in checkpoint fingerprints.
	Backends string

	// JobTimeout, when positive, arms the per-job watchdog: a simulation
	// still running after this long is cancelled, a diagnostic bundle is
	// written next to the crash bundles, and the cell renders TIMEOUT.
	JobTimeout time.Duration
	// Checkpoint, when non-nil, records completed cells so an
	// interrupted run can resume without re-running finished work.
	Checkpoint *CheckpointState

	// pool is the experiment-wide worker pool installed by Execute;
	// experiments reach it through runner().
	pool *Pool
}

// Validate rejects option values that would otherwise surface as deep
// panics inside config or workload synthesis, with messages phrased for
// the CLI flags that set them.
func (o Options) Validate() error {
	if o.Scale < 1 || o.Scale&(o.Scale-1) != 0 {
		return fmt.Errorf("-scale must be a positive power of two, got %d", o.Scale)
	}
	if o.Accesses <= 0 {
		return fmt.Errorf("-accesses must be positive, got %d", o.Accesses)
	}
	if o.Workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", o.Workers)
	}
	if o.DomainWorkers < 0 {
		return fmt.Errorf("-domain-workers must be non-negative, got %d", o.DomainWorkers)
	}
	if o.Retries < 0 {
		return fmt.Errorf("-retries must be non-negative, got %d", o.Retries)
	}
	if o.JobTimeout < 0 {
		return fmt.Errorf("-job-timeout must be non-negative, got %v", o.JobTimeout)
	}
	if _, err := backend.ParseList(o.Backends); err != nil {
		// The error wraps backend.ErrUnknownBackend and names the valid
		// set, phrased for the flag that set it.
		return fmt.Errorf("-backend: %w", err)
	}
	return nil
}

// BackendIDs returns the parsed backend selection. Call Validate first;
// an invalid list here falls back to every backend rather than
// panicking deep inside an experiment.
func (o Options) BackendIDs() []backend.ID {
	ids, err := backend.ParseList(o.Backends)
	if err != nil {
		ids, _ = backend.ParseList("all")
	}
	return ids
}

// DefaultOptions returns the standard experiment scale, with one
// simulation worker per available CPU and crash bundles under
// results/crash.
func DefaultOptions() Options {
	return Options{
		Scale:    8,
		Accesses: 100_000,
		Seed:     1,
		Workers:  runtime.GOMAXPROCS(0),
		CrashDir: filepath.Join("results", "crash"),
	}
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options, w io.Writer) error
}

var registry []Experiment

func register(id, title string, run func(o Options, w io.Writer) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// List returns all experiments in paper order.
func List() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return false }) // keep registration order
	return out
}

// Get finds an experiment by ID.
func Get(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (use list)", id)
}

// --- run helpers -------------------------------------------------------------

// runStreams executes a spec against prepared streams and collects
// stats. It aborts with ctx's error (within sim.CancelEvery steps) when
// the job is cancelled or timed out; the partial Run is never returned,
// so a checkpoint can only ever record fully completed cells.
// o.DomainWorkers > 1 steps the simulation with the epoch-barrier
// domain scheduler (byte-identical output; see sim.DriveDomains).
func runStreams(ctx context.Context, o Options, spec core.SystemSpec, streams []cpu.Stream, label string) (stats.Run, error) {
	sys := core.NewSystem(spec, streams)
	cycles, err := sys.RunCtxDomains(ctx, JobSteps(ctx), o.DomainWorkers)
	if err != nil {
		return stats.Run{}, err
	}
	return stats.Collect(label, sys, cycles), nil
}

// runThreads runs a multithreaded workload (threads share the process
// address space).
func runThreads(ctx context.Context, o Options, spec core.SystemSpec, prof workload.Profile, label string) (stats.Run, error) {
	return runStreams(ctx, o, spec, workload.Threads(prof, spec.Cores, o.Accesses, o.Scale, o.Seed), label)
}

// runRate runs a homogeneous multiprogrammed (rate) workload.
func runRate(ctx context.Context, o Options, spec core.SystemSpec, prof workload.Profile, label string) (stats.Run, error) {
	return runStreams(ctx, o, spec, workload.Rate(prof, spec.Cores, o.Accesses, o.Scale, o.Seed), label)
}

// suiteApps returns the applications evaluated for a suite, trimmed in
// quick mode.
func suiteApps(o Options, suite string) []workload.Profile {
	apps := workload.Suite(suite)
	if !o.Quick {
		return apps
	}
	quick := map[string][]string{
		"PARSEC":   {"canneal", "freqmine", "vips"},
		"SPLASH2X": {"lu_ncb", "ocean_cp"},
		"SPECOMP":  {"330.art", "312.swim"},
		"FFTW":     {"FFTW"},
		"CPU2017":  {"xalancbmk", "gcc.ppO2", "mcf"},
		"SERVER":   {"SPECjbb", "TPC-C"},
	}
	names := quick[suite]
	var out []workload.Profile
	for _, n := range names {
		out = append(out, workload.MustGet(n))
	}
	return out
}

// mtSuites are the multithreaded suites evaluated together in most
// figures.
var mtSuites = []string{"PARSEC", "SPLASH2X", "SPECOMP", "FFTW"}

// allSuites adds the rate workloads.
var allSuites = []string{"PARSEC", "SPLASH2X", "SPECOMP", "FFTW", "CPU2017"}

// isMT reports whether a suite runs in multithreaded mode.
func isMT(suite string) bool { return suite != "CPU2017" && suite != "CPU2017HET" }

// runSuiteApp dispatches threads vs rate mode by suite.
func runSuiteApp(ctx context.Context, o Options, spec core.SystemSpec, prof workload.Profile, label string) (stats.Run, error) {
	if isMT(prof.Suite) {
		return runThreads(ctx, o, spec, prof, label)
	}
	return runRate(ctx, o, spec, prof, label)
}
