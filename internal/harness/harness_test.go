package harness

import (
	"bytes"
	"strings"
	"testing"
)

func tinyOptions() Options {
	return Options{Scale: 32, Accesses: 4000, Seed: 1, Quick: true}
}

func TestRegistryCoversEveryFigure(t *testing.T) {
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig12",
		"fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
		"fig24", "fig25", "fig26", "fig27",
		"claims", "energy", "multisocket",
		"ablation-repl", "ablation-llcrepl", "ablation-backing", "ablation-prefetch", "compress",
	}
	have := map[string]bool{}
	for _, e := range List() {
		have[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if _, err := Get("fig2"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestExperimentsSmoke runs a representative subset end to end at a
// tiny scale; each must produce a table and no error.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	o := tinyOptions()
	for _, id := range []string{"fig4", "fig5", "fig17", "fig19", "claims"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Run(o, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := buf.String()
		if !strings.Contains(out, "==") || len(out) < 50 {
			t.Fatalf("%s produced no table:\n%s", id, out)
		}
	}
}

func TestSuiteAppsQuickSubset(t *testing.T) {
	o := tinyOptions()
	for _, suite := range allSuites {
		apps := suiteApps(o, suite)
		if len(apps) == 0 {
			t.Fatalf("quick subset for %s empty", suite)
		}
		full := suiteApps(Options{}, suite)
		if len(apps) > len(full) {
			t.Fatalf("quick subset larger than full for %s", suite)
		}
	}
}

func TestGroupUnits(t *testing.T) {
	o := tinyOptions()
	units := groupUnits(o, "CPU-HET")
	if len(units) != hetMixCount(o) {
		t.Fatalf("het units = %d", len(units))
	}
	if units[0].mt {
		t.Fatal("het mixes use weighted speedup, not parallel")
	}
	pu := groupUnits(o, "PARSEC")
	if len(pu) == 0 || !pu[0].mt {
		t.Fatal("PARSEC units must be multithreaded")
	}
	streams := pu[0].make(8)
	if len(streams) != 8 {
		t.Fatalf("unit produced %d streams", len(streams))
	}
}
