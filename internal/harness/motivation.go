package harness

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/config"
	"repro/internal/llc"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Figures 2-6: the motivation studies quantifying DEV cost and the
// headroom for caching directory entries in the LLC.

func init() {
	register("fig2", "Fig 2: 1x vs unbounded directory, CPU2017 rate workloads", fig2)
	register("fig3", "Fig 3: 1x vs unbounded directory, multithreaded workloads", fig3)
	register("fig4", "Fig 4: performance impact of sparse directory size", fig4)
	register("fig5", "Fig 5: projected LLC occupancy of spilled directory entries", fig5)
	register("fig6", "Fig 6: performance with reduced LLC associativity", fig6)
}

// baseUnbPair submits the 1x-baseline and unbounded-directory runs of
// one profile as two pool jobs.
type baseUnbPair struct {
	base, unb *Future[stats.Run]
}

func submitBaseUnb(o Options, p *Pool, pre config.Preset, profs []workload.Profile) []baseUnbPair {
	pairs := make([]baseUnbPair, len(profs))
	for i, prof := range profs {
		prof := prof
		pairs[i].base = SubmitJob(p, prof.Name+"/base1x", func(ctx context.Context) (stats.Run, error) {
			return runSuiteApp(ctx, o, pre.Baseline(1, llc.NonInclusive), prof, "base1x")
		})
		pairs[i].unb = SubmitJob(p, prof.Name+"/unbounded", func(ctx context.Context) (stats.Run, error) {
			return runSuiteApp(ctx, o, pre.Unbounded(llc.NonInclusive), prof, "unbounded")
		})
	}
	return pairs
}

// wait resolves the pair, joining the two jobs' failures.
func (p baseUnbPair) wait() (base, unb stats.Run, err error) {
	base, berr := p.base.Result()
	unb, uerr := p.unb.Result()
	if berr == nil {
		return base, unb, uerr
	}
	if uerr == nil {
		return base, unb, berr
	}
	return base, unb, errors.Join(berr, uerr)
}

func fig2(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	t := stats.Table{
		Title:   "Fig 2: normalized traffic / core cache misses / weighted speedup (unbounded vs 1x), 8-way rate",
		Headers: []string{"app", "traffic", "misses", "speedup", "savedMPKI"},
	}
	var traf, miss, spd []float64
	var errs []error
	profs := suiteApps(o, "CPU2017")
	pairs := submitBaseUnb(o, o.runner(), pre, profs)
	for i, prof := range profs {
		base, unb, err := pairs[i].wait()
		if err != nil {
			errs = append(errs, err)
			cell := CellText(err)
			t.AddRow(prof.Name, cell, cell, cell, "")
			continue
		}
		tr, ms := stats.NormTraffic(base, unb), stats.NormMisses(base, unb)
		sp := stats.WeightedSpeedup(base, unb)
		t.AddRow(prof.Name, f3(tr), f3(ms), f3(sp), fmt.Sprintf("%.1f", base.MPKI()-unb.MPKI()))
		traf = append(traf, tr)
		miss = append(miss, ms)
		spd = append(spd, sp)
	}
	t.AddRow("AVG", f3(stats.Mean(traf)), f3(stats.Mean(miss)), f3(stats.GeoMean(spd)), "")
	t.Fprint(w)
	return errors.Join(errs...)
}

func fig3(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	p := o.runner()
	t := stats.Table{
		Title:   "Fig 3: normalized traffic / core cache misses / speedup (unbounded vs 1x), multithreaded",
		Headers: []string{"app/suite", "traffic", "misses", "speedup", "savedMPKI"},
	}
	appProfs := suiteApps(o, "PARSEC")
	appPairs := submitBaseUnb(o, p, pre, appProfs)
	avgSuites := []string{"PARSEC", "SPLASH2X", "SPECOMP", "FFTW"}
	avgPairs := make([][]baseUnbPair, len(avgSuites))
	for si, suite := range avgSuites {
		avgPairs[si] = submitBaseUnb(o, p, pre, suiteApps(o, suite))
	}
	var errs []error
	for i, prof := range appProfs {
		base, unb, err := appPairs[i].wait()
		if err != nil {
			errs = append(errs, err)
			cell := CellText(err)
			t.AddRow(prof.Name, cell, cell, cell, "")
			continue
		}
		t.AddRow(prof.Name, f3(stats.NormTraffic(base, unb)), f3(stats.NormMisses(base, unb)),
			f3(stats.Speedup(base, unb)), fmt.Sprintf("%.1f", base.MPKI()-unb.MPKI()))
	}
	for si, suite := range avgSuites {
		var traf, miss, spd []float64
		var serr error
		for _, pair := range avgPairs[si] {
			base, unb, err := pair.wait()
			if err != nil {
				if serr == nil {
					serr = err
				}
				continue
			}
			traf = append(traf, stats.NormTraffic(base, unb))
			miss = append(miss, stats.NormMisses(base, unb))
			spd = append(spd, stats.Speedup(base, unb))
		}
		if serr != nil {
			errs = append(errs, serr)
			cell := CellText(serr)
			t.AddRow(suite+"-AVG", cell, cell, cell, "")
			continue
		}
		t.AddRow(suite+"-AVG", f3(stats.Mean(traf)), f3(stats.Mean(miss)), f3(stats.GeoMean(spd)), "")
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

func fig4(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	cfgs := []namedSpec{
		{"1/2x", pre.Baseline(1.0/2, llc.NonInclusive)},
		{"1/8x", pre.Baseline(1.0/8, llc.NonInclusive)},
		{"1/32x", pre.Baseline(1.0/32, llc.NonInclusive)},
	}
	t := stats.Table{
		Title:   "Fig 4: speedup vs 1x baseline as the sparse directory shrinks",
		Headers: []string{"suite", "1/2x", "1/8x", "1/32x"},
	}
	var errs []error
	for _, suite := range allSuites {
		r := sweepGroup(o, suite, pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
		errs = append(errs, r.failed())
		row := []string{suite}
		for ci := range cfgs {
			row = append(row, r.geoCell(ci))
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

func fig5(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	llcBlocks := pre.LLCBytes / 64
	t := stats.Table{
		Title:   "Fig 5: peak directory entries overflowing the 1x organization, as % of LLC blocks (one spilled entry = one LLC block)",
		Headers: []string{"suite", "max-of-max", "avg-of-max", "max app"},
	}
	p := o.runner()
	type suiteJobs struct {
		profs []workload.Profile
		futs  []*Future[stats.Run]
	}
	jobs := make([]suiteJobs, len(allSuites))
	for si, suite := range allSuites {
		jobs[si].profs = suiteApps(o, suite)
		for _, prof := range jobs[si].profs {
			prof := prof
			jobs[si].futs = append(jobs[si].futs, SubmitJob(p, prof.Name+"/unbounded", func(ctx context.Context) (stats.Run, error) {
				return runSuiteApp(ctx, o, pre.Unbounded(llc.NonInclusive), prof, "unbounded")
			}))
		}
	}
	var errs []error
	for si, suite := range allSuites {
		var occ []float64
		maxApp, maxV := "", 0.0
		var serr error
		for pi, prof := range jobs[si].profs {
			unb, err := jobs[si].futs[pi].Result()
			if err != nil {
				if serr == nil {
					serr = err
				}
				continue
			}
			pct := 100 * float64(unb.DirPeakOverflow) / float64(llcBlocks)
			occ = append(occ, pct)
			if pct >= maxV {
				maxV, maxApp = pct, prof.Name
			}
		}
		if serr != nil {
			errs = append(errs, serr)
			cell := CellText(serr)
			t.AddRow(suite, cell, cell, "")
			continue
		}
		t.AddRow(suite, fmt.Sprintf("%.1f%%", stats.Max(occ)), fmt.Sprintf("%.1f%%", stats.Mean(occ)), maxApp)
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

func fig6(o Options, w io.Writer) error {
	pre := config.TableI(o.Scale)
	fullSets := pre.LLCBytes / 64 / pre.LLCWays / pre.LLCBanks
	var cfgs []namedSpec
	for _, ways := range []int{15, 14, 13, 12} {
		spec := pre.Baseline(1, llc.NonInclusive)
		spec.LLCSets = fullSets
		spec.LLCWays = ways
		cfgs = append(cfgs, namedSpec{fmt.Sprintf("%dways", ways), spec})
	}
	t := stats.Table{
		Title:   "Fig 6: speedup vs 16-way LLC as ways are removed (min-speedup app in parentheses)",
		Headers: []string{"suite", "15 ways", "14 ways", "13 ways", "12 ways", "worst@12"},
	}
	var errs []error
	for _, suite := range allSuites {
		r := sweepGroup(o, suite, pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
		errs = append(errs, r.failed())
		row := []string{suite}
		for ci := range cfgs {
			row = append(row, r.geoCell(ci))
		}
		if err := r.err(3); err != nil {
			row = append(row, CellText(err))
		} else {
			worst, worstApp := 10.0, ""
			for ui, u := range r.units {
				if s12 := r.speedups[3][ui]; s12 < worst {
					worst, worstApp = s12, u.name
				}
			}
			row = append(row, fmt.Sprintf("%s %.2f", worstApp, worst))
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	return errors.Join(errs...)
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
