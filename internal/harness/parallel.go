package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/atomicio"
	"repro/internal/stats"
)

// This file implements the parallel experiment engine. Every simulation
// an experiment performs is an independent job: it builds its own
// core.System from freshly synthesized, seed-derived streams, so jobs
// share no mutable state and may run concurrently in any order. The
// engine preserves the serial output bit for bit by separating
// scheduling from assembly: jobs are submitted in the same order the
// serial loops ran them, each Submit returns a Future, and callers Wait
// on the futures in submission order before formatting any output.
// DESIGN.md ("Parallel sweeps") records the determinism argument;
// determinism_test.go enforces it.
//
// The engine is also crash-safe and interruptible:
//
//   - a job that panics (the protocol stack panics on corruption) is
//     recovered into a typed *JobError carrying a replay bundle, retried
//     up to the pool's retry budget, and surfaced through Future.Result
//     so the experiment renders the cell as ERR;
//   - every job runs under a context derived from the pool's: when the
//     pool's context is cancelled (SIGINT/SIGTERM via the CLI), queued
//     jobs resolve immediately and running simulations abort within
//     sim.CancelEvery steps, rendering as CANCELLED;
//   - an armed watchdog bounds each job's wall time: a hung unit is
//     cancelled, a diagnostic bundle (job identity, elapsed steps, full
//     goroutine stacks) is written, and the cell renders as TIMEOUT
//     instead of wedging the pool;
//   - completed cells can be recorded in a CheckpointState so an
//     interrupted run resumes without re-running finished work.

// Pool schedules independent simulation jobs across a bounded number of
// worker goroutines. With Workers <= 1 jobs run inline on the caller's
// goroutine at Submit time, which is exactly the serial execution path.
// A Pool also accounts jobs and summed simulation time for the
// RunTiming summary, and optionally emits progress lines.
type Pool struct {
	ctx      context.Context
	workers  int
	sem      chan struct{}
	label    string
	progress io.Writer

	retries    int
	crashDir   string
	meta       ReplayMeta
	jobTimeout time.Duration

	ckpt      *CheckpointState
	ckptScope string

	enum func(seq int, unit string)
	gate func(seq int, unit string) (bool, error)

	mu        sync.Mutex
	submitted int
	done      int
	cached    int
	sim       time.Duration
	lastLine  time.Time
	errs      []*JobError
}

// NewPool returns a pool running at most workers jobs concurrently
// (values below 1 are treated as 1, the serial path). ctx is the pool's
// cancellation root: every job runs under a context derived from it,
// and a nil ctx means "never cancelled". When progress is non-nil,
// rate-limited "done/submitted" lines prefixed with label are written
// to it as jobs finish.
func NewPool(ctx context.Context, workers int, progress io.Writer, label string) *Pool {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pool{ctx: ctx, workers: workers, label: label, progress: progress}
	if workers > 1 {
		p.sem = make(chan struct{}, workers)
	}
	return p
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// EnableRecovery arms panic recovery: recovered jobs write a replay
// bundle into crashDir (when non-empty) stamped with meta, and each
// panicking job is re-run up to retries extra times before its error is
// recorded. Without EnableRecovery panics are still converted to
// *JobError, but no bundle is written and nothing is retried.
func (p *Pool) EnableRecovery(meta ReplayMeta, crashDir string, retries int) {
	if retries < 0 {
		retries = 0
	}
	p.meta = meta
	p.crashDir = crashDir
	p.retries = retries
}

// EnableWatchdog arms the per-job watchdog: a job still running after d
// has its context cancelled, a diagnostic bundle written next to the
// crash bundles, and its failure recorded as a TIMEOUT cell. d <= 0
// disables the watchdog.
func (p *Pool) EnableWatchdog(d time.Duration) { p.jobTimeout = d }

// EnableCheckpoint connects the pool to a run-wide checkpoint: a
// successfully completed job's result is recorded under scope, and a
// job whose cell is already recorded is served from the checkpoint
// without running. scope (typically the experiment ID) keys cells when
// several pools share one CheckpointState.
func (p *Pool) EnableCheckpoint(cs *CheckpointState, scope string) {
	p.ckpt = cs
	p.ckptScope = scope
}

// EnableEnumerate puts the pool in enumeration mode: submitted jobs are
// reported to fn in submission order and resolve immediately with zero
// values, without executing anything. This is how the campaign service
// discovers an experiment's cell grid — the set of (seq, unit) jobs is a
// pure function of the Options, never of simulation results, so the
// grid a coordinator enumerates is exactly the grid a worker executes.
func (p *Pool) EnableEnumerate(fn func(seq int, unit string)) { p.enum = fn }

// EnableGate installs a per-job admission decision, consulted after the
// checkpoint lookup: gate(seq, unit) returning (true, _) runs the job
// normally; (false, nil) resolves it with a zero value without
// executing (a worker skipping cells leased to someone else); and
// (false, err) resolves it as a failed cell carrying err (a coordinator
// rendering a degraded campaign's ERR cells without re-running them).
// Skipped jobs are never recorded in the checkpoint.
func (p *Pool) EnableGate(gate func(seq int, unit string) (bool, error)) { p.gate = gate }

// ReplayMeta identifies the run a crashed job belonged to, precisely
// enough to replay it: the experiment and the Options that shape every
// stream and system it builds.
type ReplayMeta struct {
	Experiment string `json:"experiment"`
	Scale      int    `json:"scale"`
	Accesses   int    `json:"accesses"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick,omitempty"`
	Workers    int    `json:"workers"`
	// Backends records the run's -backend selection, so a bundle from a
	// backend-matrix or audit-soak run replays against the same protocol
	// axis. Empty (and omitted) for runs predating the backend axis or
	// using the default; DecodeBundle's version-head-then-strict decode
	// keeps pre-backend bundles loading — a missing field is simply the
	// zero value, while unknown fields are still refused.
	Backends string `json:"backends,omitempty"`
}

// ErrJobTimeout marks a job reaped by the watchdog; IsTimeout
// recognizes it through any wrapping.
var ErrJobTimeout = errors.New("job exceeded -job-timeout")

// JobError is the typed failure of one submitted job: a recovered panic
// (Panic non-empty, replay bundle at ReplayPath), an error the job
// returned (wrapped in Err — including context cancellation), or a
// watchdog timeout (Timeout set, diagnostic bundle at ReplayPath).
type JobError struct {
	Meta       ReplayMeta
	Unit       string // submission label, e.g. "canneal/ZeroDEV-1/8"
	Seq        int    // submission order within the pool
	Panic      string // recovered panic value, "" for returned errors
	Err        error  // the returned error, nil for panics
	Timeout    bool   // reaped by the watchdog
	Attempts   int    // executions performed (1 + retries used)
	ReplayPath string // bundle path of the final attempt, "" when no bundle was written
	// PriorBundles are the replay-bundle paths of earlier attempts that
	// also panicked, oldest first, so operators can diff the first crash
	// against the retry's.
	PriorBundles []string
}

// Error implements error.
func (e *JobError) Error() string {
	what := e.Panic
	if e.Err != nil {
		what = e.Err.Error()
	}
	name := e.Unit
	if name == "" {
		name = fmt.Sprintf("job %d", e.Seq)
	}
	msg := fmt.Sprintf("job %q failed after %d attempt(s): %s", name, e.Attempts, what)
	switch {
	case e.ReplayPath != "" && len(e.PriorBundles) > 0:
		msg += fmt.Sprintf(" (replay bundles, attempts in order: %s, then %s)",
			strings.Join(e.PriorBundles, ", "), e.ReplayPath)
	case e.ReplayPath != "":
		msg += " (replay bundle: " + e.ReplayPath + ")"
	}
	return msg
}

// Unwrap exposes a returned error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// IsTimeout reports whether err carries a watchdog-reaped job.
func IsTimeout(err error) bool { return errors.Is(err, ErrJobTimeout) }

// IsCancelled reports whether err stems from context cancellation (the
// run was interrupted, not broken).
func IsCancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// CellText renders a failed cell's table text. The classification is
// deterministic for a given failure kind, keeping tables byte-stable.
func CellText(err error) string {
	switch {
	case err == nil:
		return ""
	case IsTimeout(err):
		return "TIMEOUT"
	case IsCancelled(err):
		return "CANCELLED"
	}
	return "ERR"
}

// Documented process exit codes for experiment/campaign commands.
// ExitCode classifies with interruption taking precedence over
// timeouts, and timeouts over ordinary failures, so `echo $?` always
// names the most actionable cause.
const (
	ExitOK          = 0
	ExitFailure     = 1   // crashed/erroring cells, invariant violations
	ExitUsage       = 2   // bad flags (flag package convention)
	ExitTimeout     = 3   // watchdog reaped at least one hung job
	ExitInterrupted = 130 // SIGINT/SIGTERM: 128 + SIGINT, shell convention
)

// ExitCode maps a run's joined error to the documented exit code.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case IsCancelled(err):
		return ExitInterrupted
	case IsTimeout(err):
		return ExitTimeout
	}
	return ExitFailure
}

// jobMonitor is the per-job progress surface the watchdog reads when
// dumping diagnostics: simulations publish their scheduler step count
// here through sim.ContextHook.
type jobMonitor struct {
	steps atomic.Uint64
}

type monitorKey struct{}

// JobSteps returns the step counter of the job owning ctx, for
// simulation drivers to publish progress into (nil when ctx does not
// belong to a pool job; sim.ContextHook accepts nil).
func JobSteps(ctx context.Context) *atomic.Uint64 {
	if ctx == nil {
		return nil
	}
	if m, ok := ctx.Value(monitorKey{}).(*jobMonitor); ok {
		return &m.steps
	}
	return nil
}

// Future is the pending result of a submitted job.
type Future[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Wait blocks until the job finishes and returns its result. A failed
// job yields the zero value; use Result to observe the failure.
func (f *Future[T]) Wait() T {
	<-f.done
	return f.val
}

// Result blocks until the job finishes and returns its result and
// error (a *JobError for recovered panics).
func (f *Future[T]) Result() (T, error) {
	<-f.done
	return f.val, f.err
}

// Submit schedules fn on the pool and returns its future. On a serial
// pool (workers <= 1, or p == nil) fn runs before Submit returns, so a
// sequence of Submit calls executes jobs in exactly the serial order.
// fn receives the job's context (cancelled on interrupt or watchdog
// timeout); a panic in fn is recovered into the future's error.
func Submit[T any](p *Pool, fn func(ctx context.Context) T) *Future[T] {
	return SubmitJob(p, "", func(ctx context.Context) (T, error) { return fn(ctx), nil })
}

// SubmitJob is Submit for jobs that can fail: label names the job in
// failure reports (unit/config), and fn's error is propagated through
// Future.Result without aborting sibling jobs.
func SubmitJob[T any](p *Pool, label string, fn func(ctx context.Context) (T, error)) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	if p == nil {
		f.val, f.err = runRecovered(nil, context.Background(), label, 0, fn)
		close(f.done)
		return f
	}
	p.mu.Lock()
	p.submitted++
	seq := p.submitted
	p.mu.Unlock()
	run := func() {
		start := time.Now()
		f.val, f.err = execute(p, label, seq, fn)
		close(f.done)
		p.finish(start)
	}
	if p.workers <= 1 {
		run()
		return f
	}
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		run()
	}()
	return f
}

// execute runs one job end to end: checkpoint lookup, cancellation
// check, watchdog supervision, recovery/retries, and the recording of
// the final result (into the pool's failure list or the checkpoint).
func execute[T any](p *Pool, label string, seq int, fn func(ctx context.Context) (T, error)) (T, error) {
	var zero T
	// Enumeration mode records the cell and never executes (or consults
	// the checkpoint: the grid must be complete even when every cell is
	// already done).
	if p.enum != nil {
		p.enum(seq, label)
		return zero, nil
	}
	// A cell already in the checkpoint is served without running: this
	// is the resume path, and decoding the stored JSON reproduces the
	// original value exactly (every cell type round-trips).
	if p.ckpt != nil {
		var v T
		if ok := p.ckpt.lookup(p.ckptScope, seq, label, &v); ok {
			p.mu.Lock()
			p.cached++
			p.mu.Unlock()
			return v, nil
		}
	}
	// The gate skips cells this process does not own (a worker holding a
	// lease on a different cell) or stubs cells whose outcome is already
	// decided (a degraded cell rendering as ERR). Skips bypass the
	// checkpoint store: only genuinely executed results are recorded.
	if p.gate != nil {
		if run, gerr := p.gate(seq, label); !run {
			if gerr != nil {
				je := &JobError{Meta: p.meta, Unit: label, Seq: seq, Err: gerr, Attempts: 1}
				p.record(je)
				return zero, je
			}
			return zero, nil
		}
	}
	// A cancelled pool resolves queued jobs immediately: in-flight
	// simulations drain on their own cancellation points, and nothing
	// new starts.
	if err := p.ctx.Err(); err != nil {
		je := &JobError{Meta: p.meta, Unit: label, Seq: seq, Err: err, Attempts: 1}
		p.record(je)
		return zero, je
	}
	mon := &jobMonitor{}
	jctx, cancel := context.WithCancel(context.WithValue(p.ctx, monitorKey{}, mon))
	defer cancel()

	if p.jobTimeout <= 0 {
		val, err := runRecovered(p, jctx, label, seq, fn)
		return finalize(p, label, seq, val, err)
	}

	// Watchdog path: the job body runs on its own goroutine so a wedged
	// unit (one that never reaches a cancellation point) can be
	// abandoned without wedging the pool or the serial caller.
	type outcome struct {
		val T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, e := runRecovered(p, jctx, label, seq, fn)
		ch <- outcome{v, e}
	}()
	timer := time.NewTimer(p.jobTimeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return finalize(p, label, seq, out.val, out.err)
	case <-timer.C:
		cancel()
		bundle := p.writeTimeoutBundle(label, seq, mon.steps.Load())
		p.note("watchdog: job %q exceeded %v; cancelling (diagnostics: %s)\n", label, p.jobTimeout, bundle)
		// Grace period for the cooperative abort to land; a unit that
		// ignores its context is abandoned (its eventual result, if
		// any, is discarded — the buffered channel lets it exit).
		grace := p.jobTimeout
		if grace > 2*time.Second {
			grace = 2 * time.Second
		}
		select {
		case <-ch:
		case <-time.After(grace):
		}
		je := &JobError{
			Meta: p.meta, Unit: label, Seq: seq,
			Err:     fmt.Errorf("%w (%v)", ErrJobTimeout, p.jobTimeout),
			Timeout: true, Attempts: 1, ReplayPath: bundle,
		}
		p.record(je)
		return zero, je
	}
}

// finalize records a finished job: failures land in the pool's failure
// list, successes in the checkpoint (when armed).
func finalize[T any](p *Pool, label string, seq int, val T, err error) (T, error) {
	if err != nil {
		var je *JobError
		if !errors.As(err, &je) {
			je = &JobError{Meta: p.meta, Unit: label, Seq: seq, Err: err, Attempts: 1}
			err = je
		}
		p.record(je)
		return val, err
	}
	if p.ckpt != nil {
		p.ckpt.store(p.ckptScope, seq, label, val)
	}
	return val, nil
}

// record appends a failure to the pool's list.
func (p *Pool) record(je *JobError) {
	p.mu.Lock()
	p.errs = append(p.errs, je)
	p.mu.Unlock()
}

// note writes a line to the progress writer under the pool mutex (the
// writer needs no synchronization of its own).
func (p *Pool) note(format string, args ...any) {
	if p.progress == nil {
		return
	}
	p.mu.Lock()
	fmt.Fprintf(p.progress, format, args...)
	p.mu.Unlock()
}

// runRecovered executes fn with panic recovery and the pool's retry
// budget. Only panics are retried: a returned error is deterministic
// (the same inputs fail the same way), so re-running it wastes time.
func runRecovered[T any](p *Pool, ctx context.Context, label string, seq int, fn func(ctx context.Context) (T, error)) (T, error) {
	retries := 0
	if p != nil {
		retries = p.retries
	}
	var val T
	var err error
	var prior []string // bundle paths of earlier panicking attempts
	for attempt := 0; ; attempt++ {
		var je *JobError
		val, err, je = runOnce(p, ctx, label, seq, attempt, fn)
		if je == nil {
			if err != nil {
				we := &JobError{Unit: label, Seq: seq, Err: err, Attempts: attempt + 1}
				if p != nil {
					we.Meta = p.meta
				}
				err = we
			}
			return val, err
		}
		err = je
		if attempt >= retries || ctx.Err() != nil {
			je.PriorBundles = prior
			return val, err
		}
		if je.ReplayPath != "" {
			prior = append(prior, je.ReplayPath)
		}
	}
}

// runOnce runs fn once; a panic is recovered into je with its replay
// bundle written immediately (so even the attempts that will be
// retried leave an artifact while the state is fresh).
func runOnce[T any](p *Pool, ctx context.Context, label string, seq, attempt int, fn func(ctx context.Context) (T, error)) (val T, err error, je *JobError) {
	defer func() {
		if r := recover(); r != nil {
			je = &JobError{Unit: label, Seq: seq, Panic: fmt.Sprint(r), Attempts: attempt + 1}
			if p != nil {
				je.Meta = p.meta
				je.ReplayPath = p.writeBundle(je, debug.Stack())
			}
		}
	}()
	val, err = fn(ctx)
	return
}

// BundleVersion stamps crash and watchdog bundles; bump on incompatible
// format changes so stale bundles are refused instead of misdecoded.
const BundleVersion = 1

// replayBundle is the on-disk crash artifact: everything needed to
// re-run the failed job (the workload and system are pure functions of
// experiment + options + unit label) plus the panic and stack for
// diagnosis.
type replayBundle struct {
	Version int `json:"version"`
	ReplayMeta
	Unit    string `json:"unit,omitempty"`
	Seq     int    `json:"seq"`
	Attempt int    `json:"attempt"`
	Panic   string `json:"panic"`
	Stack   string `json:"stack"`
}

// DecodeBundle reads a crash/watchdog bundle, refusing unknown fields
// and version mismatches with a clear error rather than decoding
// garbage from a different build's artifact.
func DecodeBundle(r io.Reader) (ReplayMeta, error) {
	var head struct {
		Version int `json:"version"`
	}
	var buf []byte
	var err error
	if buf, err = io.ReadAll(r); err != nil {
		return ReplayMeta{}, err
	}
	if err := json.Unmarshal(buf, &head); err != nil {
		return ReplayMeta{}, fmt.Errorf("harness: not a replay bundle: %w", err)
	}
	if head.Version != BundleVersion {
		return ReplayMeta{}, fmt.Errorf("harness: bundle version %d, this build reads %d", head.Version, BundleVersion)
	}
	var b replayBundle
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return ReplayMeta{}, fmt.Errorf("harness: decoding replay bundle: %w", err)
	}
	return b.ReplayMeta, nil
}

// timeoutBundle is the watchdog's diagnostic artifact: the hung job's
// identity, how far it got (the exact scheduler step count —
// sim.ContextHook publishes on every step, so a job that wedges before
// the first cancellation boundary still reports its true progress), and
// a full goroutine dump showing where every worker is stuck.
type timeoutBundle struct {
	Version int `json:"version"`
	ReplayMeta
	Unit         string `json:"unit,omitempty"`
	Seq          int    `json:"seq"`
	TimeoutMS    int64  `json:"timeout_ms"`
	ElapsedSteps uint64 `json:"elapsed_steps"`
	Stacks       string `json:"stacks"`
}

// writeBundle persists the crash artifact and returns its path. The
// filename is a pure function of the job identity — no timestamps — so
// reruns overwrite rather than accumulate and output stays
// deterministic. The write is atomic: a kill mid-write never leaves a
// torn bundle.
func (p *Pool) writeBundle(je *JobError, stack []byte) string {
	if p.crashDir == "" {
		return ""
	}
	name := p.bundleName(je.Unit, fmt.Sprintf("j%03d_a%d", je.Seq, je.Attempts))
	b, err := json.MarshalIndent(replayBundle{
		Version:    BundleVersion,
		ReplayMeta: p.meta,
		Unit:       je.Unit,
		Seq:        je.Seq,
		Attempt:    je.Attempts,
		Panic:      je.Panic,
		Stack:      string(stack),
	}, "", "  ")
	if err != nil {
		return ""
	}
	path := filepath.Join(p.crashDir, name)
	if err := atomicio.WriteFile(path, b, 0o644); err != nil {
		return ""
	}
	return path
}

// writeTimeoutBundle persists the watchdog diagnostic and returns its
// path ("" when the pool has no crash directory).
func (p *Pool) writeTimeoutBundle(unit string, seq int, steps uint64) string {
	if p.crashDir == "" {
		return ""
	}
	stacks := make([]byte, 1<<20)
	stacks = stacks[:runtime.Stack(stacks, true)]
	name := p.bundleName(unit, fmt.Sprintf("j%03d_timeout", seq))
	b, err := json.MarshalIndent(timeoutBundle{
		Version:      BundleVersion,
		ReplayMeta:   p.meta,
		Unit:         unit,
		Seq:          seq,
		TimeoutMS:    p.jobTimeout.Milliseconds(),
		ElapsedSteps: steps,
		Stacks:       string(stacks),
	}, "", "  ")
	if err != nil {
		return ""
	}
	path := filepath.Join(p.crashDir, name)
	if err := atomicio.WriteFile(path, b, 0o644); err != nil {
		return ""
	}
	return path
}

// bundleName maps a job to its deterministic bundle filename.
func (p *Pool) bundleName(unit, suffix string) string {
	u := sanitizeName(unit)
	if u == "" {
		u = "job"
	}
	return fmt.Sprintf("%s_%s_%s.json", sanitizeName(p.meta.Experiment), u, suffix)
}

// sanitizeName maps a job label to a filesystem-safe token.
func sanitizeName(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '-', c == '_':
		default:
			out[i] = '-'
		}
	}
	return string(out)
}

// Failures returns the recorded job failures in submission order
// (deterministic regardless of worker scheduling).
func (p *Pool) Failures() []*JobError {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*JobError, len(p.errs))
	copy(out, p.errs)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// FailureSummary returns nil when every job succeeded, and otherwise an
// error summarizing the failures (wrapping the first in submission
// order, with every failure reachable by errors.Is/As for exit-code
// classification).
func (p *Pool) FailureSummary() error {
	fails := p.Failures()
	if len(fails) == 0 {
		return nil
	}
	p.mu.Lock()
	total := p.done
	p.mu.Unlock()
	rest := make([]error, 0, len(fails)-1)
	for _, je := range fails[1:] {
		rest = append(rest, je)
	}
	err := fmt.Errorf("%d of %d jobs failed; first: %w", len(fails), total, fails[0])
	if len(rest) > 0 {
		err = errors.Join(append([]error{err}, rest...)...)
	}
	if p.crashDir != "" {
		err = fmt.Errorf("%w (replay bundles under %s)", err, p.crashDir)
	}
	return err
}

// CachedJobs reports how many cells were served from the checkpoint
// instead of running, for resume reporting.
func (p *Pool) CachedJobs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cached
}

// finish records a completed job and emits a progress line at most once
// per second. The write happens under the pool mutex so a shared
// progress writer needs no synchronization of its own.
func (p *Pool) finish(start time.Time) {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.sim += now.Sub(start)
	if p.progress != nil && now.Sub(p.lastLine) >= time.Second {
		p.lastLine = now
		fmt.Fprintf(p.progress, "%s: %d/%d jobs\n", p.label, p.done, p.submitted)
	}
}

// timing snapshots the pool's accounting into a RunTiming (Wall is
// filled in by the caller, which owns the experiment's clock).
func (p *Pool) timing() stats.RunTiming {
	p.mu.Lock()
	defer p.mu.Unlock()
	return stats.RunTiming{
		Experiment: p.label,
		Workers:    p.workers,
		Jobs:       p.done,
		Failed:     len(p.errs),
		Sim:        p.sim,
	}
}

// runner returns the experiment-wide pool when Execute installed one,
// and otherwise a fresh silent pool sized by o.Workers. Experiments call
// it once per sweep so direct e.Run calls still parallelize.
func (o Options) runner() *Pool {
	if o.pool != nil {
		return o.pool
	}
	p := NewPool(nil, o.Workers, nil, "")
	p.EnableRecovery(ReplayMeta{Scale: o.Scale, Accesses: o.Accesses, Seed: o.Seed, Quick: o.Quick, Workers: o.Workers, Backends: o.Backends}, o.CrashDir, o.Retries)
	p.EnableWatchdog(o.JobTimeout)
	return p
}

// Execute runs the experiment under ctx with a shared worker pool sized
// by o.Workers and returns the timing summary alongside the
// experiment's error. Output written to w is byte-identical for any
// worker count. Job failures that the experiment did not itself
// propagate are folded into the returned error, so a run with crashed,
// timed-out, or cancelled cells always reports non-nil (classify with
// ExitCode). When o.Checkpoint is armed, completed cells are recorded
// under the experiment's ID and already-recorded cells are served
// without re-running.
func (e Experiment) Execute(ctx context.Context, o Options, w io.Writer) (stats.RunTiming, error) {
	p := NewPool(ctx, o.Workers, o.Progress, e.ID)
	p.EnableRecovery(ReplayMeta{
		Experiment: e.ID,
		Scale:      o.Scale,
		Accesses:   o.Accesses,
		Seed:       o.Seed,
		Quick:      o.Quick,
		Workers:    o.Workers,
		Backends:   o.Backends,
	}, o.CrashDir, o.Retries)
	p.EnableWatchdog(o.JobTimeout)
	if o.Checkpoint != nil {
		p.EnableCheckpoint(o.Checkpoint, e.ID)
	}
	o.pool = p
	start := time.Now()
	err := e.Run(o, w)
	if err == nil {
		err = p.FailureSummary()
	}
	t := p.timing()
	t.Wall = time.Since(start)
	return t, err
}
