package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/stats"
)

// This file implements the parallel experiment engine. Every simulation
// an experiment performs is an independent job: it builds its own
// core.System from freshly synthesized, seed-derived streams, so jobs
// share no mutable state and may run concurrently in any order. The
// engine preserves the serial output bit for bit by separating
// scheduling from assembly: jobs are submitted in the same order the
// serial loops ran them, each Submit returns a Future, and callers Wait
// on the futures in submission order before formatting any output.
// DESIGN.md ("Parallel sweeps") records the determinism argument;
// determinism_test.go enforces it.

// Pool schedules independent simulation jobs across a bounded number of
// worker goroutines. With Workers <= 1 jobs run inline on the caller's
// goroutine at Submit time, which is exactly the serial execution path.
// A Pool also accounts jobs and summed simulation time for the
// RunTiming summary, and optionally emits progress lines.
type Pool struct {
	workers  int
	sem      chan struct{}
	label    string
	progress io.Writer

	mu        sync.Mutex
	submitted int
	done      int
	sim       time.Duration
	lastLine  time.Time
}

// NewPool returns a pool running at most workers jobs concurrently
// (values below 1 are treated as 1, the serial path). When progress is
// non-nil, rate-limited "done/submitted" lines prefixed with label are
// written to it as jobs finish.
func NewPool(workers int, progress io.Writer, label string) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, label: label, progress: progress}
	if workers > 1 {
		p.sem = make(chan struct{}, workers)
	}
	return p
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Future is the pending result of a submitted job.
type Future[T any] struct {
	done chan struct{}
	val  T
}

// Wait blocks until the job finishes and returns its result.
func (f *Future[T]) Wait() T {
	<-f.done
	return f.val
}

// Submit schedules fn on the pool and returns its future. On a serial
// pool (workers <= 1, or p == nil) fn runs before Submit returns, so a
// sequence of Submit calls executes jobs in exactly the serial order.
func Submit[T any](p *Pool, fn func() T) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	if p == nil {
		f.val = fn()
		close(f.done)
		return f
	}
	p.mu.Lock()
	p.submitted++
	p.mu.Unlock()
	if p.workers <= 1 {
		start := time.Now()
		f.val = fn()
		close(f.done)
		p.finish(start)
		return f
	}
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		start := time.Now()
		f.val = fn()
		close(f.done)
		p.finish(start)
	}()
	return f
}

// finish records a completed job and emits a progress line at most once
// per second. The write happens under the pool mutex so a shared
// progress writer needs no synchronization of its own.
func (p *Pool) finish(start time.Time) {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.sim += now.Sub(start)
	if p.progress != nil && now.Sub(p.lastLine) >= time.Second {
		p.lastLine = now
		fmt.Fprintf(p.progress, "%s: %d/%d jobs\n", p.label, p.done, p.submitted)
	}
}

// timing snapshots the pool's accounting into a RunTiming (Wall is
// filled in by the caller, which owns the experiment's clock).
func (p *Pool) timing() stats.RunTiming {
	p.mu.Lock()
	defer p.mu.Unlock()
	return stats.RunTiming{
		Experiment: p.label,
		Workers:    p.workers,
		Jobs:       p.done,
		Sim:        p.sim,
	}
}

// runner returns the experiment-wide pool when Execute installed one,
// and otherwise a fresh silent pool sized by o.Workers. Experiments call
// it once per sweep so direct e.Run calls still parallelize.
func (o Options) runner() *Pool {
	if o.pool != nil {
		return o.pool
	}
	return NewPool(o.Workers, nil, "")
}

// Execute runs the experiment with a shared worker pool sized by
// o.Workers and returns the timing summary alongside the experiment's
// error. Output written to w is byte-identical for any worker count.
func (e Experiment) Execute(o Options, w io.Writer) (stats.RunTiming, error) {
	p := NewPool(o.Workers, o.Progress, e.ID)
	o.pool = p
	start := time.Now()
	err := e.Run(o, w)
	t := p.timing()
	t.Wall = time.Since(start)
	return t, err
}
