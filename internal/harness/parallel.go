package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// This file implements the parallel experiment engine. Every simulation
// an experiment performs is an independent job: it builds its own
// core.System from freshly synthesized, seed-derived streams, so jobs
// share no mutable state and may run concurrently in any order. The
// engine preserves the serial output bit for bit by separating
// scheduling from assembly: jobs are submitted in the same order the
// serial loops ran them, each Submit returns a Future, and callers Wait
// on the futures in submission order before formatting any output.
// DESIGN.md ("Parallel sweeps") records the determinism argument;
// determinism_test.go enforces it.
//
// The engine is also crash-resilient: a job that panics (the protocol
// stack panics on corruption) is recovered into a typed *JobError
// carrying a replay bundle written under the crash directory, retried
// up to the pool's retry budget, and finally surfaced through
// Future.Result so the experiment renders the cell as ERR instead of
// taking down every sibling job. Returned (non-panic) errors are
// deterministic and are never retried.

// Pool schedules independent simulation jobs across a bounded number of
// worker goroutines. With Workers <= 1 jobs run inline on the caller's
// goroutine at Submit time, which is exactly the serial execution path.
// A Pool also accounts jobs and summed simulation time for the
// RunTiming summary, and optionally emits progress lines.
type Pool struct {
	workers  int
	sem      chan struct{}
	label    string
	progress io.Writer

	retries  int
	crashDir string
	meta     ReplayMeta

	mu        sync.Mutex
	submitted int
	done      int
	sim       time.Duration
	lastLine  time.Time
	errs      []*JobError
}

// NewPool returns a pool running at most workers jobs concurrently
// (values below 1 are treated as 1, the serial path). When progress is
// non-nil, rate-limited "done/submitted" lines prefixed with label are
// written to it as jobs finish.
func NewPool(workers int, progress io.Writer, label string) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, label: label, progress: progress}
	if workers > 1 {
		p.sem = make(chan struct{}, workers)
	}
	return p
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// EnableRecovery arms panic recovery: recovered jobs write a replay
// bundle into crashDir (when non-empty) stamped with meta, and each
// panicking job is re-run up to retries extra times before its error is
// recorded. Without EnableRecovery panics are still converted to
// *JobError, but no bundle is written and nothing is retried.
func (p *Pool) EnableRecovery(meta ReplayMeta, crashDir string, retries int) {
	if retries < 0 {
		retries = 0
	}
	p.meta = meta
	p.crashDir = crashDir
	p.retries = retries
}

// ReplayMeta identifies the run a crashed job belonged to, precisely
// enough to replay it: the experiment and the Options that shape every
// stream and system it builds.
type ReplayMeta struct {
	Experiment string `json:"experiment"`
	Scale      int    `json:"scale"`
	Accesses   int    `json:"accesses"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick,omitempty"`
	Workers    int    `json:"workers"`
}

// JobError is the typed failure of one submitted job: either a
// recovered panic (Panic non-empty, replay bundle at ReplayPath) or an
// error the job returned (wrapped in Err).
type JobError struct {
	Meta       ReplayMeta
	Unit       string // submission label, e.g. "canneal/ZeroDEV-1/8"
	Seq        int    // submission order within the pool
	Panic      string // recovered panic value, "" for returned errors
	Err        error  // the returned error, nil for panics
	Attempts   int    // executions performed (1 + retries used)
	ReplayPath string // bundle path, "" when no bundle was written
}

// Error implements error.
func (e *JobError) Error() string {
	what := e.Panic
	if e.Err != nil {
		what = e.Err.Error()
	}
	name := e.Unit
	if name == "" {
		name = fmt.Sprintf("job %d", e.Seq)
	}
	msg := fmt.Sprintf("job %q failed after %d attempt(s): %s", name, e.Attempts, what)
	if e.ReplayPath != "" {
		msg += " (replay bundle: " + e.ReplayPath + ")"
	}
	return msg
}

// Unwrap exposes a returned error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Future is the pending result of a submitted job.
type Future[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Wait blocks until the job finishes and returns its result. A failed
// job yields the zero value; use Result to observe the failure.
func (f *Future[T]) Wait() T {
	<-f.done
	return f.val
}

// Result blocks until the job finishes and returns its result and
// error (a *JobError for recovered panics).
func (f *Future[T]) Result() (T, error) {
	<-f.done
	return f.val, f.err
}

// Submit schedules fn on the pool and returns its future. On a serial
// pool (workers <= 1, or p == nil) fn runs before Submit returns, so a
// sequence of Submit calls executes jobs in exactly the serial order.
// A panic in fn is recovered into the future's error.
func Submit[T any](p *Pool, fn func() T) *Future[T] {
	return SubmitJob(p, "", func() (T, error) { return fn(), nil })
}

// SubmitJob is Submit for jobs that can fail: label names the job in
// failure reports (unit/config), and fn's error is propagated through
// Future.Result without aborting sibling jobs.
func SubmitJob[T any](p *Pool, label string, fn func() (T, error)) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	if p == nil {
		f.val, f.err = runRecovered(nil, label, 0, fn)
		close(f.done)
		return f
	}
	p.mu.Lock()
	p.submitted++
	seq := p.submitted
	p.mu.Unlock()
	run := func() {
		start := time.Now()
		f.val, f.err = runRecovered(p, label, seq, fn)
		close(f.done)
		p.finish(start)
	}
	if p.workers <= 1 {
		run()
		return f
	}
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		run()
	}()
	return f
}

// runRecovered executes fn with panic recovery and the pool's retry
// budget. Only panics are retried: a returned error is deterministic
// (the same inputs fail the same way), so re-running it wastes time.
// The final failure, if any, is recorded on the pool.
func runRecovered[T any](p *Pool, label string, seq int, fn func() (T, error)) (T, error) {
	retries := 0
	if p != nil {
		retries = p.retries
	}
	var val T
	var err error
	for attempt := 0; ; attempt++ {
		var je *JobError
		val, err, je = runOnce(p, label, seq, attempt, fn)
		if je == nil {
			if err != nil {
				we := &JobError{Unit: label, Seq: seq, Err: err, Attempts: attempt + 1}
				if p != nil {
					we.Meta = p.meta
				}
				err = we
			}
			break
		}
		err = je
		if attempt >= retries {
			break
		}
	}
	if err != nil && p != nil {
		p.mu.Lock()
		p.errs = append(p.errs, err.(*JobError))
		p.mu.Unlock()
	}
	return val, err
}

// runOnce runs fn once; a panic is recovered into je with its replay
// bundle written immediately (so even the attempts that will be
// retried leave an artifact while the state is fresh).
func runOnce[T any](p *Pool, label string, seq, attempt int, fn func() (T, error)) (val T, err error, je *JobError) {
	defer func() {
		if r := recover(); r != nil {
			je = &JobError{Unit: label, Seq: seq, Panic: fmt.Sprint(r), Attempts: attempt + 1}
			if p != nil {
				je.Meta = p.meta
				je.ReplayPath = p.writeBundle(je, debug.Stack())
			}
		}
	}()
	val, err = fn()
	return
}

// replayBundle is the on-disk crash artifact: everything needed to
// re-run the failed job (the workload and system are pure functions of
// experiment + options + unit label) plus the panic and stack for
// diagnosis.
type replayBundle struct {
	ReplayMeta
	Unit    string `json:"unit,omitempty"`
	Seq     int    `json:"seq"`
	Attempt int    `json:"attempt"`
	Panic   string `json:"panic"`
	Stack   string `json:"stack"`
}

// writeBundle persists the crash artifact and returns its path. The
// filename is a pure function of the job identity — no timestamps — so
// reruns overwrite rather than accumulate and output stays
// deterministic.
func (p *Pool) writeBundle(je *JobError, stack []byte) string {
	if p.crashDir == "" {
		return ""
	}
	if err := os.MkdirAll(p.crashDir, 0o755); err != nil {
		return ""
	}
	unit := sanitizeName(je.Unit)
	if unit == "" {
		unit = "job"
	}
	name := fmt.Sprintf("%s_%s_j%03d_a%d.json", sanitizeName(p.meta.Experiment), unit, je.Seq, je.Attempts)
	path := filepath.Join(p.crashDir, name)
	b, err := json.MarshalIndent(replayBundle{
		ReplayMeta: p.meta,
		Unit:       je.Unit,
		Seq:        je.Seq,
		Attempt:    je.Attempts,
		Panic:      je.Panic,
		Stack:      string(stack),
	}, "", "  ")
	if err != nil {
		return ""
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return ""
	}
	return path
}

// sanitizeName maps a job label to a filesystem-safe token.
func sanitizeName(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '-', c == '_':
		default:
			out[i] = '-'
		}
	}
	return string(out)
}

// Failures returns the recorded job failures in submission order
// (deterministic regardless of worker scheduling).
func (p *Pool) Failures() []*JobError {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*JobError, len(p.errs))
	copy(out, p.errs)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// FailureSummary returns nil when every job succeeded, and otherwise an
// error summarizing the failures (wrapping the first in submission
// order).
func (p *Pool) FailureSummary() error {
	fails := p.Failures()
	if len(fails) == 0 {
		return nil
	}
	p.mu.Lock()
	total := p.done
	p.mu.Unlock()
	err := fmt.Errorf("%d of %d jobs failed; first: %w", len(fails), total, fails[0])
	if p.crashDir != "" {
		err = fmt.Errorf("%w (replay bundles under %s)", err, p.crashDir)
	}
	return err
}

// finish records a completed job and emits a progress line at most once
// per second. The write happens under the pool mutex so a shared
// progress writer needs no synchronization of its own.
func (p *Pool) finish(start time.Time) {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.sim += now.Sub(start)
	if p.progress != nil && now.Sub(p.lastLine) >= time.Second {
		p.lastLine = now
		fmt.Fprintf(p.progress, "%s: %d/%d jobs\n", p.label, p.done, p.submitted)
	}
}

// timing snapshots the pool's accounting into a RunTiming (Wall is
// filled in by the caller, which owns the experiment's clock).
func (p *Pool) timing() stats.RunTiming {
	p.mu.Lock()
	defer p.mu.Unlock()
	return stats.RunTiming{
		Experiment: p.label,
		Workers:    p.workers,
		Jobs:       p.done,
		Failed:     len(p.errs),
		Sim:        p.sim,
	}
}

// runner returns the experiment-wide pool when Execute installed one,
// and otherwise a fresh silent pool sized by o.Workers. Experiments call
// it once per sweep so direct e.Run calls still parallelize.
func (o Options) runner() *Pool {
	if o.pool != nil {
		return o.pool
	}
	p := NewPool(o.Workers, nil, "")
	p.EnableRecovery(ReplayMeta{Scale: o.Scale, Accesses: o.Accesses, Seed: o.Seed, Quick: o.Quick, Workers: o.Workers}, o.CrashDir, o.Retries)
	return p
}

// Execute runs the experiment with a shared worker pool sized by
// o.Workers and returns the timing summary alongside the experiment's
// error. Output written to w is byte-identical for any worker count.
// Job failures that the experiment did not itself propagate are folded
// into the returned error, so a run with crashed cells always reports
// non-nil.
func (e Experiment) Execute(o Options, w io.Writer) (stats.RunTiming, error) {
	p := NewPool(o.Workers, o.Progress, e.ID)
	p.EnableRecovery(ReplayMeta{
		Experiment: e.ID,
		Scale:      o.Scale,
		Accesses:   o.Accesses,
		Seed:       o.Seed,
		Quick:      o.Quick,
		Workers:    o.Workers,
	}, o.CrashDir, o.Retries)
	o.pool = p
	start := time.Now()
	err := e.Run(o, w)
	if err == nil {
		err = p.FailureSummary()
	}
	t := p.timing()
	t.Wall = time.Since(start)
	return t, err
}
