package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/config"
	"repro/internal/llc"
)

// TestPoolOrdering checks the engine's core contract: futures resolve to
// their own job's result regardless of scheduling, so waiting in
// submission order reassembles the serial sequence.
func TestPoolOrdering(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(nil, workers, nil, "order")
		var futs []*Future[int]
		for i := 0; i < 100; i++ {
			i := i
			futs = append(futs, Submit(p, func(context.Context) int { return i * i }))
		}
		for i, f := range futs {
			if got := f.Wait(); got != i*i {
				t.Fatalf("workers=%d: job %d returned %d, want %d", workers, i, got, i*i)
			}
		}
		if tm := p.timing(); tm.Jobs != 100 {
			t.Fatalf("workers=%d: timing counted %d jobs, want 100", workers, tm.Jobs)
		}
	}
}

// TestPoolConcurrencyBound verifies the semaphore actually bounds how
// many jobs run at once.
func TestPoolConcurrencyBound(t *testing.T) {
	const workers = 3
	p := NewPool(nil, workers, nil, "bound")
	var inFlight, peak atomic.Int32
	gate := make(chan struct{})
	var futs []*Future[struct{}]
	for i := 0; i < 32; i++ {
		futs = append(futs, Submit(p, func(context.Context) struct{} {
			n := inFlight.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			<-gate
			inFlight.Add(-1)
			return struct{}{}
		}))
	}
	close(gate)
	for _, f := range futs {
		f.Wait()
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, bound is %d", got, workers)
	}
}

// TestSerialSubmitRunsInline pins the Workers<=1 guarantee: the job has
// already executed, on the calling goroutine, when Submit returns.
func TestSerialSubmitRunsInline(t *testing.T) {
	p := NewPool(nil, 1, nil, "serial")
	ran := false
	f := Submit(p, func(context.Context) bool { ran = true; return true })
	if !ran {
		t.Fatal("serial Submit returned before running the job")
	}
	f.Wait()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
}

// TestParallelSweepMatchesSerial is the short race-detector tier: it
// drives the real sweep path (workload synthesis, full simulations,
// stats collection) through a parallel pool and cross-checks every
// speedup and collected run against the serial sweep. Run it with
// `go test -race -short ./internal/harness` to shake out shared-state
// races; heavier determinism checks live in determinism_test.go.
func TestParallelSweepMatchesSerial(t *testing.T) {
	o := tinyOptions()
	o.Accesses = 1500
	pre := config.TableI(o.Scale)
	cfgs := []namedSpec{
		{"1/8x", pre.Baseline(1.0/8, llc.NonInclusive)},
		{"1/32x", pre.Baseline(1.0/32, llc.NonInclusive)},
	}
	serial, parallel := o, o
	serial.Workers = 1
	parallel.Workers = 4
	rs := sweepGroup(serial, "FFTW", pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
	rp := sweepGroup(parallel, "FFTW", pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
	if !reflect.DeepEqual(rs.speedups, rp.speedups) {
		t.Fatalf("parallel speedups %v differ from serial %v", rp.speedups, rs.speedups)
	}
	if !reflect.DeepEqual(rs.runs, rp.runs) {
		t.Fatal("parallel collected runs differ from serial")
	}
}

// TestPoolRecoversPanics pins the crash-resilience core: a panicking
// job resolves its own future to a typed *JobError, siblings are
// untouched, failures come back in submission order, and the pool's
// summary reports the run as failed.
func TestPoolRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(nil, workers, nil, "crash")
		ok1 := SubmitJob(p, "healthy-a", func(context.Context) (int, error) { return 7, nil })
		bad := SubmitJob(p, "doomed", func(context.Context) (int, error) { panic("injected panic") })
		ok2 := SubmitJob(p, "healthy-b", func(context.Context) (int, error) { return 9, nil })
		if v, err := ok1.Result(); v != 7 || err != nil {
			t.Fatalf("workers=%d: sibling a got (%d, %v)", workers, v, err)
		}
		if v, err := ok2.Result(); v != 9 || err != nil {
			t.Fatalf("workers=%d: sibling b got (%d, %v)", workers, v, err)
		}
		_, err := bad.Result()
		var je *JobError
		if !errors.As(err, &je) {
			t.Fatalf("workers=%d: panic surfaced as %T (%v), want *JobError", workers, err, err)
		}
		if je.Unit != "doomed" || !strings.Contains(je.Panic, "injected panic") || je.Attempts != 1 {
			t.Fatalf("workers=%d: bad JobError: %+v", workers, je)
		}
		fails := p.Failures()
		if len(fails) != 1 || fails[0].Unit != "doomed" {
			t.Fatalf("workers=%d: Failures() = %+v", workers, fails)
		}
		sum := p.FailureSummary()
		if sum == nil || !strings.Contains(sum.Error(), "1 of 3 jobs failed") {
			t.Fatalf("workers=%d: FailureSummary() = %v", workers, sum)
		}
		if tm := p.timing(); tm.Failed != 1 {
			t.Fatalf("workers=%d: timing.Failed = %d", workers, tm.Failed)
		}
	}
}

// TestPoolRetriesPanicsOnly checks the retry budget's asymmetry: a
// transiently panicking job is re-run until it succeeds, while a job
// returning an error — deterministic by construction — runs exactly
// once.
func TestPoolRetriesPanicsOnly(t *testing.T) {
	p := NewPool(nil, 1, nil, "retry")
	p.EnableRecovery(ReplayMeta{Experiment: "retry"}, "", 2)
	attempts := 0
	f := SubmitJob(p, "flaky", func(context.Context) (int, error) {
		attempts++
		if attempts < 3 {
			panic("transient")
		}
		return 42, nil
	})
	if v, err := f.Result(); v != 42 || err != nil {
		t.Fatalf("flaky job got (%d, %v) after %d attempts", v, err, attempts)
	}
	if attempts != 3 {
		t.Fatalf("flaky job ran %d times, want 3", attempts)
	}
	calls := 0
	boom := errors.New("deterministic failure")
	g := SubmitJob(p, "failing", func(context.Context) (int, error) { calls++; return 0, boom })
	if _, err := g.Result(); !errors.Is(err, boom) {
		t.Fatalf("returned error not propagated: %v", err)
	}
	if calls != 1 {
		t.Fatalf("erroring job retried %d times; returned errors must not be retried", calls)
	}
	if fails := p.Failures(); len(fails) != 1 || fails[0].Unit != "failing" {
		t.Fatalf("Failures() = %+v (recovered flaky job must not be recorded)", fails)
	}
}

// TestPoolReplayBundles checks the crash artifact: armed with a crash
// directory the pool writes a deterministic-named JSON bundle carrying
// the replay metadata and stack; without a directory it writes nothing
// but still types the failure.
func TestPoolReplayBundles(t *testing.T) {
	dir := t.TempDir()
	p := NewPool(nil, 1, nil, "bundle")
	meta := ReplayMeta{Experiment: "fig9/x", Scale: 8, Accesses: 100, Seed: 3, Workers: 2}
	p.EnableRecovery(meta, dir, 0)
	f := SubmitJob(p, "unit/cfg", func(context.Context) (int, error) { panic("kaboom") })
	_, err := f.Result()
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("got %T: %v", err, err)
	}
	want := filepath.Join(dir, "fig9-x_unit-cfg_j001_a1.json")
	if je.ReplayPath != want {
		t.Fatalf("ReplayPath = %q, want %q", je.ReplayPath, want)
	}
	raw, rerr := os.ReadFile(want)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, field := range []string{`"experiment": "fig9/x"`, `"seed": 3`, `"panic": "kaboom"`, "goroutine"} {
		if !strings.Contains(string(raw), field) {
			t.Fatalf("bundle missing %q:\n%s", field, raw)
		}
	}
	if je.Meta != meta {
		t.Fatalf("JobError.Meta = %+v, want %+v", je.Meta, meta)
	}

	q := NewPool(nil, 1, nil, "nobundle")
	g := SubmitJob(q, "u", func(context.Context) (int, error) { panic("dry") })
	_, err = g.Result()
	if !errors.As(err, &je) || je.ReplayPath != "" {
		t.Fatalf("unarmed pool wrote a bundle: %v", err)
	}
}

// TestExecuteProgressAndTiming checks the observability surface: Execute
// reports the experiment ID and job counts, and progress lines go to the
// configured writer, never to the experiment output.
func TestExecuteProgressAndTiming(t *testing.T) {
	e, err := Get("fig4")
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Accesses = 1000
	o.Workers = 4
	var progress, out bytes.Buffer
	o.Progress = &progress
	tm, err := e.Execute(context.Background(), o, &out)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Experiment != "fig4" || tm.Workers != 4 || tm.Jobs == 0 || tm.Wall <= 0 {
		t.Fatalf("bad timing summary: %+v", tm)
	}
	var line strings.Builder
	tm.Fprint(&line)
	if !strings.Contains(line.String(), "fig4") || !strings.Contains(line.String(), fmt.Sprintf("%d jobs", tm.Jobs)) {
		t.Fatalf("timing line %q missing fields", line.String())
	}
	if strings.Contains(out.String(), "jobs") {
		t.Fatal("progress leaked into experiment output")
	}
}
