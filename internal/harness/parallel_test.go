package harness

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/config"
	"repro/internal/llc"
)

// TestPoolOrdering checks the engine's core contract: futures resolve to
// their own job's result regardless of scheduling, so waiting in
// submission order reassembles the serial sequence.
func TestPoolOrdering(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers, nil, "order")
		var futs []*Future[int]
		for i := 0; i < 100; i++ {
			i := i
			futs = append(futs, Submit(p, func() int { return i * i }))
		}
		for i, f := range futs {
			if got := f.Wait(); got != i*i {
				t.Fatalf("workers=%d: job %d returned %d, want %d", workers, i, got, i*i)
			}
		}
		if tm := p.timing(); tm.Jobs != 100 {
			t.Fatalf("workers=%d: timing counted %d jobs, want 100", workers, tm.Jobs)
		}
	}
}

// TestPoolConcurrencyBound verifies the semaphore actually bounds how
// many jobs run at once.
func TestPoolConcurrencyBound(t *testing.T) {
	const workers = 3
	p := NewPool(workers, nil, "bound")
	var inFlight, peak atomic.Int32
	gate := make(chan struct{})
	var futs []*Future[struct{}]
	for i := 0; i < 32; i++ {
		futs = append(futs, Submit(p, func() struct{} {
			n := inFlight.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			<-gate
			inFlight.Add(-1)
			return struct{}{}
		}))
	}
	close(gate)
	for _, f := range futs {
		f.Wait()
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, bound is %d", got, workers)
	}
}

// TestSerialSubmitRunsInline pins the Workers<=1 guarantee: the job has
// already executed, on the calling goroutine, when Submit returns.
func TestSerialSubmitRunsInline(t *testing.T) {
	p := NewPool(1, nil, "serial")
	ran := false
	f := Submit(p, func() bool { ran = true; return true })
	if !ran {
		t.Fatal("serial Submit returned before running the job")
	}
	f.Wait()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
}

// TestParallelSweepMatchesSerial is the short race-detector tier: it
// drives the real sweep path (workload synthesis, full simulations,
// stats collection) through a parallel pool and cross-checks every
// speedup and collected run against the serial sweep. Run it with
// `go test -race -short ./internal/harness` to shake out shared-state
// races; heavier determinism checks live in determinism_test.go.
func TestParallelSweepMatchesSerial(t *testing.T) {
	o := tinyOptions()
	o.Accesses = 1500
	pre := config.TableI(o.Scale)
	cfgs := []namedSpec{
		{"1/8x", pre.Baseline(1.0/8, llc.NonInclusive)},
		{"1/32x", pre.Baseline(1.0/32, llc.NonInclusive)},
	}
	serial, parallel := o, o
	serial.Workers = 1
	parallel.Workers = 4
	rs := sweepGroup(serial, "FFTW", pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
	rp := sweepGroup(parallel, "FFTW", pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
	if !reflect.DeepEqual(rs.speedups, rp.speedups) {
		t.Fatalf("parallel speedups %v differ from serial %v", rp.speedups, rs.speedups)
	}
	if !reflect.DeepEqual(rs.runs, rp.runs) {
		t.Fatal("parallel collected runs differ from serial")
	}
}

// TestExecuteProgressAndTiming checks the observability surface: Execute
// reports the experiment ID and job counts, and progress lines go to the
// configured writer, never to the experiment output.
func TestExecuteProgressAndTiming(t *testing.T) {
	e, err := Get("fig4")
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Accesses = 1000
	o.Workers = 4
	var progress, out bytes.Buffer
	o.Progress = &progress
	tm, err := e.Execute(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Experiment != "fig4" || tm.Workers != 4 || tm.Jobs == 0 || tm.Wall <= 0 {
		t.Fatalf("bad timing summary: %+v", tm)
	}
	var line strings.Builder
	tm.Fprint(&line)
	if !strings.Contains(line.String(), "fig4") || !strings.Contains(line.String(), fmt.Sprintf("%d jobs", tm.Jobs)) {
		t.Fatalf("timing line %q missing fields", line.String())
	}
	if strings.Contains(out.String(), "jobs") {
		t.Fatal("progress leaked into experiment output")
	}
}
