package harness

import (
	"fmt"
	"io"

	"repro/internal/backend"
	"repro/internal/config"
	"repro/internal/stats"
)

// The cross-backend comparative lab: every protocol backend in its
// canonical organization (config.Preset.ForBackend) against the same
// workloads, measured on the axes the backends actually trade —
// performance, forced invalidations (DEVs and inclusion victims),
// NACK/retry latency, DE writeback traffic, and directory occupancy.
// This file sorts after motivation.go so the experiment registers at
// the end of the paper-order list.

func init() {
	register("figbackends", "Backend lab: protocol backends vs sparse-MESI (dir 1/8x, PARSEC)", figBackends)
}

// backendRatio is the comparative sizing: small enough that bounded
// directories show conflict behavior, matching the paper's 1/8x
// evaluation point.
const backendRatio = 1.0 / 8

func figBackends(o Options, w io.Writer) error {
	ids := o.BackendIDs()
	pre := config.TableI(o.Scale)
	base, err := pre.ForBackend(backend.SparseMESI, backendRatio)
	if err != nil {
		return err
	}
	var cfgs []namedSpec
	for _, id := range ids {
		spec, err := pre.ForBackend(id, backendRatio)
		if err != nil {
			return err
		}
		cfgs = append(cfgs, namedSpec{string(id), spec})
	}
	t := stats.Table{
		Title: "figbackends: protocol backend lab (PARSEC; speedup vs sparsemesi 1/8x; rates per kilo-access)",
		Headers: []string{"backend", "speedup", "DEV/Ka", "inclInv/Ka",
			"NACK/Ka", "WB_DE/Ka", "trafMB", "dirPeak"},
	}
	r := sweepGroup(o, "PARSEC", base, pre.Cores, cfgs)
	for ci, c := range cfgs {
		if err := r.err(ci); err != nil {
			t.AddRow(c.name, CellText(err), "-", "-", "-", "-", "-", "-")
			continue
		}
		var devs, incl, nacks, wbde, traffic uint64
		peak := 0
		for ui := range r.units {
			run := r.runs[ci][ui]
			devs += run.Engine.DEVs
			incl += run.Engine.InclusionInvals
			nacks += run.Engine.DirNACKs
			wbde += run.Engine.DEEvictionsToMemory
			traffic += run.Traffic.TotalBytes()
			if run.DirPeak > peak {
				peak = run.DirPeak
			}
		}
		ka := float64(o.Accesses) * float64(pre.Cores) * float64(len(r.units)) / 1000
		perKa := func(n uint64) string { return fmt.Sprintf("%.2f", float64(n)/ka) }
		dirPeak := fmt.Sprint(peak)
		if r.runs[ci][0].DirCap == 0 {
			dirPeak = "n/a" // directoryless: tracking rides the LLC tags
		}
		t.AddRow(c.name, f3(r.geo(ci)), perKa(devs), perKa(incl),
			perKa(nacks), perKa(wbde),
			fmt.Sprintf("%.1f", float64(traffic)/(1<<20)), dirPeak)
	}
	t.Fprint(w)
	return r.failed()
}
