package harness

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/backend"
)

// Satellite: Options.Validate must reject unknown backend names with
// the named sentinel and list the valid set, phrased for the -backend
// flag that sets the field.
func TestValidateBackends(t *testing.T) {
	base := DefaultOptions()
	cases := []struct {
		name     string
		backends string
		wantErr  bool
	}{
		{"empty means all", "", false},
		{"all", "all", false},
		{"single", "zerodev", false},
		{"pair", "dls,phasepriority", false},
		{"case insensitive", "SPARSEMESI", false},
		{"unknown", "mesi", true},
		{"hyphenated alias rejected", "zero-dev", true},
		{"unknown member of list", "zerodev,bogus", true},
		{"duplicate", "dls,dls", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := base
			o.Backends = c.backends
			err := o.Validate()
			if !c.wantErr {
				if err != nil {
					t.Fatalf("Validate rejected %q: %v", c.backends, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate accepted %q", c.backends)
			}
			if !strings.Contains(err.Error(), "-backend") {
				t.Errorf("error %q does not name the -backend flag", err)
			}
			if c.name != "duplicate" && !errors.Is(err, backend.ErrUnknownBackend) {
				t.Errorf("error %v does not wrap backend.ErrUnknownBackend", err)
			}
			if c.name != "duplicate" && !strings.Contains(err.Error(), "zerodev, sparsemesi, dls, phasepriority") {
				t.Errorf("error %q does not list the valid set", err)
			}
		})
	}
}

// BackendIDs must honor the selection and fall back to the full set
// when unvalidated garbage sneaks through.
func TestBackendIDs(t *testing.T) {
	o := Options{Backends: "phasepriority,zerodev"}
	ids := o.BackendIDs()
	if len(ids) != 2 || ids[0] != backend.PhasePriority || ids[1] != backend.ZeroDEV {
		t.Fatalf("BackendIDs() = %v; want selection order preserved", ids)
	}
	if got := (Options{Backends: "bogus"}).BackendIDs(); len(got) != len(backend.All()) {
		t.Fatalf("invalid selection fell back to %v, want every backend", got)
	}
}

// figbackends must enumerate a cell grid that is a pure function of the
// backend selection: one base + one cell per (backend, unit).
func TestFigBackendsCells(t *testing.T) {
	e, err := Get("figbackends")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Scale: 32, Accesses: 400, Seed: 1, Quick: true, Workers: 1}
	all, err := e.Cells(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Backends = "zerodev,sparsemesi"
	two, err := e.Cells(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) <= len(two) {
		t.Fatalf("full grid (%d cells) not larger than two-backend grid (%d cells)", len(all), len(two))
	}
	// quick PARSEC = 3 units; grid = units * (1 base + len(backends)).
	if want := 3 * (1 + 2); len(two) != want {
		t.Fatalf("two-backend grid has %d cells, want %d", len(two), want)
	}
}

// The comparative table renders one row per selected backend and is
// byte-identical at any worker count.
func TestFigBackendsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	e, err := Get("figbackends")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Scale: 32, Accesses: 1000, Seed: 1, Quick: true, Workers: 1}
	var serial bytes.Buffer
	if _, err := e.Execute(context.Background(), o, &serial); err != nil {
		t.Fatal(err)
	}
	for _, id := range []backend.ID{backend.ZeroDEV, backend.SparseMESI, backend.DLS, backend.PhasePriority} {
		if !bytes.Contains(serial.Bytes(), []byte(id)) {
			t.Fatalf("figbackends output lacks a %s row:\n%s", id, serial.String())
		}
	}
	o.Workers = 4
	var par bytes.Buffer
	if _, err := e.Execute(context.Background(), o, &par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), par.Bytes()) {
		t.Fatalf("figbackends output depends on worker count:\n--- serial ---\n%s\n--- workers=4 ---\n%s",
			serial.String(), par.String())
	}
}
