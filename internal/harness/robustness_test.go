package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// testKey is a fixed run shape for checkpoint tests.
func testKey() CheckpointKey {
	return CheckpointKey{Kind: "run", IDs: []string{"fig4"}, Scale: 32, Accesses: 4000, Seed: 1, Quick: true}
}

// TestKillAndResumeByteIdentical is the tentpole acceptance test: a run
// interrupted mid-flight, checkpointed, round-tripped through disk, and
// resumed must produce output byte-identical to an uninterrupted run —
// at 1 worker and at 8, resuming at a different worker count than the
// interrupted run used.
func TestKillAndResumeByteIdentical(t *testing.T) {
	e, err := Get("fig4")
	if err != nil {
		t.Fatal(err)
	}
	o := tinyOptions()
	o.Accesses = 1000
	key := testKey()
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			o := o
			o.Workers = workers

			// Reference: one uninterrupted run.
			var want bytes.Buffer
			if _, err := e.Execute(context.Background(), o, &want); err != nil {
				t.Fatalf("reference run: %v", err)
			}

			// Interrupted run: cancel shortly after the first cells land.
			// Wherever the cancellation happens to fall, the completed
			// cells are checkpointed and the rest render CANCELLED.
			ctx, cancel := context.WithCancel(context.Background())
			cs := NewCheckpoint(key)
			io := o
			io.Checkpoint = cs
			go func() {
				time.Sleep(30 * time.Millisecond)
				cancel()
			}()
			var interrupted bytes.Buffer
			_, ierr := e.Execute(ctx, io, &interrupted)
			cancel()
			if ctx.Err() != nil && ierr == nil && cs.Cells() == 0 {
				t.Fatal("interrupted run reported neither an error nor any completed cells")
			}

			// The checkpoint a kill would leave behind must load back and
			// seed a resume at the *other* worker count.
			path := filepath.Join(t.TempDir(), "run.json")
			if err := cs.Save(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadCheckpoint(path, key)
			if err != nil {
				t.Fatal(err)
			}
			ro := o
			ro.Workers = 9 - workers // 8 -> 1, 1 -> 8
			ro.Checkpoint = loaded
			var got bytes.Buffer
			if _, err := e.Execute(context.Background(), ro, &got); err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("resumed output differs from uninterrupted run\n--- want ---\n%s\n--- got ---\n%s",
					want.String(), got.String())
			}
		})
	}
}

// TestCheckpointServesCompletedCells pins resume mechanics at the pool
// level deterministically: cells completed before an interrupt are
// served from the checkpoint without re-executing, later cells run
// live, and the merged results equal an uninterrupted run's.
func TestCheckpointServesCompletedCells(t *testing.T) {
	const jobs = 12
	key := testKey()
	cs := NewCheckpoint(key)

	// Phase 1: serial pool, cancel after job 5 — deterministic cut.
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(ctx, 1, nil, "phase1")
	p.EnableCheckpoint(cs, "exp")
	var executed atomic.Int32
	for i := 0; i < jobs; i++ {
		i := i
		SubmitJob(p, fmt.Sprintf("unit%d", i), func(context.Context) (int, error) {
			executed.Add(1)
			if i == 5 {
				cancel()
			}
			return i * i, nil
		})
	}
	cancel()
	if got := executed.Load(); got != 6 {
		t.Fatalf("phase 1 executed %d jobs, want 6 (0..5 then cancel)", got)
	}
	if cs.Cells() != 6 {
		t.Fatalf("checkpoint holds %d cells, want 6", cs.Cells())
	}

	// Phase 2: resume from the round-tripped checkpoint on a fresh pool.
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := cs.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path, key)
	if err != nil {
		t.Fatal(err)
	}
	executed.Store(0)
	q := NewPool(context.Background(), 1, nil, "phase2")
	q.EnableCheckpoint(loaded, "exp")
	var futs []*Future[int]
	for i := 0; i < jobs; i++ {
		i := i
		futs = append(futs, SubmitJob(q, fmt.Sprintf("unit%d", i), func(context.Context) (int, error) {
			executed.Add(1)
			return i * i, nil
		}))
	}
	for i, f := range futs {
		v, err := f.Result()
		if err != nil || v != i*i {
			t.Fatalf("resumed job %d got (%d, %v), want (%d, nil)", i, v, err, i*i)
		}
	}
	if got := executed.Load(); got != jobs-6 {
		t.Fatalf("resume re-executed %d jobs, want %d (6 served from checkpoint)", got, jobs-6)
	}
	if q.CachedJobs() != 6 {
		t.Fatalf("CachedJobs() = %d, want 6", q.CachedJobs())
	}

	// A drifted unit label must be a miss, not a wrong answer.
	r := NewPool(context.Background(), 1, nil, "drift")
	r.EnableCheckpoint(loaded, "exp")
	v, err := SubmitJob(r, "renamed-unit", func(context.Context) (int, error) { return -1, nil }).Result()
	if err != nil || v != -1 {
		t.Fatalf("drifted label served from checkpoint: got (%d, %v)", v, err)
	}
}

// TestCancelledRunFlushesValidCheckpoint covers the interrupt path end
// to end at the pool level: after cancellation, completed cells are in
// the checkpoint, the file it saves passes its own validation, and the
// cancelled jobs classify as interrupted (exit 130), never as failures.
func TestCancelledRunFlushesValidCheckpoint(t *testing.T) {
	key := testKey()
	cs := NewCheckpoint(key)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := NewPool(ctx, 1, nil, "cancelled")
	p.EnableCheckpoint(cs, "exp")
	var futs []*Future[int]
	for i := 0; i < 8; i++ {
		i := i
		futs = append(futs, SubmitJob(p, fmt.Sprintf("u%d", i), func(jctx context.Context) (int, error) {
			if i == 3 {
				cancel()
			}
			if err := jctx.Err(); err != nil && i > 3 {
				return 0, err
			}
			return i, nil
		}))
	}
	var firstErr error
	for _, f := range futs {
		if _, err := f.Result(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		t.Fatal("no job observed the cancellation")
	}
	if !IsCancelled(firstErr) {
		t.Fatalf("cancelled job error %v not recognized by IsCancelled", firstErr)
	}
	if CellText(firstErr) != "CANCELLED" {
		t.Fatalf("CellText(%v) = %q, want CANCELLED", firstErr, CellText(firstErr))
	}
	sum := p.FailureSummary()
	if sum == nil {
		t.Fatal("cancelled run has a nil FailureSummary")
	}
	if got := ExitCode(sum); got != ExitInterrupted {
		t.Fatalf("ExitCode(cancelled summary) = %d, want %d", got, ExitInterrupted)
	}
	if cs.Cells() < 4 {
		t.Fatalf("checkpoint holds %d cells, want at least the 4 completed before cancel", cs.Cells())
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := cs.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, key); err != nil {
		t.Fatalf("flushed checkpoint failed validation: %v", err)
	}
}

// TestWatchdogReapsHungJob is the watchdog acceptance test: a job that
// ignores its context is reaped within -job-timeout, a diagnostic
// bundle with goroutine stacks is written, the cell classifies as
// TIMEOUT (exit 3), and the pool keeps scheduling.
func TestWatchdogReapsHungJob(t *testing.T) {
	dir := t.TempDir()
	var progress bytes.Buffer
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p := NewPool(context.Background(), workers, NewSyncWriter(&progress), "wd")
			p.EnableRecovery(ReplayMeta{Experiment: "wd", Seed: 1}, dir, 0)
			p.EnableWatchdog(50 * time.Millisecond)
			gate := make(chan struct{})
			defer close(gate)
			start := time.Now()
			// The job advances 37 scheduler steps — far short of the first
			// sim.CancelEvery boundary — then wedges while ignoring its
			// context: the worst case, and the one where interval-batched
			// step publishing used to leave the diagnostic bundle claiming
			// zero progress.
			const hangAt = 37
			hung := SubmitJob(p, "stuck/unit", func(jctx context.Context) (int, error) {
				hook := sim.ContextHook(jctx, JobSteps(jctx), nil)
				for s := uint64(1); s <= hangAt; s++ {
					if err := hook(s, sim.Cycle(s)); err != nil {
						return 0, err
					}
				}
				<-gate
				return 0, nil
			})
			_, err := hung.Result()
			reaped := time.Since(start)
			if !IsTimeout(err) {
				t.Fatalf("hung job error %v not recognized by IsTimeout", err)
			}
			if CellText(err) != "TIMEOUT" {
				t.Fatalf("CellText = %q, want TIMEOUT", CellText(err))
			}
			// Reaped within the timeout plus the (equal) grace period,
			// with generous slack for CI scheduling.
			if reaped > 2*time.Second {
				t.Fatalf("hung job held the pool for %v", reaped)
			}
			var je *JobError
			if !errors.As(err, &je) || !je.Timeout || je.ReplayPath == "" {
				t.Fatalf("bad timeout JobError: %+v", je)
			}
			raw, rerr := os.ReadFile(je.ReplayPath)
			if rerr != nil {
				t.Fatal(rerr)
			}
			var bundle struct {
				Version      int    `json:"version"`
				Experiment   string `json:"experiment"`
				Unit         string `json:"unit"`
				TimeoutMS    int64  `json:"timeout_ms"`
				ElapsedSteps uint64 `json:"elapsed_steps"`
				Stacks       string `json:"stacks"`
			}
			if err := json.Unmarshal(raw, &bundle); err != nil {
				t.Fatalf("diagnostic bundle is not valid JSON: %v", err)
			}
			if bundle.Version != BundleVersion || bundle.Experiment != "wd" ||
				bundle.Unit != "stuck/unit" || bundle.TimeoutMS != 50 ||
				!strings.Contains(bundle.Stacks, "goroutine") {
				t.Fatalf("diagnostic bundle missing fields: %+v", bundle)
			}
			if bundle.ElapsedSteps != hangAt {
				t.Fatalf("ElapsedSteps = %d, want %d (early hang must report exact progress)",
					bundle.ElapsedSteps, hangAt)
			}
			// The pool is not wedged: later jobs run and succeed.
			v, err := SubmitJob(p, "after", func(context.Context) (int, error) { return 99, nil }).Result()
			if err != nil || v != 99 {
				t.Fatalf("job after the reaped one got (%d, %v)", v, err)
			}
			sum := p.FailureSummary()
			if got := ExitCode(sum); got != ExitTimeout {
				t.Fatalf("ExitCode(timeout summary) = %d, want %d", got, ExitTimeout)
			}
			if !strings.Contains(progress.String(), "watchdog") {
				t.Fatalf("no watchdog line on progress: %q", progress.String())
			}
		})
	}
}

// TestWatchdogHonorsCooperativeJobs: a job that finishes under the
// timeout is untouched, and one that aborts at its cancellation point
// inside the grace period surfaces the timeout, not a wedge.
func TestWatchdogHonorsCooperativeJobs(t *testing.T) {
	p := NewPool(context.Background(), 1, nil, "coop")
	p.EnableWatchdog(time.Minute)
	v, err := SubmitJob(p, "fast", func(context.Context) (int, error) { return 5, nil }).Result()
	if err != nil || v != 5 {
		t.Fatalf("fast job under watchdog got (%d, %v)", v, err)
	}

	q := NewPool(context.Background(), 1, nil, "coop2")
	q.EnableWatchdog(30 * time.Millisecond)
	_, err = SubmitJob(q, "polite", func(jctx context.Context) (int, error) {
		<-jctx.Done() // cooperative: aborts the moment the watchdog fires
		return 0, jctx.Err()
	}).Result()
	if !IsTimeout(err) {
		t.Fatalf("cooperative hung job error = %v, want timeout", err)
	}
}

// TestFailureSummaryExitCodes is the documented exit-code table: each
// failure species drives FailureSummary to its own code, and
// interruption takes precedence over timeout over plain failure when a
// run mixes them.
func TestFailureSummaryExitCodes(t *testing.T) {
	mkPanic := func() error {
		p := NewPool(context.Background(), 1, nil, "p")
		SubmitJob(p, "boom", func(context.Context) (int, error) { panic("x") })
		return p.FailureSummary()
	}
	mkTimeout := func() error {
		p := NewPool(context.Background(), 1, nil, "t")
		p.EnableWatchdog(20 * time.Millisecond)
		gate := make(chan struct{})
		defer close(gate)
		SubmitJob(p, "hang", func(context.Context) (int, error) { <-gate; return 0, nil })
		return p.FailureSummary()
	}
	mkCancelled := func() error {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		p := NewPool(ctx, 1, nil, "c")
		SubmitJob(p, "late", func(context.Context) (int, error) { return 0, nil })
		return p.FailureSummary()
	}
	cases := []struct {
		name string
		err  error
		code int
		cell string
	}{
		{"ok", nil, ExitOK, ""},
		{"panic", mkPanic(), ExitFailure, "ERR"},
		{"timeout", mkTimeout(), ExitTimeout, "TIMEOUT"},
		{"cancelled", mkCancelled(), ExitInterrupted, "CANCELLED"},
		{"timeout-beats-failure", errors.Join(mkPanic(), mkTimeout()), ExitTimeout, ""},
		{"interrupt-beats-timeout", errors.Join(mkTimeout(), mkCancelled()), ExitInterrupted, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.err == nil && tc.name != "ok" {
				t.Fatal("setup produced no error")
			}
			if got := ExitCode(tc.err); got != tc.code {
				t.Fatalf("ExitCode = %d, want %d (err: %v)", got, tc.code, tc.err)
			}
			if tc.cell != "" {
				var first error
				if tc.err != nil {
					first = tc.err
				}
				if got := CellText(first); got != tc.cell {
					t.Fatalf("CellText = %q, want %q", got, tc.cell)
				}
			}
		})
	}
}

// TestLoadCheckpointRejects covers every refusal path: wrong version,
// wrong run shape, torn/edited content, unknown fields, and garbage —
// each with an error naming the exact mismatch.
func TestLoadCheckpointRejects(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// A valid file to mutate.
	cs := NewCheckpoint(key)
	cs.store("exp", 1, "u", 42)
	good := filepath.Join(dir, "good.json")
	if err := cs.Save(good); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("garbage", func(t *testing.T) {
		_, err := LoadCheckpoint(write("garbage.json", "not json"), key)
		if err == nil || !strings.Contains(err.Error(), "is not a checkpoint") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		_, err := LoadCheckpoint(write("v99.json", `{"version":99}`), key)
		if err == nil || !strings.Contains(err.Error(), "version 99, this build reads 1") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("fingerprint", func(t *testing.T) {
		other := key
		other.Seed = 7
		_, err := LoadCheckpoint(good, other)
		if err == nil || !strings.Contains(err.Error(), "written by a different run") {
			t.Fatalf("err = %v", err)
		}
		// The refusal names the stored run shape so the operator can see
		// what the file actually covers.
		if !strings.Contains(err.Error(), `kind="run"`) || !strings.Contains(err.Error(), "seed=1") {
			t.Fatalf("refusal does not describe the stored key: %v", err)
		}
	})
	t.Run("torn", func(t *testing.T) {
		edited := strings.Replace(string(raw), `42`, `43`, 1)
		if edited == string(raw) {
			t.Fatal("mutation did not apply")
		}
		_, err := LoadCheckpoint(write("torn.json", edited), key)
		if err == nil || !strings.Contains(err.Error(), "torn or was edited") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unknown-field", func(t *testing.T) {
		var f map[string]any
		if err := json.Unmarshal(raw, &f); err != nil {
			t.Fatal(err)
		}
		f["extra"] = 1
		b, _ := json.Marshal(f)
		_, err := LoadCheckpoint(write("extra.json", string(b)), key)
		if err == nil || !strings.Contains(err.Error(), "decoding checkpoint") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("valid", func(t *testing.T) {
		loaded, err := LoadCheckpoint(good, key)
		if err != nil {
			t.Fatal(err)
		}
		var v int
		if !loaded.lookup("exp", 1, "u", &v) || v != 42 {
			t.Fatalf("round-tripped cell lookup failed: %d", v)
		}
	})
}

// TestVerifyGridRejects extends the resume refusal table to grid drift:
// a checkpoint holding cells the current spec no longer generates —
// removed cells, drifted unit labels — is rejected by name instead of
// silently ignored, and long offender lists truncate with a count.
func TestVerifyGridRejects(t *testing.T) {
	grid := []CellID{
		{Scope: "exp", Seq: 1, Unit: "u1"},
		{Scope: "exp", Seq: 2, Unit: "u2"},
	}
	mk := func(cells ...CellID) *CheckpointState {
		cs := NewCheckpoint(testKey())
		for _, c := range cells {
			cs.store(c.Scope, c.Seq, c.Unit, 1)
		}
		return cs
	}
	cases := []struct {
		name string
		cs   *CheckpointState
		want []string // substrings of the refusal; empty = accepted
	}{
		{"empty", mk(), nil},
		{"subset", mk(grid[0]), nil},
		{"exact", mk(grid...), nil},
		{"removed-cell", mk(grid[0], CellID{Scope: "exp", Seq: 9, Unit: "gone"}),
			[]string{"1 cell(s) the current run does not generate", `exp#9 (unit "gone")`, "re-run without -resume"}},
		{"drifted-unit", mk(grid[0], CellID{Scope: "exp", Seq: 2, Unit: "renamed"}),
			[]string{`exp#2 (unit "renamed", grid has "u2")`}},
		{"foreign-scope", mk(CellID{Scope: "other", Seq: 1, Unit: "u1"}),
			[]string{`other#1 (unit "u1")`}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cs.VerifyGrid(grid)
			if len(tc.want) == 0 {
				if err != nil {
					t.Fatalf("unexpected refusal: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("drifted checkpoint was accepted")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Fatalf("refusal %q missing %q", err.Error(), w)
				}
			}
		})
	}

	t.Run("truncates-long-lists", func(t *testing.T) {
		cs := NewCheckpoint(testKey())
		for i := 100; i < 112; i++ {
			cs.store("exp", i, "extra", 1)
		}
		err := cs.VerifyGrid(grid)
		if err == nil {
			t.Fatal("12 alien cells accepted")
		}
		if !strings.Contains(err.Error(), "12 cell(s)") || !strings.Contains(err.Error(), "and 4 more") {
			t.Fatalf("long refusal not truncated with a count: %v", err)
		}
	})

	t.Run("round-trips-through-disk", func(t *testing.T) {
		// The CLI path loads, then verifies; the refusal must survive the
		// save/load round trip (units are re-derived from the records).
		cs := mk(grid[0], CellID{Scope: "exp", Seq: 7, Unit: "stale"})
		path := filepath.Join(t.TempDir(), "drift.json")
		if err := cs.Save(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadCheckpoint(path, testKey())
		if err != nil {
			t.Fatal(err)
		}
		if err := loaded.VerifyGrid(grid); err == nil || !strings.Contains(err.Error(), "exp#7") {
			t.Fatalf("loaded drifted checkpoint: err = %v", err)
		}
	})
}

// TestRetriedPanicNamesEveryBundle: a job that panics on the first
// attempt and again on the retry must surface BOTH replay-bundle paths
// in its JobError text, oldest first, so the operator can diff the
// attempts; both bundles must exist and decode.
func TestRetriedPanicNamesEveryBundle(t *testing.T) {
	dir := t.TempDir()
	p := NewPool(context.Background(), 1, nil, "twice")
	p.EnableRecovery(ReplayMeta{Experiment: "twice", Seed: 1}, dir, 1)
	_, err := SubmitJob(p, "boom/unit", func(context.Context) (int, error) {
		panic("kaboom")
	}).Result()
	if err == nil {
		t.Fatal("twice-panicking job returned nil error")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("error %T is not a JobError", err)
	}
	if je.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", je.Attempts)
	}
	if len(je.PriorBundles) != 1 || je.ReplayPath == "" {
		t.Fatalf("bundle paths incomplete: prior=%v final=%q", je.PriorBundles, je.ReplayPath)
	}
	if je.PriorBundles[0] == je.ReplayPath {
		t.Fatal("prior and final bundle paths are the same file")
	}
	msg := err.Error()
	if !strings.Contains(msg, "attempts in order") ||
		!strings.Contains(msg, je.PriorBundles[0]) || !strings.Contains(msg, je.ReplayPath) {
		t.Fatalf("error text does not name both bundles: %q", msg)
	}
	// Oldest first: the first attempt's path precedes the final one.
	if strings.Index(msg, je.PriorBundles[0]) > strings.Index(msg, je.ReplayPath) {
		t.Fatalf("bundles out of order in %q", msg)
	}
	for _, path := range []string{je.PriorBundles[0], je.ReplayPath} {
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("bundle missing: %v", err)
		}
		meta, derr := DecodeBundle(f)
		f.Close()
		if derr != nil || meta.Experiment != "twice" {
			t.Fatalf("bundle %s does not decode: meta=%+v err=%v", path, meta, derr)
		}
	}
	// A single-attempt panic keeps the old single-bundle phrasing.
	q := NewPool(context.Background(), 1, nil, "once")
	q.EnableRecovery(ReplayMeta{Experiment: "once", Seed: 1}, dir, 0)
	_, err = SubmitJob(q, "boom2", func(context.Context) (int, error) { panic("x") }).Result()
	if err == nil || !strings.Contains(err.Error(), "replay bundle: ") ||
		strings.Contains(err.Error(), "attempts in order") {
		t.Fatalf("single-attempt phrasing regressed: %v", err)
	}
}

// TestDecodeBundleRejects covers the replay-bundle codec's refusals.
func TestDecodeBundleRejects(t *testing.T) {
	valid, err := json.Marshal(replayBundle{
		Version:    BundleVersion,
		ReplayMeta: ReplayMeta{Experiment: "fig9", Scale: 8, Accesses: 100, Seed: 3, Workers: 2, Backends: "dls,zerodev"},
		Unit:       "u", Seq: 1, Attempt: 1, Panic: "x", Stack: "s",
	})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := DecodeBundle(bytes.NewReader(valid))
	if err != nil || meta.Experiment != "fig9" || meta.Seed != 3 {
		t.Fatalf("valid bundle: meta=%+v err=%v", meta, err)
	}
	if meta.Backends != "dls,zerodev" {
		t.Fatalf("backend tag lost in round-trip: meta=%+v", meta)
	}
	// A pre-backend bundle (no "backends" field) still loads: the field
	// is omitempty on write and simply zero on read.
	preBackend := `{"version":1,"experiment":"old","scale":8,"accesses":100,"seed":3,"workers":2,"unit":"u","seq":1,"attempt":1,"panic":"p","stack":"s"}`
	meta, err = DecodeBundle(strings.NewReader(preBackend))
	if err != nil || meta.Experiment != "old" || meta.Backends != "" {
		t.Fatalf("pre-backend bundle refused: meta=%+v err=%v", meta, err)
	}
	cases := []struct{ name, in, want string }{
		{"garbage", "nope", "not a replay bundle"},
		{"version", `{"version":9,"experiment":"x"}`, "bundle version 9, this build reads 1"},
		{"unknown-field", `{"version":1,"experiment":"x","scale":1,"accesses":1,"seed":1,"workers":1,"seq":1,"attempt":1,"panic":"p","stack":"s","surprise":true}`, "decoding replay bundle"},
		{"backends-wrong-type", `{"version":1,"experiment":"x","scale":1,"accesses":1,"seed":1,"workers":1,"backends":7,"seq":1,"attempt":1,"panic":"p","stack":"s"}`, "decoding replay bundle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeBundle(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestSyncWriterSerializes: concurrent writers through one SyncWriter
// never interleave bytes within a Write call. Run with -race to catch
// unsynchronized access to the underlying buffer.
func TestSyncWriterSerializes(t *testing.T) {
	var buf bytes.Buffer
	w := NewSyncWriter(&buf)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		i := i
		go func() {
			defer func() { done <- struct{}{} }()
			line := fmt.Sprintf("writer-%d says hello\n", i)
			for j := 0; j < 100; j++ {
				fmt.Fprint(w, line)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "writer-") || !strings.HasSuffix(line, "says hello") {
			t.Fatalf("interleaved line: %q", line)
		}
	}
	if NewSyncWriter(nil) == nil {
		t.Fatal("NewSyncWriter(nil) returned nil")
	}
}
