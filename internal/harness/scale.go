package harness

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/backend"
	"repro/internal/config"
	"repro/internal/socket"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The figscale figure family: the scale frontier from the classic 4×16
// shape up to 1024 cores across 16 sockets, comparing ZeroDEV(NoDir)
// against a 1/8x sparse-MESI baseline on each rung. Per-core work
// shrinks as the ladder climbs so the sweep's total access budget stays
// roughly level, and every cell is collected through stats.LeanRun, so
// the resident cost of a rung is independent of its core count.

func init() {
	register("figscale",
		"Scale frontier: DEV rate, traffic, LLC occupancy, recovery path vs core count (ZeroDEV NoDir vs sparse-MESI 1/8x)",
		figScale)
}

// scaleAccesses budgets per-core accesses for one rung: the harness
// access count is referenced to a 64-core system and divided down as
// cores grow, floored so tiny Quick budgets still exercise the sharing
// paths on the widest rungs.
func scaleAccesses(o Options, g config.Org) int {
	a := o.Accesses * 64 / g.TotalCores()
	if a < 200 {
		a = 200
	}
	return a
}

// scaleInterval is the per-core retirement interval for streamed IPC.
const scaleInterval = 1000

func runScaleOrg(ctx context.Context, o Options, g config.Org, id backend.ID, ratio float64) (stats.LeanRun, error) {
	spec, err := g.Preset.ForBackend(id, ratio)
	if err != nil {
		return stats.LeanRun{}, err
	}
	spec.CPU.StatInterval = scaleInterval
	p := socket.DefaultParams(g.Sockets, 65536/o.Scale*8)
	p.HomeGroups = g.HomeGroups
	p.IntraGroupCycles = 40
	prof := workload.MustGet("canneal")
	streams := workload.Threads(prof, g.TotalCores(), scaleAccesses(o, g), g.Preset.Scale, o.Seed)
	sys, err := socket.New(p, spec, streams)
	if err != nil {
		return stats.LeanRun{}, err
	}
	cycles, err := sys.RunCtxDomains(ctx, JobSteps(ctx), o.DomainWorkers)
	if err != nil {
		return stats.LeanRun{}, err
	}
	if err := sys.CheckInvariants(); err != nil {
		return stats.LeanRun{}, fmt.Errorf("%s/%s: %w", g.Name, id, err)
	}
	return stats.CollectLean(g.Name, sys, cycles), nil
}

func figScale(o Options, w io.Writer) error {
	ladder := config.ScaleLadder(o.Scale)
	t := stats.Table{
		Title: "Scale frontier: ZeroDEV(NoDir) vs sparse-MESI 1/8x per organization",
		Headers: []string{"org", "cores", "speedup", "zdev-DEV/ki", "mesi-DEV/ki",
			"B/miss", "spill+fuse", "recovery", "coarse", "metaHW", "iIPC"},
	}
	p := o.runner()
	type rung struct {
		zdev, mesi *Future[stats.LeanRun]
	}
	futs := make([]rung, len(ladder))
	for i, g := range ladder {
		g := g
		futs[i] = rung{
			zdev: SubmitJob(p, g.Name+"/zdev", func(ctx context.Context) (stats.LeanRun, error) {
				return runScaleOrg(ctx, o, g, backend.ZeroDEV, 0)
			}),
			mesi: SubmitJob(p, g.Name+"/mesi", func(ctx context.Context) (stats.LeanRun, error) {
				return runScaleOrg(ctx, o, g, backend.SparseMESI, 1.0/8)
			}),
		}
	}
	var errs []error
	for i, g := range ladder {
		zd, ez := futs[i].zdev.Result()
		ms, em := futs[i].mesi.Result()
		if ez != nil || em != nil {
			err := errors.Join(ez, em)
			errs = append(errs, err)
			cell := CellText(err)
			t.AddRow(g.Name, fmt.Sprint(g.TotalCores()), cell, cell, cell, cell, cell, cell, cell, cell, cell)
			continue
		}
		devKI := func(l stats.LeanRun) float64 {
			if l.Retired == 0 {
				return 0
			}
			return 1000 * float64(l.Engine.DEVs) / float64(l.Retired)
		}
		speedup := 0.0
		if zd.Cycles > 0 {
			speedup = float64(ms.Cycles) / float64(zd.Cycles)
		}
		t.AddRow(g.Name, fmt.Sprint(g.TotalCores()),
			f3(speedup), f3(devKI(zd)), f3(devKI(ms)),
			f3(zd.TrafficPerMiss()),
			fmt.Sprint(zd.LLCSpilled+zd.LLCFused),
			fmt.Sprint(zd.RecoveryEvents()),
			fmt.Sprint(zd.CoarseWrites),
			fmt.Sprint(zd.MetaHighWater),
			fmt.Sprintf("%.3f±%.3f", zd.IntervalIPC.Mean, zd.IntervalIPC.Std()))
	}
	t.Fprint(w)
	return errors.Join(errs...)
}
