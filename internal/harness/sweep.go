package harness

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// namedSpec pairs a configuration label with its system spec.
type namedSpec struct {
	name string
	spec core.SystemSpec
}

// sweepResult holds per-config speedup samples over a group's units.
type sweepResult struct {
	speedups [][]float64 // [config][unit]
	runs     [][]stats.Run
	units    []unit
}

// sweepGroup runs every unit of a group once against the base spec and
// once per configuration, computing the unit-appropriate speedup. The
// base run is shared across configurations, which matters on the
// single-threaded experiment path.
func sweepGroup(o Options, group string, baseSpec core.SystemSpec, cores int, cfgs []namedSpec) sweepResult {
	units := groupUnits(o, group)
	res := sweepResult{
		speedups: make([][]float64, len(cfgs)),
		runs:     make([][]stats.Run, len(cfgs)),
		units:    units,
	}
	for _, u := range units {
		base := runStreams(baseSpec, u.make(cores), "base")
		for ci, c := range cfgs {
			x := runStreams(c.spec, u.make(cores), c.name)
			res.speedups[ci] = append(res.speedups[ci], unitSpeedup(u, base, x))
			res.runs[ci] = append(res.runs[ci], x)
		}
	}
	return res
}

// geo returns the geometric mean of config ci's speedups.
func (r sweepResult) geo(ci int) float64 { return stats.GeoMean(r.speedups[ci]) }

// min returns the minimum speedup of config ci.
func (r sweepResult) min(ci int) float64 { return stats.Min(r.speedups[ci]) }
