package harness

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// namedSpec pairs a configuration label with its system spec.
type namedSpec struct {
	name string
	spec core.SystemSpec
}

// sweepResult holds per-config speedup samples over a group's units.
type sweepResult struct {
	speedups [][]float64 // [config][unit]
	runs     [][]stats.Run
	units    []unit
	errs     [][]error // [config][unit]; a failed base fails every config
}

// sweepGroup runs every unit of a group once against the base spec and
// once per configuration, computing the unit-appropriate speedup. Each
// (unit, config) simulation is an independent job on the options'
// worker pool; results are collected in submission order, so the
// returned slices — and any output formatted from them — are identical
// for every worker count. A failed unit contributes a zero sample and
// an error instead of aborting its siblings; geoCell renders such a
// config as ERR and failed() reports the joined errors.
func sweepGroup(o Options, group string, baseSpec core.SystemSpec, cores int, cfgs []namedSpec) sweepResult {
	units := groupUnits(o, group)
	p := o.runner()
	type unitFutures struct {
		base *Future[stats.Run]
		cfg  []*Future[stats.Run]
	}
	futs := make([]unitFutures, len(units))
	for ui, u := range units {
		u := u
		futs[ui].base = SubmitJob(p, u.name+"/base", func(ctx context.Context) (stats.Run, error) {
			return runStreams(ctx, o, baseSpec, u.make(cores), "base")
		})
		futs[ui].cfg = make([]*Future[stats.Run], len(cfgs))
		for ci, c := range cfgs {
			c := c
			futs[ui].cfg[ci] = SubmitJob(p, u.name+"/"+c.name, func(ctx context.Context) (stats.Run, error) {
				return runStreams(ctx, o, c.spec, u.make(cores), c.name)
			})
		}
	}
	res := sweepResult{
		speedups: make([][]float64, len(cfgs)),
		runs:     make([][]stats.Run, len(cfgs)),
		units:    units,
		errs:     make([][]error, len(cfgs)),
	}
	for ui, u := range units {
		base, berr := futs[ui].base.Result()
		for ci := range cfgs {
			x, xerr := futs[ui].cfg[ci].Result()
			err := berr
			if err == nil {
				err = xerr
			}
			sp := 0.0
			if err == nil {
				sp = unitSpeedup(u, base, x)
			}
			res.speedups[ci] = append(res.speedups[ci], sp)
			res.runs[ci] = append(res.runs[ci], x)
			res.errs[ci] = append(res.errs[ci], err)
		}
	}
	return res
}

// geo returns the geometric mean of config ci's speedups.
func (r sweepResult) geo(ci int) float64 { return stats.GeoMean(r.speedups[ci]) }

// min returns the minimum speedup of config ci.
func (r sweepResult) min(ci int) float64 { return stats.Min(r.speedups[ci]) }

// err returns the first unit error of config ci, if any.
func (r sweepResult) err(ci int) error {
	for _, e := range r.errs[ci] {
		if e != nil {
			return e
		}
	}
	return nil
}

// geoCell formats config ci's geometric-mean cell, rendering ERR,
// TIMEOUT, or CANCELLED (per CellText) when any of its units failed.
func (r sweepResult) geoCell(ci int) string {
	if err := r.err(ci); err != nil {
		return CellText(err)
	}
	return fmt.Sprintf("%.3f", r.geo(ci))
}

// failed joins every unit error across configs (nil when all
// succeeded), deduplicating the base failures that repeat per config.
func (r sweepResult) failed() error {
	var errs []error
	seen := map[error]bool{}
	for ci := range r.errs {
		for _, e := range r.errs[ci] {
			if e != nil && !seen[e] {
				seen[e] = true
				errs = append(errs, e)
			}
		}
	}
	return errors.Join(errs...)
}
