package harness

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// namedSpec pairs a configuration label with its system spec.
type namedSpec struct {
	name string
	spec core.SystemSpec
}

// sweepResult holds per-config speedup samples over a group's units.
type sweepResult struct {
	speedups [][]float64 // [config][unit]
	runs     [][]stats.Run
	units    []unit
}

// sweepGroup runs every unit of a group once against the base spec and
// once per configuration, computing the unit-appropriate speedup. Each
// (unit, config) simulation is an independent job on the options'
// worker pool; results are collected in submission order, so the
// returned slices — and any output formatted from them — are identical
// for every worker count.
func sweepGroup(o Options, group string, baseSpec core.SystemSpec, cores int, cfgs []namedSpec) sweepResult {
	units := groupUnits(o, group)
	p := o.runner()
	type unitFutures struct {
		base *Future[stats.Run]
		cfg  []*Future[stats.Run]
	}
	futs := make([]unitFutures, len(units))
	for ui, u := range units {
		u := u
		futs[ui].base = Submit(p, func() stats.Run {
			return runStreams(baseSpec, u.make(cores), "base")
		})
		futs[ui].cfg = make([]*Future[stats.Run], len(cfgs))
		for ci, c := range cfgs {
			c := c
			futs[ui].cfg[ci] = Submit(p, func() stats.Run {
				return runStreams(c.spec, u.make(cores), c.name)
			})
		}
	}
	res := sweepResult{
		speedups: make([][]float64, len(cfgs)),
		runs:     make([][]stats.Run, len(cfgs)),
		units:    units,
	}
	for ui, u := range units {
		base := futs[ui].base.Wait()
		for ci := range cfgs {
			x := futs[ui].cfg[ci].Wait()
			res.speedups[ci] = append(res.speedups[ci], unitSpeedup(u, base, x))
			res.runs[ci] = append(res.runs[ci], x)
		}
	}
	return res
}

// geo returns the geometric mean of config ci's speedups.
func (r sweepResult) geo(ci int) float64 { return stats.GeoMean(r.speedups[ci]) }

// min returns the minimum speedup of config ci.
func (r sweepResult) min(ci int) float64 { return stats.Min(r.speedups[ci]) }
