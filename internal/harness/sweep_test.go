package harness

import (
	"testing"

	"repro/internal/config"
	"repro/internal/llc"
)

func TestSweepGroupShapes(t *testing.T) {
	o := tinyOptions()
	pre := config.TableI(o.Scale)
	cfgs := []namedSpec{
		{"same", pre.Baseline(1, llc.NonInclusive)},
		{"small", pre.Baseline(1.0/32, llc.NonInclusive)},
	}
	r := sweepGroup(o, "FFTW", pre.Baseline(1, llc.NonInclusive), pre.Cores, cfgs)
	if len(r.units) == 0 {
		t.Fatal("no units")
	}
	for ci := range cfgs {
		if len(r.speedups[ci]) != len(r.units) || len(r.runs[ci]) != len(r.units) {
			t.Fatalf("config %d: %d speedups, %d runs, %d units",
				ci, len(r.speedups[ci]), len(r.runs[ci]), len(r.units))
		}
	}
	// The identical configuration must measure exactly 1.0 against its
	// own base (deterministic replay), and the tiny directory must not
	// be faster than it.
	if got := r.geo(0); got != 1.0 {
		t.Fatalf("self speedup = %v, want exactly 1 (determinism)", got)
	}
	if r.geo(1) > r.geo(0)+1e-9 {
		t.Fatalf("1/32x directory (%v) outperformed 1x (%v)", r.geo(1), r.geo(0))
	}
	if r.min(0) != 1.0 {
		t.Fatalf("min self speedup = %v", r.min(0))
	}
}
