package harness

import (
	"io"
	"sync"
)

// SyncWriter serializes writes to an underlying writer with a mutex.
// The CLI wraps stderr in one so pool progress lines, watchdog notices,
// and shutdown messages from concurrent goroutines never interleave
// mid-line.
type SyncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSyncWriter wraps w; a nil w yields a writer that discards.
func NewSyncWriter(w io.Writer) *SyncWriter { return &SyncWriter{w: w} }

// Write implements io.Writer under the mutex.
func (s *SyncWriter) Write(p []byte) (int, error) {
	if s.w == nil {
		return len(p), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
