package harness

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/workload"
)

// unit is one schedulable workload: a multithreaded application, a
// rate-mode application, or a heterogeneous mix. make builds fresh
// streams (generators are single-use).
type unit struct {
	name string
	mt   bool // parallel speedup vs weighted speedup
	make func(cores int) []cpu.Stream
}

func appUnit(o Options, prof workload.Profile) unit {
	if isMT(prof.Suite) {
		return unit{name: prof.Name, mt: true, make: func(cores int) []cpu.Stream {
			return workload.Threads(prof, cores, o.Accesses, o.Scale, o.Seed)
		}}
	}
	return unit{name: prof.Name, make: func(cores int) []cpu.Stream {
		return workload.Rate(prof, cores, o.Accesses, o.Scale, o.Seed)
	}}
}

func mixUnit(o Options, name string, profs []workload.Profile) unit {
	return unit{name: name, make: func(cores int) []cpu.Stream {
		ps := profs
		for len(ps) < cores {
			ps = append(ps, profs...)
		}
		return workload.Mix(ps[:cores], o.Accesses, o.Scale, o.Seed)
	}}
}

// groupUnits expands an evaluation group (Figs. 25-27's x-axis) into
// units.
func groupUnits(o Options, group string) []unit {
	switch group {
	case "CPU-RATE":
		group = "CPU2017"
	case "CPU-HET":
		n := hetMixCount(o)
		var units []unit
		for i, mix := range workload.HetMixes(n, 8) {
			units = append(units, mixUnit(o, fmt.Sprintf("W%d", i+1), mix))
		}
		return units
	}
	var units []unit
	for _, prof := range suiteApps(o, group) {
		units = append(units, appUnit(o, prof))
	}
	return units
}

func hetMixCount(o Options) int {
	if o.Quick {
		return 4
	}
	return 36
}
