// Package llc implements the banked shared last-level cache with the
// ZeroDEV extensions: lines can hold ordinary data, a spilled directory
// entry (state V=0,D=1 with the selector bit set), or a fused directory
// entry sharing the line with the block's own data (paper §III-C). It
// supports the three fill disciplines the paper evaluates —
// non-inclusive (baseline), exclusive-private-data (EPD), and inclusive
// — and the two extended replacement policies spLRU and dataLRU
// (§III-D1).
package llc

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/coher"
)

// Mode is the LLC fill discipline.
type Mode uint8

const (
	// NonInclusive: demand fills from memory allocate in the LLC; LLC
	// evictions do not invalidate core caches (baseline, §III-A).
	NonInclusive Mode = iota
	// EPD: exclusive private data. Blocks in M/E live only in private
	// caches; the LLC allocates on owner eviction or on sharing and
	// deallocates on transition to M/E (§III-E).
	EPD
	// Inclusive: LLC evictions force invalidation of private copies
	// (§III-F).
	Inclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case NonInclusive:
		return "non-inclusive"
	case EPD:
		return "EPD"
	case Inclusive:
		return "inclusive"
	}
	return "Mode(?)"
}

// Repl is the LLC replacement policy.
type Repl uint8

const (
	// LRU is the baseline policy.
	LRU Repl = iota
	// SpLRU is LRU with the spill-protect touch rule: on an access to
	// block B, B is touched first and its spilled entry second, so the
	// data block always leaves before its spilled entry.
	SpLRU
	// DataLRU victimizes ordinary data blocks (V=1) before any spilled
	// or fused entry in the set.
	DataLRU
)

// String implements fmt.Stringer.
func (r Repl) String() string {
	switch r {
	case LRU:
		return "LRU"
	case SpLRU:
		return "spLRU"
	case DataLRU:
		return "dataLRU"
	}
	return "Repl(?)"
}

// LineKind classifies a valid LLC line.
type LineKind uint8

const (
	// KindData is an ordinary code/data block (V=1).
	KindData LineKind = iota
	// KindSpilled is a spilled directory entry occupying a full line
	// (V=0, D=1, selector=spilled).
	KindSpilled
	// KindFused is a block whose low bits have been overwritten by its
	// own directory entry (V=0, D=1, selector=fused).
	KindFused
)

// String implements fmt.Stringer.
func (k LineKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindSpilled:
		return "spilledDE"
	case KindFused:
		return "fusedDE"
	}
	return "LineKind(?)"
}

// Payload is the per-line content.
type Payload struct {
	Kind LineKind
	// Dirty is the block-dirty bit: for KindData the usual dirty bit, for
	// KindFused the dirty bit of the (partially corrupted) block part.
	Dirty bool
	// Entry is the housed directory entry for KindSpilled and KindFused.
	Entry coher.Entry
}

// View locates the lines related to a block address within its set:
// DataWay is the line holding the block's data (a fused line counts),
// DEWay the line holding its directory entry. For a fused line both
// point at the same way.
type View struct {
	Bank, Set      int
	DataWay, DEWay int
	Fused          bool
}

// HasData reports whether the block's data is present (including as the
// corrupted part of a fused line).
func (v View) HasData() bool { return v.DataWay >= 0 }

// HasDE reports whether a housed directory entry is present.
func (v View) HasDE() bool { return v.DEWay >= 0 }

// Evicted describes a line displaced by an allocation; the protocol
// engine converts it into a writeback (dirty data) or a WB_DE flow
// (spilled/fused entries).
type Evicted struct {
	Addr  coher.Addr
	Kind  LineKind
	Dirty bool
	Entry coher.Entry
}

// LLC is the banked shared cache. Not safe for concurrent use.
type LLC struct {
	banks int
	arrs  []*cache.Array[Payload]
	mode  Mode
	repl  Repl

	// Bank interleave fast path: unlike set counts, bank counts are not
	// required to be powers of two, so BankOf/local fall back to real
	// division when they are not.
	bankPow2  bool
	bankShift uint8

	// The protection pin fixes the lines of one block address for the
	// duration of a protocol transaction, mirroring the MSHR line lock
	// real hardware holds while a grant is in flight: replacement never
	// victimizes a protected line, so a transaction cannot evict the
	// block (or the directory entry) it is itself operating on. The
	// bank/set/tag are precomputed at Protect time so victim selection
	// can tell loop-invariantly whether a set is pinned at all — almost
	// every allocation lands in an unpinned set and takes the unfiltered
	// fast path.
	hasProtected      bool
	protBank, protSet int
	protTag           uint64

	// deLines counts resident spilled + fused lines across all banks.
	// While it is zero — always, for the baseline, and during warmup for
	// ZeroDEV — a block occupies at most one way and that way is a plain
	// data line, so Probe takes a first-match scan with no kind
	// classification.
	deLines int
}

// New constructs an LLC with the given total capacity split over banks.
func New(capacityBytes, ways, banks int, mode Mode, repl Repl) (*LLC, error) {
	if banks <= 0 || capacityBytes%banks != 0 {
		return nil, fmt.Errorf("llc: capacity %d not divisible by %d banks", capacityBytes, banks)
	}
	geo, err := cache.GeometryFor(capacityBytes/banks, ways, coher.BlockBytes)
	if err != nil {
		return nil, fmt.Errorf("llc: %w", err)
	}
	l := newLLC(banks, mode, repl)
	for i := 0; i < banks; i++ {
		l.arrs = append(l.arrs, cache.New[Payload](geo, cache.LRU))
	}
	return l, nil
}

func newLLC(banks int, mode Mode, repl Repl) *LLC {
	l := &LLC{banks: banks, mode: mode, repl: repl}
	if banks&(banks-1) == 0 {
		l.bankPow2 = true
		l.bankShift = uint8(bits.TrailingZeros64(uint64(banks)))
	}
	return l
}

// NewGeometry constructs an LLC directly from per-bank sets and ways,
// used by the reduced-associativity study (Fig. 6) where ways are taken
// away from a fixed set count, so the capacity is no longer a power of
// two.
func NewGeometry(setsPerBank, ways, banks int, mode Mode, repl Repl) (*LLC, error) {
	if setsPerBank <= 0 || setsPerBank&(setsPerBank-1) != 0 {
		return nil, fmt.Errorf("llc: set count %d not a power of two", setsPerBank)
	}
	if ways <= 0 || banks <= 0 {
		return nil, fmt.Errorf("llc: non-positive geometry")
	}
	l := newLLC(banks, mode, repl)
	for i := 0; i < banks; i++ {
		l.arrs = append(l.arrs, cache.New[Payload](cache.Geometry{Sets: setsPerBank, Ways: ways}, cache.LRU))
	}
	return l, nil
}

// MustNew panics on construction error.
func MustNew(capacityBytes, ways, banks int, mode Mode, repl Repl) *LLC {
	l, err := New(capacityBytes, ways, banks, mode, repl)
	if err != nil {
		panic(err)
	}
	return l
}

// Mode returns the fill discipline.
func (l *LLC) Mode() Mode { return l.mode }

// Repl returns the replacement policy.
func (l *LLC) Repl() Repl { return l.repl }

// Banks returns the bank count.
func (l *LLC) Banks() int { return l.banks }

// Ways returns the associativity.
func (l *LLC) Ways() int { return l.arrs[0].Geometry().Ways }

// Blocks returns the total line count.
func (l *LLC) Blocks() int { return l.banks * l.arrs[0].Geometry().Blocks() }

// BankOf maps a block address to its home bank.
func (l *LLC) BankOf(addr coher.Addr) int {
	if l.bankPow2 {
		return int(uint64(addr) & (uint64(l.banks) - 1))
	}
	return int(uint64(addr) % uint64(l.banks))
}

func (l *LLC) local(addr coher.Addr) uint64 {
	if l.bankPow2 {
		return uint64(addr) >> l.bankShift
	}
	return uint64(addr) / uint64(l.banks)
}

func (l *LLC) global(bank int, localAddr uint64) coher.Addr {
	return coher.Addr(localAddr*uint64(l.banks) + uint64(bank))
}

// Probe locates the lines related to addr. It performs no replacement
// updates. A block occupies at most two ways of its set (data line plus
// spilled entry), so the tag scan stops at the second match.
func (l *LLC) Probe(addr coher.Addr) View {
	bank := l.BankOf(addr)
	arr := l.arrs[bank]
	local := l.local(addr)
	set := arr.SetIndex(local)
	v := View{Bank: bank, Set: set, DataWay: -1, DEWay: -1}
	if l.deLines == 0 {
		v.DataWay = arr.FindWay(set, arr.Tag(local))
		return v
	}
	w0, w1 := arr.FindWays2(set, arr.Tag(local))
	for _, w := range [2]int{w0, w1} {
		if w < 0 {
			continue
		}
		switch arr.Payload(set, w).Kind {
		case KindData:
			v.DataWay = w
		case KindSpilled:
			v.DEWay = w
		case KindFused:
			v.DataWay, v.DEWay, v.Fused = w, w, true
		}
	}
	return v
}

// Payload returns the payload at a way of the view's set for in-place
// mutation.
func (l *LLC) Payload(v View, way int) *Payload {
	return l.arrs[v.Bank].Payload(v.Set, way)
}

// Touch applies the access-time replacement update for addr. Under
// spLRU and dataLRU the block is touched first and its spilled entry
// second, so the entry always ends more recently used than its block
// and the block leaves first (§III-D1). Plain LRU models the unordered
// baseline: the directory-entry update lands before the data response,
// leaving the spilled entry *older* than its block and exposed to
// eviction while the block lives on.
func (l *LLC) Touch(v View) {
	arr := l.arrs[v.Bank]
	deFirst := l.repl == LRU
	if deFirst && v.DEWay >= 0 && v.DEWay != v.DataWay {
		arr.Touch(v.Set, v.DEWay)
	}
	if v.DataWay >= 0 {
		arr.Touch(v.Set, v.DataWay)
	}
	if !deFirst && v.DEWay >= 0 && v.DEWay != v.DataWay {
		arr.Touch(v.Set, v.DEWay)
	}
}

// Protect pins addr's lines against replacement until Unprotect; used
// by the protocol engine around each transaction.
func (l *LLC) Protect(addr coher.Addr) {
	l.hasProtected = true
	l.protBank = l.BankOf(addr)
	arr := l.arrs[l.protBank]
	local := l.local(addr)
	l.protSet = arr.SetIndex(local)
	l.protTag = arr.Tag(local)
}

// Unprotect releases the transaction pin.
func (l *LLC) Unprotect() { l.hasProtected = false }

// isData filters victim selection to ordinary data lines (the dataLRU
// first pass). Package-level so the hot path passes a plain function,
// not a fresh closure.
func isData(_ int, p *Payload) bool { return p.Kind == KindData }

// victimWay picks a way to reuse in (bank, set) honoring the policy and
// the transaction pin. evicted reports whether a line was displaced; ev
// describes it. Returning the eviction by value keeps the per-fill path
// free of heap allocation (this call used to account for three quarters
// of all allocations in a run).
func (l *LLC) victimWay(bank, set int) (way int, ev Evicted, evicted bool) {
	arr := l.arrs[bank]
	if w, free := arr.FreeWay(set); free {
		return w, Evicted{}, false
	}
	var w int
	ok := true
	// The pin names exactly one (bank, set): any other set selects its
	// victim with no eligibility filtering at all.
	pinned := l.hasProtected && bank == l.protBank && set == l.protSet
	switch {
	case l.repl == DataLRU && !pinned:
		if w, ok = arr.VictimWhere(set, isData); !ok {
			w, ok = arr.Victim(set), true
		}
	case l.repl == DataLRU:
		w, ok = arr.VictimWhere(set, func(way int, p *Payload) bool {
			return p.Kind == KindData && arr.TagAt(set, way) != l.protTag
		})
		if !ok {
			w, ok = arr.VictimWhere(set, func(way int, _ *Payload) bool { return arr.TagAt(set, way) != l.protTag })
		}
	case !pinned: // LRU and SpLRU share the victim rule; SpLRU differs in Touch order.
		w = arr.Victim(set)
	default:
		w, ok = arr.VictimWhere(set, func(way int, _ *Payload) bool { return arr.TagAt(set, way) != l.protTag })
	}
	if !ok {
		panic("llc: no evictable way (associativity too low for line protection)")
	}
	p := arr.Payload(set, w)
	ev = Evicted{
		Addr:  l.global(bank, arr.AddrOf(set, w)),
		Kind:  p.Kind,
		Dirty: p.Dirty,
		Entry: p.Entry,
	}
	return w, ev, true
}

// InsertData allocates a data line for addr (which must not already have
// one). evicted reports whether ev describes a displaced line.
func (l *LLC) InsertData(addr coher.Addr, dirty bool) (ev Evicted, evicted bool) {
	bank := l.BankOf(addr)
	arr := l.arrs[bank]
	local := l.local(addr)
	set := arr.SetIndex(local)
	way, ev, evicted := l.victimWay(bank, set)
	if evicted && ev.Kind != KindData {
		l.deLines--
	}
	arr.Insert(set, way, local, Payload{Kind: KindData, Dirty: dirty})
	return ev, evicted
}

// InsertSpilled allocates a spilled-entry line for addr. The caller must
// ensure no DE line already exists for addr. evicted reports whether ev
// describes a displaced line.
func (l *LLC) InsertSpilled(addr coher.Addr, e coher.Entry) (ev Evicted, evicted bool) {
	bank := l.BankOf(addr)
	arr := l.arrs[bank]
	local := l.local(addr)
	set := arr.SetIndex(local)
	way, ev, evicted := l.victimWay(bank, set)
	if evicted && ev.Kind != KindData {
		l.deLines--
	}
	arr.Insert(set, way, local, Payload{Kind: KindSpilled, Entry: e})
	l.deLines++
	return ev, evicted
}

// Fuse converts the data line of v into a fused line carrying e. The
// block-dirty bit is preserved in the fused header.
func (l *LLC) Fuse(v View, e coher.Entry) {
	p := l.Payload(v, v.DataWay)
	if p.Kind != KindData {
		panic("llc: Fuse on non-data line")
	}
	p.Kind = KindFused
	p.Entry = e
	l.deLines++
	l.arrs[v.Bank].Touch(v.Set, v.DataWay)
}

// Unfuse restores a fused line to a plain data line (the directory entry
// has been freed and the low bits reconstructed, or it is being moved to
// a spilled line).
func (l *LLC) Unfuse(v View) {
	p := l.Payload(v, v.DataWay)
	if p.Kind != KindFused {
		panic("llc: Unfuse on non-fused line")
	}
	p.Kind = KindData
	p.Entry = coher.Entry{}
	l.deLines--
}

// DropDE removes the housed directory entry of v: a spilled line is
// invalidated, a fused line reverts to a data line.
func (l *LLC) DropDE(v View) {
	if !v.HasDE() {
		panic("llc: DropDE without a DE")
	}
	if v.Fused {
		l.Unfuse(v)
		return
	}
	l.arrs[v.Bank].Invalidate(v.Set, v.DEWay)
	l.deLines--
}

// InvalidateData removes the data line of v (EPD deallocation on
// transition to M/E, or inclusive-mode back-invalidation). The line must
// not be fused; callers handle fused lines through DE operations first.
func (l *LLC) InvalidateData(v View) {
	p := l.Payload(v, v.DataWay)
	if p.Kind != KindData {
		panic("llc: InvalidateData on non-data line")
	}
	l.arrs[v.Bank].Invalidate(v.Set, v.DataWay)
}

// Demote moves the data line of v to the bottom of the replacement
// order, used by replacement-priority studies.
func (l *LLC) Demote(v View) {
	l.arrs[v.Bank].Demote(v.Set, v.DataWay)
}

// CountKinds returns the current line population by kind, which the
// occupancy studies (Fig. 5 methodology) report as a fraction of LLC
// blocks.
func (l *LLC) CountKinds() (data, spilled, fused int) {
	for _, arr := range l.arrs {
		arr.ForEachValid(func(_, _ int, _ uint64, p *Payload) {
			switch p.Kind {
			case KindData:
				data++
			case KindSpilled:
				spilled++
			case KindFused:
				fused++
			}
		})
	}
	return
}

// ForEachDE visits every housed directory entry, for invariant checks.
func (l *LLC) ForEachDE(fn func(addr coher.Addr, fused bool, e coher.Entry)) {
	for b, arr := range l.arrs {
		arr.ForEachValid(func(_, _ int, local uint64, p *Payload) {
			if p.Kind == KindSpilled || p.Kind == KindFused {
				fn(l.global(b, local), p.Kind == KindFused, p.Entry)
			}
		})
	}
}

// ForEachData visits every plain data line (fused lines are reported by
// ForEachDE), for fault-injection target collection.
func (l *LLC) ForEachData(fn func(addr coher.Addr, dirty bool)) {
	for b, arr := range l.arrs {
		arr.ForEachValid(func(_, _ int, local uint64, p *Payload) {
			if p.Kind == KindData {
				fn(l.global(b, local), p.Dirty)
			}
		})
	}
}

// AppendState appends the LLC's protocol-visible state to buf for
// model-checker fingerprinting: per bank, the array contents (tags,
// recency ranks, line kind/dirty bit, and the canonical form of any
// housed directory entry). The transient Protect pin is excluded — it
// is always clear between top-level requests, the only points the
// checker fingerprints.
func (l *LLC) AppendState(buf []byte) []byte {
	for _, arr := range l.arrs {
		buf = arr.AppendState(buf, func(b []byte, p *Payload) []byte {
			tag := byte(p.Kind)
			if p.Dirty {
				tag |= 0x10
			}
			b = append(b, tag)
			if p.Kind == KindSpilled || p.Kind == KindFused {
				b = p.Entry.AppendCanonical(b)
			}
			return b
		})
	}
	return buf
}
