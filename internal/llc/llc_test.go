package llc

import (
	"testing"

	"repro/internal/coher"
)

func tiny(repl Repl) *LLC {
	// 1 bank, 1 set, 4 ways.
	l, err := NewGeometry(1, 4, 1, NonInclusive, repl)
	if err != nil {
		panic(err)
	}
	return l
}

func owned(c coher.CoreID) coher.Entry {
	return coher.Entry{State: coher.DirOwned, Owner: c}
}

func shared(cs ...coher.CoreID) coher.Entry {
	e := coher.Entry{State: coher.DirShared}
	for _, c := range cs {
		e.Sharers.Add(c)
	}
	return e
}

func TestProbeAndKinds(t *testing.T) {
	l := tiny(LRU)
	if _, evicted := l.InsertData(1, false); evicted {
		t.Fatal("insert into empty set evicted")
	}
	v := l.Probe(1)
	if !v.HasData() || v.HasDE() || v.Fused {
		t.Fatalf("view = %+v", v)
	}
	// A spilled entry for the same address coexists in the set (two tag
	// matches, distinguished by state, §III-C1).
	if _, evicted := l.InsertSpilled(1, shared(0)); evicted {
		t.Fatal("unexpected eviction")
	}
	v = l.Probe(1)
	if !v.HasData() || !v.HasDE() || v.Fused || v.DataWay == v.DEWay {
		t.Fatalf("view = %+v", v)
	}
	d, s, f := l.CountKinds()
	if d != 1 || s != 1 || f != 0 {
		t.Fatalf("kinds = %d/%d/%d", d, s, f)
	}
}

func TestFuseUnfuse(t *testing.T) {
	l := tiny(LRU)
	l.InsertData(2, true)
	v := l.Probe(2)
	l.Fuse(v, owned(3))
	v = l.Probe(2)
	if !v.Fused || v.DataWay != v.DEWay {
		t.Fatalf("view after fuse = %+v", v)
	}
	if p := l.Payload(v, v.DEWay); !p.Dirty || p.Entry.Owner != 3 {
		t.Fatalf("payload = %+v", p)
	}
	l.Unfuse(v)
	v = l.Probe(2)
	if v.Fused || !v.HasData() || v.HasDE() {
		t.Fatalf("view after unfuse = %+v", v)
	}
	if !l.Payload(v, v.DataWay).Dirty {
		t.Fatal("unfuse must preserve the block-dirty bit")
	}
}

func TestDropDE(t *testing.T) {
	l := tiny(LRU)
	l.InsertSpilled(4, shared(1))
	l.DropDE(l.Probe(4))
	if v := l.Probe(4); v.HasDE() || v.HasData() {
		t.Fatal("spilled line must vanish")
	}
	l.InsertData(5, false)
	l.Fuse(l.Probe(5), owned(0))
	l.DropDE(l.Probe(5))
	if v := l.Probe(5); !v.HasData() || v.HasDE() {
		t.Fatal("fused line must revert to data")
	}
}

func TestDataLRUPrefersDataVictims(t *testing.T) {
	l := tiny(DataLRU)
	l.InsertSpilled(0, shared(1)) // oldest
	l.InsertData(1, false)
	l.InsertData(2, false)
	l.InsertData(3, false)
	// Set full; inserting picks the LRU *data* line (addr 1), not the
	// older spilled entry.
	ev, evicted := l.InsertData(4, false)
	if !evicted || ev.Kind != KindData || ev.Addr != 1 {
		t.Fatalf("evicted = %+v, want data block 1", ev)
	}
	// When only DE lines remain eligible, they are evicted as a fallback.
	l2 := tiny(DataLRU)
	for i := coher.Addr(0); i < 4; i++ {
		l2.InsertSpilled(i, shared(1))
	}
	ev, evicted = l2.InsertData(9, false)
	if !evicted || ev.Kind != KindSpilled {
		t.Fatalf("fallback evicted = %+v", ev)
	}
}

func TestSpLRUTouchOrderProtectsSpill(t *testing.T) {
	l := tiny(SpLRU)
	l.InsertData(0, false)
	l.InsertSpilled(0, shared(2))
	l.InsertData(1, false)
	l.InsertData(2, false)
	// Access block 0: touch B then its spilled entry (spill ends MRU).
	l.Touch(l.Probe(0))
	// Next insertions evict block 1, then block 2, then block 0 — the
	// spilled entry outlives its block.
	ev, evicted := l.InsertData(3, false)
	if !evicted || ev.Addr != 1 || ev.Kind != KindData {
		t.Fatalf("first eviction = %+v", ev)
	}
	ev, evicted = l.InsertData(4, false)
	if !evicted || ev.Addr != 2 {
		t.Fatalf("second eviction = %+v", ev)
	}
	ev, evicted = l.InsertData(5, false)
	if !evicted || ev.Addr != 0 || ev.Kind != KindData {
		t.Fatalf("third eviction = %+v (block must leave before its spill)", ev)
	}
	ev, evicted = l.InsertData(6, false)
	if !evicted || ev.Kind != KindSpilled || ev.Addr != 0 {
		t.Fatalf("fourth eviction = %+v (now the spill)", ev)
	}
}

func TestProtection(t *testing.T) {
	l := tiny(LRU)
	l.InsertData(0, false) // oldest → natural victim
	l.InsertData(1, false)
	l.InsertData(2, false)
	l.InsertData(3, false)
	l.Protect(0)
	ev, evicted := l.InsertData(4, false)
	if !evicted || ev.Addr == 0 {
		t.Fatalf("protected line evicted: %+v", ev)
	}
	l.Unprotect()
	ev, evicted = l.InsertData(5, false)
	if !evicted || ev.Addr != 0 {
		t.Fatalf("after unprotect, block 0 should go: %+v", ev)
	}
}

func TestBankMapping(t *testing.T) {
	l := MustNew(64<<10, 16, 8, NonInclusive, LRU)
	if l.Banks() != 8 || l.Ways() != 16 || l.Blocks() != 1024 {
		t.Fatalf("geometry: banks=%d ways=%d blocks=%d", l.Banks(), l.Ways(), l.Blocks())
	}
	// Round-trip: inserting an address makes it probeable, and evicted
	// addresses reconstruct correctly.
	addr := coher.Addr(0x12345)
	l.InsertData(addr, true)
	v := l.Probe(addr)
	if !v.HasData() || v.Bank != l.BankOf(addr) {
		t.Fatalf("probe after insert failed: %+v", v)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(100, 16, 8, NonInclusive, LRU); err == nil {
		t.Fatal("indivisible capacity accepted")
	}
	if _, err := NewGeometry(3, 4, 1, NonInclusive, LRU); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
}

// checkDELines asserts the deLines fast-path counter agrees with an
// exhaustive kind census. Probe's single-way fast path is only correct
// while the counter is exact, so any drift is a correctness bug, not a
// performance one.
func checkDELines(t *testing.T, l *LLC) {
	t.Helper()
	_, s, f := l.CountKinds()
	if l.deLines != s+f {
		t.Fatalf("deLines = %d, want %d (spilled %d + fused %d)", l.deLines, s+f, s, f)
	}
}

func TestDELinesCounterTracksKindCensus(t *testing.T) {
	l := tiny(LRU)
	checkDELines(t, l)

	l.InsertData(1, false)
	checkDELines(t, l)
	l.InsertSpilled(1, shared(0))
	checkDELines(t, l)

	// Fuse a second block, unfuse it again.
	l.InsertData(2, true)
	v := l.Probe(2)
	l.Fuse(v, owned(3))
	checkDELines(t, l)
	l.Unfuse(l.Probe(2))
	checkDELines(t, l)

	// Drop the spilled entry.
	l.DropDE(l.Probe(1))
	checkDELines(t, l)

	// Refill the set with spills, then force evictions of DE lines by
	// data allocations (the set has 4 ways).
	l.InsertSpilled(5, shared(1))
	l.InsertSpilled(9, shared(2))
	l.InsertSpilled(13, owned(1))
	checkDELines(t, l)
	for a := coher.Addr(17); a < 33; a += 4 {
		l.InsertData(a, false)
		checkDELines(t, l)
	}

	// Drop via a fused line's DropDE path.
	v = l.Probe(29)
	if v.HasData() {
		l.Fuse(v, owned(2))
		checkDELines(t, l)
		l.DropDE(l.Probe(29))
		checkDELines(t, l)
	}
}
