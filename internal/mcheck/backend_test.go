package mcheck

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/backend"
)

// TestBackendsClaimingZeroDEVExploreClean proves the zero-DEV property
// over every interleaving up to the test depth for each backend that
// claims it, in its harshest tiny configuration (zerodev without a
// sparse directory; dls is directoryless by construction).
func TestBackendsClaimingZeroDEVExploreClean(t *testing.T) {
	depth := 4
	if !testing.Short() {
		depth = 5
	}
	for _, id := range []backend.ID{backend.ZeroDEV, backend.DLS} {
		cfg := Config{Cores: 2, Addrs: 2, Depth: depth, Backend: id, Workers: 2}
		res, err := Explore(context.Background(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("%s: violation after %q: %s", id, FormatOps(res.Violation.Ops), res.Violation.Err)
		}
		if res.Explored < 100 {
			t.Fatalf("%s: only %d states explored; the alphabet is not driving the engine", id, res.Explored)
		}
	}
}

// TestNonClaimingBackendsPassWithoutAssertion checks that sparsemesi
// and phasepriority satisfy every property except the one they do not
// claim: with the zero-DEV assertion off, their bounded directories
// explore clean (DEVs happen, but they are not a violation there).
func TestNonClaimingBackendsPassWithoutAssertion(t *testing.T) {
	for _, id := range []backend.ID{backend.SparseMESI, backend.PhasePriority} {
		cfg := Config{Cores: 2, Addrs: 2, Depth: 4, Backend: id, DirEntries: 1, Workers: 2}
		res, err := Explore(context.Background(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("%s: violation after %q: %s", id, FormatOps(res.Violation.Ops), res.Violation.Err)
		}
	}
}

// TestDifferentiatorFindsCounterexample is the differentiator: forcing
// the zero-DEV assertion on a backend that does not claim it must
// produce a violation, and the minimized trace must round-trip through
// the codec and replay to the identical violation — the artifact
// `zerodev check` hands the user to demonstrate that the baseline
// really victimizes private copies on directory conflicts.
func TestDifferentiatorFindsCounterexample(t *testing.T) {
	for _, id := range []backend.ID{backend.SparseMESI, backend.PhasePriority} {
		cfg := Config{
			Cores: 2, Addrs: 2, Depth: 4, Backend: id,
			DirEntries: 1, AssertZeroDEV: true, Workers: 2,
		}
		res, err := Explore(context.Background(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation == nil {
			t.Fatalf("%s: no zero-DEV counterexample found under the forced assertion", id)
		}
		if !strings.Contains(res.Violation.Err, "zero-DEV violated") {
			t.Fatalf("%s: unexpected violation kind: %s", id, res.Violation.Err)
		}
		min := Minimize(cfg, *res.Violation)

		var buf bytes.Buffer
		if err := NewTrace(cfg, min).Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), `"backend": "`+string(id)+`"`) {
			t.Fatalf("%s: trace does not record its backend:\n%s", id, buf.String())
		}
		tr, err := DecodeTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		v, err := Replay(tr)
		if err != nil {
			t.Fatal(err)
		}
		if v.Err != min.Err {
			t.Fatalf("%s: replayed violation %q, want %q", id, v.Err, min.Err)
		}
	}
}

// TestZeroDEVTraceOmitsBackendFields pins backward compatibility: a
// zerodev counterexample encodes without the backend axis fields, so
// traces written before the axis existed stay byte-identical.
func TestZeroDEVTraceOmitsBackendFields(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Cores: 2, Addrs: 2, Depth: 2, Workers: 1}
	v := Violation{Ops: []Op{{Kind: OpRead}}, Err: "x"}
	if err := NewTrace(cfg, v).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"backend", "assert_zero_dev"} {
		if strings.Contains(buf.String(), field) {
			t.Fatalf("zerodev trace emits %q:\n%s", field, buf.String())
		}
	}
}

// TestConfigValidateBackends covers the backend-axis validation rules.
func TestConfigValidateBackends(t *testing.T) {
	base := Config{Cores: 2, Addrs: 2, Depth: 4, Workers: 1}
	cases := []struct {
		name string
		mut  func(*Config)
		want string // "" = valid
	}{
		{"zero-value-is-zerodev", func(c *Config) {}, ""},
		{"explicit-zerodev", func(c *Config) { c.Backend = backend.ZeroDEV }, ""},
		{"unknown", func(c *Config) { c.Backend = "mesi" }, "unknown protocol backend"},
		{"dls", func(c *Config) { c.Backend = backend.DLS }, ""},
		{"dls-with-dir", func(c *Config) { c.Backend = backend.DLS; c.DirEntries = 2 }, "directoryless"},
		{"sparsemesi-no-dir", func(c *Config) { c.Backend = backend.SparseMESI }, "bounded directory"},
		{"sparsemesi", func(c *Config) { c.Backend = backend.SparseMESI; c.DirEntries = 1 }, ""},
		{"phasepriority-no-dir", func(c *Config) { c.Backend = backend.PhasePriority }, "bounded directory"},
		{"broken-non-zerodev", func(c *Config) { c.Backend = backend.SparseMESI; c.DirEntries = 1; c.Broken = true }, "no WB_DE flow"},
		{"broken-zerodev", func(c *Config) { c.Broken = true }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestConfigLabel pins the axis labels the CLI and progress lines use.
func TestConfigLabel(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{}, "spillall"},
		{Config{Backend: backend.DLS}, "dls"},
		{Config{Backend: backend.DLS, AssertZeroDEV: true}, "dls"}, // claims it: no suffix
		{Config{Backend: backend.SparseMESI}, "sparsemesi"},
		{Config{Backend: backend.SparseMESI, AssertZeroDEV: true}, "sparsemesi+assert"},
	}
	for _, tc := range cases {
		if got := tc.cfg.Label(); got != tc.want {
			t.Errorf("Label(%+v) = %q, want %q", tc.cfg, got, tc.want)
		}
	}
}
