package mcheck

import (
	"fmt"

	"repro/internal/coher"
)

// checkState runs the full property set against a reached state. It is
// called between transactions only (the engine is synchronous), which
// is what makes the busy-entry and corrupted-recoverability checks
// meaningful: transient states are legal inside a transaction, never
// across one.
func checkState(cfg Config, in *instance) error {
	eng := in.sys.Engine
	if err := eng.CheckInvariants(); err != nil {
		return err
	}

	// Zero-DEV: no private copy is ever invalidated because the
	// directory ran out of tracking space. This is the paper's headline
	// property; it is asserted exactly on the backends that claim it
	// (zerodev, dls) — and on the others only under AssertZeroDEV, the
	// differentiator mode whose *expected* outcome is a counterexample.
	if cfg.ClaimsZeroDEV() || cfg.AssertZeroDEV {
		if devs := eng.Stats().DEVs; devs != 0 {
			return fmt.Errorf("zero-DEV violated: %d private-cache invalidation(s) attributable to directory replacement", devs)
		}
	}

	for _, addr := range addrAlphabet(cfg) {
		// Single-writer, measured directly from the private caches
		// (independently of the directory bookkeeping CheckInvariants
		// validates): at most one core may hold addr writable.
		writers := 0
		for _, c := range in.sys.Cores {
			if st, ok := c.HasBlock(addr); ok && (st == coher.PrivModified || st == coher.PrivExclusive) {
				writers++
			}
		}
		if writers > 1 {
			return fmt.Errorf("single-writer violated: %d cores hold %#x in M/E", writers, uint64(addr))
		}

		// LocateEntry surfaces multi-location tracking, and a located
		// entry must not be busy between transactions — the synchronous
		// engine completes every transaction it starts.
		ent, where, err := eng.LocateEntry(addr)
		if err != nil {
			return err
		}
		if where != "" && ent.Busy {
			return fmt.Errorf("busy %s entry for %#x between transactions", where, uint64(addr))
		}

		// Corrupted-home recoverability: while a block's memory copy is
		// overwritten by directory-entry segments, its data must still
		// be reachable — in the LLC or in a private cache tracked by a
		// live entry — or the last-copy retrieval of §III-D4 can never
		// restore memory and the block's value is lost forever.
		if in.sys.Home.Mem().Corrupted(addr) {
			if v := eng.LLC().Probe(addr); !v.HasData() && where == "" {
				return fmt.Errorf("corrupted home block %#x is unrecoverable: no LLC copy and no live entry", uint64(addr))
			}
		}
	}
	return nil
}
