// Package mcheck is an exhaustive protocol model checker for the
// ZeroDEV engine. It drives the *production* core.Engine — no abstract
// model — over deliberately tiny configurations (2–4 cores, a handful
// of block addresses, single-set caches so every structure conflicts
// constantly) and explores every reachable state under a bounded op
// alphabet by breadth-first search with canonical state fingerprinting.
// Every newly reached state is checked with core.CheckInvariants plus
// cross-state properties (zero-DEV, single-writer, no busy entries
// between transactions, corrupted-home recoverability); a violation is
// minimized into a short replayable counterexample trace.
//
// The engine is synchronous — each request runs its whole transaction
// atomically — so the op sequence fully determines the reached state,
// and deterministic re-execution (replaying an op prefix against a
// fresh system) doubles as the state restore mechanism. See DESIGN.md
// ("Model checking") for the fingerprint definition and the soundness
// caveats of bounded depth.
package mcheck

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/coher"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/directory"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/llc"
	"repro/internal/noc"
)

// MaxCores and MaxAddrs bound the tiny configurations: beyond 4×4 the
// alphabet is large enough that exhaustive depth-8 exploration stops
// being a CI-sized job, and the paper's protocol has no per-core
// machinery that a 4-core instance would not exercise.
const (
	MaxCores = 4
	MaxAddrs = 4
)

// MaxReplayCores bounds scripted replay (ReplayChecked): wide-sharer
// conformance scenarios need sharer sets that cross the 64- and
// 128-core word boundaries of the widened CoreSet, which exhaustive
// exploration could never afford. Replay runs one scripted path with
// the full property set after every op, so the only cost of width is
// linear in cores. The op alphabet addresses cores with a uint8, so
// the bound stays below 256.
const MaxReplayCores = 192

// Config describes one model-checking run.
type Config struct {
	// Cores is the core count (2..MaxCores).
	Cores int
	// Addrs is the number of distinct block addresses in the op
	// alphabet (1..MaxAddrs). All of them collide in every single-set
	// structure, so even two addresses exercise every eviction path.
	Addrs int
	// Depth bounds the BFS: every op sequence up to this length is
	// explored (modulo fingerprint dedup).
	Depth int
	// Backend selects the protocol backend under check. The zero value
	// is zerodev, so configs and traces from before the backend axis
	// keep their meaning.
	Backend backend.ID
	// Policy selects the DE caching policy (SpillAll/FPSS/FuseAll);
	// meaningful only on the zerodev backend (the only one with a
	// policy axis).
	Policy core.DEPolicy
	// AssertZeroDEV forces the zero-DEV property on even for backends
	// that do not claim it — the differentiator check: exploring
	// sparsemesi under this assertion must produce a counterexample,
	// which is how "zero-DEV fails on the baseline" is checked rather
	// than assumed.
	AssertZeroDEV bool
	// DirEntries sizes the replacement-disabled sparse directory as a
	// single set of that many ways; 0 runs without a sparse directory
	// (every entry housed in the LLC), the harshest configuration.
	DirEntries int
	// Broken wraps the home agent with faults.BrokenRecoveryHome (live
	// PutDE messages dropped), a known-bad variant that must yield a
	// counterexample — used to validate the checker itself.
	Broken bool
	// Workers shards frontier expansion across a harness pool; results
	// are identical at any value.
	Workers int
	// JobTimeout, when positive, bounds each frontier expansion's wall
	// time via the pool watchdog (a wedged engine aborts the search with
	// a diagnostic instead of hanging CI).
	JobTimeout time.Duration
}

// Validate rejects configurations outside the tiny-model envelope.
func (c Config) Validate() error { return c.validate(MaxCores) }

// ValidateReplay is Validate with the core bound raised to
// MaxReplayCores — legal only for scripted replay, never exploration.
func (c Config) ValidateReplay() error { return c.validate(MaxReplayCores) }

func (c Config) validate(maxCores int) error {
	if c.Cores < 2 || c.Cores > maxCores {
		return fmt.Errorf("mcheck: cores must be in [2,%d], got %d", maxCores, c.Cores)
	}
	if c.Addrs < 1 || c.Addrs > MaxAddrs {
		return fmt.Errorf("mcheck: addrs must be in [1,%d], got %d", MaxAddrs, c.Addrs)
	}
	if c.Depth < 1 {
		return fmt.Errorf("mcheck: depth must be positive, got %d", c.Depth)
	}
	if c.DirEntries < 0 || c.DirEntries > 8 {
		return fmt.Errorf("mcheck: dir entries must be in [0,8], got %d", c.DirEntries)
	}
	if c.Workers < 1 {
		return fmt.Errorf("mcheck: workers must be positive, got %d", c.Workers)
	}
	if _, ok := backend.Get(c.Backend); !ok {
		return fmt.Errorf("mcheck: %w %q", backend.ErrUnknownBackend, c.Backend)
	}
	switch c.backendID() {
	case backend.ZeroDEV:
		switch c.Policy {
		case core.SpillAll, core.FPSS, core.FuseAll:
		default:
			return fmt.Errorf("mcheck: unknown DE policy %d", c.Policy)
		}
	case backend.DLS:
		if c.DirEntries != 0 {
			return fmt.Errorf("mcheck: the dls backend is directoryless (dir entries must be 0, got %d)", c.DirEntries)
		}
	default:
		if c.DirEntries < 1 {
			return fmt.Errorf("mcheck: the %s backend needs a bounded directory (dir entries >= 1)", c.backendID())
		}
	}
	if c.Broken && c.backendID() != backend.ZeroDEV {
		return fmt.Errorf("mcheck: -broken wraps the zerodev home agent; the %s backend has no WB_DE flow to break", c.backendID())
	}
	return nil
}

// backendID resolves the configured backend, mapping the zero value to
// zerodev so pre-backend configs keep their meaning.
func (c Config) backendID() backend.ID {
	if c.Backend == "" {
		return backend.ZeroDEV
	}
	return c.Backend
}

// ClaimsZeroDEV reports whether the configured backend claims the
// zero-DEV guarantee; the checker asserts the property exactly then
// (or when AssertZeroDEV forces it on).
func (c Config) ClaimsZeroDEV() bool {
	return backend.MustGet(c.backendID()).ClaimsZeroDEV
}

// Label renders the configuration axis the CLI spells: the policy name
// on zerodev (the only backend with a policy sub-axis), the backend
// name elsewhere, with a "+assert" suffix when the zero-DEV property is
// force-asserted on a backend that does not claim it.
func (c Config) Label() string {
	l := string(c.backendID())
	if c.backendID() == backend.ZeroDEV {
		l = PolicyName(c.Policy)
	}
	if c.AssertZeroDEV && !c.ClaimsZeroDEV() {
		l += "+assert"
	}
	return l
}

// AddrOf maps an alphabet address index to a block address. The
// addresses are consecutive blocks: with single-set caches they collide
// everywhere regardless, and small numbers keep traces readable.
func AddrOf(i int) coher.Addr { return coher.Addr(0x40 + i) }

// spec assembles the tiny system: single-set 2-way private caches, one
// single-set 4-way LLC bank. Prefetching stays disabled (degree 0) —
// the fingerprint excludes the prefetcher's miss history, which is only
// sound while it cannot influence coherence actions. Each backend runs
// in its canonical organization (mirroring config.Preset.ForBackend)
// shrunk to the tiny-model envelope; the directory, where bounded, is
// a single set of DirEntries ways so every address conflicts there.
func (c Config) spec() core.SystemSpec {
	dirEntries := c.DirEntries
	s := core.SystemSpec{
		Cores: c.Cores,
		CPU: cpu.Params{
			L1Bytes: 2 * 64, L1Ways: 2,
			L2Bytes: 2 * 64, L2Ways: 2,
			IssueWidth:  4,
			L1HitCycles: 1, L2HitCycles: 10,
			LoadMLP: 2, StoreMLP: 4,
		},
		LLCBytes: 4 * 64, LLCWays: 4, LLCBanks: 1,
		DRAM:   dram.DDR3_2133(1),
		NoC:    noc.DefaultParams(),
		Uncore: core.DefaultParams(c.Cores),
	}
	switch c.backendID() {
	case backend.SparseMESI:
		s.Backend = backend.SparseMESI
		s.Mode, s.Repl = llc.NonInclusive, llc.LRU
		s.Dir = func() directory.Directory { return directory.MustTraditional(dirEntries, dirEntries) }
	case backend.DLS:
		s.Backend = backend.DLS
		s.Mode, s.Repl = llc.Inclusive, llc.LRU
		s.Dir = func() directory.Directory { return directory.NoDir{} }
	case backend.PhasePriority:
		s.Backend = backend.PhasePriority
		s.Mode, s.Repl = llc.NonInclusive, llc.LRU
		s.Dir = func() directory.Directory { return directory.MustReplacementDisabled(dirEntries, dirEntries) }
	default: // zerodev
		s.Mode, s.Repl = llc.NonInclusive, llc.DataLRU
		s.ZeroDEV = true
		s.Policy = c.Policy
		s.Dir = func() directory.Directory {
			if dirEntries == 0 {
				return directory.NoDir{}
			}
			return directory.MustReplacementDisabled(dirEntries, dirEntries)
		}
		if c.Broken {
			s.WrapHome = faults.BrokenRecoveryHome
		}
	}
	return s
}

// PolicyName renders a DE policy the way the CLI spells it.
func PolicyName(p core.DEPolicy) string {
	switch p {
	case core.SpillAll:
		return "spillall"
	case core.FPSS:
		return "fpss"
	case core.FuseAll:
		return "fuseall"
	}
	return fmt.Sprintf("policy(%d)", p)
}

// ParsePolicy is the inverse of PolicyName.
func ParsePolicy(s string) (core.DEPolicy, error) {
	switch strings.ToLower(s) {
	case "spillall":
		return core.SpillAll, nil
	case "fpss":
		return core.FPSS, nil
	case "fuseall":
		return core.FuseAll, nil
	}
	return 0, fmt.Errorf("mcheck: unknown DE policy %q (want spillall, fpss, or fuseall)", s)
}

// ParsePolicies parses a comma-separated policy list; "all" (or "")
// selects all three in paper order.
func ParsePolicies(s string) ([]core.DEPolicy, error) {
	if s == "" || strings.EqualFold(s, "all") {
		return []core.DEPolicy{core.SpillAll, core.FPSS, core.FuseAll}, nil
	}
	var out []core.DEPolicy
	for _, part := range strings.Split(s, ",") {
		p, err := ParsePolicy(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
