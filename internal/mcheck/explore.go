package mcheck

import (
	"context"
	"fmt"
	"io"

	"repro/internal/harness"
)

// Violation is a bad state the explorer reached: the op sequence that
// reaches it from the initial state and the property it breaks.
type Violation struct {
	Ops []Op
	Err string
	// MinimizedFrom is the pre-shrinking op count, 0 when the violation
	// has not been minimized.
	MinimizedFrom int
}

// Result summarizes one exploration.
type Result struct {
	Config Config
	// Explored counts unique states reached (including the initial
	// state); Deduped counts successor states pruned because their
	// fingerprint was already seen.
	Explored, Deduped int
	// Exhausted reports that the frontier drained before the depth
	// bound — the count of reachable states is exact, not a bound.
	Exhausted bool
	// Violation is nil when every reached state satisfies every
	// property.
	Violation *Violation
}

// succ is one candidate successor produced by expanding a frontier
// state: the op applied, the fingerprint of the state it reached, and
// any property violation there.
type succ struct {
	op      Op
	applied bool
	fp      [16]byte
	err     string
}

// Explore runs the bounded BFS. The frontier at each depth is expanded
// in parallel across cfg.Workers harness-pool workers, but successors
// are deduplicated and violations selected in a sequential pass over
// (frontier order × alphabet order), so the result — including which of
// several same-depth violations is reported — is identical at any
// worker count. Exploration stops at the first (shallowest, then
// earliest in order) violation: every state on the frontier beyond it
// is one the real protocol should never enter, so deeper successors of
// a broken run carry no information.
//
// progress, when non-nil, receives one line per completed depth.
// Cancelling ctx aborts the search between expansions with ctx's error;
// cfg.JobTimeout (when positive) bounds each frontier expansion's wall
// time through the pool watchdog.
func Explore(ctx context.Context, cfg Config, progress io.Writer) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	res := Result{Config: cfg}
	alphabet := Alphabet(cfg)

	root := newInstance(cfg)
	rootFP, _ := root.fingerprint(nil)
	seen := map[[16]byte]struct{}{rootFP: {}}
	res.Explored = 1
	if err := checkState(cfg, root); err != nil {
		res.Violation = &Violation{Ops: nil, Err: err.Error()}
		return res, nil
	}

	type node struct{ ops []Op }
	frontier := []node{{ops: nil}}

	for depth := 0; depth < cfg.Depth && len(frontier) > 0; depth++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("mcheck: search aborted at depth %d: %w", depth, err)
		}
		pool := harness.NewPool(ctx, cfg.Workers, nil, "mcheck")
		pool.EnableWatchdog(cfg.JobTimeout)
		futs := make([]*harness.Future[[]succ], len(frontier))
		for i, n := range frontier {
			prefix := n.ops
			futs[i] = harness.Submit(pool, func(context.Context) []succ {
				return expand(cfg, alphabet, prefix)
			})
		}

		var next []node
		for i, fut := range futs {
			succs, err := fut.Result()
			if err != nil {
				// Cancellation and watchdog timeouts abort the whole
				// search: an incomplete frontier must not masquerade as
				// an exhausted one.
				if harness.IsCancelled(err) || harness.IsTimeout(err) {
					return res, fmt.Errorf("mcheck: search aborted at depth %d: %w", depth, err)
				}
				// A panic inside the engine is itself a counterexample:
				// record it against the op that triggered it. The panic
				// message is in err; the op is recovered by re-running
				// the expansion serially.
				op, msg := locatePanic(cfg, alphabet, frontier[i].ops, err)
				res.Violation = &Violation{Ops: append(append([]Op(nil), frontier[i].ops...), op), Err: msg}
				return res, nil
			}
			for _, s := range succs {
				if !s.applied {
					continue
				}
				if _, dup := seen[s.fp]; dup {
					res.Deduped++
					continue
				}
				seen[s.fp] = struct{}{}
				res.Explored++
				ops := append(append([]Op(nil), frontier[i].ops...), s.op)
				if s.err != "" {
					res.Violation = &Violation{Ops: ops, Err: s.err}
					return res, nil
				}
				next = append(next, node{ops: ops})
			}
		}
		if progress != nil {
			fmt.Fprintf(progress, "[check %s depth %d/%d: %d states, %d deduped, frontier %d]\n",
				cfg.Label(), depth+1, cfg.Depth, res.Explored, res.Deduped, len(next))
		}
		frontier = next
	}
	res.Exhausted = len(frontier) == 0
	return res, nil
}

// expand computes every successor of the state reached by prefix. Each
// op replays the prefix against a fresh system (deterministic
// re-execution is the state restore), applies the op, fingerprints, and
// checks properties.
func expand(cfg Config, alphabet []Op, prefix []Op) []succ {
	succs := make([]succ, len(alphabet))
	var buf []byte
	for i, op := range alphabet {
		in := replay(cfg, prefix)
		s := succ{op: op, applied: in.apply(op)}
		if s.applied {
			s.fp, buf = in.fingerprint(buf)
			if err := checkState(cfg, in); err != nil {
				s.err = err.Error()
			}
		}
		succs[i] = s
	}
	return succs
}

// locatePanic re-runs a panicked expansion one op at a time to identify
// which alphabet op crashed the engine, converting the recovered panic
// into an ordinary counterexample. poolErr supplies the message when
// the serial re-run (unexpectedly) survives.
func locatePanic(cfg Config, alphabet []Op, prefix []Op, poolErr error) (Op, string) {
	for _, op := range alphabet {
		var msg string
		func() {
			defer func() {
				if r := recover(); r != nil {
					msg = fmt.Sprintf("engine panic: %v", r)
				}
			}()
			in := replay(cfg, prefix)
			in.apply(op)
		}()
		if msg != "" {
			return op, msg
		}
	}
	return Op{}, fmt.Sprintf("engine panic (op not reidentified): %v", poolErr)
}
