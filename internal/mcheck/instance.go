package mcheck

import (
	"fmt"
	"hash/fnv"

	"repro/internal/coher"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// script feeds a core one scripted access at a time; the checker pushes
// an access then steps the core, so the stream never runs dry.
type script struct{ q []cpu.Access }

func (s *script) Next() (cpu.Access, bool) {
	if len(s.q) == 0 {
		return cpu.Access{}, false
	}
	a := s.q[0]
	s.q = s.q[1:]
	return a, true
}

// instance is one concrete system under exploration. State restore is
// deterministic re-execution: an instance is always (fresh system +
// replayed op prefix), never mutated back.
type instance struct {
	sys     *core.System
	scripts []*script
}

// newInstance builds a fresh system for cfg.
func newInstance(cfg Config) *instance {
	scripts := make([]*script, cfg.Cores)
	streams := make([]cpu.Stream, cfg.Cores)
	for i := range scripts {
		scripts[i] = &script{}
		streams[i] = scripts[i]
	}
	return &instance{sys: core.NewSystem(cfg.spec(), streams), scripts: scripts}
}

// apply executes one op and reports whether it was enabled. A disabled
// op (evicting a non-resident block, forcing a writeback with no housed
// entry, invalidating an untracked address) leaves the system provably
// unchanged, so the explorer skips its successor outright.
func (in *instance) apply(op Op) bool {
	addr := AddrOf(int(op.Addr))
	switch op.Kind {
	case OpRead:
		in.scripts[op.Core].q = append(in.scripts[op.Core].q, cpu.Access{Kind: cpu.Load, Addr: addr})
		in.sys.Cores[op.Core].Step()
		return true
	case OpWrite:
		in.scripts[op.Core].q = append(in.scripts[op.Core].q, cpu.Access{Kind: cpu.Store, Addr: addr})
		in.sys.Cores[op.Core].Step()
		return true
	case OpEvict:
		return in.sys.Cores[op.Core].EvictBlock(addr)
	case OpWBDE:
		return in.sys.Engine.ForceDEWriteback(in.now(), addr)
	case OpInval:
		return in.sys.Engine.InjectInvalidation(in.now(), addr)
	}
	panic("mcheck: unknown op kind")
}

// now returns a current cycle for engine-entry ops; the exact value
// only shifts timing, which the fingerprint excludes.
func (in *instance) now() sim.Cycle {
	var t sim.Cycle
	for _, c := range in.sys.Cores {
		if n := c.Now(); n > t {
			t = n
		}
	}
	return t
}

// replay builds the state reached by ops from a fresh system. Disabled
// ops in the sequence are no-ops, which keeps replay total — minimized
// traces stay valid even if shrinking disables a later op.
func replay(cfg Config, ops []Op) *instance {
	in := newInstance(cfg)
	for _, op := range ops {
		in.apply(op)
	}
	return in
}

// fingerprint hashes the system's canonical state into a dedup key,
// reusing buf across calls to avoid per-state allocations.
func (in *instance) fingerprint(buf []byte) ([16]byte, []byte) {
	buf = in.sys.AppendState(buf[:0])
	h := fnv.New128a()
	h.Write(buf)
	var fp [16]byte
	h.Sum(fp[:0])
	return fp, buf
}

// ReplayChecked replays ops on a fresh system for cfg, running the
// full property set after every op, and returns the number of enabled
// ops plus the final canonical state fingerprint. This is the seam the
// backend conformance suite drives: scripted scenarios instead of
// exhaustive search, with the same checks and the same fingerprint
// definition, so pinned fingerprints detect any semantic drift in a
// backend's protocol behavior. Because only one path is walked, the
// core bound is the relaxed MaxReplayCores, which lets wide-sharer
// scenarios cross the CoreSet word boundaries.
func ReplayChecked(cfg Config, ops []Op) (enabled int, fp [16]byte, err error) {
	if err := cfg.ValidateReplay(); err != nil {
		return 0, fp, err
	}
	in := newInstance(cfg)
	for i, op := range ops {
		if in.apply(op) {
			enabled++
		}
		if err := checkState(cfg, in); err != nil {
			return enabled, fp, fmt.Errorf("after op %d (%s): %w", i+1, op, err)
		}
	}
	fp, _ = in.fingerprint(nil)
	return enabled, fp, nil
}

// addrAlphabet lists the concrete addresses of cfg's alphabet, for the
// per-address cross-state checks.
func addrAlphabet(cfg Config) []coher.Addr {
	addrs := make([]coher.Addr, cfg.Addrs)
	for i := range addrs {
		addrs[i] = AddrOf(i)
	}
	return addrs
}
