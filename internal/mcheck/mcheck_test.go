package mcheck

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func quickCfg(pol core.DEPolicy) Config {
	return Config{Cores: 2, Addrs: 2, Depth: 4, Policy: pol, DirEntries: 0, Workers: 2}
}

// TestExploreCleanAllPolicies proves the zero-violation property over
// every interleaving up to the test depth, for each DE policy, on the
// harshest configuration (no sparse directory: every entry housed in
// the LLC).
func TestExploreCleanAllPolicies(t *testing.T) {
	depth := 4
	if !testing.Short() {
		depth = 6
	}
	for _, pol := range []core.DEPolicy{core.SpillAll, core.FPSS, core.FuseAll} {
		cfg := quickCfg(pol)
		cfg.Depth = depth
		res, err := Explore(context.Background(), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("%s: violation after %q: %s",
				PolicyName(pol), FormatOps(res.Violation.Ops), res.Violation.Err)
		}
		if res.Explored < 100 {
			t.Fatalf("%s: only %d states explored; the alphabet is not driving the engine", PolicyName(pol), res.Explored)
		}
	}
}

// TestExploreDirectoryHousing re-runs with a 1-entry sparse directory,
// which forces the directory-full → LLC-housing handoff (the second
// address can never allocate an on-chip entry).
func TestExploreDirectoryHousing(t *testing.T) {
	cfg := quickCfg(core.FPSS)
	cfg.DirEntries = 1
	res, err := Explore(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation after %q: %s", FormatOps(res.Violation.Ops), res.Violation.Err)
	}
}

// TestExploreDeterministicAcrossWorkers pins the acceptance criterion
// that exploration is byte-identical between one worker and many:
// identical Result (counts, violation) at workers 1, 2, and 8.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	for _, broken := range []bool{false, true} {
		var want *Result
		for _, workers := range []int{1, 2, 8} {
			cfg := quickCfg(core.SpillAll)
			cfg.Broken = broken
			cfg.Workers = workers
			res, err := Explore(context.Background(), cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			res.Config.Workers = 0 // normalize the one field allowed to differ
			if want == nil {
				want = &res
				continue
			}
			if !reflect.DeepEqual(*want, res) {
				t.Fatalf("broken=%v: workers=%d diverged:\n  want %+v\n  got  %+v", broken, workers, *want, res)
			}
		}
		if broken && want.Violation == nil {
			t.Fatal("broken variant explored clean")
		}
	}
}

// TestBrokenRecoveryYieldsCounterexample validates the checker against
// a known-bad protocol variant: with live PutDE messages dropped
// (faults.BrokenRecoveryHome), exploration at CI smoke depth must find
// a violation, and minimization must shrink it to a locally minimal
// trace that still replays to the same violation.
func TestBrokenRecoveryYieldsCounterexample(t *testing.T) {
	cfg := quickCfg(core.SpillAll)
	cfg.Broken = true
	cfg.Depth = 6
	res, err := Explore(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("no violation found in the broken variant")
	}
	min := Minimize(cfg, *res.Violation)
	if len(min.Ops) == 0 || len(min.Ops) > len(res.Violation.Ops) {
		t.Fatalf("minimization grew the trace: %d -> %d ops", len(res.Violation.Ops), len(min.Ops))
	}
	// Locally minimal: dropping any single remaining op runs clean.
	for i := range min.Ops {
		candidate := append(append([]Op(nil), min.Ops[:i]...), min.Ops[i+1:]...)
		if v := violates(cfg, candidate); v != nil {
			t.Fatalf("trace not minimal: still violates without op %d (%s)", i, min.Ops[i])
		}
	}
	// The recorded violation is what a replay reproduces.
	got := violates(cfg, min.Ops)
	if got == nil || got.Err != min.Err {
		t.Fatalf("minimized trace does not reproduce its violation: %+v vs %q", got, min.Err)
	}
}

// TestTraceRoundTrip checks the counterexample codec: encode a
// minimized violation, decode it, and replay to the identical
// violation.
func TestTraceRoundTrip(t *testing.T) {
	cfg := quickCfg(core.SpillAll)
	cfg.Broken = true
	cfg.Depth = 6
	res, err := Explore(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("no violation to round-trip")
	}
	min := Minimize(cfg, *res.Violation)

	var buf bytes.Buffer
	if err := NewTrace(cfg, min).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if v.Err != min.Err {
		t.Fatalf("replayed violation %q, want %q", v.Err, min.Err)
	}
}

// TestDecodeTraceRejects covers the codec's validation paths.
func TestDecodeTraceRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"garbage", "not json", "not a counterexample trace"},
		{"version", `{"version":99,"cores":2,"addrs":2,"policy":"fpss","ops":[],"violation":"x"}`, "trace version 99, this build reads 1"},
		{"unknown-field", `{"version":1,"cores":2,"addrs":2,"policy":"fpss","ops":[],"violation":"x","extra":1}`, "decoding trace"},
		{"policy", `{"version":1,"cores":2,"addrs":2,"policy":"zesty","ops":[],"violation":"x"}`, "unknown DE policy"},
		{"op-kind", `{"version":1,"cores":2,"addrs":2,"policy":"fpss","ops":[{"op":"teleport","addr":0}],"violation":"x"}`, "unknown op kind"},
		{"core-range", `{"version":1,"cores":2,"addrs":2,"policy":"fpss","ops":[{"op":"read","core":7,"addr":0}],"violation":"x"}`, "out of range"},
		{"addr-range", `{"version":1,"cores":2,"addrs":2,"policy":"fpss","ops":[{"op":"read","core":0,"addr":3}],"violation":"x"}`, "out of range"},
		{"cores-range", `{"version":1,"cores":9,"addrs":2,"policy":"fpss","ops":[],"violation":"x"}`, "cores must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeTrace(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestConfigValidate covers the config envelope.
func TestConfigValidate(t *testing.T) {
	good := quickCfg(core.FPSS)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Cores: 1, Addrs: 2, Depth: 4, Policy: core.FPSS, Workers: 1},
		{Cores: 2, Addrs: 0, Depth: 4, Policy: core.FPSS, Workers: 1},
		{Cores: 2, Addrs: 2, Depth: 0, Policy: core.FPSS, Workers: 1},
		{Cores: 2, Addrs: 2, Depth: 4, Policy: core.FPSS, Workers: 0},
		{Cores: 2, Addrs: 2, Depth: 4, Policy: core.DEPolicy(42), Workers: 1},
		{Cores: 2, Addrs: 2, Depth: 4, Policy: core.FPSS, DirEntries: -1, Workers: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

// TestFingerprintExcludesTiming: two different op orders that converge
// on the same protocol state must fingerprint identically even though
// their clocks differ — this is what makes dedup across interleavings
// sound (and effective).
func TestFingerprintExcludesTiming(t *testing.T) {
	cfg := quickCfg(core.SpillAll)
	// Same multiset of reads, both ending with the same recency order
	// (core0's read of a0 last in both), different interleaving of the
	// independent a1 access so the clocks differ.
	a := replay(cfg, []Op{
		{Kind: OpRead, Core: 1, Addr: 1},
		{Kind: OpRead, Core: 0, Addr: 0},
	})
	b := replay(cfg, []Op{
		{Kind: OpRead, Core: 1, Addr: 1},
		{Kind: OpRead, Core: 1, Addr: 1},
		{Kind: OpRead, Core: 0, Addr: 0},
	})
	fpA, _ := a.fingerprint(nil)
	fpB, _ := b.fingerprint(nil)
	if fpA != fpB {
		t.Fatal("states that differ only in timing/recency-equivalent history fingerprint differently")
	}
	// And a state with different protocol content must differ.
	c := replay(cfg, []Op{{Kind: OpWrite, Core: 0, Addr: 0}})
	fpC, _ := c.fingerprint(nil)
	if fpC == fpA {
		t.Fatal("distinct protocol states share a fingerprint")
	}
}
