package mcheck

// Counterexample minimization: BFS already returns a shortest-length
// witness to the *first* violation it meets in exploration order, but
// that sequence can still carry ops that only pad the interleaving.
// Minimize shrinks it greedily — truncate to the first violating step,
// then repeatedly drop any single op whose removal keeps the trace
// violating — to a locally minimal trace: removing any one remaining op
// yields a clean run. The shrunken trace may violate a *different*
// property than the original; what is preserved is that it is a real
// counterexample, and its recorded violation always matches its replay.

// violates replays ops, checking properties after every step, and
// returns the first violation (with its step prefix) if any. Engine
// panics count as violations.
func violates(cfg Config, ops []Op) (v *Violation) {
	in := newInstance(cfg)
	for i, op := range ops {
		applied := func() (applied bool) {
			defer func() {
				if r := recover(); r != nil {
					v = &Violation{Ops: append([]Op(nil), ops[:i+1]...), Err: panicString(r)}
				}
			}()
			return in.apply(op)
		}()
		if v != nil {
			return v
		}
		if !applied {
			continue
		}
		if err := checkState(cfg, in); err != nil {
			return &Violation{Ops: append([]Op(nil), ops[:i+1]...), Err: err.Error()}
		}
	}
	return nil
}

// Minimize shrinks a violation to a locally minimal replayable trace.
func Minimize(cfg Config, v Violation) Violation {
	orig := len(v.Ops)
	// Truncate to the first violating step (also re-derives Err from a
	// replay, so the result is self-consistent even if the input came
	// from a file).
	cur := violates(cfg, v.Ops)
	if cur == nil {
		// Not actually a violation under this config; return the input
		// unshrunk rather than inventing one.
		return v
	}
	// Greedy op-drop to fixpoint.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Ops); i++ {
			candidate := make([]Op, 0, len(cur.Ops)-1)
			candidate = append(candidate, cur.Ops[:i]...)
			candidate = append(candidate, cur.Ops[i+1:]...)
			if got := violates(cfg, candidate); got != nil {
				cur = got
				changed = true
				i--
			}
		}
	}
	cur.MinimizedFrom = orig
	return *cur
}

func panicString(r interface{}) string {
	if s, ok := r.(string); ok {
		return "engine panic: " + s
	}
	if e, ok := r.(error); ok {
		return "engine panic: " + e.Error()
	}
	return "engine panic"
}
