package mcheck

import (
	"fmt"
	"strings"
)

// OpKind enumerates the bounded op alphabet. Read/Write/Evict act
// through a chosen core's private hierarchy; WBDE and Inval act through
// the engine's fault seams (core.ForceDEWriteback, InjectInvalidation)
// and model the externally induced flows — DE-eviction writebacks and
// cross-socket invalidations — a single-socket instance cannot generate
// on its own.
type OpKind uint8

const (
	OpRead OpKind = iota
	OpWrite
	OpEvict
	OpWBDE
	OpInval
	numOpKinds
)

var opKindNames = [numOpKinds]string{"read", "write", "evict", "wbde", "inval"}

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// ParseOpKind is the inverse of String.
func ParseOpKind(s string) (OpKind, error) {
	for k, name := range opKindNames {
		if strings.EqualFold(s, name) {
			return OpKind(k), nil
		}
	}
	return 0, fmt.Errorf("mcheck: unknown op kind %q", s)
}

// Op is one alphabet symbol: an action, the core performing it (unused
// for WBDE/Inval, which act socket-wide), and the alphabet index of the
// target address.
type Op struct {
	Kind OpKind
	Core uint8
	Addr uint8
}

// String renders the op compactly: "read c0 a1", "wbde a0".
func (o Op) String() string {
	if o.Kind == OpWBDE || o.Kind == OpInval {
		return fmt.Sprintf("%s a%d", o.Kind, o.Addr)
	}
	return fmt.Sprintf("%s c%d a%d", o.Kind, o.Core, o.Addr)
}

// FormatOps renders an op sequence on one line.
func FormatOps(ops []Op) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, "; ")
}

// Alphabet enumerates the config's op alphabet in its canonical order:
// per address, each core's read/write/evict, then the socket-wide WBDE
// and Inval. Exploration order (and therefore which of several
// same-depth violations is reported) follows this order.
func Alphabet(cfg Config) []Op {
	var ops []Op
	for a := 0; a < cfg.Addrs; a++ {
		for c := 0; c < cfg.Cores; c++ {
			ops = append(ops,
				Op{Kind: OpRead, Core: uint8(c), Addr: uint8(a)},
				Op{Kind: OpWrite, Core: uint8(c), Addr: uint8(a)},
				Op{Kind: OpEvict, Core: uint8(c), Addr: uint8(a)},
			)
		}
		ops = append(ops,
			Op{Kind: OpWBDE, Addr: uint8(a)},
			Op{Kind: OpInval, Addr: uint8(a)},
		)
	}
	return ops
}
