package mcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/backend"
)

// TraceVersion stamps counterexample files; bump on incompatible
// format changes.
const TraceVersion = 1

// Trace is a counterexample on disk: enough configuration to rebuild
// the exact system, the op sequence, and the violation the final op
// triggers. The format is JSON — counterexamples exist to be read by
// humans and replayed by `zerodev check -replay`.
type Trace struct {
	Version int `json:"version"`
	Cores   int `json:"cores"`
	Addrs   int `json:"addrs"`
	// Backend names the protocol backend; omitted for zerodev so
	// pre-backend traces stay valid and byte-identical.
	Backend    string `json:"backend,omitempty"`
	Policy     string `json:"policy"`
	DirEntries int    `json:"dir_entries"`
	Broken     bool   `json:"broken,omitempty"`
	// AssertZeroDEV records that the zero-DEV property was forced on a
	// backend that does not claim it (the differentiator mode).
	AssertZeroDEV bool      `json:"assert_zero_dev,omitempty"`
	Ops           []TraceOp `json:"ops"`
	// Violation is the property error replaying Ops must reproduce.
	Violation string `json:"violation"`
	// MinimizedFrom records the pre-shrinking op count, for reports.
	MinimizedFrom int `json:"minimized_from,omitempty"`
}

// TraceOp is one op in file form.
type TraceOp struct {
	Op   string `json:"op"`
	Core int    `json:"core,omitempty"`
	Addr int    `json:"addr"`
}

// NewTrace packages a violation for writing.
func NewTrace(cfg Config, v Violation) Trace {
	tr := Trace{
		Version:       TraceVersion,
		Cores:         cfg.Cores,
		Addrs:         cfg.Addrs,
		Policy:        PolicyName(cfg.Policy),
		DirEntries:    cfg.DirEntries,
		Broken:        cfg.Broken,
		AssertZeroDEV: cfg.AssertZeroDEV,
		Violation:     v.Err,
		MinimizedFrom: v.MinimizedFrom,
	}
	if cfg.backendID() != backend.ZeroDEV {
		tr.Backend = string(cfg.backendID())
	}
	for _, op := range v.Ops {
		tr.Ops = append(tr.Ops, TraceOp{Op: op.Kind.String(), Core: int(op.Core), Addr: int(op.Addr)})
	}
	return tr
}

// Encode writes the trace as indented JSON.
func (tr Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// DecodeTrace reads and validates a counterexample file. The version is
// checked first with a loose decode, so a trace from a newer format is
// refused with a clear version error rather than whatever unknown-field
// error the strict decode would hit first.
func DecodeTrace(r io.Reader) (Trace, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return Trace{}, fmt.Errorf("mcheck: reading trace: %w", err)
	}
	var head struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(buf, &head); err != nil {
		return Trace{}, fmt.Errorf("mcheck: not a counterexample trace: %w", err)
	}
	if head.Version != TraceVersion {
		return Trace{}, fmt.Errorf("mcheck: trace version %d, this build reads %d", head.Version, TraceVersion)
	}
	var tr Trace
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tr); err != nil {
		return Trace{}, fmt.Errorf("mcheck: decoding trace: %w", err)
	}
	if _, _, err := tr.decode(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}

// decode converts the file form back to a Config and op sequence.
func (tr Trace) decode() (Config, []Op, error) {
	pol, err := ParsePolicy(tr.Policy)
	if err != nil {
		return Config{}, nil, err
	}
	id, err := backend.Parse(tr.Backend)
	if err != nil {
		return Config{}, nil, fmt.Errorf("mcheck: %w", err)
	}
	cfg := Config{
		Cores:         tr.Cores,
		Addrs:         tr.Addrs,
		Depth:         max(1, len(tr.Ops)),
		Backend:       id,
		Policy:        pol,
		AssertZeroDEV: tr.AssertZeroDEV,
		DirEntries:    tr.DirEntries,
		Broken:        tr.Broken,
		Workers:       1,
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, nil, err
	}
	ops := make([]Op, len(tr.Ops))
	for i, to := range tr.Ops {
		k, err := ParseOpKind(to.Op)
		if err != nil {
			return Config{}, nil, fmt.Errorf("mcheck: op %d: %w", i, err)
		}
		if to.Core < 0 || to.Core >= cfg.Cores {
			return Config{}, nil, fmt.Errorf("mcheck: op %d: core %d out of range", i, to.Core)
		}
		if to.Addr < 0 || to.Addr >= cfg.Addrs {
			return Config{}, nil, fmt.Errorf("mcheck: op %d: addr %d out of range", i, to.Addr)
		}
		ops[i] = Op{Kind: k, Core: uint8(to.Core), Addr: uint8(to.Addr)}
	}
	return cfg, ops, nil
}

// Replay re-runs a decoded trace and returns the violation it
// reproduces. It fails when the trace runs clean or reproduces a
// different violation than the file records — either means the trace no
// longer describes this build's behavior.
func Replay(tr Trace) (Violation, error) {
	cfg, ops, err := tr.decode()
	if err != nil {
		return Violation{}, err
	}
	v := violates(cfg, ops)
	if v == nil {
		return Violation{}, fmt.Errorf("mcheck: trace replayed clean; recorded violation was: %s", tr.Violation)
	}
	if v.Err != tr.Violation {
		return *v, fmt.Errorf("mcheck: replay reproduced a different violation\n  recorded: %s\n  replayed: %s", tr.Violation, v.Err)
	}
	return *v, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
