// Package mem models home physical memory *metadata* for the ZeroDEV
// protocol. Block data values never matter to the simulation, so memory
// stores only what the protocol can observe: whether a block is
// corrupted (overwritten by evicted directory entries), the per-socket
// directory-entry segments housed in a corrupted block (paper Fig. 13),
// and — for the constant-overhead socket-directory scheme — the DirEvict
// bit and the socket-level entry partition (paper §III-D5).
package mem

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/coher"
)

// ErrUnrepresentable is returned by New when no segment format — full
// map or compressed — can fit one directory entry per socket plus the
// socket-level partition into a 64-byte block for the requested shape.
var ErrUnrepresentable = errors.New("mem: home-memory segments cannot represent the system shape")

// Memory is the home-memory metadata store for one home node. Blocks not
// present in the map are ordinary, uncorrupted data blocks.
type Memory struct {
	sockets        int
	coresPerSocket int
	// budget is the per-segment holder bit budget when the full-map
	// format does not fit (wide sockets); 0 selects the exact full-map
	// segments of the classic shapes, whose behavior and fingerprints
	// must not change.
	budget int
	blocks map[coher.Addr]*BlockMeta

	highWater    int
	coarseWrites uint64
}

// BlockMeta is the protocol-visible state of one home memory block.
type BlockMeta struct {
	// Segments holds the evicted intra-socket directory entry per socket.
	// A segment with State DirInvalid is empty. The slice is allocated
	// lazily on the first segment write, so DirEvict-only blocks carry no
	// per-socket storage; use len-checked access when reading.
	Segments []coher.Entry
	// DataLost records that the memory copy of the block has been
	// overwritten by at least one directory-entry writeback and has not
	// yet been restored by a full-block writeback. A block can have
	// DataLost set with all segments empty: the entries were extracted
	// back on-chip, but the data is still only available from private
	// caches.
	DataLost bool
	// DirEvict records that the block's socket-level partition holds an
	// evicted socket-level directory entry (scheme 2 of §III-D5).
	DirEvict bool
	// SocketEntry is the content of the socket-level partition, valid
	// only when DirEvict is set.
	SocketEntry coher.SocketEntry
}

// seg reads one socket's segment without forcing allocation.
func (b *BlockMeta) seg(socket int) coher.Entry {
	if socket < len(b.Segments) {
		return b.Segments[socket]
	}
	return coher.Entry{}
}

// New constructs home-memory metadata for a system of the given shape.
// With full-map segments the paper's capacity bound applies: an
// M-socket system with N cores per socket must satisfy
// M <= ⌊510/(N+2)⌋ (the socket-level partition is always reserved).
// Wider shapes fall back to compressed segments (§III-D "a hybrid of
// limited-pointer and coarse-vector formats"): each socket gets a
// holder budget of ⌊510/M⌋−4 bits, entries that exceed it decode to an
// imprecise superset, and the shape is rejected with ErrUnrepresentable
// when the budget cannot hold even one core pointer.
func New(sockets, coresPerSocket int) (*Memory, error) {
	if sockets <= 0 || coresPerSocket <= 0 {
		return nil, fmt.Errorf("mem: non-positive system shape")
	}
	m := &Memory{
		sockets:        sockets,
		coresPerSocket: coresPerSocket,
		blocks:         make(map[coher.Addr]*BlockMeta),
	}
	if sockets <= coher.MaxSocketsWithSocketPartition(coresPerSocket) {
		return m, nil // exact full-map segments, classic behavior
	}
	budget := (coher.BlockBits-2)/sockets - 4
	if budget < ptrBits(coresPerSocket) || coher.MaxSocketsCompressed(budget) < sockets {
		return nil, fmt.Errorf("%w: %d sockets × %d cores/socket leaves a %d-bit holder budget (one pointer needs %d bits)",
			ErrUnrepresentable, sockets, coresPerSocket, budget, ptrBits(coresPerSocket))
	}
	m.budget = budget
	return m, nil
}

// ptrBits is the width of one core pointer for an N-core socket.
func ptrBits(cores int) int {
	b := 0
	for 1<<b < cores {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// MustNew is New that panics on error.
func MustNew(sockets, coresPerSocket int) *Memory {
	m, err := New(sockets, coresPerSocket)
	if err != nil {
		panic(err)
	}
	return m
}

// SegmentBudget reports the per-socket holder bit budget, 0 when the
// exact full-map format is in use.
func (m *Memory) SegmentBudget() int { return m.budget }

func (m *Memory) meta(addr coher.Addr) *BlockMeta {
	b := m.blocks[addr]
	if b == nil {
		b = &BlockMeta{}
		m.blocks[addr] = b
		if len(m.blocks) > m.highWater {
			m.highWater = len(m.blocks)
		}
	}
	return b
}

// Corrupted reports whether the block's memory copy is invalid because
// it was overwritten by a directory-entry writeback and has not been
// restored by a full-block writeback since.
func (m *Memory) Corrupted(addr coher.Addr) bool {
	b := m.blocks[addr]
	return b != nil && b.DataLost
}

// CorruptedSockets returns the set of sockets with a live segment in the
// block.
func (m *Memory) CorruptedSockets(addr coher.Addr) coher.SocketSet {
	var v coher.SocketSet
	b := m.blocks[addr]
	if b == nil {
		return v
	}
	for s, e := range b.Segments {
		if e.Live() {
			v.Add(s)
		}
	}
	return v
}

// WriteSegment stores the evicted directory entry of the given socket in
// the block (the WB_DE flow). The entry must be live and stable. Wide
// sockets store the entry through the compressed hybrid format: owned
// entries and small sharer sets stay precise, larger sets coarsen to a
// superset marked Imprecise that readers reconcile against actual core
// state.
func (m *Memory) WriteSegment(addr coher.Addr, socket int, e coher.Entry) error {
	if !e.Live() {
		return fmt.Errorf("mem: writing a dead directory entry to %#x", uint64(addr))
	}
	if e.Busy {
		return fmt.Errorf("mem: writing a busy directory entry to %#x", uint64(addr))
	}
	if socket < 0 || socket >= m.sockets {
		return fmt.Errorf("mem: socket %d out of range", socket)
	}
	if m.budget > 0 {
		c, err := coher.Compress(e, m.coresPerSocket, m.budget)
		if err != nil {
			return fmt.Errorf("mem: segment for %#x: %w", uint64(addr), err)
		}
		if !c.Precise() {
			// Coarse only ever triggers on sharer sets: an owned entry has
			// one holder, which always fits the limited-pointer format.
			e.Sharers = c.Holders()
			e.Imprecise = true
			m.coarseWrites++
		}
	}
	b := m.meta(addr)
	if b.Segments == nil {
		b.Segments = make([]coher.Entry, m.sockets)
	}
	b.Segments[socket] = e
	b.DataLost = true
	return nil
}

// ReadSegment retrieves (without clearing) the directory entry a socket
// previously wrote back. ok is false when the segment is empty.
func (m *Memory) ReadSegment(addr coher.Addr, socket int) (coher.Entry, bool) {
	b := m.blocks[addr]
	if b == nil {
		return coher.Entry{}, false
	}
	e := b.seg(socket)
	return e, e.Live()
}

// ClearSegment frees a socket's segment (entry consumed or block holder
// set went empty).
func (m *Memory) ClearSegment(addr coher.Addr, socket int) {
	if b := m.blocks[addr]; b != nil {
		if socket < len(b.Segments) {
			b.Segments[socket] = coher.Entry{}
		}
		m.gc(addr, b)
	}
}

// Restore overwrites the block with clean data, clearing all segments
// and the data-lost flag (a full-block writeback reached memory, e.g.
// the system-wide last copy retrieved per §III-D4 or an ordinary PutM
// that flowed through to DRAM).
func (m *Memory) Restore(addr coher.Addr) {
	if b := m.blocks[addr]; b != nil {
		b.Segments = nil
		b.DataLost = false
		m.gc(addr, b)
	}
}

// SetDirEvict stores an evicted socket-level directory entry in the
// block's socket partition and sets the DirEvict bit.
func (m *Memory) SetDirEvict(addr coher.Addr, e coher.SocketEntry) {
	b := m.meta(addr)
	b.DirEvict = true
	b.SocketEntry = e
}

// DirEvict reads the DirEvict bit and, when set, the stored socket-level
// entry.
func (m *Memory) DirEvict(addr coher.Addr) (coher.SocketEntry, bool) {
	b := m.blocks[addr]
	if b == nil || !b.DirEvict {
		return coher.SocketEntry{}, false
	}
	return b.SocketEntry, true
}

// ClearDirEvict clears the DirEvict bit.
func (m *Memory) ClearDirEvict(addr coher.Addr) {
	if b := m.blocks[addr]; b != nil {
		b.DirEvict = false
		b.SocketEntry = coher.SocketEntry{}
		m.gc(addr, b)
	}
}

// gc drops metadata for blocks that have returned to the ordinary state,
// keeping the map proportional to the corrupted population (which the
// paper measures as tiny).
func (m *Memory) gc(addr coher.Addr, b *BlockMeta) {
	if b.DirEvict || b.DataLost {
		return
	}
	for _, s := range b.Segments {
		if s.Live() {
			return
		}
	}
	delete(m.blocks, addr)
}

// CorruptedCount returns the number of blocks currently corrupted, used
// by instrumentation.
func (m *Memory) CorruptedCount() int {
	n := 0
	for addr := range m.blocks {
		if m.Corrupted(addr) {
			n++
		}
	}
	return n
}

// MetaLive returns the number of blocks currently carrying metadata
// (corrupted or DirEvict).
func (m *Memory) MetaLive() int { return len(m.blocks) }

// MetaHighWater returns the largest metadata population ever reached —
// the ceiling the retire-on-last-copy gc keeps bounded, asserted by the
// scale-frontier memory audits.
func (m *Memory) MetaHighWater() int { return m.highWater }

// CoarseSegmentWrites returns how many segment writebacks lost precision
// to the coarse-vector format (always 0 at full-map shapes).
func (m *Memory) CoarseSegmentWrites() uint64 { return m.coarseWrites }

// ForEachCorrupted visits every corrupted block, for invariant checks.
func (m *Memory) ForEachCorrupted(fn func(addr coher.Addr, b *BlockMeta)) {
	for addr, b := range m.blocks {
		if b.DataLost {
			fn(addr, b)
		}
	}
}

// AppendState appends the home-memory metadata's protocol-visible state
// to buf for model-checker fingerprinting: corrupted/dir-evict blocks
// in ascending address order, each with its data-lost flag, per-socket
// segments (canonical entry form), and socket partition. Blocks absent
// from the map are ordinary and contribute no bytes — gc keeps the map
// canonical in that respect. Lazily absent Segments slices fingerprint
// exactly like all-dead segments.
func (m *Memory) AppendState(buf []byte) []byte {
	addrs := make([]coher.Addr, 0, len(m.blocks))
	for a := range m.blocks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		b := m.blocks[a]
		buf = append(buf,
			byte(a), byte(a>>8), byte(a>>16), byte(a>>24),
			byte(a>>32), byte(a>>40), byte(a>>48), byte(a>>56))
		var flags byte
		if b.DataLost {
			flags |= 1
		}
		if b.DirEvict {
			flags |= 2
		}
		buf = append(buf, flags)
		for s := 0; s < m.sockets; s++ {
			seg := b.seg(s)
			buf = seg.AppendCanonical(buf)
		}
		if b.DirEvict {
			buf = append(buf, byte(b.SocketEntry.State), byte(b.SocketEntry.Owner))
			s := uint64(b.SocketEntry.Sharers)
			buf = append(buf,
				byte(s), byte(s>>8), byte(s>>16), byte(s>>24),
				byte(s>>32), byte(s>>40), byte(s>>48), byte(s>>56))
		}
	}
	return buf
}
