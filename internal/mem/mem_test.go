package mem

import (
	"errors"
	"testing"

	"repro/internal/coher"
)

func owned(c coher.CoreID) coher.Entry {
	return coher.Entry{State: coher.DirOwned, Owner: c}
}

func TestSegmentLifecycle(t *testing.T) {
	m := MustNew(4, 8)
	addr := coher.Addr(0x100)
	if m.Corrupted(addr) {
		t.Fatal("fresh block corrupted")
	}
	if err := m.WriteSegment(addr, 1, owned(3)); err != nil {
		t.Fatal(err)
	}
	if !m.Corrupted(addr) {
		t.Fatal("block must be corrupted after WB_DE")
	}
	e, ok := m.ReadSegment(addr, 1)
	if !ok || e.Owner != 3 {
		t.Fatalf("segment = %+v ok=%v", e, ok)
	}
	if _, ok := m.ReadSegment(addr, 2); ok {
		t.Fatal("other sockets' segments must be empty")
	}
	// Extracting the entry leaves the data lost.
	m.ClearSegment(addr, 1)
	if !m.Corrupted(addr) {
		t.Fatal("data must remain lost after segment extraction")
	}
	if got := m.CorruptedSockets(addr); !got.Empty() {
		t.Fatalf("corrupted sockets = %v", got)
	}
	// Only a full-block writeback restores the memory copy.
	m.Restore(addr)
	if m.Corrupted(addr) {
		t.Fatal("restore failed")
	}
	if m.CorruptedCount() != 0 {
		t.Fatal("metadata not garbage-collected")
	}
}

func TestWriteSegmentValidation(t *testing.T) {
	m := MustNew(2, 8)
	if err := m.WriteSegment(1, 0, coher.Entry{}); err == nil {
		t.Fatal("dead entry accepted")
	}
	if err := m.WriteSegment(1, 0, coher.Entry{State: coher.DirOwned, Busy: true}); err == nil {
		t.Fatal("busy entry accepted")
	}
	if err := m.WriteSegment(1, 5, owned(0)); err == nil {
		t.Fatal("out-of-range socket accepted")
	}
}

func TestDirEvictBit(t *testing.T) {
	m := MustNew(4, 8)
	addr := coher.Addr(0x42)
	if _, ok := m.DirEvict(addr); ok {
		t.Fatal("fresh block has DirEvict set")
	}
	se := coher.SocketEntry{State: coher.SockShared}
	se.Sharers.Add(2)
	m.SetDirEvict(addr, se)
	got, ok := m.DirEvict(addr)
	if !ok || !got.Sharers.Contains(2) {
		t.Fatalf("DirEvict = %+v ok=%v", got, ok)
	}
	m.ClearDirEvict(addr)
	if _, ok := m.DirEvict(addr); ok {
		t.Fatal("ClearDirEvict failed")
	}
}

func TestSocketBoundEnforced(t *testing.T) {
	// 128 cores/socket: at most 3 sockets fit the full-map partitioning.
	m, err := New(3, 128)
	if err != nil {
		t.Fatalf("3 sockets of 128 cores must fit: %v", err)
	}
	if m.SegmentBudget() != 0 {
		t.Fatalf("full-map shape got compressed budget %d", m.SegmentBudget())
	}
	// Beyond the full-map bound the compressed hybrid takes over:
	// 4 sockets of 128 cores get ⌊510/4⌋−4 = 123 holder bits each.
	m, err = New(4, 128)
	if err != nil {
		t.Fatalf("4 sockets of 128 cores must fall back to compressed segments: %v", err)
	}
	if got := m.SegmentBudget(); got != 123 {
		t.Fatalf("compressed budget = %d, want 123", got)
	}
	// Shapes whose budget cannot hold one core pointer are refused with
	// the named error.
	if _, err := New(64, 256); !errorsIs(err, ErrUnrepresentable) {
		t.Fatalf("64×256 err = %v, want ErrUnrepresentable", err)
	}
}

func errorsIs(err, target error) bool { return err != nil && errors.Is(err, target) }

func TestCompressedSegmentsImprecise(t *testing.T) {
	// 16 sockets × 64 cores: budget ⌊510/16⌋−4 = 27 bits, so up to four
	// 6-bit pointers stay precise and wider sharer sets coarsen.
	m := MustNew(16, 64)
	if got := m.SegmentBudget(); got != 27 {
		t.Fatalf("budget = %d, want 27", got)
	}
	addr := coher.Addr(0x200)

	// Owned entries are always precise.
	if err := m.WriteSegment(addr, 3, owned(63)); err != nil {
		t.Fatal(err)
	}
	e, ok := m.ReadSegment(addr, 3)
	if !ok || e.Imprecise || e.Owner != 63 {
		t.Fatalf("owned segment = %+v ok=%v", e, ok)
	}

	// Four sharers fit the limited-pointer format exactly.
	var small coher.Entry
	small.State = coher.DirShared
	for _, c := range []coher.CoreID{0, 17, 40, 63} {
		small.Sharers.Add(c)
	}
	if err := m.WriteSegment(addr, 4, small); err != nil {
		t.Fatal(err)
	}
	e, _ = m.ReadSegment(addr, 4)
	if e.Imprecise || !e.Sharers.Equal(small.Sharers) {
		t.Fatalf("limited-pointer segment = %+v", e)
	}
	if m.CoarseSegmentWrites() != 0 {
		t.Fatal("precise writes counted as coarse")
	}

	// Ten sharers exceed the pointer budget: the decode is a marked
	// superset.
	var wide coher.Entry
	wide.State = coher.DirShared
	for c := coher.CoreID(0); c < 60; c += 6 {
		wide.Sharers.Add(c)
	}
	if err := m.WriteSegment(addr, 5, wide); err != nil {
		t.Fatal(err)
	}
	e, _ = m.ReadSegment(addr, 5)
	if !e.Imprecise || !e.Sharers.Superset(wide.Sharers) {
		t.Fatalf("coarse segment = %+v, want imprecise superset of %v", e, wide.Sharers)
	}
	if m.CoarseSegmentWrites() != 1 {
		t.Fatalf("coarse writes = %d, want 1", m.CoarseSegmentWrites())
	}
}

func TestMetaHighWaterAndRetire(t *testing.T) {
	m := MustNew(2, 8)
	for i := 0; i < 10; i++ {
		addr := coher.Addr(0x1000 + i*64)
		if err := m.WriteSegment(addr, 0, owned(1)); err != nil {
			t.Fatal(err)
		}
		m.Restore(addr) // last copy retires the metadata
		if m.MetaLive() != 0 {
			t.Fatalf("block %d not retired, live=%d", i, m.MetaLive())
		}
	}
	if m.MetaHighWater() != 1 {
		t.Fatalf("high water = %d, want 1 (retire-on-last-copy)", m.MetaHighWater())
	}
}

func TestForEachCorrupted(t *testing.T) {
	m := MustNew(2, 8)
	_ = m.WriteSegment(1, 0, owned(1))
	_ = m.WriteSegment(2, 1, owned(2))
	m.Restore(2)
	n := 0
	m.ForEachCorrupted(func(addr coher.Addr, b *BlockMeta) { n++ })
	if n != 1 {
		t.Fatalf("corrupted count = %d, want 1", n)
	}
}
