package mem

import (
	"testing"

	"repro/internal/coher"
)

func owned(c coher.CoreID) coher.Entry {
	return coher.Entry{State: coher.DirOwned, Owner: c}
}

func TestSegmentLifecycle(t *testing.T) {
	m := MustNew(4, 8)
	addr := coher.Addr(0x100)
	if m.Corrupted(addr) {
		t.Fatal("fresh block corrupted")
	}
	if err := m.WriteSegment(addr, 1, owned(3)); err != nil {
		t.Fatal(err)
	}
	if !m.Corrupted(addr) {
		t.Fatal("block must be corrupted after WB_DE")
	}
	e, ok := m.ReadSegment(addr, 1)
	if !ok || e.Owner != 3 {
		t.Fatalf("segment = %+v ok=%v", e, ok)
	}
	if _, ok := m.ReadSegment(addr, 2); ok {
		t.Fatal("other sockets' segments must be empty")
	}
	// Extracting the entry leaves the data lost.
	m.ClearSegment(addr, 1)
	if !m.Corrupted(addr) {
		t.Fatal("data must remain lost after segment extraction")
	}
	if got := m.CorruptedSockets(addr); !got.Empty() {
		t.Fatalf("corrupted sockets = %v", got)
	}
	// Only a full-block writeback restores the memory copy.
	m.Restore(addr)
	if m.Corrupted(addr) {
		t.Fatal("restore failed")
	}
	if m.CorruptedCount() != 0 {
		t.Fatal("metadata not garbage-collected")
	}
}

func TestWriteSegmentValidation(t *testing.T) {
	m := MustNew(2, 8)
	if err := m.WriteSegment(1, 0, coher.Entry{}); err == nil {
		t.Fatal("dead entry accepted")
	}
	if err := m.WriteSegment(1, 0, coher.Entry{State: coher.DirOwned, Busy: true}); err == nil {
		t.Fatal("busy entry accepted")
	}
	if err := m.WriteSegment(1, 5, owned(0)); err == nil {
		t.Fatal("out-of-range socket accepted")
	}
}

func TestDirEvictBit(t *testing.T) {
	m := MustNew(4, 8)
	addr := coher.Addr(0x42)
	if _, ok := m.DirEvict(addr); ok {
		t.Fatal("fresh block has DirEvict set")
	}
	se := coher.SocketEntry{State: coher.SockShared}
	se.Sharers.Add(2)
	m.SetDirEvict(addr, se)
	got, ok := m.DirEvict(addr)
	if !ok || !got.Sharers.Contains(2) {
		t.Fatalf("DirEvict = %+v ok=%v", got, ok)
	}
	m.ClearDirEvict(addr)
	if _, ok := m.DirEvict(addr); ok {
		t.Fatal("ClearDirEvict failed")
	}
}

func TestSocketBoundEnforced(t *testing.T) {
	// 128 cores/socket: at most 3 sockets fit the full-map partitioning.
	if _, err := New(4, 128); err == nil {
		t.Fatal("4 sockets of 128 cores must be rejected")
	}
	if _, err := New(3, 128); err != nil {
		t.Fatalf("3 sockets of 128 cores must fit: %v", err)
	}
}

func TestForEachCorrupted(t *testing.T) {
	m := MustNew(2, 8)
	_ = m.WriteSegment(1, 0, owned(1))
	_ = m.WriteSegment(2, 1, owned(2))
	m.Restore(2)
	n := 0
	m.ForEachCorrupted(func(addr coher.Addr, b *BlockMeta) { n++ })
	if n != 1 {
		t.Fatalf("corrupted count = %d, want 1", n)
	}
}
