// Package noc models the on-chip 2D mesh interconnect: tile placement,
// hop latency, and per-message-type traffic accounting in bytes, which
// is the paper's "total bytes communicated" metric.
package noc

import (
	"fmt"

	"repro/internal/coher"
	"repro/internal/sim"
)

// Params describe the mesh timing (Table I: 1-cycle routing delay,
// 1-cycle link latency).
type Params struct {
	RoutingCycles sim.Cycle
	LinkCycles    sim.Cycle
}

// DefaultParams returns the Table I mesh timing.
func DefaultParams() Params {
	return Params{RoutingCycles: 1, LinkCycles: 1}
}

type pos struct{ x, y int }

// Mesh is a 2D mesh connecting core tiles and LLC-bank tiles. Cores and
// banks are interleaved across the grid so bank distance is roughly
// uniform, as in a tiled CMP floorplan.
type Mesh struct {
	p       Params
	w, h    int
	corePos []pos
	bankPos []pos
	traffic Traffic
	perSock sim.Cycle // extra latency when a message leaves the socket
}

// New builds a mesh for the given core and bank counts.
func New(p Params, cores, banks int) (*Mesh, error) {
	if cores <= 0 || banks <= 0 {
		return nil, fmt.Errorf("noc: non-positive tile counts")
	}
	tiles := cores + banks
	w := 1
	for w*w < tiles {
		w++
	}
	h := (tiles + w - 1) / w
	m := &Mesh{p: p, w: w, h: h}
	// Interleave cores and banks across the scan order so banks sit among
	// cores rather than clustered in a corner.
	order := make([]pos, 0, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			order = append(order, pos{x, y})
		}
	}
	ci, bi := 0, 0
	for i, p := range order {
		if ci < cores && (i%2 == 0 || bi >= banks) {
			m.corePos = append(m.corePos, p)
			ci++
		} else if bi < banks {
			m.bankPos = append(m.bankPos, p)
			bi++
		}
	}
	if ci < cores || bi < banks {
		return nil, fmt.Errorf("noc: failed to place %d cores and %d banks on %dx%d mesh", cores, banks, w, h)
	}
	return m, nil
}

// MustNew is New that panics on error.
func MustNew(p Params, cores, banks int) *Mesh {
	m, err := New(p, cores, banks)
	if err != nil {
		panic(err)
	}
	return m
}

func manhattan(a, b pos) int {
	dx := a.x - b.x
	if dx < 0 {
		dx = -dx
	}
	dy := a.y - b.y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

func (m *Mesh) hopLatency(hops int) sim.Cycle {
	// Each hop pays a router traversal and a link traversal; the final
	// router/ejection is folded into the per-hop cost. A zero-hop message
	// (core co-located with its bank) still pays one router traversal.
	if hops == 0 {
		return m.p.RoutingCycles
	}
	return sim.Cycle(hops) * (m.p.RoutingCycles + m.p.LinkCycles)
}

// CoreToBank returns the message latency from a core tile to a bank tile.
func (m *Mesh) CoreToBank(c coher.CoreID, bank int) sim.Cycle {
	return m.hopLatency(manhattan(m.corePos[c], m.bankPos[bank]))
}

// BankToCore returns the message latency from a bank tile to a core tile.
func (m *Mesh) BankToCore(bank int, c coher.CoreID) sim.Cycle {
	return m.CoreToBank(c, bank)
}

// CoreToCore returns the message latency between two core tiles (the
// three-hop forwarding path's final leg).
func (m *Mesh) CoreToCore(a, b coher.CoreID) sim.Cycle {
	return m.hopLatency(manhattan(m.corePos[a], m.corePos[b]))
}

// Traffic accumulates interconnect bytes and message counts by type.
type Traffic struct {
	Bytes    [coher.NumMsgTypes]uint64
	Messages [coher.NumMsgTypes]uint64
}

// TotalBytes sums bytes across all message types.
func (t *Traffic) TotalBytes() uint64 {
	var s uint64
	for _, b := range t.Bytes {
		s += b
	}
	return s
}

// TotalMessages sums message counts across all types.
func (t *Traffic) TotalMessages() uint64 {
	var s uint64
	for _, b := range t.Messages {
		s += b
	}
	return s
}

// Add merges o into t.
func (t *Traffic) Add(o *Traffic) {
	for i := range t.Bytes {
		t.Bytes[i] += o.Bytes[i]
		t.Messages[i] += o.Messages[i]
	}
}

// Record charges one message of type mt in a system with the given core
// count.
func (m *Mesh) Record(mt coher.MsgType, cores int) {
	m.traffic.Bytes[mt] += uint64(mt.Bytes(cores))
	m.traffic.Messages[mt]++
}

// Traffic returns the accumulated traffic counters.
func (m *Mesh) Traffic() *Traffic { return &m.traffic }
