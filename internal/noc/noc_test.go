package noc

import (
	"testing"

	"repro/internal/coher"
)

func TestMeshPlacement(t *testing.T) {
	m := MustNew(DefaultParams(), 8, 8)
	// Latencies are symmetric and positive.
	for c := coher.CoreID(0); c < 8; c++ {
		for b := 0; b < 8; b++ {
			if m.CoreToBank(c, b) != m.BankToCore(b, c) {
				t.Fatalf("asymmetric latency core %d bank %d", c, b)
			}
			if m.CoreToBank(c, b) == 0 {
				t.Fatalf("zero latency core %d bank %d", c, b)
			}
		}
	}
	if m.CoreToCore(0, 0) == 0 {
		t.Fatal("self messages still traverse a router")
	}
	// Triangle-ish sanity: a longer path costs at least as much as a
	// shorter one on the same row.
	if m.CoreToCore(0, 7) < m.CoreToCore(0, 1) {
		t.Fatal("distant cores cheaper than near ones")
	}
}

func TestMeshLargeSystem(t *testing.T) {
	m := MustNew(DefaultParams(), 128, 16)
	if m.CoreToBank(127, 15) == 0 {
		t.Fatal("zero latency in 128-core mesh")
	}
}

func TestTrafficAccounting(t *testing.T) {
	m := MustNew(DefaultParams(), 8, 8)
	m.Record(coher.MsgGetS, 8)
	m.Record(coher.MsgData, 8)
	m.Record(coher.MsgData, 8)
	tr := m.Traffic()
	if tr.Messages[coher.MsgData] != 2 || tr.Messages[coher.MsgGetS] != 1 {
		t.Fatalf("messages = %v", tr.Messages)
	}
	want := uint64(coher.MsgGetS.Bytes(8) + 2*coher.MsgData.Bytes(8))
	if tr.TotalBytes() != want {
		t.Fatalf("bytes = %d, want %d", tr.TotalBytes(), want)
	}
	if tr.TotalMessages() != 3 {
		t.Fatalf("total messages = %d", tr.TotalMessages())
	}
	var other Traffic
	other.Add(tr)
	if other.TotalBytes() != want {
		t.Fatal("Add failed")
	}
}

func TestNewRejectsBadCounts(t *testing.T) {
	if _, err := New(DefaultParams(), 0, 4); err == nil {
		t.Fatal("zero cores accepted")
	}
}
