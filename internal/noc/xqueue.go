package noc

// This file implements the cross-domain message queue the epoch-barrier
// domain scheduler (sim.DriveDomains) drains between epochs. Frontier
// announcements from per-socket domains arrive in whatever order the
// domains produce them; CrossQueue re-establishes the canonical global
// order — (cycle, source socket, per-source sequence) — so the next
// domain to serialize is a pure function of the announcements made, not
// of goroutine timing. Sources announce with monotonically
// non-decreasing cycles, so the per-source sequence number both
// preserves each source's announcement order and makes the total order
// strict even when a source re-announces the same cycle.

import "repro/internal/sim"

type xqEntry struct {
	cycle  sim.Cycle
	source int
	seq    uint64
}

// CrossQueue is a binary min-heap of frontier announcements keyed by
// (cycle, source, sequence). It implements sim.Exchange. The zero value
// is ready to use; it is not safe for concurrent use (the domain
// scheduler announces and drains only between epochs, on the
// coordinating goroutine).
type CrossQueue struct {
	heap []xqEntry
	seq  []uint64 // next per-source sequence number
}

// NewCrossQueue returns a queue sized for the given source count.
func NewCrossQueue(sources int) *CrossQueue {
	return &CrossQueue{
		heap: make([]xqEntry, 0, sources),
		seq:  make([]uint64, sources),
	}
}

func (q *CrossQueue) less(i, j int) bool {
	a, b := &q.heap[i], &q.heap[j]
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	if a.source != b.source {
		return a.source < b.source
	}
	return a.seq < b.seq
}

// Announce implements sim.Exchange: enqueue source's frontier cycle,
// assigning the next per-source sequence number.
func (q *CrossQueue) Announce(cycle sim.Cycle, source int) {
	for source >= len(q.seq) {
		q.seq = append(q.seq, 0)
	}
	e := xqEntry{cycle: cycle, source: source, seq: q.seq[source]}
	q.seq[source]++
	q.heap = append(q.heap, e)
	// Sift up.
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// Next implements sim.Exchange: remove and return the canonically least
// announcement.
func (q *CrossQueue) Next() (sim.Cycle, int, bool) {
	if len(q.heap) == 0 {
		return 0, 0, false
	}
	top := q.heap[0]
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap = q.heap[:n]
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			break
		}
		q.heap[i], q.heap[min] = q.heap[min], q.heap[i]
		i = min
	}
	return top.cycle, top.source, true
}

// Len returns the number of queued announcements.
func (q *CrossQueue) Len() int { return len(q.heap) }
