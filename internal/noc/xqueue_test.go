package noc_test

import (
	"context"
	"encoding/binary"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/llc"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/socket"
	"repro/internal/workload"
)

// refEntry mirrors CrossQueue's key; the reference model below is the
// executable definition of the canonical drain order.
type refEntry struct {
	cycle  sim.Cycle
	source int
	seq    uint64
}

// refExchange is the brute-force reference: announcements in a flat
// slice, Next scans for the (cycle, source, seq) minimum.
type refExchange struct {
	entries []refEntry
	next    map[int]uint64
}

func (r *refExchange) Announce(cycle sim.Cycle, source int) {
	if r.next == nil {
		r.next = make(map[int]uint64)
	}
	r.entries = append(r.entries, refEntry{cycle, source, r.next[source]})
	r.next[source]++
}

func (r *refExchange) Next() (sim.Cycle, int, bool) {
	if len(r.entries) == 0 {
		return 0, 0, false
	}
	min := 0
	for i := 1; i < len(r.entries); i++ {
		a, b := r.entries[i], r.entries[min]
		if a.cycle < b.cycle || (a.cycle == b.cycle && (a.source < b.source ||
			(a.source == b.source && a.seq < b.seq))) {
			min = i
		}
	}
	e := r.entries[min]
	r.entries = append(r.entries[:min], r.entries[min+1:]...)
	return e.cycle, e.source, true
}

// The fuzz op encoding: 5-byte records. First byte 0xFF = drain one
// announcement; anything else selects the source (mod 8) of an
// announce, with the following 4 bytes the little-endian cycle.
// Per-source cycles are clamped monotone non-decreasing, matching the
// contract domains observe (frontier clocks only move forward).
const opDrain = 0xFF

func appendAnnounceOp(buf []byte, cycle sim.Cycle, source int) []byte {
	buf = append(buf, byte(source))
	return binary.LittleEndian.AppendUint32(buf, uint32(cycle))
}

func appendDrainOp(buf []byte) []byte {
	return append(buf, opDrain, 0, 0, 0, 0)
}

// recordingExchange wraps a CrossQueue and transcribes every Announce
// and Next into the fuzz op encoding, distilling seed-corpus entries
// from real runs.
type recordingExchange struct {
	q   *noc.CrossQueue
	ops []byte
	max int
}

func (r *recordingExchange) Announce(cycle sim.Cycle, source int) {
	if len(r.ops) < r.max {
		r.ops = appendAnnounceOp(r.ops, cycle, source)
	}
	r.q.Announce(cycle, source)
}

func (r *recordingExchange) Next() (sim.Cycle, int, bool) {
	if len(r.ops) < r.max {
		r.ops = appendDrainOp(r.ops)
	}
	return r.q.Next()
}

// distillSeed runs a small two-socket system under the domain scheduler
// and returns the op transcript of its inter-domain exchange: a seed
// corpus entry with the announce/drain interleaving of a real
// multisocket golden run.
func distillSeed(tb testing.TB) []byte {
	pre := config.TableI(64)
	spec := pre.ZeroDEV(0, core.FPSS, llc.DataLRU, llc.NonInclusive)
	const sockets = 2
	streams := workload.Threads(workload.MustGet("ocean_cp"), sockets*spec.Cores, 2000, 64, 7)
	sys, err := socket.New(socket.DefaultParams(sockets, 512), spec, streams)
	if err != nil {
		tb.Fatal(err)
	}
	rec := &recordingExchange{q: noc.NewCrossQueue(sockets), max: 2000}
	domains := make([][]sim.LocalAgent, sockets)
	for s, sock := range sys.Sockets {
		for _, c := range sock.Cores {
			domains[s] = append(domains[s], c)
		}
	}
	if _, err := sim.DriveDomains(context.Background(), domains, 2, nil, rec); err != nil {
		tb.Fatal(err)
	}
	return rec.ops
}

// applyOps runs one op stream against an Exchange and returns the drain
// transcript (including the full drain of whatever remains queued).
func applyOps(x sim.Exchange, data []byte) []refEntry {
	var out []refEntry
	prev := map[int]sim.Cycle{}
	for len(data) >= 5 {
		rec := data[:5]
		data = data[5:]
		if rec[0] == opDrain {
			if c, s, ok := x.Next(); ok {
				out = append(out, refEntry{cycle: c, source: s})
			}
			continue
		}
		src := int(rec[0] % 8)
		c := sim.Cycle(binary.LittleEndian.Uint32(rec[1:5]))
		if c < prev[src] {
			c = prev[src]
		}
		prev[src] = c
		x.Announce(c, src)
	}
	for {
		c, s, ok := x.Next()
		if !ok {
			return out
		}
		out = append(out, refEntry{cycle: c, source: s})
	}
}

// FuzzCanonicalMessageOrder fuzzes interleaved cross-socket announce
// and drain operations and asserts the CrossQueue drain order is a
// pure function of (cycle, source, sequence): it must match the
// brute-force reference model record for record, and replaying the
// same op stream must reproduce the same transcript exactly.
func FuzzCanonicalMessageOrder(f *testing.F) {
	f.Add(distillSeed(f))
	// Hand-written seeds: cycle ties across sources, re-announcement of
	// one cycle by one source (seq tie-break), interleaved drains, and
	// drains of an empty queue.
	var s []byte
	s = appendAnnounceOp(s, 5, 1)
	s = appendAnnounceOp(s, 5, 0)
	s = appendAnnounceOp(s, 5, 0)
	s = appendDrainOp(s)
	s = appendAnnounceOp(s, 3, 7)
	s = appendDrainOp(s)
	s = appendDrainOp(s)
	f.Add(s)
	f.Add(appendDrainOp(nil))
	// Sparse-MESI directory victim burst: a home tile evicting a live
	// entry announces an invalidation per tracked sharer in one cycle
	// (seq tie-breaks carry the burst), acks from the victims land the
	// next cycle, and drains interleave with the trailing announcements —
	// the shape `zerodev run -backend sparsemesi` pushes through the
	// cross-socket queue on every DEV.
	var dev []byte
	for i := 0; i < 4; i++ {
		dev = appendAnnounceOp(dev, 9, 2)
	}
	dev = appendDrainOp(dev)
	dev = appendAnnounceOp(dev, 10, 4)
	dev = appendAnnounceOp(dev, 10, 6)
	dev = appendDrainOp(dev)
	dev = appendAnnounceOp(dev, 10, 2)
	f.Add(dev)
	f.Fuzz(func(t *testing.T, data []byte) {
		got := applyOps(noc.NewCrossQueue(8), data)
		want := applyOps(&refExchange{}, data)
		if len(got) != len(want) {
			t.Fatalf("drain count: CrossQueue %d, reference %d", len(got), len(want))
		}
		for i := range got {
			if got[i].cycle != want[i].cycle || got[i].source != want[i].source {
				t.Fatalf("drain %d: CrossQueue (cycle %d, source %d), reference (cycle %d, source %d)",
					i, got[i].cycle, got[i].source, want[i].cycle, want[i].source)
			}
		}
		replay := applyOps(noc.NewCrossQueue(8), data)
		for i := range got {
			if replay[i] != got[i] {
				t.Fatalf("replay diverged at drain %d", i)
			}
		}
	})
}

// TestCrossQueueSequenceOrder pins the per-source FIFO guarantee:
// re-announcements of one source at one cycle drain in announcement
// order, and sources break cycle ties ahead of sequence numbers.
func TestCrossQueueSequenceOrder(t *testing.T) {
	q := noc.NewCrossQueue(2)
	q.Announce(10, 1)
	q.Announce(10, 0)
	q.Announce(10, 1)
	q.Announce(2, 1)
	want := []struct {
		cycle  sim.Cycle
		source int
	}{{2, 1}, {10, 0}, {10, 1}, {10, 1}}
	for i, w := range want {
		c, s, ok := q.Next()
		if !ok || c != w.cycle || s != w.source {
			t.Fatalf("drain %d = (%d, %d, %v), want (%d, %d, true)", i, c, s, ok, w.cycle, w.source)
		}
	}
	if _, _, ok := q.Next(); ok {
		t.Fatal("drained queue returned ok")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}
