package serve

import (
	"encoding/json"
	"hash/fnv"

	"repro/internal/harness"
)

// CellFingerprint content-hashes everything that determines a cell's
// value: the result-shaping options (scale, accesses, seed, quick) and
// the cell identity (experiment scope, submission seq, unit label).
// Campaign composition is deliberately excluded — which other
// experiments ride in the spec does not change this cell's result — so
// identical cells dedup across campaigns that differ only in what else
// they run.
func CellFingerprint(s Spec, c harness.CellID) uint64 {
	b, err := json.Marshal(struct {
		Scale    int    `json:"scale"`
		Accesses int    `json:"accesses"`
		Seed     uint64 `json:"seed"`
		Quick    bool   `json:"quick"`
		Scope    string `json:"scope"`
		Seq      int    `json:"seq"`
		Unit     string `json:"unit"`
	}{s.Scale, s.Accesses, s.Seed, s.Quick, c.Scope, c.Seq, c.Unit})
	if err != nil {
		// Plain data; Marshal cannot fail.
		panic(err)
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// resultCache maps cell fingerprints to raw checkpoint cell records.
// It is rebuilt from Done cells on state load, so cache hits survive
// coordinator crashes. Callers hold the coordinator lock.
type resultCache map[uint64]json.RawMessage

func (rc resultCache) get(fp uint64) (json.RawMessage, bool) {
	v, ok := rc[fp]
	return v, ok
}

func (rc resultCache) put(fp uint64, v json.RawMessage) {
	if _, ok := rc[fp]; !ok {
		rc[fp] = v
	}
}
