package serve

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
)

// TestChaosScenarios drives the coordinator through hundreds of seeded
// chaos scenarios — worker stalls, duplicated lease grants, stale
// heartbeats, double-delivered results, random coordinator crashes —
// asserting the full invariant set (exactly-once cell accounting
// included) after every step, and at the end that every campaign
// reached a terminal state with every non-degraded campaign's output
// matching the deterministic expectation. Each scenario replays
// identically from its seed: one seeded RNG drives the driver, and the
// coordinator's own jitter and chaos draws are seeded from it.
func TestChaosScenarios(t *testing.T) {
	scenarios := 250
	if testing.Short() {
		scenarios = 40
	}
	for seed := 1; seed <= scenarios; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosScenario(t, uint64(seed))
		})
	}
}

// chaosGrant is one simulated worker's view of a grant it holds.
type chaosGrant struct {
	g       *Grant
	stalled bool // will never deliver in time; the lease must expire
}

func runChaosScenario(t *testing.T, seed uint64) {
	rng := sim.NewRNG(seed).Fork(0xD21E)
	clk := newClock()
	chaos := faults.NewServiceChaos(seed)
	statePath := filepath.Join(t.TempDir(), "state.json")

	cells := 3 + rng.Intn(5) // 3..7 cells per campaign
	cfg := fakeConfig(clk, cells)
	cfg.Seed = seed
	cfg.RetryBudget = 1 + rng.Intn(3) // 1..3
	cfg.StatePath = statePath
	cfg.Chaos = chaos
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// 1..3 campaigns; campaigns beyond the first may share the first's
	// seed, exercising the cross-campaign result cache mid-chaos.
	campaigns := 1 + rng.Intn(3)
	ids := make([]string, 0, campaigns)
	for i := 0; i < campaigns; i++ {
		s := fakeSpec(uint64(1 + rng.Intn(2)))
		sub, err := c.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sub.ID)
	}

	check := func(step string) {
		t.Helper()
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("after %s: invariant violated: %v", step, err)
		}
	}
	check("submit")

	held := []chaosGrant{} // grants "workers" currently hold, in grant order
	deliver := func(cg chaosGrant, report bool) {
		t.Helper()
		req := CompleteRequest{
			LeaseID: cg.g.LeaseID, Campaign: cg.g.Campaign,
			Key: cg.g.Cell.Key(), Unit: cg.g.Cell.Unit,
		}
		if report {
			req.Err = "chaos: injected execution failure"
		} else {
			req.Value = cellValue(cg.g.Cell, 1000+cg.g.Cell.Seq)
		}
		if _, err := c.Complete(req); err != nil {
			t.Fatalf("complete %s: %v", cg.g.Cell, err)
		}
		check("complete")
		if !report && chaos.Hit(faults.DoubleDelivery) {
			if _, err := c.Complete(req); err != nil {
				t.Fatalf("double delivery %s: %v", cg.g.Cell, err)
			}
			check("double delivery")
		}
	}

	allTerminal := func() bool {
		for _, id := range ids {
			st, err := c.Status(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.State == "running" {
				return false
			}
		}
		return true
	}

	const maxSteps = 4000
	step := 0
	for ; step < maxSteps && !allTerminal(); step++ {
		switch act := rng.Intn(10); {
		case act < 4: // try to lease
			g, err := c.Lease(fmt.Sprintf("w%d", rng.Intn(4)))
			if err != nil {
				t.Fatalf("lease: %v", err)
			}
			check("lease")
			if g != nil {
				held = append(held, chaosGrant{g: g, stalled: chaos.Hit(faults.WorkerStall)})
			}
		case act < 6: // a held grant resolves
			if len(held) == 0 {
				clk.Advance(time.Second)
				continue
			}
			i := rng.Intn(len(held))
			cg := held[i]
			held = append(held[:i], held[i+1:]...)
			if cg.stalled {
				// The worker sits on it; time passes, the lease expires.
				clk.Advance(cfg.LeaseTTL + time.Second)
				c.Sweep()
				check("stall expiry")
				if chaos.Hit(faults.StaleHeartbeat) {
					err := c.Renew(cg.g.LeaseID)
					if err == nil {
						t.Fatalf("stale heartbeat on %s was accepted", cg.g.LeaseID)
					}
					check("stale heartbeat")
				}
				// Sometimes the stalled worker wakes up and delivers late.
				if rng.Bool(0.5) {
					deliver(cg, false)
				}
				continue
			}
			deliver(cg, rng.Bool(0.2)) // 20% of executions report failure
		case act < 7: // heartbeat a held lease
			if len(held) == 0 {
				continue
			}
			cg := held[rng.Intn(len(held))]
			_ = c.Renew(cg.g.LeaseID) // stale is legal here (dup-granted sibling may have finished the cell)
			check("renew")
		case act < 9: // time passes (backoff windows open, leases age)
			clk.Advance(time.Duration(1+rng.Intn(12)) * time.Second)
			c.Sweep()
			check("sweep")
		default: // coordinator crash + recovery
			c.Kill()
			r, err := New(cfg)
			if err != nil {
				t.Fatalf("step %d: successor failed to load state: %v", step, err)
			}
			c = r
			check("coordinator restart")
			// Grants issued by the dead incarnation are now stale; keep
			// them held — late deliveries against the successor exercise
			// the stale-accept path.
		}
	}
	if !allTerminal() {
		t.Fatalf("scenario did not terminate in %d steps (seed %d)", maxSteps, seed)
	}
	check("terminal")

	// Exactly-once accounting at the end of the world: every campaign
	// terminal, every complete campaign's output exactly the
	// deterministic render, every degraded cell explained.
	stats := c.StatsSnapshot()
	var doneCells uint64
	for _, id := range ids {
		st, err := c.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done+st.Failed != st.Total {
			t.Fatalf("campaign %s terminal but done %d + failed %d != total %d", id, st.Done, st.Failed, st.Total)
		}
		cm := c.campaigns[id]
		for _, key := range cm.order {
			cl := cm.cells[key]
			if cl.phase == CellDone && !cl.fromCache {
				doneCells++
			}
		}
		switch st.State {
		case "complete":
			for i := 1; i <= st.Total; i++ {
				want := fmt.Sprintf("u%d=%d\n", i, 1000+i)
				if !strings.Contains(st.Output, want) {
					t.Fatalf("campaign %s output missing %q:\n%s", id, want, st.Output)
				}
			}
		case "degraded":
			if len(st.Failures) != st.Failed {
				t.Fatalf("campaign %s reports %d failures for %d failed cells", id, len(st.Failures), st.Failed)
			}
			for _, f := range st.Failures {
				if !strings.Contains(f.Err, "attempt(s)") {
					t.Fatalf("campaign %s failure %q does not name its attempts", id, f.Err)
				}
			}
		default:
			t.Fatalf("campaign %s in state %q at the end", id, st.State)
		}
	}
	// Completed counts cells that were delivered (not cache-served) on
	// THIS incarnation; across crashes the durable cells are what must
	// reconcile: every executed Done cell was delivered exactly once to
	// some incarnation, and duplicates were always counted separately.
	if stats.Completed > doneCells {
		t.Fatalf("this incarnation recorded %d completions for %d executed done cells", stats.Completed, doneCells)
	}
}

// TestChaosScenarioReplaysDeterministically: the same seed must drive
// the exact same scenario to the exact same end state — the property
// that makes a chaos failure debuggable.
func TestChaosScenarioReplaysDeterministically(t *testing.T) {
	run := func() (string, Stats) {
		clk := newClock()
		chaos := faults.NewServiceChaos(99)
		cfg := fakeConfig(clk, 4)
		cfg.Seed = 99
		cfg.Chaos = chaos
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := c.Submit(fakeSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(99).Fork(0xD21E)
		var held []*Grant
		for step := 0; step < 400; step++ {
			switch rng.Intn(4) {
			case 0:
				if g, _ := c.Lease("w"); g != nil {
					held = append(held, g)
				}
			case 1:
				if len(held) > 0 {
					g := held[0]
					held = held[1:]
					_, _ = c.Complete(CompleteRequest{
						LeaseID: g.LeaseID, Campaign: g.Campaign, Key: g.Cell.Key(),
						Unit: g.Cell.Unit, Value: cellValue(g.Cell, g.Cell.Seq),
					})
				}
			case 2:
				clk.Advance(3 * time.Second)
				c.Sweep()
			case 3:
				clk.Advance(11 * time.Second)
				c.Sweep()
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
		st, err := c.Status(sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%s|%s|%v", st.State, st.Output, st.Failures), c.StatsSnapshot()
	}
	o1, s1 := run()
	o2, s2 := run()
	if o1 != o2 || s1 != s2 {
		t.Fatalf("same seed diverged:\n--- run 1 ---\n%s\n%+v\n--- run 2 ---\n%s\n%+v", o1, s1, o2, s2)
	}
}
