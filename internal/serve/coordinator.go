package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/sim"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrStaleLease: the lease expired or was superseded; renewals are
	// refused (HTTP 410) so a stalled worker learns to abandon the cell.
	ErrStaleLease = errors.New("serve: lease expired or superseded")
	// ErrUnknownCampaign: no such campaign ID (HTTP 404).
	ErrUnknownCampaign = errors.New("serve: unknown campaign")
	// ErrDown: the coordinator was killed (tests simulate a crash this
	// way); every API call answers 503 until a new coordinator loads the
	// durable state.
	ErrDown = errors.New("serve: coordinator is down")
	// ErrPersist: the durable state could not be written (HTTP 500); the
	// in-memory transition still happened and the next successful persist
	// covers it.
	ErrPersist = errors.New("serve: persisting state")
)

// cellPhase is the lease state machine's per-cell state.
type cellPhase int

const (
	// CellPending: waiting for a grant (readyAt gates backoff).
	CellPending cellPhase = iota
	// CellLeased: at least one live lease; a worker is (nominally)
	// computing the value.
	CellLeased
	// CellDone: a value is recorded; terminal.
	CellDone
	// CellFailed: the retry budget is exhausted; renders ERR; terminal.
	CellFailed
)

func (p cellPhase) String() string {
	switch p {
	case CellPending:
		return "pending"
	case CellLeased:
		return "leased"
	case CellDone:
		return "done"
	case CellFailed:
		return "failed"
	}
	return fmt.Sprintf("cellPhase(%d)", int(p))
}

// cell is one schedulable unit of a campaign.
type cell struct {
	id harness.CellID
	fp uint64 // content fingerprint for the cross-campaign result cache

	phase    cellPhase
	attempts int       // scheduling rounds granted (dup grants join the current round)
	readyAt  time.Time // backoff gate while Pending
	leases   int       // live leases (>1 only under dup-grant chaos)

	value       json.RawMessage // raw checkpoint cell record once Done
	errText     string          // degradation reason once Failed
	completions int             // accepted value deliveries (exactly-once: <= 1)
	dupResults  int             // deliveries counted-and-ignored
	fromCache   bool            // value served by the result cache, never executed
}

// lease is one grant of a cell to a worker.
type lease struct {
	id      string
	worker  string
	camp    string
	cellKey string
	expires time.Time
}

// campaign is one submitted spec and its cell table.
type campaign struct {
	id        string
	spec      Spec
	order     []string // cell keys in plan order
	cells     map[string]*cell
	cacheHits int

	rendered  bool // terminal output assembled
	output    string
	renderErr string
}

func (cm *campaign) counts() (done, failed, leased, pending int) {
	for _, c := range cm.cells {
		switch c.phase {
		case CellDone:
			done++
		case CellFailed:
			failed++
		case CellLeased:
			leased++
		case CellPending:
			pending++
		}
	}
	return
}

func (cm *campaign) terminal() bool {
	done, failed, _, _ := cm.counts()
	return done+failed == len(cm.cells)
}

// Stats counts coordinator events for introspection and the chaos
// harness's accounting.
type Stats struct {
	Granted         uint64 `json:"granted"`
	DupGranted      uint64 `json:"dup_granted"`
	Renewed         uint64 `json:"renewed"`
	StaleHeartbeats uint64 `json:"stale_heartbeats"`
	Expired         uint64 `json:"expired"`
	Requeued        uint64 `json:"requeued"`
	Degraded        uint64 `json:"degraded"`
	Completed       uint64 `json:"completed"`
	StaleAccepted   uint64 `json:"stale_accepted"`
	DupResults      uint64 `json:"dup_results"`
	FailedReports   uint64 `json:"failed_reports"`
	CacheHits       uint64 `json:"cache_hits"`
}

// Coordinator owns the campaign and lease tables. All state lives
// behind one mutex — the service is robustness-bound, not
// throughput-bound (cells run for seconds; API calls are table edits).
type Coordinator struct {
	cfg     Config
	planner Planner
	now     func() time.Time

	mu           sync.Mutex
	rng          *sim.RNG // backoff jitter only
	campaigns    map[string]*campaign
	order        []string // campaign IDs in submission order
	leases       map[string]*lease
	cache        resultCache
	nextCampaign int
	nextLease    int
	gen          int // coordinator incarnation; prefixes lease IDs
	stats        Stats
	down         bool
}

// New builds a coordinator; when cfg.StatePath names an existing state
// file, the previous coordinator's durable state is loaded and cells
// that were leased at the crash re-queue immediately.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:       cfg,
		planner:   cfg.Planner,
		now:       cfg.Clock,
		rng:       sim.NewRNG(cfg.Seed).Fork(0xBACC0FF),
		campaigns: make(map[string]*campaign),
		leases:    make(map[string]*lease),
		cache:     make(resultCache),
		gen:       1,
	}
	if cfg.StatePath != "" {
		if err := c.loadState(cfg.StatePath); err != nil {
			return nil, err
		}
		// Persist immediately so this incarnation's generation is durable
		// before any lease is granted under it.
		if err := c.persistLocked(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Kill marks the coordinator down: every subsequent API call fails with
// ErrDown and nothing further persists. Tests use it to simulate a
// coordinator crash without a process boundary — the durable state file
// is exactly what a real crash would leave behind, and a fresh New on
// the same StatePath resumes from it.
func (c *Coordinator) Kill() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down = true
}

// Submit registers a campaign: the planner decomposes the spec into
// cells, the result cache pre-fills any cell another campaign already
// computed, and the cell table persists before the response is sent.
func (c *Coordinator) Submit(s Spec) (SubmitResponse, error) {
	grid, err := c.planner.Plan(s)
	if err != nil {
		return SubmitResponse{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return SubmitResponse{}, ErrDown
	}
	c.nextCampaign++
	cm := &campaign{
		id:    fmt.Sprintf("c%04d", c.nextCampaign),
		spec:  s,
		cells: make(map[string]*cell, len(grid)),
	}
	for _, id := range grid {
		key := id.Key()
		if _, dup := cm.cells[key]; dup {
			return SubmitResponse{}, fmt.Errorf("serve: spec plans cell %s twice (an experiment is listed more than once?)", id)
		}
		cl := &cell{id: id, fp: CellFingerprint(s, id)}
		if v, ok := c.cache.get(cl.fp); ok {
			cl.phase = CellDone
			cl.value = v
			cl.fromCache = true
			cm.cacheHits++
			c.stats.CacheHits++
		}
		cm.cells[key] = cl
		cm.order = append(cm.order, key)
	}
	c.campaigns[cm.id] = cm
	c.order = append(c.order, cm.id)
	c.finishIfDoneLocked(cm) // a fully cache-served campaign is born terminal
	if err := c.persistLocked(); err != nil {
		return SubmitResponse{}, err
	}
	return SubmitResponse{ID: cm.id, Cells: len(grid), CacheHits: cm.cacheHits}, nil
}

// Lease grants the next pending cell to a worker, or returns (nil, nil)
// when no cell is ready. Expired leases are swept first, so a dead
// worker's cell becomes grantable the moment its lease lapses. Under
// dup-grant chaos, an already-leased cell may be granted a second,
// concurrent lease instead — the delivery path must then deduplicate.
func (c *Coordinator) Lease(worker string) (*Grant, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return nil, ErrDown
	}
	c.sweepLocked()
	if c.cfg.Chaos.Hit(faults.DupGrant) {
		if g := c.grantLocked(worker, CellLeased); g != nil {
			c.stats.DupGranted++
			return g, nil
		}
	}
	g := c.grantLocked(worker, CellPending)
	if g != nil {
		c.stats.Granted++
		// Persist the attempt charge: a coordinator that crash-loops on a
		// poison cell must not forget how many times it already tried.
		if err := c.persistLocked(); err != nil {
			return g, err
		}
	}
	return g, nil
}

// grantLocked finds the first cell in submission order matching want
// (Pending respecting its backoff gate) and leases it to the worker. A
// grant on a Pending cell starts a new scheduling round (attempts++); a
// grant on a Leased cell joins the current round.
func (c *Coordinator) grantLocked(worker string, want cellPhase) *Grant {
	now := c.now()
	for _, cid := range c.order {
		cm := c.campaigns[cid]
		for _, key := range cm.order {
			cl := cm.cells[key]
			if cl.phase != want {
				continue
			}
			if want == CellPending && now.Before(cl.readyAt) {
				continue
			}
			if want == CellPending {
				cl.attempts++
				cl.phase = CellLeased
			}
			cl.leases++
			c.nextLease++
			l := &lease{
				id:      fmt.Sprintf("l%d-%04d", c.gen, c.nextLease),
				worker:  worker,
				camp:    cm.id,
				cellKey: key,
				expires: now.Add(c.cfg.LeaseTTL),
			}
			c.leases[l.id] = l
			return &Grant{
				LeaseID:  l.id,
				Campaign: cm.id,
				Cell:     cl.id,
				Spec:     cm.spec,
				TTLMS:    c.cfg.LeaseTTL.Milliseconds(),
			}
		}
	}
	return nil
}

// Renew heartbeats a lease, extending it a full TTL. A renewal of an
// expired or superseded lease fails with ErrStaleLease — the
// coordinator never resurrects a lease it already re-queued, or the
// cell could end up double-executing without the dedup accounting that
// dup-grant chaos exercises.
func (c *Coordinator) Renew(leaseID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return ErrDown
	}
	c.sweepLocked()
	l, ok := c.leases[leaseID]
	if !ok {
		c.stats.StaleHeartbeats++
		return fmt.Errorf("%w: %s", ErrStaleLease, leaseID)
	}
	l.expires = c.now().Add(c.cfg.LeaseTTL)
	c.stats.Renewed++
	return nil
}

// Complete records a cell outcome. Value deliveries are exactly-once:
// the first accepted delivery marks the cell Done and every later one —
// duplicate, late, or raced by a dup-granted sibling — is counted and
// ignored. A delivery under an expired lease is still accepted when the
// cell has no result yet: cell values are pure functions of the spec
// and cell identity, so a late worker's answer is as good as any.
// Failure reports consume the reporting lease and re-queue the cell
// under backoff, degrading it to a Failed (ERR) cell once the retry
// budget is spent.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return "", ErrDown
	}
	c.sweepLocked()
	cm, ok := c.campaigns[req.Campaign]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownCampaign, req.Campaign)
	}
	cl, ok := cm.cells[req.Key]
	if !ok {
		return "", fmt.Errorf("serve: campaign %s has no cell %q", req.Campaign, req.Key)
	}
	l, live := c.leases[req.LeaseID]
	live = live && l.camp == req.Campaign && l.cellKey == req.Key

	if req.Err != "" {
		return c.completeFailureLocked(cm, cl, req, live)
	}
	return c.completeValueLocked(cm, cl, req, live)
}

func (c *Coordinator) completeValueLocked(cm *campaign, cl *cell, req CompleteRequest, live bool) (CompleteStatus, error) {
	switch cl.phase {
	case CellDone:
		cl.dupResults++
		c.stats.DupResults++
		if live {
			c.dropLeaseLocked(req.LeaseID)
		}
		return CompleteDuplicate, nil
	case CellFailed:
		// Terminal: the campaign may already have rendered this cell as
		// ERR; resurrecting it would fork the output.
		return CompleteIgnored, nil
	}
	if len(req.Value) == 0 {
		return "", fmt.Errorf("serve: completion for cell %s carries neither value nor error", cl.id)
	}
	cl.phase = CellDone
	cl.value = req.Value
	cl.completions++
	c.cache.put(cl.fp, req.Value)
	c.stats.Completed++
	status := CompleteRecorded
	if !live {
		c.stats.StaleAccepted++
		status = CompleteStaleRecorded
	}
	// Every other lease on this cell (dup grants, the expired original)
	// is now pointless; drop them so their expiry cannot re-queue a
	// finished cell.
	c.dropCellLeasesLocked(cm.id, cl)
	c.finishIfDoneLocked(cm)
	if err := c.persistLocked(); err != nil {
		return "", err
	}
	return status, nil
}

func (c *Coordinator) completeFailureLocked(cm *campaign, cl *cell, req CompleteRequest, live bool) (CompleteStatus, error) {
	c.stats.FailedReports++
	if cl.phase == CellDone || cl.phase == CellFailed {
		return CompleteIgnored, nil
	}
	if !live {
		// The lease already expired: its expiry re-queued (or degraded)
		// the cell, so this report carries no new information.
		return CompleteIgnored, nil
	}
	c.dropLeaseLocked(req.LeaseID)
	cl.leases--
	if cl.leases > 0 {
		// A dup-granted sibling is still working the cell; let it finish.
		return CompleteRetried, nil
	}
	c.requeueLocked(cl, req.Err)
	status := CompleteRetried
	if cl.phase == CellFailed {
		status = CompleteDegraded
		c.finishIfDoneLocked(cm)
		if err := c.persistLocked(); err != nil {
			return "", err
		}
	}
	return status, nil
}

// dropLeaseLocked removes one lease without touching its cell's count.
func (c *Coordinator) dropLeaseLocked(id string) {
	delete(c.leases, id)
}

// dropCellLeasesLocked removes every live lease on a cell.
func (c *Coordinator) dropCellLeasesLocked(campID string, cl *cell) {
	for id, l := range c.leases {
		if l.camp == campID && l.cellKey == cl.id.Key() {
			delete(c.leases, id)
		}
	}
	cl.leases = 0
}

// Sweep expires lapsed leases, re-queueing (or degrading) their cells.
// The HTTP handlers sweep on every call; StartSweeper adds a background
// cadence so expiry is not gated on traffic.
func (c *Coordinator) Sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return
	}
	c.sweepLocked()
}

// sweepLocked walks leases in sorted ID order — map order would make
// the jitter RNG stream, and therefore chaos scenarios, irreproducible.
// Degradations are durable, so a sweep that degrades persists before
// returning; requeues are not (a crash just re-queues leased cells
// anyway).
func (c *Coordinator) sweepLocked() {
	before := c.stats.Degraded
	defer func() {
		if c.stats.Degraded != before {
			_ = c.persistLocked()
		}
	}()
	now := c.now()
	var expired []string
	for id, l := range c.leases {
		if !l.expires.After(now) {
			expired = append(expired, id)
		}
	}
	sort.Strings(expired)
	for _, id := range expired {
		l := c.leases[id]
		delete(c.leases, id)
		c.stats.Expired++
		cl := c.campaigns[l.camp].cells[l.cellKey]
		if cl.phase != CellLeased {
			continue // a racing delivery already finished the cell
		}
		cl.leases--
		if cl.leases > 0 {
			continue // a dup-granted sibling still holds it
		}
		c.requeueLocked(cl, "lease expired (worker presumed dead)")
		if cl.phase == CellFailed {
			// Degrading the last outstanding cell finishes the campaign.
			c.finishIfDoneLocked(c.campaigns[l.camp])
		}
	}
}

// requeueLocked returns a cell whose last lease died to Pending under
// exponential backoff, or degrades it to Failed once its attempts
// exceed the retry budget. The ERR text names the attempt count and the
// final reason so the rendered table explains itself.
func (c *Coordinator) requeueLocked(cl *cell, reason string) {
	if cl.attempts > c.cfg.RetryBudget {
		cl.phase = CellFailed
		cl.errText = fmt.Sprintf("cell %s failed after %d attempt(s): %s", cl.id, cl.attempts, reason)
		c.stats.Degraded++
		return
	}
	cl.phase = CellPending
	cl.readyAt = c.now().Add(c.backoff(cl.attempts))
	c.stats.Requeued++
}

// backoff returns min(base<<(n-1), max) plus jitter in [0, base/2),
// drawn from the coordinator's seeded RNG so re-queue schedules
// replay under a fixed seed.
func (c *Coordinator) backoff(n int) time.Duration {
	d := c.cfg.BackoffMax
	if shift := n - 1; shift < 63 {
		if v := c.cfg.BackoffBase << shift; v > 0 && v < d {
			d = v
		}
	}
	if half := int64(c.cfg.BackoffBase / 2); half > 0 {
		d += time.Duration(c.rng.Uint64() % uint64(half))
	}
	return d
}

// finishIfDoneLocked assembles the campaign output once every cell is
// terminal. Assembly replays recorded cells (no simulation), stubbing
// Failed cells so they render as ERR exactly where a serial run's
// failed jobs would.
func (c *Coordinator) finishIfDoneLocked(cm *campaign) {
	if cm.rendered || !cm.terminal() {
		return
	}
	cm.rendered = true
	cs := harness.NewCheckpoint(harness.CheckpointKey{
		Kind: "serve", IDs: cm.spec.Experiments,
		Scale: cm.spec.Scale, Accesses: cm.spec.Accesses,
		Seed: cm.spec.Seed, Quick: cm.spec.Quick,
	})
	raw := make(map[string]json.RawMessage)
	stub := make(map[string]string)
	for key, cl := range cm.cells {
		switch cl.phase {
		case CellDone:
			raw[key] = cl.value
		case CellFailed:
			stub[key] = cl.errText
		}
	}
	cs.Merge(raw)
	var buf bytes.Buffer
	if err := c.planner.Assemble(cm.spec, cs, stub, &buf); err != nil {
		cm.renderErr = err.Error()
	}
	cm.output = buf.String()
}

// Status reports a campaign's progress; terminal campaigns include the
// assembled output.
func (c *Coordinator) Status(id string) (CampaignStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down {
		return CampaignStatus{}, ErrDown
	}
	c.sweepLocked()
	cm, ok := c.campaigns[id]
	if !ok {
		return CampaignStatus{}, fmt.Errorf("%w: %s", ErrUnknownCampaign, id)
	}
	return c.statusLocked(cm), nil
}

func (c *Coordinator) statusLocked(cm *campaign) CampaignStatus {
	done, failed, leased, pending := cm.counts()
	st := CampaignStatus{
		ID: cm.id, Spec: cm.spec,
		Total: len(cm.cells), Done: done, Failed: failed,
		Leased: leased, Pending: pending, CacheHits: cm.cacheHits,
	}
	switch {
	case !cm.terminal():
		st.State = "running"
	case failed > 0:
		st.State = "degraded"
	default:
		st.State = "complete"
	}
	for _, key := range cm.order {
		cl := cm.cells[key]
		if cl.phase == CellFailed {
			st.Failures = append(st.Failures, CellFailure{Cell: key, Unit: cl.id.Unit, Err: cl.errText})
		}
	}
	if cm.rendered {
		st.Output = cm.output
		if cm.renderErr != "" && st.State == "complete" {
			st.State = "degraded"
		}
	}
	return st
}

// StatsSnapshot returns a copy of the event counters.
func (c *Coordinator) StatsSnapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// StartSweeper expires leases on a fixed cadence until ctx is done, so
// worker death is detected even when no worker is polling.
func (c *Coordinator) StartSweeper(ctx context.Context, every time.Duration) {
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.Sweep()
			}
		}
	}()
}

// WriteJobs renders the job table for GET /v1/jobs: every campaign,
// every cell's phase and attempts, and the coordinator's event
// counters. The format is deliberately timestamp-free so introspection
// output is golden-testable.
func (c *Coordinator) WriteJobs(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	if len(c.order) == 0 {
		fmt.Fprintln(w, "no campaigns")
		return
	}
	for _, cid := range c.order {
		cm := c.campaigns[cid]
		done, failed, leased, pending := cm.counts()
		state := "running"
		switch {
		case !cm.terminal():
		case failed > 0 || cm.renderErr != "":
			state = "degraded"
		default:
			state = "complete"
		}
		fmt.Fprintf(w, "campaign %s: %s — %s (done %d, failed %d, leased %d, pending %d, cache hits %d)\n",
			cm.id, cm.spec, state, done, failed, leased, pending, cm.cacheHits)
		for _, key := range cm.order {
			cl := cm.cells[key]
			detail := ""
			switch {
			case cl.fromCache:
				detail = " (cache)"
			case cl.phase == CellLeased:
				detail = fmt.Sprintf(" (attempt %d, %d lease(s))", cl.attempts, cl.leases)
			case cl.phase == CellPending && cl.attempts > 0:
				detail = fmt.Sprintf(" (retry, %d attempt(s) so far)", cl.attempts)
			case cl.phase == CellFailed:
				detail = fmt.Sprintf(" (%s)", cl.errText)
			}
			fmt.Fprintf(w, "  %-24s %-8s%s\n", cl.id, cl.phase, detail)
		}
	}
	s := c.stats
	fmt.Fprintf(w, "leases: granted %d (dup %d), renewed %d, stale heartbeats %d, expired %d\n",
		s.Granted, s.DupGranted, s.Renewed, s.StaleHeartbeats, s.Expired)
	fmt.Fprintf(w, "cells: completed %d (stale-accepted %d, dup results %d), requeued %d, degraded %d, failed reports %d, cache hits %d\n",
		s.Completed, s.StaleAccepted, s.DupResults, s.Requeued, s.Degraded, s.FailedReports, s.CacheHits)
}

// CheckInvariants verifies the exactly-once accounting and lease/cell
// consistency the chaos harness asserts after every scenario step:
//
//   - Done cells hold a value and were delivered exactly once (or came
//     from the cache and were never delivered);
//   - Failed cells carry a reason and hold no leases;
//   - Pending cells hold no leases and no value;
//   - Leased cells hold at least one lease, and per-cell lease counts
//     match the live lease table;
//   - every live lease points at a Leased cell of a known campaign;
//   - rendered campaigns are terminal.
func (c *Coordinator) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	liveCount := make(map[string]int)
	for id, l := range c.leases {
		cm, ok := c.campaigns[l.camp]
		if !ok {
			return fmt.Errorf("lease %s references unknown campaign %s", id, l.camp)
		}
		cl, ok := cm.cells[l.cellKey]
		if !ok {
			return fmt.Errorf("lease %s references unknown cell %s/%s", id, l.camp, l.cellKey)
		}
		if cl.phase != CellLeased {
			return fmt.Errorf("lease %s live on %s cell %s", id, cl.phase, cl.id)
		}
		liveCount[l.camp+"/"+l.cellKey]++
	}
	for _, cid := range c.order {
		cm := c.campaigns[cid]
		for _, key := range cm.order {
			cl := cm.cells[key]
			live := liveCount[cid+"/"+key]
			switch cl.phase {
			case CellDone:
				if len(cl.value) == 0 {
					return fmt.Errorf("done cell %s has no value", cl.id)
				}
				if cl.fromCache && cl.completions != 0 {
					return fmt.Errorf("cache-served cell %s counts %d completions", cl.id, cl.completions)
				}
				if !cl.fromCache && cl.completions != 1 {
					return fmt.Errorf("done cell %s counts %d completions, want exactly 1", cl.id, cl.completions)
				}
			case CellFailed:
				if cl.errText == "" {
					return fmt.Errorf("failed cell %s has no reason", cl.id)
				}
				if cl.leases != 0 || live != 0 {
					return fmt.Errorf("failed cell %s still holds leases", cl.id)
				}
			case CellPending:
				if cl.leases != 0 || live != 0 {
					return fmt.Errorf("pending cell %s holds leases", cl.id)
				}
				if cl.completions != 0 || len(cl.value) != 0 {
					return fmt.Errorf("pending cell %s holds a value", cl.id)
				}
			case CellLeased:
				if cl.leases < 1 {
					return fmt.Errorf("leased cell %s counts %d leases", cl.id, cl.leases)
				}
				if cl.leases != live {
					return fmt.Errorf("cell %s counts %d leases but %d are live", cl.id, cl.leases, live)
				}
			}
			if cl.completions > 1 {
				return fmt.Errorf("cell %s delivered %d times (exactly-once violated)", cl.id, cl.completions)
			}
		}
		if cm.rendered && !cm.terminal() {
			return fmt.Errorf("campaign %s rendered before terminal", cid)
		}
	}
	return nil
}
