package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
)

// fakeClock steps lease expiry deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000_000, 0).UTC()}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// fakePlanner drives the lease machinery over a synthetic grid — no
// simulation, so chaos scenarios run by the hundreds. The grid is
// `cells` cells scoped under the spec's first experiment name; assembly
// prints one "unit=value" line per cell in order, rendering degraded
// cells as ERR with their recorded reason.
type fakePlanner struct{ cells int }

func (f fakePlanner) Plan(s Spec) ([]harness.CellID, error) {
	if len(s.Experiments) == 0 {
		return nil, fmt.Errorf("fake: spec names no experiments")
	}
	grid := make([]harness.CellID, f.cells)
	for i := range grid {
		grid[i] = harness.CellID{Scope: s.Experiments[0], Seq: i + 1, Unit: fmt.Sprintf("u%d", i+1)}
	}
	return grid, nil
}

func (f fakePlanner) Assemble(s Spec, cs *harness.CheckpointState, stub map[string]string, w io.Writer) error {
	grid, err := f.Plan(s)
	if err != nil {
		return err
	}
	cells := cs.Export()
	var firstErr error
	for _, c := range grid {
		if msg, ok := stub[c.Key()]; ok {
			fmt.Fprintf(w, "%s=ERR(%s)\n", c.Unit, msg)
			if firstErr == nil {
				firstErr = fmt.Errorf("fake: cell %s degraded", c)
			}
			continue
		}
		raw, ok := cells[c.Key()]
		if !ok {
			return fmt.Errorf("fake: cell %s has no recorded result", c)
		}
		var rec struct {
			Unit  string          `json:"unit"`
			Value json.RawMessage `json:"value"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("fake: cell %s record: %w", c, err)
		}
		fmt.Fprintf(w, "%s=%s\n", c.Unit, rec.Value)
	}
	return firstErr
}

// cellValue fabricates the raw checkpoint cell record a worker would
// export for a cell.
func cellValue(c harness.CellID, v int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"unit":%q,"value":%d}`, c.Unit, v))
}

// fakeSpec is a synthetic campaign spec for fakePlanner coordinators.
func fakeSpec(seed uint64) Spec {
	return Spec{Experiments: []string{"t1"}, Scale: 8, Accesses: 100, Seed: seed}
}

// fakeConfig is the standard test policy: short deterministic windows
// under a fake clock.
func fakeConfig(clk *fakeClock, cells int) Config {
	return Config{
		LeaseTTL:    10 * time.Second,
		RetryBudget: 3,
		BackoffBase: time.Second,
		BackoffMax:  8 * time.Second,
		Seed:        42,
		Clock:       clk.Now,
		Planner:     fakePlanner{cells: cells},
	}
}

// mustInvariants fails the test on any accounting violation.
func mustInvariants(t *testing.T, c *Coordinator) {
	t.Helper()
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
}

// completeValue delivers a fabricated value for a grant.
func completeValue(t *testing.T, c *Coordinator, g *Grant, v int) CompleteStatus {
	t.Helper()
	st, err := c.Complete(CompleteRequest{
		LeaseID: g.LeaseID, Campaign: g.Campaign,
		Key: g.Cell.Key(), Unit: g.Cell.Unit,
		Value: cellValue(g.Cell, v),
	})
	if err != nil {
		t.Fatalf("complete %s: %v", g.Cell, err)
	}
	return st
}

// mustLease grants a cell or fails the test.
func mustLease(t *testing.T, c *Coordinator, worker string) *Grant {
	t.Helper()
	g, err := c.Lease(worker)
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	if g == nil {
		t.Fatal("no cell was grantable")
	}
	return g
}

// mustNoLease asserts no cell is grantable right now.
func mustNoLease(t *testing.T, c *Coordinator, worker string) {
	t.Helper()
	g, err := c.Lease(worker)
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	if g != nil {
		t.Fatalf("unexpected grant of %s", g.Cell)
	}
}
