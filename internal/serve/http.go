package serve

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler exposes the coordinator over HTTP/JSON:
//
//	POST /v1/campaigns          submit a Spec            -> SubmitResponse
//	GET  /v1/campaigns/{id}     campaign progress        -> CampaignStatus
//	GET  /v1/jobs               job table (text)         -> WriteJobs output
//	POST /v1/lease              request work             -> Grant | 204
//	POST /v1/lease/renew        heartbeat a lease        -> 204 | 410
//	POST /v1/lease/complete     deliver a cell outcome   -> CompleteResponse
//
// Error mapping: invalid requests 400, unknown campaigns 404, stale
// leases 410 (the worker must abandon the cell), a killed coordinator
// 503, persistence failures 500.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var s Spec
		if !decode(w, r, &s) {
			return
		}
		resp, err := c.Submit(s)
		if err != nil {
			// Anything that is not a down coordinator or a persistence
			// failure is the client's fault: a spec the planner refused.
			httpError(w, statusCode(err, http.StatusBadRequest), err)
			return
		}
		reply(w, http.StatusCreated, resp)
	})
	mux.HandleFunc("GET /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := c.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, statusCode(err, http.StatusNotFound), err)
			return
		}
		reply(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		down := c.down
		c.mu.Unlock()
		if down {
			httpError(w, http.StatusServiceUnavailable, ErrDown)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		c.WriteJobs(w)
	})
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decode(w, r, &req) {
			return
		}
		g, err := c.Lease(req.Worker)
		if err != nil {
			httpError(w, statusCode(err, http.StatusInternalServerError), err)
			return
		}
		if g == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		reply(w, http.StatusOK, g)
	})
	mux.HandleFunc("POST /v1/lease/renew", func(w http.ResponseWriter, r *http.Request) {
		var req RenewRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.Renew(req.LeaseID); err != nil {
			httpError(w, statusCode(err, http.StatusInternalServerError), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/lease/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decode(w, r, &req) {
			return
		}
		st, err := c.Complete(req)
		if err != nil {
			httpError(w, statusCode(err, http.StatusBadRequest), err)
			return
		}
		reply(w, http.StatusOK, CompleteResponse{Status: st})
	})
	return mux
}

// statusCode maps sentinel errors; fallback covers everything else.
func statusCode(err error, fallback int) int {
	switch {
	case errors.Is(err, ErrDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrStaleLease):
		return http.StatusGone
	case errors.Is(err, ErrUnknownCampaign):
		return http.StatusNotFound
	case errors.Is(err, ErrPersist):
		return http.StatusInternalServerError
	}
	return fallback
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
