package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestLeaseExpiryBackoffRetryBudget is the lease state machine's
// acceptance table: at every retry budget, a cell whose leases keep
// expiring is granted exactly budget+1 times — each re-queue gated by
// exponential backoff — and then degrades to a Failed (ERR) cell whose
// reason names the attempt count.
func TestLeaseExpiryBackoffRetryBudget(t *testing.T) {
	for _, budget := range []int{0, 1, 3} {
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			clk := newClock()
			cfg := fakeConfig(clk, 1)
			cfg.RetryBudget = budget
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Submit(fakeSpec(1)); err != nil {
				t.Fatal(err)
			}
			grants := 0
			for i := 0; i <= budget; i++ {
				// Before the backoff window closes the cell must not be
				// grantable (first grant has no backoff window).
				g := mustLease(t, c, "w")
				grants++
				mustInvariants(t, c)
				mustNoLease(t, c, "w") // single cell, already leased
				clk.Advance(cfg.LeaseTTL + time.Second)
				c.Sweep()
				mustInvariants(t, c)
				if i < budget {
					// Re-queued under backoff: not grantable yet...
					mustNoLease(t, c, "w")
					// ...but grantable once the (capped, jittered) window passes.
					clk.Advance(cfg.BackoffMax + cfg.BackoffBase)
				}
				_ = g
			}
			if grants != budget+1 {
				t.Fatalf("granted %d times, want %d", grants, budget+1)
			}
			mustNoLease(t, c, "w") // degraded, never grantable again
			st, err := c.Status("c0001")
			if err != nil {
				t.Fatal(err)
			}
			if st.State != "degraded" || st.Failed != 1 {
				t.Fatalf("status = %q failed=%d, want degraded/1", st.State, st.Failed)
			}
			want := fmt.Sprintf("failed after %d attempt(s)", budget+1)
			if len(st.Failures) != 1 || !strings.Contains(st.Failures[0].Err, want) ||
				!strings.Contains(st.Failures[0].Err, "lease expired") {
				t.Fatalf("failure text %+v does not explain itself (want %q)", st.Failures, want)
			}
			if !strings.Contains(st.Output, "ERR(") {
				t.Fatalf("degraded campaign output lacks an ERR cell:\n%s", st.Output)
			}
			s := c.StatsSnapshot()
			if s.Expired != uint64(budget+1) || s.Requeued != uint64(budget) || s.Degraded != 1 {
				t.Fatalf("stats = %+v, want expired=%d requeued=%d degraded=1", s, budget+1, budget)
			}
		})
	}
}

// TestBackoffGrowsExponentiallyWithJitter pins the re-queue schedule:
// attempt n waits min(base<<(n-1), max) plus jitter in [0, base/2),
// read straight off the cell's readyAt gate.
func TestBackoffGrowsExponentiallyWithJitter(t *testing.T) {
	clk := newClock()
	cfg := fakeConfig(clk, 1)
	cfg.RetryBudget = 4
	cfg.BackoffBase = time.Second
	cfg.BackoffMax = 4 * time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(fakeSpec(1)); err != nil {
		t.Fatal(err)
	}
	wantFloor := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 4 * time.Second}
	for n := 1; n <= 4; n++ {
		mustLease(t, c, "w")
		clk.Advance(cfg.LeaseTTL + time.Second)
		c.Sweep()
		cl := c.campaigns["c0001"].cells["t1#1"]
		if cl.phase != CellPending {
			t.Fatalf("after expiry %d phase = %s, want pending", n, cl.phase)
		}
		gap := cl.readyAt.Sub(clk.Now())
		floor := wantFloor[n-1]
		ceil := floor + cfg.BackoffBase/2
		if gap < floor || gap >= ceil {
			t.Fatalf("attempt %d backoff = %v, want [%v, %v)", n, gap, floor, ceil)
		}
		clk.Advance(ceil)
	}
}

// TestRenewExtendsAndStaleHeartbeatRefused: heartbeats extend a live
// lease a full TTL each time; a heartbeat after expiry is refused with
// ErrStaleLease (HTTP 410) and never resurrects the lease.
func TestRenewExtendsAndStaleHeartbeatRefused(t *testing.T) {
	clk := newClock()
	c, err := New(fakeConfig(clk, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(fakeSpec(1)); err != nil {
		t.Fatal(err)
	}
	g := mustLease(t, c, "w1")
	// Renewed at 6s and 12s: alive at 15s even though TTL is 10s.
	clk.Advance(6 * time.Second)
	if err := c.Renew(g.LeaseID); err != nil {
		t.Fatalf("renew at 6s: %v", err)
	}
	clk.Advance(6 * time.Second)
	if err := c.Renew(g.LeaseID); err != nil {
		t.Fatalf("renew at 12s: %v", err)
	}
	mustInvariants(t, c)
	// Now stall past the renewed TTL: the lease dies and stays dead.
	clk.Advance(11 * time.Second)
	if err := c.Renew(g.LeaseID); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("stale renew err = %v, want ErrStaleLease", err)
	}
	if err := c.Renew("l9-9999"); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("unknown lease renew err = %v, want ErrStaleLease", err)
	}
	s := c.StatsSnapshot()
	if s.Renewed != 2 || s.StaleHeartbeats != 2 {
		t.Fatalf("stats = %+v, want renewed=2 stale=2", s)
	}
	// The cell re-queued; a fresh grant goes to another worker and the
	// original lease is still refused.
	clk.Advance(2 * time.Second)
	g2 := mustLease(t, c, "w2")
	if g2.LeaseID == g.LeaseID {
		t.Fatal("expired lease ID was reissued")
	}
	if err := c.Renew(g.LeaseID); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("old lease renewed after regrant: %v", err)
	}
	mustInvariants(t, c)
}

// TestFailureReportsConsumeRetryBudget: worker-reported failures walk
// the same backoff/budget path as expiries, and the final report's
// message surfaces in the degraded cell's ERR text.
func TestFailureReportsConsumeRetryBudget(t *testing.T) {
	clk := newClock()
	cfg := fakeConfig(clk, 1)
	cfg.RetryBudget = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(fakeSpec(1)); err != nil {
		t.Fatal(err)
	}
	g := mustLease(t, c, "w")
	st, err := c.Complete(CompleteRequest{
		LeaseID: g.LeaseID, Campaign: g.Campaign, Key: g.Cell.Key(),
		Unit: g.Cell.Unit, Err: "synthetic panic in cell",
	})
	if err != nil || st != CompleteRetried {
		t.Fatalf("first failure report: status=%q err=%v, want retried", st, err)
	}
	mustInvariants(t, c)
	clk.Advance(cfg.BackoffMax + cfg.BackoffBase)
	g = mustLease(t, c, "w")
	st, err = c.Complete(CompleteRequest{
		LeaseID: g.LeaseID, Campaign: g.Campaign, Key: g.Cell.Key(),
		Unit: g.Cell.Unit, Err: "synthetic panic in cell",
	})
	if err != nil || st != CompleteDegraded {
		t.Fatalf("second failure report: status=%q err=%v, want degraded", st, err)
	}
	mustInvariants(t, c)
	cs, err := c.Status(g.Campaign)
	if err != nil {
		t.Fatal(err)
	}
	if cs.State != "degraded" || !strings.Contains(cs.Output, "synthetic panic in cell") {
		t.Fatalf("degraded output does not carry the reported reason:\n%s", cs.Output)
	}
}

// TestDuplicateAndStaleDeliveries: the exactly-once rules — first
// delivery wins, duplicates are counted and ignored, and a delivery
// under an expired lease is still credited when the cell lacks a
// result.
func TestDuplicateAndStaleDeliveries(t *testing.T) {
	t.Run("duplicate", func(t *testing.T) {
		clk := newClock()
		c, err := New(fakeConfig(clk, 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Submit(fakeSpec(1)); err != nil {
			t.Fatal(err)
		}
		g := mustLease(t, c, "w")
		if st := completeValue(t, c, g, 11); st != CompleteRecorded {
			t.Fatalf("first delivery status = %q", st)
		}
		if st := completeValue(t, c, g, 11); st != CompleteDuplicate {
			t.Fatalf("second delivery status = %q, want duplicate", st)
		}
		mustInvariants(t, c)
		s := c.StatsSnapshot()
		if s.Completed != 1 || s.DupResults != 1 {
			t.Fatalf("stats = %+v, want completed=1 dup=1", s)
		}
		st, err := c.Status(g.Campaign)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "complete" || st.Output != "u1=11\n" {
			t.Fatalf("campaign = %q / %q", st.State, st.Output)
		}
	})

	t.Run("stale-accepted-then-duplicate", func(t *testing.T) {
		clk := newClock()
		c, err := New(fakeConfig(clk, 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Submit(fakeSpec(1)); err != nil {
			t.Fatal(err)
		}
		// w1 stalls; the lease expires and the cell regrants to w2.
		g1 := mustLease(t, c, "w1")
		clk.Advance(11 * time.Second)
		c.Sweep()
		clk.Advance(10 * time.Second)
		g2 := mustLease(t, c, "w2")
		// w1 wakes up and delivers late: the value is deterministic, so
		// it is accepted, and w2's later delivery becomes the duplicate.
		if st := completeValue(t, c, g1, 7); st != CompleteStaleRecorded {
			t.Fatalf("late delivery status = %q, want stale-recorded", st)
		}
		mustInvariants(t, c)
		if st := completeValue(t, c, g2, 7); st != CompleteDuplicate {
			t.Fatalf("superseded delivery status = %q, want duplicate", st)
		}
		mustInvariants(t, c)
		s := c.StatsSnapshot()
		if s.Completed != 1 || s.StaleAccepted != 1 || s.DupResults != 1 {
			t.Fatalf("stats = %+v, want completed=1 stale=1 dup=1", s)
		}
	})
}

// TestResultCacheDedupAcrossCampaigns: identical (config, seed) cells
// are served from the result cache without re-running, a campaign that
// is fully cached is born terminal with identical output, and a
// different seed misses.
func TestResultCacheDedupAcrossCampaigns(t *testing.T) {
	clk := newClock()
	c, err := New(fakeConfig(clk, 3))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(fakeSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if sub.CacheHits != 0 {
		t.Fatalf("fresh campaign reports %d cache hits", sub.CacheHits)
	}
	for i := 0; i < 3; i++ {
		g := mustLease(t, c, "w")
		completeValue(t, c, g, 100+g.Cell.Seq)
	}
	first, err := c.Status(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != "complete" {
		t.Fatalf("first campaign state = %q", first.State)
	}

	sub2, err := c.Submit(fakeSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if sub2.CacheHits != 3 {
		t.Fatalf("identical spec hit cache %d times, want 3", sub2.CacheHits)
	}
	mustNoLease(t, c, "w") // nothing left to execute
	second, err := c.Status(sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if second.State != "complete" || second.Output != first.Output {
		t.Fatalf("cached campaign output differs:\n--- first ---\n%s--- second ---\n%s", first.Output, second.Output)
	}
	mustInvariants(t, c)

	// A different seed shapes different cell values: no hits.
	sub3, err := c.Submit(fakeSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if sub3.CacheHits != 0 {
		t.Fatalf("different-seed spec hit cache %d times", sub3.CacheHits)
	}
	if g := mustLease(t, c, "w"); g.Campaign != sub3.ID {
		t.Fatalf("grant for %s, want the uncached campaign %s", g.Campaign, sub3.ID)
	}
	mustInvariants(t, c)
}

// TestCoordinatorCrashResume: kill the coordinator mid-campaign and
// start a successor on the same state file — done cells survive with
// their values, leased cells re-queue with attempts preserved, the
// result cache rebuilds, and the finished campaign's output matches
// what an unkilled coordinator produces.
func TestCoordinatorCrashResume(t *testing.T) {
	clk := newClock()
	path := filepath.Join(t.TempDir(), "state.json")
	cfg := fakeConfig(clk, 3)
	cfg.StatePath = path
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(fakeSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	g1 := mustLease(t, c, "w1")
	completeValue(t, c, g1, 101)
	g2 := mustLease(t, c, "w2") // in flight at the crash
	c.Kill()
	if _, err := c.Lease("w1"); !errors.Is(err, ErrDown) {
		t.Fatalf("killed coordinator leased: %v", err)
	}
	if _, err := c.Status(sub.ID); !errors.Is(err, ErrDown) {
		t.Fatalf("killed coordinator answered status: %v", err)
	}

	r, err := New(cfg)
	if err != nil {
		t.Fatalf("successor failed to load state: %v", err)
	}
	mustInvariants(t, r)
	st, err := r.Status(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || st.Pending != 2 || st.Leased != 0 {
		t.Fatalf("resumed status = done %d / pending %d / leased %d, want 1/2/0", st.Done, st.Pending, st.Leased)
	}
	// The in-flight cell's attempt is preserved, not reset: its lease
	// died with the old coordinator but the work was still charged.
	if got := r.campaigns[sub.ID].cells[g2.Cell.Key()].attempts; got != 1 {
		t.Fatalf("resumed attempts = %d, want 1", got)
	}
	// The dead incarnation's lease is refused by the successor.
	if err := r.Renew(g2.LeaseID); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("dead coordinator's lease renewed by successor: %v", err)
	}
	// Finish on the successor; the late delivery for g2's cell arrives
	// under the dead lease and is still credited.
	stx, err := r.Complete(CompleteRequest{
		LeaseID: g2.LeaseID, Campaign: g2.Campaign, Key: g2.Cell.Key(),
		Unit: g2.Cell.Unit, Value: cellValue(g2.Cell, 102),
	})
	if err != nil || stx != CompleteStaleRecorded {
		t.Fatalf("late delivery to successor: status=%q err=%v", stx, err)
	}
	g3 := mustLease(t, r, "w3")
	completeValue(t, r, g3, 103)
	mustInvariants(t, r)
	final, err := r.Status(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "complete" || final.Output != "u1=101\nu2=102\nu3=103\n" {
		t.Fatalf("resumed campaign finished %q with output:\n%s", final.State, final.Output)
	}
	// The cache rebuilt from durable state: the same spec re-submitted
	// to the successor is fully served without execution.
	sub2, err := r.Submit(fakeSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if sub2.CacheHits != 3 {
		t.Fatalf("successor cache hits = %d, want 3", sub2.CacheHits)
	}
}

// TestStateFileRefusals: a successor refuses — naming the mismatch —
// state files of the wrong version, torn or edited content, garbage,
// and unknown fields, rather than resuming from a file it might
// misread.
func TestStateFileRefusals(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()

	// A valid file to mutate: one campaign, one completed cell.
	good := filepath.Join(dir, "good.json")
	cfg := fakeConfig(clk, 1)
	cfg.StatePath = good
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(fakeSpec(1)); err != nil {
		t.Fatal(err)
	}
	completeValue(t, c, mustLease(t, c, "w"), 5)
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	load := func(t *testing.T, name, content string) error {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		lc := fakeConfig(clk, 1)
		lc.StatePath = p
		_, err := New(lc)
		return err
	}

	t.Run("garbage", func(t *testing.T) {
		err := load(t, "garbage.json", "not json at all")
		if err == nil || !strings.Contains(err.Error(), "is not a coordinator state file") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		err := load(t, "v9.json", `{"version":9}`)
		if err == nil || !strings.Contains(err.Error(), "version 9, this build reads 1") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("torn", func(t *testing.T) {
		edited := strings.Replace(string(raw), `"value": 5`, `"value": 6`, 1)
		if edited == string(raw) {
			t.Fatal("mutation did not apply")
		}
		err := load(t, "torn.json", edited)
		if err == nil || !strings.Contains(err.Error(), "torn or was edited") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unknown-field", func(t *testing.T) {
		var f map[string]any
		if err := json.Unmarshal(raw, &f); err != nil {
			t.Fatal(err)
		}
		f["surprise"] = true
		b, _ := json.Marshal(f)
		err := load(t, "extra.json", string(b))
		if err == nil || !strings.Contains(err.Error(), "decoding state file") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unknown-phase", func(t *testing.T) {
		edited := strings.Replace(string(raw), `"phase": "done"`, `"phase": "zombie"`, 1)
		if edited == string(raw) {
			t.Fatal("mutation did not apply")
		}
		// Re-sum so the phase refusal, not the content hash, fires.
		var f stateFile
		if err := json.Unmarshal([]byte(edited), &f); err != nil {
			t.Fatal(err)
		}
		f.Sum = stateSum(f.Campaigns)
		b, _ := json.MarshalIndent(f, "", "  ")
		err := load(t, "zombie.json", string(b))
		if err == nil || !strings.Contains(err.Error(), `unknown phase "zombie"`) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("missing-is-fresh-start", func(t *testing.T) {
		lc := fakeConfig(clk, 1)
		lc.StatePath = filepath.Join(dir, "does-not-exist.json")
		if _, err := New(lc); err != nil {
			t.Fatalf("missing state file refused: %v", err)
		}
	})
}
