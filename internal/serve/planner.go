package serve

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/harness"
)

// Planner decomposes a campaign spec into cells and assembles the final
// output from completed cells. The coordinator's lease machinery is
// written entirely against this seam: the production planner delegates
// to the harness, and the chaos tests substitute a synthetic grid so
// hundreds of seeded scenarios run without touching the simulator.
type Planner interface {
	// Plan enumerates the campaign's cell grid in execution order.
	Plan(s Spec) ([]harness.CellID, error)
	// Assemble renders the campaign output from recorded cells. Cells
	// listed in stub (keyed by CellID.Key) degraded to failures; their
	// messages render as ERR cells. Assemble must not execute work: every
	// value comes from cs or stub.
	Assemble(s Spec, cs *harness.CheckpointState, stub map[string]string, w io.Writer) error
}

// HarnessPlanner is the production planner: cell grids from
// harness.Experiment.Cells, assembly via RenderFromCheckpoint. The
// assembled output matches a serial `zerodev run` byte for byte — run
// prints each experiment's output followed by a blank line, and so does
// Assemble.
type HarnessPlanner struct{}

// Plan validates the spec, then concatenates each named experiment's
// grid in spec order.
func (HarnessPlanner) Plan(s Spec) ([]harness.CellID, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var grid []harness.CellID
	for _, id := range s.Experiments {
		e, err := harness.Get(id)
		if err != nil {
			return nil, err
		}
		cells, err := e.Cells(s.Options())
		if err != nil {
			return nil, err
		}
		grid = append(grid, cells...)
	}
	return grid, nil
}

// Assemble replays each experiment from the recorded cells, writing the
// same experiment-plus-blank-line sequence `zerodev run` writes. An
// assembly error (a missing cell, a stubbed ERR cell surfacing through
// FailureSummary) is returned after rendering finishes so degraded
// campaigns still produce their partial output.
func (HarnessPlanner) Assemble(s Spec, cs *harness.CheckpointState, stub map[string]string, w io.Writer) error {
	var errs []string
	for _, id := range s.Experiments {
		e, err := harness.Get(id)
		if err != nil {
			return err
		}
		if err := e.RenderFromCheckpoint(s.Options(), cs, stub, w); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", id, err))
		}
		fmt.Fprintln(w)
	}
	if len(errs) > 0 {
		return fmt.Errorf("serve: assembling campaign: %s", strings.Join(errs, "; "))
	}
	return nil
}
