// Package serve implements the fault-tolerant campaign service behind
// `zerodev serve` (coordinator) and `zerodev work` (worker).
//
// The coordinator accepts campaign specs over an HTTP/JSON API,
// decomposes each into cells by reusing the harness's deterministic
// job decomposition (harness.Experiment.Cells), and hands cells out to
// workers under time-bounded leases with heartbeat renewal. The service
// layer is deliberately dumb about simulation: PR 4's deterministic
// cell identity — a cell's value is a pure function of (experiment,
// options, unit) — means any worker's result for a cell is
// interchangeable with any other's, so the coordinator only has to be
// robust, never clever:
//
//   - a lease that expires (worker death, stall, partition) re-queues
//     its cell with exponential backoff plus seeded jitter;
//   - a cell that exhausts its retry budget degrades to a failed (ERR)
//     cell instead of wedging the campaign, reusing the harness's
//     JobError/CellText semantics at render time;
//   - a result delivered twice, late, or under a stale lease is
//     deduplicated: the first delivery wins and every later one is
//     counted but ignored (exactly-once cell accounting);
//   - identical (config, seed) cells across campaigns are served from a
//     content-hash result cache without re-running;
//   - durable state (specs, cell table, completed values) persists
//     through internal/atomicio, so a coordinator crash resumes: on
//     restart, leased cells re-queue and finished work is kept.
//
// When every cell of a campaign is done or failed, the coordinator
// assembles the final output by replaying the experiments from the
// recorded cells (harness.Experiment.RenderFromCheckpoint) — no
// simulation runs at assembly, and the output is byte-identical to a
// serial `zerodev run` of the same spec (the kill/recover equivalence
// tests enforce this at 1, 2, and 4 workers, under -race).
//
// The lease/retry policy lives entirely in the Coordinator's cell state
// machine, orthogonal to both the simulation engine and the HTTP
// transport; the Planner seam separates service robustness from the
// harness so the chaos tests can drive the full lease machinery over a
// synthetic grid. DESIGN.md §10 documents the state machine and the
// exactly-once argument.
package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/harness"
)

// Spec is a submitted campaign: which experiments to run and the
// result-shaping options. It is the wire format of POST /v1/campaigns
// and the worker's instruction for rebuilding identical Options.
type Spec struct {
	Experiments []string `json:"experiments"`
	Scale       int      `json:"scale"`
	Accesses    int      `json:"accesses"`
	Seed        uint64   `json:"seed"`
	Quick       bool     `json:"quick,omitempty"`
	// Backends is the protocol-backend selection for backend-axis
	// experiments ("" = all). It shapes those experiments' cell grids,
	// so it rides the spec: planner, workers, and assembler all rebuild
	// the same grid from it.
	Backends string `json:"backends,omitempty"`
}

// Options maps the spec to harness options for planning, worker
// execution, and assembly. Concurrency, progress, and crash-artifact
// options are the caller's business; everything that shapes results
// comes from the spec.
func (s Spec) Options() harness.Options {
	return harness.Options{
		Scale:         s.Scale,
		Accesses:      s.Accesses,
		Seed:          s.Seed,
		Quick:         s.Quick,
		Backends:      s.Backends,
		Workers:       1,
		DomainWorkers: 1,
	}
}

// Validate rejects specs that could not have come from a correct
// client: unknown experiments and option values the harness would
// refuse.
func (s Spec) Validate() error {
	if len(s.Experiments) == 0 {
		return fmt.Errorf("serve: spec names no experiments")
	}
	seen := make(map[string]bool, len(s.Experiments))
	for _, id := range s.Experiments {
		if _, err := harness.Get(id); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if seen[id] {
			return fmt.Errorf("serve: spec lists experiment %q twice", id)
		}
		seen[id] = true
	}
	if err := s.Options().Validate(); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// String renders the spec for listings.
func (s Spec) String() string {
	q := ""
	if s.Quick {
		q = ", quick"
	}
	return fmt.Sprintf("%v (scale %d, accesses %d, seed %d%s)", s.Experiments, s.Scale, s.Accesses, s.Seed, q)
}

// Config tunes the coordinator's lease and retry policy.
type Config struct {
	// LeaseTTL bounds how long a granted cell may go without a
	// heartbeat before it is re-queued.
	LeaseTTL time.Duration
	// RetryBudget is how many extra attempts a cell gets after its
	// first before it degrades to a failed (ERR) cell: a cell is
	// granted or failure-reported at most RetryBudget+1 times.
	RetryBudget int
	// BackoffBase and BackoffMax bound the exponential re-queue delay:
	// attempt n waits min(BackoffBase<<(n-1), BackoffMax) plus jitter in
	// [0, BackoffBase/2) drawn from the coordinator's seeded RNG.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives backoff jitter (and nothing else); fixed seeds make
	// re-queue schedules reproducible in tests.
	Seed uint64
	// StatePath, when non-empty, persists coordinator state atomically
	// after every durable transition (campaign submitted, cell finished
	// or degraded, output assembled); a coordinator restarted with the
	// same path resumes, re-queueing cells that were leased at the
	// crash.
	StatePath string
	// Clock supplies the current time (nil = time.Now). Tests inject a
	// fake clock to step lease expiry deterministically.
	Clock func() time.Time
	// Planner supplies cell decomposition and output assembly (nil =
	// the harness-backed planner). The chaos tests substitute a
	// synthetic grid to exercise the lease machinery in isolation.
	Planner Planner
	// Chaos, when non-nil, injects service-layer faults (duplicate
	// lease grants) inside the coordinator; production leaves it nil.
	Chaos *faults.ServiceChaos
}

// DefaultConfig returns production lease policy: 30s leases, 3 retries,
// 1s base backoff capped at 1m.
func DefaultConfig() Config {
	return Config{
		LeaseTTL:    30 * time.Second,
		RetryBudget: 3,
		BackoffBase: time.Second,
		BackoffMax:  time.Minute,
		Seed:        1,
	}
}

// withDefaults fills zero fields so a partially-specified config (tests
// often set only what they constrain) behaves sanely.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = d.LeaseTTL
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = d.BackoffBase
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = d.BackoffMax
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Planner == nil {
		c.Planner = HarnessPlanner{}
	}
	return c
}

// --- wire types --------------------------------------------------------------

// SubmitResponse answers POST /v1/campaigns.
type SubmitResponse struct {
	ID        string `json:"id"`
	Cells     int    `json:"cells"`
	CacheHits int    `json:"cache_hits"`
}

// LeaseRequest asks for work (POST /v1/lease).
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Grant is a leased cell: everything a worker needs to compute the
// result (the spec rebuilds identical Options; the cell selects the
// job) plus the lease to renew and complete under.
type Grant struct {
	LeaseID  string         `json:"lease_id"`
	Campaign string         `json:"campaign"`
	Cell     harness.CellID `json:"cell"`
	Spec     Spec           `json:"spec"`
	TTLMS    int64          `json:"ttl_ms"`
}

// RenewRequest heartbeats a lease (POST /v1/lease/renew).
type RenewRequest struct {
	LeaseID string `json:"lease_id"`
}

// CompleteRequest delivers a cell outcome (POST /v1/lease/complete):
// either Value (the raw checkpoint cell record from
// harness.CheckpointState.Export) or Err (the execution failure).
// Campaign and Key identify the cell independently of the lease so
// late deliveries under expired leases can still be credited.
type CompleteRequest struct {
	LeaseID  string          `json:"lease_id"`
	Campaign string          `json:"campaign"`
	Key      string          `json:"key"`
	Unit     string          `json:"unit"`
	Value    json.RawMessage `json:"value,omitempty"`
	Err      string          `json:"err,omitempty"`
}

// CompleteStatus classifies what the coordinator did with a delivery.
type CompleteStatus string

const (
	// CompleteRecorded: the value was accepted and the cell is done.
	CompleteRecorded CompleteStatus = "recorded"
	// CompleteStaleRecorded: the lease was expired or superseded but the
	// cell still needed a result, so the (deterministic, therefore
	// valid) value was accepted anyway.
	CompleteStaleRecorded CompleteStatus = "stale-recorded"
	// CompleteDuplicate: the cell already had a result; this delivery
	// was counted and ignored.
	CompleteDuplicate CompleteStatus = "duplicate"
	// CompleteRetried: the worker reported a failure and the cell was
	// re-queued under backoff.
	CompleteRetried CompleteStatus = "retried"
	// CompleteDegraded: the worker reported a failure and the cell's
	// retry budget is exhausted; it is now a failed (ERR) cell.
	CompleteDegraded CompleteStatus = "degraded"
	// CompleteIgnored: the delivery referenced a finished or unknown
	// cell/lease in a way that needed no action.
	CompleteIgnored CompleteStatus = "ignored"
)

// CompleteResponse answers POST /v1/lease/complete.
type CompleteResponse struct {
	Status CompleteStatus `json:"status"`
}

// CellFailure describes one degraded cell in a campaign status.
type CellFailure struct {
	Cell string `json:"cell"`
	Unit string `json:"unit"`
	Err  string `json:"err"`
}

// CampaignStatus answers GET /v1/campaigns/{id}.
type CampaignStatus struct {
	ID        string        `json:"id"`
	Spec      Spec          `json:"spec"`
	State     string        `json:"state"` // running | complete | degraded
	Total     int           `json:"total"`
	Done      int           `json:"done"`
	Failed    int           `json:"failed"`
	Leased    int           `json:"leased"`
	Pending   int           `json:"pending"`
	CacheHits int           `json:"cache_hits"`
	Failures  []CellFailure `json:"failures,omitempty"`
	// Output is the assembled campaign output, present once the
	// campaign reaches a terminal state. For complete campaigns it is
	// byte-identical to a serial `zerodev run` of the same spec.
	Output string `json:"output,omitempty"`
}
