package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares got against testdata/<name>.golden, rewriting the
// file under -update (same idiom as cmd/zerodev).
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/serve -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (run `go test ./internal/serve -update` after intended changes)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// postJSON is a bare test client for the coordinator API.
func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getStatus(t *testing.T, base, id string) CampaignStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET campaign %s: status %d", id, resp.StatusCode)
	}
	var st CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServeKillRecoverEquivalence is the tentpole proof: one campaign
// sharded across N workers over real HTTP, with a worker killed mid-cell
// (N>1) and the coordinator killed and resumed from its state file
// mid-campaign, must assemble output byte-identical to a serial
// `zerodev run` of the same spec. Run under -race in CI.
func TestServeKillRecoverEquivalence(t *testing.T) {
	spec := Spec{Experiments: []string{"fig4"}, Scale: 32, Accesses: 1000, Seed: 7, Quick: true}

	// Serial reference: exactly what `zerodev run` prints for this spec —
	// the experiment's own output followed by a blank separator line.
	e, err := harness.Get("fig4")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	ro := spec.Options()
	ro.CrashDir = ""
	if _, err := e.Execute(context.Background(), ro, &want); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(&want)

	for _, n := range []int{1, 2, 4} {
		n := n
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			cfg := Config{
				LeaseTTL:    500 * time.Millisecond,
				RetryBudget: 8, // killed workers and coordinator restarts burn attempts
				BackoffBase: 20 * time.Millisecond,
				BackoffMax:  100 * time.Millisecond,
				Seed:        uint64(n),
				StatePath:   filepath.Join(t.TempDir(), "state.json"),
			}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var cur atomic.Pointer[Coordinator]
			cur.Store(c)
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				cur.Load().Handler().ServeHTTP(w, r)
			}))
			defer srv.Close()

			var sub SubmitResponse
			if code := postJSON(t, srv.URL+"/v1/campaigns", spec, &sub); code != http.StatusCreated {
				t.Fatalf("submit: status %d", code)
			}
			if sub.Cells < 2 {
				t.Fatalf("campaign has %d cells; sharding needs at least 2", sub.Cells)
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			var killedOnce atomic.Bool
			for i := 0; i < n; i++ {
				w := &Worker{
					Base:      srv.URL,
					ID:        fmt.Sprintf("w%d", i),
					Poll:      5 * time.Millisecond,
					Heartbeat: 100 * time.Millisecond,
				}
				wctx := ctx
				if n > 1 && i == 0 {
					// Worker 0 dies the moment it is granted its first cell:
					// no delivery, no release — only lease expiry gets the
					// cell back.
					dctx, die := context.WithCancel(ctx)
					wctx = dctx
					w.OnLease = func(Grant) {
						if killedOnce.CompareAndSwap(false, true) {
							die()
						}
					}
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = w.Run(wctx)
				}()
			}

			// Kill the coordinator once the campaign is genuinely mid-flight
			// (at least one cell done, not all), and hand the workers a
			// successor resumed from the state file.
			restarted := false
			deadline := time.Now().Add(2 * time.Minute)
			var st CampaignStatus
			for {
				if time.Now().After(deadline) {
					t.Fatalf("campaign did not finish: %+v", st)
				}
				st = getStatus(t, srv.URL, sub.ID)
				if !restarted && st.Done >= 1 && st.Done < st.Total {
					old := cur.Load()
					old.Kill()
					succ, err := New(cfg)
					if err != nil {
						t.Fatalf("successor failed to resume: %v", err)
					}
					cur.Store(succ)
					restarted = true
					continue
				}
				if st.State != "running" && restarted {
					break
				}
				if st.State != "running" && !restarted {
					// Too fast to interrupt mid-flight: restart after the
					// fact anyway — the successor must re-render the same
					// bytes purely from durable state.
					old := cur.Load()
					old.Kill()
					succ, err := New(cfg)
					if err != nil {
						t.Fatalf("successor failed to resume: %v", err)
					}
					cur.Store(succ)
					restarted = true
					st = getStatus(t, srv.URL, sub.ID)
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			cancel()
			wg.Wait()

			if st.State != "complete" {
				t.Fatalf("campaign ended %q, failures: %+v", st.State, st.Failures)
			}
			if st.Output != want.String() {
				t.Errorf("assembled output differs from serial run\n--- serve ---\n%s\n--- serial ---\n%s", st.Output, want.String())
			}
			if err := cur.Load().CheckInvariants(); err != nil {
				t.Errorf("invariants after campaign: %v", err)
			}
		})
	}
}

// TestServeDegradedCampaignRendersERR: a worker-reported failure with no
// retry budget left degrades the cell, and the assembled campaign still
// renders — with the failed cell as ERR and the failure surfaced in the
// status — instead of vanishing.
func TestServeDegradedCampaignRendersERR(t *testing.T) {
	clk := newClock()
	cfg := fakeConfig(clk, 2)
	cfg.RetryBudget = 0
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var sub SubmitResponse
	if code := postJSON(t, srv.URL+"/v1/campaigns", fakeSpec(1), &sub); code != http.StatusCreated {
		t.Fatalf("submit: status %d", code)
	}

	var g Grant
	if code := postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "w"}, &g); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}
	var cr CompleteResponse
	code := postJSON(t, srv.URL+"/v1/lease/complete", CompleteRequest{
		LeaseID: g.LeaseID, Campaign: g.Campaign, Key: g.Cell.Key(), Unit: g.Cell.Unit,
		Err: "simulated worker panic",
	}, &cr)
	if code != http.StatusOK || cr.Status != CompleteDegraded {
		t.Fatalf("failure report: status %d, %q", code, cr.Status)
	}

	if code := postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "w"}, &g); code != http.StatusOK {
		t.Fatalf("lease 2: status %d", code)
	}
	postJSON(t, srv.URL+"/v1/lease/complete", CompleteRequest{
		LeaseID: g.LeaseID, Campaign: g.Campaign, Key: g.Cell.Key(), Unit: g.Cell.Unit,
		Value: cellValue(g.Cell, 7),
	}, &cr)

	st := getStatus(t, srv.URL, sub.ID)
	if st.State != "degraded" {
		t.Fatalf("state %q, want degraded", st.State)
	}
	if !strings.Contains(st.Output, "u1=ERR(") || !strings.Contains(st.Output, "simulated worker panic") {
		t.Errorf("degraded output does not render the failure:\n%s", st.Output)
	}
	if len(st.Failures) != 1 || !strings.Contains(st.Failures[0].Err, "simulated worker panic") {
		t.Errorf("failures not surfaced: %+v", st.Failures)
	}
	mustInvariants(t, c)
}

// TestServeResubmitServedFromCache: resubmitting a finished campaign's
// spec over the API is answered entirely from the result cache — born
// terminal, zero leases, identical output.
func TestServeResubmitServedFromCache(t *testing.T) {
	clk := newClock()
	c, err := New(fakeConfig(clk, 3))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var first SubmitResponse
	postJSON(t, srv.URL+"/v1/campaigns", fakeSpec(1), &first)
	for {
		var g Grant
		code := postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "w"}, &g)
		if code == http.StatusNoContent {
			break
		}
		if code != http.StatusOK {
			t.Fatalf("lease: status %d", code)
		}
		var cr CompleteResponse
		postJSON(t, srv.URL+"/v1/lease/complete", CompleteRequest{
			LeaseID: g.LeaseID, Campaign: g.Campaign, Key: g.Cell.Key(), Unit: g.Cell.Unit,
			Value: cellValue(g.Cell, 100+g.Cell.Seq),
		}, &cr)
	}
	st1 := getStatus(t, srv.URL, first.ID)
	if st1.State != "complete" {
		t.Fatalf("first campaign ended %q", st1.State)
	}

	var again SubmitResponse
	postJSON(t, srv.URL+"/v1/campaigns", fakeSpec(1), &again)
	if again.CacheHits != 3 {
		t.Fatalf("resubmit hit cache %d times, want 3", again.CacheHits)
	}
	st2 := getStatus(t, srv.URL, again.ID)
	if st2.State != "complete" || st2.Output != st1.Output {
		t.Fatalf("cached campaign: state %q\n--- cached ---\n%s--- original ---\n%s", st2.State, st2.Output, st1.Output)
	}
	mustInvariants(t, c)
}

// TestServeHTTPStatusMapping pins the error surface workers depend on:
// 400 for garbage, 404 for unknown campaigns, 410 for stale leases,
// 503 once the coordinator is down.
func TestServeHTTPStatusMapping(t *testing.T) {
	clk := newClock()
	c, err := New(fakeConfig(clk, 2))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(`{"experiments": ["t1"], "bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/v1/campaigns/c9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign: status %d, want 404", resp.StatusCode)
	}

	if code := postJSON(t, srv.URL+"/v1/lease/renew", RenewRequest{LeaseID: "l1-0000"}, nil); code != http.StatusGone {
		t.Errorf("stale renew: status %d, want 410", code)
	}

	c.Kill()
	if code := postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "w"}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("down coordinator: status %d, want 503", code)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("jobs on down coordinator: status %d, want 503", resp.StatusCode)
	}
}

// TestJobsEndpointGolden pins the GET /v1/jobs introspection table: a
// deterministic scenario (fixed clock, fixed seeds) exercising every
// cell detail the table prints — done, cached, leased, backing off,
// degraded — compared byte-for-byte against testdata/jobs.golden.
func TestJobsEndpointGolden(t *testing.T) {
	clk := newClock()
	cfg := fakeConfig(clk, 3)
	cfg.RetryBudget = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var c1 SubmitResponse
	postJSON(t, srv.URL+"/v1/campaigns", fakeSpec(1), &c1)

	// Cell 1: done.
	var g Grant
	postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "alice"}, &g)
	var cr CompleteResponse
	postJSON(t, srv.URL+"/v1/lease/complete", CompleteRequest{
		LeaseID: g.LeaseID, Campaign: g.Campaign, Key: g.Cell.Key(), Unit: g.Cell.Unit,
		Value: cellValue(g.Cell, 101),
	}, &cr)

	// Cell 2: failed once (budget 1), now waiting out its backoff.
	postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "bob"}, &g)
	postJSON(t, srv.URL+"/v1/lease/complete", CompleteRequest{
		LeaseID: g.LeaseID, Campaign: g.Campaign, Key: g.Cell.Key(), Unit: g.Cell.Unit,
		Err: "transient fault",
	}, &cr)

	// Cell 3: leased right now, first attempt.
	postJSON(t, srv.URL+"/v1/lease", LeaseRequest{Worker: "alice"}, &g)

	// A second campaign with the same seed picks cell 1 up from the
	// result cache at submission.
	var c2 SubmitResponse
	postJSON(t, srv.URL+"/v1/campaigns", fakeSpec(1), &c2)
	if c2.CacheHits != 1 {
		t.Fatalf("second campaign hit cache %d times, want 1", c2.CacheHits)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("jobs content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	golden(t, "jobs", buf.Bytes())
}
