package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"

	"repro/internal/atomicio"
	"repro/internal/harness"
)

// StateVersion stamps coordinator state files; bump on incompatible
// format changes so a stale file is refused by name, never misdecoded.
const StateVersion = 1

// stateFile is the durable coordinator state: everything needed to
// resume a campaign after a coordinator crash. Leases are deliberately
// absent — they are promises to the dead coordinator, worthless to its
// successor — so cells persisted while leased reload as pending and
// simply re-queue. The content sum guards against torn or edited files,
// mirroring the checkpoint format's discipline.
type stateFile struct {
	Version      int `json:"version"`
	NextCampaign int `json:"next_campaign"`
	// Generation increments at every coordinator start and prefixes
	// lease IDs, so a lease granted by a dead incarnation can never be
	// renewed against its successor by ID collision.
	Generation int             `json:"generation"`
	Campaigns  []campaignState `json:"campaigns"`
	Sum        uint64          `json:"sum"`
}

type campaignState struct {
	ID        string      `json:"id"`
	Spec      Spec        `json:"spec"`
	Cells     []cellState `json:"cells"`
	Rendered  bool        `json:"rendered,omitempty"`
	Output    string      `json:"output,omitempty"`
	RenderErr string      `json:"render_err,omitempty"`
}

type cellState struct {
	Scope     string          `json:"scope"`
	Seq       int             `json:"seq"`
	Unit      string          `json:"unit"`
	Phase     string          `json:"phase"`
	Attempts  int             `json:"attempts,omitempty"`
	Value     json.RawMessage `json:"value,omitempty"`
	Err       string          `json:"err,omitempty"`
	FromCache bool            `json:"from_cache,omitempty"`
}

// stateSum hashes the campaign payload (canonical JSON) with FNV-64a.
func stateSum(campaigns []campaignState) uint64 {
	b, err := json.Marshal(campaigns)
	if err != nil {
		panic(err) // plain data; cannot fail
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// persistLocked writes the durable state atomically. Called on every
// durable transition (campaign submitted, cell done or degraded,
// output assembled); requeues and lease churn are volatile by design.
func (c *Coordinator) persistLocked() error {
	if c.cfg.StatePath == "" || c.down {
		return nil
	}
	f := stateFile{Version: StateVersion, NextCampaign: c.nextCampaign, Generation: c.gen}
	for _, cid := range c.order {
		cm := c.campaigns[cid]
		cs := campaignState{
			ID: cm.id, Spec: cm.spec,
			Rendered: cm.rendered, Output: cm.output, RenderErr: cm.renderErr,
		}
		for _, key := range cm.order {
			cl := cm.cells[key]
			cs.Cells = append(cs.Cells, cellState{
				Scope: cl.id.Scope, Seq: cl.id.Seq, Unit: cl.id.Unit,
				Phase: cl.phase.String(), Attempts: cl.attempts,
				Value: cl.value, Err: cl.errText, FromCache: cl.fromCache,
			})
		}
		f.Campaigns = append(f.Campaigns, cs)
	}
	f.Sum = stateSum(f.Campaigns)
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding state: %w", err)
	}
	if err := atomicio.WriteFile(c.cfg.StatePath, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("%w: %v", ErrPersist, err)
	}
	return nil
}

// loadState resumes from a previous coordinator's state file. A missing
// file is a fresh start; a present file must validate — version, shape,
// and content sum — or the coordinator refuses to start rather than
// resume from a file it might misread. Cells persisted as leased reload
// as pending (immediately grantable): their leases died with the old
// coordinator. The result cache rebuilds from done cells so
// cross-campaign dedup survives the crash.
func (c *Coordinator) loadState(path string) error {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: reading state: %w", err)
	}
	var head struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(buf, &head); err != nil {
		return fmt.Errorf("serve: %s is not a coordinator state file: %w", path, err)
	}
	if head.Version != StateVersion {
		return fmt.Errorf("serve: state file %s has version %d, this build reads %d", path, head.Version, StateVersion)
	}
	var f stateFile
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("serve: decoding state file %s: %w", path, err)
	}
	if got := stateSum(f.Campaigns); got != f.Sum {
		return fmt.Errorf("serve: state file %s failed its content hash (stored %016x, computed %016x): file is torn or was edited", path, f.Sum, got)
	}
	c.nextCampaign = f.NextCampaign
	c.gen = f.Generation + 1
	for _, cs := range f.Campaigns {
		cm := &campaign{
			id: cs.ID, spec: cs.Spec,
			cells:    make(map[string]*cell, len(cs.Cells)),
			rendered: cs.Rendered, output: cs.Output, renderErr: cs.RenderErr,
		}
		for _, s := range cs.Cells {
			id := harness.CellID{Scope: s.Scope, Seq: s.Seq, Unit: s.Unit}
			cl := &cell{
				id: id, fp: CellFingerprint(cs.Spec, id),
				attempts: s.Attempts, value: s.Value, errText: s.Err,
				fromCache: s.FromCache,
			}
			switch s.Phase {
			case "done":
				cl.phase = CellDone
				if !s.FromCache {
					cl.completions = 1
				}
				c.cache.put(cl.fp, cl.value)
			case "failed":
				cl.phase = CellFailed
			case "pending", "leased":
				// Leased cells lost their coordinator; re-queue immediately.
				cl.phase = CellPending
				cl.value = nil
			default:
				return fmt.Errorf("serve: state file %s: cell %s has unknown phase %q", path, id, s.Phase)
			}
			key := id.Key()
			if _, dup := cm.cells[key]; dup {
				return fmt.Errorf("serve: state file %s: campaign %s lists cell %s twice", path, cs.ID, id)
			}
			cm.cells[key] = cl
			cm.order = append(cm.order, key)
			if cl.fromCache {
				cm.cacheHits++
			}
		}
		c.campaigns[cm.id] = cm
		c.order = append(c.order, cm.id)
	}
	// Sort campaigns by ID: IDs are zero-padded sequence numbers, so
	// lexical order is submission order even if the file was reordered.
	sort.Strings(c.order)
	return nil
}
