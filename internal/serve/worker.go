package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/harness"
)

// Worker polls a coordinator for leased cells, executes each with the
// harness (exactly the code path a serial run uses, confined to the one
// granted cell), heartbeats the lease while computing, and delivers the
// raw checkpoint cell record back. Workers are stateless: everything a
// cell needs rides in the Grant, so a worker that dies mid-cell simply
// lets its lease expire and the coordinator re-queues the work.
type Worker struct {
	// Base is the coordinator URL (e.g. "http://127.0.0.1:8080").
	Base string
	// ID names the worker in lease records and logs.
	ID string
	// Client is the HTTP client (nil = http.DefaultClient).
	Client *http.Client
	// Poll is how long to idle when the coordinator has no work
	// (0 = 500ms; tests shrink it).
	Poll time.Duration
	// Heartbeat is the lease renewal cadence while computing
	// (0 = a third of the granted TTL).
	Heartbeat time.Duration
	// Log receives one line per grant/delivery when non-nil.
	Log io.Writer
	// OnLease, when non-nil, runs before executing each grant — the
	// kill/recover tests use it to die mid-cell at a chosen point.
	OnLease func(Grant)
}

// Run polls for work until ctx is done. Transport errors back off at
// the poll interval and retry: a worker outliving a coordinator crash
// reconnects to the successor on its own.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		g, err := w.lease(ctx)
		if err != nil || g == nil {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(w.poll()):
			}
			continue
		}
		w.logf("worker %s: leased %s of %s (lease %s)", w.ID, g.Cell, g.Campaign, g.LeaseID)
		if w.OnLease != nil {
			w.OnLease(*g)
		}
		value, execErr := w.executeCell(ctx, *g)
		req := CompleteRequest{
			LeaseID:  g.LeaseID,
			Campaign: g.Campaign,
			Key:      g.Cell.Key(),
			Unit:     g.Cell.Unit,
		}
		if execErr != nil {
			if ctx.Err() != nil {
				// Dying mid-cell: deliver nothing; the lease will expire
				// and the coordinator re-queues the cell.
				return nil
			}
			req.Err = execErr.Error()
		} else {
			req.Value = value
		}
		w.deliver(ctx, req)
	}
}

// executeCell runs exactly one cell of the granted experiment,
// heartbeating the lease while it computes. A refused heartbeat (the
// lease expired or was superseded) cancels the execution: the
// coordinator has already re-queued the cell, so finishing would only
// produce a stale delivery.
func (w *Worker) executeCell(ctx context.Context, g Grant) (json.RawMessage, error) {
	e, err := harness.Get(g.Cell.Scope)
	if err != nil {
		return nil, err
	}
	cs := harness.NewCheckpoint(harness.CheckpointKey{
		Kind: "serve", IDs: []string{g.Cell.Scope},
		Scale: g.Spec.Scale, Accesses: g.Spec.Accesses,
		Seed: g.Spec.Seed, Quick: g.Spec.Quick,
	})
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		hb := w.Heartbeat
		if hb <= 0 {
			hb = time.Duration(g.TTLMS) * time.Millisecond / 3
		}
		if hb <= 0 {
			hb = time.Second
		}
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-t.C:
				if stale, err := w.renew(runCtx, g.LeaseID); err == nil && stale {
					w.logf("worker %s: lease %s refused, abandoning %s", w.ID, g.LeaseID, g.Cell)
					cancel()
					return
				}
				// Transport errors are not staleness: keep computing and
				// keep trying — the coordinator may be restarting.
			}
		}
	}()
	o := g.Spec.Options()
	o.CrashDir = "" // panics surface as JobErrors in the failure summary
	execErr := e.ExecuteSelected(runCtx, o, func(c harness.CellID) bool { return c == g.Cell }, cs)
	cancel()
	<-hbDone
	if execErr != nil {
		return nil, execErr
	}
	raw, ok := cs.Export()[g.Cell.Key()]
	if !ok {
		return nil, fmt.Errorf("worker executed %s but recorded no cell (grid drift between worker and coordinator builds?)", g.Cell)
	}
	return raw, nil
}

// deliver posts the completion, retrying a few times on transport
// errors: completion is idempotent server-side (duplicates are counted
// and ignored), so retrying is always safe.
func (w *Worker) deliver(ctx context.Context, req CompleteRequest) {
	for attempt := 0; attempt < 3; attempt++ {
		var resp CompleteResponse
		code, err := w.post(ctx, "/v1/lease/complete", req, &resp)
		if err == nil && code < 500 {
			w.logf("worker %s: delivered %s (%s)", w.ID, req.Key, resp.Status)
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(w.poll()):
		}
	}
	w.logf("worker %s: giving up delivering %s; the lease will expire", w.ID, req.Key)
}

// lease asks for work; (nil, nil) means none is ready.
func (w *Worker) lease(ctx context.Context) (*Grant, error) {
	var g Grant
	code, err := w.post(ctx, "/v1/lease", LeaseRequest{Worker: w.ID}, &g)
	if err != nil {
		return nil, err
	}
	switch code {
	case http.StatusOK:
		return &g, nil
	case http.StatusNoContent:
		return nil, nil
	}
	return nil, fmt.Errorf("serve: lease request answered %d", code)
}

// renew heartbeats; stale=true means the lease is gone for good.
func (w *Worker) renew(ctx context.Context, leaseID string) (stale bool, err error) {
	code, err := w.post(ctx, "/v1/lease/renew", RenewRequest{LeaseID: leaseID}, nil)
	if err != nil {
		return false, err
	}
	return code == http.StatusGone, nil
}

func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, nil
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 500 * time.Millisecond
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		fmt.Fprintf(w.Log, format+"\n", args...)
	}
}
