package sim

// This file implements the intra-run domain scheduler: agents are
// partitioned into domains (one per socket in the multi-socket system),
// and execution alternates between parallel epochs — every domain
// advances its agents through steps proven to touch only agent-private
// state, up to a shared sync horizon — and serial steps that execute
// shared-state ("non-local") transactions one at a time in exactly the
// (clock, agent index) order of the serial scheduler.
//
// Determinism argument (the full version is in DESIGN.md, "Intra-run
// parallelism"). Each agent provides LocalBound: a conservative lower
// bound on the local time of its next step that may touch state outside
// the agent. The epoch horizon E is the minimum (LocalBound, index)
// over all live agents, so below E there exists no step — in any domain
// — that touches shared state. Every step executed inside an epoch is
// therefore (a) private, because its key is below its own agent's
// bound, and (b) exact, because no concurrent shared-state activity can
// exist below E to perturb it. Private steps of distinct agents commute
// and each agent executes its own steps in program order, so any
// interleaving of an epoch's steps yields the same state; shared steps
// run serially at the global (clock, index) frontier, with every
// smaller-keyed step already executed. The resulting final state, per
// step behavior, and all statistics are byte-identical to Drive's.
//
// Progress argument: when the global-frontier agent's next step is not
// provably private it is executed serially; when it is provably
// private, E strictly exceeds the frontier key (its own bound does, and
// every other live agent's (bound, index) also does, because bounds
// dominate clocks and the frontier agent wins the index tie-break), so
// the epoch executes at least that one step.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// LocalAgent is a Clocked agent that can bound its own shared-state-free
// run, enabling the domain scheduler to execute it concurrently with
// other agents below the bound.
type LocalAgent interface {
	Clocked
	// LocalBound returns a conservative lower bound on the agent's local
	// time at its next step that may touch state outside the agent
	// (uncore requests, evictions, upgrades). Every step taken while
	// Now() < LocalBound() must touch only agent-private state, and its
	// behavior must depend only on agent-private state. MaxCycle means
	// no remaining step can touch shared state. Implementations may scan
	// ahead in their input; the scan must not change the agent's
	// observable behavior.
	LocalBound() Cycle
}

// Exchange orders the inter-domain frontier announcements the epoch
// barrier exchanges: each domain announces the key of its earliest
// pending shared-state step, and the coordinator drains announcements
// in the canonical (cycle, source domain, per-source sequence) order to
// pick the next domain to serialize. noc.CrossQueue is the production
// implementation.
type Exchange interface {
	// Announce enqueues domain source's current frontier cycle. The
	// implementation assigns the per-source sequence number.
	Announce(cycle Cycle, source int)
	// Next removes and returns the canonically least announcement:
	// ordered by cycle, then source, then per-source sequence. ok is
	// false when the queue is empty.
	Next() (cycle Cycle, source int, ok bool)
}

// domainRunner is one domain's scheduling state: a (clock, global
// index) min-heap over the domain's live agents.
type domainRunner struct {
	h    schedHeap
	last Cycle // largest local clock observed in this domain
	n    int   // original agent count (for the live bookkeeping)

	// Cached minimum (LocalBound, order) over the domain's live agents,
	// valid while no agent of the domain has stepped since it was
	// computed. Epochs touch few domains once most sit at their shared
	// frontiers, so the horizon computation usually reuses these.
	minBound    Cycle
	minIdx      int32
	boundsValid bool
}

// minBoundKey returns the cached domain-minimum (LocalBound, order)
// key, recomputing it when stale.
func (r *domainRunner) minBoundKey() (Cycle, int32) {
	if !r.boundsValid {
		r.minBound, r.minIdx = MaxCycle, 0
		h := &r.h
		for i := range h.agent {
			b := h.agent[i].(LocalAgent).LocalBound()
			if b < r.minBound || (b == r.minBound && h.order[i] < r.minIdx) {
				r.minBound, r.minIdx = b, h.order[i]
			}
		}
		r.boundsValid = true
	}
	return r.minBound, r.minIdx
}

// runLocal advances the domain through every step with key strictly
// below the epoch horizon (eCycle, eIdx). All such steps are private by
// the horizon construction, so domains may run this concurrently. done
// (when non-nil) aborts the epoch early after a cancellation; steps
// receives batched progress for the watchdog.
func (r *domainRunner) runLocal(eCycle Cycle, eIdx int32, done <-chan struct{}, steps *atomic.Uint64) {
	h := &r.h
	var n uint64
	for len(h.agent) > 0 {
		if h.clock[0] > eCycle || (h.clock[0] == eCycle && h.order[0] >= eIdx) {
			break
		}
		a := h.agent[0]
		a.Step()
		t := a.Now()
		if t > r.last {
			r.last = t
		}
		if a.Done() {
			h.pop()
		} else {
			h.reposition(t)
		}
		n++
		if n%CancelEvery == 0 {
			if steps != nil {
				steps.Add(CancelEvery)
			}
			if done != nil {
				select {
				case <-done:
					r.boundsValid = false
					return
				default:
				}
			}
		}
	}
	if n > 0 {
		r.boundsValid = false
	}
	if steps != nil {
		steps.Add(n % CancelEvery)
	}
}

// phaseReq carries one epoch's horizon to the domain workers.
type phaseReq struct {
	eCycle Cycle
	eIdx   int32
}

// DriveDomains drives domains of agents to completion with the
// epoch-barrier domain scheduler, using up to `workers` goroutines for
// the parallel epochs (clamped to the domain count; 1 runs the epochs
// inline). The flattened agent order (domain-major) defines the
// tie-break index, so output is byte-identical to
// Drive(flatten(domains), ...). ctx and steps behave as in ContextHook:
// cancellation aborts within a bounded number of steps, and steps
// accumulates executed-step counts for the watchdog. xq must not be
// nil; it orders the inter-domain frontier exchange.
//
// DriveDomains intentionally takes no per-step hook: observation hooks
// assume globally serialized step numbering with quiescent shared state
// after every step, which parallel epochs do not provide. Callers that
// need a real hook (fault campaigns, online auditors) use Drive.
func DriveDomains(ctx context.Context, domains [][]LocalAgent, workers int, steps *atomic.Uint64, xq Exchange) (Cycle, error) {
	if xq == nil {
		panic("sim: DriveDomains needs an Exchange")
	}
	runners := make([]*domainRunner, len(domains))
	base := int32(0)
	live := 0
	for d, agents := range domains {
		cl := make([]Clocked, len(agents))
		for i, a := range agents {
			cl[i] = a
		}
		runners[d] = &domainRunner{h: makeSchedFrom(cl, base), n: len(agents)}
		base += int32(len(agents))
		if len(runners[d].h.agent) > 0 {
			live++
			xq.Announce(runners[d].h.clock[0], d)
		}
	}

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}

	// Persistent phase workers; domain d belongs to worker d mod W.
	w := workers
	if w > len(domains) {
		w = len(domains)
	}
	var start []chan phaseReq
	var wg sync.WaitGroup
	var panicked atomic.Value
	if w > 1 {
		start = make([]chan phaseReq, w)
		for i := range start {
			start[i] = make(chan phaseReq)
			go func(me int) {
				for req := range start[me] {
					func() {
						defer func() {
							if v := recover(); v != nil {
								panicked.Store(v)
							}
							wg.Done()
						}()
						for d := me; d < len(runners); d += w {
							runners[d].runLocal(req.eCycle, req.eIdx, done, steps)
						}
					}()
				}
			}(i)
		}
		defer func() {
			for _, ch := range start {
				close(ch)
			}
		}()
	}

	finalLast := func() Cycle {
		var last Cycle
		for _, r := range runners {
			if r.last > last {
				last = r.last
			}
		}
		return last
	}

	var serial uint64
	for live > 0 {
		// Pop frontier announcements until one matches its domain's
		// current frontier; stale announcements (the frontier has moved
		// since) drain first because clocks only increase.
		var d int
		for {
			c, src, ok := xq.Next()
			if !ok {
				panic("sim: exchange drained with live domains")
			}
			r := runners[src]
			if len(r.h.agent) > 0 && r.h.clock[0] == c {
				d = src
				break
			}
		}
		r := runners[d]
		a := r.h.agent[0].(LocalAgent)

		if a.LocalBound() > r.h.clock[0] {
			// The frontier step is provably private: compute the epoch
			// horizon and run every domain below it in parallel.
			eCycle := MaxCycle
			eIdx := int32(0)
			for _, rr := range runners {
				b, idx := rr.minBoundKey()
				if b < eCycle || (b == eCycle && idx < eIdx) {
					eCycle, eIdx = b, idx
				}
			}
			// A domain only has epoch work when its frontier key is below
			// the horizon; when exactly one does (common once most domains
			// sit at their shared frontiers), run it inline and skip the
			// worker barrier.
			active := 0
			var lone *domainRunner
			for _, rr := range runners {
				h := &rr.h
				if len(h.agent) > 0 && (h.clock[0] < eCycle || (h.clock[0] == eCycle && h.order[0] < eIdx)) {
					active++
					lone = rr
				}
			}
			if w > 1 && active > 1 {
				wg.Add(w)
				for _, ch := range start {
					ch <- phaseReq{eCycle, eIdx}
				}
				wg.Wait()
				if v := panicked.Load(); v != nil {
					panic(v)
				}
			} else if active == 1 {
				lone.runLocal(eCycle, eIdx, done, steps)
			} else {
				for _, rr := range runners {
					rr.runLocal(eCycle, eIdx, done, steps)
				}
			}
			if ctx != nil {
				select {
				case <-done:
					return finalLast(), fmt.Errorf("sim: aborted: %w", ctx.Err())
				default:
				}
			}
			live = 0
			for dd, rr := range runners {
				if len(rr.h.agent) > 0 {
					live++
					xq.Announce(rr.h.clock[0], dd)
				}
			}
		} else {
			// Shared-state (or unproven) frontier step: execute it
			// serially, exactly as Drive would. It may also mutate other
			// domains' agents (invalidations, downgrades); those set their
			// own scan-dirty flags, but the cached domain bound minima
			// must be dropped here.
			for _, rr := range runners {
				rr.boundsValid = false
			}
			a.Step()
			t := a.Now()
			if t > r.last {
				r.last = t
			}
			if a.Done() {
				r.h.pop()
			} else {
				r.h.reposition(t)
			}
			if len(r.h.agent) == 0 {
				live--
			} else {
				xq.Announce(r.h.clock[0], d)
			}
			if steps != nil {
				steps.Add(1)
			}
			serial++
			if serial%CancelEvery == 0 && ctx != nil {
				if err := ctx.Err(); err != nil {
					return finalLast(), fmt.Errorf("sim: aborted: %w", err)
				}
			}
		}
	}
	return finalLast(), nil
}
