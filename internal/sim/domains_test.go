package sim

import (
	"context"
	"sync/atomic"
	"testing"
)

// localScriptedAgent is a scripted LocalAgent: each step advances the
// clock by incs[i], and steps with shared[i] set mutate state shared by
// every agent (a plain counter and an append-only log), so the race
// detector catches any epoch that lets a shared step run concurrently
// and the log order pins the serial shared-step schedule. boundCap
// limits the lookahead LocalBound uses (0 = exact), modeling the
// capped-scan conservatism of real agents.
type localScriptedAgent struct {
	id     int
	now    Cycle
	incs   []Cycle
	shared []bool
	steps  int

	boundCap  int
	sharedLog *[]int
	sharedSum *uint64
}

func (a *localScriptedAgent) Now() Cycle { return a.now }
func (a *localScriptedAgent) Done() bool { return a.steps >= len(a.incs) }

func (a *localScriptedAgent) Step() {
	if a.shared[a.steps] {
		*a.sharedLog = append(*a.sharedLog, a.id)
		*a.sharedSum += uint64(a.id) + 1
	}
	a.now += a.incs[a.steps]
	a.steps++
}

// LocalBound returns the clock at which the next shared step will be
// scheduled (exactly, or a smaller bound when the lookahead cap stops
// the scan first), MaxCycle when no shared step remains.
func (a *localScriptedAgent) LocalBound() Cycle {
	t := a.now
	for k := a.steps; k < len(a.incs); k++ {
		if a.boundCap > 0 && k-a.steps >= a.boundCap {
			return t
		}
		if a.shared[k] {
			return t
		}
		t += a.incs[k]
	}
	return MaxCycle
}

// testExchange is a reference sim.Exchange: an eager sorted drain over
// (cycle, source, seq). The production implementation is
// noc.CrossQueue; this stub exists because noc imports sim.
type testExchange struct {
	entries []struct {
		cycle  Cycle
		source int
		seq    uint64
	}
	next map[int]uint64
}

func (x *testExchange) Announce(cycle Cycle, source int) {
	if x.next == nil {
		x.next = make(map[int]uint64)
	}
	e := struct {
		cycle  Cycle
		source int
		seq    uint64
	}{cycle, source, x.next[source]}
	x.next[source]++
	i := len(x.entries)
	x.entries = append(x.entries, e)
	for i > 0 {
		p := x.entries[i-1]
		if p.cycle < e.cycle || (p.cycle == e.cycle && (p.source < e.source ||
			(p.source == e.source && p.seq < e.seq))) {
			break
		}
		x.entries[i] = p
		i--
		x.entries[i] = e
	}
}

func (x *testExchange) Next() (Cycle, int, bool) {
	if len(x.entries) == 0 {
		return 0, 0, false
	}
	e := x.entries[0]
	x.entries = x.entries[1:]
	return e.cycle, e.source, true
}

// buildLocalAgents synthesizes a randomized LocalAgent population plus
// a structurally identical Clocked copy for the serial reference. Both
// copies share nothing; each records shared-step activity into its own
// log/sum.
func buildLocalAgents(seed uint64) (par, ser []*localScriptedAgent) {
	rng := NewRNG(seed)
	n := 1 + int(rng.Intn(40))
	sharedDenom := 2 + int(rng.Intn(8)) // shared-step probability 1/denom
	for i := 0; i < n; i++ {
		var start Cycle
		if rng.Intn(4) == 0 {
			start = Cycle(rng.Intn(3))
		}
		steps := int(rng.Intn(60)) // 0 = done at start
		incs := make([]Cycle, steps)
		shared := make([]bool, steps)
		for j := range incs {
			incs[j] = Cycle(rng.Intn(3)) // zeros force clock ties
			shared[j] = rng.Intn(sharedDenom) == 0
		}
		var cap int
		if rng.Intn(2) == 0 {
			cap = 1 + int(rng.Intn(5)) // conservative capped bound
		}
		mk := func() *localScriptedAgent {
			return &localScriptedAgent{
				id:     i,
				now:    start,
				incs:   append([]Cycle(nil), incs...),
				shared: append([]bool(nil), shared...),
			}
		}
		p, s := mk(), mk()
		p.boundCap = cap
		par = append(par, p)
		ser = append(ser, s)
	}
	return par, ser
}

// partition splits agents into a random number of contiguous domains,
// empty domains included.
func partition(agents []*localScriptedAgent, rng *RNG) [][]LocalAgent {
	nd := 1 + int(rng.Intn(4))
	cuts := make([]int, nd+1)
	cuts[nd] = len(agents)
	for i := 1; i < nd; i++ {
		cuts[i] = int(rng.Intn(len(agents) + 1))
	}
	for i := 1; i < nd; i++ { // keep cuts sorted -> contiguous domains
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	out := make([][]LocalAgent, nd)
	for d := 0; d < nd; d++ {
		for _, a := range agents[cuts[d]:cuts[d+1]] {
			out[d] = append(out[d], a)
		}
	}
	return out
}

// TestDriveDomainsMatchesDrive drives randomized LocalAgent populations
// through the serial scheduler and the epoch-barrier domain scheduler —
// random contiguous domain partitions, worker counts 1..3, exact and
// capped bounds — and requires identical final per-agent state, an
// identical shared-step order, and an identical completion time. Run
// with -race, this is also the data-race proof for the parallel epochs.
func TestDriveDomainsMatchesDrive(t *testing.T) {
	seeds := uint64(400)
	if testing.Short() {
		seeds = 60
	}
	for seed := uint64(1); seed <= seeds; seed++ {
		par, ser := buildLocalAgents(seed)
		rng := NewRNG(seed ^ 0x9e3779b97f4a7c15)

		var serLog []int
		var serSum uint64
		clocked := make([]Clocked, len(ser))
		for i, a := range ser {
			a.sharedLog, a.sharedSum = &serLog, &serSum
			clocked[i] = a
		}
		serLast, err := Drive(clocked, nil)
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}

		var parLog []int
		var parSum uint64
		for _, a := range par {
			a.sharedLog, a.sharedSum = &parLog, &parSum
		}
		domains := partition(par, rng)
		workers := 1 + int(rng.Intn(3))
		var steps atomic.Uint64
		parLast, err := DriveDomains(context.Background(), domains, workers, &steps, &testExchange{})
		if err != nil {
			t.Fatalf("seed %d: domains: %v", seed, err)
		}

		if parLast != serLast {
			t.Fatalf("seed %d: completion time: domains %d, serial %d", seed, parLast, serLast)
		}
		if parSum != serSum {
			t.Fatalf("seed %d: shared-state sum: domains %d, serial %d", seed, parSum, serSum)
		}
		if len(parLog) != len(serLog) {
			t.Fatalf("seed %d: shared-step count: domains %d, serial %d", seed, len(parLog), len(serLog))
		}
		for i := range parLog {
			if parLog[i] != serLog[i] {
				t.Fatalf("seed %d: shared-step order diverges at %d: domains agent %d, serial agent %d",
					seed, i, parLog[i], serLog[i])
			}
		}
		var total uint64
		for i, a := range par {
			if a.now != ser[i].now || a.steps != ser[i].steps {
				t.Fatalf("seed %d: agent %d final state: domains (now %d, steps %d), serial (now %d, steps %d)",
					seed, i, a.now, a.steps, ser[i].now, ser[i].steps)
			}
			total += uint64(a.steps)
		}
		if steps.Load() != total {
			t.Fatalf("seed %d: progress counter %d, want %d", seed, steps.Load(), total)
		}
	}
}

// TestDriveDomainsCancellation: a pre-cancelled context aborts the run
// with the context's error within a bounded number of steps.
func TestDriveDomainsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	incs := make([]Cycle, 100*CancelEvery)
	shared := make([]bool, len(incs))
	var log []int
	var sum uint64
	a := &localScriptedAgent{incs: incs, shared: shared, sharedLog: &log, sharedSum: &sum}
	var steps atomic.Uint64
	_, err := DriveDomains(ctx, [][]LocalAgent{{a}}, 2, &steps, &testExchange{})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if a.steps > int(2*CancelEvery) {
		t.Fatalf("cancelled run executed %d steps, want <= %d", a.steps, 2*CancelEvery)
	}
}

// TestDriveDomainsPanicForwarding: a panic inside a domain worker must
// surface as a panic on the calling goroutine (the harness's per-job
// recover depends on it), not crash the process from a bare goroutine.
func TestDriveDomainsPanicForwarding(t *testing.T) {
	mk := func(id int) *localScriptedAgent {
		incs := make([]Cycle, 50)
		var log []int
		var sum uint64
		return &localScriptedAgent{id: id, incs: incs, shared: make([]bool, 50), sharedLog: &log, sharedSum: &sum}
	}
	a, b := mk(0), mk(1)
	b.incs[10] = 0
	bomb := &panicAfter{localScriptedAgent: b, at: 10}
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
	}()
	_, _ = DriveDomains(context.Background(), [][]LocalAgent{{a}, {bomb}}, 2, nil, &testExchange{})
}

type panicAfter struct {
	*localScriptedAgent
	at int
}

func (p *panicAfter) Step() {
	if p.steps == p.at {
		panic("boom")
	}
	p.localScriptedAgent.Step()
}
