package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). Every stochastic decision in the simulator draws from an
// RNG seeded from the run configuration, so identical configurations
// replay identical simulations.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Fork derives an independent generator whose stream is a deterministic
// function of the parent seed and the label. Used to give each simulated
// thread its own stream without cross-coupling.
func (r *RNG) Fork(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0xd1342543de82ef95))
}

// Zipf draws from a bounded Zipf-like distribution over [0, n) with skew
// parameter s >= 0. s = 0 degenerates to uniform. Larger s concentrates
// mass on small indices, which workload synthesis uses to create hot sets.
// The implementation uses inverse-CDF on the approximate continuous
// distribution, which is accurate enough for locality shaping and requires
// no per-n precomputation.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	if s <= 0 {
		return r.Intn(n)
	}
	u := r.Float64()
	if s == 1 {
		// CDF ~ ln(1+x)/ln(1+n)
		x := math.Exp(u*math.Log(float64(n))) - 1
		i := int(x)
		if i >= n {
			i = n - 1
		}
		return i
	}
	// CDF ~ (x^(1-s)-1)/(n^(1-s)-1) for s != 1.
	p := 1 - s
	x := math.Pow(u*(math.Pow(float64(n), p)-1)+1, 1/p) - 1
	i := int(x)
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// ZipfGen is RNG.Zipf with the loop-invariant transcendentals hoisted
// out: for a fixed (n, s), math.Log(n) and math.Pow(n, 1-s) never
// change, yet computing them dominated every draw. Draw consumes the
// same single uniform from the RNG and evaluates the identical
// floating-point expression RNG.Zipf evaluates (same operations on the
// same rounded intermediates), so for any generator state Draw and Zipf
// return the same index and leave the stream in the same state —
// workload synthesis stays bit-identical (TestZipfGenMatchesZipf).
type ZipfGen struct {
	n    int
	s    float64
	logN float64 // s == 1: ln n
	powT float64 // s != 1: n^(1-s) - 1
	invP float64 // s != 1: 1/(1-s)
}

// NewZipfGen precomputes a sampler equivalent to Zipf(n, s).
func NewZipfGen(n int, s float64) ZipfGen {
	z := ZipfGen{n: n, s: s}
	if n <= 1 || s <= 0 {
		return z
	}
	if s == 1 {
		z.logN = math.Log(float64(n))
		return z
	}
	p := 1 - s
	z.powT = math.Pow(float64(n), p) - 1
	z.invP = 1 / p
	return z
}

// Draw returns the next Zipf index, advancing r exactly as Zipf(n, s)
// would.
func (z *ZipfGen) Draw(r *RNG) int {
	if z.n <= 1 {
		return 0
	}
	if z.s <= 0 {
		return r.Intn(z.n)
	}
	u := r.Float64()
	if z.s == 1 {
		x := math.Exp(u*z.logN) - 1
		i := int(x)
		if i >= z.n {
			i = z.n - 1
		}
		return i
	}
	x := math.Pow(u*z.powT+1, z.invP) - 1
	i := int(x)
	if i < 0 {
		i = 0
	}
	if i >= z.n {
		i = z.n - 1
	}
	return i
}
