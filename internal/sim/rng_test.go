package sim

import "testing"

// TestZipfGenMatchesZipf pins the contract ZipfGen's doc comment makes:
// for any generator state, Draw returns the same index as Zipf(n, s)
// and leaves the RNG stream in the same state. Goldens across the repo
// depend on this bit-for-bit, so the comparison is exact equality over
// a range of skews (including the s == 1 special case and the s <= 0
// uniform degenerate) and sizes.
func TestZipfGenMatchesZipf(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 4096, 1 << 20} {
		for _, s := range []float64{-1, 0, 0.5, 0.99, 1, 1.2, 2.5} {
			gen := NewZipfGen(n, s)
			ra, rb := NewRNG(0xfeed), NewRNG(0xfeed)
			for i := 0; i < 2000; i++ {
				want := ra.Zipf(n, s)
				got := gen.Draw(rb)
				if got != want {
					t.Fatalf("n=%d s=%v draw %d: Draw=%d Zipf=%d", n, s, i, got, want)
				}
			}
			if ra.Uint64() != rb.Uint64() {
				t.Fatalf("n=%d s=%v: streams diverged after 2000 draws", n, s)
			}
		}
	}
}
