package sim

// This file implements the scheduler data structure behind Drive: an
// indexed binary min-heap over the not-yet-done agents, keyed by
// (local clock, submission index). The secondary key reproduces the
// historical linear scan's tie-break — among agents at the same local
// time, the one submitted first runs first — so the heap scheduler's
// interleaving is step-for-step identical to the linear scan's
// (sched_test.go proves equivalence over randomized agent sets).
//
// Only the stepped agent's clock ever changes (agents advance their own
// local time; externally initiated coherence actions never touch
// another core's clock), so after each step only the heap root needs
// re-positioning: one sift-down, O(log n) instead of the linear scan's
// O(n) per step. At the paper's 128-core and 4×128-core configurations
// this is the difference between ~5 and ~500 comparisons per scheduler
// step on a path executed once per memory access.

// schedHeap stores the heap as parallel slices to keep the hot
// comparisons on cached integers rather than interface calls: clock[i]
// mirrors agent[i].Now(), and order[i] is the agent's index in the
// original Drive slice.
type schedHeap struct {
	clock []Cycle
	order []int32
	agent []Clocked
}

// makeSched builds the heap from the agents that still have work.
// Done-at-start agents are never scheduled, matching the linear scan.
func makeSched(agents []Clocked) schedHeap { return makeSchedFrom(agents, 0) }

// makeSchedFrom is makeSched with an index offset: agent i carries the
// tie-break order base+i. The domain scheduler builds one heap per
// domain over a contiguous slice of the globally flattened agent list,
// so per-domain heaps keyed this way reproduce exactly the (clock,
// global index) order of one heap over the whole list.
func makeSchedFrom(agents []Clocked, base int32) schedHeap {
	h := schedHeap{
		clock: make([]Cycle, 0, len(agents)),
		order: make([]int32, 0, len(agents)),
		agent: make([]Clocked, 0, len(agents)),
	}
	for i, a := range agents {
		if a.Done() {
			continue
		}
		h.clock = append(h.clock, a.Now())
		h.order = append(h.order, base+int32(i))
		h.agent = append(h.agent, a)
	}
	for i := len(h.agent)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

func (h *schedHeap) less(i, j int) bool {
	return h.clock[i] < h.clock[j] ||
		(h.clock[i] == h.clock[j] && h.order[i] < h.order[j])
}

func (h *schedHeap) swap(i, j int) {
	h.clock[i], h.clock[j] = h.clock[j], h.clock[i]
	h.order[i], h.order[j] = h.order[j], h.order[i]
	h.agent[i], h.agent[j] = h.agent[j], h.agent[i]
}

func (h *schedHeap) siftDown(i int) {
	n := len(h.agent)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && h.less(r, l) {
			min = r
		}
		if !h.less(min, i) {
			return
		}
		h.swap(i, min)
		i = min
	}
}

// reposition re-sinks the root after its agent's clock advanced to t.
// Clocks only move forward, so the root can only sink.
func (h *schedHeap) reposition(t Cycle) {
	h.clock[0] = t
	h.siftDown(0)
}

// pop removes the root (its agent finished).
func (h *schedHeap) pop() {
	n := len(h.agent) - 1
	h.swap(0, n)
	h.clock = h.clock[:n]
	h.order = h.order[:n]
	h.agent = h.agent[:n]
	if n > 0 {
		h.siftDown(0)
	}
}
