package sim

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
)

// scriptedAgent is a minimal Clocked whose clock advances by a scripted
// sequence of increments (zero increments included, so equal clocks —
// and therefore tie-breaks — occur constantly).
type scriptedAgent struct {
	id    int
	now   Cycle
	incs  []Cycle
	steps int
}

func (a *scriptedAgent) Now() Cycle { return a.now }
func (a *scriptedAgent) Done() bool { return a.steps >= len(a.incs) }
func (a *scriptedAgent) Step() {
	a.now += a.incs[a.steps]
	a.steps++
}

// linearDrive is the scheduler Drive replaced: scan every agent each
// step, pick the strictly smallest clock (first wins ties), step it.
// Kept verbatim as the reference implementation for the equivalence
// test below.
func linearDrive(agents []Clocked, hook func(step uint64, now Cycle) error) (Cycle, error) {
	var last Cycle
	var steps uint64
	for {
		min := MaxCycle
		var pick Clocked
		for _, a := range agents {
			if a.Done() {
				continue
			}
			if t := a.Now(); t < min {
				min = t
				pick = a
			}
		}
		if pick == nil {
			return last, nil
		}
		pick.Step()
		if t := pick.Now(); t > last {
			last = t
		}
		if hook != nil {
			steps++
			if err := hook(steps, pick.Now()); err != nil {
				return last, err
			}
		}
	}
}

// buildAgents synthesizes a randomized agent set from seed: a few to a
// few hundred agents, each with a scripted increment sequence skewed
// toward small values (including zero, to force clock ties) and
// occasionally starting at a shared non-zero clock (ties at step 0).
// Returns two structurally identical copies so the two schedulers can
// each mutate their own.
func buildAgents(seed uint64) (a, b []Clocked, ids map[Clocked]int) {
	rng := NewRNG(seed)
	n := 1 + int(rng.Intn(130))
	a = make([]Clocked, n)
	b = make([]Clocked, n)
	ids = make(map[Clocked]int, 2*n)
	for i := 0; i < n; i++ {
		var start Cycle
		if rng.Intn(4) == 0 {
			start = Cycle(rng.Intn(3)) // collide with neighbors
		}
		steps := int(rng.Intn(40)) // 0 steps = done at start
		incs := make([]Cycle, steps)
		for j := range incs {
			// 0 with probability 1/3: the stepped agent keeps its clock,
			// staying tied with anyone already at that time.
			incs[j] = Cycle(rng.Intn(3))
		}
		ai := &scriptedAgent{id: i, now: start, incs: incs}
		bi := &scriptedAgent{id: i, now: start, incs: append([]Cycle(nil), incs...)}
		a[i], b[i] = ai, bi
		ids[ai] = i
		ids[bi] = i
	}
	return a, b, ids
}

// TestHeapMatchesLinearScan drives randomized agent sets — clock ties
// included by construction — through both the heap scheduler (Drive)
// and the historical linear scan, across 1000 seeds, and requires the
// picked-agent sequences to be identical step for step.
func TestHeapMatchesLinearScan(t *testing.T) {
	for seed := uint64(1); seed <= 1000; seed++ {
		heapAgents, linAgents, ids := buildAgents(seed)
		var heapSeq, linSeq []int
		heapLast, err := driveLogged(heapAgents, ids, &heapSeq, Drive)
		if err != nil {
			t.Fatalf("seed %d: heap drive: %v", seed, err)
		}
		linLast, err := driveLogged(linAgents, ids, &linSeq, linearDrive)
		if err != nil {
			t.Fatalf("seed %d: linear drive: %v", seed, err)
		}
		if heapLast != linLast {
			t.Fatalf("seed %d: final clock mismatch: heap %d, linear %d", seed, heapLast, linLast)
		}
		if len(heapSeq) != len(linSeq) {
			t.Fatalf("seed %d: step count mismatch: heap %d, linear %d", seed, len(heapSeq), len(linSeq))
		}
		for i := range heapSeq {
			if heapSeq[i] != linSeq[i] {
				t.Fatalf("seed %d: schedulers diverge at step %d: heap picked agent %d, linear picked agent %d\nheap: %v\nlinear: %v",
					seed, i, heapSeq[i], linSeq[i], clip(heapSeq, i), clip(linSeq, i))
			}
		}
	}
}

// churnAgent advances to absolute target clocks: each step sets
// now = max(now, targets[steps]). Scripts built from shared rendezvous
// times make whole groups of agents land on identical clocks mid-run
// (injected ties), and a large jump followed by a run of equal targets
// models an agent that goes idle far in the future and re-arms there,
// stepping repeatedly at a constant clock while the rest of the
// population catches up. These are exactly the churn patterns the epoch
// barrier's (clock, original index) tie-break must reproduce.
type churnAgent struct {
	id      int
	now     Cycle
	targets []Cycle
	steps   int
}

func (a *churnAgent) Now() Cycle { return a.now }
func (a *churnAgent) Done() bool { return a.steps >= len(a.targets) }
func (a *churnAgent) Step() {
	if t := a.targets[a.steps]; t > a.now {
		a.now = t
	}
	a.steps++
}

// buildChurnAgents synthesizes agent sets around shared rendezvous
// clocks: every agent's script interleaves small local advances with
// jumps to rendezvous points common to the whole population, plus
// park-and-re-arm runs (several steps at one far clock).
func buildChurnAgents(seed uint64) (a, b []Clocked, ids map[Clocked]int) {
	rng := NewRNG(seed)
	n := 2 + int(rng.Intn(60))
	nrv := 1 + int(rng.Intn(6))
	rendezvous := make([]Cycle, nrv)
	t := Cycle(0)
	for i := range rendezvous {
		t += Cycle(5 + rng.Intn(50))
		rendezvous[i] = t
	}
	a = make([]Clocked, n)
	b = make([]Clocked, n)
	ids = make(map[Clocked]int, 2*n)
	for i := 0; i < n; i++ {
		var targets []Cycle
		now := Cycle(0)
		for _, rv := range rendezvous {
			// Local advance toward the rendezvous.
			for k := int(rng.Intn(4)); k > 0; k-- {
				now += Cycle(rng.Intn(3))
				targets = append(targets, now)
			}
			if rng.Intn(4) != 0 {
				// Jump to the shared rendezvous clock (identical clocks
				// injected mid-run), then idle there: re-arm with equal
				// targets so the agent keeps stepping at the same time.
				if rv > now {
					now = rv
				}
				for k := 1 + int(rng.Intn(4)); k > 0; k-- {
					targets = append(targets, now)
				}
			}
		}
		ai := &churnAgent{id: i, targets: targets}
		bi := &churnAgent{id: i, targets: append([]Cycle(nil), targets...)}
		a[i], b[i] = ai, bi
		ids[ai] = i
		ids[bi] = i
	}
	return a, b, ids
}

// TestHeapMatchesLinearScanChurn extends TestHeapMatchesLinearScan to
// rendezvous churn: groups of agents injected onto identical clocks
// mid-run and agents that park far ahead and re-arm, pinning the
// (clock, original index) tie-break under sustained ties.
func TestHeapMatchesLinearScanChurn(t *testing.T) {
	for seed := uint64(1); seed <= 500; seed++ {
		heapAgents, linAgents, ids := buildChurnAgents(seed)
		var heapSeq, linSeq []int
		heapLast, err := driveLogged(heapAgents, ids, &heapSeq, Drive)
		if err != nil {
			t.Fatalf("seed %d: heap drive: %v", seed, err)
		}
		linLast, err := driveLogged(linAgents, ids, &linSeq, linearDrive)
		if err != nil {
			t.Fatalf("seed %d: linear drive: %v", seed, err)
		}
		if heapLast != linLast {
			t.Fatalf("seed %d: final clock mismatch: heap %d, linear %d", seed, heapLast, linLast)
		}
		if len(heapSeq) != len(linSeq) {
			t.Fatalf("seed %d: step count mismatch: heap %d, linear %d", seed, len(heapSeq), len(linSeq))
		}
		for i := range heapSeq {
			if heapSeq[i] != linSeq[i] {
				t.Fatalf("seed %d: schedulers diverge at step %d: heap picked agent %d, linear picked agent %d\nheap: %v\nlinear: %v",
					seed, i, heapSeq[i], linSeq[i], clip(heapSeq, i), clip(linSeq, i))
			}
		}
	}
}

func clip(seq []int, i int) []int {
	lo, hi := i-3, i+4
	if lo < 0 {
		lo = 0
	}
	if hi > len(seq) {
		hi = len(seq)
	}
	return seq[lo:hi]
}

// loggingAgent wraps a Clocked and appends its id to *seq on every Step.
type loggingAgent struct {
	Clocked
	id  int
	seq *[]int
}

func (l *loggingAgent) Step() {
	*l.seq = append(*l.seq, l.id)
	l.Clocked.Step()
}

func driveLogged(agents []Clocked, ids map[Clocked]int, seq *[]int,
	drive func([]Clocked, func(uint64, Cycle) error) (Cycle, error)) (Cycle, error) {
	wrapped := make([]Clocked, len(agents))
	for i, a := range agents {
		wrapped[i] = &loggingAgent{Clocked: a, id: ids[a], seq: seq}
	}
	return drive(wrapped, nil)
}

// TestDriveHookStepNumbers pins the hook contract the heap rewrite must
// preserve: steps are numbered from 1 and `now` is the stepped agent's
// clock after the step.
func TestDriveHookStepNumbers(t *testing.T) {
	agents := []Clocked{
		&scriptedAgent{id: 0, incs: []Cycle{2, 2}},
		&scriptedAgent{id: 1, incs: []Cycle{3}},
	}
	var gotSteps []uint64
	var gotNows []Cycle
	last, err := Drive(agents, func(step uint64, now Cycle) error {
		gotSteps = append(gotSteps, step)
		gotNows = append(gotNows, now)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 4 {
		t.Fatalf("last = %d, want 4", last)
	}
	wantSteps := []uint64{1, 2, 3}
	wantNows := []Cycle{2, 3, 4} // agent0→2, agent1→3, agent0→4
	if fmt.Sprint(gotSteps) != fmt.Sprint(wantSteps) || fmt.Sprint(gotNows) != fmt.Sprint(wantNows) {
		t.Fatalf("hook saw steps %v nows %v, want %v %v", gotSteps, gotNows, wantSteps, wantNows)
	}
}

// TestContextHookPublishesEveryStep: a hang before the first CancelEvery
// boundary must still leave an exact step count behind for the watchdog.
func TestContextHookPublishesEveryStep(t *testing.T) {
	var steps atomic.Uint64
	hook := ContextHook(context.Background(), &steps, nil)
	for s := uint64(1); s <= 37; s++ {
		if err := hook(s, Cycle(s)); err != nil {
			t.Fatal(err)
		}
		if got := steps.Load(); got != s {
			t.Fatalf("after hook(%d): published steps = %d, want %d", s, got, s)
		}
	}
}

// BenchmarkDrive measures pure scheduler overhead (trivial agents) at
// the paper's core counts, heap vs. the replaced linear scan.
func BenchmarkDrive(b *testing.B) {
	for _, cores := range []int{8, 128, 512} {
		for _, impl := range []struct {
			name  string
			drive func([]Clocked, func(uint64, Cycle) error) (Cycle, error)
		}{{"heap", Drive}, {"linear", linearDrive}} {
			b.Run(fmt.Sprintf("%s/cores=%d", impl.name, cores), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					agents := make([]Clocked, cores)
					for c := range agents {
						incs := make([]Cycle, 200)
						for j := range incs {
							incs[j] = Cycle(1 + (c+j)%3)
						}
						agents[c] = &scriptedAgent{id: c, incs: incs}
					}
					b.StartTimer()
					if _, err := impl.drive(agents, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkContextHook justifies publishing steps on every call: the
// per-step cost of the atomic store is a few nanoseconds, noise next to
// a protocol transaction.
func BenchmarkContextHook(b *testing.B) {
	var steps atomic.Uint64
	hook := ContextHook(context.Background(), &steps, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := hook(uint64(i+1), Cycle(i)); err != nil {
			b.Fatal(err)
		}
	}
}
